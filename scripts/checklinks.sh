#!/usr/bin/env bash
# checklinks.sh — fail on broken intra-repo markdown links and unbalanced
# report markers.
#
# Scans every tracked *.md file for inline links/images whose target is a
# relative path (external schemes and pure #anchors are ignored), strips any
# #fragment, and verifies the target exists relative to the linking file.
# Also verifies that every "<!-- report:NAME -->" generated-table marker is
# balanced: each open has a matching close, no nesting, no repeated name per
# file (the protocol internal/report.Parse enforces; checked here too so a
# marker typo in a file cmd/report does not render still fails CI).
# Also audits every "//ecnlint:allow" suppression in tracked Go files: it
# must name a known analyzer and carry a non-empty reason (the textual
# mirror of the check cmd/ecnlint performs, see DESIGN.md §2.5).
# Run from the repository root:
#
#   ./scripts/checklinks.sh
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
while IFS= read -r file; do
    # SNIPPETS.md quotes exemplar files from other repositories verbatim;
    # links inside quoted material are not ours to keep working.
    case "$file" in
    SNIPPETS.md) continue ;;
    esac
    dir="$(dirname "$file")"
    # Inline markdown links: [text](target) — one target per line via grep -o.
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:* | "#"*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "broken link: $file -> $target"
            fail=1
        fi
    done < <(grep -oE '\]\([^)<>[:space:]]+\)' "$file" | sed -E 's/^\]\(//; s/\)$//' || true)
done < <(git ls-files '*.md')

while IFS= read -r file; do
    case "$file" in
    SNIPPETS.md) continue ;;
    esac
    # Replay internal/report's marker rules: open/close alternation with
    # matching names, each name at most once per file.
    if ! awk '
        match($0, /^[ \t]*<!-- \/?report:[a-z0-9][a-z0-9-]* -->[ \t]*$/) {
            line = $0
            sub(/^[ \t]*<!-- /, "", line); sub(/ -->[ \t]*$/, "", line)
            closing = (line ~ /^\//)
            sub(/^\/?report:/, "", line)
            if (!closing) {
                if (open != "") { print FILENAME ": marker " line " opens inside open block " open; bad = 1; exit 1 }
                if (seen[line]++) { print FILENAME ": marker " line " appears twice"; bad = 1; exit 1 }
                open = line
            } else {
                if (open == "") { print FILENAME ": close marker " line " without an open block"; bad = 1; exit 1 }
                if (line != open) { print FILENAME ": close marker " line " inside block " open; bad = 1; exit 1 }
                open = ""
            }
        }
        END { if (!bad && open != "") { print FILENAME ": block " open " never closes"; exit 1 } }
    ' "$file"; then
        fail=1
    fi
done < <(git ls-files '*.md')

# Suppression audit: each //ecnlint:allow must name a known analyzer and
# give a reason. Keep the analyzer list in sync with internal/lint.Analyzers
# (plus the "ecnlint" pseudo-analyzer for protocol findings).
known_analyzers='fingerprintcoverage|maporder|poolonly|seededrng|wallclock|ecnlint'
while IFS= read -r file; do
    case "$file" in
    # The lint packages' golden fixtures exercise malformed allows on purpose.
    */testdata/*) continue ;;
    esac
    while IFS= read -r hit; do
        lineno="${hit%%:*}"
        line="${hit#*:}"
        # Only audit actual annotations: a marker quoted in a string literal,
        # fenced in backticks, or sitting inside the prose of an enclosing
        # comment (a second "//" on the line) is documentation *about* the
        # protocol, not a suppression the linter would honor.
        prefix="${line%%//ecnlint:allow*}"
        case "$prefix" in
        *'"'* | *'`'* | *'//'*) continue ;;
        esac
        rest="${line#*//ecnlint:allow}"
        # shellcheck disable=SC2086 # word-splitting $rest is the point
        set -- $rest
        if [ "$#" -lt 2 ] || ! printf '%s\n' "$1" | grep -qE "^($known_analyzers)\$"; then
            echo "bad suppression: $file:$lineno: want \"//ecnlint:allow <analyzer> <reason>\" with a known analyzer and a non-empty reason"
            fail=1
        fi
    done < <(grep -n '//ecnlint:allow' "$file" || true)
done < <(git ls-files '*.go')

if [ "$fail" -ne 0 ]; then
    echo "checklinks: broken links, unbalanced report markers, or bad ecnlint suppressions found" >&2
    exit 1
fi
echo "checklinks: all intra-repo markdown links resolve, report markers balance, and ecnlint suppressions carry reasons"
