#!/usr/bin/env bash
# checklinks.sh — fail on broken intra-repo markdown links and unbalanced
# report markers.
#
# Scans every tracked *.md file for inline links/images whose target is a
# relative path (external schemes and pure #anchors are ignored), strips any
# #fragment, and verifies the target exists relative to the linking file.
# Also verifies that every "<!-- report:NAME -->" generated-table marker is
# balanced: each open has a matching close, no nesting, no repeated name per
# file (the protocol internal/report.Parse enforces; checked here too so a
# marker typo in a file cmd/report does not render still fails CI).
# Run from the repository root:
#
#   ./scripts/checklinks.sh
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
while IFS= read -r file; do
    # SNIPPETS.md quotes exemplar files from other repositories verbatim;
    # links inside quoted material are not ours to keep working.
    case "$file" in
    SNIPPETS.md) continue ;;
    esac
    dir="$(dirname "$file")"
    # Inline markdown links: [text](target) — one target per line via grep -o.
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:* | "#"*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "broken link: $file -> $target"
            fail=1
        fi
    done < <(grep -oE '\]\([^)<>[:space:]]+\)' "$file" | sed -E 's/^\]\(//; s/\)$//' || true)
done < <(git ls-files '*.md')

while IFS= read -r file; do
    case "$file" in
    SNIPPETS.md) continue ;;
    esac
    # Replay internal/report's marker rules: open/close alternation with
    # matching names, each name at most once per file.
    if ! awk '
        match($0, /^[ \t]*<!-- \/?report:[a-z0-9][a-z0-9-]* -->[ \t]*$/) {
            line = $0
            sub(/^[ \t]*<!-- /, "", line); sub(/ -->[ \t]*$/, "", line)
            closing = (line ~ /^\//)
            sub(/^\/?report:/, "", line)
            if (!closing) {
                if (open != "") { print FILENAME ": marker " line " opens inside open block " open; bad = 1; exit 1 }
                if (seen[line]++) { print FILENAME ": marker " line " appears twice"; bad = 1; exit 1 }
                open = line
            } else {
                if (open == "") { print FILENAME ": close marker " line " without an open block"; bad = 1; exit 1 }
                if (line != open) { print FILENAME ": close marker " line " inside block " open; bad = 1; exit 1 }
                open = ""
            }
        }
        END { if (!bad && open != "") { print FILENAME ": block " open " never closes"; exit 1 } }
    ' "$file"; then
        fail=1
    fi
done < <(git ls-files '*.md')

if [ "$fail" -ne 0 ]; then
    echo "checklinks: broken links or unbalanced report markers found" >&2
    exit 1
fi
echo "checklinks: all intra-repo markdown links resolve and report markers balance"
