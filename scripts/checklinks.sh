#!/usr/bin/env bash
# checklinks.sh — fail on broken intra-repo markdown links.
#
# Scans every tracked *.md file for inline links/images whose target is a
# relative path (external schemes and pure #anchors are ignored), strips any
# #fragment, and verifies the target exists relative to the linking file.
# Run from the repository root:
#
#   ./scripts/checklinks.sh
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
while IFS= read -r file; do
    # SNIPPETS.md quotes exemplar files from other repositories verbatim;
    # links inside quoted material are not ours to keep working.
    case "$file" in
    SNIPPETS.md) continue ;;
    esac
    dir="$(dirname "$file")"
    # Inline markdown links: [text](target) — one target per line via grep -o.
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:* | "#"*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "broken link: $file -> $target"
            fail=1
        fi
    done < <(grep -oE '\]\([^)<>[:space:]]+\)' "$file" | sed -E 's/^\]\(//; s/\)$//' || true)
done < <(git ls-files '*.md')

if [ "$fail" -ne 0 ]; then
    echo "checklinks: broken intra-repo markdown links found" >&2
    exit 1
fi
echo "checklinks: all intra-repo markdown links resolve"
