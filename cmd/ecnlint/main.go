// Command ecnlint is the repo's determinism linter: a multichecker over the
// custom analyzers in internal/lint that prove the bit-identical contract
// (DESIGN.md §4, §2.4) at compile time — map-order-sensitive accumulation,
// wall-clock and global-rand escapes in simulation code, goroutines outside
// internal/pool, and builder options that miss the campaign cache key.
//
// Standalone (the CI job and the pre-push check):
//
//	go run ./cmd/ecnlint ./...
//
// As a go vet tool (unit-checker protocol, one package per invocation):
//
//	go build -o /tmp/ecnlint ./cmd/ecnlint
//	go vet -vettool=/tmp/ecnlint ./...
//
// Exit status: 0 clean, 1 operational error, 2 findings. Suppress a finding
// with "//ecnlint:allow <analyzer> <reason>" on or directly above the
// flagged line; the reason is mandatory.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/load"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("ecnlint", flag.ExitOnError)
	versionFlag := fs.String("V", "", "print version and exit (go vet tool handshake)")
	flagsFlag := fs.Bool("flags", false, "print the analyzer flag set as JSON and exit (go vet tool handshake)")
	listFlag := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: ecnlint [packages]  |  ecnlint <unit>.cfg  (go vet mode)\n\n")
		fmt.Fprintf(fs.Output(), "Determinism linter for this repository; see DESIGN.md §2.5.\n\nAnalyzers:\n")
		printAnalyzers(fs.Output())
		fs.PrintDefaults()
	}
	// go vet passes analyzer flags like -maporder=true when probing; accept
	// and ignore per-analyzer toggles so the handshake succeeds.
	for _, a := range lint.Analyzers() {
		fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer (always on)")
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	if *versionFlag != "" {
		return printVersion(*versionFlag)
	}
	if *flagsFlag {
		// No tool-level flags beyond the handshake set: the suite is always
		// all-on (suppression happens per line, in source).
		fmt.Println("[]")
		return 0
	}
	if *listFlag {
		printAnalyzers(os.Stdout)
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetUnit(rest[0])
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Module(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecnlint:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ecnlint: %d finding(s); fix them or annotate with \"//ecnlint:allow <analyzer> <reason>\" (see DESIGN.md §2.5)\n", len(findings))
		return 2
	}
	return 0
}

func printAnalyzers(w io.Writer) {
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(w, "  %-20s %s\n", a.Name, a.Doc)
	}
}

// printVersion implements the `-V=full` handshake the go command performs on
// vet tools: the output's trailing "buildID=..." field keys go vet's result
// cache, so it hashes this executable.
func printVersion(mode string) int {
	progname := filepath.Base(os.Args[0])
	if mode != "full" {
		fmt.Printf("%s version devel\n", progname)
		return 0
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecnlint:", err)
		return 1
	}
	f, err := os.Open(self)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecnlint:", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, "ecnlint:", err)
		return 1
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
	return 0
}

// vetConfig is the unit-checker configuration the go command writes for
// -vettool invocations (one JSON file per package).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package the way go vet hands it to a vettool: source
// files plus compiler export data for every dependency.
func vetUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecnlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ecnlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// go vet requires the facts file to exist even though this suite
	// produces no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "ecnlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// Test code is out of scope by design (DESIGN.md §2.5): tests exercise
	// wall clocks and ad-hoc randomness legitimately, and the standalone
	// driver never loads them. go vet hands us each package as its
	// test-augmented variant ("pkg [pkg.test]" with _test.go files in
	// GoFiles), so agreement with the standalone mode means skipping the
	// purely-test units (external _test packages, the generated test main)
	// and analyzing the in-package units minus their test files.
	importPath, goFiles, ok := nonTestUnit(cfg)
	if !ok {
		return 0
	}

	pkg, err := load.ExportFiles(importPath, goFiles, cfg.PackageFile, cfg.ImportMap)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "ecnlint:", err)
		return 1
	}
	findings, err := lint.Run([]*load.Package{pkg}, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecnlint:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// nonTestUnit reduces a vet unit to its non-test content: the bare import
// path (the " [pkg.test]" variant suffix stripped) and the non-_test.go
// files. ok is false for units with no non-test content — external _test
// packages and the synthesized test main.
func nonTestUnit(cfg vetConfig) (importPath string, goFiles []string, ok bool) {
	importPath = cfg.ImportPath
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	if strings.HasSuffix(importPath, "_test") || strings.HasSuffix(importPath, ".test") {
		return "", nil, false
	}
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	return importPath, goFiles, len(goFiles) > 0
}
