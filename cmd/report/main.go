// Command report keeps the documentation's quoted tables true by
// construction: it executes the registered campaign book (ecnsim.Campaigns)
// and splices the rendered markdown tables into the documentation files
// between "<!-- report:NAME -->" / "<!-- /report:NAME -->" markers. The
// reserved "scenarios" block renders the scenario registry itself.
//
// Without -check it rewrites the files in place; with -check it compares the
// regenerated tables against the committed bytes and exits 1 on drift — the
// CI docs gate. Runs are memoized in a content-addressed result cache keyed
// by (results version, scenario, canonical configuration, seed), so repeated
// invocations re-simulate nothing.
//
// Usage:
//
//	report [-check] [-quick] [-docs README.md,EXPERIMENTS.md]
//	       [-cache DIR | -nocache] [-workers N] [-list]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"

	"repro/ecnsim"
	"repro/internal/pool"
	"repro/internal/report"
)

func main() {
	var (
		check    = flag.Bool("check", false, "compare regenerated tables against the committed files; exit 1 on drift")
		quick    = flag.Bool("quick", false, "run campaigns at quick (CI/test) scale — the scale of the committed tables")
		docsFlag = flag.String("docs", "README.md,EXPERIMENTS.md", "comma-separated documentation files to render into")
		cacheDir = flag.String("cache", ecnsim.DefaultCacheDir(), "result cache directory")
		nocache  = flag.Bool("nocache", false, "disable the result cache (every run re-simulates)")
		workers  = flag.Int("workers", 0, "concurrent simulations per campaign (0 = GOMAXPROCS)")
		list     = flag.Bool("list", false, "list the registered campaign book and exit")
		quiet    = flag.Bool("q", false, "suppress per-run progress")
	)
	flag.Parse()

	if *list {
		for _, c := range ecnsim.Campaigns() {
			fmt.Printf("%-16s scenario=%-16s rows=%d  %s\n", c.Name, c.Scenario, len(c.Rows), c.Title)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	runner := &ecnsim.CampaignRunner{Workers: *workers, Quick: *quick}
	if !*nocache {
		cache, err := ecnsim.OpenCache(*cacheDir)
		if err != nil {
			fatal(err)
		}
		runner.Cache = cache
	}
	if !*quiet {
		runner.Progress = func(done, total int, label string) {
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s\n", done+1, total, label)
		}
	}

	docs := strings.Split(*docsFlag, ",")
	type docState struct {
		path string
		text string
	}
	var (
		states []*docState
		needed = map[string][]string{} // block name -> files using it
	)
	for _, path := range docs {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		blocks, err := report.Parse(string(data))
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		st := &docState{path: path, text: string(data)}
		for _, b := range blocks {
			needed[b.Name] = append(needed[b.Name], path)
		}
		states = append(states, st)
	}

	// Every marker must correspond to a campaign (or the reserved registry
	// table), and every registered campaign must be documented somewhere —
	// a scenario added with a campaign but no marker fails here, telling the
	// author exactly what to paste.
	var problems []string
	for name := range needed {
		if name == "scenarios" {
			continue
		}
		if _, ok := ecnsim.CampaignFor(name); !ok {
			problems = append(problems, fmt.Sprintf("marker %q (%s) names no registered campaign", name, strings.Join(needed[name], ", ")))
		}
	}
	for _, c := range ecnsim.Campaigns() {
		if _, ok := needed[c.Name]; !ok {
			problems = append(problems, fmt.Sprintf("campaign %q has no <!-- report:%s --> block in %s", c.Name, c.Name, *docsFlag))
		}
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "report: "+p)
		}
		os.Exit(1)
	}

	// Execute the needed campaigns and render block contents.
	content := map[string]string{}
	if _, ok := needed["scenarios"]; ok {
		content["scenarios"] = report.BlockContent(report.ScenarioTable(), *quick)
	}
	names := make([]string, 0, len(needed))
	for name := range needed {
		if name != "scenarios" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	// Campaigns execute concurrently (each additionally fans its own rows
	// over the runner's workers — single-row campaigns would otherwise
	// serialize the cold CI gate); results are collected by index and
	// spliced after everything drains, so output bytes never depend on
	// completion order.
	rendered := make([]string, len(names))
	errs := make([]error, len(names))
	cp := &pool.Pool{Workers: len(names)}
	poolErr := cp.Run(ctx, len(names), func(i int) {
		camp, _ := ecnsim.CampaignFor(names[i])
		if !*quiet {
			fmt.Fprintf(os.Stderr, "campaign %s (%s, %d rows)\n", camp.Name, camp.Scenario, len(camp.Rows))
		}
		cr, err := runner.Run(ctx, camp)
		if err != nil {
			errs[i] = err
			return
		}
		rendered[i] = report.BlockContent(report.CampaignTable(cr), *quick)
	})
	if poolErr != nil {
		fatal(poolErr)
	}
	for i, err := range errs {
		if err != nil {
			fatal(err)
		}
		content[names[i]] = rendered[i]
	}
	if runner.Cache != nil && !*quiet {
		hits, misses := runner.Cache.Stats()
		fmt.Fprintf(os.Stderr, "cache: %d hit(s), %d miss(es) (%s)\n", hits, misses, *cacheDir)
	}

	drifted := 0
	for _, st := range states {
		next, err := report.Splice(st.text, content)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", st.path, err))
		}
		switch {
		case next == st.text:
			fmt.Printf("report: %s up to date\n", st.path)
		case *check:
			drifted++
			fmt.Printf("report: %s drifted:\n%s", st.path, report.Diff(st.text, next))
		default:
			if err := os.WriteFile(st.path, []byte(next), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("report: wrote %s\n", st.path)
		}
	}
	if drifted > 0 {
		fmt.Fprintf(os.Stderr, "report: %d file(s) drifted from the campaign book — regenerate with: go run ./cmd/report -quick\n", drifted)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "report:", err)
	os.Exit(1)
}
