// Command figures regenerates every table and figure of the paper: Tables I
// and II (ECN codepoints), Figure 1 (queue-composition snapshot), Figures
// 2a/2b (Hadoop runtime), 3a/3b (cluster throughput), 4a/4b (network
// latency), plus the Section IV/VI headline numbers.
//
//	figures -scale test    # minutes: small cluster, small input
//	figures -scale paper   # the full-pressure grid (longer)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/ecnsim"
)

func main() {
	var (
		scaleName = flag.String("scale", "test", "experiment scale: test | paper")
		repeats   = flag.Int("repeats", 1, "seeds averaged per grid point")
		quiet     = flag.Bool("q", false, "suppress progress output")
		loadPath  = flag.String("load", "", "render figures from a sweep archive (cmd/sweep -json) instead of re-simulating")
	)
	fl := ecnsim.NewFlagBinder(ecnsim.FlagsFabric | ecnsim.FlagsTenant | ecnsim.FlagsSeed)
	fl.Bind(flag.CommandLine)
	flag.Parse()
	flagOpts, err := fl.Options()
	if err != nil {
		fatal(err)
	}

	scaleOpt := ecnsim.TestScale()
	switch *scaleName {
	case "test":
	case "paper":
		scaleOpt = ecnsim.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	var s *ecnsim.Sweep
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fatal(err)
		}
		s, err = ecnsim.ReadSweepJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	// Companion runs (Figure 1, aqmcompare) match the grid's scale: the
	// archive's when loading, the -scale flag's otherwise. The tenant knobs
	// ride along harmlessly — these scenarios never enable the workload
	// engine.
	opts := append([]ecnsim.Option{scaleOpt}, flagOpts...)
	if s != nil {
		opts = s.ScaleOptions()
	}
	opts = append(opts, ecnsim.TargetDelay(100*time.Microsecond))

	fmt.Print(ecnsim.TableI())
	fmt.Println()
	fmt.Print(ecnsim.TableII())
	fmt.Println()

	if !*quiet {
		fmt.Fprintln(os.Stderr, "figures: sampling Figure 1 queue snapshot...")
	}
	snap, err := ecnsim.Figure1(200*time.Microsecond, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Print(snap.Render())
	fmt.Println()

	if s == nil {
		var err error
		// -jobs / -rpc-clients run the grid under the multi-tenant engine.
		sweepOpts := append([]ecnsim.Option{scaleOpt}, flagOpts...)
		s, err = ecnsim.NewSweep(sweepOpts...)
		if err != nil {
			fatal(err)
		}
		s.SetRepeats(*repeats)
		if !*quiet {
			start := time.Now()
			s.OnProgress(func(done, total int, label string) {
				fmt.Fprintf(os.Stderr, "figures: [%3d/%3d] %-40s (%.0fs elapsed)\n",
					done+1, total, label, time.Since(start).Seconds())
			})
		}
		if err := s.Execute(context.Background()); err != nil {
			fatal(err)
		}
	}

	for _, fig := range []struct {
		m   ecnsim.FigureMetric
		buf ecnsim.BufferDepth
		no  string
	}{
		{ecnsim.RuntimeMetric, ecnsim.Shallow, "2a"},
		{ecnsim.RuntimeMetric, ecnsim.Deep, "2b"},
		{ecnsim.ThroughputMetric, ecnsim.Shallow, "3a"},
		{ecnsim.ThroughputMetric, ecnsim.Deep, "3b"},
		{ecnsim.LatencyMetric, ecnsim.Shallow, "4a"},
		{ecnsim.LatencyMetric, ecnsim.Deep, "4b"},
	} {
		fmt.Print(s.RenderFigure(fig.m, fig.buf, fig.no))
		fmt.Println()
	}

	if !*quiet {
		fmt.Fprintln(os.Stderr, "figures: running AQM generalization comparison...")
	}
	cmpSet, err := ecnsim.RunScenario(context.Background(), "aqmcompare", opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Print(ecnsim.RenderAQMTable(cmpSet.Results))
	fmt.Println()

	h := s.Headline(0) // most aggressive marking threshold
	fmt.Println("Headline (true simple marking scheme, aggressive threshold):")
	fmt.Printf("  throughput vs droptail/shallow:      %.2fx (paper: ~1.10x boost)\n", h.ThroughputGain)
	fmt.Printf("  latency reduction vs droptail/deep:  %.0f%% (paper: ~85%%)\n", 100*h.LatencyReduction)
	fmt.Printf("  shallow marking vs droptail/deep:    %.2fx effective speed (paper: shallow reaches deep; 1.0 = parity)\n", h.ShallowReachesDeep)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(2)
}
