// Command figures regenerates every table and figure of the paper: Tables I
// and II (ECN codepoints), Figure 1 (queue-composition snapshot), Figures
// 2a/2b (Hadoop runtime), 3a/3b (cluster throughput), 4a/4b (network
// latency), plus the Section IV/VI headline numbers.
//
//	figures -scale test    # minutes: small cluster, small input
//	figures -scale paper   # the full-pressure grid (longer)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/figures"
	"repro/internal/units"
)

func main() {
	var (
		scaleName = flag.String("scale", "test", "experiment scale: test | paper")
		seed      = flag.Uint64("seed", 1, "base seed")
		repeats   = flag.Int("repeats", 1, "seeds averaged per grid point")
		quiet     = flag.Bool("q", false, "suppress progress output")
		loadPath  = flag.String("load", "", "render figures from a sweep archive (cmd/sweep -json) instead of re-simulating")
	)
	flag.Parse()

	var scale experiment.Scale
	var loaded *experiment.Sweep
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(2)
		}
		loaded, err = experiment.ReadJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(2)
		}
		scale = loaded.Scale
	} else {
		switch *scaleName {
		case "test":
			scale = experiment.TestScale()
		case "paper":
			scale = experiment.PaperScale()
		default:
			fmt.Fprintf(os.Stderr, "figures: unknown scale %q\n", *scaleName)
			os.Exit(2)
		}
	}

	fmt.Print(figures.TableI())
	fmt.Println()
	fmt.Print(figures.TableII())
	fmt.Println()

	if !*quiet {
		fmt.Fprintln(os.Stderr, "figures: sampling Figure 1 queue snapshot...")
	}
	snap := figures.Figure1(scale, 100*units.Microsecond, 200*units.Microsecond, *seed)
	fmt.Print(snap.Render())
	fmt.Println()

	s := loaded
	if s == nil {
		s = experiment.NewSweep(scale, *seed)
		s.Repeats = *repeats
		if !*quiet {
			start := time.Now()
			s.Progress = func(done, total int, cfg experiment.Config) {
				fmt.Fprintf(os.Stderr, "figures: [%3d/%3d] %-40s (%.0fs elapsed)\n",
					done+1, total, cfg.String(), time.Since(start).Seconds())
			}
		}
		s.Execute()
	}

	fmt.Print(figures.RenderFigure(s, figures.MetricRuntime, cluster.Shallow, "2a"))
	fmt.Println()
	fmt.Print(figures.RenderFigure(s, figures.MetricRuntime, cluster.Deep, "2b"))
	fmt.Println()
	fmt.Print(figures.RenderFigure(s, figures.MetricThroughput, cluster.Shallow, "3a"))
	fmt.Println()
	fmt.Print(figures.RenderFigure(s, figures.MetricThroughput, cluster.Deep, "3b"))
	fmt.Println()
	fmt.Print(figures.RenderFigure(s, figures.MetricLatency, cluster.Shallow, "4a"))
	fmt.Println()
	fmt.Print(figures.RenderFigure(s, figures.MetricLatency, cluster.Deep, "4b"))
	fmt.Println()

	if !*quiet {
		fmt.Fprintln(os.Stderr, "figures: running AQM generalization comparison...")
	}
	cmp := experiment.CompareAQMs(scale, 100*units.Microsecond, *seed)
	fmt.Print(figures.RenderAQMComparison(cmp))
	fmt.Println()

	h := figures.Headline(s, 0) // most aggressive marking threshold
	fmt.Println("Headline (true simple marking scheme, aggressive threshold):")
	fmt.Printf("  throughput vs droptail/shallow:      %.2fx (paper: ~1.10x boost)\n", h.ThroughputGain)
	fmt.Printf("  latency reduction vs droptail/deep:  %.0f%% (paper: ~85%%)\n", 100*h.LatencyReduction)
	fmt.Printf("  shallow marking vs droptail/deep:    %.2fx effective speed (paper: shallow reaches deep; 1.0 = parity)\n", h.ShallowReachesDeep)
}
