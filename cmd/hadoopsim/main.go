// Command hadoopsim runs one simulated Terasort under a chosen queue
// discipline, buffer depth, transport and target delay, and prints the
// paper's three metrics plus the drop/mark diagnostics.
//
// Examples:
//
//	hadoopsim -queue droptail -buffer shallow
//	hadoopsim -queue red -mode ack+syn -transport dctcp -target 100us
//	hadoopsim -queue simplemark -transport tcp-ecn -target 100us -buffer deep
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/qdisc"
	"repro/internal/tcp"
	"repro/internal/units"
)

func main() {
	var (
		queue     = flag.String("queue", "droptail", "queue discipline: droptail | red | simplemark")
		mode      = flag.String("mode", "default", "RED protection mode: default | ece-bit | ack+syn")
		transport = flag.String("transport", "", "tcp | tcp-ecn | dctcp (default: tcp for droptail, tcp-ecn otherwise)")
		buffer    = flag.String("buffer", "shallow", "switch buffer depth: shallow (1MB/port) | deep (10MB/port)")
		target    = flag.Duration("target", 500*units.Microsecond, "AQM target delay")
		nodes     = flag.Int("nodes", 16, "cluster size")
		input     = flag.String("input", "1GiB", "Terasort input size")
		block     = flag.String("block", "64MiB", "HDFS block size")
		reducers  = flag.Int("reducers", 32, "reduce tasks")
		seed      = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	inputSz, err := units.ParseByteSize(*input)
	if err != nil {
		fatal(err)
	}
	blockSz, err := units.ParseByteSize(*block)
	if err != nil {
		fatal(err)
	}

	setup, err := parseSetup(*queue, *mode, *transport)
	if err != nil {
		fatal(err)
	}
	buf := cluster.Shallow
	if strings.EqualFold(*buffer, "deep") {
		buf = cluster.Deep
	}

	cfg := experiment.Config{
		Setup:       setup,
		Buffer:      buf,
		TargetDelay: *target,
		Scale: experiment.Scale{
			Nodes: *nodes, InputSize: inputSz, BlockSize: blockSz, Reducers: *reducers,
		},
		Seed: *seed,
	}
	fmt.Printf("running %s (nodes=%d input=%v reducers=%d)\n", cfg.String(), *nodes, inputSz, *reducers)
	r := experiment.Run(cfg)

	fmt.Printf("\nJob runtime:            %v\n", r.Runtime)
	fmt.Printf("Throughput per node:    %v (shuffle window)\n", r.ThroughputPerNode)
	fmt.Printf("Mean packet latency:    %v\n", r.MeanLatency)
	fmt.Printf("P99 packet latency:     %v\n", r.P99Latency)
	fmt.Printf("Shuffled bytes:         %v\n", r.ShuffledBytes)
	fmt.Printf("Early drops:            %d\n", r.EarlyDrops)
	fmt.Printf("Overflow drops:         %d\n", r.OverflowDrops)
	fmt.Printf("ACK share of drops:     %.1f%%\n", 100*r.AckDropShare)
	fmt.Printf("CE marks:               %d\n", r.Marks)
	fmt.Printf("Retransmits:            %d (RTO events: %d)\n", r.Retransmits, r.RTOEvents)
	fmt.Printf("SYN retries:            %d (fetch retries: %d)\n", r.SynRetries, r.FetchRetries)
}

func parseSetup(queue, mode, transport string) (experiment.QueueSetup, error) {
	var v tcp.Variant
	switch strings.ToLower(transport) {
	case "tcp":
		v = tcp.Reno
	case "tcp-ecn":
		v = tcp.RenoECN
	case "dctcp":
		v = tcp.DCTCP
	case "":
		if strings.EqualFold(queue, "droptail") {
			v = tcp.Reno
		} else {
			v = tcp.RenoECN
		}
	default:
		return experiment.QueueSetup{}, fmt.Errorf("unknown transport %q", transport)
	}
	var pm qdisc.ProtectMode
	switch strings.ToLower(mode) {
	case "default":
		pm = qdisc.ProtectNone
	case "ece-bit", "ece":
		pm = qdisc.ProtectECE
	case "ack+syn", "acksyn":
		pm = qdisc.ProtectACKSYN
	default:
		return experiment.QueueSetup{}, fmt.Errorf("unknown protection mode %q", mode)
	}
	var qk cluster.QueueKind
	switch strings.ToLower(queue) {
	case "droptail":
		qk = cluster.QueueDropTail
	case "red":
		qk = cluster.QueueRED
	case "simplemark":
		qk = cluster.QueueSimpleMark
	default:
		return experiment.QueueSetup{}, fmt.Errorf("unknown queue %q", queue)
	}
	label := fmt.Sprintf("%s/%s/%s", queue, v, mode)
	return experiment.QueueSetup{Label: label, Queue: qk, Protect: pm, Transport: v}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hadoopsim:", err)
	os.Exit(2)
}
