// Command hadoopsim runs one simulated Terasort under a chosen queue
// discipline, buffer depth, transport and target delay, and prints the
// paper's three metrics plus the drop/mark diagnostics.
//
// Examples:
//
//	hadoopsim -queue droptail -buffer shallow
//	hadoopsim -queue red -mode ack+syn -transport dctcp -target 100us
//	hadoopsim -queue simplemark -transport tcp-ecn -target 100us -buffer deep
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/ecnsim"
)

func main() {
	fl := ecnsim.NewFlagBinder(ecnsim.FlagsQueue | ecnsim.FlagsBuffer |
		ecnsim.FlagsWorkload | ecnsim.FlagsFabric | ecnsim.FlagsSeed)
	fl.Bind(flag.CommandLine)
	flag.Parse()

	opts, err := fl.Options()
	if err != nil {
		fatal(err)
	}
	c, err := ecnsim.NewCluster(opts...)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("running %s\n", c)
	rs, err := ecnsim.RunScenario(context.Background(), "terasort", opts...)
	if err != nil {
		fatal(err)
	}
	r := rs.Results[0]

	us := func(key string) time.Duration { return r.Duration(key).Round(time.Microsecond) }
	fmt.Printf("\nJob runtime:            %v\n", us(ecnsim.KeyRuntime))
	fmt.Printf("Throughput per node:    %.1f Mbps (shuffle window)\n", r.Value(ecnsim.KeyThroughput)/1e6)
	fmt.Printf("Mean packet latency:    %v\n", us(ecnsim.KeyMeanLatency))
	fmt.Printf("P99 packet latency:     %v\n", us(ecnsim.KeyP99Latency))
	fmt.Printf("Shuffled bytes:         %s\n", ecnsim.FormatSize(int64(r.Value(ecnsim.KeyShuffledBytes))))
	fmt.Printf("Early drops:            %.0f\n", r.Value(ecnsim.KeyEarlyDrops))
	fmt.Printf("Overflow drops:         %.0f\n", r.Value(ecnsim.KeyOverflowDrops))
	fmt.Printf("ACK share of drops:     %.1f%%\n", 100*r.Value(ecnsim.KeyAckDropShare))
	fmt.Printf("CE marks:               %.0f\n", r.Value(ecnsim.KeyMarks))
	fmt.Printf("Retransmits:            %.0f (RTO events: %.0f)\n",
		r.Value(ecnsim.KeyRetransmits), r.Value(ecnsim.KeyRTOEvents))
	fmt.Printf("SYN retries:            %.0f (fetch retries: %.0f)\n",
		r.Value(ecnsim.KeySynRetries), r.Value(ecnsim.KeyFetchRetries))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hadoopsim:", err)
	os.Exit(2)
}
