// Command bench runs the fixed benchmark suite over the ecnsim scenario API
// and reports the substrate's performance: events/sec, ns per simulated
// second and allocs/event per scenario. It writes a BENCH_<rev>.json report
// (schema ecnsim-bench/v1) and, given a baseline report, acts as the CI
// regression gate: exit status 1 when events/sec drops beyond tolerance or
// allocs/event grows.
//
// Usage:
//
//	bench [-suite full|reduced] [-rev id] [-out file] [-baseline file]
//	      [-max-drop 0.15] [-max-alloc-growth 0.05]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/benchkit"
)

func main() {
	var (
		suite      = flag.String("suite", benchkit.SuiteFull, "benchmark suite: full|reduced")
		rev        = flag.String("rev", defaultRevision(), "revision id recorded in the report and output filename")
		out        = flag.String("out", "", "output path (default BENCH_<rev>.json; - for stdout only)")
		baseline   = flag.String("baseline", "", "baseline report to gate against (empty = no gate)")
		maxDrop    = flag.Float64("max-drop", benchkit.DefaultTolerances().MaxThroughputDrop, "max fractional events/sec drop vs baseline")
		maxGrowth  = flag.Float64("max-alloc-growth", benchkit.DefaultTolerances().MaxAllocGrowth, "max absolute allocs/event growth vs baseline")
		reps       = flag.Int("reps", 3, "repetitions per scenario (best wall time and lowest allocs kept)")
		shardGate  = flag.Float64("min-shard-speedup", 0, "fail unless leafspine-sharded reaches this multiple of leafspine-ecmp's events/sec with a bit-identical event count (0 = no speedup floor, event counts still checked)")
		hybridGate = flag.Float64("min-hybrid-factor", 10, "fail unless macroscale-hybrid beats the packet engine's extrapolated event count (from leafspine-ecmp's events/byte) by this factor (0 = accounting checked only)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	specs, err := benchkit.Suite(*suite)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("suite=%s rev=%s (%d scenarios)\n", *suite, *rev, len(specs))
	rep, err := benchkit.Run(ctx, *suite, specs, *rev, *reps, func(m benchkit.Measurement) {
		fmt.Printf("%-16s %12.0f events/s %14.0f ns/sim-s %8.3f allocs/event  (events=%d wall=%dms)\n",
			m.Name, m.EventsPerSec, m.NSPerSimSec, m.AllocsPerEvent, m.Events, m.WallNS/1e6)
	})
	if err != nil {
		fatal(err)
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", *rev)
	}
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	} else if err := rep.WriteJSON(os.Stdout); err != nil {
		fatal(err)
	}

	// The shard gate compares two scenarios inside this report — no baseline
	// needed — so it runs whenever both were measured.
	if findings := benchkit.ShardGate(rep, "leafspine-ecmp", "leafspine-sharded", *shardGate); len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "bench: sharded event loop gate failed:\n")
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, "  - "+f)
		}
		os.Exit(1)
	}

	// The hybrid gate likewise compares within this report: the fluid/packet
	// engine must make bytes an order of magnitude cheaper in events than the
	// packet reference's events-per-byte rate predicts.
	if findings := benchkit.HybridGate(rep, "leafspine-ecmp", "macroscale-hybrid", *hybridGate); len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "bench: hybrid engine gate failed:\n")
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, "  - "+f)
		}
		os.Exit(1)
	}

	if *baseline == "" {
		return
	}
	bf, err := os.Open(*baseline)
	if err != nil {
		fatal(err)
	}
	base, err := benchkit.ReadReport(bf)
	bf.Close()
	if err != nil {
		fatal(err)
	}
	findings, err := benchkit.Compare(base, rep, benchkit.Tolerances{
		MaxThroughputDrop: *maxDrop,
		MaxAllocGrowth:    *maxGrowth,
	})
	if err != nil {
		fatal(err)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "bench: %d regression(s) vs %s:\n", len(findings), *baseline)
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, "  - "+f)
		}
		os.Exit(1)
	}
	fmt.Printf("no regressions vs %s (max drop %.0f%%, max alloc growth %.3f)\n",
		*baseline, 100**maxDrop, *maxGrowth)
}

// defaultRevision picks the revision id CI exports, falling back to "dev".
func defaultRevision() string {
	if sha := os.Getenv("GITHUB_SHA"); len(sha) >= 8 {
		return sha[:8]
	}
	return "dev"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
