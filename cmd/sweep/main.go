// Command sweep executes the full experiment grid and emits one row per run
// on stdout (tab-separated by default, CSV with -csv), for plotting or
// archival. Use -json to archive the grid for cmd/figures -load.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/ecnsim"
)

func main() {
	var (
		scaleName = flag.String("scale", "test", "experiment scale: test | paper")
		repeats   = flag.Int("repeats", 1, "seeds averaged per grid point")
		workers   = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		jsonPath  = flag.String("json", "", "also archive the sweep as JSON to this file")
		asCSV     = flag.Bool("csv", false, "emit CSV instead of the TSV summary")
	)
	fl := ecnsim.NewFlagBinder(ecnsim.FlagsFabric | ecnsim.FlagsTenant | ecnsim.FlagsSeed)
	fl.Bind(flag.CommandLine)
	flag.Parse()

	var opts []ecnsim.Option
	switch *scaleName {
	case "test":
		opts = append(opts, ecnsim.TestScale())
	case "paper":
		opts = append(opts, ecnsim.PaperScale())
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	// After the scale, so -racks/-spines reshape the named scale's fabric.
	// -jobs / -rpc-clients switch every grid cell onto the multi-tenant
	// workload engine; the knobs ride along in the -json archive.
	flagOpts, err := fl.Options()
	if err != nil {
		fatal(err)
	}
	opts = append(opts, flagOpts...)
	s, err := ecnsim.NewSweep(opts...)
	if err != nil {
		fatal(err)
	}
	s.SetRepeats(*repeats)
	s.SetWorkers(*workers)
	start := time.Now()
	s.OnProgress(func(done, total int, label string) {
		fmt.Fprintf(os.Stderr, "sweep: [%3d/%3d] %-40s (%.0fs)\n",
			done+1, total, label, time.Since(start).Seconds())
	})
	if err := s.Execute(context.Background()); err != nil {
		fatal(err)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal(err)
		}
		if err := s.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	rs := s.Results()
	if *asCSV {
		if err := rs.WriteCSV(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Println("label\ttarget_us\truntime_ms\tthroughput_mbps\tlatency_us\tp99_us\tearly\toverflow\tack_share\tmarks\trtx\trto\tsyn")
	for _, r := range rs.Results {
		fmt.Printf("%s\t%.0f\t%.3f\t%.1f\t%.1f\t%.1f\t%.0f\t%.0f\t%.3f\t%.0f\t%.0f\t%.0f\t%.0f\n",
			r.Label,
			r.Value(ecnsim.KeyTargetDelay)*1e6,
			r.Value(ecnsim.KeyRuntime)*1e3,
			r.Value(ecnsim.KeyThroughput)/1e6,
			r.Value(ecnsim.KeyMeanLatency)*1e6,
			r.Value(ecnsim.KeyP99Latency)*1e6,
			r.Value(ecnsim.KeyEarlyDrops), r.Value(ecnsim.KeyOverflowDrops),
			r.Value(ecnsim.KeyAckDropShare),
			r.Value(ecnsim.KeyMarks), r.Value(ecnsim.KeyRetransmits),
			r.Value(ecnsim.KeyRTOEvents), r.Value(ecnsim.KeySynRetries))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
