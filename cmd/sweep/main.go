// Command sweep executes the full experiment grid and emits one
// tab-separated row per run on stdout, for plotting or archival. Columns:
//
//	buffer  setup  target_delay_us  runtime_ms  throughput_mbps
//	latency_us  p99_us  early_drops  overflow_drops  ack_drop_share
//	marks  retransmits  rto_events  syn_retries
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/units"
)

func main() {
	var (
		scaleName = flag.String("scale", "test", "experiment scale: test | paper")
		seed      = flag.Uint64("seed", 1, "base seed")
		repeats   = flag.Int("repeats", 1, "seeds averaged per grid point")
		jsonPath  = flag.String("json", "", "also archive the sweep as JSON to this file")
	)
	flag.Parse()

	var scale experiment.Scale
	switch *scaleName {
	case "test":
		scale = experiment.TestScale()
	case "paper":
		scale = experiment.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	s := experiment.NewSweep(scale, *seed)
	s.Repeats = *repeats
	start := time.Now()
	s.Progress = func(done, total int, cfg experiment.Config) {
		fmt.Fprintf(os.Stderr, "sweep: [%3d/%3d] %-40s (%.0fs)\n",
			done+1, total, cfg.String(), time.Since(start).Seconds())
	}
	s.Execute()

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		if err := s.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
	}

	fmt.Println("buffer\tsetup\ttarget_us\truntime_ms\tthroughput_mbps\tlatency_us\tp99_us\tearly\toverflow\tack_share\tmarks\trtx\trto\tsyn")
	emit := func(buf cluster.BufferDepth, label string, r experiment.Result) {
		fmt.Printf("%s\t%s\t%.0f\t%.3f\t%.1f\t%.1f\t%.1f\t%d\t%d\t%.3f\t%d\t%d\t%d\t%d\n",
			buf, label,
			float64(r.Config.TargetDelay)/float64(units.Microsecond),
			float64(r.Runtime)/float64(units.Millisecond),
			float64(r.ThroughputPerNode)/float64(units.Mbps),
			float64(r.MeanLatency)/float64(units.Microsecond),
			float64(r.P99Latency)/float64(units.Microsecond),
			r.EarlyDrops, r.OverflowDrops, r.AckDropShare,
			r.Marks, r.Retransmits, r.RTOEvents, r.SynRetries)
	}
	for _, buf := range []cluster.BufferDepth{cluster.Shallow, cluster.Deep} {
		emit(buf, "droptail", s.DropTail[buf])
		for label, series := range s.Series[buf] {
			for _, r := range series {
				emit(buf, label, r)
			}
		}
	}
}
