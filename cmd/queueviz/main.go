// Command queueviz reproduces Figure 1: it runs a Terasort over an
// ECN-enabled RED queue in its default (unprotected) mode and reports the
// composition of a switch egress queue during the shuffle — showing the
// queue dominated by ECT-capable data while the non-ECT ACKs that arrive are
// disproportionately dropped.
//
// With -trace N it additionally prints the last N drop events as an
// NS-2-style packet trace, answering "who died, and where".
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/figures"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/qdisc"
	"repro/internal/tcp"
	"repro/internal/trace"
	"repro/internal/units"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 8, "cluster size")
		input    = flag.String("input", "256MiB", "Terasort input size")
		reducers = flag.Int("reducers", 16, "reduce tasks")
		target   = flag.Duration("target", 100*units.Microsecond, "RED target delay")
		interval = flag.Duration("interval", 200*units.Microsecond, "queue sampling interval")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		traceN   = flag.Int("trace", 0, "also print the last N drop events")
	)
	flag.Parse()

	inputSz, err := units.ParseByteSize(*input)
	if err != nil {
		fmt.Fprintln(os.Stderr, "queueviz:", err)
		os.Exit(2)
	}
	scale := experiment.Scale{
		Nodes:     *nodes,
		InputSize: inputSz,
		BlockSize: inputSz / units.ByteSize(*nodes),
		Reducers:  *reducers,
	}
	snap := figures.Figure1(scale, *target, *interval, *seed)
	fmt.Print(snap.Render())

	if *traceN > 0 {
		fmt.Printf("\nlast %d drop events (RED default mode):\n", *traceN)
		dumpDropTrace(scale, *target, *seed, *traceN)
	}
}

// dumpDropTrace reruns the Figure 1 configuration with a drop-filtered
// tracer chained in front of the metrics collector.
func dumpDropTrace(scale experiment.Scale, target units.Duration, seed uint64, n int) {
	spec := cluster.DefaultSpec()
	spec.Nodes = scale.Nodes
	spec.Queue = cluster.QueueRED
	spec.TargetDelay = target
	spec.Protect = qdisc.ProtectNone
	spec.Transport = tcp.RenoECN
	spec.Seed = seed
	c := cluster.New(spec)

	tr := trace.New(n, metrics.New(1<<14, seed))
	tr.Filter = trace.DropsOnly()
	c.Topo.Net.SetObserver(tr)

	jobCfg := mapred.TerasortConfig(scale.InputSize, scale.Reducers)
	jobCfg.BlockSize = scale.BlockSize
	c.RunJob(jobCfg)
	if err := tr.Dump(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "queueviz:", err)
	}
}
