// Command queueviz reproduces Figure 1: it runs a Terasort over an
// ECN-enabled RED queue in its default (unprotected) mode and reports the
// composition of a switch egress queue during the shuffle — showing the
// queue dominated by ECT-capable data while the non-ECT ACKs that arrive are
// disproportionately dropped.
//
// With -trace N it additionally prints the last N drop events as an
// NS-2-style packet trace, answering "who died, and where".
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/ecnsim"
)

func main() {
	// Only the workload flags: the queue configuration is fixed — Figure 1
	// is a portrait of RED's default (unprotected) mode.
	fl := ecnsim.NewFlagBinder(ecnsim.FlagsWorkload | ecnsim.FlagsFabric | ecnsim.FlagsSeed)
	fl.Nodes = 8
	fl.Input = "256MiB"
	fl.Block = "" // auto: input/nodes
	fl.Reducers = 16
	fl.Target = 100 * time.Microsecond
	fl.Bind(flag.CommandLine)
	var (
		interval = flag.Duration("interval", 200*time.Microsecond, "queue sampling interval")
		traceN   = flag.Int("trace", 0, "also print the last N drop events")
	)
	flag.Parse()

	opts, err := fl.Options()
	if err != nil {
		fatal(err)
	}
	snap, err := ecnsim.Figure1(*interval, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Print(snap.Render())

	if *traceN > 0 {
		fmt.Printf("\nlast %d drop events (RED default mode):\n", *traceN)
		if err := ecnsim.WriteDropTrace(os.Stdout, *traceN, opts...); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "queueviz:", err)
	os.Exit(2)
}
