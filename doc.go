// Package repro reproduces "High Throughput and Low Latency on Hadoop
// Clusters using Explicit Congestion Notification: The Untold Truth"
// (Fischer e Silva & Carpenter, IEEE CLUSTER 2017) as a self-contained Go
// simulation suite.
//
// The paper shows that ECN-enabled AQMs drop the packets that cannot carry a
// congestion mark — pure ACKs, SYNs and SYN-ACKs — and that on Hadoop
// shuffle traffic this bias stalls TCP windows, forces retransmission
// timeouts, and costs throughput. It proposes protecting those packets from
// early drops (or replacing the AQM with a pure marking scheme) and shows
// full throughput with an ~85% latency reduction.
//
// This module contains the full stack needed to regenerate every table and
// figure: a discrete-event engine (internal/sim), a packet-level network
// fabric (internal/netsim), the queue disciplines under study
// (internal/qdisc), TCP NewReno/ECN/DCTCP with SACK (internal/tcp), an
// MRPerf-style MapReduce simulator (internal/mapred), and the experiment and
// figure harnesses (internal/experiment, internal/figures). The public API —
// the functional-options builder, the scenario registry and the parallel
// Runner — is the ecnsim package. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
//
// The benchmarks in bench_test.go regenerate each figure:
//
//	go test -bench=Figure -benchmem
//
// and the commands under cmd/ expose the same as CLIs (cmd/figures,
// cmd/sweep, cmd/hadoopsim, cmd/queueviz, cmd/bench, cmd/report). See
// README.md for the quickstart and scenario overview.
package repro
