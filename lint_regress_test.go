// The determinism-lint regression gate: the full analyzer suite over the
// real module must report nothing. A finding here means either new code
// broke the bit-identical contract (fix it) or a deliberate exception lost
// its "//ecnlint:allow <analyzer> <reason>" annotation (restore it). This is
// the same check CI runs as `go run ./cmd/ecnlint ./...`; keeping it a test
// makes `go test ./...` sufficient locally.
package repro_test

import (
	"testing"

	"repro/internal/lint"
)

func TestDeterminismLintIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("relints the whole module; skipped in -short")
	}
	findings, err := lint.Module(".", "./...")
	if err != nil {
		t.Fatalf("running the determinism suite: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("fix the findings or annotate deliberate exceptions with %q (DESIGN.md §2.5)", lint.AllowPrefix+" <analyzer> <reason>")
	}
}
