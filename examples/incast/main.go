// Incast: the many-to-one microbenchmark behind the shuffle's worst case.
// N senders start simultaneous bulk transfers to one receiver through a
// single switch; the example compares flow completion times and losses for
// each queue discipline, including the paper's protection modes.
//
//	go run ./examples/incast
//	go run ./examples/incast -senders 15 -size 8MiB
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/flow"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/units"
)

func main() {
	var (
		senders = flag.Int("senders", 8, "number of concurrent senders")
		sizeStr = flag.String("size", "4MiB", "bytes per sender")
		target  = flag.Duration("target", 100*units.Microsecond, "AQM target delay")
	)
	flag.Parse()
	size, err := units.ParseByteSize(*sizeStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "incast:", err)
		os.Exit(2)
	}

	type setup struct {
		name    string
		variant tcp.Variant
		factory topo.QdiscFactory
	}
	capacity := int(1 * units.MiB / 1500)
	setups := []setup{
		{"droptail + tcp", tcp.Reno, func(label string, rate units.Bandwidth) qdisc.Qdisc {
			return qdisc.NewDropTail(capacity)
		}},
		{"red default + tcp-ecn", tcp.RenoECN, redFactory(capacity, *target, qdisc.ProtectNone)},
		{"red ece-bit + tcp-ecn", tcp.RenoECN, redFactory(capacity, *target, qdisc.ProtectECE)},
		{"red ack+syn + tcp-ecn", tcp.RenoECN, redFactory(capacity, *target, qdisc.ProtectACKSYN)},
		{"red ack+syn + dctcp", tcp.DCTCP, redFactory(capacity, *target, qdisc.ProtectACKSYN)},
		{"simplemark + dctcp", tcp.DCTCP, func(label string, rate units.Bandwidth) qdisc.Qdisc {
			return qdisc.SimpleMarkForTargetDelay(capacity, rate, *target)
		}},
	}

	fmt.Printf("incast: %d senders x %v -> 1 receiver, 10 Gbps star, %d-packet ports\n\n",
		*senders, size, capacity)
	for _, s := range setups {
		runIncast(s.name, s.variant, s.factory, *senders, size)
	}
}

func redFactory(capacity int, target units.Duration, mode qdisc.ProtectMode) topo.QdiscFactory {
	return func(label string, rate units.Bandwidth) qdisc.Qdisc {
		cfg := qdisc.REDForTargetDelay(capacity, rate, target)
		cfg.ECN = true
		cfg.Protect = mode
		return qdisc.NewRED(cfg)
	}
}

func runIncast(name string, variant tcp.Variant, factory topo.QdiscFactory, senders int, size units.ByteSize) {
	eng := sim.New()
	cl := topo.Build(eng, topo.Config{
		Nodes:       senders + 1,
		LinkRate:    10 * units.Gbps,
		LinkDelay:   5 * units.Microsecond,
		HostQueue:   factory,
		SwitchQueue: factory,
	})
	col := metrics.New(1<<14, 7)
	cl.Net.SetObserver(col)

	stats := &tcp.Stats{}
	cfg := tcp.DefaultConfig(variant)
	stacks := make([]*tcp.Stack, len(cl.Hosts))
	for i, h := range cl.Hosts {
		stacks[i] = tcp.NewStack(h, cfg, stats)
	}
	flow.RegisterBulkSink(stacks[senders], 9000, nil)

	var done int
	var last units.Time
	dst := packet.Addr{Node: cl.Hosts[senders].ID(), Port: 9000}
	for i := 0; i < senders; i++ {
		flow.StartBulk(stacks[i], dst, size, func(r *flow.BulkResult) {
			done++
			if r.Done > last {
				last = r.Done
			}
		})
	}
	eng.SetDeadline(units.Time(120 * units.Second))
	eng.Run()

	agg := units.Bandwidth(0)
	if last > 0 {
		agg = units.Bandwidth(float64(units.ByteSize(senders)*size*8) / last.Seconds())
	}
	early, ovf := col.Drops()
	fmt.Printf("%-24s done=%d/%d in %-14v agg=%-12v lat(mean)=%-12v drops=%d rtx=%d rto=%d\n",
		name, done, senders, units.Duration(last).Round(units.Microsecond), agg,
		col.MeanLatency().Round(units.Microsecond), early+ovf, stats.Retransmits(), stats.RTOEvents)
}
