// Incast: the many-to-one microbenchmark behind the shuffle's worst case.
// N senders start simultaneous bulk transfers to one receiver through a
// single switch; the example compares flow completion times and losses for
// each queue discipline, including the paper's protection modes — all runs
// fanned in parallel over the ecnsim Runner.
//
//	go run ./examples/incast
//	go run ./examples/incast -senders 15 -size 8MiB
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/ecnsim"
)

func main() {
	var (
		senders = flag.Int("senders", 8, "number of concurrent senders")
		sizeStr = flag.String("size", "4MiB", "bytes per sender")
		target  = flag.Duration("target", 100*time.Microsecond, "AQM target delay")
	)
	flag.Parse()
	size, err := ecnsim.ParseSize(*sizeStr)
	if err != nil {
		log.Fatalf("incast: %v", err)
	}

	type setup struct {
		name string
		opts []ecnsim.Option
	}
	setups := []setup{
		{"droptail + tcp", []ecnsim.Option{ecnsim.Queue(ecnsim.DropTail)}},
		{"red default + tcp-ecn", []ecnsim.Option{ecnsim.Queue(ecnsim.RED)}},
		{"red ece-bit + tcp-ecn", []ecnsim.Option{ecnsim.Queue(ecnsim.RED), ecnsim.Protect(ecnsim.ECE)}},
		{"red ack+syn + tcp-ecn", []ecnsim.Option{ecnsim.Queue(ecnsim.RED), ecnsim.Protect(ecnsim.ACKSYN)}},
		{"red ack+syn + dctcp", []ecnsim.Option{ecnsim.Queue(ecnsim.RED), ecnsim.Protect(ecnsim.ACKSYN), ecnsim.Transport(ecnsim.DCTCP)}},
		{"simplemark + dctcp", []ecnsim.Option{ecnsim.Queue(ecnsim.SimpleMark), ecnsim.Transport(ecnsim.DCTCP)}},
	}

	scenario, err := ecnsim.MustScenario("incast")
	if err != nil {
		log.Fatalf("incast: %v", err)
	}
	jobs := make([]ecnsim.Job, 0, len(setups))
	for _, s := range setups {
		opts := append([]ecnsim.Option{
			ecnsim.Nodes(*senders + 1),
			ecnsim.Senders(*senders),
			ecnsim.FlowSize(size),
			ecnsim.TargetDelay(*target),
			ecnsim.Seed(7),
		}, s.opts...)
		c, err := ecnsim.NewCluster(opts...)
		if err != nil {
			log.Fatalf("incast: %s: %v", s.name, err)
		}
		jobs = append(jobs, ecnsim.Job{Scenario: scenario, Cluster: c})
	}

	runner := &ecnsim.Runner{}
	rs, err := runner.Run(context.Background(), jobs...)
	if err != nil {
		log.Fatalf("incast: %v", err)
	}

	fmt.Printf("incast: %d senders x %s -> 1 receiver, 10 Gbps star, shallow ports\n\n",
		*senders, ecnsim.FormatSize(size))
	for i, r := range rs.Results {
		fmt.Printf("%-24s done=%.0f/%d in %-14v agg=%-12s lat(mean)=%-12v drops=%.0f rtx=%.0f rto=%.0f\n",
			setups[i].name,
			r.Value(ecnsim.KeyCompleted), *senders,
			r.Duration(ecnsim.KeyCompletion).Round(time.Microsecond),
			fmt.Sprintf("%.2fGbps", r.Value(ecnsim.KeyGoodput)/1e9),
			r.Duration(ecnsim.KeyMeanLatency).Round(time.Microsecond),
			r.Value(ecnsim.KeyEarlyDrops)+r.Value(ecnsim.KeyOverflowDrops),
			r.Value(ecnsim.KeyRetransmits), r.Value(ecnsim.KeyRTOEvents))
	}
}
