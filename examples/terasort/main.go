// Terasort: run the paper's full workload on a 16-node cluster under a
// configurable queue setup and print a per-phase breakdown — map wave
// timings, the shuffle window, and the job-level metrics.
//
//	go run ./examples/terasort
//	go run ./examples/terasort -queue red -mode ack+syn -transport dctcp
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/ecnsim"
)

func main() {
	fl := ecnsim.NewFlagBinder(ecnsim.FlagsQueue | ecnsim.FlagsBuffer |
		ecnsim.FlagsWorkload | ecnsim.FlagsFabric | ecnsim.FlagsSeed)
	fl.Bind(flag.CommandLine)
	flag.Parse()

	opts, err := fl.Options()
	if err != nil {
		log.Fatalf("terasort: %v", err)
	}
	c, err := ecnsim.NewCluster(opts...)
	if err != nil {
		log.Fatalf("terasort: %v", err)
	}

	rs, err := ecnsim.RunScenario(context.Background(), "terasort", opts...)
	if err != nil {
		log.Fatalf("terasort: %v", err)
	}
	r := rs.Results[0]

	fmt.Printf("Terasort on %d nodes (%s, %s input)\n\n", c.Nodes(), r.Label,
		ecnsim.FormatSize(c.InputSize()))

	// Map waves.
	fmt.Printf("map tasks:   %.0f (last finished at %v)\n",
		r.Value(ecnsim.KeyMaps), r.Duration(ecnsim.KeyMapFinish).Round(time.Millisecond))

	// Shuffle.
	fmt.Printf("shuffle:     %s moved in [%v .. %v]\n",
		ecnsim.FormatSize(int64(r.Value(ecnsim.KeyShuffledBytes))),
		r.Duration(ecnsim.KeyShuffleStart).Round(time.Millisecond),
		r.Duration(ecnsim.KeyShuffleEnd).Round(time.Millisecond))
	fmt.Printf("             slowest reducer shuffle: #%.0f (%v)\n",
		r.Value(ecnsim.KeySlowestReducer),
		r.Duration(ecnsim.KeySlowestShuffle).Round(time.Millisecond))

	// Job.
	fmt.Printf("\nruntime:              %v\n", r.Duration(ecnsim.KeyRuntime).Round(time.Millisecond))
	fmt.Printf("throughput per node:  %.0f Mbps\n", r.Value(ecnsim.KeyThroughput)/1e6)
	fmt.Printf("mean packet latency:  %v\n", r.Duration(ecnsim.KeyMeanLatency).Round(time.Microsecond))
	fmt.Printf("p99 packet latency:   %v\n", r.Duration(ecnsim.KeyP99Latency).Round(time.Microsecond))
	fmt.Printf("drops:                early=%.0f overflow=%.0f (ACK share %.0f%%)\n",
		r.Value(ecnsim.KeyEarlyDrops), r.Value(ecnsim.KeyOverflowDrops),
		100*r.Value(ecnsim.KeyAckDropShare))
	fmt.Printf("retransmits:          %.0f (RTO events %.0f, SYN retries %.0f)\n",
		r.Value(ecnsim.KeyRetransmits), r.Value(ecnsim.KeyRTOEvents), r.Value(ecnsim.KeySynRetries))
}
