// Terasort: run the paper's full workload on a 16-node cluster under a
// configurable queue setup and print a per-phase breakdown — map wave
// timings, per-reducer shuffle windows, and the job-level metrics.
//
//	go run ./examples/terasort
//	go run ./examples/terasort -queue red -mode ack+syn -transport dctcp
package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/mapred"
	"repro/internal/qdisc"
	"repro/internal/tcp"
	"repro/internal/units"
)

func main() {
	var (
		queue     = flag.String("queue", "droptail", "droptail | red | simplemark")
		mode      = flag.String("mode", "default", "default | ece-bit | ack+syn")
		transport = flag.String("transport", "tcp", "tcp | tcp-ecn | dctcp")
		deep      = flag.Bool("deep", false, "use deep (10MB/port) buffers")
		target    = flag.Duration("target", 500*units.Microsecond, "AQM target delay")
	)
	flag.Parse()

	spec := cluster.DefaultSpec()
	spec.TargetDelay = *target
	switch strings.ToLower(*queue) {
	case "red":
		spec.Queue = cluster.QueueRED
	case "simplemark":
		spec.Queue = cluster.QueueSimpleMark
	}
	switch strings.ToLower(*mode) {
	case "ece-bit":
		spec.Protect = qdisc.ProtectECE
	case "ack+syn":
		spec.Protect = qdisc.ProtectACKSYN
	}
	switch strings.ToLower(*transport) {
	case "tcp-ecn":
		spec.Transport = tcp.RenoECN
	case "dctcp":
		spec.Transport = tcp.DCTCP
	}
	if *deep {
		spec.Buffer = cluster.Deep
	}

	c := cluster.New(spec)
	job := c.RunJob(mapred.TerasortConfig(1*units.GiB, 32))

	fmt.Printf("Terasort on %d nodes (%v links, %s buffers, %s", spec.Nodes,
		spec.LinkRate, spec.Buffer, spec.Queue)
	if spec.Queue == cluster.QueueRED {
		fmt.Printf(" %s", spec.Protect)
	}
	fmt.Printf(", %s)\n\n", spec.Transport)

	// Map waves.
	var mapEnd units.Time
	for _, m := range job.Maps {
		if m.End > mapEnd {
			mapEnd = m.End
		}
	}
	fmt.Printf("map tasks:   %d (last finished at %v)\n", len(job.Maps), mapEnd)

	// Shuffle.
	lo, hi := job.ShuffleWindow()
	fmt.Printf("shuffle:     %v moved in [%v .. %v]\n", job.ShuffledBytes(), lo, hi)
	var worst units.Duration
	var worstID int
	for _, r := range job.Reduces {
		d := r.ShuffleEnd.Sub(r.ShuffleStart)
		if d > worst {
			worst, worstID = d, r.ID
		}
	}
	fmt.Printf("             slowest reducer shuffle: #%d (%v)\n", worstID, worst.Round(units.Millisecond))

	// Job.
	fmt.Printf("\nruntime:              %v\n", job.Runtime().Round(units.Millisecond))
	fmt.Printf("throughput per node:  %v\n", c.Metrics.MeanThroughputPerNode(spec.Nodes, lo, hi))
	fmt.Printf("mean packet latency:  %v\n", c.Metrics.MeanLatency().Round(units.Microsecond))
	fmt.Printf("p99 packet latency:   %v\n", c.Metrics.P99Latency().Round(units.Microsecond))
	early, ovf := c.Metrics.Drops()
	fmt.Printf("drops:                early=%d overflow=%d (ACK share %.0f%%)\n",
		early, ovf, 100*c.Metrics.AckDropShare())
	fmt.Printf("retransmits:          %d (RTO events %d, SYN retries %d)\n",
		c.TCP.Retransmits(), c.TCP.RTOEvents, c.TCP.SynRetries)
}
