// Degradedfabric: the asymmetric-fabric stress test. On a leaf-spine
// fabric, ECMP has no health signal — the 5-tuple flow hash keeps assigning
// flows to a derated spine uplink for the whole job. This example first runs
// the Terasort shuffle on the healthy ECMP fabric, then replays it with one
// leaf->spine link derated, comparing DropTail against RED in default and
// ACK+SYN protection mode, and shows where the queueing sits per fabric
// tier.
//
//	go run ./examples/degradedfabric
//	go run ./examples/degradedfabric -nodes 16 -racks 4 -spines 4 -derate 0.1
//	go run ./examples/degradedfabric -shards 4    # same results, sharded event loop
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/ecnsim"
)

func main() {
	fl := ecnsim.NewFlagBinder(ecnsim.FlagsBuffer | ecnsim.FlagsWorkload |
		ecnsim.FlagsFabric | ecnsim.FlagsSeed)
	fl.Nodes = 8
	fl.Racks = 4
	fl.Spines = 2
	fl.Input = "256MiB"
	fl.Block = "" // auto: input/nodes
	fl.Reducers = 16
	fl.Target = 100 * time.Microsecond
	fl.Bind(flag.CommandLine)
	derate := flag.Float64("derate", 0.25, "sick uplink rate as a fraction of its built rate (0 fails the link)")
	flag.Parse()

	opts, err := fl.Options()
	if err != nil {
		log.Fatalf("degradedfabric: %v", err)
	}
	ctx := context.Background()

	healthy, err := ecnsim.RunScenario(ctx, "leafspine", opts...)
	if err != nil {
		log.Fatalf("degradedfabric: %v", err)
	}
	h := healthy.Results[0]
	fmt.Printf("Terasort %s on %d nodes: %.0f racks under %.0f spines (ECMP)\n\n",
		fl.Input, fl.Nodes, h.Value(ecnsim.KeyRacks), h.Value(ecnsim.KeySpines))
	fmt.Printf("healthy fabric (%s): runtime=%v  p99 latency=%v\n", h.Label,
		h.Duration(ecnsim.KeyRuntime).Round(time.Millisecond),
		h.Duration(ecnsim.KeyP99Latency).Round(time.Microsecond))
	fmt.Printf("  mean queue by tier [pkts]: host-up=%.1f edge=%.1f leaf->spine=%.1f spine->leaf=%.1f\n\n",
		h.Value(ecnsim.KeyHostUpOcc), h.Value(ecnsim.KeyEdgeOcc),
		h.Value(ecnsim.KeyCoreUpOcc), h.Value(ecnsim.KeyCoreDownOcc))

	degradedOpts := append(append([]ecnsim.Option{}, opts...),
		ecnsim.DegradeLink("leaf0", "spine0", *derate))
	rs, err := ecnsim.RunScenario(ctx, "degradedfabric", degradedOpts...)
	if err != nil {
		log.Fatalf("degradedfabric: %v", err)
	}

	fmt.Printf("leaf0->spine0 derated to %.0f%% of its built rate:\n\n", 100**derate)
	fmt.Printf("%-14s %-12s %-12s %-10s %-8s %s\n",
		"setup", "runtime", "p99 latency", "core occ", "drops", "vs healthy")
	for _, r := range rs.Results {
		drops := r.Value(ecnsim.KeyEarlyDrops) + r.Value(ecnsim.KeyOverflowDrops)
		fmt.Printf("%-14s %-12v %-12v %-10.1f %-8.0f %+.0f%%\n",
			r.Label,
			r.Duration(ecnsim.KeyRuntime).Round(time.Millisecond),
			r.Duration(ecnsim.KeyP99Latency).Round(time.Microsecond),
			r.Value(ecnsim.KeyCoreUpOcc),
			drops,
			100*(r.Value(ecnsim.KeyRuntime)/h.Value(ecnsim.KeyRuntime)-1))
	}
	fmt.Println("\nECMP cannot steer around the sick uplink — every setup pays for it.")
	fmt.Println("The question is how gracefully: watch p99 latency, where ack+syn")
	fmt.Println("protection keeps the AQM's low-delay benefit even under asymmetry.")
}
