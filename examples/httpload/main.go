// Httpload: an unmodified net/http service over the simulated fabric. A
// stock http.Server per pair answers echo and nested fan-out requests; a
// stock http.Client per pair issues them on a paced schedule — all of it
// tenant code behind the simnet façade's Listener and DialContext, parked
// and woken by the cooperative virtual-time gate. Same seed, same bytes:
// the reported latencies are byte-identical at any shard or worker count,
// which is the point — real library code under the determinism contract.
//
//	go run ./examples/httpload            # the campaign cell
//	go run ./examples/httpload -quick     # the CI smoke cell
//	go run ./examples/httpload -shards 4  # sharded, byte-identical results
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/ecnsim"
)

func main() {
	flags := ecnsim.NewFlagBinder(ecnsim.FlagsFabric | ecnsim.FlagsSeed | ecnsim.FlagsTenant)
	// The campaign cell — override any of it on the command line. The shape
	// must be explicit for -shards to engage.
	flags.Nodes = 16
	flags.Racks = 8
	flags.Spines = 2
	flags.Bind(flag.CommandLine)
	quick := flag.Bool("quick", false, "run the CI smoke cell (8 nodes, 4 racks, 40 ms) instead")
	flag.Parse()

	tenantOpts, err := flags.Options()
	if err != nil {
		log.Fatalf("httpload: %v", err)
	}
	// 256 KiB responses every millisecond: enough to push the oversubscribed
	// rack uplinks into sustained queueing, so the three setups separate.
	opts := append([]ecnsim.Option{
		ecnsim.RPCClients(8),
		ecnsim.RPCSizes(2048, 256<<10),
		ecnsim.RPCInterval(time.Millisecond),
		ecnsim.TargetDelay(100 * time.Microsecond),
		ecnsim.Warmup(50 * time.Millisecond),
		ecnsim.Measure(300 * time.Millisecond),
		ecnsim.MeasureWindow(75 * time.Millisecond),
	}, tenantOpts...)
	if *quick {
		opts = append(opts,
			ecnsim.Nodes(8), ecnsim.Racks(4), ecnsim.Spines(2), ecnsim.RPCClients(4),
			ecnsim.Warmup(10*time.Millisecond), ecnsim.Measure(40*time.Millisecond),
			ecnsim.MeasureWindow(20*time.Millisecond))
	}

	start := time.Now()
	rs, err := ecnsim.RunScenario(context.Background(), "httpload", opts...)
	if err != nil {
		log.Fatalf("httpload: %v", err)
	}
	wall := time.Since(start)

	fmt.Println("real net/http tenants over the simulated fabric")
	for _, r := range rs.Results {
		fmt.Printf("%-12s (seed %d)\n", r.Label, r.Seed)
		fmt.Printf("  http      %5.0f exchanges  p50=%-10s p99=%-10s %.0f failed\n",
			r.Value(ecnsim.KeyRPCCount),
			seconds(r.Value(ecnsim.KeyRPCP50)), seconds(r.Value(ecnsim.KeyRPCP99)),
			r.Value(ecnsim.KeyRPCFailed))
		fmt.Printf("  fabric    ack-drop-share=%.3f marks=%.0f retransmits=%.0f\n",
			r.Value(ecnsim.KeyAckDropShare), r.Value(ecnsim.KeyMarks),
			r.Value(ecnsim.KeyRetransmits))
		fmt.Printf("  engine    %.0f events over %s simulated in %s wall\n",
			r.Value(ecnsim.KeySimEvents),
			seconds(r.Value(ecnsim.KeySimTime)), wall.Round(time.Millisecond))
	}
}

// seconds renders a float seconds value at microsecond resolution.
func seconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
