// Aqmcompare: does the paper's fix generalize beyond RED? This example runs
// the same Terasort under RED, CoDel and PIE — each in default mode and with
// ACK+SYN protection — plus the DropTail baseline and the true simple
// marking scheme, and prints the normalized comparison table.
//
//	go run ./examples/aqmcompare
//	go run ./examples/aqmcompare -target 200us -input 512MiB
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/ecnsim"
)

func main() {
	// Workload + buffer flags only: the scenario enumerates the queue
	// disciplines itself, so -queue/-mode/-transport would be dead knobs.
	fl := ecnsim.NewFlagBinder(ecnsim.FlagsBuffer | ecnsim.FlagsWorkload |
		ecnsim.FlagsFabric | ecnsim.FlagsSeed)
	fl.Nodes = 8
	fl.Input = "256MiB"
	fl.Block = "" // auto: input/nodes
	fl.Reducers = 16
	fl.Target = 100 * time.Microsecond
	fl.Bind(flag.CommandLine)
	flag.Parse()

	opts, err := fl.Options()
	if err != nil {
		log.Fatalf("aqmcompare: %v", err)
	}
	c, err := ecnsim.NewCluster(opts...)
	if err != nil {
		log.Fatalf("aqmcompare: %v", err)
	}

	fmt.Printf("Terasort %s on %d nodes, %s buffers — one row per AQM setup\n\n",
		ecnsim.FormatSize(c.InputSize()), c.Nodes(), c.Buffer())
	rs, err := ecnsim.RunScenario(context.Background(), "aqmcompare", opts...)
	if err != nil {
		log.Fatalf("aqmcompare: %v", err)
	}
	fmt.Print(ecnsim.RenderAQMTable(rs.Results))
	fmt.Println("\nEvery early drop any of these ECN-enabled AQMs performs lands on a")
	fmt.Println("non-ECT packet (an ACK or SYN); the ack+syn rows show the same queue")
	fmt.Println("with the paper's protection — zero early drops, by construction.")
}
