// Aqmcompare: does the paper's fix generalize beyond RED? This example runs
// the same Terasort under RED, CoDel and PIE — each in default mode and with
// ACK+SYN protection — plus the DropTail baseline and the true simple
// marking scheme, and prints the normalized comparison table.
//
//	go run ./examples/aqmcompare
//	go run ./examples/aqmcompare -target 200us -input 512MiB
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
	"repro/internal/figures"
	"repro/internal/units"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 8, "cluster size")
		input    = flag.String("input", "256MiB", "Terasort input size")
		reducers = flag.Int("reducers", 16, "reduce tasks")
		target   = flag.Duration("target", 100*units.Microsecond, "AQM target delay")
		seed     = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	inputSz, err := units.ParseByteSize(*input)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aqmcompare:", err)
		os.Exit(2)
	}
	scale := experiment.Scale{
		Nodes:     *nodes,
		InputSize: inputSz,
		BlockSize: inputSz / units.ByteSize(*nodes),
		Reducers:  *reducers,
	}
	fmt.Printf("Terasort %v on %d nodes, shallow buffers — one row per AQM setup\n\n", inputSz, *nodes)
	cmp := experiment.CompareAQMs(scale, *target, *seed)
	fmt.Print(figures.RenderAQMComparison(cmp))
	fmt.Println("\nEvery early drop any of these ECN-enabled AQMs performs lands on a")
	fmt.Println("non-ECT packet (an ACK or SYN); the ack+syn rows show the same queue")
	fmt.Println("with the paper's protection — zero early drops, by construction.")
}
