// Quickstart: build a small simulated Hadoop cluster, run the same Terasort
// twice — once over DropTail switches, once over switches with the paper's
// true simple marking scheme — and compare runtime, throughput and latency.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mapred"
	"repro/internal/tcp"
	"repro/internal/units"
)

func main() {
	run := func(name string, queue cluster.QueueKind, transport tcp.Variant) {
		spec := cluster.DefaultSpec()
		spec.Nodes = 8
		spec.Queue = queue
		spec.Transport = transport
		spec.TargetDelay = 100 * units.Microsecond

		c := cluster.New(spec)
		job := c.RunJob(mapred.TerasortConfig(256*units.MiB, 16))

		lo, hi := job.ShuffleWindow()
		fmt.Printf("%-22s runtime=%-14v throughput/node=%-12v mean latency=%-12v drops=%d\n",
			name,
			job.Runtime().Round(units.Millisecond),
			c.Metrics.MeanThroughputPerNode(spec.Nodes, lo, hi),
			c.Metrics.MeanLatency().Round(units.Microsecond),
			c.Metrics.EarlyDropped.Total()+c.Metrics.OverflowDropped.Total())
	}

	fmt.Println("Terasort, 8 nodes, 10 Gbps, shallow (1MB/port) switch buffers:")
	run("droptail + tcp", cluster.QueueDropTail, tcp.Reno)
	run("simplemark + tcp-ecn", cluster.QueueSimpleMark, tcp.RenoECN)
	fmt.Println("\nThe marking scheme keeps full throughput with a fraction of the")
	fmt.Println("latency and (near) zero loss — the paper's headline result.")
}
