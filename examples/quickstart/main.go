// Quickstart: define a small simulated Hadoop cluster with the ecnsim
// builder, run the same Terasort twice — once over DropTail switches, once
// over switches with the paper's true simple marking scheme — and compare
// runtime, throughput and latency.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/ecnsim"
)

func main() {
	run := func(name string, queue ecnsim.QueueKind, transport ecnsim.TransportKind) {
		rs, err := ecnsim.RunScenario(context.Background(), "terasort",
			ecnsim.Nodes(8),
			ecnsim.Queue(queue),
			ecnsim.Transport(transport),
			ecnsim.TargetDelay(100*time.Microsecond),
			ecnsim.InputSize(256<<20), // 256 MiB
			ecnsim.Reducers(16),
		)
		if err != nil {
			log.Fatalf("quickstart: %v", err)
		}
		r := rs.Results[0]
		fmt.Printf("%-22s runtime=%-14v throughput/node=%-12s mean latency=%-12v drops=%.0f\n",
			name,
			r.Duration(ecnsim.KeyRuntime).Round(time.Millisecond),
			fmt.Sprintf("%.0fMbps", r.Value(ecnsim.KeyThroughput)/1e6),
			r.Duration(ecnsim.KeyMeanLatency).Round(time.Microsecond),
			r.Value(ecnsim.KeyEarlyDrops)+r.Value(ecnsim.KeyOverflowDrops))
	}

	fmt.Println("Terasort, 8 nodes, 10 Gbps, shallow (1MB/port) switch buffers:")
	run("droptail + tcp", ecnsim.DropTail, ecnsim.TCP)
	run("simplemark + tcp-ecn", ecnsim.SimpleMark, ecnsim.TCPECN)
	fmt.Println("\nThe marking scheme keeps full throughput with a fraction of the")
	fmt.Println("latency and (near) zero loss — the paper's headline result.")
}
