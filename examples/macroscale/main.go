// Macroscale: the flow-level hybrid engine over a 10,000-node leaf-spine
// cell (250 racks under 16 spines) carrying an open-loop transfer mix —
// background fan-out jobs, periodic incast hot spots, and an RPC probe
// fleet. Uncontended transfers run as fluid rates; a port crossing the
// utilization threshold or entering an AQM marking episode promotes every
// flow traversing it to packet fidelity, demoting after a hysteresis
// window. The cell is unrunnable on the pure packet engine — that is the
// point.
//
//	go run ./examples/macroscale                   # the full cell (minutes)
//	go run ./examples/macroscale -quick -shards 4  # the CI smoke cell
//	go run ./examples/macroscale -fluid-threshold 0.5
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/ecnsim"
)

func main() {
	flags := ecnsim.NewFlagBinder(ecnsim.FlagsFabric | ecnsim.FlagsSeed | ecnsim.FlagsHybrid)
	// The scenario's home cell, hybrid on — override any of it on the
	// command line. The shape must be explicit for -shards to engage.
	flags.Nodes = 10000
	flags.Racks = 250
	flags.Spines = 16
	flags.Hybrid = true
	flags.Bind(flag.CommandLine)
	nodes := flag.Int("nodes", flags.Nodes, "hosts in the cell")
	measure := flag.Duration("measure", 300*time.Millisecond, "measurement phase length")
	quick := flag.Bool("quick", false, "run the CI smoke cell (64 nodes, 8 racks, 40 ms) instead of the full one")
	flag.Parse()

	hybridOpts, err := flags.Options()
	if err != nil {
		log.Fatalf("macroscale: %v", err)
	}
	opts := append([]ecnsim.Option{
		ecnsim.Nodes(*nodes),
		ecnsim.Queue(ecnsim.RED),
		ecnsim.Protect(ecnsim.ACKSYN),
		ecnsim.TargetDelay(500 * time.Microsecond),
		ecnsim.Measure(*measure),
	}, hybridOpts...)
	if *quick {
		opts = append(opts,
			ecnsim.Nodes(64), ecnsim.Racks(8), ecnsim.Spines(4),
			ecnsim.FlowSize(512<<10),
			ecnsim.Warmup(5*time.Millisecond), ecnsim.Measure(40*time.Millisecond))
	}

	start := time.Now()
	rs, err := ecnsim.RunScenario(context.Background(), "macroscale", opts...)
	if err != nil {
		log.Fatalf("macroscale: %v", err)
	}
	wall := time.Since(start)

	gib := func(k string, r ecnsim.Result) float64 { return r.Value(k) / (1 << 30) }
	for _, r := range rs.Results {
		fluid, packet := gib(ecnsim.KeyFluidBytes, r), gib(ecnsim.KeyPacketBytes, r)
		fmt.Printf("%s (seed %d)\n", r.Label, r.Seed)
		fmt.Printf("  jobs      %4.0f/%-4.0f done   p50=%-10s p99=%s\n",
			r.Value(ecnsim.KeyJobsCompleted), r.Value(ecnsim.KeyJobsSubmitted),
			seconds(r.Value(ecnsim.KeyJobP50)), seconds(r.Value(ecnsim.KeyJobP99)))
		fmt.Printf("  rpc       %5.0f probes     p50=%-10s p99=%s\n",
			r.Value(ecnsim.KeyRPCCount),
			seconds(r.Value(ecnsim.KeyRPCP50)), seconds(r.Value(ecnsim.KeyRPCP99)))
		fmt.Printf("  bytes     fluid=%.2fGiB packet=%.2fGiB (%.1f%% at packet fidelity)\n",
			fluid, packet, 100*packet/(fluid+packet))
		fmt.Printf("  hybrid    %3.0f promotions %3.0f demotions %4.0f flows converted %4.0f refused\n",
			r.Value(ecnsim.KeyPromotions), r.Value(ecnsim.KeyDemotions),
			r.Value(ecnsim.KeyPromotedFlows), r.Value(ecnsim.KeyPacketRefused))
		fmt.Printf("  engine    %.0f events over %s simulated in %s wall\n",
			r.Value(ecnsim.KeySimEvents),
			seconds(r.Value(ecnsim.KeySimTime)), wall.Round(time.Millisecond))
	}
}

// seconds renders a float seconds value at microsecond resolution.
func seconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
