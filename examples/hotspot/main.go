// Hotspot: switch-originated congestion notifications on the sick fabric.
// degradedfabric shows ECMP hashing flows onto a derated spine uplink for a
// whole job, because end-to-end ECN only tells the *senders* — a full RTT
// after the queue built. This example lets the switch react: crossing the
// notification threshold re-salts ECMP off the hot port for an affinity
// window (reroute), gates the offending sources with a decaying token-bucket
// throttle, or both, and compares each mechanism against plain ECN on the
// identical fabric.
//
//	go run ./examples/hotspot
//	go run ./examples/hotspot -nodes 16 -racks 4 -spines 4 -derate 0.1
//	go run ./examples/hotspot -shards 4    # same results, sharded event loop
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/ecnsim"
)

func main() {
	fl := ecnsim.NewFlagBinder(ecnsim.FlagsBuffer | ecnsim.FlagsWorkload |
		ecnsim.FlagsFabric | ecnsim.FlagsSeed)
	fl.Nodes = 8
	fl.Racks = 4
	fl.Spines = 2
	fl.Input = "256MiB"
	fl.Block = "" // auto: input/nodes
	fl.Reducers = 16
	fl.Target = 500 * time.Microsecond
	fl.Bind(flag.CommandLine)
	derate := flag.Float64("derate", 0.25, "sick uplink rate as a fraction of its built rate (0 fails the link)")
	flag.Parse()

	opts, err := fl.Options()
	if err != nil {
		log.Fatalf("hotspot: %v", err)
	}
	opts = append(opts, ecnsim.Queue(ecnsim.RED),
		ecnsim.DegradeLink("leaf0", "spine0", *derate))
	ctx := context.Background()

	fmt.Printf("Terasort %s on %d nodes, leaf0->spine0 derated to %.0f%%, ECN-RED everywhere.\n",
		fl.Input, fl.Nodes, 100**derate)
	fmt.Println("Plain ECN waits for marks to reach the senders; the notification rows react at the switch.")
	fmt.Println()

	mechanisms := []struct {
		name string
		opt  ecnsim.Option
	}{
		{"ecn-plain", nil},
		{"reroute", ecnsim.Reroute()},
		{"throttle", ecnsim.Throttle()},
		{"reroute+throttle", ecnsim.Notify()},
	}
	var base float64
	fmt.Printf("%-18s %-12s %-12s %-10s %-10s %s\n",
		"mechanism", "runtime", "p99 latency", "rerouted", "throttles", "vs plain")
	for _, m := range mechanisms {
		runOpts := append([]ecnsim.Option{}, opts...)
		if m.opt != nil {
			runOpts = append(runOpts, m.opt)
		}
		rs, err := ecnsim.RunScenario(ctx, "hotspot", runOpts...)
		if err != nil {
			log.Fatalf("hotspot: %v", err)
		}
		r := rs.Results[0]
		runtime := r.Value(ecnsim.KeyRuntime)
		if base == 0 {
			base = runtime
		}
		fmt.Printf("%-18s %-12v %-12v %-10.0f %-10.0f %+.0f%%\n",
			m.name,
			r.Duration(ecnsim.KeyRuntime).Round(time.Millisecond),
			r.Duration(ecnsim.KeyP99Latency).Round(time.Microsecond),
			r.Value(ecnsim.KeyRerouted),
			r.Value(ecnsim.KeyThrottles),
			100*(runtime/base-1))
	}
	fmt.Println("\nThe switch knows about the hot queue threshold-crossings before any")
	fmt.Println("sender sees a mark. Steering flows off the sick uplink (reroute) and")
	fmt.Println("pacing the offenders at the source (throttle) each beat plain ECN;")
	fmt.Println("together they shed the hot spot almost entirely.")
}
