// Tenantmix: the multi-tenant steady state — an open-loop RPC client fleet
// sharing the cluster with a continuous Poisson stream of MapReduce jobs
// through the fair-share slot scheduler. Instead of one end-of-run number,
// the scenario reports the service's P99 latency per measurement window
// under three queue setups (DropTail, ECN default mode, ECN ack+syn), the
// way an SLO dashboard would show it.
//
//	go run ./examples/tenantmix
//	go run ./examples/tenantmix -jobs 8 -arrival fixed:100ms -rpc-clients 8
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/ecnsim"
)

func main() {
	flags := ecnsim.NewFlagBinder(ecnsim.FlagsTenant)
	flags.Bind(flag.CommandLine)
	input := flag.String("input", "128MiB", "base job-mix input size")
	measure := flag.Duration("measure", 2*time.Second, "measurement phase length")
	window := flag.Duration("window", 500*time.Millisecond, "percentile window width")
	flag.Parse()

	tenantOpts, err := flags.Options()
	if err != nil {
		log.Fatalf("tenantmix: %v", err)
	}
	size, err := ecnsim.ParseSize(*input)
	if err != nil {
		log.Fatalf("tenantmix: %v", err)
	}
	opts := append([]ecnsim.Option{
		ecnsim.Nodes(8),
		ecnsim.InputSize(size),
		ecnsim.BlockSize(0), // auto: input/nodes (the mix re-blocks per job anyway)
		ecnsim.Reducers(8),
		// The paper's interesting regime: a tight marking threshold, where
		// default-mode RED pays its ACK-drop tax in full.
		ecnsim.TargetDelay(100 * time.Microsecond),
		ecnsim.Measure(*measure),
		ecnsim.MeasureWindow(*window),
		ecnsim.FairShare(true),
	}, tenantOpts...)

	rs, err := ecnsim.RunScenario(context.Background(), "tenantmix", opts...)
	if err != nil {
		log.Fatalf("tenantmix: %v", err)
	}

	windows := int((*measure + *window - 1) / *window)
	fmt.Printf("Open-loop RPC fleet under sustained batch load (%v measured in %v windows)\n\n", *measure, *window)
	us := func(d time.Duration) string { return d.Round(time.Microsecond).String() }
	for _, r := range rs.Results {
		fmt.Printf("%-14s jobs=%2.0f/%-2.0f batch tput/node=%-8s rpc n=%-5.0f p50=%-9s p99=%-9s\n",
			r.Label,
			r.Value(ecnsim.KeyJobsCompleted), r.Value(ecnsim.KeyJobsSubmitted),
			fmt.Sprintf("%.0fMbps", r.Value(ecnsim.KeyThroughput)/1e6),
			r.Value(ecnsim.KeyRPCCount),
			us(r.Duration(ecnsim.KeyRPCP50)), us(r.Duration(ecnsim.KeyRPCP99)))
		fmt.Printf("%-14s p99 per window:", "")
		for i := 0; i < windows; i++ {
			fmt.Printf(" %9s", us(r.Duration(ecnsim.KeyRPCWindowP99(i))))
		}
		fmt.Println()
	}
	fmt.Println("\nDropTail keeps throughput but bloats the service tail; default-mode ECN")
	fmt.Println("looks great on RPC latency only because its ACK drops starved the batch")
	fmt.Println("tier (watch throughput/node collapse); ack+syn protection keeps both.")
}
