// Mixedcluster: the paper's motivating scenario — latency-sensitive RPC
// services sharing the fabric with a Hadoop job. The example runs an RPC
// probe between two nodes while a Terasort shuffles across the cluster, and
// reports the RPC latency distribution under DropTail deep buffers
// (bufferbloat), RED ack+syn, and the true simple marking scheme.
//
//	go run ./examples/mixedcluster
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/flow"
	"repro/internal/mapred"
	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/stats"
	"repro/internal/tcp"
	"repro/internal/units"
)

func main() {
	type setup struct {
		name      string
		queue     cluster.QueueKind
		buffer    cluster.BufferDepth
		protect   qdisc.ProtectMode
		transport tcp.Variant
	}
	setups := []setup{
		{"droptail deep + tcp", cluster.QueueDropTail, cluster.Deep, qdisc.ProtectNone, tcp.Reno},
		{"droptail shallow + tcp", cluster.QueueDropTail, cluster.Shallow, qdisc.ProtectNone, tcp.Reno},
		{"red ack+syn + dctcp", cluster.QueueRED, cluster.Shallow, qdisc.ProtectACKSYN, tcp.DCTCP},
		{"simplemark + dctcp", cluster.QueueSimpleMark, cluster.Shallow, qdisc.ProtectNone, tcp.DCTCP},
	}

	fmt.Println("RPC probe (128B request / 4KiB response every 2ms) during a Terasort shuffle")
	fmt.Println()
	for _, s := range setups {
		spec := cluster.DefaultSpec()
		spec.Nodes = 8
		spec.Queue = s.queue
		spec.Buffer = s.buffer
		spec.Protect = s.protect
		spec.Transport = s.transport
		spec.TargetDelay = 100 * units.Microsecond

		c := cluster.New(spec)

		// RPC service on node 1, probe from node 0, alongside the job.
		flow.RegisterRPCServer(c.Stacks[1], 7000, 128, 4096)
		probe := flow.StartRPCClient(c.Stacks[0], packet.Addr{Node: c.Topo.Hosts[1].ID(), Port: 7000},
			flow.RPCConfig{ReqSize: 128, RespSize: 4096, Interval: 2 * units.Millisecond})

		job := c.RunJob(mapred.TerasortConfig(256*units.MiB, 16))
		probe.Stop()

		sample := stats.NewSample()
		for _, l := range probe.Latencies() {
			sample.Add(l.Seconds())
		}
		toDur := func(sec float64) units.Duration {
			return units.Duration(sec * float64(units.Second)).Round(units.Microsecond)
		}
		fmt.Printf("%-26s job=%-12v rpc n=%-5d mean=%-10v p50=%-10v p99=%-10v max=%v\n",
			s.name, job.Runtime().Round(units.Millisecond), sample.N(),
			toDur(sample.Mean()), toDur(sample.Quantile(0.5)),
			toDur(sample.Quantile(0.99)), toDur(sample.Max()))
	}
	fmt.Println("\nDeep DropTail buffers push RPC tail latency into the bufferbloat regime;")
	fmt.Println("marking keeps the shuffle fast AND the service responsive — the paper's goal.")
}
