// Mixedcluster: the paper's motivating scenario — latency-sensitive RPC
// services sharing the fabric with a Hadoop job. The example runs an RPC
// probe between two nodes while a Terasort shuffles across the cluster, and
// reports the RPC latency distribution under DropTail deep buffers
// (bufferbloat), RED ack+syn, and the true simple marking scheme.
//
//	go run ./examples/mixedcluster
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/ecnsim"
)

func main() {
	type setup struct {
		name string
		opts []ecnsim.Option
	}
	setups := []setup{
		{"droptail deep + tcp", []ecnsim.Option{ecnsim.Queue(ecnsim.DropTail), ecnsim.Buffer(ecnsim.Deep)}},
		{"droptail shallow + tcp", []ecnsim.Option{ecnsim.Queue(ecnsim.DropTail)}},
		{"red ack+syn + dctcp", []ecnsim.Option{ecnsim.Queue(ecnsim.RED), ecnsim.Protect(ecnsim.ACKSYN), ecnsim.Transport(ecnsim.DCTCP)}},
		{"simplemark + dctcp", []ecnsim.Option{ecnsim.Queue(ecnsim.SimpleMark), ecnsim.Transport(ecnsim.DCTCP)}},
	}

	scenario, err := ecnsim.MustScenario("mixed")
	if err != nil {
		log.Fatalf("mixedcluster: %v", err)
	}
	jobs := make([]ecnsim.Job, 0, len(setups))
	for _, s := range setups {
		opts := append([]ecnsim.Option{
			ecnsim.Nodes(8),
			ecnsim.InputSize(256 << 20), // 256 MiB
			ecnsim.Reducers(16),
			ecnsim.TargetDelay(100 * time.Microsecond),
			ecnsim.RPCInterval(2 * time.Millisecond),
		}, s.opts...)
		c, err := ecnsim.NewCluster(opts...)
		if err != nil {
			log.Fatalf("mixedcluster: %s: %v", s.name, err)
		}
		jobs = append(jobs, ecnsim.Job{Scenario: scenario, Cluster: c})
	}

	runner := &ecnsim.Runner{}
	rs, err := runner.Run(context.Background(), jobs...)
	if err != nil {
		log.Fatalf("mixedcluster: %v", err)
	}

	fmt.Println("RPC probe (128B request / 4KiB response every 2ms) during a Terasort shuffle")
	fmt.Println()
	us := func(r ecnsim.Result, key string) time.Duration {
		return r.Duration(key).Round(time.Microsecond)
	}
	for i, r := range rs.Results {
		fmt.Printf("%-26s job=%-12v rpc n=%-5.0f mean=%-10v p50=%-10v p99=%-10v max=%v\n",
			setups[i].name,
			r.Duration(ecnsim.KeyJobRuntime).Round(time.Millisecond),
			r.Value(ecnsim.KeyRPCCount),
			us(r, ecnsim.KeyRPCMean), us(r, ecnsim.KeyRPCP50),
			us(r, ecnsim.KeyRPCP99), us(r, ecnsim.KeyRPCMax))
	}
	fmt.Println("\nDeep DropTail buffers push RPC tail latency into the bufferbloat regime;")
	fmt.Println("marking keeps the shuffle fast AND the service responsive — the paper's goal.")
}
