package cluster_test

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mapred"
	"repro/internal/units"
)

func leafSpineSpec() cluster.Spec {
	spec := cluster.DefaultSpec()
	spec.Nodes = 16
	spec.Racks = 4
	spec.Spines = 2
	return spec
}

// runDigest captures every result surface a shard count could perturb.
type runDigest string

func digestRun(t *testing.T, spec cluster.Spec, jobCfg mapred.JobConfig) runDigest {
	t.Helper()
	c := cluster.New(spec)
	job := c.RunJob(jobCfg)
	if !job.Done() {
		t.Fatalf("job incomplete at %d shards", spec.Shards)
	}
	lo, hi := job.ShuffleWindow()
	return runDigest(fmt.Sprintf(
		"runtime=%d shuffle=[%d,%d] delivered=%d latency=%x/%x p99=%x enq=%v marked=%v drops=%v/%v tcp=%+v events=%d now=%d",
		job.Runtime(), lo, hi,
		c.Metrics.DeliveredPackets,
		c.Metrics.Latency.Mean(), c.Metrics.DataLatency.Mean(), c.Metrics.P99Latency(),
		c.Metrics.Enqueued, c.Metrics.Marked, c.Metrics.EarlyDropped, c.Metrics.OverflowDropped,
		*c.TCP, c.Events(), c.Now(),
	))
}

// TestShardedBitIdentical is the tentpole contract: the sharded event loop
// must reproduce the serial engine's results exactly, at any shard count.
func TestShardedBitIdentical(t *testing.T) {
	jobCfg := mapred.TerasortConfig(64*units.MiB, 8)
	jobCfg.BlockSize = 16 * units.MiB

	spec := leafSpineSpec()
	spec.Shards = 1
	want := digestRun(t, spec, jobCfg)

	for _, shards := range []int{2, 4} {
		spec := leafSpineSpec()
		spec.Shards = shards
		if got := digestRun(t, spec, jobCfg); got != want {
			t.Errorf("%d shards diverged from serial:\n serial: %s\n got:    %s", shards, want, got)
		}
	}
}

// TestLookaheadSafety is the conservative-lookahead property test: every
// cross-shard handoff drained from the inbox lanes must carry a timestamp at
// or beyond the destination shard's clock — otherwise the horizon math
// admitted an event into a window the destination has already stepped past,
// and causality (hence bit-identity) is lost. The netsim drain panics on a
// violation; the hook additionally proves the property is exercised, not
// vacuously true, and that the safety margin never dips below zero even at
// the maximum shard count (the tightest windows).
func TestLookaheadSafety(t *testing.T) {
	jobCfg := mapred.TerasortConfig(64*units.MiB, 8)
	jobCfg.BlockSize = 16 * units.MiB

	for _, shards := range []int{2, 4} {
		spec := leafSpineSpec()
		spec.Shards = shards
		c := cluster.New(spec)

		var crossings uint64
		minMargin := units.Duration(1<<63 - 1)
		c.Topo.Net.OnCrossShardArrival = func(dst int, at, dstNow units.Time) {
			crossings++
			if m := units.Duration(at - dstNow); m < minMargin {
				minMargin = m
			}
		}
		job := c.RunJob(jobCfg)
		if !job.Done() {
			t.Fatalf("%d shards: job incomplete", shards)
		}
		if crossings == 0 {
			t.Fatalf("%d shards: no cross-shard handoffs observed — the property test is vacuous", shards)
		}
		if minMargin < 0 {
			t.Errorf("%d shards: cross-shard arrival %v before the destination clock", shards, minMargin)
		}
		t.Logf("%d shards: %d cross-shard handoffs, min margin %v (lookahead %v)",
			shards, crossings, minMargin, c.Topo.Lookahead)
	}
}

// TestShardedSelfDeterministic pins the weaker property separately so a
// bit-identity regression can be triaged: if this fails the sharded loop
// itself is nondeterministic (a race or unordered drain); if only
// TestShardedBitIdentical fails the loop is deterministic but diverges from
// the serial order.
func TestShardedSelfDeterministic(t *testing.T) {
	jobCfg := mapred.TerasortConfig(64*units.MiB, 8)
	jobCfg.BlockSize = 16 * units.MiB
	spec := leafSpineSpec()
	spec.Shards = 2
	a := digestRun(t, spec, jobCfg)
	b := digestRun(t, spec, jobCfg)
	if a != b {
		t.Errorf("sharded run not self-deterministic:\n a: %s\n b: %s", a, b)
	}
}
