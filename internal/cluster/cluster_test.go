package cluster_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/mapred"
	"repro/internal/qdisc"
	"repro/internal/tcp"
	"repro/internal/units"
)

func smallSpec() cluster.Spec {
	spec := cluster.DefaultSpec()
	spec.Nodes = 4
	return spec
}

func smallJob() mapred.JobConfig {
	cfg := mapred.TerasortConfig(64*units.MiB, 4)
	cfg.BlockSize = 16 * units.MiB
	return cfg
}

func TestDefaultSpecValid(t *testing.T) {
	spec := cluster.DefaultSpec()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if spec.Nodes != 16 || spec.LinkRate != 10*units.Gbps {
		t.Error("default testbed drifted from the paper's")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := cluster.DefaultSpec()
	bad.Nodes = 1
	if bad.Validate() == nil {
		t.Error("1-node spec validated")
	}
	bad2 := cluster.DefaultSpec()
	bad2.Queue = cluster.QueueRED
	bad2.TargetDelay = 0
	if bad2.Validate() == nil {
		t.Error("RED without target delay validated")
	}
}

func TestBufferDepths(t *testing.T) {
	// Shallow = 1MB/port, deep = 10MB/port at 1500B packets.
	if got := cluster.Shallow.Packets(); got != 699 {
		t.Errorf("shallow = %d packets, want 699", got)
	}
	if got := cluster.Deep.Packets(); got != 6990 {
		t.Errorf("deep = %d packets, want 6990", got)
	}
	if cluster.Shallow.String() != "shallow" || cluster.Deep.String() != "deep" {
		t.Error("depth names drifted")
	}
}

func TestQueueKindsInstalled(t *testing.T) {
	tests := []struct {
		kind cluster.QueueKind
		name string
	}{
		{cluster.QueueDropTail, "droptail"},
		{cluster.QueueRED, "red"},
		{cluster.QueueSimpleMark, "simplemark"},
	}
	for _, tt := range tests {
		spec := smallSpec()
		spec.Queue = tt.kind
		spec.Transport = tcp.RenoECN
		c := cluster.New(spec)
		got := c.Ports()[0].Queue().Name()
		if got != tt.name {
			t.Errorf("kind %v installed %q, want %q", tt.kind, got, tt.name)
		}
	}
}

func TestProtectModePropagates(t *testing.T) {
	spec := smallSpec()
	spec.Queue = cluster.QueueRED
	spec.Protect = qdisc.ProtectACKSYN
	spec.Transport = tcp.RenoECN
	c := cluster.New(spec)
	red, ok := c.Ports()[0].Queue().(*qdisc.RED)
	if !ok {
		t.Fatal("port queue is not RED")
	}
	if red.Config().Protect != qdisc.ProtectACKSYN {
		t.Error("protect mode not propagated")
	}
	if !red.Config().ECN {
		t.Error("ECN not enabled for an ECN transport")
	}
}

func TestREDECNDisabledForPlainTCP(t *testing.T) {
	spec := smallSpec()
	spec.Queue = cluster.QueueRED
	spec.Transport = tcp.Reno
	c := cluster.New(spec)
	red := c.Ports()[0].Queue().(*qdisc.RED)
	if red.Config().ECN {
		t.Error("ECN enabled although the transport cannot use it")
	}
}

func TestHostUplinksGetStudiedQdisc(t *testing.T) {
	// As in NS-2, the queue discipline applies to host uplinks too.
	spec := smallSpec()
	spec.Queue = cluster.QueueSimpleMark
	spec.Transport = tcp.DCTCP
	c := cluster.New(spec)
	if got := c.Topo.Hosts[0].Uplink().Queue().Name(); got != "simplemark" {
		t.Errorf("host uplink qdisc = %q, want simplemark", got)
	}
}

func TestRunJobCompletes(t *testing.T) {
	c := cluster.New(smallSpec())
	job := c.RunJob(smallJob())
	if !job.Done() {
		t.Fatal("job not done")
	}
	if job.Runtime() <= 0 {
		t.Error("non-positive runtime")
	}
	if c.Metrics.DeliveredPackets == 0 {
		t.Error("metrics saw no packets")
	}
	if c.TCP.ConnsEstablished == 0 {
		t.Error("no connections established")
	}
}

func TestRunDeterministicAcrossRepeats(t *testing.T) {
	run := func() (units.Duration, uint64) {
		c := cluster.New(smallSpec())
		job := c.RunJob(smallJob())
		return job.Runtime(), c.Metrics.DeliveredPackets
	}
	r1, p1 := run()
	r2, p2 := run()
	if r1 != r2 || p1 != p2 {
		t.Errorf("same spec, different outcomes: (%v,%d) vs (%v,%d)", r1, p1, r2, p2)
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	// Different seeds must change RED's probabilistic choices. Use RED
	// (the only seeded queue) and compare packet-level outcomes.
	run := func(seed uint64) units.Duration {
		spec := smallSpec()
		spec.Queue = cluster.QueueRED
		spec.Transport = tcp.RenoECN
		spec.TargetDelay = 100 * units.Microsecond
		spec.Seed = seed
		c := cluster.New(spec)
		return c.RunJob(smallJob()).Runtime()
	}
	if run(1) == run(999) {
		t.Skip("seeds produced identical runtimes (possible but unlikely); not a failure")
	}
}

func TestTwoTierClusterRuns(t *testing.T) {
	spec := smallSpec()
	spec.Nodes = 4
	spec.Racks = 2
	c := cluster.New(spec)
	job := c.RunJob(smallJob())
	if !job.Done() {
		t.Fatal("two-tier job incomplete")
	}
	if len(c.Topo.CorePorts) == 0 {
		t.Error("no core ports in two-tier build")
	}
}

func TestQueueKindString(t *testing.T) {
	if cluster.QueueDropTail.String() != "droptail" ||
		cluster.QueueRED.String() != "red" ||
		cluster.QueueSimpleMark.String() != "simplemark" {
		t.Error("queue kind names drifted")
	}
}

func TestCoDelAndPIEKindsInstalled(t *testing.T) {
	for _, tt := range []struct {
		kind cluster.QueueKind
		name string
	}{
		{cluster.QueueCoDel, "codel"},
		{cluster.QueuePIE, "pie"},
	} {
		spec := smallSpec()
		spec.Queue = tt.kind
		spec.Transport = tcp.RenoECN
		spec.Protect = qdisc.ProtectACKSYN
		c := cluster.New(spec)
		if got := c.Ports()[0].Queue().Name(); got != tt.name+"+ack+syn" {
			t.Errorf("kind %v installed %q", tt.kind, got)
		}
		job := c.RunJob(smallJob())
		if !job.Done() {
			t.Errorf("job under %v incomplete", tt.kind)
		}
	}
}
