// Package cluster assembles a complete simulated Hadoop cluster — fabric,
// transport stacks, MapReduce workers and the metrics collector — from a
// single declarative spec. It is the layer the experiments and examples
// build on.
package cluster

import (
	"fmt"

	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/units"
)

// QueueKind selects the switch egress discipline.
type QueueKind uint8

// Queue kinds under study. RED, SimpleMark and DropTail carry the paper's
// evaluation; CoDel and PIE extend the protection-mode analysis to the AQMs
// the authors' earlier LCN 2016 study considered.
const (
	QueueDropTail QueueKind = iota
	QueueRED
	QueueSimpleMark
	QueueCoDel
	QueuePIE
)

// String names the kind.
func (k QueueKind) String() string {
	switch k {
	case QueueDropTail:
		return "droptail"
	case QueueRED:
		return "red"
	case QueueSimpleMark:
		return "simplemark"
	case QueueCoDel:
		return "codel"
	case QueuePIE:
		return "pie"
	}
	return fmt.Sprintf("queue(%d)", uint8(k))
}

// BufferDepth selects the per-port buffer density the paper contrasts.
type BufferDepth uint8

// Buffer depths.
const (
	// Shallow is a commodity switch: 1 MB per port.
	Shallow BufferDepth = iota
	// Deep is a big-buffer switch: 10 MB per port ("10x bigger").
	Deep
)

// String names the depth.
func (b BufferDepth) String() string {
	if b == Deep {
		return "deep"
	}
	return "shallow"
}

// Packets returns the per-port buffer capacity in full-size packets.
func (b BufferDepth) Packets() int {
	perPacket := units.ByteSize(1500)
	bytes := 1 * units.MiB
	if b == Deep {
		bytes = 10 * units.MiB
	}
	return int(bytes / perPacket)
}

// LinkDegrade declares one inter-switch link degradation applied right
// after the fabric is built: Factor == 0 fails the link outright (routes are
// rebuilt around it), 0 < Factor < 1 derates it to that fraction of its
// built rate. Switch names follow the builders: "leafR"/"spineS" on
// leaf-spine fabrics, "torR"/"agg0" on two-tier.
type LinkDegrade struct {
	From, To string
	Factor   float64
}

// Validate reports a parameter error, or nil (link existence is checked at
// build time, when the switch names exist).
func (d LinkDegrade) Validate() error {
	switch {
	case d.From == "" || d.To == "":
		return fmt.Errorf("cluster: link degradation needs both switch names, got %q<->%q", d.From, d.To)
	case d.Factor < 0 || d.Factor >= 1:
		return fmt.Errorf("cluster: degrade factor %g out of range [0, 1) (0 fails the link)", d.Factor)
	}
	return nil
}

// Spec declares a cluster and its queueing configuration.
type Spec struct {
	// Nodes and Racks shape the fabric (Racks<=1: single-switch star).
	Nodes, Racks int
	// Spines adds a spine tier above the racks: a three-tier leaf-spine
	// fabric with cross-rack traffic ECMP-hashed over the spines
	// (requires Racks >= 2).
	Spines int
	// Oversub is the rack oversubscription factor shaping the default core
	// rate on multi-rack fabrics (0 = the historical default of 2).
	Oversub float64
	// Degrade lists inter-switch link degradations applied after build.
	Degrade []LinkDegrade
	// LinkRate and LinkDelay parameterize every edge link.
	LinkRate  units.Bandwidth
	LinkDelay units.Duration

	// Queue selects the switch egress discipline; Buffer its depth.
	Queue  QueueKind
	Buffer BufferDepth
	// TargetDelay is the AQM knob the paper sweeps: RED thresholds or the
	// SimpleMark threshold derive from it. Ignored for DropTail.
	TargetDelay units.Duration
	// Protect selects RED's protection mode (QueueRED only).
	Protect qdisc.ProtectMode
	// Instantaneous switches RED to instantaneous queue measurement.
	Instantaneous bool
	// ByteMode switches RED/SimpleMark thresholds to per-byte accounting
	// (ablation; real switches are per-packet, per the paper).
	ByteMode bool

	// Transport selects the TCP variant on every node.
	Transport tcp.Variant
	// TCPOverride, if non-nil, replaces the default transport config.
	TCPOverride *tcp.Config

	// NodeSpec configures the MapReduce workers.
	NodeSpec mapred.NodeSpec

	// Seed drives every random stream in the run.
	Seed uint64
	// LatencyReservoir bounds latency sample memory (0 = keep all).
	LatencyReservoir int
}

// DefaultSpec returns the paper's default testbed: a 16-node Hadoop cluster
// on one switch with 10 Gbps links (the paper's context: thresholds of tens
// to hundreds of packets, DCTCP's 65-packet rule of thumb), shallow buffers,
// DropTail, plain TCP.
func DefaultSpec() Spec {
	return Spec{
		Nodes:            16,
		Racks:            1,
		LinkRate:         10 * units.Gbps,
		LinkDelay:        5 * units.Microsecond,
		Queue:            QueueDropTail,
		Buffer:           Shallow,
		TargetDelay:      500 * units.Microsecond,
		Transport:        tcp.Reno,
		NodeSpec:         mapred.DefaultNodeSpec(),
		Seed:             1,
		LatencyReservoir: 1 << 16,
	}
}

// Validate reports a spec error, or nil.
func (s *Spec) Validate() error {
	switch {
	case s.Nodes < 2:
		return fmt.Errorf("cluster: need >=2 nodes")
	case s.LinkRate <= 0:
		return fmt.Errorf("cluster: link rate must be positive")
	case s.Queue != QueueDropTail && s.TargetDelay <= 0:
		return fmt.Errorf("cluster: AQM queues need a positive target delay")
	case s.Spines > 0 && s.Racks < 2:
		return fmt.Errorf("cluster: a spine tier needs Racks >= 2, got %d", s.Racks)
	case s.Oversub < 0:
		return fmt.Errorf("cluster: oversubscription factor must be non-negative, got %g", s.Oversub)
	case s.Racks > 1 && s.Nodes%s.Racks != 0:
		return fmt.Errorf("cluster: %d nodes not divisible into %d racks", s.Nodes, s.Racks)
	case len(s.Degrade) > 0 && s.Racks <= 1:
		return fmt.Errorf("cluster: link degradation needs inter-switch links (Racks >= 2)")
	}
	for _, d := range s.Degrade {
		if err := d.Validate(); err != nil {
			return err
		}
	}
	return s.NodeSpec.Validate()
}

// Cluster is a fully wired simulated cluster.
type Cluster struct {
	Spec    Spec
	Engine  *sim.Engine
	Topo    *topo.Cluster
	Stacks  []*tcp.Stack
	Workers []*mapred.Worker
	Metrics *metrics.Collector
	TCP     *tcp.Stats
}

// queueFactory builds the spec's switch qdisc for one port.
func (s *Spec) queueFactory() topo.QdiscFactory {
	capacity := s.Buffer.Packets()
	portSeq := uint64(0)
	return func(label string, rate units.Bandwidth) qdisc.Qdisc {
		portSeq++
		switch s.Queue {
		case QueueDropTail:
			return qdisc.NewDropTail(capacity)
		case QueueRED:
			cfg := qdisc.REDForTargetDelay(capacity, rate, s.TargetDelay)
			cfg.ECN = s.Transport.ECNEnabled()
			cfg.Protect = s.Protect
			cfg.Instantaneous = s.Instantaneous
			cfg.Seed = s.Seed ^ portSeq*0x9e3779b97f4a7c15
			if s.ByteMode {
				// Convert packet thresholds to bytes at full segment size.
				mean := float64(packet.HeaderSize + packet.DefaultMSS)
				cfg.ByteMode = true
				cfg.MinTh *= mean
				cfg.MaxTh *= mean
			}
			return qdisc.NewRED(cfg)
		case QueueSimpleMark:
			if s.ByteMode {
				k := s.LinkRateBytesIn(s.TargetDelay)
				return qdisc.NewSimpleMarkBytes(capacity, k)
			}
			return qdisc.SimpleMarkForTargetDelay(capacity, rate, s.TargetDelay)
		case QueueCoDel:
			cfg := qdisc.DefaultCoDelConfig(capacity, s.TargetDelay)
			cfg.ECN = s.Transport.ECNEnabled()
			cfg.Protect = s.Protect
			return qdisc.NewCoDel(cfg)
		case QueuePIE:
			cfg := qdisc.DefaultPIEConfig(capacity, rate, s.TargetDelay)
			cfg.ECN = s.Transport.ECNEnabled()
			cfg.Protect = s.Protect
			cfg.Seed = s.Seed ^ portSeq*0x7f4a_7c15
			return qdisc.NewPIE(cfg)
		}
		panic("cluster: unknown queue kind")
	}
}

// LinkRateBytesIn returns bytes the edge link drains in d (helper).
func (s *Spec) LinkRateBytesIn(d units.Duration) units.ByteSize {
	return s.LinkRate.BytesIn(d)
}

// New builds the cluster.
func New(spec Spec) *Cluster {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	eng := sim.New()
	// As in NS-2 (the paper's simulator), the configured queue discipline
	// applies uniformly to every link queue — host uplinks included.
	qf := spec.queueFactory()
	tc := topo.Build(eng, topo.Config{
		Nodes:     spec.Nodes,
		Racks:     spec.Racks,
		Spines:    spec.Spines,
		Oversub:   spec.Oversub,
		LinkRate:  spec.LinkRate,
		LinkDelay: spec.LinkDelay,
		// The ECMP flow hash is salted from the run seed, so multipath path
		// assignment replays bit-identically for a given (spec, seed).
		HashSeed:    spec.Seed ^ 0xec3c_9a1f_5bd1_e995,
		HostQueue:   qf,
		SwitchQueue: qf,
	})
	for _, d := range spec.Degrade {
		var err error
		if d.Factor == 0 {
			err = tc.FailLink(d.From, d.To)
		} else {
			err = tc.DerateLink(d.From, d.To, d.Factor)
		}
		if err != nil {
			panic(err)
		}
	}
	col := metrics.New(spec.LatencyReservoir, spec.Seed)
	tc.Net.SetObserver(col)

	tcpCfg := tcp.DefaultConfig(spec.Transport)
	if spec.TCPOverride != nil {
		tcpCfg = *spec.TCPOverride
	}
	stats := &tcp.Stats{}
	c := &Cluster{
		Spec:    spec,
		Engine:  eng,
		Topo:    tc,
		Metrics: col,
		TCP:     stats,
	}
	for i, h := range tc.Hosts {
		st := tcp.NewStack(h, tcpCfg, stats)
		c.Stacks = append(c.Stacks, st)
		c.Workers = append(c.Workers, &mapred.Worker{
			Index: i,
			Spec:  spec.NodeSpec,
			Stack: st,
		})
	}
	return c
}

// RunJob creates, starts and drives a MapReduce job to completion (with a
// generous simulated-time safety deadline), returning the finished job.
func (c *Cluster) RunJob(cfg mapred.JobConfig) *mapred.Job {
	job := mapred.NewJob(c.Engine, cfg, c.Workers)
	// Start slightly after t=0 so TSVal==0 never collides with the "no
	// timestamp" sentinel.
	c.Engine.Schedule(units.Time(1*units.Millisecond), job.Start)
	deadline := units.Time(6 * units.Second * units.Duration(1+c.Spec.Nodes))
	for !job.Done() {
		if !c.Engine.Step() {
			panic("cluster: job deadlocked — no pending events")
		}
		if c.Engine.Now() > deadline {
			panic(fmt.Sprintf("cluster: job exceeded deadline %v (done=%v)", deadline, job.Done()))
		}
	}
	return job
}

// NewScheduler hands the cluster's workers to a shared-slot multi-job
// scheduler — the multi-tenant entry point, where several jobs overlap on
// the same map/reduce slots instead of running one RunJob to completion.
// The scheduler takes ownership of the workers' slot counters; do not mix
// it with RunJob on the same cluster.
func (c *Cluster) NewScheduler(policy mapred.SchedPolicy) *mapred.Scheduler {
	return mapred.NewScheduler(c.Engine, c.Workers, policy)
}

// RunUntil drives the engine to the absolute simulated time t, executing
// every event scheduled before it.
func (c *Cluster) RunUntil(t units.Time) { c.Engine.RunUntil(t) }

// Drain steps the engine until quiet() reports true, no events remain, or
// the simulated clock passes deadline. It reports whether the quiet
// condition was reached — callers decide whether an unfinished drain is an
// error (a deliberately overloaded open-loop run may legitimately still
// hold a backlog at the cutoff).
func (c *Cluster) Drain(deadline units.Time, quiet func() bool) bool {
	for !quiet() {
		if !c.Engine.Step() {
			return quiet()
		}
		if c.Engine.Now() > deadline {
			return quiet()
		}
	}
	return true
}

// Ports returns the switch->host edge ports (the studied bottlenecks).
func (c *Cluster) Ports() []*netsim.Port { return c.Topo.EdgePorts }

// WatchTierOccupancy enables per-tier queue-occupancy aggregation on the
// metrics collector, registering every built port under its fabric tier
// (host uplinks, switch->host edge, core up, core down). Call before the
// run; read back via Metrics.TierOccupancyAt.
func (c *Cluster) WatchTierOccupancy() {
	col := c.Metrics
	for _, h := range c.Topo.Hosts {
		if up := h.Uplink(); up != nil {
			col.SetPortTier(up, metrics.TierHostUp)
		}
	}
	for _, p := range c.Topo.EdgePorts {
		col.SetPortTier(p, metrics.TierEdge)
	}
	for _, p := range c.Topo.UpPorts {
		col.SetPortTier(p, metrics.TierCoreUp)
	}
	for _, p := range c.Topo.DownPorts {
		col.SetPortTier(p, metrics.TierCoreDown)
	}
	col.WatchTiers()
}
