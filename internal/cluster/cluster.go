// Package cluster assembles a complete simulated Hadoop cluster — fabric,
// transport stacks, MapReduce workers and the metrics collector — from a
// single declarative spec. It is the layer the experiments and examples
// build on.
package cluster

import (
	"fmt"
	"runtime"

	"repro/internal/flow"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/units"
)

// QueueKind selects the switch egress discipline.
type QueueKind uint8

// Queue kinds under study. RED, SimpleMark and DropTail carry the paper's
// evaluation; CoDel and PIE extend the protection-mode analysis to the AQMs
// the authors' earlier LCN 2016 study considered.
const (
	QueueDropTail QueueKind = iota
	QueueRED
	QueueSimpleMark
	QueueCoDel
	QueuePIE
)

// String names the kind.
func (k QueueKind) String() string {
	switch k {
	case QueueDropTail:
		return "droptail"
	case QueueRED:
		return "red"
	case QueueSimpleMark:
		return "simplemark"
	case QueueCoDel:
		return "codel"
	case QueuePIE:
		return "pie"
	}
	return fmt.Sprintf("queue(%d)", uint8(k))
}

// BufferDepth selects the per-port buffer density the paper contrasts.
type BufferDepth uint8

// Buffer depths.
const (
	// Shallow is a commodity switch: 1 MB per port.
	Shallow BufferDepth = iota
	// Deep is a big-buffer switch: 10 MB per port ("10x bigger").
	Deep
)

// String names the depth.
func (b BufferDepth) String() string {
	if b == Deep {
		return "deep"
	}
	return "shallow"
}

// Packets returns the per-port buffer capacity in full-size packets.
func (b BufferDepth) Packets() int {
	perPacket := units.ByteSize(1500)
	bytes := 1 * units.MiB
	if b == Deep {
		bytes = 10 * units.MiB
	}
	return int(bytes / perPacket)
}

// LinkDegrade declares one inter-switch link degradation applied right
// after the fabric is built: Factor == 0 fails the link outright (routes are
// rebuilt around it), 0 < Factor < 1 derates it to that fraction of its
// built rate. Switch names follow the builders: "leafR"/"spineS" on
// leaf-spine fabrics, "torR"/"agg0" on two-tier.
type LinkDegrade struct {
	From, To string
	Factor   float64
}

// Validate reports a parameter error, or nil (link existence is checked at
// build time, when the switch names exist).
func (d LinkDegrade) Validate() error {
	switch {
	case d.From == "" || d.To == "":
		return fmt.Errorf("cluster: link degradation needs both switch names, got %q<->%q", d.From, d.To)
	case d.Factor < 0 || d.Factor >= 1:
		return fmt.Errorf("cluster: degrade factor %g out of range [0, 1) (0 fails the link)", d.Factor)
	}
	return nil
}

// Spec declares a cluster and its queueing configuration.
type Spec struct {
	// Nodes and Racks shape the fabric (Racks<=1: single-switch star).
	Nodes, Racks int
	// Spines adds a spine tier above the racks: a three-tier leaf-spine
	// fabric with cross-rack traffic ECMP-hashed over the spines
	// (requires Racks >= 2).
	Spines int
	// Oversub is the rack oversubscription factor shaping the default core
	// rate on multi-rack fabrics (0 = the historical default of 2).
	Oversub float64
	// Degrade lists inter-switch link degradations applied after build.
	Degrade []LinkDegrade
	// LinkRate and LinkDelay parameterize every edge link.
	LinkRate  units.Bandwidth
	LinkDelay units.Duration

	// Queue selects the switch egress discipline; Buffer its depth.
	Queue  QueueKind
	Buffer BufferDepth
	// TargetDelay is the AQM knob the paper sweeps: RED thresholds or the
	// SimpleMark threshold derive from it. Ignored for DropTail.
	TargetDelay units.Duration
	// Protect selects RED's protection mode (QueueRED only).
	Protect qdisc.ProtectMode
	// Instantaneous switches RED to instantaneous queue measurement.
	Instantaneous bool
	// ByteMode switches RED/SimpleMark thresholds to per-byte accounting
	// (ablation; real switches are per-packet, per the paper).
	ByteMode bool

	// Transport selects the TCP variant on every node.
	Transport tcp.Variant
	// TCPOverride, if non-nil, replaces the default transport config.
	TCPOverride *tcp.Config

	// NodeSpec configures the MapReduce workers.
	NodeSpec mapred.NodeSpec

	// Seed drives every random stream in the run.
	Seed uint64
	// LatencyReservoir bounds latency sample memory (0 = keep all).
	LatencyReservoir int

	// Shards partitions the event loop by fabric slice for parallel
	// execution: 0 (the zero value) and 1 run the serial engine, ShardAuto
	// (-1) resolves automatically (GOMAXPROCS-aware on leaf-spine fabrics,
	// serial elsewhere), n > 1 requests that many shards. More than one shard
	// requires a leaf-spine fabric (Spines > 0) with at most one shard per
	// rack; RunJob is the sharded drive path (RunUntil/Drain/NewScheduler
	// need a serial spec). Results are bit-identical at every shard count.
	Shards int

	// Hybrid enables the fluid/packet hybrid engine: transfers whose paths
	// are uncontended run as fluid rates (one completion event instead of a
	// packet exchange), and ports that cross FluidThreshold utilization or
	// see AQM activity promote their flows to packet level. Off, the cluster
	// is literally the pure packet engine — no controller is built.
	Hybrid bool
	// FluidThreshold is the fluid utilization threshold u in [0, 1]. 0 keeps
	// the hybrid controller built but inactive (every transfer runs at packet
	// level — the exactness mode).
	FluidThreshold float64
	// PromoteHysteresis is the quiet window a promoted port must observe
	// before demoting back to fluid (0 defaults to 1ms when Hybrid is set).
	PromoteHysteresis units.Duration

	// Notify enables switch-originated congestion notifications: a switch
	// egress whose queue occupancy crosses NotifyThreshold emits an in-band
	// notification that steers ECMP reselection off the hot port
	// (NotifyReroute) and/or gates the offending sources' injection rate
	// (NotifyThrottle). Off, the fabric is literally the pure packet engine —
	// no notifier is built.
	Notify bool
	// NotifyThreshold is the emitting queue occupancy in packets (0 defaults
	// to 64 when Notify is set).
	NotifyThreshold int
	// NotifyReroute and NotifyThrottle select the reaction mechanisms. With
	// Notify set and neither selected, both engage.
	NotifyReroute, NotifyThrottle bool

	// Facade enables the drop-in net façade: a simnet.Net over the cluster's
	// stacks whose DialContext/Listen let unmodified Go network code (real
	// net/http servers and clients) run as tenants over the simulated
	// fabric. Off, no gate or façade state is built — the cluster is
	// byte-for-byte the plain engine.
	Facade bool
}

// Notification reaction constants: derived defaults, not spec knobs. The
// affinity window pins a rerouted flow to its alternate path long enough to
// outlive transient queue wiggle; the quiet period sets the throttle's decay
// clock (a gated host is back at line rate at most log2(16)+1 quiet periods
// after its last notification).
const (
	NotifyAffinity = units.Duration(1 * units.Millisecond)
	NotifyQuiet    = units.Duration(500 * units.Microsecond)
)

// ShardAuto is the Spec.Shards sentinel for automatic shard-count selection:
// min(GOMAXPROCS, Racks) on leaf-spine fabrics, serial everywhere else.
const ShardAuto = -1

// DefaultSpec returns the paper's default testbed: a 16-node Hadoop cluster
// on one switch with 10 Gbps links (the paper's context: thresholds of tens
// to hundreds of packets, DCTCP's 65-packet rule of thumb), shallow buffers,
// DropTail, plain TCP.
func DefaultSpec() Spec {
	return Spec{
		Nodes:            16,
		Racks:            1,
		LinkRate:         10 * units.Gbps,
		LinkDelay:        5 * units.Microsecond,
		Queue:            QueueDropTail,
		Buffer:           Shallow,
		TargetDelay:      500 * units.Microsecond,
		Transport:        tcp.Reno,
		NodeSpec:         mapred.DefaultNodeSpec(),
		Seed:             1,
		LatencyReservoir: 1 << 16,
	}
}

// Validate reports a spec error, or nil.
func (s *Spec) Validate() error {
	switch {
	case s.Nodes < 2:
		return fmt.Errorf("cluster: need >=2 nodes")
	case s.LinkRate <= 0:
		return fmt.Errorf("cluster: link rate must be positive")
	case s.Queue != QueueDropTail && s.TargetDelay <= 0:
		return fmt.Errorf("cluster: AQM queues need a positive target delay")
	case s.Spines > 0 && s.Racks < 2:
		return fmt.Errorf("cluster: a spine tier needs Racks >= 2, got %d", s.Racks)
	case s.Oversub < 0:
		return fmt.Errorf("cluster: oversubscription factor must be non-negative, got %g", s.Oversub)
	case s.Racks > 1 && s.Nodes%s.Racks != 0:
		return fmt.Errorf("cluster: %d nodes not divisible into %d racks", s.Nodes, s.Racks)
	case len(s.Degrade) > 0 && s.Racks <= 1:
		return fmt.Errorf("cluster: link degradation needs inter-switch links (Racks >= 2)")
	case s.Shards < ShardAuto:
		return fmt.Errorf("cluster: shard count must be ShardAuto (-1), 0/1 (serial), or a positive count, got %d", s.Shards)
	case s.Shards > 1 && s.Spines == 0:
		return fmt.Errorf("cluster: %d shards need a leaf-spine fabric (Spines > 0); other fabrics run serially", s.Shards)
	case s.Shards > 1 && s.Shards > s.Racks:
		return fmt.Errorf("cluster: %d shards exceed %d racks (the cut is at most one shard per rack)", s.Shards, s.Racks)
	case s.FluidThreshold < 0 || s.FluidThreshold > 1:
		return fmt.Errorf("cluster: fluid threshold %g out of range [0, 1]", s.FluidThreshold)
	case !s.Hybrid && s.FluidThreshold != 0:
		return fmt.Errorf("cluster: fluid threshold needs Hybrid")
	case !s.Hybrid && s.PromoteHysteresis != 0:
		return fmt.Errorf("cluster: promote hysteresis needs Hybrid")
	case s.PromoteHysteresis < 0:
		return fmt.Errorf("cluster: promote hysteresis must be non-negative, got %v", s.PromoteHysteresis)
	case !s.Notify && s.NotifyThreshold != 0:
		return fmt.Errorf("cluster: notify threshold needs Notify")
	case !s.Notify && (s.NotifyReroute || s.NotifyThrottle):
		return fmt.Errorf("cluster: notification mechanisms need Notify")
	case s.NotifyThreshold < 0:
		return fmt.Errorf("cluster: notify threshold must be non-negative, got %d", s.NotifyThreshold)
	}
	for _, d := range s.Degrade {
		if err := d.Validate(); err != nil {
			return err
		}
	}
	return s.NodeSpec.Validate()
}

// ResolveShards returns the effective shard count for the spec: an explicit
// positive value is taken as-is, the zero value is serial, and ShardAuto
// resolves to min(GOMAXPROCS, Racks) on leaf-spine fabrics and to 1
// everywhere else.
func (s *Spec) ResolveShards() int {
	if s.Shards > 0 {
		return s.Shards
	}
	if s.Shards != ShardAuto || s.Spines == 0 || s.Racks < 2 {
		return 1
	}
	n := runtime.GOMAXPROCS(0)
	if n > s.Racks {
		n = s.Racks
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Cluster is a fully wired simulated cluster.
type Cluster struct {
	Spec Spec
	// Engine is the control engine — in serial runs (Shards resolving to 1)
	// it is the one engine everything runs on, exactly as before sharding
	// existed. Sharded hosts run on their shard's engine instead; reach it
	// via Workers[i].Stack.Engine().
	Engine *sim.Engine
	// Group coordinates the shard engines under conservative lookahead.
	// Serial runs hold the degenerate one-shard group.
	Group   *sim.Group
	Topo    *topo.Cluster
	Stacks  []*tcp.Stack
	Workers []*mapred.Worker
	Metrics *metrics.Collector
	// TCP aggregates transport counters. In sharded runs each shard writes
	// its own block and RunJob folds them in here after the run.
	TCP *tcp.Stats
	// Fluid is the hybrid engine's fluid controller, nil unless Spec.Hybrid.
	// With FluidThreshold 0 it exists but never admits a transfer.
	Fluid *flow.Fluid
	// Notify is the congestion notifier, nil unless Spec.Notify.
	Notify *netsim.Notifier
	// Net is the drop-in net façade over the cluster's stacks, nil unless
	// Spec.Facade.
	Net *simnet.Net

	shardViews []*metrics.ShardView
	shardStats []*tcp.Stats
	shardOf    []int // worker index -> shard id
}

// queueFactory builds the spec's switch qdisc for one port.
func (s *Spec) queueFactory() topo.QdiscFactory {
	capacity := s.Buffer.Packets()
	portSeq := uint64(0)
	return func(label string, rate units.Bandwidth) qdisc.Qdisc {
		portSeq++
		switch s.Queue {
		case QueueDropTail:
			return qdisc.NewDropTail(capacity)
		case QueueRED:
			cfg := qdisc.REDForTargetDelay(capacity, rate, s.TargetDelay)
			cfg.ECN = s.Transport.ECNEnabled()
			cfg.Protect = s.Protect
			cfg.Instantaneous = s.Instantaneous
			cfg.Seed = s.Seed ^ portSeq*0x9e3779b97f4a7c15
			if s.ByteMode {
				// Convert packet thresholds to bytes at full segment size.
				mean := float64(packet.HeaderSize + packet.DefaultMSS)
				cfg.ByteMode = true
				cfg.MinTh *= mean
				cfg.MaxTh *= mean
			}
			return qdisc.NewRED(cfg)
		case QueueSimpleMark:
			if s.ByteMode {
				k := s.LinkRateBytesIn(s.TargetDelay)
				return qdisc.NewSimpleMarkBytes(capacity, k)
			}
			return qdisc.SimpleMarkForTargetDelay(capacity, rate, s.TargetDelay)
		case QueueCoDel:
			cfg := qdisc.DefaultCoDelConfig(capacity, s.TargetDelay)
			cfg.ECN = s.Transport.ECNEnabled()
			cfg.Protect = s.Protect
			return qdisc.NewCoDel(cfg)
		case QueuePIE:
			cfg := qdisc.DefaultPIEConfig(capacity, rate, s.TargetDelay)
			cfg.ECN = s.Transport.ECNEnabled()
			cfg.Protect = s.Protect
			cfg.Seed = s.Seed ^ portSeq*0x7f4a_7c15
			return qdisc.NewPIE(cfg)
		}
		panic("cluster: unknown queue kind")
	}
}

// LinkRateBytesIn returns bytes the edge link drains in d (helper).
func (s *Spec) LinkRateBytesIn(d units.Duration) units.ByteSize {
	return s.LinkRate.BytesIn(d)
}

// New builds the cluster.
func New(spec Spec) *Cluster {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	shards := spec.ResolveShards()
	engines := make([]*sim.Engine, shards)
	for i := range engines {
		engines[i] = sim.New()
	}
	// As in NS-2 (the paper's simulator), the configured queue discipline
	// applies uniformly to every link queue — host uplinks included.
	qf := spec.queueFactory()
	tc := topo.BuildSharded(engines, topo.Config{
		Nodes:     spec.Nodes,
		Racks:     spec.Racks,
		Spines:    spec.Spines,
		Oversub:   spec.Oversub,
		LinkRate:  spec.LinkRate,
		LinkDelay: spec.LinkDelay,
		// The ECMP flow hash is salted from the run seed, so multipath path
		// assignment replays bit-identically for a given (spec, seed).
		HashSeed:    spec.Seed ^ 0xec3c_9a1f_5bd1_e995,
		HostQueue:   qf,
		SwitchQueue: qf,
	})
	for _, d := range spec.Degrade {
		var err error
		if d.Factor == 0 {
			err = tc.FailLink(d.From, d.To)
		} else {
			err = tc.DerateLink(d.From, d.To, d.Factor)
		}
		if err != nil {
			panic(err)
		}
	}
	group := sim.NewGroup(engines, tc.Lookahead)
	col := metrics.New(spec.LatencyReservoir, spec.Seed)

	c := &Cluster{
		Spec:    spec,
		Engine:  group.Ctrl(),
		Group:   group,
		Topo:    tc,
		Metrics: col,
		TCP:     &tcp.Stats{},
	}

	if spec.Hybrid {
		hyst := spec.PromoteHysteresis
		if hyst <= 0 {
			hyst = units.Duration(1 * units.Millisecond)
		}
		c.Fluid = flow.NewFluid(group, tc.Net, flow.FluidConfig{
			Threshold:  spec.FluidThreshold,
			Hysteresis: hyst,
			Lag:        c.ControlLag(),
		})
		c.Fluid.OnDelivered = col.AddFluidPayload
		// Track every port a flow can traverse; a fluid transfer crossing an
		// untracked port would be invisible to the congestion accounting.
		for _, h := range tc.Hosts {
			c.Fluid.Track(h.Uplink())
		}
		for _, p := range tc.EdgePorts {
			c.Fluid.Track(p)
		}
		for _, p := range tc.UpPorts {
			c.Fluid.Track(p)
		}
		for _, p := range tc.DownPorts {
			c.Fluid.Track(p)
		}
	}
	if spec.Notify {
		thr := spec.NotifyThreshold
		if thr == 0 {
			thr = 64
		}
		reroute, throttle := spec.NotifyReroute, spec.NotifyThrottle
		if !reroute && !throttle {
			reroute, throttle = true, true
		}
		c.Notify = netsim.NewNotifier(group, tc.Net, netsim.NotifyConfig{
			Threshold: thr,
			Reroute:   reroute,
			Throttle:  throttle,
			Affinity:  NotifyAffinity,
			Quiet:     NotifyQuiet,
			Lag:       c.ControlLag(),
		})
		// Track every switch egress that can congest: edge (switch->host),
		// core up and core down. Host uplinks are not tracked — a host
		// noticing its own queue gains nothing from notifying itself.
		for _, p := range tc.EdgePorts {
			c.Notify.Track(p)
		}
		for _, p := range tc.UpPorts {
			c.Notify.Track(p)
		}
		for _, p := range tc.DownPorts {
			c.Notify.Track(p)
		}
		for _, h := range tc.Hosts {
			c.Notify.RegisterHost(h)
		}
	}
	// hybridObs tees AQM verdicts into the fluid controller, and enqueue
	// verdicts into the congestion notifier. With both inactive no tee is
	// installed at all — the observer chain is byte-for-byte the packet
	// engine's.
	hybridObs := func(shard int, inner netsim.Observer) netsim.Observer {
		if c.Fluid.Active() {
			inner = &hybridTee{inner: inner, fluid: c.Fluid, shard: shard}
		}
		if c.Notify != nil {
			inner = &notifyTee{inner: inner, notify: c.Notify, shard: shard}
		}
		return inner
	}

	if group.Serial() {
		tc.Net.SetObserver(hybridObs(0, col))
	} else {
		// Each shard observes through its own view: order-free counters stay
		// shard-local, order-sensitive delivery observations are buffered and
		// replayed into the collector in serial order at every barrier, right
		// after the cross-shard packet lanes drain.
		c.shardViews = make([]*metrics.ShardView, shards)
		for i, e := range engines {
			c.shardViews[i] = col.ShardView(e)
			tc.Net.SetShardObserver(i, hybridObs(i, c.shardViews[i]))
		}
		group.OnBarrier = func() {
			tc.Net.DrainCrossShard()
			col.ReplayDeliveries(c.shardViews)
		}
	}

	tcpCfg := tcp.DefaultConfig(spec.Transport)
	if spec.TCPOverride != nil {
		tcpCfg = *spec.TCPOverride
	}
	c.shardStats = make([]*tcp.Stats, shards)
	if group.Serial() {
		// One shared block, written in place — the historical layout.
		c.shardStats[0] = c.TCP
	} else {
		for i := range c.shardStats {
			c.shardStats[i] = &tcp.Stats{}
		}
	}
	for i, h := range tc.Hosts {
		sid := h.Shard().ID()
		c.shardOf = append(c.shardOf, sid)
		st := tcp.NewStack(h, tcpCfg, c.shardStats[sid])
		c.Stacks = append(c.Stacks, st)
		c.Workers = append(c.Workers, &mapred.Worker{
			Index: i,
			Spec:  spec.NodeSpec,
			Stack: st,
		})
	}
	if spec.Facade {
		// The façade's shard-context observations (TCP delivery callbacks)
		// re-enter control at observation time plus ControlLag, through the
		// same ScheduleControl seam as hybrid promotion — one hop discipline,
		// identical at every shard count.
		c.Net = simnet.New(simnet.Config{
			Stacks:   c.Stacks,
			Group:    group,
			Schedule: c.ScheduleControl,
			Lag:      c.ControlLag(),
		})
	}
	return c
}

// MergeShardState folds per-shard aggregates (metrics counters, transport
// stats) into the run-wide views. RunJob folds on return; a harness that
// drives a sharded run through the group loop itself (the simnet façade
// does) must fold before reading Metrics or TCP, or every counter the
// shards accumulated reads as zero. Idempotent; a no-op in serial runs.
func (c *Cluster) MergeShardState() {
	if c.Group.Serial() {
		return
	}
	for _, v := range c.shardViews {
		c.Metrics.MergeShard(v)
	}
	*c.TCP = tcp.Stats{}
	for _, s := range c.shardStats {
		s.AddInto(c.TCP)
	}
}

// hybridTee wraps one shard's observer to feed AQM verdicts into the fluid
// controller as they happen, in shard context: any mark or drop on a tracked
// port opens the port's episode window and (if fluid flows traverse it)
// routes a promotion control event at the verdict's own timestamp.
type hybridTee struct {
	inner netsim.Observer
	fluid *flow.Fluid
	shard int
}

func (t *hybridTee) PacketEnqueued(now units.Time, port *netsim.Port, p *packet.Packet, v qdisc.Verdict) {
	t.inner.PacketEnqueued(now, port, p, v)
	if v != qdisc.Enqueued {
		t.fluid.NoteAQM(t.shard, now, port)
	}
}

func (t *hybridTee) PacketDelivered(now units.Time, p *packet.Packet) {
	t.inner.PacketDelivered(now, p)
}

// notifyTee wraps one shard's observer to feed every enqueue verdict into the
// congestion notifier in shard context: the notifier checks the port's
// occupancy against its threshold and, on a crossing, records the source and
// routes one notification control event at wire delay. Not installed when
// Notify is off, keeping the off-chain byte-identical.
type notifyTee struct {
	inner  netsim.Observer
	notify *netsim.Notifier
	shard  int
}

func (t *notifyTee) PacketEnqueued(now units.Time, port *netsim.Port, p *packet.Packet, v qdisc.Verdict) {
	t.inner.PacketEnqueued(now, port, p, v)
	t.notify.NoteEnqueue(t.shard, now, port, p)
}

func (t *notifyTee) PacketDelivered(now units.Time, p *packet.Packet) {
	t.inner.PacketDelivered(now, p)
}

// ScheduleControl registers fn as a globally-serialized control event at
// time at from the context of the given worker's shard, ordered exactly
// where a serial engine would have placed it. It implements
// mapred.ControlPlane and is the hybrid harnesses' bridge from shard-context
// completions back into control context.
func (c *Cluster) ScheduleControl(worker int, at units.Time, fn func()) {
	sid := c.shardOf[worker]
	c.Group.ScheduleControl(sid, at, c.Group.Shards()[sid].ChildLineage(), fn)
}

// ControlLag is the fixed delay hybrid feedback events (shard-context
// observations re-entering control context) must carry: the minimum
// core-link propagation delay of the fabric. It is a property of the
// topology, not the partitioning — equal at every shard count, and at least
// the shard group's lookahead — so a control event at observation+lag fires
// after every shard event any window could have raced past, in serial and
// sharded runs alike. Zero on single-switch fabrics (nothing to race).
func (c *Cluster) ControlLag() units.Duration {
	lag := units.Duration(0)
	for _, p := range c.Topo.CorePorts {
		if d := p.Link().Delay; lag == 0 || d < lag {
			lag = d
		}
	}
	return lag
}

// RunJob creates, starts and drives a MapReduce job to completion (with a
// generous simulated-time safety deadline), returning the finished job.
// This is the sharded drive path: with Shards > 1 the group runs every
// fabric partition in parallel under conservative lookahead, producing
// bit-identical results to the serial engine.
func (c *Cluster) RunJob(cfg mapred.JobConfig) *mapred.Job {
	if cfg.ReplicationFactor > 1 && !c.Group.Serial() {
		panic("cluster: HDFS replication > 1 requires Shards(1) — the write pipeline fans one commit across arbitrary workers")
	}
	job := mapred.NewJob(c.Engine, cfg, c.Workers)
	if !c.Group.Serial() {
		job.SetControlPlane(c)
	}
	if c.Fluid.Active() {
		// Serial hybrid runs need the control plane too: the fluid feedback
		// hops must incur the same ControlLag at every shard count.
		job.SetControlPlane(c)
		job.SetFluid(c.Fluid, c.ControlLag())
	}
	// Start slightly after t=0 so TSVal==0 never collides with the "no
	// timestamp" sentinel.
	c.Engine.Schedule(units.Time(1*units.Millisecond), job.Start)
	deadline := units.Time(6 * units.Second * units.Duration(1+c.Spec.Nodes))
	switch c.Group.RunLoop(job.Done, deadline) {
	case sim.RunDeadlock:
		panic("cluster: job deadlocked — no pending events")
	case sim.RunTimeout:
		panic(fmt.Sprintf("cluster: job exceeded deadline %v (done=%v)", deadline, job.Done()))
	}
	c.MergeShardState()
	return job
}

// Events returns the executed-event count across the whole group — the
// figure every benchmark normalizes by.
func (c *Cluster) Events() uint64 { return c.Group.Executed() }

// Now returns the control clock — what a serial run's Engine.Now() reports.
func (c *Cluster) Now() units.Time { return c.Group.Now() }

// requireSerial guards drive paths that step the control engine directly.
func (c *Cluster) requireSerial(op string) {
	if !c.Group.Serial() {
		panic(fmt.Sprintf("cluster: %s requires Shards(1); only RunJob drives a sharded group", op))
	}
}

// NewScheduler hands the cluster's workers to a shared-slot multi-job
// scheduler — the multi-tenant entry point, where several jobs overlap on
// the same map/reduce slots instead of running one RunJob to completion.
// The scheduler takes ownership of the workers' slot counters; do not mix
// it with RunJob on the same cluster.
func (c *Cluster) NewScheduler(policy mapred.SchedPolicy) *mapred.Scheduler {
	c.requireSerial("NewScheduler")
	return mapred.NewScheduler(c.Engine, c.Workers, policy)
}

// RunUntil drives the engine to the absolute simulated time t, executing
// every event scheduled before it.
func (c *Cluster) RunUntil(t units.Time) {
	c.requireSerial("RunUntil")
	c.Engine.RunUntil(t)
}

// Drain steps the engine until quiet() reports true, no events remain, or
// the simulated clock passes deadline. It reports whether the quiet
// condition was reached — callers decide whether an unfinished drain is an
// error (a deliberately overloaded open-loop run may legitimately still
// hold a backlog at the cutoff).
func (c *Cluster) Drain(deadline units.Time, quiet func() bool) bool {
	c.requireSerial("Drain")
	for !quiet() {
		if !c.Engine.Step() {
			return quiet()
		}
		if c.Engine.Now() > deadline {
			return quiet()
		}
	}
	return true
}

// Ports returns the switch->host edge ports (the studied bottlenecks).
func (c *Cluster) Ports() []*netsim.Port { return c.Topo.EdgePorts }

// WatchTierOccupancy enables per-tier queue-occupancy aggregation on the
// metrics collector, registering every built port under its fabric tier
// (host uplinks, switch->host edge, core up, core down). Call before the
// run; read back via Metrics.TierOccupancyAt.
func (c *Cluster) WatchTierOccupancy() {
	col := c.Metrics
	for _, h := range c.Topo.Hosts {
		if up := h.Uplink(); up != nil {
			col.SetPortTier(up, metrics.TierHostUp)
		}
	}
	for _, p := range c.Topo.EdgePorts {
		col.SetPortTier(p, metrics.TierEdge)
	}
	for _, p := range c.Topo.UpPorts {
		col.SetPortTier(p, metrics.TierCoreUp)
	}
	for _, p := range c.Topo.DownPorts {
		col.SetPortTier(p, metrics.TierCoreDown)
	}
	col.WatchTiers()
}
