package topo

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/units"
)

func dtFactory(label string, rate units.Bandwidth) qdisc.Qdisc {
	return qdisc.NewDropTail(100)
}

func starConfig(n int) Config {
	return Config{
		Nodes:       n,
		LinkRate:    10 * units.Gbps,
		LinkDelay:   5 * units.Microsecond,
		SwitchQueue: dtFactory,
	}
}

func TestStarShape(t *testing.T) {
	cl := Build(sim.New(), starConfig(8))
	if len(cl.Hosts) != 8 {
		t.Errorf("hosts = %d", len(cl.Hosts))
	}
	if len(cl.Switches) != 1 {
		t.Errorf("switches = %d", len(cl.Switches))
	}
	if len(cl.EdgePorts) != 8 {
		t.Errorf("edge ports = %d", len(cl.EdgePorts))
	}
	if len(cl.CorePorts) != 0 {
		t.Errorf("core ports = %d in a star", len(cl.CorePorts))
	}
	for i, h := range cl.Hosts {
		if h.Uplink() == nil {
			t.Fatalf("host %d missing uplink", i)
		}
		if cl.Switches[0].RouteFor(h.ID()) == nil {
			t.Fatalf("switch missing route to host %d", i)
		}
	}
}

func TestStarAllPairsConnectivity(t *testing.T) {
	eng := sim.New()
	cl := Build(eng, starConfig(4))
	// Deliver one packet for every ordered pair.
	type rec struct{ got int }
	recs := make([]*rec, 4)
	for i, h := range cl.Hosts {
		r := &rec{}
		recs[i] = r
		h.AttachProtocol(protoFunc(func(p *packet.Packet) { r.got++ }))
	}
	id := uint64(0)
	for i, src := range cl.Hosts {
		for j, dst := range cl.Hosts {
			if i == j {
				continue
			}
			id++
			src.Send(&packet.Packet{
				ID:  id,
				Src: packet.Addr{Node: src.ID(), Port: 1},
				Dst: packet.Addr{Node: dst.ID(), Port: 1},
			})
		}
	}
	eng.Run()
	for i, r := range recs {
		if r.got != 3 {
			t.Errorf("host %d received %d, want 3", i, r.got)
		}
	}
}

type protoFunc func(*packet.Packet)

func (f protoFunc) Deliver(p *packet.Packet) { f(p) }

func TestTwoTierShape(t *testing.T) {
	cfg := starConfig(8)
	cfg.Racks = 2
	cl := Build(sim.New(), cfg)
	if len(cl.Switches) != 3 { // agg + 2 ToR
		t.Errorf("switches = %d, want 3", len(cl.Switches))
	}
	if len(cl.EdgePorts) != 8 {
		t.Errorf("edge ports = %d", len(cl.EdgePorts))
	}
	if len(cl.CorePorts) != 4 { // 2 racks x up+down
		t.Errorf("core ports = %d, want 4", len(cl.CorePorts))
	}
}

func TestTwoTierAllPairsConnectivity(t *testing.T) {
	eng := sim.New()
	cfg := starConfig(6)
	cfg.Racks = 3
	cl := Build(eng, cfg)
	got := make(map[packet.NodeID]int)
	for _, h := range cl.Hosts {
		h := h
		h.AttachProtocol(protoFunc(func(p *packet.Packet) { got[h.ID()]++ }))
	}
	id := uint64(0)
	for i, src := range cl.Hosts {
		for j, dst := range cl.Hosts {
			if i == j {
				continue
			}
			id++
			src.Send(&packet.Packet{
				ID:  id,
				Src: packet.Addr{Node: src.ID(), Port: 1},
				Dst: packet.Addr{Node: dst.ID(), Port: 1},
			})
		}
	}
	eng.Run()
	for _, h := range cl.Hosts {
		if got[h.ID()] != 5 {
			t.Errorf("host %v received %d, want 5", h.ID(), got[h.ID()])
		}
	}
}

func TestTwoTierCrossRackTraversesAgg(t *testing.T) {
	eng := sim.New()
	cfg := starConfig(4)
	cfg.Racks = 2
	cl := Build(eng, cfg)
	var hops int
	dst := cl.Hosts[3] // other rack than host 0
	dst.AttachProtocol(protoFunc(func(p *packet.Packet) { hops = p.Hops }))
	cl.Hosts[0].Send(&packet.Packet{
		ID:  1,
		Src: packet.Addr{Node: cl.Hosts[0].ID(), Port: 1},
		Dst: packet.Addr{Node: dst.ID(), Port: 1},
	})
	eng.Run()
	if hops != 4 { // host->tor0->agg->tor1->host
		t.Errorf("cross-rack hops = %d, want 4", hops)
	}

	var sameRackHops int
	cl.Hosts[1].AttachProtocol(protoFunc(func(p *packet.Packet) { sameRackHops = p.Hops }))
	cl.Hosts[0].Send(&packet.Packet{
		ID:  2,
		Src: packet.Addr{Node: cl.Hosts[0].ID(), Port: 1},
		Dst: packet.Addr{Node: cl.Hosts[1].ID(), Port: 1},
	})
	eng.Run()
	if sameRackHops != 2 { // host->tor0->host
		t.Errorf("same-rack hops = %d, want 2", sameRackHops)
	}
}

func TestHostQueueFactoryUsed(t *testing.T) {
	used := 0
	cfg := starConfig(3)
	cfg.HostQueue = func(label string, rate units.Bandwidth) qdisc.Qdisc {
		used++
		return qdisc.NewDropTail(7)
	}
	cl := Build(sim.New(), cfg)
	if used != 3 {
		t.Errorf("host factory used %d times, want 3", used)
	}
	if cl.Hosts[0].Uplink().Queue().CapacityPackets() != 7 {
		t.Error("host uplink does not use the host factory's qdisc")
	}
}

func TestQdiscPerPortDistinct(t *testing.T) {
	cl := Build(sim.New(), starConfig(4))
	seen := make(map[qdisc.Qdisc]bool)
	for _, p := range cl.EdgePorts {
		if seen[p.Queue()] {
			t.Fatal("two ports share one qdisc instance")
		}
		seen[p.Queue()] = true
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Nodes: 1, LinkRate: 1, SwitchQueue: dtFactory},
		{Nodes: 4, LinkRate: 0, SwitchQueue: dtFactory},
		{Nodes: 4, LinkRate: 1, LinkDelay: -1, SwitchQueue: dtFactory},
		{Nodes: 4, LinkRate: 1},
		{Nodes: 5, Racks: 2, LinkRate: 1, SwitchQueue: dtFactory},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should not validate", i)
		}
	}
}

func TestRackOf(t *testing.T) {
	cfg := starConfig(8)
	cfg.Racks = 2
	if RackOf(cfg, 0) != 0 || RackOf(cfg, 3) != 0 || RackOf(cfg, 4) != 1 || RackOf(cfg, 7) != 1 {
		t.Error("RackOf misassigns")
	}
	if RackOf(starConfig(8), 5) != 0 {
		t.Error("star RackOf != 0")
	}
}

func TestEdgePortLabels(t *testing.T) {
	cl := Build(sim.New(), starConfig(2))
	if cl.EdgePorts[0].Label != "sw0->node00" {
		t.Errorf("label = %q", cl.EdgePorts[0].Label)
	}
	var _ *netsim.Port = cl.EdgePorts[0]
}
