package topo

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/units"
)

func dtFactory(label string, rate units.Bandwidth) qdisc.Qdisc {
	return qdisc.NewDropTail(100)
}

func starConfig(n int) Config {
	return Config{
		Nodes:       n,
		LinkRate:    10 * units.Gbps,
		LinkDelay:   5 * units.Microsecond,
		SwitchQueue: dtFactory,
	}
}

func TestStarShape(t *testing.T) {
	cl := Build(sim.New(), starConfig(8))
	if len(cl.Hosts) != 8 {
		t.Errorf("hosts = %d", len(cl.Hosts))
	}
	if len(cl.Switches) != 1 {
		t.Errorf("switches = %d", len(cl.Switches))
	}
	if len(cl.EdgePorts) != 8 {
		t.Errorf("edge ports = %d", len(cl.EdgePorts))
	}
	if len(cl.CorePorts) != 0 {
		t.Errorf("core ports = %d in a star", len(cl.CorePorts))
	}
	for i, h := range cl.Hosts {
		if h.Uplink() == nil {
			t.Fatalf("host %d missing uplink", i)
		}
		if cl.Switches[0].RouteFor(h.ID()) == nil {
			t.Fatalf("switch missing route to host %d", i)
		}
	}
}

func TestStarAllPairsConnectivity(t *testing.T) {
	eng := sim.New()
	cl := Build(eng, starConfig(4))
	// Deliver one packet for every ordered pair.
	type rec struct{ got int }
	recs := make([]*rec, 4)
	for i, h := range cl.Hosts {
		r := &rec{}
		recs[i] = r
		h.AttachProtocol(protoFunc(func(p *packet.Packet) { r.got++ }))
	}
	id := uint64(0)
	for i, src := range cl.Hosts {
		for j, dst := range cl.Hosts {
			if i == j {
				continue
			}
			id++
			src.Send(&packet.Packet{
				ID:  id,
				Src: packet.Addr{Node: src.ID(), Port: 1},
				Dst: packet.Addr{Node: dst.ID(), Port: 1},
			})
		}
	}
	eng.Run()
	for i, r := range recs {
		if r.got != 3 {
			t.Errorf("host %d received %d, want 3", i, r.got)
		}
	}
}

type protoFunc func(*packet.Packet)

func (f protoFunc) Deliver(p *packet.Packet) { f(p) }

func TestTwoTierShape(t *testing.T) {
	cfg := starConfig(8)
	cfg.Racks = 2
	cl := Build(sim.New(), cfg)
	if len(cl.Switches) != 3 { // agg + 2 ToR
		t.Errorf("switches = %d, want 3", len(cl.Switches))
	}
	if len(cl.EdgePorts) != 8 {
		t.Errorf("edge ports = %d", len(cl.EdgePorts))
	}
	if len(cl.CorePorts) != 4 { // 2 racks x up+down
		t.Errorf("core ports = %d, want 4", len(cl.CorePorts))
	}
}

func TestTwoTierAllPairsConnectivity(t *testing.T) {
	eng := sim.New()
	cfg := starConfig(6)
	cfg.Racks = 3
	cl := Build(eng, cfg)
	got := make(map[packet.NodeID]int)
	for _, h := range cl.Hosts {
		h := h
		h.AttachProtocol(protoFunc(func(p *packet.Packet) { got[h.ID()]++ }))
	}
	id := uint64(0)
	for i, src := range cl.Hosts {
		for j, dst := range cl.Hosts {
			if i == j {
				continue
			}
			id++
			src.Send(&packet.Packet{
				ID:  id,
				Src: packet.Addr{Node: src.ID(), Port: 1},
				Dst: packet.Addr{Node: dst.ID(), Port: 1},
			})
		}
	}
	eng.Run()
	for _, h := range cl.Hosts {
		if got[h.ID()] != 5 {
			t.Errorf("host %v received %d, want 5", h.ID(), got[h.ID()])
		}
	}
}

func TestTwoTierCrossRackTraversesAgg(t *testing.T) {
	eng := sim.New()
	cfg := starConfig(4)
	cfg.Racks = 2
	cl := Build(eng, cfg)
	var hops int
	dst := cl.Hosts[3] // other rack than host 0
	dst.AttachProtocol(protoFunc(func(p *packet.Packet) { hops = p.Hops }))
	cl.Hosts[0].Send(&packet.Packet{
		ID:  1,
		Src: packet.Addr{Node: cl.Hosts[0].ID(), Port: 1},
		Dst: packet.Addr{Node: dst.ID(), Port: 1},
	})
	eng.Run()
	if hops != 4 { // host->tor0->agg->tor1->host
		t.Errorf("cross-rack hops = %d, want 4", hops)
	}

	var sameRackHops int
	cl.Hosts[1].AttachProtocol(protoFunc(func(p *packet.Packet) { sameRackHops = p.Hops }))
	cl.Hosts[0].Send(&packet.Packet{
		ID:  2,
		Src: packet.Addr{Node: cl.Hosts[0].ID(), Port: 1},
		Dst: packet.Addr{Node: cl.Hosts[1].ID(), Port: 1},
	})
	eng.Run()
	if sameRackHops != 2 { // host->tor0->host
		t.Errorf("same-rack hops = %d, want 2", sameRackHops)
	}
}

func TestHostQueueFactoryUsed(t *testing.T) {
	used := 0
	cfg := starConfig(3)
	cfg.HostQueue = func(label string, rate units.Bandwidth) qdisc.Qdisc {
		used++
		return qdisc.NewDropTail(7)
	}
	cl := Build(sim.New(), cfg)
	if used != 3 {
		t.Errorf("host factory used %d times, want 3", used)
	}
	if cl.Hosts[0].Uplink().Queue().CapacityPackets() != 7 {
		t.Error("host uplink does not use the host factory's qdisc")
	}
}

func TestQdiscPerPortDistinct(t *testing.T) {
	cl := Build(sim.New(), starConfig(4))
	seen := make(map[qdisc.Qdisc]bool)
	for _, p := range cl.EdgePorts {
		if seen[p.Queue()] {
			t.Fatal("two ports share one qdisc instance")
		}
		seen[p.Queue()] = true
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Nodes: 1, LinkRate: 1, SwitchQueue: dtFactory},
		{Nodes: 4, LinkRate: 0, SwitchQueue: dtFactory},
		{Nodes: 4, LinkRate: 1, LinkDelay: -1, SwitchQueue: dtFactory},
		{Nodes: 4, LinkRate: 1},
		{Nodes: 5, Racks: 2, LinkRate: 1, SwitchQueue: dtFactory},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should not validate", i)
		}
	}
}

func TestRackOf(t *testing.T) {
	cfg := starConfig(8)
	cfg.Racks = 2
	if RackOf(cfg, 0) != 0 || RackOf(cfg, 3) != 0 || RackOf(cfg, 4) != 1 || RackOf(cfg, 7) != 1 {
		t.Error("RackOf misassigns")
	}
	if RackOf(starConfig(8), 5) != 0 {
		t.Error("star RackOf != 0")
	}
}

func TestEdgePortLabels(t *testing.T) {
	cl := Build(sim.New(), starConfig(2))
	if cl.EdgePorts[0].Label != "sw0->node00" {
		t.Errorf("label = %q", cl.EdgePorts[0].Label)
	}
	var _ *netsim.Port = cl.EdgePorts[0]
}

func leafSpineConfig(nodes, racks, spines int) Config {
	cfg := starConfig(nodes)
	cfg.Racks = racks
	cfg.Spines = spines
	return cfg
}

func TestLeafSpineShape(t *testing.T) {
	cl := Build(sim.New(), leafSpineConfig(8, 4, 2))
	if len(cl.Hosts) != 8 {
		t.Errorf("hosts = %d", len(cl.Hosts))
	}
	if len(cl.Switches) != 6 { // 2 spines + 4 leaves
		t.Errorf("switches = %d, want 6", len(cl.Switches))
	}
	if len(cl.Leaves) != 4 || len(cl.Spines) != 2 {
		t.Errorf("tiers = %d leaves, %d spines", len(cl.Leaves), len(cl.Spines))
	}
	if len(cl.CorePorts) != 16 { // 4 leaves x 2 spines x up+down
		t.Errorf("core ports = %d, want 16", len(cl.CorePorts))
	}
	if len(cl.UpPorts) != 8 || len(cl.DownPorts) != 8 {
		t.Errorf("up/down ports = %d/%d, want 8/8", len(cl.UpPorts), len(cl.DownPorts))
	}
	if len(cl.LinkNames()) != 8 {
		t.Errorf("links = %d, want 8", len(cl.LinkNames()))
	}
	// Cross-rack destinations resolve to a full ECMP group; local ones to
	// a single port.
	leaf0 := cl.Leaves[0]
	if got := len(leaf0.RoutesFor(cl.Hosts[7].ID())); got != 2 {
		t.Errorf("cross-rack route group size = %d, want 2", got)
	}
	if got := len(leaf0.RoutesFor(cl.Hosts[0].ID())); got != 1 {
		t.Errorf("local route group size = %d, want 1", got)
	}
}

// allPairs sends one packet for every ordered host pair and reports the
// per-host delivery counts.
func allPairs(t *testing.T, eng *sim.Engine, cl *Cluster) map[packet.NodeID]int {
	t.Helper()
	got := make(map[packet.NodeID]int)
	for _, h := range cl.Hosts {
		h := h
		h.AttachProtocol(protoFunc(func(p *packet.Packet) { got[h.ID()]++ }))
	}
	id := uint64(0)
	for i, src := range cl.Hosts {
		for j, dst := range cl.Hosts {
			if i == j {
				continue
			}
			id++
			src.Send(&packet.Packet{
				ID:  id,
				Src: packet.Addr{Node: src.ID(), Port: uint16(1000 + i)},
				Dst: packet.Addr{Node: dst.ID(), Port: uint16(2000 + j)},
			})
		}
	}
	eng.Run()
	return got
}

// TestLeafSpineAllPairsConnectivity is the connectivity property test: every
// ordered host pair exchanges a packet on the healthy fabric, again after a
// spine link fails (routes rebuilt around it), and the failed link carries
// no traffic afterwards.
func TestLeafSpineAllPairsConnectivity(t *testing.T) {
	eng := sim.New()
	cfg := leafSpineConfig(12, 3, 2)
	cfg.HashSeed = 99
	cl := Build(eng, cfg)
	want := len(cl.Hosts) - 1
	got := allPairs(t, eng, cl)
	for _, h := range cl.Hosts {
		if got[h.ID()] != want {
			t.Errorf("healthy fabric: host %v received %d, want %d", h.ID(), got[h.ID()], want)
		}
	}

	if err := cl.FailLink("leaf0", "spine0"); err != nil {
		t.Fatalf("FailLink: %v", err)
	}
	failedUp := cl.UpPorts[0] // leaf0->spine0 is built first
	if failedUp.Label != "leaf0->spine0" {
		t.Fatalf("port order changed: %q", failedUp.Label)
	}
	sentBefore, _ := failedUp.Sent()

	got = allPairs(t, eng, cl)
	for _, h := range cl.Hosts {
		if got[h.ID()] != want {
			t.Errorf("degraded fabric: host %v received %d, want %d", h.ID(), got[h.ID()], want)
		}
	}
	if sentAfter, _ := failedUp.Sent(); sentAfter != sentBefore {
		t.Errorf("failed link carried %d packets after FailLink", sentAfter-sentBefore)
	}
	// leaf0's cross-rack groups now hold only spine1.
	if got := cl.Leaves[0].RoutesFor(cl.Hosts[len(cl.Hosts)-1].ID()); len(got) != 1 {
		t.Errorf("route group after failure = %d candidates, want 1", len(got))
	}
}

// TestReselectionAllPairsConnectivity extends the post-failure property to
// congestion-aware reselection (netsim.Port.MarkHot): over many seeded
// combinations of hot ports — including every port hot at once — layered on
// top of a failed spine link, every ordered host pair still exchanges a
// packet and the dead link still carries nothing. Reselection only ever walks
// the route group, and route groups exclude failed links by construction, so
// no hot marking can steer a flow onto a dead or partitioned path.
func TestReselectionAllPairsConnectivity(t *testing.T) {
	const seeds = 32
	for seed := uint64(0); seed < seeds; seed++ {
		eng := sim.New()
		cfg := leafSpineConfig(12, 3, 2)
		cfg.HashSeed = seed
		cl := Build(eng, cfg)
		if err := cl.FailLink("leaf0", "spine0"); err != nil {
			t.Fatalf("seed %d: FailLink: %v", seed, err)
		}
		failedUp := cl.UpPorts[0] // leaf0->spine0 is built first
		if failedUp.Label != "leaf0->spine0" {
			t.Fatalf("port order changed: %q", failedUp.Label)
		}
		sentBefore, _ := failedUp.Sent()

		// A seeded subset of the surviving core ports runs hot for the whole
		// exchange (far future expiry); seed 1 marks every core port, so the
		// all-candidates-hot fallback is always covered.
		rng := seed * 0x9e3779b97f4a7c15
		forever := eng.Now().Add(units.Duration(1 << 50))
		for i, p := range cl.CorePorts {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			if seed == 1 || rng&(1<<uint(i%8)) != 0 {
				p.MarkHot(forever)
			}
		}

		want := len(cl.Hosts) - 1
		got := allPairs(t, eng, cl)
		for _, h := range cl.Hosts {
			if got[h.ID()] != want {
				t.Errorf("seed %d: host %v received %d, want %d", seed, h.ID(), got[h.ID()], want)
			}
		}
		if sentAfter, _ := failedUp.Sent(); sentAfter != sentBefore {
			t.Errorf("seed %d: failed link carried %d packets under reselection", seed, sentAfter-sentBefore)
		}
	}
}

func TestLeafSpineFailLastSpineErrors(t *testing.T) {
	eng := sim.New()
	cl := Build(eng, leafSpineConfig(4, 2, 1))
	if err := cl.FailLink("leaf0", "spine0"); err == nil {
		t.Fatal("failing the only spine path should error")
	}
	// The rollback must leave the fabric fully routable: every ordered host
	// pair still exchanges a packet.
	want := len(cl.Hosts) - 1
	got := allPairs(t, eng, cl)
	for _, h := range cl.Hosts {
		if got[h.ID()] != want {
			t.Errorf("after rollback: host %v received %d, want %d", h.ID(), got[h.ID()], want)
		}
	}
}

func TestDerateLink(t *testing.T) {
	cl := Build(sim.New(), leafSpineConfig(4, 2, 2))
	up := cl.UpPorts[0]
	built := up.Link().Rate
	if err := cl.DerateLink("leaf0", "spine0", 0.25); err != nil {
		t.Fatal(err)
	}
	if got := up.Link().Rate; got != built/4 {
		t.Errorf("derated rate = %v, want %v", got, built/4)
	}
	// Derate factors are relative to the built rate, not compounding.
	if err := cl.DerateLink("leaf0", "spine0", 0.5); err != nil {
		t.Fatal(err)
	}
	if got := up.Link().Rate; got != built/2 {
		t.Errorf("re-derated rate = %v, want %v", got, built/2)
	}
	if err := cl.DerateLink("leaf0", "spine0", 0); err == nil {
		t.Error("factor 0 accepted by DerateLink")
	}
	if err := cl.DerateLink("leaf0", "nope", 0.5); err == nil {
		t.Error("unknown link accepted")
	}
}

func TestTwoTierDegradation(t *testing.T) {
	cfg := starConfig(4)
	cfg.Racks = 2
	cl := Build(sim.New(), cfg)
	if err := cl.FailLink("tor0", "agg0"); err == nil {
		t.Error("two-tier FailLink should report no alternate path")
	}
	if err := cl.DerateLink("tor0", "agg0", 0.5); err != nil {
		t.Errorf("two-tier DerateLink: %v", err)
	}
}

func TestLeafSpineValidation(t *testing.T) {
	bad := []Config{
		leafSpineConfig(8, 1, 2),  // spine tier without racks
		leafSpineConfig(8, 2, -1), // negative spines
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should not validate", i)
		}
	}
	cfg := leafSpineConfig(8, 4, 2)
	cfg.Oversub = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative oversubscription should not validate")
	}
}

func TestLeafSpineCrossRackHops(t *testing.T) {
	eng := sim.New()
	cl := Build(eng, leafSpineConfig(4, 2, 2))
	var hops int
	dst := cl.Hosts[3]
	dst.AttachProtocol(protoFunc(func(p *packet.Packet) { hops = p.Hops }))
	cl.Hosts[0].Send(&packet.Packet{
		ID:  1,
		Src: packet.Addr{Node: cl.Hosts[0].ID(), Port: 1},
		Dst: packet.Addr{Node: dst.ID(), Port: 1},
	})
	eng.Run()
	if hops != 4 { // host->leaf0->spineX->leaf1->host
		t.Errorf("cross-rack hops = %d, want 4", hops)
	}
}

func TestOversubShapesCoreRate(t *testing.T) {
	cfg := leafSpineConfig(8, 4, 2)
	base := Build(sim.New(), cfg).UpPorts[0].Link().Rate // default oversub 2
	cfg.Oversub = 1
	tight := Build(sim.New(), cfg).UpPorts[0].Link().Rate
	if tight != base*2 {
		t.Errorf("oversub 1 core rate = %v, want double the 2:1 default %v", tight, base)
	}
}

func TestNamedLink(t *testing.T) {
	cases := []struct {
		racks, spines int
		a, b          string
		ok            bool
	}{
		{4, 2, "leaf0", "spine1", true},
		{4, 2, "spine1", "leaf3", true}, // either endpoint order
		{4, 2, "leaf4", "spine0", false},
		{4, 2, "leaf0", "spine2", false},
		{4, 2, "leaf01", "spine0", false}, // leading zero: never a built name
		{4, 2, "leaf0", "leaf1", false},
		{4, 0, "tor2", "agg0", true},
		{4, 0, "agg0", "tor0", true},
		{4, 0, "tor4", "agg0", false},
		{4, 0, "leaf0", "spine0", false},
		{1, 0, "tor0", "agg0", false}, // star has no inter-switch links
	}
	for _, tc := range cases {
		if _, _, ok := NamedLink(tc.racks, tc.spines, tc.a, tc.b); ok != tc.ok {
			t.Errorf("NamedLink(%d, %d, %q, %q) ok = %v, want %v",
				tc.racks, tc.spines, tc.a, tc.b, ok, tc.ok)
		}
	}
}

func TestSpinePathsSurvive(t *testing.T) {
	// Both failures on spine0: spine1 still serves every pair.
	if _, _, ok := SpinePathsSurvive(4, 2, map[[2]int]bool{{0, 0}: true, {1, 0}: true}); !ok {
		t.Error("survivable failure set reported as partition")
	}
	// leaf0 lost spine0 and leaf1 lost spine1: no common spine for the pair.
	a, b, ok := SpinePathsSurvive(4, 2, map[[2]int]bool{{0, 0}: true, {1, 1}: true})
	if ok || a != 0 || b != 1 {
		t.Errorf("partition not detected: leaves %d,%d ok=%v", a, b, ok)
	}
}
