// Package topo builds the simulated cluster topologies used in the
// experiments: a single-switch star (every node one hop from every other,
// the classic MRPerf topology), a two-tier tree (racks of nodes under
// top-of-rack switches joined by an aggregation switch), and a three-tier
// leaf-spine fabric (racks under leaf switches, every leaf connected to
// every spine, cross-rack traffic ECMP-hashed across the spines).
//
// Every egress port — host uplinks and switch ports alike — gets its own
// queue discipline instance from a factory, so an experiment can install
// DropTail, RED in any protection mode, or SimpleMark uniformly.
//
// Built fabrics can be degraded after construction: FailLink removes an
// inter-switch link and rebuilds the route groups around it (leaf-spine
// only — the other topologies have no alternate paths), DerateLink lowers a
// link's rate to a fraction of its built value. Together they model the
// asymmetric link health that stresses ECMP fabrics.
package topo

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/netsim"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/units"
)

// QdiscFactory builds a fresh queue discipline for one egress port. The
// label identifies the port (useful for seeding and debugging).
type QdiscFactory func(label string, rate units.Bandwidth) qdisc.Qdisc

// Config describes a cluster fabric.
type Config struct {
	// Nodes is the number of worker hosts.
	Nodes int
	// Racks partitions nodes across top-of-rack switches. Racks <= 1 builds
	// a single-switch star.
	Racks int
	// Spines adds a spine tier above the racks: every rack's leaf switch
	// connects to every spine, and cross-rack traffic is ECMP-hashed across
	// them. Spines > 0 requires Racks >= 2.
	Spines int
	// LinkRate applies to every edge link (host<->ToR).
	LinkRate units.Bandwidth
	// CoreRate applies to each inter-switch link (ToR<->aggregation, or
	// leaf<->spine); defaults from LinkRate, rack size, Oversub and (for
	// leaf-spine) the spine count.
	CoreRate units.Bandwidth
	// Oversub is the rack oversubscription factor used when CoreRate is
	// unset: a rack's total uplink capacity is rack-ingress/Oversub.
	// 0 means the historical default of 2.
	Oversub float64
	// LinkDelay is the one-way propagation delay per link.
	LinkDelay units.Duration
	// HashSeed salts the ECMP flow hash (leaf-spine only). Derive it from
	// the run seed so path selection is deterministic per run.
	HashSeed uint64
	// HostQueue, if non-nil, builds host-uplink qdiscs; otherwise hosts get
	// a large DropTail (the studied queues are in the switches).
	HostQueue QdiscFactory
	// SwitchQueue builds each switch egress qdisc.
	SwitchQueue QdiscFactory
}

// Validate reports a configuration error, or nil.
func (c *Config) Validate() error {
	switch {
	case c.Nodes < 2:
		return fmt.Errorf("topo: need at least 2 nodes, got %d", c.Nodes)
	case c.LinkRate <= 0:
		return fmt.Errorf("topo: link rate must be positive")
	case c.LinkDelay < 0:
		return fmt.Errorf("topo: link delay must be non-negative")
	case c.SwitchQueue == nil:
		return fmt.Errorf("topo: switch queue factory required")
	case c.Racks > 1 && c.Nodes%c.Racks != 0:
		return fmt.Errorf("topo: %d nodes not divisible into %d racks", c.Nodes, c.Racks)
	case c.Spines < 0:
		return fmt.Errorf("topo: spine count must be non-negative, got %d", c.Spines)
	case c.Spines > 0 && c.Racks < 2:
		return fmt.Errorf("topo: a spine tier needs at least 2 racks, got %d", c.Racks)
	case c.Oversub < 0:
		return fmt.Errorf("topo: oversubscription factor must be non-negative, got %g", c.Oversub)
	}
	return nil
}

// oversub returns the effective rack oversubscription factor.
func (c *Config) oversub() float64 {
	if c.Oversub > 0 {
		return c.Oversub
	}
	return 2
}

// fabricLink is one built inter-switch cable: two unidirectional ports and
// their built rates (derate factors are relative to the built rate, so
// repeated derates don't compound).
type fabricLink struct {
	a, b           *netsim.Switch
	ab, ba         *netsim.Port
	abRate, baRate units.Bandwidth
	failed         bool
}

// Cluster is a built fabric.
type Cluster struct {
	Net      *netsim.Network
	Hosts    []*netsim.Host
	Switches []*netsim.Switch
	// Leaves and Spines name the two switch tiers of a leaf-spine fabric
	// (nil otherwise). Switches always holds every switch.
	Leaves []*netsim.Switch
	Spines []*netsim.Switch
	// EdgePorts are the switch->host egress ports: the bottleneck queues
	// where data packets and ACKs collide during the shuffle.
	EdgePorts []*netsim.Port
	// CorePorts are all inter-switch ports (two-tier and leaf-spine).
	CorePorts []*netsim.Port
	// UpPorts (leaf->spine / ToR->agg) and DownPorts (spine->leaf /
	// agg->ToR) split CorePorts by direction.
	UpPorts   []*netsim.Port
	DownPorts []*netsim.Port

	// Lookahead is the minimum propagation delay over the links that cross
	// a shard boundary — the conservative horizon of the sharded event
	// loop. Zero on single-shard builds (nothing crosses).
	Lookahead units.Duration

	links   []*fabricLink
	rebuild func() error // topology-specific route-group rebuild (nil = single-path fabric)
}

// Build constructs the cluster on the engine.
func Build(eng *sim.Engine, cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	switch {
	case cfg.Racks <= 1:
		return buildStar(eng, cfg)
	case cfg.Spines > 0:
		return buildLeafSpine(netsim.New(eng), cfg)
	default:
		return buildTwoTier(eng, cfg)
	}
}

// LeafShard is the partition rule for the leaf tier: rack r of a fabric cut
// into shards contiguous rack blocks. Hosts live with their leaf, so the
// only links that cross shards are leaf<->spine — the cut the conservative
// lookahead is derived from.
func LeafShard(racks, shards, r int) int { return r * shards / racks }

// SpineShard spreads the spine tier round-robin over the shards, balancing
// the spine event load.
func SpineShard(shards, s int) int { return s % shards }

// BuildSharded constructs the cluster partitioned over the given engines,
// one shard per engine. Only the leaf-spine shape can be cut (the star and
// two-tier fabrics share one switch among all racks), and there can be at
// most one shard per rack; callers validate both ahead of time, so a
// violation here panics. With a single engine this is exactly Build.
func BuildSharded(engines []*sim.Engine, cfg Config) *Cluster {
	if len(engines) == 1 {
		return Build(engines[0], cfg)
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Spines == 0 || cfg.Racks < 2 {
		panic(fmt.Sprintf("topo: sharding requires a leaf-spine fabric (racks=%d spines=%d)", cfg.Racks, cfg.Spines))
	}
	if len(engines) > cfg.Racks {
		panic(fmt.Sprintf("topo: %d shards exceed %d racks", len(engines), cfg.Racks))
	}
	return buildLeafSpine(netsim.NewSharded(engines), cfg)
}

// switchIndex parses the numeric suffix of a builder-generated switch name
// ("leaf3", "spine0", "tor1"). Leading zeros are rejected — the builders
// never produce them, and accepting "leaf01" here would validate a name
// findLink can never match.
func switchIndex(name, prefix string) (int, bool) {
	rest, ok := strings.CutPrefix(name, prefix)
	if !ok || rest == "" || (len(rest) > 1 && rest[0] == '0') {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// NamedLink resolves, without building the fabric, the inter-switch link two
// switch names denote on a fabric of the given shape — the authority on the
// builders' naming scheme, so callers validating configuration ahead of
// Build never drift from what Build constructs. On a leaf-spine shape
// (spines > 0) it accepts "leafL"/"spineS" in either order and returns their
// indices; on a two-tier shape (spines == 0, racks > 1) it accepts
// "torR"/"agg0" in either order and returns (rack, 0). ok is false when the
// shape has no such link.
func NamedLink(racks, spines int, a, b string) (i, j int, ok bool) {
	if spines > 0 {
		li, lok := switchIndex(a, "leaf")
		si, sok := switchIndex(b, "spine")
		if !lok || !sok {
			li, lok = switchIndex(b, "leaf")
			si, sok = switchIndex(a, "spine")
		}
		if lok && sok && li < racks && si < spines {
			return li, si, true
		}
		return 0, 0, false
	}
	if racks > 1 {
		ti, tok := switchIndex(a, "tor")
		other := b
		if !tok {
			ti, tok = switchIndex(b, "tor")
			other = a
		}
		if tok && ti < racks && other == "agg0" {
			return ti, 0, true
		}
	}
	return 0, 0, false
}

// SpinePathsSurvive reports whether a leaf-spine fabric with the given
// leaf<->spine links failed still connects every leaf pair — the exact
// condition rebuildRoutes enforces: some spine whose links to both leaves
// are up. It returns the first disconnected leaf pair, or (-1, -1, true).
func SpinePathsSurvive(racks, spines int, failed map[[2]int]bool) (leafA, leafB int, ok bool) {
	for a := 0; a < racks; a++ {
		for b := a + 1; b < racks; b++ {
			alive := false
			for s := 0; s < spines; s++ {
				if !failed[[2]int{a, s}] && !failed[[2]int{b, s}] {
					alive = true
					break
				}
			}
			if !alive {
				return a, b, false
			}
		}
	}
	return -1, -1, true
}

// findLink locates the built inter-switch link between the named switches
// (either endpoint order), or nil.
func (cl *Cluster) findLink(a, b string) *fabricLink {
	for _, l := range cl.links {
		if (l.a.Name == a && l.b.Name == b) || (l.a.Name == b && l.b.Name == a) {
			return l
		}
	}
	return nil
}

// LinkNames lists the inter-switch links as "a<->b" strings, in build order.
func (cl *Cluster) LinkNames() []string {
	names := make([]string, len(cl.links))
	for i, l := range cl.links {
		names[i] = l.a.Name + "<->" + l.b.Name
	}
	return names
}

// FailLink takes the inter-switch link between the named switches out of
// service (both directions) and rebuilds every route group around it. It
// fails if the link does not exist, if the fabric has no alternate paths
// (star, two-tier), or if removing the link would leave some destination
// unreachable — in which case the fabric is left unchanged.
func (cl *Cluster) FailLink(a, b string) error {
	l := cl.findLink(a, b)
	if l == nil {
		return fmt.Errorf("topo: no inter-switch link %s<->%s (have %v)", a, b, cl.LinkNames())
	}
	if cl.rebuild == nil {
		return fmt.Errorf("topo: failing %s<->%s would partition the fabric (no alternate paths)", a, b)
	}
	if l.failed {
		return nil
	}
	l.failed = true
	if err := cl.rebuild(); err != nil {
		l.failed = false
		if rerr := cl.rebuild(); rerr != nil {
			panic(fmt.Sprintf("topo: route rebuild rollback failed: %v", rerr))
		}
		return err
	}
	return nil
}

// DerateLink lowers the named inter-switch link's rate (both directions) to
// factor times its built rate, 0 < factor <= 1. Routes are unchanged —
// ECMP keeps hashing flows onto the slow path, which is exactly the
// asymmetric-fabric condition under study.
func (cl *Cluster) DerateLink(a, b string, factor float64) error {
	if factor <= 0 || factor > 1 {
		return fmt.Errorf("topo: derate factor %g out of range (0, 1]", factor)
	}
	l := cl.findLink(a, b)
	if l == nil {
		return fmt.Errorf("topo: no inter-switch link %s<->%s (have %v)", a, b, cl.LinkNames())
	}
	l.ab.SetLinkRate(units.Bandwidth(float64(l.abRate) * factor))
	l.ba.SetLinkRate(units.Bandwidth(float64(l.baRate) * factor))
	return nil
}

func hostQueue(cfg Config, label string) qdisc.Qdisc {
	if cfg.HostQueue != nil {
		return cfg.HostQueue(label, cfg.LinkRate)
	}
	// Hosts get a Linux-like txqueuelen-1000 DropTail: the paper studies
	// the switch queues, so hosts keep the stock NIC queue.
	return qdisc.NewDropTail(1000)
}

func buildStar(eng *sim.Engine, cfg Config) *Cluster {
	net := netsim.New(eng)
	net.SetFlowHashSeed(cfg.HashSeed)
	sw := net.NewSwitch("sw0")
	cl := &Cluster{Net: net, Switches: []*netsim.Switch{sw}}
	link := netsim.LinkParams{Rate: cfg.LinkRate, Delay: cfg.LinkDelay}
	for i := 0; i < cfg.Nodes; i++ {
		h := net.NewHost(fmt.Sprintf("node%02d", i))
		up := net.NewPort(h, sw, link, hostQueue(cfg, h.Name+"->sw0"))
		up.Label = h.Name + "->sw0"
		h.AttachUplink(up)
		down := net.NewPort(sw, h, link, cfg.SwitchQueue("sw0->"+h.Name, cfg.LinkRate))
		down.Label = "sw0->" + h.Name
		sw.AddPort(down)
		sw.SetRoute(h.ID(), down)
		cl.Hosts = append(cl.Hosts, h)
		cl.EdgePorts = append(cl.EdgePorts, down)
	}
	return cl
}

func buildTwoTier(eng *sim.Engine, cfg Config) *Cluster {
	net := netsim.New(eng)
	net.SetFlowHashSeed(cfg.HashSeed)
	cl := &Cluster{Net: net}
	perRack := cfg.Nodes / cfg.Racks
	coreRate := cfg.CoreRate
	if coreRate <= 0 {
		// Default: mildly oversubscribed core (historically 2:1).
		coreRate = units.Bandwidth(float64(cfg.LinkRate) * float64(perRack) / cfg.oversub())
	}
	agg := net.NewSwitch("agg0")
	cl.Switches = append(cl.Switches, agg)
	edge := netsim.LinkParams{Rate: cfg.LinkRate, Delay: cfg.LinkDelay}
	core := netsim.LinkParams{Rate: coreRate, Delay: cfg.LinkDelay}

	for r := 0; r < cfg.Racks; r++ {
		tor := net.NewSwitch(fmt.Sprintf("tor%d", r))
		cl.Switches = append(cl.Switches, tor)
		// ToR <-> agg.
		upLabel := fmt.Sprintf("%s->agg0", tor.Name)
		up := net.NewPort(tor, agg, core, cfg.SwitchQueue(upLabel, coreRate))
		up.Label = upLabel
		tor.AddPort(up)
		downLabel := fmt.Sprintf("agg0->%s", tor.Name)
		down := net.NewPort(agg, tor, core, cfg.SwitchQueue(downLabel, coreRate))
		down.Label = downLabel
		agg.AddPort(down)
		cl.CorePorts = append(cl.CorePorts, up, down)
		cl.UpPorts = append(cl.UpPorts, up)
		cl.DownPorts = append(cl.DownPorts, down)
		cl.links = append(cl.links, &fabricLink{
			a: tor, b: agg, ab: up, ba: down, abRate: coreRate, baRate: coreRate,
		})

		rackHosts := make([]*netsim.Host, 0, perRack)
		for i := 0; i < perRack; i++ {
			h := net.NewHost(fmt.Sprintf("node%02d", r*perRack+i))
			hup := net.NewPort(h, tor, edge, hostQueue(cfg, h.Name+"->"+tor.Name))
			hup.Label = h.Name + "->" + tor.Name
			h.AttachUplink(hup)
			hdown := net.NewPort(tor, h, edge, cfg.SwitchQueue(tor.Name+"->"+h.Name, cfg.LinkRate))
			hdown.Label = tor.Name + "->" + h.Name
			tor.AddPort(hdown)
			tor.SetRoute(h.ID(), hdown)
			agg.SetRoute(h.ID(), down)
			cl.Hosts = append(cl.Hosts, h)
			cl.EdgePorts = append(cl.EdgePorts, hdown)
			rackHosts = append(rackHosts, h)
		}
		// Hosts in other racks route via agg: the ToR default route.
		for _, h := range cl.Hosts {
			if tor.RouteFor(h.ID()) == nil {
				tor.SetRoute(h.ID(), up)
			}
		}
		_ = rackHosts
	}
	// Earlier racks need routes to hosts created later.
	for _, swt := range cl.Switches[1:] {
		torUp := swt.Ports()[0] // first port is the uplink
		for _, h := range cl.Hosts {
			if swt.RouteFor(h.ID()) == nil {
				swt.SetRoute(h.ID(), torUp)
			}
		}
	}
	return cl
}

// leafSpineState carries the built structure the route rebuild walks:
// tiered switches, hosts grouped per leaf, and the port/link matrices.
type leafSpineState struct {
	leaves, spines []*netsim.Switch
	hosts          [][]*netsim.Host // [leaf] -> hosts under it
	up             [][]*netsim.Port // [leaf][spine] leaf->spine egress
	down           [][]*netsim.Port // [spine][leaf] spine->leaf egress
	link           [][]*fabricLink  // [leaf][spine]
}

// rebuildRoutes recomputes every inter-rack route group from the current
// link health. A spine is a candidate for traffic from leaf l to leaf d iff
// both the l<->spine and spine<->d links are up: a leaf never hashes a flow
// onto a spine that cannot reach the destination rack. Local (intra-rack)
// routes are set once at build time and never change. The rebuild reports an
// error — without installing a partial state on the affected destination —
// if some leaf pair has no surviving spine.
func (st *leafSpineState) rebuildRoutes() error {
	for li, leaf := range st.leaves {
		for di, dstHosts := range st.hosts {
			if di == li {
				continue
			}
			var cands []*netsim.Port
			for si := range st.spines {
				if st.link[li][si].failed || st.link[di][si].failed {
					continue
				}
				cands = append(cands, st.up[li][si])
			}
			if len(cands) == 0 {
				return fmt.Errorf("topo: no surviving spine path from %s to %s",
					leaf.Name, st.leaves[di].Name)
			}
			for _, h := range dstHosts {
				leaf.SetRoutes(h.ID(), cands...)
			}
		}
	}
	for si, sp := range st.spines {
		for li := range st.leaves {
			for _, h := range st.hosts[li] {
				if st.link[li][si].failed {
					// No leaf will hash onto this spine for these hosts;
					// clearing the route turns a routing bug into a panic
					// instead of a silently resurrected path.
					sp.ClearRoute(h.ID())
				} else {
					sp.SetRoute(h.ID(), st.down[si][li])
				}
			}
		}
	}
	return nil
}

// buildLeafSpine constructs the three-tier fabric: Racks leaf switches each
// holding Nodes/Racks hosts, Spines spine switches, and a full leaf<->spine
// mesh. Cross-rack traffic ECMPs over the spines by 5-tuple flow hash.
func buildLeafSpine(net *netsim.Network, cfg Config) *Cluster {
	net.SetFlowHashSeed(cfg.HashSeed)
	cl := &Cluster{Net: net}
	shards := net.ShardCount()
	perRack := cfg.Nodes / cfg.Racks
	coreRate := cfg.CoreRate
	if coreRate <= 0 {
		// Default: the rack's uplink capacity is its ingress divided by the
		// oversubscription factor, split evenly across the spines.
		coreRate = units.Bandwidth(float64(cfg.LinkRate) * float64(perRack) / (cfg.oversub() * float64(cfg.Spines)))
	}
	edge := netsim.LinkParams{Rate: cfg.LinkRate, Delay: cfg.LinkDelay}
	core := netsim.LinkParams{Rate: coreRate, Delay: cfg.LinkDelay}

	st := &leafSpineState{
		hosts: make([][]*netsim.Host, cfg.Racks),
		up:    make([][]*netsim.Port, cfg.Racks),
		down:  make([][]*netsim.Port, cfg.Spines),
		link:  make([][]*fabricLink, cfg.Racks),
	}
	for s := 0; s < cfg.Spines; s++ {
		sp := net.NewSwitchOn(SpineShard(shards, s), fmt.Sprintf("spine%d", s))
		st.spines = append(st.spines, sp)
		st.down[s] = make([]*netsim.Port, cfg.Racks)
	}
	cl.Switches = append(cl.Switches, st.spines...)
	cl.Spines = st.spines

	for r := 0; r < cfg.Racks; r++ {
		rackShard := LeafShard(cfg.Racks, shards, r)
		leaf := net.NewSwitchOn(rackShard, fmt.Sprintf("leaf%d", r))
		st.leaves = append(st.leaves, leaf)
		cl.Switches = append(cl.Switches, leaf)
		st.up[r] = make([]*netsim.Port, cfg.Spines)
		st.link[r] = make([]*fabricLink, cfg.Spines)

		// Full mesh to the spine tier.
		for s, sp := range st.spines {
			if sp.Shard() != leaf.Shard() && (cl.Lookahead == 0 || core.Delay < cl.Lookahead) {
				cl.Lookahead = core.Delay
			}
			upLabel := fmt.Sprintf("%s->%s", leaf.Name, sp.Name)
			up := net.NewPort(leaf, sp, core, cfg.SwitchQueue(upLabel, coreRate))
			up.Label = upLabel
			leaf.AddPort(up)
			downLabel := fmt.Sprintf("%s->%s", sp.Name, leaf.Name)
			down := net.NewPort(sp, leaf, core, cfg.SwitchQueue(downLabel, coreRate))
			down.Label = downLabel
			sp.AddPort(down)
			st.up[r][s], st.down[s][r] = up, down
			st.link[r][s] = &fabricLink{
				a: leaf, b: sp, ab: up, ba: down, abRate: coreRate, baRate: coreRate,
			}
			cl.links = append(cl.links, st.link[r][s])
			cl.CorePorts = append(cl.CorePorts, up, down)
			cl.UpPorts = append(cl.UpPorts, up)
			cl.DownPorts = append(cl.DownPorts, down)
		}

		// Hosts under the leaf; intra-rack routes are final here.
		for i := 0; i < perRack; i++ {
			h := net.NewHostOn(rackShard, fmt.Sprintf("node%02d", r*perRack+i))
			hup := net.NewPort(h, leaf, edge, hostQueue(cfg, h.Name+"->"+leaf.Name))
			hup.Label = h.Name + "->" + leaf.Name
			h.AttachUplink(hup)
			hdown := net.NewPort(leaf, h, edge, cfg.SwitchQueue(leaf.Name+"->"+h.Name, cfg.LinkRate))
			hdown.Label = leaf.Name + "->" + h.Name
			leaf.AddPort(hdown)
			leaf.SetRoute(h.ID(), hdown)
			cl.Hosts = append(cl.Hosts, h)
			cl.EdgePorts = append(cl.EdgePorts, hdown)
			st.hosts[r] = append(st.hosts[r], h)
		}
	}
	cl.Leaves = st.leaves
	cl.rebuild = st.rebuildRoutes
	if err := cl.rebuild(); err != nil {
		panic(err) // unreachable: all links are up at build time
	}
	return cl
}

// RackOf returns the rack index of host i under the given config.
func RackOf(cfg Config, i int) int {
	if cfg.Racks <= 1 {
		return 0
	}
	return i / (cfg.Nodes / cfg.Racks)
}
