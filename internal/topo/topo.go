// Package topo builds the simulated cluster topologies used in the
// experiments: a single-switch star (every node one hop from every other,
// the classic MRPerf topology) and a two-tier tree (racks of nodes under
// top-of-rack switches joined by an aggregation switch).
//
// Every egress port — host uplinks and switch ports alike — gets its own
// queue discipline instance from a factory, so an experiment can install
// DropTail, RED in any protection mode, or SimpleMark uniformly.
package topo

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/units"
)

// QdiscFactory builds a fresh queue discipline for one egress port. The
// label identifies the port (useful for seeding and debugging).
type QdiscFactory func(label string, rate units.Bandwidth) qdisc.Qdisc

// Config describes a cluster fabric.
type Config struct {
	// Nodes is the number of worker hosts.
	Nodes int
	// Racks partitions nodes across top-of-rack switches. Racks <= 1 builds
	// a single-switch star.
	Racks int
	// LinkRate applies to every edge link (host<->ToR).
	LinkRate units.Bandwidth
	// CoreRate applies to ToR<->aggregation links; defaults to LinkRate
	// times the rack size divided by the oversubscription factor.
	CoreRate units.Bandwidth
	// LinkDelay is the one-way propagation delay per link.
	LinkDelay units.Duration
	// HostQueue, if non-nil, builds host-uplink qdiscs; otherwise hosts get
	// a large DropTail (the studied queues are in the switches).
	HostQueue QdiscFactory
	// SwitchQueue builds each switch egress qdisc.
	SwitchQueue QdiscFactory
}

// Validate reports a configuration error, or nil.
func (c *Config) Validate() error {
	switch {
	case c.Nodes < 2:
		return fmt.Errorf("topo: need at least 2 nodes, got %d", c.Nodes)
	case c.LinkRate <= 0:
		return fmt.Errorf("topo: link rate must be positive")
	case c.LinkDelay < 0:
		return fmt.Errorf("topo: link delay must be non-negative")
	case c.SwitchQueue == nil:
		return fmt.Errorf("topo: switch queue factory required")
	case c.Racks > 1 && c.Nodes%c.Racks != 0:
		return fmt.Errorf("topo: %d nodes not divisible into %d racks", c.Nodes, c.Racks)
	}
	return nil
}

// Cluster is a built fabric.
type Cluster struct {
	Net      *netsim.Network
	Hosts    []*netsim.Host
	Switches []*netsim.Switch
	// EdgePorts are the switch->host egress ports: the bottleneck queues
	// where data packets and ACKs collide during the shuffle.
	EdgePorts []*netsim.Port
	// CorePorts are inter-switch ports (two-tier only).
	CorePorts []*netsim.Port
}

// Build constructs the cluster on the engine.
func Build(eng *sim.Engine, cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Racks <= 1 {
		return buildStar(eng, cfg)
	}
	return buildTwoTier(eng, cfg)
}

func hostQueue(cfg Config, label string) qdisc.Qdisc {
	if cfg.HostQueue != nil {
		return cfg.HostQueue(label, cfg.LinkRate)
	}
	// Hosts get a Linux-like txqueuelen-1000 DropTail: the paper studies
	// the switch queues, so hosts keep the stock NIC queue.
	return qdisc.NewDropTail(1000)
}

func buildStar(eng *sim.Engine, cfg Config) *Cluster {
	net := netsim.New(eng)
	sw := net.NewSwitch("sw0")
	cl := &Cluster{Net: net, Switches: []*netsim.Switch{sw}}
	link := netsim.LinkParams{Rate: cfg.LinkRate, Delay: cfg.LinkDelay}
	for i := 0; i < cfg.Nodes; i++ {
		h := net.NewHost(fmt.Sprintf("node%02d", i))
		up := net.NewPort(h, sw, link, hostQueue(cfg, h.Name+"->sw0"))
		up.Label = h.Name + "->sw0"
		h.AttachUplink(up)
		down := net.NewPort(sw, h, link, cfg.SwitchQueue("sw0->"+h.Name, cfg.LinkRate))
		down.Label = "sw0->" + h.Name
		sw.AddPort(down)
		sw.SetRoute(h.ID(), down)
		cl.Hosts = append(cl.Hosts, h)
		cl.EdgePorts = append(cl.EdgePorts, down)
	}
	return cl
}

func buildTwoTier(eng *sim.Engine, cfg Config) *Cluster {
	net := netsim.New(eng)
	cl := &Cluster{Net: net}
	perRack := cfg.Nodes / cfg.Racks
	coreRate := cfg.CoreRate
	if coreRate <= 0 {
		// Default: mildly oversubscribed 2:1 core.
		coreRate = cfg.LinkRate * units.Bandwidth(perRack) / 2
	}
	agg := net.NewSwitch("agg0")
	cl.Switches = append(cl.Switches, agg)
	edge := netsim.LinkParams{Rate: cfg.LinkRate, Delay: cfg.LinkDelay}
	core := netsim.LinkParams{Rate: coreRate, Delay: cfg.LinkDelay}

	for r := 0; r < cfg.Racks; r++ {
		tor := net.NewSwitch(fmt.Sprintf("tor%d", r))
		cl.Switches = append(cl.Switches, tor)
		// ToR <-> agg.
		upLabel := fmt.Sprintf("%s->agg0", tor.Name)
		up := net.NewPort(tor, agg, core, cfg.SwitchQueue(upLabel, coreRate))
		up.Label = upLabel
		tor.AddPort(up)
		downLabel := fmt.Sprintf("agg0->%s", tor.Name)
		down := net.NewPort(agg, tor, core, cfg.SwitchQueue(downLabel, coreRate))
		down.Label = downLabel
		agg.AddPort(down)
		cl.CorePorts = append(cl.CorePorts, up, down)

		rackHosts := make([]*netsim.Host, 0, perRack)
		for i := 0; i < perRack; i++ {
			h := net.NewHost(fmt.Sprintf("node%02d", r*perRack+i))
			hup := net.NewPort(h, tor, edge, hostQueue(cfg, h.Name+"->"+tor.Name))
			hup.Label = h.Name + "->" + tor.Name
			h.AttachUplink(hup)
			hdown := net.NewPort(tor, h, edge, cfg.SwitchQueue(tor.Name+"->"+h.Name, cfg.LinkRate))
			hdown.Label = tor.Name + "->" + h.Name
			tor.AddPort(hdown)
			tor.SetRoute(h.ID(), hdown)
			agg.SetRoute(h.ID(), down)
			cl.Hosts = append(cl.Hosts, h)
			cl.EdgePorts = append(cl.EdgePorts, hdown)
			rackHosts = append(rackHosts, h)
		}
		// Hosts in other racks route via agg: the ToR default route.
		for _, h := range cl.Hosts {
			if tor.RouteFor(h.ID()) == nil {
				tor.SetRoute(h.ID(), up)
			}
		}
		_ = rackHosts
	}
	// Earlier racks need routes to hosts created later.
	for _, swt := range cl.Switches[1:] {
		torUp := swt.Ports()[0] // first port is the uplink
		for _, h := range cl.Hosts {
			if swt.RouteFor(h.ID()) == nil {
				swt.SetRoute(h.ID(), torUp)
			}
		}
	}
	return cl
}

// RackOf returns the rack index of host i under the given config.
func RackOf(cfg Config, i int) int {
	if cfg.Racks <= 1 {
		return 0
	}
	return i / (cfg.Nodes / cfg.Racks)
}
