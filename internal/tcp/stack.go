package tcp

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// connKey identifies a connection on a stack: local port plus remote
// address. (The local node is implicit: the stack's host.)
type connKey struct {
	localPort uint16
	remote    packet.Addr
}

// Listener accepts inbound connections on a port.
type Listener struct {
	port   uint16
	accept func(*Conn)
}

// Stack is the per-host transport layer. It owns demultiplexing, port
// allocation and connection creation, and implements netsim.Protocol.
type Stack struct {
	host *netsim.Host
	eng  *sim.Engine
	cfg  Config

	listeners map[uint16]*Listener
	conns     map[connKey]*Conn
	nextPort  uint16

	// TSQ backpressure: connections paused because the host egress queue
	// holds too many bytes, woken in FIFO order as packets serialize.
	// tsqSpare is the previous wake's batch buffer, recycled so the
	// park/wake cycle allocates nothing in steady state.
	tsqQueue  []*Conn
	tsqSpare  []*Conn
	tsqHooked bool

	stats *Stats
}

// NewStack attaches a transport to host with the given defaults. All stacks
// in one experiment usually share a single Stats.
func NewStack(host *netsim.Host, cfg Config, stats *Stats) *Stack {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if stats == nil {
		stats = &Stats{}
	}
	s := &Stack{
		host:      host,
		eng:       host.Engine(),
		cfg:       cfg,
		listeners: make(map[uint16]*Listener),
		conns:     make(map[connKey]*Conn),
		nextPort:  49152,
		stats:     stats,
	}
	host.AttachProtocol(s)
	return s
}

// Host returns the attached host.
func (s *Stack) Host() *netsim.Host { return s.host }

// Engine returns the engine the stack's events run on — the host's shard
// engine.
func (s *Stack) Engine() *sim.Engine { return s.eng }

// Config returns the stack's default configuration.
func (s *Stack) Config() Config { return s.cfg }

// Stats returns the shared counter block.
func (s *Stack) Stats() *Stats { return s.stats }

// Listen registers an acceptor for inbound connections to port. The accept
// callback runs when a valid SYN arrives, with the new (not yet established)
// connection; application callbacks may be installed on it immediately.
func (s *Stack) Listen(port uint16, accept func(*Conn)) *Listener {
	if _, dup := s.listeners[port]; dup {
		panic(fmt.Sprintf("tcp: duplicate listener on %s port %d", s.host.Name, port))
	}
	l := &Listener{port: port, accept: accept}
	s.listeners[port] = l
	return l
}

// Close removes a listener. Established connections are unaffected.
func (s *Stack) CloseListener(l *Listener) { delete(s.listeners, l.port) }

// allocPort returns a free ephemeral port.
func (s *Stack) allocPort(remote packet.Addr) uint16 {
	for i := 0; i < 1<<16; i++ {
		p := s.nextPort
		s.nextPort++
		if s.nextPort == 0 {
			s.nextPort = 49152
		}
		if _, used := s.conns[connKey{p, remote}]; !used && p != 0 {
			if _, listening := s.listeners[p]; !listening {
				return p
			}
		}
	}
	panic("tcp: ephemeral ports exhausted")
}

// Dial opens a connection to dst and begins the handshake immediately.
func (s *Stack) Dial(dst packet.Addr) *Conn {
	local := packet.Addr{Node: s.host.ID(), Port: s.allocPort(dst)}
	c := newConn(s, local, dst, true)
	s.conns[connKey{local.Port, dst}] = c
	c.startHandshake()
	return c
}

// Deliver implements netsim.Protocol: demultiplex an arriving packet.
func (s *Stack) Deliver(p *packet.Packet) {
	key := connKey{p.Dst.Port, p.Src}
	if c, ok := s.conns[key]; ok {
		c.deliver(p)
		return
	}
	// No connection: maybe a listener can take a SYN.
	if p.Flags.Has(packet.FlagSYN) && !p.Flags.Has(packet.FlagACK) {
		if l, ok := s.listeners[p.Dst.Port]; ok {
			local := packet.Addr{Node: s.host.ID(), Port: p.Dst.Port}
			c := newConn(s, local, p.Src, false)
			s.conns[key] = c
			if l.accept != nil {
				l.accept(c)
			}
			c.deliver(p)
			return
		}
	}
	// Stray segment (e.g. retransmitted FIN to a removed conn): ignore.
	// Real stacks send RST; nothing in the studied workloads needs it.
}

// remove forgets a closed connection.
func (s *Stack) remove(c *Conn) {
	delete(s.conns, connKey{c.local.Port, c.remote})
}

// tsqBlock parks a connection until the host egress queue drains below the
// TSQ limit. The first use lazily hooks the uplink's completion callback.
func (s *Stack) tsqBlock(c *Conn) {
	if c.tsqWaiting {
		return
	}
	if !s.tsqHooked {
		up := s.host.Uplink()
		if up == nil {
			return // no uplink yet: nothing to wait for, caller proceeds
		}
		s.tsqHooked = true
		prev := up.OnSent
		up.OnSent = func(p *packet.Packet) {
			if prev != nil {
				prev(p)
			}
			s.tsqWake()
		}
	}
	c.tsqWaiting = true
	s.tsqQueue = append(s.tsqQueue, c)
}

// tsqWake resumes every parked connection, in FIFO order. Connections that
// are still over the limit re-park themselves (into the recycled spare
// buffer, so neither side of the swap allocates).
func (s *Stack) tsqWake() {
	if len(s.tsqQueue) == 0 {
		return
	}
	batch := s.tsqQueue
	s.tsqQueue = s.tsqSpare[:0]
	for _, c := range batch {
		c.tsqWaiting = false
		c.trySend()
	}
	for i := range batch {
		batch[i] = nil
	}
	s.tsqSpare = batch[:0]
}

// ConnCount returns the number of live connections (for tests).
func (s *Stack) ConnCount() int { return len(s.conns) }
