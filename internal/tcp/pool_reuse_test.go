package tcp_test

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/tcp"
	"repro/internal/units"
)

// aliasDetector is a netsim.Observer that proves released packets are never
// aliased: it tracks every in-flight packet by pointer and fails if a
// pointer's identity (packet ID) changes while the packet is still between
// its first enqueue and its drop or final delivery. If the fabric released a
// packet early and the pool handed it to a second sender, the recycled
// pointer would reappear under a new ID while still tracked — exactly what
// this catches.
type aliasDetector struct {
	t        *testing.T
	inflight map[*packet.Packet]uint64
	peak     int
}

func newAliasDetector(t *testing.T) *aliasDetector {
	return &aliasDetector{t: t, inflight: make(map[*packet.Packet]uint64)}
}

func (d *aliasDetector) PacketEnqueued(_ units.Time, _ *netsim.Port, p *packet.Packet, v qdisc.Verdict) {
	if id, ok := d.inflight[p]; ok {
		// Re-enqueue at a later hop: must still be the same packet.
		if id != p.ID {
			d.t.Fatalf("in-flight packet aliased: pointer carried #%d, now #%d", id, p.ID)
		}
	} else {
		d.inflight[p] = p.ID
		if len(d.inflight) > d.peak {
			d.peak = len(d.inflight)
		}
	}
	if v.Dropped() {
		delete(d.inflight, p) // fabric releases it after this callback
	}
}

func (d *aliasDetector) PacketDelivered(_ units.Time, p *packet.Packet) {
	id, ok := d.inflight[p]
	if !ok {
		d.t.Fatalf("delivery of untracked packet #%d", p.ID)
	}
	if id != p.ID {
		d.t.Fatalf("delivered packet aliased: pointer carried #%d, delivered as #%d", id, p.ID)
	}
	delete(d.inflight, p)
}

// TestPacketPoolNoAliasing runs many concurrent transfers through a
// drop-heavy RED queue — exercising the enqueue-drop, head-drop-free and
// delivery release sites — and asserts no released packet is ever reused
// while still in flight. Run under -race in CI, it also proves the pool
// stays single-threaded.
func TestPacketPoolNoAliasing(t *testing.T) {
	tn := buildNet(t, 6, tcp.RenoECN, func(label string, rate units.Bandwidth) qdisc.Qdisc {
		cfg := qdisc.DefaultREDConfig(30, rate)
		cfg.ECN = true
		cfg.Seed = 7
		return qdisc.NewRED(cfg)
	})
	det := newAliasDetector(t)
	tn.cluster.Net.SetObserver(det)

	// Incast onto host 0: five synchronized senders collapse onto one
	// egress port, forcing both AQM early drops (non-ECT ACKs/SYNs) and
	// tail drops alongside normal deliveries.
	const flow = 256 << 10
	var delivered units.ByteSize
	tn.stacks[0].Listen(80, func(c *tcp.Conn) {
		c.OnDeliver = func(n int) { delivered += units.ByteSize(n) }
	})
	for i := 1; i < 6; i++ {
		c := tn.stacks[i].Dial(addrOf(tn, 0, 80))
		c.Send(flow)
		c.Close()
	}
	tn.eng.Run()

	if want := units.ByteSize(5 * flow); delivered != want {
		t.Fatalf("delivered %d bytes, want %d", delivered, want)
	}
	if tn.stats.Retransmits() == 0 {
		t.Fatal("no retransmits: the queue never dropped, so drop-site release was not exercised")
	}
	if len(det.inflight) != 0 {
		t.Errorf("%d packets still tracked after the run drained", len(det.inflight))
	}
	news, reuses := tn.cluster.Net.PoolStats()
	if reuses == 0 {
		t.Error("pool recorded no reuses; the free list is not engaged")
	}
	if news > uint64(det.peak)+16 {
		t.Errorf("pool minted %d packets for a peak of %d in flight: release sites are leaking",
			news, det.peak)
	}
}
