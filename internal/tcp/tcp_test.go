package tcp_test

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/units"
)

// testNet is a small star cluster with one stack per host.
type testNet struct {
	eng     *sim.Engine
	cluster *topo.Cluster
	stacks  []*tcp.Stack
	stats   *tcp.Stats
}

// buildNet creates an n-host star with the given qdisc on switch egress
// ports and one TCP stack per host.
func buildNet(t testing.TB, n int, variant tcp.Variant, mkq topo.QdiscFactory) *testNet {
	t.Helper()
	eng := sim.New()
	cl := topo.Build(eng, topo.Config{
		Nodes:       n,
		LinkRate:    1 * units.Gbps,
		LinkDelay:   5 * units.Microsecond,
		SwitchQueue: mkq,
	})
	stats := &tcp.Stats{}
	tn := &testNet{eng: eng, cluster: cl, stats: stats}
	cfg := tcp.DefaultConfig(variant)
	for _, h := range cl.Hosts {
		tn.stacks = append(tn.stacks, tcp.NewStack(h, cfg, stats))
	}
	return tn
}

func droptailFactory(capacity int) topo.QdiscFactory {
	return func(label string, rate units.Bandwidth) qdisc.Qdisc {
		return qdisc.NewDropTail(capacity)
	}
}

func addrOf(tn *testNet, host int, port uint16) packet.Addr {
	return packet.Addr{Node: tn.cluster.Hosts[host].ID(), Port: port}
}

func TestHandshakeEstablishes(t *testing.T) {
	tn := buildNet(t, 2, tcp.Reno, droptailFactory(100))
	var accepted *tcp.Conn
	tn.stacks[1].Listen(80, func(c *tcp.Conn) { accepted = c })

	var connected bool
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	c.OnConnected = func() { connected = true }

	tn.eng.Run()

	if !connected {
		t.Fatal("client never connected")
	}
	if accepted == nil {
		t.Fatal("listener never accepted")
	}
	if !c.Established() {
		t.Errorf("client state = %v, want established", c.State())
	}
	if !accepted.Established() {
		t.Errorf("server state = %v, want established", accepted.State())
	}
	if tn.stats.ConnsEstablished != 2 {
		t.Errorf("ConnsEstablished = %d, want 2", tn.stats.ConnsEstablished)
	}
}

func TestBulkTransferDeliversAllBytes(t *testing.T) {
	const size = 1 << 20 // 1 MiB
	tn := buildNet(t, 2, tcp.Reno, droptailFactory(1000))
	var got units.ByteSize
	var eof bool
	tn.stacks[1].Listen(80, func(c *tcp.Conn) {
		c.OnDeliver = func(n int) { got += units.ByteSize(n) }
		c.OnEOF = func() { eof = true }
	})

	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	var closed bool
	c.OnClosed = func() { closed = true }
	c.Send(size)
	c.Close()

	tn.eng.Run()

	if got != size {
		t.Errorf("delivered %d bytes, want %d", got, size)
	}
	if !eof {
		t.Error("receiver never saw EOF")
	}
	if !closed {
		t.Error("sender FIN never acknowledged")
	}
	if tn.stats.Retransmits() != 0 {
		t.Errorf("unexpected retransmits on uncongested path: %d", tn.stats.Retransmits())
	}
}

func TestBulkTransferThroughputNearLineRate(t *testing.T) {
	const size = 8 << 20
	tn := buildNet(t, 2, tcp.Reno, droptailFactory(1000))
	tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	var done units.Time
	c.OnClosed = func() { done = tn.eng.Now() }
	c.Send(size)
	c.Close()
	tn.eng.Run()

	if done == 0 {
		t.Fatal("transfer never completed")
	}
	gbps := float64(size*8) / done.Seconds() / 1e9
	if gbps < 0.85 {
		t.Errorf("goodput %.3f Gbps, want >= 0.85 of the 1 Gbps link", gbps)
	}
	if gbps > 1.0 {
		t.Errorf("goodput %.3f Gbps exceeds link rate: accounting bug", gbps)
	}
}

func TestRetransmissionRecoversFromOverflowLoss(t *testing.T) {
	// Tiny switch buffer forces drops; the transfer must still complete.
	const size = 4 << 20
	tn := buildNet(t, 4, tcp.Reno, droptailFactory(16))
	var got units.ByteSize
	tn.stacks[3].Listen(80, func(c *tcp.Conn) {
		c.OnDeliver = func(n int) { got += units.ByteSize(n) }
	})
	// Three concurrent senders into one receiver: incast congestion.
	doneCount := 0
	for i := 0; i < 3; i++ {
		c := tn.stacks[i].Dial(addrOf(tn, 3, 80))
		c.OnClosed = func() { doneCount++ }
		c.Send(size / 2)
		c.Close()
	}
	tn.eng.SetDeadline(units.Time(60 * units.Second))
	tn.eng.Run()

	want := units.ByteSize(3 * (size / 2))
	if got != want {
		t.Fatalf("delivered %d bytes, want %d (doneCount=%d, rtx=%d)",
			got, want, doneCount, tn.stats.Retransmits())
	}
	if doneCount != 3 {
		t.Errorf("%d of 3 flows completed", doneCount)
	}
	if tn.stats.Retransmits() == 0 {
		t.Error("expected retransmissions under incast with 16-packet buffer")
	}
}

func TestECNNegotiation(t *testing.T) {
	tests := []struct {
		name    string
		variant tcp.Variant
		wantECT bool
	}{
		{"reno does not negotiate", tcp.Reno, false},
		{"tcp-ecn negotiates", tcp.RenoECN, true},
		{"dctcp negotiates", tcp.DCTCP, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tn := buildNet(t, 2, tt.variant, droptailFactory(1000))
			sawECT := false
			obs := &verdictRecorder{onEnq: func(p *packet.Packet, v qdisc.Verdict) {
				if p.Payload > 0 && p.ECN.ECTCapable() {
					sawECT = true
				}
				if p.IsPureACK() && p.ECN.ECTCapable() {
					t.Errorf("pure ACK sent as ECT: %v", p)
				}
				if p.IsSYN() && p.ECN.ECTCapable() {
					t.Errorf("SYN sent as ECT: %v", p)
				}
			}}
			tn.cluster.Net.SetObserver(obs)
			tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
			c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
			c.Send(1 << 16)
			c.Close()
			tn.eng.Run()
			if sawECT != tt.wantECT {
				t.Errorf("saw ECT data packets = %v, want %v", sawECT, tt.wantECT)
			}
		})
	}
}

// verdictRecorder is a minimal netsim.Observer for tests.
type verdictRecorder struct {
	onEnq     func(*packet.Packet, qdisc.Verdict)
	onDeliver func(*packet.Packet)
}

func (r *verdictRecorder) PacketEnqueued(_ units.Time, _ *netsim.Port, p *packet.Packet, v qdisc.Verdict) {
	if r.onEnq != nil {
		r.onEnq(p, v)
	}
}
func (r *verdictRecorder) PacketDelivered(_ units.Time, p *packet.Packet) {
	if r.onDeliver != nil {
		r.onDeliver(p)
	}
}

func TestECNSenderReactsToMarks(t *testing.T) {
	// Two senders converge on one receiver (a queue only builds at a switch
	// egress when flows converge, as in the shuffle); SimpleMark marks
	// aggressively; the ECN senders must cut their windows and the
	// transfers must finish without any packet loss.
	const size = 4 << 20
	tn := buildNet(t, 3, tcp.RenoECN, func(label string, rate units.Bandwidth) qdisc.Qdisc {
		return qdisc.NewSimpleMark(1000, 20)
	})
	tn.stacks[2].Listen(80, func(c *tcp.Conn) {})
	done := 0
	for i := 0; i < 2; i++ {
		c := tn.stacks[i].Dial(addrOf(tn, 2, 80))
		c.OnClosed = func() { done++ }
		c.Send(size)
		c.Close()
	}
	tn.eng.Run()

	if done != 2 {
		t.Fatalf("%d of 2 transfers completed", done)
	}
	if tn.stats.Retransmits() != 0 {
		t.Errorf("retransmits = %d, want 0 (marking must avoid loss)", tn.stats.Retransmits())
	}
	if tn.stats.CwndCuts == 0 {
		t.Error("senders never reacted to ECN marks")
	}
	if tn.stats.EceAcksSent == 0 {
		t.Error("receiver never echoed congestion")
	}
}

func TestDCTCPAlphaConvergesUnderPersistentMarking(t *testing.T) {
	const size = 8 << 20
	tn := buildNet(t, 3, tcp.DCTCP, func(label string, rate units.Bandwidth) qdisc.Qdisc {
		return qdisc.NewSimpleMark(1000, 30)
	})
	tn.stacks[2].Listen(80, func(c *tcp.Conn) {})
	c0 := tn.stacks[0].Dial(addrOf(tn, 2, 80))
	c0.Send(size)
	c0.Close()
	c1 := tn.stacks[1].Dial(addrOf(tn, 2, 80))
	c1.Send(size)
	c1.Close()
	tn.eng.Run()

	// Under steady marking at a fixed threshold, DCTCP's alpha must stay
	// strictly between 0 and 1 and the flows must finish without loss.
	if a := c0.Alpha(); a <= 0 || a >= 1 {
		t.Errorf("alpha = %v, want in (0,1)", a)
	}
	if tn.stats.Retransmits() != 0 {
		t.Errorf("retransmits = %d, want 0", tn.stats.Retransmits())
	}
}

func TestDCTCPKeepsHigherUtilizationThanECNAtTinyThreshold(t *testing.T) {
	// With an aggressive marking threshold, classic ECN halves repeatedly
	// while DCTCP's proportional cut should sustain equal-or-better
	// completion time. This mirrors the paper's observation that DCTCP
	// tolerates aggressive settings.
	run := func(v tcp.Variant) units.Time {
		tn := buildNet(t, 3, v, func(label string, rate units.Bandwidth) qdisc.Qdisc {
			return qdisc.NewSimpleMark(1000, 10)
		})
		tn.stacks[2].Listen(80, func(c *tcp.Conn) {})
		done := 0
		for i := 0; i < 2; i++ {
			c := tn.stacks[i].Dial(addrOf(tn, 2, 80))
			c.OnClosed = func() { done++ }
			c.Send(16 << 20)
			c.Close()
		}
		tn.eng.Run()
		if done != 2 {
			t.Fatalf("%v: %d of 2 transfers completed", v, done)
		}
		return tn.eng.Now()
	}
	ecn := run(tcp.RenoECN)
	dctcp := run(tcp.DCTCP)
	if float64(dctcp) > float64(ecn)*1.05 {
		t.Errorf("dctcp=%v slower than tcp-ecn=%v at aggressive threshold", dctcp, ecn)
	}
}

func TestSynRetryAfterLoss(t *testing.T) {
	// A 1-packet buffer under a standing load drops the first SYN with high
	// probability; verify the dialer retries and eventually connects.
	tn := buildNet(t, 3, tcp.Reno, droptailFactory(4))
	tn.stacks[2].Listen(80, func(c *tcp.Conn) {})
	// Standing bulk load to keep the egress queue full.
	bg := tn.stacks[0].Dial(addrOf(tn, 2, 80))
	bg.Send(64 << 20)

	var connected bool
	tn.eng.Schedule(units.Time(10*units.Millisecond), func() {
		c := tn.stacks[1].Dial(addrOf(tn, 2, 80))
		c.OnConnected = func() { connected = true }
	})
	tn.eng.SetDeadline(units.Time(30 * units.Second))
	tn.eng.RunUntil(units.Time(30 * units.Second))

	if !connected {
		t.Fatalf("dialer never connected (synRetries=%d)", tn.stats.SynRetries)
	}
}

func TestConnFailsAfterMaxSynRetries(t *testing.T) {
	// Dial a host that exists but has no listener: SYNs are silently
	// ignored, so the dialer must give up with an error.
	tn := buildNet(t, 2, tcp.Reno, droptailFactory(100))
	var gotErr error
	c := tn.stacks[0].Dial(addrOf(tn, 1, 9999))
	c.OnError = func(err error) { gotErr = err }
	tn.eng.Run()
	if gotErr == nil {
		t.Fatal("expected connection failure")
	}
	if c.State() != tcp.StateClosed {
		t.Errorf("state = %v, want closed", c.State())
	}
	if tn.stats.ConnsFailed != 1 {
		t.Errorf("ConnsFailed = %d, want 1", tn.stats.ConnsFailed)
	}
}

func TestRTTEstimateReasonable(t *testing.T) {
	tn := buildNet(t, 2, tcp.Reno, droptailFactory(1000))
	tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	c.Send(1 << 20)
	c.Close()
	tn.eng.Run()

	// Two links of 5 µs each way plus serialization: SRTT should be tens of
	// microseconds to a few ms (queueing), never zero and never huge.
	srtt := c.SRTT()
	if srtt <= 0 {
		t.Fatal("no RTT samples folded in")
	}
	if srtt > 50*units.Millisecond {
		t.Errorf("SRTT %v implausibly large for an idle 1 Gbps star", srtt)
	}
}

func TestBidirectionalTransfer(t *testing.T) {
	// Both endpoints send; both must deliver fully (exercises piggyback
	// ACK processing on data segments).
	const size = 1 << 20
	tn := buildNet(t, 2, tcp.Reno, droptailFactory(1000))
	var serverGot, clientGot units.ByteSize
	tn.stacks[1].Listen(80, func(c *tcp.Conn) {
		c.OnDeliver = func(n int) { serverGot += units.ByteSize(n) }
		c.Send(size) // server pushes too
	})
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	c.OnDeliver = func(n int) { clientGot += units.ByteSize(n) }
	c.Send(size)
	tn.eng.SetDeadline(units.Time(10 * units.Second))
	tn.eng.Run()

	if serverGot != size {
		t.Errorf("server delivered %d, want %d", serverGot, size)
	}
	if clientGot != size {
		t.Errorf("client delivered %d, want %d", clientGot, size)
	}
}

func TestManyParallelFlowsAllComplete(t *testing.T) {
	// All-to-one with moderate buffers: every flow must finish and deliver
	// exactly its bytes (conservation).
	const flows = 8
	const size = 256 << 10
	tn := buildNet(t, flows+1, tcp.Reno, droptailFactory(64))
	recv := make(map[int]units.ByteSize)
	tn.stacks[flows].Listen(80, func(c *tcp.Conn) {
		id := int(c.RemoteAddr().Node)
		c.OnDeliver = func(n int) { recv[id] += units.ByteSize(n) }
	})
	done := 0
	for i := 0; i < flows; i++ {
		c := tn.stacks[i].Dial(addrOf(tn, flows, 80))
		c.OnClosed = func() { done++ }
		c.Send(size)
		c.Close()
	}
	tn.eng.SetDeadline(units.Time(60 * units.Second))
	tn.eng.Run()

	if done != flows {
		t.Fatalf("%d of %d flows completed", done, flows)
	}
	for i := 0; i < flows; i++ {
		id := int(tn.cluster.Hosts[i].ID())
		if recv[id] != size {
			t.Errorf("flow from host %d delivered %d, want %d", i, recv[id], size)
		}
	}
}
