package tcp_test

import (
	"testing"
	"testing/quick"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/units"
)

// buildMixedNet builds a star whose hosts run per-host TCP variants.
func buildMixedNet(t testing.TB, variants []tcp.Variant, mkq topo.QdiscFactory) *testNet {
	t.Helper()
	eng := sim.New()
	cl := topo.Build(eng, topo.Config{
		Nodes:       len(variants),
		LinkRate:    1 * units.Gbps,
		LinkDelay:   5 * units.Microsecond,
		SwitchQueue: mkq,
	})
	stats := &tcp.Stats{}
	tn := &testNet{eng: eng, cluster: cl, stats: stats}
	for i, h := range cl.Hosts {
		tn.stacks = append(tn.stacks, tcp.NewStack(h, tcp.DefaultConfig(variants[i]), stats))
	}
	return tn
}

func TestStateTransitions(t *testing.T) {
	tn := buildNet(t, 2, tcp.Reno, droptailFactory(1000))
	var server *tcp.Conn
	tn.stacks[1].Listen(80, func(c *tcp.Conn) { server = c })
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	if c.State() != tcp.StateSynSent {
		t.Errorf("after Dial: %v, want syn-sent", c.State())
	}
	c.Send(1 << 16)
	c.Close()
	tn.eng.Run()
	if c.State() != tcp.StateDone {
		t.Errorf("after close handshake: %v, want done", c.State())
	}
	if server == nil || !server.Established() {
		t.Error("server never established")
	}
}

// TestECNNegotiationMatrix checks every client/server variant pairing: ECN
// is used iff both ends negotiate it.
func TestECNNegotiationMatrix(t *testing.T) {
	variants := []tcp.Variant{tcp.Reno, tcp.RenoECN, tcp.DCTCP, tcp.Cubic, tcp.CubicECN}
	for _, cv := range variants {
		for _, sv := range variants {
			cv, sv := cv, sv
			t.Run(cv.String()+"->"+sv.String(), func(t *testing.T) {
				tn := buildMixedNet(t, []tcp.Variant{cv, sv}, droptailFactory(1000))
				sawECT := false
				tn.cluster.Net.SetObserver(&verdictRecorder{onEnq: func(p *packet.Packet, v qdisc.Verdict) {
					if p.Payload > 0 && p.ECN.ECTCapable() {
						sawECT = true
					}
				}})
				tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
				c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
				var done bool
				c.OnClosed = func() { done = true }
				c.Send(1 << 16)
				c.Close()
				tn.eng.Run()
				if !done {
					t.Fatal("transfer incomplete across variant pairing")
				}
				want := cv.ECNEnabled() && sv.ECNEnabled()
				if sawECT != want {
					t.Errorf("ECT data = %v, want %v for %v->%v", sawECT, want, cv, sv)
				}
			})
		}
	}
}

// markAlternate marks every second ECT packet CE at enqueue, to exercise
// DCTCP's receiver state machine (immediate ACK on CE-state change).
type markAlternate struct {
	*qdisc.DropTail
	n int
}

func (m *markAlternate) Enqueue(now units.Time, p *packet.Packet) qdisc.Verdict {
	if p.Payload > 0 && p.ECN.ECTCapable() {
		m.n++
		if m.n%2 == 0 {
			p.Mark()
		}
	}
	return m.DropTail.Enqueue(now, p)
}

func TestDCTCPReceiverImmediateAckOnCEChange(t *testing.T) {
	// With CE flipping on alternating packets, the DCTCP receiver's state
	// machine must bypass delayed-ACK coalescing: ACK count approaches one
	// per segment, far above the 1-per-2 delack baseline.
	run := func(alternate bool) (acks, segs uint64) {
		tn := buildNet(t, 2, tcp.DCTCP, func(label string, rate units.Bandwidth) qdisc.Qdisc {
			if alternate {
				return &markAlternate{DropTail: qdisc.NewDropTail(4096)}
			}
			return qdisc.NewDropTail(4096)
		})
		tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
		c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
		c.Send(2 << 20)
		c.Close()
		tn.eng.Run()
		return tn.stats.AcksSent, tn.stats.SegmentsSent
	}
	baseAcks, baseSegs := run(false)
	altAcks, altSegs := run(true)
	baseRatio := float64(baseAcks) / float64(baseSegs)
	altRatio := float64(altAcks) / float64(altSegs)
	if altRatio <= baseRatio*1.3 {
		t.Errorf("CE flapping ack ratio %.2f not well above delack baseline %.2f", altRatio, baseRatio)
	}
}

func TestClassicECNLatchClearsAfterCWR(t *testing.T) {
	// The classic-ECN receiver latches ECE on CE and clears it when CWR
	// arrives: over a long marked transfer both ECE and non-ECE ACKs must
	// appear (a stuck latch would make every ACK carry ECE).
	var ece, plain int
	tn := buildNet(t, 3, tcp.RenoECN, func(label string, rate units.Bandwidth) qdisc.Qdisc {
		return qdisc.NewSimpleMark(4096, 30)
	})
	tn.cluster.Net.SetObserver(&verdictRecorder{onEnq: func(p *packet.Packet, v qdisc.Verdict) {
		if p.IsPureACK() {
			if p.HasECE() {
				ece++
			} else {
				plain++
			}
		}
	}})
	tn.stacks[2].Listen(80, func(c *tcp.Conn) {})
	for i := 0; i < 2; i++ {
		c := tn.stacks[i].Dial(addrOf(tn, 2, 80))
		c.Send(4 << 20)
		c.Close()
	}
	tn.eng.Run()
	if ece == 0 {
		t.Fatal("no ECE ACKs despite marking")
	}
	if plain == 0 {
		t.Fatal("every ACK carried ECE: CWR never cleared the latch")
	}
}

func TestRandomLossDeliveryProperty(t *testing.T) {
	// Property: under any uniform loss rate up to 20% applied to data
	// packets, the transfer still delivers exactly its bytes.
	f := func(seed uint64, rateBasis uint8) bool {
		lossRate := float64(rateBasis%21) / 100
		rng := seed | 1
		next := func() float64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return float64(rng%1000) / 1000
		}
		tn, _ := buildLossy(t, tcp.Reno, func(p *packet.Packet) bool {
			return p.Payload > 0 && next() < lossRate
		})
		var got units.ByteSize
		tn.stacks[1].Listen(80, func(c *tcp.Conn) {
			c.OnDeliver = func(n int) { got += units.ByteSize(n) }
		})
		c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
		const size = 256 << 10
		done := false
		c.OnClosed = func() { done = true }
		c.Send(size)
		c.Close()
		tn.eng.SetDeadline(units.Time(120 * units.Second))
		tn.eng.Run()
		return done && got == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestTwoConnectionsShareTSQFairly(t *testing.T) {
	// Two bulk flows from one host to two receivers: both must finish, and
	// neither should starve (completion times within 3x).
	tn := buildNet(t, 3, tcp.Reno, droptailFactory(1000))
	tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
	tn.stacks[2].Listen(80, func(c *tcp.Conn) {})
	var t1, t2 units.Time
	c1 := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	c1.OnClosed = func() { t1 = tn.eng.Now() }
	c1.Send(4 << 20)
	c1.Close()
	c2 := tn.stacks[0].Dial(addrOf(tn, 2, 80))
	c2.OnClosed = func() { t2 = tn.eng.Now() }
	c2.Send(4 << 20)
	c2.Close()
	tn.eng.Run()
	if t1 == 0 || t2 == 0 {
		t.Fatal("a flow starved under TSQ")
	}
	lo, hi := t1, t2
	if lo > hi {
		lo, hi = hi, lo
	}
	if float64(hi) > 3*float64(lo) {
		t.Errorf("flow completion skew: %v vs %v", t1, t2)
	}
}

func TestEphemeralPortsUnique(t *testing.T) {
	tn := buildNet(t, 2, tcp.Reno, droptailFactory(1000))
	tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
	seen := make(map[uint16]bool)
	for i := 0; i < 100; i++ {
		c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
		p := c.LocalAddr().Port
		if seen[p] {
			t.Fatalf("ephemeral port %d reused among live conns", p)
		}
		seen[p] = true
	}
	if tn.stacks[0].ConnCount() != 100 {
		t.Errorf("ConnCount = %d", tn.stacks[0].ConnCount())
	}
}

func TestCloseListenerStopsAccepts(t *testing.T) {
	tn := buildNet(t, 2, tcp.Reno, droptailFactory(1000))
	accepted := 0
	l := tn.stacks[1].Listen(80, func(c *tcp.Conn) { accepted++ })
	tn.stacks[1].CloseListener(l)
	var failed bool
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	c.OnError = func(err error) { failed = true }
	tn.eng.Run()
	if accepted != 0 {
		t.Error("closed listener accepted")
	}
	if !failed {
		t.Error("dial against closed listener did not fail")
	}
}

func TestDuplicateListenerPanics(t *testing.T) {
	tn := buildNet(t, 2, tcp.Reno, droptailFactory(1000))
	tn.stacks[1].Listen(80, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tn.stacks[1].Listen(80, nil)
}

func TestSendAfterClosePanics(t *testing.T) {
	tn := buildNet(t, 2, tcp.Reno, droptailFactory(1000))
	tn.stacks[1].Listen(80, nil)
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	c.Close()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c.Send(100)
}

func TestBytesAccountors(t *testing.T) {
	tn := buildNet(t, 2, tcp.Reno, droptailFactory(1000))
	var server *tcp.Conn
	tn.stacks[1].Listen(80, func(c *tcp.Conn) { server = c })
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	const size = 1 << 20
	c.Send(size)
	c.Close()
	tn.eng.Run()
	if c.BytesQueued() != size {
		t.Errorf("BytesQueued = %d", c.BytesQueued())
	}
	if c.BytesAcked() != size {
		t.Errorf("BytesAcked = %d", c.BytesAcked())
	}
	if server.BytesDelivered() != size {
		t.Errorf("server BytesDelivered = %d", server.BytesDelivered())
	}
}

var _ netsim.Observer = (*verdictRecorder)(nil)
