package tcp

import (
	"math"

	"repro/internal/units"
)

// CUBIC window growth (RFC 8312, simplified to the parts that matter at
// datacenter RTTs): after a reduction at window Wmax, the window follows
// W(t) = C*(t-K)^3 + Wmax (in segments), with K = cbrt(Wmax*(1-beta)/C),
// beta = 0.7, C = 0.4. A TCP-friendly floor (Reno-rate estimate) keeps
// growth at least as fast as NewReno at short RTTs — which is the regime
// every datacenter flow lives in, so the floor frequently governs.
const (
	cubicBeta = 0.7
	cubicC    = 0.4
)

// cubicState is embedded in Conn; zero value = fresh epoch on next ACK.
type cubicState struct {
	wMax       float64    // segments at last reduction
	epochStart units.Time // 0 = epoch not started
	k          float64    // seconds to return to wMax
	originW    float64    // segments at epoch start
	wEst       float64    // TCP-friendly (Reno) estimate, segments
	ackCount   float64    // bytes acked this epoch (for wEst)
}

// cubicOnReduction records a multiplicative decrease and returns the new
// cwnd in bytes.
func (c *Conn) cubicOnReduction() float64 {
	mss := float64(c.cfg.MSS)
	seg := c.cwnd / mss
	// Fast convergence: if we reduce below the previous wMax, release
	// bandwidth faster for newcomers.
	if seg < c.cubic.wMax {
		c.cubic.wMax = seg * (2 - cubicBeta) / 2
	} else {
		c.cubic.wMax = seg
	}
	c.cubic.epochStart = 0
	nw := c.cwnd * cubicBeta
	if nw < 2*mss {
		nw = 2 * mss
	}
	return nw
}

// cubicGrowth advances cwnd on a new ACK in congestion avoidance.
func (c *Conn) cubicGrowth(newlyAcked uint64) {
	mss := float64(c.cfg.MSS)
	now := c.stack.eng.Now()
	cs := &c.cubic
	if cs.epochStart == 0 {
		cs.epochStart = now
		if seg := c.cwnd / mss; seg < cs.wMax {
			cs.k = math.Cbrt(cs.wMax * (1 - cubicBeta) / cubicC)
			cs.originW = cs.wMax
		} else {
			cs.k = 0
			cs.originW = seg
		}
		cs.wEst = c.cwnd / mss
		cs.ackCount = 0
	}
	t := now.Sub(cs.epochStart).Seconds()
	rtt := c.srtt
	// Target window one RTT ahead, in segments.
	dt := t + rtt - cs.k
	target := cubicC*dt*dt*dt + cs.originW

	// TCP-friendly estimate: Reno would add ~1 segment per RTT; emulate by
	// per-ack accounting 3*(1-beta)/(1+beta) * acked/cwnd.
	cs.ackCount += float64(newlyAcked)
	cs.wEst += 3 * (1 - cubicBeta) / (1 + cubicBeta) * float64(newlyAcked) / (c.cwnd / mss) / mss

	cur := c.cwnd / mss
	switch {
	case target > cur:
		// Concave/convex region: close a fraction of the gap per ACK.
		c.cwnd += mss * (target - cur) / cur
	default:
		// Near the plateau: minimal growth.
		c.cwnd += mss * 0.01 / cur
	}
	// Never grow slower than the friendly floor.
	if floor := cs.wEst * mss; c.cwnd < floor {
		c.cwnd = floor
	}
}
