package tcp_test

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/tcp"
	"repro/internal/units"
)

func TestRTOBackoffDoubles(t *testing.T) {
	// Black out everything after the handshake: successive RTOs must be
	// spaced with exponential backoff (retransmission times roughly double).
	blackout := false
	tn, _ := buildLossy(t, tcp.Reno, func(p *packet.Packet) bool {
		return blackout
	})
	tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	c.Send(8 << 20) // ~67 ms at 1 Gbps: still in flight when the blackout hits
	tn.eng.Schedule(units.Time(2*units.Millisecond), func() { blackout = true })
	tn.eng.RunUntil(units.Time(5 * units.Second))

	// Instead of recorded wall times (the filter fires at enqueue), use the
	// RTO event counter: in ~5 s with 200 ms min RTO and doubling, expect
	// roughly log2(5s/200ms) ≈ 4-5 events, NOT ~25 (no backoff).
	if tn.stats.RTOEvents == 0 {
		t.Fatal("no RTOs during blackout")
	}
	if tn.stats.RTOEvents > 8 {
		t.Errorf("%d RTO events in 5s suggests missing exponential backoff", tn.stats.RTOEvents)
	}
}

func TestServerSynAckLossRecovered(t *testing.T) {
	// Drop the first SYN-ACK: the server must retransmit it after its
	// handshake timer and the connection must still establish.
	first := true
	tn, _ := buildLossy(t, tcp.Reno, func(p *packet.Packet) bool {
		if p.Flags.Has(packet.FlagSYN|packet.FlagACK) && first {
			first = false
			return true
		}
		return false
	})
	tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
	var connected units.Time
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	c.OnConnected = func() { connected = tn.eng.Now() }
	tn.eng.Run()
	if connected == 0 {
		t.Fatal("never connected after SYN-ACK loss")
	}
	if connected < units.Time(1*units.Second) {
		t.Errorf("connected at %v, want >= 1s (server handshake RTO)", connected)
	}
}

func TestTSQDisabledAllowsDeepHostQueue(t *testing.T) {
	cfg := tcp.DefaultConfig(tcp.Reno)
	cfg.TSQLimit = 0 // disabled
	tn := buildNetWithConfig(t, 2, cfg, droptailFactory(1<<16))
	tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	c.Send(8 << 20)
	c.Close()
	hostQ := tn.cluster.Hosts[0].Uplink().Queue()
	maxSeen := units.ByteSize(0)
	for tn.eng.Step() {
		if b := hostQ.BytesQueued(); b > maxSeen {
			maxSeen = b
		}
	}
	// Without TSQ, slow start dumps multiples of the 256 KiB limit.
	if maxSeen <= 512*units.KiB {
		t.Errorf("host queue peaked at %v; expected slow-start flooding with TSQ off", maxSeen)
	}
}

func TestZeroPayloadSendIgnored(t *testing.T) {
	tn := buildNet(t, 2, tcp.Reno, droptailFactory(1000))
	tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	c.Send(0)
	c.Send(-5)
	c.Send(1024)
	c.Close()
	tn.eng.Run()
	if c.BytesQueued() != 1024 {
		t.Errorf("BytesQueued = %d, want 1024 (zero/negative ignored)", c.BytesQueued())
	}
	if c.State() != tcp.StateDone {
		t.Errorf("state %v", c.State())
	}
}

func TestDoubleCloseIdempotent(t *testing.T) {
	tn := buildNet(t, 2, tcp.Reno, droptailFactory(1000))
	tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	closed := 0
	c.OnClosed = func() { closed++ }
	c.Send(1024)
	c.Close()
	c.Close()
	tn.eng.Run()
	if closed != 1 {
		t.Errorf("OnClosed fired %d times", closed)
	}
}

func TestRenoWithoutECNIgnoresMarkingQueues(t *testing.T) {
	// Plain TCP through a marking queue: data is Non-ECT so SimpleMark can
	// never mark it; the flow behaves exactly as through DropTail.
	run := func(mk func(string, units.Bandwidth) qdisc.Qdisc) units.Time {
		tn := buildNet(t, 2, tcp.Reno, mk)
		tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
		c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
		c.Send(4 << 20)
		c.Close()
		tn.eng.Run()
		return tn.eng.Now()
	}
	viaMark := run(func(label string, rate units.Bandwidth) qdisc.Qdisc {
		return qdisc.NewSimpleMark(1000, 10)
	})
	viaTail := run(func(label string, rate units.Bandwidth) qdisc.Qdisc {
		return qdisc.NewDropTail(1000)
	})
	if viaMark != viaTail {
		t.Errorf("plain TCP behaves differently through marking (%v) vs droptail (%v)", viaMark, viaTail)
	}
}
