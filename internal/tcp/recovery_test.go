package tcp_test

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/units"
)

// filterQdisc wraps a DropTail and force-drops packets matching drop(),
// counting what it killed. It lets tests inject deterministic loss.
type filterQdisc struct {
	*qdisc.DropTail
	drop    func(p *packet.Packet) bool
	dropped int
}

func (f *filterQdisc) Enqueue(now units.Time, p *packet.Packet) qdisc.Verdict {
	if f.drop != nil && f.drop(p) {
		f.dropped++
		return qdisc.DroppedEarly
	}
	return f.DropTail.Enqueue(now, p)
}

// buildLossy builds a 2-host star whose switch egress queues apply the given
// drop predicate.
func buildLossy(t testing.TB, variant tcp.Variant, drop func(*packet.Packet) bool) (*testNet, *filterQdisc) {
	t.Helper()
	var filters []*filterQdisc
	tn := buildNet(t, 2, variant, func(label string, rate units.Bandwidth) qdisc.Qdisc {
		f := &filterQdisc{DropTail: qdisc.NewDropTail(4096), drop: drop}
		filters = append(filters, f)
		return f
	})
	return tn, filters[0]
}

func TestSingleLossRecoversByFastRetransmit(t *testing.T) {
	// Drop exactly one data packet mid-flow: SACK recovery must fix it
	// without any RTO.
	dropped := false
	tn, _ := buildLossy(t, tcp.Reno, func(p *packet.Packet) bool {
		if !dropped && p.Payload > 0 && p.Seq > 100000 {
			dropped = true
			return true
		}
		return false
	})
	tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	var done bool
	c.OnClosed = func() { done = true }
	c.Send(1 << 20)
	c.Close()
	tn.eng.Run()

	if !done {
		t.Fatal("transfer incomplete")
	}
	if !dropped {
		t.Fatal("test never dropped a packet")
	}
	if tn.stats.RTOEvents != 0 {
		t.Errorf("RTO fired for a single recoverable loss (%d events)", tn.stats.RTOEvents)
	}
	if tn.stats.FastRetransmits == 0 {
		t.Error("no fast retransmit recorded")
	}
}

func TestBurstLossRecoversWithSACK(t *testing.T) {
	// Drop 20 consecutive data packets: SACK hole-filling must recover all
	// of them in (few) round trips without collapsing to one-per-RTT.
	var killed int
	tn, _ := buildLossy(t, tcp.Reno, func(p *packet.Packet) bool {
		if p.Payload > 0 && p.Seq > 200000 && killed < 20 {
			killed++
			return true
		}
		return false
	})
	tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	var done units.Time
	c.OnClosed = func() { done = tn.eng.Now() }
	c.Send(4 << 20)
	c.Close()
	tn.eng.Run()

	if done == 0 {
		t.Fatal("transfer incomplete")
	}
	if killed != 20 {
		t.Fatalf("dropped %d, want 20", killed)
	}
	// 4 MiB at 1 Gbps is ~34 ms; recovery should not add an RTO (200 ms).
	if done > units.Time(150*units.Millisecond) {
		t.Errorf("completion %v suggests RTO-bound recovery", done)
	}
}

func TestTotalAckLossCausesRTO(t *testing.T) {
	// The paper's catastrophic scenario, isolated: every pure ACK on the
	// reverse path vanishes for a window. The sender must stall and fire
	// the retransmission timer.
	blackout := false
	tn, _ := buildLossy(t, tcp.Reno, func(p *packet.Packet) bool {
		return blackout && p.IsPureACK()
	})
	tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	var done bool
	c.OnClosed = func() { done = true }
	c.Send(8 << 20)
	c.Close()
	// Let it start cleanly, then black out ACKs for 30 ms.
	tn.eng.Schedule(units.Time(5*units.Millisecond), func() { blackout = true })
	tn.eng.Schedule(units.Time(35*units.Millisecond), func() { blackout = false })
	tn.eng.Run()

	if !done {
		t.Fatal("transfer incomplete")
	}
	if tn.stats.RTOEvents == 0 {
		t.Error("whole-window ACK loss did not trigger an RTO — the paper's mechanism is missing")
	}
}

func TestAckLossWithoutBlackoutIsHarmless(t *testing.T) {
	// Dropping every second ACK must NOT stall the flow: cumulative ACKs
	// absorb sparse ACK loss. This isolates why only near-total ACK
	// starvation (the AQM forced-drop region) is catastrophic.
	var n int
	tn, _ := buildLossy(t, tcp.Reno, func(p *packet.Packet) bool {
		if p.IsPureACK() {
			n++
			return n%2 == 0
		}
		return false
	})
	tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	var done units.Time
	c.OnClosed = func() { done = tn.eng.Now() }
	c.Send(4 << 20)
	c.Close()
	tn.eng.Run()

	if done == 0 {
		t.Fatal("transfer incomplete")
	}
	// Mid-stream ACK loss is absorbed by cumulative ACKs; only the very
	// last ACK (for the FIN, with no later ACK to cover it) can force a
	// single tail RTO. More than one RTO would mean data-path stalls.
	if tn.stats.RTOEvents > 1 {
		t.Errorf("sparse ACK loss caused %d RTOs; cumulative ACKs should absorb it", tn.stats.RTOEvents)
	}
	if done > units.Time(300*units.Millisecond) {
		t.Errorf("completion %v too slow under 50%% ACK loss", done)
	}
}

func TestSynLossDelaysConnectionBySynRTO(t *testing.T) {
	// Drop the first SYN: connection establishment must succeed after the
	// 1-second SYN retransmission timeout — the paper's point about AQMs
	// that early-drop SYNs.
	first := true
	tn, _ := buildLossy(t, tcp.Reno, func(p *packet.Packet) bool {
		if p.IsSYN() && first {
			first = false
			return true
		}
		return false
	})
	tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
	var connectedAt units.Time
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	c.OnConnected = func() { connectedAt = tn.eng.Now() }
	tn.eng.Run()

	if connectedAt == 0 {
		t.Fatal("never connected")
	}
	if connectedAt < units.Time(1*units.Second) {
		t.Errorf("connected at %v, want >= 1s (SYN RTO)", connectedAt)
	}
	if tn.stats.SynRetries == 0 {
		t.Error("no SYN retry recorded")
	}
}

func TestFinLossRecovered(t *testing.T) {
	// Drop the first FIN: the sender must retransmit it and still complete.
	first := true
	tn, _ := buildLossy(t, tcp.Reno, func(p *packet.Packet) bool {
		if p.Flags.Has(packet.FlagFIN) && first {
			first = false
			return true
		}
		return false
	})
	tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	var done bool
	c.OnClosed = func() { done = true }
	c.Send(64 << 10)
	c.Close()
	tn.eng.Run()
	if !done {
		t.Fatal("FIN loss never recovered")
	}
}

func TestNonSACKFallbackStillCompletes(t *testing.T) {
	// Legacy NewReno (SACK off) must still recover a burst loss, slower.
	cfg := tcp.DefaultConfig(tcp.Reno)
	cfg.SACK = false
	var killed int
	var filters []*filterQdisc
	tn := buildNetWithConfig(t, 2, cfg, func(label string, rate units.Bandwidth) qdisc.Qdisc {
		f := &filterQdisc{DropTail: qdisc.NewDropTail(4096), drop: func(p *packet.Packet) bool {
			if p.Payload > 0 && p.Seq > 100000 && killed < 5 {
				killed++
				return true
			}
			return false
		}}
		filters = append(filters, f)
		return f
	})
	tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	var done bool
	c.OnClosed = func() { done = true }
	c.Send(1 << 20)
	c.Close()
	tn.eng.SetDeadline(units.Time(30 * units.Second))
	tn.eng.Run()
	if !done {
		t.Fatal("non-SACK transfer incomplete")
	}
	if tn.stats.Retransmits() == 0 {
		t.Error("no retransmissions recorded")
	}
}

func TestTSQBoundsHostQueue(t *testing.T) {
	// With TSQ enabled (default), a single bulk sender must never hold
	// more than the limit (plus one segment) in its own NIC queue.
	tn := buildNet(t, 2, tcp.Reno, droptailFactory(4096))
	tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	c.Send(8 << 20)
	c.Close()
	limit := tn.stacks[0].Config().TSQLimit
	hostQ := tn.cluster.Hosts[0].Uplink().Queue()
	maxSeen := units.ByteSize(0)
	for tn.eng.Step() {
		if b := hostQ.BytesQueued(); b > maxSeen {
			maxSeen = b
		}
	}
	if maxSeen > limit+1500 {
		t.Errorf("host queue reached %v, limit %v", maxSeen, limit)
	}
	if maxSeen == 0 {
		t.Error("host queue never used")
	}
}

func TestDCTCPAlphaTracksMarkingExtremes(t *testing.T) {
	// Converging senders through an always-marking queue -> alpha stays
	// high. A loss-free unmarked path -> alpha decays from its initial 1
	// toward 0. (Marking requires convergence: a lone flow through equal
	// rate links never builds a switch queue.)
	markAll := func(label string, rate units.Bandwidth) qdisc.Qdisc {
		return qdisc.NewSimpleMark(4096, 1) // marks at queue >= 1
	}
	tn := buildNet(t, 3, tcp.DCTCP, markAll)
	tn.stacks[2].Listen(80, func(c *tcp.Conn) {})
	c := tn.stacks[0].Dial(addrOf(tn, 2, 80))
	c.Send(4 << 20)
	c.Close()
	cb := tn.stacks[1].Dial(addrOf(tn, 2, 80))
	cb.Send(4 << 20)
	cb.Close()
	tn.eng.Run()
	alphaMarked := c.Alpha()
	if alphaMarked < 0.3 {
		t.Errorf("alpha = %.3f under near-universal marking, want high", alphaMarked)
	}

	tn2 := buildNet(t, 2, tcp.DCTCP, droptailFactory(4096))
	tn2.stacks[1].Listen(80, func(c *tcp.Conn) {})
	c2 := tn2.stacks[0].Dial(addrOf(tn2, 1, 80))
	c2.Send(4 << 20)
	c2.Close()
	tn2.eng.Run()
	alphaClean := c2.Alpha()
	if alphaClean >= 1 {
		t.Errorf("alpha = %.3f with zero marking; must decay from 1", alphaClean)
	}
	if alphaClean >= alphaMarked {
		t.Errorf("clean-path alpha %.3f >= marked-path alpha %.3f", alphaClean, alphaMarked)
	}
}

func TestDelayedAckRatio(t *testing.T) {
	// With delayed ACKs every 2 segments, pure ACK count should be well
	// under the data segment count.
	tn := buildNet(t, 2, tcp.Reno, droptailFactory(4096))
	tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	c.Send(4 << 20)
	c.Close()
	tn.eng.Run()
	segs := tn.stats.SegmentsSent
	acks := tn.stats.AcksSent
	if acks*3 > segs*2 {
		t.Errorf("acks=%d vs segments=%d: delayed ACK not coalescing", acks, segs)
	}
	if acks < segs/4 {
		t.Errorf("acks=%d vs segments=%d: too few ACKs for 2:1 delack", acks, segs)
	}
}

func TestEceOncePerWindow(t *testing.T) {
	// Classic ECN must not halve more than once per RTT despite a stream
	// of marked packets. With cwnd halving per window and persistent
	// marking, cwnd cuts should number far fewer than marks.
	tn := buildNet(t, 3, tcp.RenoECN, func(label string, rate units.Bandwidth) qdisc.Qdisc {
		return qdisc.NewSimpleMark(4096, 5)
	})
	tn.stacks[2].Listen(80, func(c *tcp.Conn) {})
	for i := 0; i < 2; i++ {
		c := tn.stacks[i].Dial(addrOf(tn, 2, 80))
		c.Send(4 << 20)
		c.Close()
	}
	tn.eng.Run()
	if tn.stats.CwndCuts == 0 {
		t.Fatal("no ECN reactions at all")
	}
	marks := tn.stats.EceAcksSent
	if tn.stats.CwndCuts >= marks {
		t.Errorf("cuts=%d >= ECE acks=%d: once-per-window gating broken", tn.stats.CwndCuts, marks)
	}
}

// buildNetWithConfig is buildNet with a custom TCP config.
func buildNetWithConfig(t testing.TB, n int, cfg tcp.Config, mkq topo.QdiscFactory) *testNet {
	t.Helper()
	tn := buildNet(t, n, cfg.Variant, mkq)
	// Rebuild stacks with the custom config.
	tn.stacks = tn.stacks[:0]
	stats := tn.stats
	for _, h := range tn.cluster.Hosts {
		tn.stacks = append(tn.stacks, tcp.NewStack(h, cfg, stats))
	}
	return tn
}
