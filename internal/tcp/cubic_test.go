package tcp_test

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/tcp"
	"repro/internal/units"
)

func TestCubicBulkTransferCompletes(t *testing.T) {
	const size = 8 << 20
	tn := buildNet(t, 2, tcp.Cubic, droptailFactory(1000))
	tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	var done units.Time
	c.OnClosed = func() { done = tn.eng.Now() }
	c.Send(size)
	c.Close()
	tn.eng.Run()

	if done == 0 {
		t.Fatal("cubic transfer incomplete")
	}
	gbps := float64(size*8) / done.Seconds() / 1e9
	if gbps < 0.85 {
		t.Errorf("cubic goodput %.3f Gbps, want >= 0.85 on an idle 1 Gbps link", gbps)
	}
}

func TestCubicECNNegotiatesAndReacts(t *testing.T) {
	tn := buildNet(t, 3, tcp.CubicECN, func(label string, rate units.Bandwidth) qdisc.Qdisc {
		return qdisc.NewSimpleMark(1000, 20)
	})
	tn.stacks[2].Listen(80, func(c *tcp.Conn) {})
	done := 0
	for i := 0; i < 2; i++ {
		c := tn.stacks[i].Dial(addrOf(tn, 2, 80))
		c.OnClosed = func() { done++ }
		c.Send(4 << 20)
		c.Close()
	}
	tn.eng.Run()

	if done != 2 {
		t.Fatalf("%d of 2 cubic-ecn transfers completed", done)
	}
	if tn.stats.CwndCuts == 0 {
		t.Error("cubic-ecn never reacted to marks")
	}
	if tn.stats.Retransmits() != 0 {
		t.Errorf("retransmits = %d under pure marking", tn.stats.Retransmits())
	}
}

func TestCubicPlainDoesNotNegotiateECN(t *testing.T) {
	if tcp.Cubic.ECNEnabled() {
		t.Error("plain Cubic must not negotiate ECN")
	}
	if !tcp.CubicECN.ECNEnabled() {
		t.Error("CubicECN must negotiate ECN")
	}
	if !tcp.Cubic.IsCubic() || !tcp.CubicECN.IsCubic() || tcp.Reno.IsCubic() {
		t.Error("IsCubic misclassifies")
	}
}

func TestCubicRecoversFromLossBurst(t *testing.T) {
	var killed int
	tn, _ := buildLossy(t, tcp.Cubic, func(p *packet.Packet) bool {
		if p.Payload > 0 && p.Seq > 200000 && killed < 10 {
			killed++
			return true
		}
		return false
	})
	tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
	c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
	var done bool
	c.OnClosed = func() { done = true }
	c.Send(4 << 20)
	c.Close()
	tn.eng.Run()
	if !done {
		t.Fatal("cubic transfer with losses incomplete")
	}
	if tn.stats.RTOEvents != 0 {
		t.Errorf("cubic burst loss caused %d RTOs; SACK should recover", tn.stats.RTOEvents)
	}
}

func TestCubicFasterRampThanRenoAfterReduction(t *testing.T) {
	// After a loss episode on a long transfer, CUBIC's convex growth must
	// not be slower than Reno overall (the friendly floor guarantees it).
	run := func(v tcp.Variant) units.Time {
		var killed int
		tn, _ := buildLossy(t, v, func(p *packet.Packet) bool {
			if p.Payload > 0 && p.Seq > 500000 && killed < 5 {
				killed++
				return true
			}
			return false
		})
		tn.stacks[1].Listen(80, func(c *tcp.Conn) {})
		c := tn.stacks[0].Dial(addrOf(tn, 1, 80))
		var done units.Time
		c.OnClosed = func() { done = tn.eng.Now() }
		c.Send(16 << 20)
		c.Close()
		tn.eng.Run()
		if done == 0 {
			t.Fatalf("%v transfer incomplete", v)
		}
		return done
	}
	reno := run(tcp.Reno)
	cubic := run(tcp.Cubic)
	if float64(cubic) > float64(reno)*1.10 {
		t.Errorf("cubic (%v) more than 10%% slower than reno (%v)", cubic, reno)
	}
}
