// Package tcp implements the simulated transport: TCP NewReno, classic
// TCP-ECN (RFC 3168) and DCTCP (RFC 8257), over the internal/netsim fabric.
// The implementation is packet-accurate where it matters to the paper:
// window-based ACK-clocked sending, slow start, congestion avoidance, fast
// retransmit/recovery, RTO with exponential backoff, delayed ACKs, ECN
// negotiation on SYN/SYN-ACK, ECE echo, CWR, and DCTCP's fractional window
// reduction driven by the marked-byte EWMA.
//
// Crucially — and this is the effect the paper studies — pure ACKs, SYNs and
// SYN-ACKs are sent as Non-ECT, exactly as real stacks send them, so an
// ECN-enabled AQM can only drop (never mark) them.
package tcp

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/units"
)

// Variant selects the congestion control behaviour of a connection.
type Variant uint8

// Supported variants.
const (
	// Reno is TCP NewReno without ECN.
	Reno Variant = iota
	// RenoECN is NewReno with classic RFC 3168 ECN: one multiplicative
	// decrease per RTT upon ECE.
	RenoECN
	// DCTCP is Data Center TCP: proportional decrease from the fraction of
	// CE-marked bytes.
	DCTCP
	// Cubic is RFC 8312 CUBIC (the Linux default of the paper's era):
	// cubic-function window growth anchored at the last reduction point,
	// beta = 0.7.
	Cubic
	// CubicECN is CUBIC with classic RFC 3168 ECN negotiation and the
	// CUBIC beta applied on congestion echoes.
	CubicECN
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Reno:
		return "tcp"
	case RenoECN:
		return "tcp-ecn"
	case DCTCP:
		return "dctcp"
	case Cubic:
		return "cubic"
	case CubicECN:
		return "cubic-ecn"
	}
	return fmt.Sprintf("variant(%d)", uint8(v))
}

// ECNEnabled reports whether the variant negotiates ECN.
func (v Variant) ECNEnabled() bool { return v == RenoECN || v == DCTCP || v == CubicECN }

// IsCubic reports whether the variant grows its window with the CUBIC
// function.
func (v Variant) IsCubic() bool { return v == Cubic || v == CubicECN }

// Config holds per-stack TCP parameters. The zero value is unusable; start
// from DefaultConfig.
type Config struct {
	Variant Variant

	// MSS is the maximum segment payload in bytes.
	MSS int
	// InitialCwnd is the initial congestion window in segments (RFC 6928
	// style; Linux default 10).
	InitialCwnd int
	// RcvWnd is the advertised receive window. Kept large by default so the
	// flows are congestion-window limited, as in the paper's experiments.
	RcvWnd units.ByteSize

	// MinRTO, MaxRTO and InitialRTO bound the retransmission timer. Linux's
	// effective minimum of 200 ms is the default; the RTO-on-ACK-loss
	// collapse the paper describes depends on it.
	MinRTO, MaxRTO, InitialRTO units.Duration
	// SynRTO is the initial SYN retransmission timeout (Linux: 1 s).
	SynRTO units.Duration
	// MaxSynRetries bounds connection attempts before failing.
	MaxSynRetries int

	// DelayedAck enables ACK-every-2nd-segment with a timeout.
	DelayedAck bool
	// DelAckTimeout flushes a pending delayed ACK.
	DelAckTimeout units.Duration
	// DelAckSegments is the segment count that forces an ACK (2).
	DelAckSegments int

	// DCTCPg is DCTCP's EWMA gain g (RFC 8257 recommends 1/16).
	DCTCPg float64

	// SACK enables selective acknowledgements with RFC 6675-style pipe
	// accounting during loss recovery, as every Linux stack of the paper's
	// era ships. Disable only for the non-SACK ablation.
	SACK bool
	// MaxSACKBlocks bounds blocks carried per ACK (3, as with timestamps).
	MaxSACKBlocks int

	// AckWireSize is the on-the-wire size of a pure ACK. 40 B by default;
	// the paper quotes ~150 B — configurable for the ablation. ACK size only
	// matters for byte-mode AQMs, which is the paper's point.
	AckWireSize units.ByteSize

	// TSQLimit caps the bytes a single connection keeps in its host's
	// egress queue, like Linux's TCP Small Queues
	// (tcp_limit_output_bytes). Prevents a sender from flooding its own
	// NIC during slow start. Zero disables.
	TSQLimit units.ByteSize
}

// DefaultConfig returns Linux-flavoured defaults for the given variant.
func DefaultConfig(v Variant) Config {
	return Config{
		Variant:        v,
		MSS:            packet.DefaultMSS,
		InitialCwnd:    10,
		RcvWnd:         64 * units.MiB,
		MinRTO:         200 * units.Millisecond,
		MaxRTO:         60 * units.Second,
		InitialRTO:     1 * units.Second,
		SynRTO:         1 * units.Second,
		MaxSynRetries:  6,
		DelayedAck:     true,
		DelAckTimeout:  500 * units.Microsecond,
		DelAckSegments: 2,
		DCTCPg:         1.0 / 16,
		SACK:           true,
		MaxSACKBlocks:  3,
		AckWireSize:    packet.DefaultAckSize,
		TSQLimit:       256 * units.KiB,
	}
}

// Validate reports a configuration error, or nil.
func (c *Config) Validate() error {
	switch {
	case c.MSS <= 0:
		return fmt.Errorf("tcp: MSS %d must be positive", c.MSS)
	case c.InitialCwnd <= 0:
		return fmt.Errorf("tcp: initial cwnd %d must be positive", c.InitialCwnd)
	case c.RcvWnd < units.ByteSize(c.MSS):
		return fmt.Errorf("tcp: receive window %v below one MSS", c.RcvWnd)
	case c.MinRTO <= 0 || c.MaxRTO < c.MinRTO:
		return fmt.Errorf("tcp: RTO bounds [%v,%v] invalid", c.MinRTO, c.MaxRTO)
	case c.InitialRTO <= 0 || c.SynRTO <= 0:
		return fmt.Errorf("tcp: initial RTOs must be positive")
	case c.MaxSynRetries < 0:
		return fmt.Errorf("tcp: MaxSynRetries must be non-negative")
	case c.DelayedAck && (c.DelAckTimeout <= 0 || c.DelAckSegments < 1):
		return fmt.Errorf("tcp: delayed-ACK parameters invalid")
	case c.Variant == DCTCP && (c.DCTCPg <= 0 || c.DCTCPg > 1):
		return fmt.Errorf("tcp: DCTCP g %g out of (0,1]", c.DCTCPg)
	case c.SACK && c.MaxSACKBlocks < 1:
		return fmt.Errorf("tcp: MaxSACKBlocks must be >=1 when SACK enabled")
	case c.AckWireSize < packet.HeaderSize:
		return fmt.Errorf("tcp: ACK wire size %v below header size", c.AckWireSize)
	}
	return nil
}

// Stats aggregates transport-level counters across all connections sharing
// it (typically one Stats per experiment run).
type Stats struct {
	SegmentsSent     uint64
	AcksSent         uint64
	BytesSent        units.ByteSize // payload bytes, including retransmits
	BytesDelivered   units.ByteSize // in-order payload delivered to apps
	FastRetransmits  uint64
	RTORetransmits   uint64
	RTOEvents        uint64
	SynRetries       uint64
	ConnsEstablished uint64
	ConnsFailed      uint64
	EceAcksSent      uint64 // pure ACKs carrying ECE
	CwndCuts         uint64 // multiplicative decreases from ECN signals
}

// Retransmits returns the total retransmitted segment count.
func (s *Stats) Retransmits() uint64 { return s.FastRetransmits + s.RTORetransmits }

// AddInto folds s into dst. Every field is additive, so sharded runs keep
// one Stats per shard (avoiding cross-shard write contention) and merge
// them after the run.
func (s *Stats) AddInto(dst *Stats) {
	dst.SegmentsSent += s.SegmentsSent
	dst.AcksSent += s.AcksSent
	dst.BytesSent += s.BytesSent
	dst.BytesDelivered += s.BytesDelivered
	dst.FastRetransmits += s.FastRetransmits
	dst.RTORetransmits += s.RTORetransmits
	dst.RTOEvents += s.RTOEvents
	dst.SynRetries += s.SynRetries
	dst.ConnsEstablished += s.ConnsEstablished
	dst.ConnsFailed += s.ConnsFailed
	dst.EceAcksSent += s.EceAcksSent
	dst.CwndCuts += s.CwndCuts
}
