package tcp

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// State is the connection state. The machine is a pragmatic subset of RFC
// 793: enough to study handshakes (SYN loss matters to the paper), steady
// bulk transfer and orderly FIN teardown.
type State uint8

// Connection states.
const (
	StateClosed State = iota
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinSent // FIN transmitted, awaiting its ACK
	StateDone    // our FIN acked; conn kept for peer retransmits
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateSynSent:
		return "syn-sent"
	case StateSynRcvd:
		return "syn-rcvd"
	case StateEstablished:
		return "established"
	case StateFinSent:
		return "fin-sent"
	case StateDone:
		return "done"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// interval is a half-open received-but-out-of-order byte range.
type interval struct{ start, end uint64 }

// Conn is a TCP connection endpoint. It is created by Stack.Dial (active
// open) or by a Listener (passive open) and is driven entirely by simulated
// events.
type Conn struct {
	stack  *Stack
	cfg    Config
	local  packet.Addr
	remote packet.Addr
	active bool
	state  State

	ecnOn bool // ECN successfully negotiated

	// ---- Sender ----
	sndUna     uint64 // oldest unacknowledged sequence
	sndNxt     uint64 // next sequence to send
	appEnd     uint64 // one past the last byte the application queued
	cwnd       float64
	ssthresh   float64
	dupAcks    int
	inRecovery bool
	recoverSeq uint64 // recovery ends when sndUna passes this

	// SACK machinery (RFC 2018/6675, simplified): the scoreboard holds
	// ranges the peer selectively acknowledged; retxMark holds ranges
	// retransmitted in the current recovery episode; rtoLoss marks the
	// post-timeout state in which every unsacked byte below sndNxt counts
	// as lost rather than in flight.
	scoreboard []interval
	retxMark   []interval
	rtoLoss    bool

	srtt, rttvar float64 // seconds; srtt==0 means no sample yet
	rto          units.Duration
	rtoBackoff   int
	rtxTimer     *sim.Timer

	// CUBIC growth state (used only by the Cubic variants).
	cubic cubicState

	// Classic-ECN / DCTCP sender state.
	cwrPending    bool
	ecnRecoverSeq uint64 // one reaction per window
	alpha         float64
	obsAcked      uint64
	obsMarked     uint64
	obsWindowEnd  uint64

	closeQueued bool
	finSeq      uint64 // sequence the FIN occupies, valid once queued
	finSent     bool
	tsqWaiting  bool // parked on the stack's TSQ queue

	// Handshake.
	synRetries int
	synTimer   *sim.Timer

	// ---- Receiver ----
	rcvNxt      uint64
	ooo         []interval // sorted, non-overlapping, above rcvNxt
	delackCount int
	delackTimer *sim.Timer
	lastTSVal   units.Time
	eceLatched  bool // classic ECN receiver
	ceState     bool // DCTCP receiver CE state machine
	finRcvdSeq  uint64
	finRcvd     bool
	eofSignaled bool
	delivered   units.ByteSize

	// ---- Application callbacks (all optional) ----
	OnConnected func()
	OnDeliver   func(n int) // newly in-order payload bytes at the receiver
	OnEOF       func()      // peer's FIN delivered in order
	OnClosed    func()      // our FIN acknowledged
	OnError     func(err error)
}

func newConn(s *Stack, local, remote packet.Addr, active bool) *Conn {
	cfg := s.cfg
	c := &Conn{
		stack:    s,
		cfg:      cfg,
		local:    local,
		remote:   remote,
		active:   active,
		state:    StateClosed,
		cwnd:     float64(cfg.InitialCwnd * cfg.MSS),
		ssthresh: float64(cfg.RcvWnd), // effectively "infinite" start
		rto:      cfg.InitialRTO,
		alpha:    1, // DCTCP: conservative start per RFC 8257
		sndUna:   0,
		sndNxt:   0,
		rcvNxt:   0,
		appEnd:   1, // data begins at sequence 1 (SYN occupies 0)
	}
	c.rtxTimer = sim.NewTimer(s.eng, c.onRTO)
	c.delackTimer = sim.NewTimer(s.eng, c.flushDelayedAck)
	c.synTimer = sim.NewTimer(s.eng, c.onSynTimeout)
	return c
}

// LocalAddr returns the connection's local address.
func (c *Conn) LocalAddr() packet.Addr { return c.local }

// RemoteAddr returns the connection's remote address.
func (c *Conn) RemoteAddr() packet.Addr { return c.remote }

// State returns the current state.
func (c *Conn) State() State { return c.state }

// Established reports whether the handshake completed.
func (c *Conn) Established() bool {
	return c.state == StateEstablished || c.state == StateFinSent || c.state == StateDone
}

// Cwnd returns the congestion window in bytes (diagnostics).
func (c *Conn) Cwnd() float64 { return c.cwnd }

// Alpha returns DCTCP's marked-fraction estimate (diagnostics).
func (c *Conn) Alpha() float64 { return c.alpha }

// SRTT returns the smoothed RTT estimate (zero before the first sample).
func (c *Conn) SRTT() units.Duration { return units.Duration(c.srtt * float64(units.Second)) }

// BytesDelivered returns in-order payload delivered to the application.
func (c *Conn) BytesDelivered() units.ByteSize { return c.delivered }

// BytesQueued returns payload bytes the application queued so far.
func (c *Conn) BytesQueued() units.ByteSize { return units.ByteSize(c.appEnd - 1) }

// BytesAcked returns payload bytes acknowledged by the peer.
func (c *Conn) BytesAcked() units.ByteSize {
	acked := int64(c.sndUna) - 1
	if acked < 0 {
		acked = 0
	}
	if c.finSent && c.sndUna > c.finSeq {
		acked-- // don't count the FIN's sequence slot
	}
	return units.ByteSize(acked)
}

// ----------------------------------------------------------------------
// Packet construction

func (c *Conn) newPacket(flags packet.TCPFlags, seq uint64, payload int) *packet.Packet {
	// Pool-allocated: the fabric releases the packet at its drop or final
	// delivery site, so the connection must not hold on to it after Send.
	p := c.stack.host.AllocPacket()
	p.Src = c.local
	p.Dst = c.remote
	p.Seq = seq
	p.Flags = flags
	p.Payload = payload
	p.TTL = 64
	p.TSVal = c.stack.eng.Now()
	if flags.Has(packet.FlagACK) {
		p.Ack = c.rcvNxt
		p.TSEcr = c.lastTSVal
	}
	return p
}

// sendSegment emits a data segment [seq, seq+n) (or a FIN when n==0 and fin
// is set). Data segments are ECT-capable when ECN was negotiated; everything
// else is Non-ECT — the asymmetry at the heart of the paper.
func (c *Conn) sendSegment(seq uint64, n int, fin bool) {
	flags := packet.FlagACK
	if fin {
		flags |= packet.FlagFIN
	}
	p := c.newPacket(flags, seq, n)
	if n > 0 && c.ecnOn {
		p.ECN = packet.ECT0
		if c.cwrPending {
			p.Flags |= packet.FlagCWR
			c.cwrPending = false
		}
	}
	c.stack.stats.SegmentsSent++
	c.stack.stats.BytesSent += units.ByteSize(n)
	c.stack.host.Send(p)
	if !c.rtxTimer.Armed() {
		c.rtxTimer.Reset(c.rto)
	}
}

// sendPureAck emits an immediate acknowledgement. ECE is set from the
// variant's receiver state; pure ACKs are always Non-ECT. When data is
// buffered out of order, SACK blocks describe it.
func (c *Conn) sendPureAck() {
	c.delackCount = 0
	c.delackTimer.Stop()
	p := c.newPacket(packet.FlagACK, c.sndNxt, 0)
	if c.recvECEBit() {
		p.Flags |= packet.FlagECE
		c.stack.stats.EceAcksSent++
	}
	if c.cfg.SACK && len(c.ooo) > 0 {
		n := len(c.ooo)
		if n > c.cfg.MaxSACKBlocks {
			n = c.cfg.MaxSACKBlocks
		}
		// Reuse the pooled packet's SACK capacity from its previous life.
		blocks := p.SACK[:0]
		for i := 0; i < n; i++ {
			blocks = append(blocks, packet.SACKBlock{Start: c.ooo[i].start, End: c.ooo[i].end})
		}
		p.SACK = blocks
	}
	p.Wire = c.cfg.AckWireSize
	c.stack.stats.AcksSent++
	c.stack.host.Send(p)
}

// recvECEBit computes the ECE flag for outgoing ACKs.
func (c *Conn) recvECEBit() bool {
	if !c.ecnOn {
		return false
	}
	if c.cfg.Variant == DCTCP {
		return c.ceState
	}
	return c.eceLatched
}

// ----------------------------------------------------------------------
// Handshake

// startHandshake begins the active open.
func (c *Conn) startHandshake() {
	c.state = StateSynSent
	c.sendSYN()
}

func (c *Conn) sendSYN() {
	flags := packet.FlagSYN
	if c.cfg.Variant.ECNEnabled() {
		// RFC 3168: ECN-setup SYN carries ECE|CWR. This is why the paper's
		// ECE-bit protection mode also shields connection setup.
		flags |= packet.FlagECE | packet.FlagCWR
	}
	p := c.newPacket(flags, 0, 0)
	p.Wire = c.cfg.AckWireSize
	c.stack.host.Send(p)
	d := c.cfg.SynRTO
	for i := 0; i < c.synRetries; i++ {
		d *= 2
	}
	c.synTimer.Reset(d)
}

func (c *Conn) sendSYNACK() {
	flags := packet.FlagSYN | packet.FlagACK
	if c.ecnOn {
		// RFC 3168: ECN-setup SYN-ACK carries ECE only.
		flags |= packet.FlagECE
	}
	p := c.newPacket(flags, 0, 0)
	p.Wire = c.cfg.AckWireSize
	c.stack.host.Send(p)
	d := c.cfg.SynRTO
	for i := 0; i < c.synRetries; i++ {
		d *= 2
	}
	c.synTimer.Reset(d)
}

func (c *Conn) onSynTimeout() {
	c.synRetries++
	c.stack.stats.SynRetries++
	if c.synRetries > c.cfg.MaxSynRetries {
		c.fail(fmt.Errorf("tcp: connection to %v timed out in %v", c.remote, c.state))
		return
	}
	switch c.state {
	case StateSynSent:
		c.sendSYN()
	case StateSynRcvd:
		c.sendSYNACK()
	}
}

func (c *Conn) fail(err error) {
	c.state = StateClosed
	c.teardownTimers()
	c.stack.stats.ConnsFailed++
	c.stack.remove(c)
	if c.OnError != nil {
		c.OnError(err)
	}
}

func (c *Conn) teardownTimers() {
	c.rtxTimer.Stop()
	c.delackTimer.Stop()
	c.synTimer.Stop()
}

func (c *Conn) becomeEstablished() {
	c.state = StateEstablished
	c.synTimer.Stop()
	c.stack.stats.ConnsEstablished++
	if c.OnConnected != nil {
		c.OnConnected()
	}
	c.trySend()
}

// ----------------------------------------------------------------------
// Application API

// Send queues n more payload bytes for transmission. Only byte counts are
// modelled; there is no payload content.
func (c *Conn) Send(n int) {
	if n <= 0 {
		return
	}
	if c.closeQueued {
		panic("tcp: Send after Close")
	}
	c.appEnd += uint64(n)
	if c.Established() {
		c.trySend()
	}
}

// Close queues an orderly FIN after all queued data.
func (c *Conn) Close() {
	if c.closeQueued {
		return
	}
	c.closeQueued = true
	c.finSeq = c.appEnd
	if c.Established() {
		c.trySend()
	}
}

// ----------------------------------------------------------------------
// Sender

// flightSize returns unacknowledged bytes in the network.
func (c *Conn) flightSize() uint64 { return c.sndNxt - c.sndUna }

// window returns the current usable send window in bytes.
func (c *Conn) window() float64 {
	w := c.cwnd
	if rw := float64(c.cfg.RcvWnd); rw < w {
		w = rw
	}
	return w
}

// highestSacked returns the top of the scoreboard (or sndUna if empty).
func (c *Conn) highestSacked() uint64 {
	if len(c.scoreboard) == 0 {
		return c.sndUna
	}
	return c.scoreboard[len(c.scoreboard)-1].end
}

// lossUpper returns the sequence below which unsacked bytes count as lost.
func (c *Conn) lossUpper() uint64 {
	if c.rtoLoss {
		return c.sndNxt
	}
	if c.inRecovery && c.cfg.SACK {
		return c.highestSacked()
	}
	return c.sndUna // no loss assumed outside recovery
}

// pipe estimates bytes actually in the network (RFC 6675 Pipe, simplified):
// flight minus selectively-acked bytes minus deemed-lost bytes, plus
// this-episode retransmissions (which are within the lost region).
func (c *Conn) pipe() float64 {
	flight := float64(c.flightSize())
	if !c.cfg.SACK {
		return flight
	}
	sacked := float64(rangeBytes(c.scoreboard, c.sndUna, c.sndNxt))
	upper := c.lossUpper()
	lost := 0.0
	if upper > c.sndUna {
		holeBytes := float64(upper-c.sndUna) - float64(rangeBytes(c.scoreboard, c.sndUna, upper))
		retx := float64(rangeBytes(c.retxMark, c.sndUna, upper))
		lost = holeBytes - retx
		if lost < 0 {
			lost = 0
		}
	}
	p := flight - sacked - lost
	if p < 0 {
		p = 0
	}
	return p
}

// nextHole finds the lowest unsacked, not-yet-retransmitted segment below
// the loss boundary. ok is false when no hole remains.
func (c *Conn) nextHole() (start, end uint64, fin, ok bool) {
	upper := c.lossUpper()
	pos := c.sndUna
	for pos < upper {
		moved := false
		if e, in := containing(c.scoreboard, pos); in {
			pos, moved = e, true
		}
		if e, in := containing(c.retxMark, pos); in {
			pos, moved = e, true
		}
		if !moved {
			break
		}
	}
	if pos >= upper {
		return 0, 0, false, false
	}
	if c.finSent && pos == c.finSeq {
		return pos, pos + 1, true, true
	}
	end = pos + uint64(c.cfg.MSS)
	if end > c.appEnd {
		end = c.appEnd
	}
	// Stop at the next sacked/retransmitted range or the loss boundary.
	if nxt := nextRangeStart(c.scoreboard, pos); nxt < end {
		end = nxt
	}
	if nxt := nextRangeStart(c.retxMark, pos); nxt < end {
		end = nxt
	}
	if end > upper {
		end = upper
	}
	if end <= pos {
		return 0, 0, false, false
	}
	return pos, end, false, true
}

// trySend transmits retransmissions (during loss recovery) and new segments,
// bounded by cwnd-vs-pipe.
func (c *Conn) trySend() {
	if !c.Established() || c.state == StateDone {
		return
	}
	if c.sndNxt == 0 {
		c.sndNxt = 1 // SYN consumed sequence 0
	}
	for {
		budget := c.window() - c.pipe()
		if budget < 1 {
			return
		}
		// TSQ: don't flood the local NIC queue; resume when it drains.
		if c.cfg.TSQLimit > 0 {
			if up := c.stack.host.Uplink(); up != nil && up.Queue().BytesQueued() >= c.cfg.TSQLimit {
				c.stack.tsqBlock(c)
				return
			}
		}
		// 1. Fill holes first while recovering (SACK mode only; legacy
		// NewReno retransmits via explicit calls).
		if c.cfg.SACK && (c.inRecovery || c.rtoLoss) {
			if start, end, fin, ok := c.nextHole(); ok {
				if fin {
					c.sendSegment(start, 0, true)
				} else {
					c.sendSegment(start, int(end-start), false)
				}
				c.retxMark = mergeRange(c.retxMark, interval{start, end})
				if c.rtoLoss {
					c.stack.stats.RTORetransmits++
				} else {
					c.stack.stats.FastRetransmits++
				}
				continue
			}
		}
		// 2. New data.
		if c.sndNxt < c.appEnd {
			n := int(c.appEnd - c.sndNxt)
			if n > c.cfg.MSS {
				n = c.cfg.MSS
			}
			if float64(n) > budget && c.flightSize() > 0 {
				return // don't emit runt segments while data is in flight
			}
			c.sendSegment(c.sndNxt, n, false)
			c.sndNxt += uint64(n)
			continue
		}
		// 3. FIN.
		if c.closeQueued && !c.finSent && c.sndNxt == c.finSeq {
			c.sendSegment(c.sndNxt, 0, true)
			c.finSent = true
			c.sndNxt++
			if c.state == StateEstablished {
				c.state = StateFinSent
			}
			return
		}
		return
	}
}

// retransmit resends the segment starting at sndUna (legacy NewReno path and
// the non-SACK RTO path).
func (c *Conn) retransmit() {
	seq := c.sndUna
	if c.finSent && seq == c.finSeq {
		c.sendSegment(seq, 0, true)
		return
	}
	end := seq + uint64(c.cfg.MSS)
	if lim := c.appEnd; end > lim {
		end = lim
	}
	if end <= seq {
		return // nothing outstanding but the timer raced; ignore
	}
	c.sendSegment(seq, int(end-seq), false)
}

// enterFastRecovery begins SACK-based loss recovery.
func (c *Conn) enterFastRecovery() {
	mss := float64(c.cfg.MSS)
	var nw float64
	if c.cfg.Variant.IsCubic() {
		nw = c.cubicOnReduction()
	} else {
		nw = float64(c.flightSize()) / 2
		if nw < 2*mss {
			nw = 2 * mss
		}
	}
	c.ssthresh = nw
	c.cwnd = nw
	c.inRecovery = true
	c.recoverSeq = c.sndNxt
	c.retxMark = nil
	c.trySend()
}

// onRTO fires when the retransmission timer expires: collapse the window,
// deem everything unsacked lost, and rebuild from the oldest hole. This is
// the catastrophic event the paper attributes to whole-window ACK loss.
func (c *Conn) onRTO() {
	if c.flightSize() == 0 {
		return
	}
	c.stack.stats.RTOEvents++
	mss := float64(c.cfg.MSS)
	if c.cfg.Variant.IsCubic() {
		c.ssthresh = c.cubicOnReduction()
	} else {
		half := float64(c.flightSize()) / 2
		if half < 2*mss {
			half = 2 * mss
		}
		c.ssthresh = half
	}
	c.cwnd = mss
	c.dupAcks = 0
	c.inRecovery = false
	c.rtoLoss = true
	c.recoverSeq = c.sndNxt
	c.retxMark = nil
	c.rtoBackoff++
	c.rto *= 2
	if c.rto > c.cfg.MaxRTO {
		c.rto = c.cfg.MaxRTO
	}
	if c.cfg.SACK {
		c.trySend() // fills the first hole(s) under the 1-MSS window
	} else {
		c.stack.stats.RTORetransmits++
		c.retransmit()
	}
	c.rtxTimer.Reset(c.rto)
}

// updateRTT folds a new sample into SRTT/RTTVAR (RFC 6298).
func (c *Conn) updateRTT(sample units.Duration) {
	if sample <= 0 {
		return
	}
	s := sample.Seconds()
	if c.srtt == 0 {
		c.srtt = s
		c.rttvar = s / 2
	} else {
		diff := c.srtt - s
		if diff < 0 {
			diff = -diff
		}
		c.rttvar = 0.75*c.rttvar + 0.25*diff
		c.srtt = 0.875*c.srtt + 0.125*s
	}
	rto := units.Duration((c.srtt + 4*c.rttvar) * float64(units.Second))
	if rto < c.cfg.MinRTO {
		rto = c.cfg.MinRTO
	}
	if rto > c.cfg.MaxRTO {
		rto = c.cfg.MaxRTO
	}
	c.rto = rto
	c.rtoBackoff = 0
}

// onAckSegment processes the acknowledgement fields of an arriving segment.
func (c *Conn) onAckSegment(p *packet.Packet) {
	ack := p.Ack
	if ack > c.sndNxt {
		return // acks data we never sent; ignore
	}
	// Fold SACK blocks into the scoreboard before any decision.
	if c.cfg.SACK && len(p.SACK) > 0 {
		for _, b := range p.SACK {
			if b.End > b.Start && b.End <= c.sndNxt && b.End > c.sndUna {
				start := b.Start
				if start < c.sndUna {
					start = c.sndUna
				}
				c.scoreboard = mergeRange(c.scoreboard, interval{start, b.End})
			}
		}
	}
	switch {
	case ack > c.sndUna:
		c.onNewAck(p, ack)
	case ack == c.sndUna && p.Payload == 0 && !p.Flags.HasAny(packet.FlagSYN|packet.FlagFIN) && c.flightSize() > 0:
		c.onDupAck()
	}
	// SACK-triggered recovery: enough selectively-acked bytes above a hole
	// imply loss even before three classic duplicate ACKs accumulate.
	if c.cfg.SACK && !c.inRecovery && !c.rtoLoss &&
		rangeBytes(c.scoreboard, c.sndUna, c.sndNxt) >= uint64(3*c.cfg.MSS) {
		c.enterFastRecovery()
	}
	// ECN reactions ride on any ACK, new or duplicate.
	if p.Flags.Has(packet.FlagECE) && c.ecnOn {
		c.onECE(ack)
	}
	c.trySend()
}

func (c *Conn) onNewAck(p *packet.Packet, ack uint64) {
	newly := ack - c.sndUna
	mss := float64(c.cfg.MSS)

	// DCTCP per-window marked-byte accounting.
	if c.cfg.Variant == DCTCP && c.ecnOn {
		c.obsAcked += newly
		if p.Flags.Has(packet.FlagECE) {
			c.obsMarked += newly
		}
		if ack >= c.obsWindowEnd {
			frac := 0.0
			if c.obsAcked > 0 {
				frac = float64(c.obsMarked) / float64(c.obsAcked)
			}
			c.alpha = (1-c.cfg.DCTCPg)*c.alpha + c.cfg.DCTCPg*frac
			c.obsAcked, c.obsMarked = 0, 0
			c.obsWindowEnd = c.sndNxt
		}
	}

	if p.TSEcr > 0 {
		c.updateRTT(c.stack.eng.Now().Sub(p.TSEcr))
	}

	recovering := c.inRecovery || c.rtoLoss
	switch {
	case recovering && ack >= c.recoverSeq:
		// Full acknowledgement: leave recovery.
		if c.inRecovery {
			c.cwnd = c.ssthresh
		}
		c.inRecovery = false
		c.rtoLoss = false
		c.retxMark = nil
		c.dupAcks = 0
	case recovering && c.cfg.SACK:
		// Partial ACK with SACK: the pipe shrinks; trySend (from the
		// caller) fills the next hole. During post-RTO slow start the
		// window still grows.
		if c.rtoLoss && c.cwnd < c.ssthresh {
			inc := float64(newly)
			if inc > 2*mss {
				inc = 2 * mss
			}
			c.cwnd += inc
		}
	case recovering:
		// NewReno partial ACK (no SACK): retransmit the next hole, deflate.
		c.sndUna = ack
		c.retxAdvance(ack)
		c.retransmit()
		c.cwnd -= float64(newly)
		if c.cwnd < mss {
			c.cwnd = mss
		}
		c.cwnd += mss
		c.rtxTimer.Reset(c.rto)
		return
	default:
		if c.cwnd < c.ssthresh {
			// Slow start with ABC: up to two MSS per delayed ACK.
			inc := float64(newly)
			if inc > 2*mss {
				inc = 2 * mss
			}
			c.cwnd += inc
		} else if c.cfg.Variant.IsCubic() {
			c.cubicGrowth(newly)
		} else {
			c.cwnd += mss * mss / c.cwnd
		}
		c.dupAcks = 0
	}

	c.sndUna = ack
	c.retxAdvance(ack)
	if c.flightSize() > 0 {
		c.rtxTimer.Reset(c.rto)
	} else {
		c.rtxTimer.Stop()
	}

	if c.finSent && c.sndUna > c.finSeq && c.state == StateFinSent {
		c.state = StateDone
		c.rtxTimer.Stop()
		if c.OnClosed != nil {
			c.OnClosed()
		}
	}
}

func (c *Conn) onDupAck() {
	if c.cfg.SACK {
		if c.inRecovery || c.rtoLoss {
			return // pipe accounting drives (re)transmission
		}
		c.dupAcks++
		if c.dupAcks >= 3 {
			c.enterFastRecovery()
		}
		return
	}
	// Legacy NewReno without SACK.
	if c.inRecovery {
		c.cwnd += float64(c.cfg.MSS) // inflate during recovery
		return
	}
	c.dupAcks++
	if c.dupAcks < 3 {
		return
	}
	mss := float64(c.cfg.MSS)
	half := float64(c.flightSize()) / 2
	if half < 2*mss {
		half = 2 * mss
	}
	c.ssthresh = half
	c.cwnd = c.ssthresh + 3*mss
	c.inRecovery = true
	c.recoverSeq = c.sndNxt
	c.stack.stats.FastRetransmits++
	c.retransmit()
	c.rtxTimer.Reset(c.rto)
}

// retxAdvance trims sender-side range bookkeeping below the new cumulative
// acknowledgement.
func (c *Conn) retxAdvance(ack uint64) {
	c.scoreboard = trimBelow(c.scoreboard, ack)
	c.retxMark = trimBelow(c.retxMark, ack)
}

// onECE reacts to a congestion echo: classic ECN halves once per window;
// DCTCP cuts proportionally to alpha once per window.
func (c *Conn) onECE(ack uint64) {
	if c.sndUna <= c.ecnRecoverSeq && c.ecnRecoverSeq > 0 {
		return // already reacted this window
	}
	mss := float64(c.cfg.MSS)
	switch c.cfg.Variant {
	case RenoECN:
		half := c.cwnd / 2
		if half < 2*mss {
			half = 2 * mss
		}
		c.ssthresh = half
		c.cwnd = half
	case CubicECN:
		nw := c.cubicOnReduction()
		c.ssthresh = nw
		c.cwnd = nw
	case DCTCP:
		c.cwnd = c.cwnd * (1 - c.alpha/2)
		if c.cwnd < 2*mss {
			c.cwnd = 2 * mss
		}
		c.ssthresh = c.cwnd
	default:
		return
	}
	c.stack.stats.CwndCuts++
	c.cwrPending = true
	c.ecnRecoverSeq = c.sndNxt
}

// ----------------------------------------------------------------------
// Receiver

// deliver is the stack's entry point for a packet addressed to this conn.
func (c *Conn) deliver(p *packet.Packet) {
	switch c.state {
	case StateClosed:
		if p.Flags.Has(packet.FlagSYN) && !p.Flags.Has(packet.FlagACK) && !c.active {
			// Passive open.
			c.rcvNxt = p.Seq + 1
			c.lastTSVal = p.TSVal
			c.ecnOn = c.cfg.Variant.ECNEnabled() && p.Flags.Has(packet.FlagECE|packet.FlagCWR)
			c.state = StateSynRcvd
			c.sndNxt = 1
			c.sendSYNACK()
		}
		return
	case StateSynSent:
		if p.Flags.Has(packet.FlagSYN | packet.FlagACK) {
			c.rcvNxt = p.Seq + 1
			c.lastTSVal = p.TSVal
			c.ecnOn = c.cfg.Variant.ECNEnabled() && p.Flags.Has(packet.FlagECE) && !p.Flags.Has(packet.FlagCWR)
			c.sndUna = 1
			c.sndNxt = 1
			if p.TSEcr > 0 {
				c.updateRTT(c.stack.eng.Now().Sub(p.TSEcr))
			}
			c.becomeEstablished()
			// Complete the handshake. If data is already queued trySend has
			// begun; ensure at least one ACK crosses.
			c.sendPureAck()
		}
		return
	case StateSynRcvd:
		if p.Flags.Has(packet.FlagSYN) && !p.Flags.Has(packet.FlagACK) {
			c.sendSYNACK() // duplicate SYN: our SYN-ACK was lost
			return
		}
		if p.Flags.Has(packet.FlagACK) && p.Ack >= 1 {
			c.sndUna = p.Ack
			if p.TSEcr > 0 {
				c.updateRTT(c.stack.eng.Now().Sub(p.TSEcr))
			}
			c.becomeEstablished()
			// Fall through: the establishing segment may carry data.
		} else {
			return
		}
	}

	if p.Flags.Has(packet.FlagSYN|packet.FlagACK) && c.active {
		// Duplicate SYN-ACK: our handshake ACK was lost. Re-ack.
		c.sendPureAck()
		return
	}

	if p.Flags.Has(packet.FlagACK) {
		c.onAckSegment(p)
	}
	if p.Payload > 0 || p.Flags.Has(packet.FlagFIN) {
		c.onDataSegment(p)
	}
}

// onDataSegment runs the receive path: CE accounting, reassembly, in-order
// delivery, FIN handling and ACK generation.
func (c *Conn) onDataSegment(p *packet.Packet) {
	// ECN receiver state.
	if c.ecnOn && p.Payload > 0 {
		ce := p.ECN == packet.CE
		if ce {
			p.SawCE = true
		}
		if c.cfg.Variant == DCTCP {
			// RFC 8257 state machine: on a CE-state change, immediately ACK
			// previously received data with the *old* ECE value.
			if ce != c.ceState {
				if c.delackCount > 0 {
					c.sendPureAck()
				}
				c.ceState = ce
			}
		} else {
			if ce {
				c.eceLatched = true
			}
			if p.Flags.Has(packet.FlagCWR) {
				c.eceLatched = false
			}
		}
	}

	seq, end := p.Seq, p.Seq+uint64(p.Payload)
	if p.Flags.Has(packet.FlagFIN) {
		c.finRcvd = true
		c.finRcvdSeq = end // FIN occupies the sequence slot after payload
	}

	advanced := false
	switch {
	case end <= c.rcvNxt && !(p.Flags.Has(packet.FlagFIN) && c.rcvNxt == c.finRcvdSeq):
		// Entirely duplicate data: re-ack immediately so a retransmitting
		// peer converges.
		c.sendPureAck()
		return
	case seq > c.rcvNxt:
		// Out of order: buffer and send an immediate duplicate ACK.
		c.insertOOO(interval{seq, end})
		c.sendPureAck()
		return
	default:
		// In order (possibly with overlap).
		if end > c.rcvNxt {
			c.deliverBytes(int(end - c.rcvNxt))
			c.rcvNxt = end
			advanced = true
		}
		c.lastTSVal = p.TSVal
		// Pull any now-contiguous buffered intervals.
		for len(c.ooo) > 0 && c.ooo[0].start <= c.rcvNxt {
			if c.ooo[0].end > c.rcvNxt {
				c.deliverBytes(int(c.ooo[0].end - c.rcvNxt))
				c.rcvNxt = c.ooo[0].end
			}
			c.ooo = c.ooo[1:]
		}
	}

	// Consume an in-order FIN.
	if c.finRcvd && c.rcvNxt == c.finRcvdSeq && !c.eofSignaled {
		c.rcvNxt++ // FIN consumes one sequence number
		c.eofSignaled = true
		c.sendPureAck()
		if c.OnEOF != nil {
			c.OnEOF()
		}
		return
	}

	if !advanced {
		c.sendPureAck()
		return
	}

	// ACK policy: delayed ACK unless disabled or quota reached.
	if !c.cfg.DelayedAck {
		c.sendPureAck()
		return
	}
	c.delackCount++
	if c.delackCount >= c.cfg.DelAckSegments {
		c.sendPureAck()
		return
	}
	if !c.delackTimer.Armed() {
		c.delackTimer.Reset(c.cfg.DelAckTimeout)
	}
}

func (c *Conn) flushDelayedAck() {
	if c.delackCount > 0 {
		c.sendPureAck()
	}
}

func (c *Conn) deliverBytes(n int) {
	c.delivered += units.ByteSize(n)
	c.stack.stats.BytesDelivered += units.ByteSize(n)
	if c.OnDeliver != nil {
		c.OnDeliver(n)
	}
}

// insertOOO merges an interval into the sorted out-of-order list.
func (c *Conn) insertOOO(iv interval) { c.ooo = mergeRange(c.ooo, iv) }

// ----------------------------------------------------------------------
// Sorted disjoint interval lists (scoreboard, retransmit marks, reassembly)

// mergeRange inserts iv into the sorted disjoint list, coalescing overlaps.
func mergeRange(list []interval, iv interval) []interval {
	if iv.end <= iv.start {
		return list
	}
	i := 0
	for i < len(list) && list[i].start < iv.start {
		i++
	}
	list = append(list, interval{})
	copy(list[i+1:], list[i:])
	list[i] = iv
	merged := list[:1]
	for _, nxt := range list[1:] {
		last := &merged[len(merged)-1]
		if nxt.start <= last.end {
			if nxt.end > last.end {
				last.end = nxt.end
			}
		} else {
			merged = append(merged, nxt)
		}
	}
	return merged
}

// trimBelow removes everything under seq from the sorted list.
func trimBelow(list []interval, seq uint64) []interval {
	out := list[:0]
	for _, iv := range list {
		if iv.end <= seq {
			continue
		}
		if iv.start < seq {
			iv.start = seq
		}
		out = append(out, iv)
	}
	return out
}

// rangeBytes counts bytes of the list that fall within [lo, hi).
func rangeBytes(list []interval, lo, hi uint64) uint64 {
	var total uint64
	for _, iv := range list {
		s, e := iv.start, iv.end
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		if e > s {
			total += e - s
		}
	}
	return total
}

// containing returns the end of the list interval containing pos, if any.
func containing(list []interval, pos uint64) (end uint64, ok bool) {
	for _, iv := range list {
		if iv.start <= pos && pos < iv.end {
			return iv.end, true
		}
		if iv.start > pos {
			break
		}
	}
	return 0, false
}

// nextRangeStart returns the start of the first interval beginning after
// pos, or the maximum uint64 if none.
func nextRangeStart(list []interval, pos uint64) uint64 {
	for _, iv := range list {
		if iv.start > pos {
			return iv.start
		}
	}
	return ^uint64(0)
}
