package tcp

import (
	"testing"
	"testing/quick"
)

func ivs(pairs ...uint64) []interval {
	if len(pairs)%2 != 0 {
		panic("ivs needs pairs")
	}
	var out []interval
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, interval{pairs[i], pairs[i+1]})
	}
	return out
}

func equalIvs(a, b []interval) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMergeRangeDisjoint(t *testing.T) {
	l := mergeRange(nil, interval{10, 20})
	l = mergeRange(l, interval{30, 40})
	l = mergeRange(l, interval{0, 5})
	if !equalIvs(l, ivs(0, 5, 10, 20, 30, 40)) {
		t.Errorf("got %v", l)
	}
}

func TestMergeRangeOverlap(t *testing.T) {
	tests := []struct {
		name string
		init []interval
		add  interval
		want []interval
	}{
		{"extend right", ivs(10, 20), interval{15, 25}, ivs(10, 25)},
		{"extend left", ivs(10, 20), interval{5, 15}, ivs(5, 20)},
		{"bridge two", ivs(10, 20, 30, 40), interval{15, 35}, ivs(10, 40)},
		{"swallow", ivs(10, 20), interval{5, 25}, ivs(5, 25)},
		{"inside", ivs(10, 20), interval{12, 15}, ivs(10, 20)},
		{"touching", ivs(10, 20), interval{20, 30}, ivs(10, 30)},
		{"empty ignored", ivs(10, 20), interval{5, 5}, ivs(10, 20)},
	}
	for _, tt := range tests {
		got := mergeRange(append([]interval(nil), tt.init...), tt.add)
		if !equalIvs(got, tt.want) {
			t.Errorf("%s: got %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestMergeRangeMatchesReferenceSet(t *testing.T) {
	// Property: merging random small intervals yields exactly the set
	// union, checked byte by byte against a boolean reference.
	f := func(raw []uint8) bool {
		var list []interval
		var ref [300]bool
		for i := 0; i+1 < len(raw); i += 2 {
			start := uint64(raw[i])
			end := start + uint64(raw[i+1]%16)
			list = mergeRange(list, interval{start, end})
			for b := start; b < end && b < 300; b++ {
				ref[b] = true
			}
		}
		// Check membership agreement.
		for b := uint64(0); b < 300; b++ {
			in := false
			for _, iv := range list {
				if iv.start <= b && b < iv.end {
					in = true
					break
				}
			}
			if in != ref[b] {
				return false
			}
		}
		// Check sorted disjoint non-touching invariant.
		for i := 1; i < len(list); i++ {
			if list[i-1].end >= list[i].start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTrimBelow(t *testing.T) {
	l := ivs(10, 20, 30, 40)
	if got := trimBelow(append([]interval(nil), l...), 15); !equalIvs(got, ivs(15, 20, 30, 40)) {
		t.Errorf("mid trim: %v", got)
	}
	if got := trimBelow(append([]interval(nil), l...), 25); !equalIvs(got, ivs(30, 40)) {
		t.Errorf("gap trim: %v", got)
	}
	if got := trimBelow(append([]interval(nil), l...), 100); len(got) != 0 {
		t.Errorf("full trim: %v", got)
	}
	if got := trimBelow(append([]interval(nil), l...), 0); !equalIvs(got, l) {
		t.Errorf("no-op trim: %v", got)
	}
}

func TestRangeBytes(t *testing.T) {
	l := ivs(10, 20, 30, 40)
	tests := []struct {
		lo, hi, want uint64
	}{
		{0, 100, 20},
		{15, 35, 10},
		{20, 30, 0},
		{0, 10, 0},
		{12, 18, 6},
	}
	for _, tt := range tests {
		if got := rangeBytes(l, tt.lo, tt.hi); got != tt.want {
			t.Errorf("rangeBytes(%d,%d) = %d, want %d", tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestContaining(t *testing.T) {
	l := ivs(10, 20, 30, 40)
	if end, ok := containing(l, 15); !ok || end != 20 {
		t.Errorf("containing(15) = %d,%v", end, ok)
	}
	if _, ok := containing(l, 25); ok {
		t.Error("containing(25) should miss")
	}
	if _, ok := containing(l, 20); ok {
		t.Error("containing(20) should miss (half-open)")
	}
	if end, ok := containing(l, 10); !ok || end != 20 {
		t.Error("containing(10) should hit")
	}
}

func TestNextRangeStart(t *testing.T) {
	l := ivs(10, 20, 30, 40)
	if got := nextRangeStart(l, 5); got != 10 {
		t.Errorf("next(5) = %d", got)
	}
	if got := nextRangeStart(l, 10); got != 30 {
		t.Errorf("next(10) = %d", got)
	}
	if got := nextRangeStart(l, 35); got != ^uint64(0) {
		t.Errorf("next(35) = %d", got)
	}
}
