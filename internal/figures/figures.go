// Package figures regenerates every table and figure of the paper from
// simulation sweeps, as plain-text tables whose series mirror the paper's
// plots. See EXPERIMENTS.md for the paper-vs-measured record.
package figures

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/mapred"
	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/tcp"
	"repro/internal/units"
)

// SeriesOrder fixes the series ordering in figure tables.
var SeriesOrder = []string{
	"ecn-default", "ecn-ece-bit", "ecn-ack+syn",
	"dctcp-default", "dctcp-ece-bit", "dctcp-ack+syn",
	"ecn-simplemark", "dctcp-simplemark",
}

// TableI renders the paper's Table I (ECN codepoints on the TCP header)
// directly from the packet model.
func TableI() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE I — ECN codepoints on TCP header\n")
	fmt.Fprintf(&b, "%-10s %-6s %s\n", "Codepoint", "Name", "Description")
	fmt.Fprintf(&b, "%-10s %-6s %s\n", "01", packet.FlagECE.String(), "ECN-Echo flag")
	fmt.Fprintf(&b, "%-10s %-6s %s\n", "10", packet.FlagCWR.String(), "Congestion Window Reduced")
	return b.String()
}

// TableII renders the paper's Table II (ECN codepoints on the IP header).
func TableII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE II — ECN codepoints on IP header\n")
	fmt.Fprintf(&b, "%-10s %-9s %s\n", "Codepoint", "Name", "Description")
	rows := []struct {
		bits string
		e    packet.ECN
		desc string
	}{
		{"00", packet.NotECT, "Non ECN-Capable Transport"},
		{"10", packet.ECT0, "ECN Capable Transport"},
		{"01", packet.ECT1, "ECN Capable Transport"},
		{"11", packet.CE, "Congestion Encountered"},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-9s %s\n", r.bits, r.e.String(), r.desc)
	}
	return b.String()
}

// Metric selects which of the paper's three quantities a figure plots.
type Metric uint8

// Figure metrics.
const (
	MetricRuntime    Metric = iota // Figure 2
	MetricThroughput               // Figure 3
	MetricLatency                  // Figure 4
)

// name returns the figure family name.
func (m Metric) name() string {
	switch m {
	case MetricRuntime:
		return "Hadoop Runtime"
	case MetricThroughput:
		return "Cluster Throughput"
	case MetricLatency:
		return "Network Latency"
	}
	return "?"
}

// normalized extracts the normalized metric value for one run.
func normalized(s *experiment.Sweep, m Metric, r experiment.Result) float64 {
	switch m {
	case MetricRuntime:
		return s.NormalizedRuntime(r)
	case MetricThroughput:
		return s.NormalizedThroughput(r)
	case MetricLatency:
		return s.NormalizedLatency(r)
	}
	return 0
}

// RenderFigure renders one sub-figure (metric x buffer depth) from an
// executed sweep, in the paper's normalization. The dashed-line reference the
// paper draws on deep-buffer plots is included as a footer.
func RenderFigure(s *experiment.Sweep, m Metric, buf cluster.BufferDepth, figNo string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. %s — %s (%s buffers)", figNo, m.name(), buf)
	switch m {
	case MetricRuntime, MetricThroughput:
		fmt.Fprintf(&b, " — normalized to DropTail/shallow\n")
	case MetricLatency:
		fmt.Fprintf(&b, " — normalized to DropTail/%s\n", buf)
	}
	fmt.Fprintf(&b, "%-18s", "target delay")
	for _, d := range s.TargetDelays {
		fmt.Fprintf(&b, "%9s", d.String())
	}
	fmt.Fprintln(&b)
	for _, label := range SeriesOrder {
		series, ok := s.Series[buf][label]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-18s", label)
		for _, r := range series {
			fmt.Fprintf(&b, "%9.3f", normalized(s, m, r))
		}
		fmt.Fprintln(&b)
	}
	// Reference lines.
	switch {
	case m == MetricRuntime && buf == cluster.Deep:
		fmt.Fprintf(&b, "(dashed) droptail/deep runtime: %.3f\n",
			s.NormalizedRuntime(s.DropTail[cluster.Deep]))
	case m == MetricThroughput && buf == cluster.Deep:
		fmt.Fprintf(&b, "(dashed) droptail/deep throughput: %.3f\n",
			s.NormalizedThroughput(s.DropTail[cluster.Deep]))
	case m == MetricLatency && buf == cluster.Deep:
		ratio := float64(s.DropTail[cluster.Shallow].MeanLatency) /
			float64(s.DropTail[cluster.Deep].MeanLatency)
		fmt.Fprintf(&b, "(dashed) droptail/shallow latency vs droptail/deep: %.3f\n", ratio)
	}
	return b.String()
}

// Headline computes the Section IV / VI headline numbers: SimpleMark's
// throughput gain over DropTail and its latency reduction.
type HeadlineResult struct {
	ThroughputGain   float64 // simplemark vs droptail (same buffer), >1 is a boost
	LatencyReduction float64 // 1 - normalized latency, paper claims ~0.85 overall
	// ShallowReachesDeep compares effective cluster speed via runtime (the
	// paper: runtime is inversely proportional to effective throughput):
	// droptail-deep runtime divided by simplemark-shallow runtime. 1.0
	// means the commodity shallow switch matches the deep-buffer switch.
	ShallowReachesDeep float64
}

// Headline extracts the headline comparisons from an executed sweep at the
// given marking target delay index.
func Headline(s *experiment.Sweep, delayIdx int) HeadlineResult {
	sm := s.Series[cluster.Shallow]["ecn-simplemark"][delayIdx]
	dtShallow := s.DropTail[cluster.Shallow]
	dtDeep := s.DropTail[cluster.Deep]
	var h HeadlineResult
	if dtShallow.ThroughputPerNode > 0 {
		h.ThroughputGain = float64(sm.ThroughputPerNode) / float64(dtShallow.ThroughputPerNode)
	}
	// Latency reduction measured against the bufferbloated deep DropTail,
	// which is the regime the 85% claim addresses.
	deepSM := s.Series[cluster.Deep]["ecn-simplemark"][delayIdx]
	if dtDeep.MeanLatency > 0 {
		h.LatencyReduction = 1 - float64(deepSM.MeanLatency)/float64(dtDeep.MeanLatency)
	}
	if sm.Runtime > 0 {
		h.ShallowReachesDeep = float64(dtDeep.Runtime) / float64(sm.Runtime)
	}
	return h
}

// ----------------------------------------------------------------------
// Figure 1: queue-composition snapshot

// QueueSnapshot is the Figure 1 reproduction: the composition of a switch
// egress queue during the shuffle steady state, plus the drop breakdown that
// tells the paper's story (ECT data marked and kept; non-ECT ACKs dropped).
type QueueSnapshot struct {
	// Samples is the number of queue observations taken.
	Samples int
	// MeanDepth and MaxDepth are in packets.
	MeanDepth, MaxDepth float64
	// MeanECTShare is the average fraction of queued packets that are
	// ECT-capable data.
	MeanECTShare float64
	// MeanACKShare is the average fraction that are non-ECT pure ACKs.
	MeanACKShare float64
	// Drop accounting across the run.
	DataDrops, AckDrops, SynDrops uint64
	AckDropShare                  float64
}

// Figure1 runs a Terasort over RED in default mode (the misbehaving
// configuration) and samples one victim egress queue every interval.
func Figure1(scale experiment.Scale, target units.Duration, interval units.Duration, seed uint64) QueueSnapshot {
	spec := cluster.DefaultSpec()
	spec.Nodes = scale.Nodes
	spec.Queue = cluster.QueueRED
	spec.Buffer = cluster.Shallow
	spec.TargetDelay = target
	spec.Protect = qdisc.ProtectNone
	spec.Transport = tcp.RenoECN
	spec.Seed = seed
	c := cluster.New(spec)

	var snap QueueSnapshot
	port := c.Ports()[0]
	sampler := func() {
		q, ok := port.Queue().(qdisc.Snapshotter)
		if !ok {
			return
		}
		pkts := q.Snapshot()
		if len(pkts) == 0 {
			return
		}
		var ect, ack int
		for _, p := range pkts {
			switch {
			case p.ECN.ECTCapable():
				ect++
			case p.IsPureACK():
				ack++
			}
		}
		n := float64(len(pkts))
		snap.Samples++
		snap.MeanDepth += n
		if n > snap.MaxDepth {
			snap.MaxDepth = n
		}
		snap.MeanECTShare += float64(ect) / n
		snap.MeanACKShare += float64(ack) / n
	}
	// Periodic sampling driven alongside the job.
	var tick func()
	tick = func() {
		sampler()
		c.Engine.After(interval, tick)
	}
	c.Engine.After(interval, tick)

	jobCfg := mapred.TerasortConfig(scale.InputSize, scale.Reducers)
	jobCfg.BlockSize = scale.BlockSize
	c.RunJob(jobCfg)

	if snap.Samples > 0 {
		snap.MeanDepth /= float64(snap.Samples)
		snap.MeanECTShare /= float64(snap.Samples)
		snap.MeanACKShare /= float64(snap.Samples)
	}
	snap.DataDrops = c.Metrics.EarlyDropped.Get(packet.KindData) + c.Metrics.OverflowDropped.Get(packet.KindData)
	snap.AckDrops = c.Metrics.EarlyDropped.Get(packet.KindPureACK) + c.Metrics.OverflowDropped.Get(packet.KindPureACK)
	snap.SynDrops = c.Metrics.EarlyDropped.Get(packet.KindSYN) + c.Metrics.EarlyDropped.Get(packet.KindSYNACK) +
		c.Metrics.OverflowDropped.Get(packet.KindSYN) + c.Metrics.OverflowDropped.Get(packet.KindSYNACK)
	snap.AckDropShare = c.Metrics.AckDropShare()
	return snap
}

// Render formats the snapshot like the paper's Figure 1 caption.
func (q QueueSnapshot) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1 — Typical snapshot of a switch egress queue during shuffle (RED default mode)\n")
	fmt.Fprintf(&b, "samples=%d  mean depth=%.1f pkts  max depth=%.0f pkts\n", q.Samples, q.MeanDepth, q.MaxDepth)
	fmt.Fprintf(&b, "queue composition: %.1f%% ECT data, %.1f%% non-ECT ACKs\n", 100*q.MeanECTShare, 100*q.MeanACKShare)
	fmt.Fprintf(&b, "drops: data=%d acks=%d syn=%d  (ACK share of all drops: %.1f%%)\n",
		q.DataDrops, q.AckDrops, q.SynDrops, 100*q.AckDropShare)
	return b.String()
}

// SortedLabels returns the series labels present in a sweep, in render
// order, for callers that need to iterate.
func SortedLabels(s *experiment.Sweep, buf cluster.BufferDepth) []string {
	var out []string
	for _, l := range SeriesOrder {
		if _, ok := s.Series[buf][l]; ok {
			out = append(out, l)
		}
	}
	sort.Strings(out[len(out):]) // keep fixed order; no-op, documents intent
	return out
}
