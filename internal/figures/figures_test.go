package figures_test

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/figures"
	"repro/internal/units"
)

// TestTableI_TCPHeaderCodepoints regenerates the paper's Table I.
func TestTableI_TCPHeaderCodepoints(t *testing.T) {
	s := figures.TableI()
	for _, want := range []string{"ECE", "CWR", "ECN-Echo", "Congestion Window Reduced", "01", "10"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table I missing %q:\n%s", want, s)
		}
	}
}

// TestTableII_IPHeaderCodepoints regenerates the paper's Table II.
func TestTableII_IPHeaderCodepoints(t *testing.T) {
	s := figures.TableII()
	for _, want := range []string{"Non-ECT", "ECT(0)", "ECT(1)", "CE", "Congestion Encountered", "00", "10", "01", "11"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table II missing %q:\n%s", want, s)
		}
	}
}

// tinySweep executes one small grid, shared across tests (runs are
// deterministic, so sharing cannot couple test outcomes).
var sharedSweep *experiment.Sweep

func tinySweep(t *testing.T) *experiment.Sweep {
	t.Helper()
	if sharedSweep == nil {
		s := experiment.NewSweep(experiment.Scale{
			Nodes: 4, InputSize: 64 * units.MiB, BlockSize: 16 * units.MiB, Reducers: 8,
		}, 1)
		s.TargetDelays = []units.Duration{100 * units.Microsecond, 1 * units.Millisecond}
		s.Execute()
		sharedSweep = s
	}
	return sharedSweep
}

func TestRenderedFiguresContainAllSeries(t *testing.T) {
	s := tinySweep(t)
	for _, m := range []figures.Metric{figures.MetricRuntime, figures.MetricThroughput, figures.MetricLatency} {
		for _, buf := range []cluster.BufferDepth{cluster.Shallow, cluster.Deep} {
			out := figures.RenderFigure(s, m, buf, "x")
			for _, label := range figures.SeriesOrder {
				if !strings.Contains(out, label) {
					t.Errorf("figure %v/%v missing series %q", m, buf, label)
				}
			}
			if !strings.Contains(out, "100µs") || !strings.Contains(out, "1ms") {
				t.Errorf("figure %v/%v missing x-axis labels:\n%s", m, buf, out)
			}
		}
	}
}

func TestDeepFiguresCarryDashedReference(t *testing.T) {
	s := tinySweep(t)
	r := figures.RenderFigure(s, figures.MetricRuntime, cluster.Deep, "2b")
	if !strings.Contains(r, "dashed") {
		t.Error("deep runtime figure missing the droptail-deep dashed reference")
	}
	l := figures.RenderFigure(s, figures.MetricLatency, cluster.Deep, "4b")
	if !strings.Contains(l, "droptail/shallow latency") {
		t.Error("deep latency figure missing the shallow-droptail reference")
	}
	sh := figures.RenderFigure(s, figures.MetricRuntime, cluster.Shallow, "2a")
	if strings.Contains(sh, "dashed") {
		t.Error("shallow figure should not carry the deep reference line")
	}
}

func TestHeadlineComputation(t *testing.T) {
	s := tinySweep(t)
	h := figures.Headline(s, 0)
	if h.ThroughputGain <= 0 {
		t.Error("throughput gain not computed")
	}
	if h.LatencyReduction <= -1 || h.LatencyReduction >= 1 {
		t.Errorf("latency reduction %.2f out of plausible range", h.LatencyReduction)
	}
	if h.ShallowReachesDeep <= 0 {
		t.Error("shallow-vs-deep ratio not computed")
	}
}

func TestFigure1SnapshotShowsComposition(t *testing.T) {
	snap := figures.Figure1(experiment.Scale{
		Nodes: 4, InputSize: 64 * units.MiB, BlockSize: 16 * units.MiB, Reducers: 8,
	}, 100*units.Microsecond, 200*units.Microsecond, 1)

	if snap.Samples == 0 {
		t.Fatal("no queue samples taken")
	}
	if snap.MeanDepth <= 0 || snap.MaxDepth < snap.MeanDepth {
		t.Errorf("depth stats malformed: mean=%.1f max=%.1f", snap.MeanDepth, snap.MaxDepth)
	}
	// The paper's Figure 1 story: the queue is dominated by ECT data.
	if snap.MeanECTShare < 0.5 {
		t.Errorf("ECT share = %.2f, want the queue dominated by ECT data", snap.MeanECTShare)
	}
	if snap.MeanECTShare+snap.MeanACKShare > 1.0001 {
		t.Error("composition shares exceed 100%")
	}
	// And the drops hit the ACKs.
	if snap.AckDrops == 0 {
		t.Error("no ACK drops in the misbehaving configuration")
	}
	if snap.AckDropShare < 0.5 {
		t.Errorf("ACK drop share %.2f, want dominant", snap.AckDropShare)
	}
	out := snap.Render()
	for _, want := range []string{"Fig. 1", "ECT data", "ACK"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestNormalizationDirections(t *testing.T) {
	s := tinySweep(t)
	// SimpleMark at the aggressive threshold should beat droptail-shallow
	// on throughput (normalized > 1) and on latency (normalized < 1).
	sm := s.Series[cluster.Shallow]["ecn-simplemark"][0]
	if got := s.NormalizedThroughput(sm); got < 1 {
		t.Errorf("simplemark normalized throughput = %.3f, want >= 1", got)
	}
	if got := s.NormalizedLatency(sm); got >= 1 {
		t.Errorf("simplemark normalized latency = %.3f, want < 1", got)
	}
}
