package benchkit

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func report(eps, ape float64) *Report {
	return &Report{
		Schema: SchemaV1,
		Scenarios: []Measurement{
			{Name: "mixed-cluster", EventsPerSec: eps, AllocsPerEvent: ape},
		},
	}
}

func TestCompareGate(t *testing.T) {
	tol := Tolerances{MaxThroughputDrop: 0.15, MaxAllocGrowth: 0.05}
	base := report(1e6, 0.02)

	cases := []struct {
		name    string
		current *Report
		want    int
	}{
		{"identical", report(1e6, 0.02), 0},
		{"faster", report(2e6, 0.0), 0},
		{"within tolerance", report(0.9e6, 0.06), 0},
		{"throughput regression", report(0.5e6, 0.02), 1},
		{"alloc regression", report(1e6, 1.5), 1},
		{"both regressed", report(0.5e6, 1.5), 2},
	}
	for _, tc := range cases {
		findings, err := Compare(base, tc.current, tol)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(findings) != tc.want {
			t.Errorf("%s: %d findings, want %d: %v", tc.name, len(findings), tc.want, findings)
		}
	}
}

// TestCompareCalibrationScaling checks the machine-speed normalization: a
// slower machine producing proportionally fewer events/sec passes, while a
// real regression fails even when the machine is faster.
func TestCompareCalibrationScaling(t *testing.T) {
	tol := Tolerances{MaxThroughputDrop: 0.15, MaxAllocGrowth: 0.05}
	base := report(1e6, 0.02)
	base.CalibOps = 2e9

	// Half-speed machine, half the events/sec: no finding.
	slow := report(0.5e6, 0.02)
	slow.CalibOps = 1e9
	if f, err := Compare(base, slow, tol); err != nil || len(f) != 0 {
		t.Errorf("proportionally slower machine flagged: %v %v", f, err)
	}

	// Double-speed machine but unchanged events/sec: a real 50% regression.
	fast := report(1e6, 0.02)
	fast.CalibOps = 4e9
	if f, err := Compare(base, fast, tol); err != nil || len(f) != 1 {
		t.Errorf("regression hidden by a faster machine: %v %v", f, err)
	}

	// Missing calibration on either side falls back to raw comparison.
	legacy := report(0.9e6, 0.02)
	if f, err := Compare(base, legacy, tol); err != nil || len(f) != 0 {
		t.Errorf("legacy report without calibration flagged: %v %v", f, err)
	}
}

func TestCompareScenarioSetMismatch(t *testing.T) {
	base := report(1e6, 0.02)
	cur := &Report{Schema: SchemaV1, Scenarios: []Measurement{
		{Name: "new-scenario", EventsPerSec: 1e6},
	}}
	findings, err := Compare(base, cur, DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	// One finding for the unknown scenario, one for the missing baseline one.
	if len(findings) != 2 {
		t.Errorf("findings = %v, want 2 entries", findings)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := &Report{
		Schema: SchemaV1, Revision: "abc", GoVersion: "go1.x", Suite: SuiteReduced,
		Scenarios: []Measurement{{
			Name: "terasort-red", Scenario: "terasort", SimSeconds: 1.5,
			Events: 1000, WallNS: 2000, Allocs: 10,
			EventsPerSec: 5e5, NSPerSimSec: 1333, AllocsPerEvent: 0.01,
		}},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Scenarios[0] != rep.Scenarios[0] || back.Revision != rep.Revision {
		t.Errorf("round trip mutated the report: %+v", back)
	}

	if _, err := ReadReport(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Error("foreign schema accepted")
	}
}

// TestHybridGate pins the extrapolation arithmetic and the non-vacuity
// findings: 100 events over 1e6 payload bytes gives the packet reference an
// events/byte of 1e-4, so a hybrid run moving 2e6 total bytes extrapolates to
// 200 packet events. With 10 actual events that's a 20x factor.
func TestHybridGate(t *testing.T) {
	rep := func(hybrid Measurement) *Report {
		return &Report{Schema: SchemaV1, Scenarios: []Measurement{
			{Name: "ref", Events: 100, PayloadBytes: 1e6},
			hybrid,
		}}
	}
	ok := rep(Measurement{Name: "hyb", Events: 10, PayloadBytes: 0.5e6, FluidBytes: 1.5e6})
	if f := HybridGate(ok, "ref", "hyb", 10); len(f) != 0 {
		t.Errorf("20x factor failed a 10x gate: %v", f)
	}
	if f := HybridGate(ok, "ref", "hyb", 50); len(f) != 1 {
		t.Errorf("20x factor passed a 50x gate: %v", f)
	}
	noFluid := rep(Measurement{Name: "hyb", Events: 10, PayloadBytes: 2e6})
	if f := HybridGate(noFluid, "ref", "hyb", 10); len(f) != 1 {
		t.Errorf("hybrid run without fluid bytes passed: %v", f)
	}
	if f := HybridGate(ok, "ref", "missing", 10); len(f) != 1 {
		t.Errorf("missing hybrid scenario passed: %v", f)
	}
	bare := &Report{Schema: SchemaV1, Scenarios: []Measurement{
		{Name: "ref", Events: 100},
		{Name: "hyb", Events: 10, FluidBytes: 1e6},
	}}
	if f := HybridGate(bare, "ref", "hyb", 10); len(f) != 1 {
		t.Errorf("reference without byte accounting passed: %v", f)
	}
}

func TestSuiteLookup(t *testing.T) {
	for _, name := range []string{SuiteFull, SuiteReduced} {
		specs, err := Suite(name)
		if err != nil || len(specs) == 0 {
			t.Fatalf("suite %q: %v (%d specs)", name, err, len(specs))
		}
		for _, s := range specs {
			if s.Name == "" || s.Scenario == "" {
				t.Errorf("suite %q has unnamed spec %+v", name, s)
			}
		}
	}
	if _, err := Suite("nope"); err == nil {
		t.Error("unknown suite accepted")
	}
}

// TestRunReducedSuiteSmoke executes the CI suite end to end once — the same
// path the bench job runs — and sanity-checks the measurements.
func TestRunReducedSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	specs, err := Suite(SuiteReduced)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), SuiteReduced, specs, "test", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != len(specs) {
		t.Fatalf("measured %d scenarios, want %d", len(rep.Scenarios), len(specs))
	}
	for _, m := range rep.Scenarios {
		if m.Events == 0 || m.EventsPerSec <= 0 || m.SimSeconds <= 0 {
			t.Errorf("%s: implausible measurement %+v", m.Name, m)
		}
	}
}
