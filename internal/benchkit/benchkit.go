// Package benchkit is the performance-measurement harness behind cmd/bench
// and the CI perf gate. It runs a fixed suite of ecnsim scenarios serially,
// measures wall time and allocation counts around each run, and combines them
// with the engine's own event accounting (sim_events / sim_time_s result
// keys) into three headline metrics per scenario:
//
//   - events/sec     — discrete events executed per wall-clock second
//   - ns/sim-sec     — wall nanoseconds spent per simulated second
//   - allocs/event   — heap allocations per discrete event
//
// Reports marshal to a stable JSON schema (SchemaV1) written as
// BENCH_<rev>.json, so the perf trajectory stays machine-diffable across
// PRs, and Compare implements the regression gate CI enforces.
package benchkit

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/ecnsim"
)

// SchemaV1 identifies the report layout. Bump only on incompatible changes;
// Compare refuses to diff reports with different schemas.
const SchemaV1 = "ecnsim-bench/v1"

// Spec names one benchmark scenario: a registered ecnsim scenario plus the
// cluster options it runs over. Specs are fixed so numbers are comparable
// across revisions.
type Spec struct {
	Name     string
	Scenario string
	Opts     []ecnsim.Option
}

// Suite names.
const (
	SuiteFull    = "full"
	SuiteReduced = "reduced"
)

// fullSpecs is the complete suite: the three paper workloads, the ECMP
// leaf-spine shuffle (the multipath routing hot path), and the multi-job
// workload engine (scheduler + arrival hot path), at a scale that keeps one
// pass under a minute on commodity hardware.
func fullSpecs() []Spec {
	return []Spec{
		{
			Name:     "terasort-red",
			Scenario: "terasort",
			Opts: []ecnsim.Option{
				ecnsim.TestScale(),
				ecnsim.Queue(ecnsim.RED),
				ecnsim.Protect(ecnsim.ACKSYN),
				ecnsim.TargetDelay(500 * time.Microsecond),
				ecnsim.Seed(1),
			},
		},
		{
			Name:     "incast-12",
			Scenario: "incast",
			Opts: []ecnsim.Option{
				ecnsim.Nodes(13),
				ecnsim.Senders(12),
				ecnsim.FlowSize(2 << 20),
				ecnsim.Queue(ecnsim.SimpleMark),
				ecnsim.Transport(ecnsim.DCTCP),
				ecnsim.TargetDelay(100 * time.Microsecond),
				ecnsim.Seed(1),
			},
		},
		{
			Name:     "mixed-cluster",
			Scenario: "mixed",
			Opts: []ecnsim.Option{
				ecnsim.TestScale(),
				ecnsim.Queue(ecnsim.DropTail),
				ecnsim.Buffer(ecnsim.Deep),
				ecnsim.RPCInterval(2 * time.Millisecond),
				ecnsim.Seed(1),
			},
		},
		{
			Name:     "leafspine-ecmp",
			Scenario: "leafspine",
			Opts: []ecnsim.Option{
				ecnsim.TestScale(),
				ecnsim.Racks(4),
				ecnsim.Spines(2),
				ecnsim.Queue(ecnsim.RED),
				ecnsim.Protect(ecnsim.ACKSYN),
				ecnsim.TargetDelay(500 * time.Microsecond),
				ecnsim.Seed(1),
			},
		},
		{
			Name:     "multijob",
			Scenario: "multijob",
			Opts: []ecnsim.Option{
				ecnsim.TestScale(),
				ecnsim.Queue(ecnsim.RED),
				ecnsim.Protect(ecnsim.ACKSYN),
				ecnsim.TargetDelay(500 * time.Microsecond),
				ecnsim.Seed(1),
			},
		},
		// The same ECMP shuffle as leafspine-ecmp with the event loop cut
		// into four shards — the intra-run parallelism hot path. Its event
		// count must equal leafspine-ecmp's exactly (the bit-identity
		// contract); ShardGate enforces that plus the speedup floor.
		{
			Name:     "leafspine-sharded",
			Scenario: "leafspine",
			Opts: []ecnsim.Option{
				ecnsim.TestScale(),
				ecnsim.Racks(4),
				ecnsim.Spines(2),
				ecnsim.Shards(4),
				ecnsim.Queue(ecnsim.RED),
				ecnsim.Protect(ecnsim.ACKSYN),
				ecnsim.TargetDelay(500 * time.Microsecond),
				ecnsim.Seed(1),
			},
		},
		// The congestion notifier on the derated fabric — both mechanisms
		// live, so the benchmark carries the notification control events,
		// reselection hash work and throttle decay timers.
		{
			Name:     "hotspot-notify",
			Scenario: "hotspot",
			Opts: []ecnsim.Option{
				ecnsim.TestScale(),
				ecnsim.Racks(4),
				ecnsim.Spines(2),
				ecnsim.Queue(ecnsim.RED),
				ecnsim.TargetDelay(500 * time.Microsecond),
				ecnsim.Notify(),
				ecnsim.Seed(1),
			},
		},
		// The simnet façade under load: real net/http servers and clients
		// exchanging 256 KiB echo/fan-out responses over the oversubscribed
		// leaf-spine. The cost under test is the gate machinery — settle
		// probes, op drains, deadline timers — stacked on the packet engine.
		{
			Name:     "httpload-facade",
			Scenario: "httpload",
			Opts: []ecnsim.Option{
				ecnsim.Nodes(16),
				ecnsim.Racks(8),
				ecnsim.Spines(2),
				ecnsim.RPCClients(8),
				ecnsim.RPCSizes(2048, 256<<10),
				ecnsim.RPCInterval(time.Millisecond),
				ecnsim.TargetDelay(100 * time.Microsecond),
				ecnsim.Warmup(10 * time.Millisecond),
				ecnsim.Measure(40 * time.Millisecond),
				ecnsim.MeasureWindow(20 * time.Millisecond),
				ecnsim.Seed(1),
			},
		},
		macroscaleHybridSpec(),
	}
}

// macroscaleHybridSpec is the hybrid engine's benchmark cell: the macroscale
// open-loop transfer mix on a 1024-node leaf-spine fabric with fluid service
// for uncontended transfers. HybridGate extrapolates what the pure packet
// engine would have spent on the same bytes (from leafspine-ecmp's
// events-per-byte) and enforces the speedup floor. The fabric is deliberately
// wide: on a small fabric promotion cascades spill across the few shared core
// ports and packet traffic dominates, while at this width hot spots stay
// confined and fluid service carries ~96% of the bytes — the regime the
// hybrid engine exists for. Both suites share one cell — its cost is the
// hybrid engine's, not the input's.
func macroscaleHybridSpec() Spec {
	return Spec{
		Name:     "macroscale-hybrid",
		Scenario: "macroscale",
		Opts: []ecnsim.Option{
			ecnsim.Nodes(1024),
			ecnsim.Racks(32),
			ecnsim.Spines(8),
			ecnsim.Queue(ecnsim.RED),
			ecnsim.Protect(ecnsim.ACKSYN),
			ecnsim.TargetDelay(500 * time.Microsecond),
			ecnsim.Warmup(5 * time.Millisecond),
			ecnsim.Measure(40 * time.Millisecond),
			ecnsim.FlowSize(512 << 10),
			ecnsim.Hybrid(),
			ecnsim.Seed(1),
		},
	}
}

// reducedSpecs is the CI suite: same workloads, smaller inputs, so the gate
// stays fast on shared runners.
func reducedSpecs() []Spec {
	return []Spec{
		{
			Name:     "terasort-red",
			Scenario: "terasort",
			Opts: []ecnsim.Option{
				ecnsim.Nodes(4),
				ecnsim.InputSize(32 << 20),
				ecnsim.BlockSize(8 << 20),
				ecnsim.Reducers(4),
				ecnsim.Queue(ecnsim.RED),
				ecnsim.Protect(ecnsim.ACKSYN),
				ecnsim.TargetDelay(500 * time.Microsecond),
				ecnsim.Seed(1),
			},
		},
		{
			Name:     "incast-12",
			Scenario: "incast",
			Opts: []ecnsim.Option{
				ecnsim.Nodes(13),
				ecnsim.Senders(12),
				ecnsim.FlowSize(1 << 20),
				ecnsim.Queue(ecnsim.SimpleMark),
				ecnsim.Transport(ecnsim.DCTCP),
				ecnsim.TargetDelay(100 * time.Microsecond),
				ecnsim.Seed(1),
			},
		},
		{
			Name:     "mixed-cluster",
			Scenario: "mixed",
			Opts: []ecnsim.Option{
				ecnsim.Nodes(4),
				ecnsim.InputSize(32 << 20),
				ecnsim.BlockSize(8 << 20),
				ecnsim.Reducers(4),
				ecnsim.Queue(ecnsim.DropTail),
				ecnsim.Buffer(ecnsim.Deep),
				ecnsim.RPCInterval(2 * time.Millisecond),
				ecnsim.Seed(1),
			},
		},
		{
			Name:     "leafspine-ecmp",
			Scenario: "leafspine",
			Opts: []ecnsim.Option{
				ecnsim.Nodes(8),
				ecnsim.Racks(4),
				ecnsim.Spines(2),
				ecnsim.InputSize(32 << 20),
				ecnsim.BlockSize(8 << 20),
				ecnsim.Reducers(4),
				ecnsim.Queue(ecnsim.RED),
				ecnsim.Protect(ecnsim.ACKSYN),
				ecnsim.TargetDelay(500 * time.Microsecond),
				ecnsim.Seed(1),
			},
		},
		{
			Name:     "multijob",
			Scenario: "multijob",
			Opts: []ecnsim.Option{
				ecnsim.Nodes(4),
				ecnsim.InputSize(32 << 20),
				ecnsim.BlockSize(8 << 20),
				ecnsim.Reducers(4),
				ecnsim.Queue(ecnsim.RED),
				ecnsim.Protect(ecnsim.ACKSYN),
				ecnsim.TargetDelay(500 * time.Microsecond),
				ecnsim.Measure(1 * time.Second),
				ecnsim.MeasureWindow(250 * time.Millisecond),
				ecnsim.Seed(1),
			},
		},
		{
			Name:     "leafspine-sharded",
			Scenario: "leafspine",
			Opts: []ecnsim.Option{
				ecnsim.Nodes(8),
				ecnsim.Racks(4),
				ecnsim.Spines(2),
				ecnsim.Shards(4),
				ecnsim.InputSize(32 << 20),
				ecnsim.BlockSize(8 << 20),
				ecnsim.Reducers(4),
				ecnsim.Queue(ecnsim.RED),
				ecnsim.Protect(ecnsim.ACKSYN),
				ecnsim.TargetDelay(500 * time.Microsecond),
				ecnsim.Seed(1),
			},
		},
		// The simnet façade at CI scale (see fullSpecs' httpload-facade).
		{
			Name:     "httpload-facade",
			Scenario: "httpload",
			Opts: []ecnsim.Option{
				ecnsim.Nodes(8),
				ecnsim.Racks(4),
				ecnsim.Spines(2),
				ecnsim.RPCClients(4),
				ecnsim.RPCSizes(2048, 128<<10),
				ecnsim.RPCInterval(500 * time.Microsecond),
				ecnsim.TargetDelay(100 * time.Microsecond),
				ecnsim.Warmup(5 * time.Millisecond),
				ecnsim.Measure(20 * time.Millisecond),
				ecnsim.MeasureWindow(10 * time.Millisecond),
				ecnsim.Seed(1),
			},
		},
		// The congestion notifier at CI scale (see fullSpecs' hotspot-notify).
		{
			Name:     "hotspot-notify",
			Scenario: "hotspot",
			Opts: []ecnsim.Option{
				ecnsim.Nodes(8),
				ecnsim.Racks(4),
				ecnsim.Spines(2),
				ecnsim.InputSize(32 << 20),
				ecnsim.BlockSize(8 << 20),
				ecnsim.Reducers(4),
				ecnsim.Queue(ecnsim.RED),
				ecnsim.TargetDelay(500 * time.Microsecond),
				ecnsim.Notify(),
				ecnsim.Seed(1),
			},
		},
		macroscaleHybridSpec(),
	}
}

// Suite returns the named spec list: "full" or "reduced".
func Suite(name string) ([]Spec, error) {
	switch name {
	case SuiteFull, "":
		return fullSpecs(), nil
	case SuiteReduced:
		return reducedSpecs(), nil
	}
	return nil, fmt.Errorf("benchkit: unknown suite %q (want full|reduced)", name)
}

// Measurement is one scenario's numbers. Events and SimSeconds are
// deterministic in the code revision; the wall-clock-derived fields vary with
// the machine.
type Measurement struct {
	Name       string  `json:"name"`
	Scenario   string  `json:"scenario"`
	SimSeconds float64 `json:"sim_seconds"`
	Events     uint64  `json:"events"`
	WallNS     int64   `json:"wall_ns"`
	Allocs     uint64  `json:"allocs"`
	AllocBytes uint64  `json:"alloc_bytes"`

	EventsPerSec   float64 `json:"events_per_sec"`
	NSPerSimSec    float64 `json:"ns_per_sim_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`

	// Payload accounting for the hybrid gate. PayloadBytes is what the
	// packet engine carried (shuffled or wire payload bytes); FluidBytes is
	// what the fluid model carried without per-packet events. Both are zero
	// for scenarios that don't report byte keys, and omitted from JSON so
	// pre-hybrid reports stay byte-identical.
	PayloadBytes float64 `json:"payload_bytes,omitempty"`
	FluidBytes   float64 `json:"fluid_bytes,omitempty"`
}

// Report is the BENCH_<rev>.json payload.
type Report struct {
	Schema    string        `json:"schema"`
	Revision  string        `json:"revision"`
	GoVersion string        `json:"go"`
	Suite     string        `json:"suite"`
	CalibOps  float64       `json:"calib_ops_per_sec"`
	Scenarios []Measurement `json:"scenarios"`
}

// calibSink defeats dead-code elimination of the calibration loop.
var calibSink uint64

// calibrate scores the machine with a fixed code-independent integer loop
// (ops/sec). Compare scales baseline events/sec by the ratio of calibration
// scores, so a baseline committed from one machine still gates meaningfully
// on a faster or slower CI runner: a real substrate regression shifts
// events/sec relative to the calibration score, machine speed shifts both
// together.
func calibrate() float64 {
	const iters = 1 << 26
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		x := uint64(0x9e3779b97f4a7c15)
		start := time.Now()
		for i := 0; i < iters; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		sec := time.Since(start).Seconds()
		calibSink += x
		if sec > 0 {
			if ops := float64(iters) / sec; ops > best {
				best = ops
			}
		}
	}
	return best
}

// Run executes every spec serially (one simulation at a time, so allocation
// deltas are attributable) and returns the report. Each spec runs reps times
// (min 1) and keeps the best wall time and lowest allocation count — the
// standard best-of-N defense against scheduler noise on shared CI runners;
// the event count is identical across repetitions by determinism. progress
// may be nil.
func Run(ctx context.Context, suite string, specs []Spec, revision string, reps int, progress func(m Measurement)) (*Report, error) {
	if reps < 1 {
		reps = 1
	}
	rep := &Report{
		Schema:    SchemaV1,
		Revision:  revision,
		GoVersion: runtime.Version(),
		Suite:     suite,
		CalibOps:  calibrate(),
	}
	for _, spec := range specs {
		var best Measurement
		for i := 0; i < reps; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			m, err := measure(ctx, spec)
			if err != nil {
				return nil, fmt.Errorf("benchkit: %s: %w", spec.Name, err)
			}
			if i == 0 {
				best = m
				continue
			}
			if m.Events != best.Events {
				return nil, fmt.Errorf("benchkit: %s: event count varied across repetitions (%d vs %d): simulation is not deterministic",
					spec.Name, m.Events, best.Events)
			}
			if m.WallNS < best.WallNS {
				best.WallNS, best.EventsPerSec, best.NSPerSimSec = m.WallNS, m.EventsPerSec, m.NSPerSimSec
			}
			if m.Allocs < best.Allocs {
				best.Allocs, best.AllocBytes, best.AllocsPerEvent = m.Allocs, m.AllocBytes, m.AllocsPerEvent
			}
		}
		rep.Scenarios = append(rep.Scenarios, best)
		if progress != nil {
			progress(best)
		}
	}
	return rep, nil
}

// measure runs one spec once with allocation and wall-time bookkeeping.
func measure(ctx context.Context, spec Spec) (Measurement, error) {
	s, err := ecnsim.MustScenario(spec.Scenario)
	if err != nil {
		return Measurement{}, err
	}
	c, err := ecnsim.NewCluster(spec.Opts...)
	if err != nil {
		return Measurement{}, err
	}
	r := &ecnsim.Runner{Workers: 1}

	// Settle the heap so the allocation delta is the run's own.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()

	rs, err := r.Run(ctx, ecnsim.Job{Scenario: s, Cluster: c})

	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return Measurement{}, err
	}
	if len(rs.Results) == 0 {
		return Measurement{}, fmt.Errorf("scenario produced no rows")
	}
	// Multi-row scenarios (multijob's FIFO and fair runs) are separate
	// simulations measured under one wall clock: sum their event and
	// sim-time accounting so events/sec stays honest. Single-row scenarios
	// are unchanged.
	var simSeconds float64
	var events uint64
	var payloadBytes, fluidBytes float64
	for _, row := range rs.Results {
		simSeconds += row.Value(ecnsim.KeySimTime)
		events += uint64(row.Value(ecnsim.KeySimEvents))
		payloadBytes += row.Value(ecnsim.KeyShuffledBytes) + row.Value(ecnsim.KeyPacketBytes)
		fluidBytes += row.Value(ecnsim.KeyFluidBytes)
	}
	m := Measurement{
		Name:         spec.Name,
		Scenario:     spec.Scenario,
		SimSeconds:   simSeconds,
		Events:       events,
		WallNS:       wall.Nanoseconds(),
		Allocs:       after.Mallocs - before.Mallocs,
		AllocBytes:   after.TotalAlloc - before.TotalAlloc,
		PayloadBytes: payloadBytes,
		FluidBytes:   fluidBytes,
	}
	if m.Events == 0 {
		return Measurement{}, fmt.Errorf("scenario reported no engine events (missing %s key?)", ecnsim.KeySimEvents)
	}
	sec := wall.Seconds()
	if sec > 0 {
		m.EventsPerSec = float64(m.Events) / sec
	}
	if m.SimSeconds > 0 {
		m.NSPerSimSec = float64(m.WallNS) / m.SimSeconds
	}
	m.AllocsPerEvent = float64(m.Allocs) / float64(m.Events)
	return m, nil
}

// WriteJSON marshals the report, indented, with a trailing newline.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a report written by WriteJSON.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("benchkit: decoding report: %w", err)
	}
	if r.Schema != SchemaV1 {
		return nil, fmt.Errorf("benchkit: unsupported schema %q (want %s)", r.Schema, SchemaV1)
	}
	return &r, nil
}

// Tolerances parameterize the regression gate.
type Tolerances struct {
	// MaxThroughputDrop fails when events/sec falls more than this fraction
	// below the baseline (CI default 0.15).
	MaxThroughputDrop float64
	// MaxAllocGrowth is the absolute allocs/event slack above the baseline;
	// anything beyond it fails. A small non-zero slack absorbs runtime
	// (GC/timer) noise without letting a real per-event allocation through:
	// one new allocation on a hot path shifts the ratio by >= ~0.5.
	MaxAllocGrowth float64
}

// DefaultTolerances is the CI gate configuration.
func DefaultTolerances() Tolerances {
	return Tolerances{MaxThroughputDrop: 0.15, MaxAllocGrowth: 0.05}
}

// ShardGate checks the intra-run parallelism contract within one report:
// the sharded scenario must have executed exactly the serial scenario's
// event count (bit-identity — a count drift means the shard cut changed
// what was simulated, not just how fast), and its events/sec must be at
// least minSpeedup times the serial scenario's. Both scenarios come from
// the same report, so no machine normalization is needed. Returns one
// finding per violation; missing scenarios are findings too, so the gate
// cannot pass vacuously. minSpeedup <= 0 skips the speedup check but
// still enforces bit-identity.
func ShardGate(rep *Report, serial, sharded string, minSpeedup float64) []string {
	byName := make(map[string]Measurement, len(rep.Scenarios))
	for _, m := range rep.Scenarios {
		byName[m.Name] = m
	}
	var findings []string
	s, sOK := byName[serial]
	p, pOK := byName[sharded]
	if !sOK {
		findings = append(findings, fmt.Sprintf("%s: serial reference not measured", serial))
	}
	if !pOK {
		findings = append(findings, fmt.Sprintf("%s: sharded scenario not measured", sharded))
	}
	if !sOK || !pOK {
		return findings
	}
	if p.Events != s.Events {
		findings = append(findings, fmt.Sprintf(
			"%s: event count diverged from %s (%d vs %d): sharded results are not bit-identical",
			sharded, serial, p.Events, s.Events))
	}
	if minSpeedup > 0 && s.EventsPerSec > 0 && p.EventsPerSec < minSpeedup*s.EventsPerSec {
		findings = append(findings, fmt.Sprintf(
			"%s: %.0f events/sec is %.2fx %s's %.0f (gate: >= %.2fx)",
			sharded, p.EventsPerSec, p.EventsPerSec/s.EventsPerSec, serial, s.EventsPerSec, minSpeedup))
	}
	return findings
}

// HybridGate checks the hybrid engine's reason to exist within one report:
// moving a byte fluidly must be far cheaper in events than moving it as
// packets. The pure packet engine's cost model comes from the packetRef
// scenario (events per payload byte); extrapolating that rate over every byte
// the hybrid scenario moved — fluid and packet alike — estimates what a pure
// packet run of the same workload would have cost. Both scenarios report the
// same sim-time basis (events over their own simulated horizon), so the
// event-count ratio is the events-per-sim-second ratio. The gate fails when
// the extrapolated count is under minFactor times the hybrid scenario's
// actual event count. Missing scenarios or missing byte accounting are
// findings too — the gate cannot pass vacuously. minFactor <= 0 only checks
// the accounting is present.
func HybridGate(rep *Report, packetRef, hybrid string, minFactor float64) []string {
	byName := make(map[string]Measurement, len(rep.Scenarios))
	for _, m := range rep.Scenarios {
		byName[m.Name] = m
	}
	var findings []string
	ref, refOK := byName[packetRef]
	h, hOK := byName[hybrid]
	if !refOK {
		findings = append(findings, fmt.Sprintf("%s: packet reference not measured", packetRef))
	}
	if !hOK {
		findings = append(findings, fmt.Sprintf("%s: hybrid scenario not measured", hybrid))
	}
	if !refOK || !hOK {
		return findings
	}
	if ref.PayloadBytes <= 0 {
		findings = append(findings, fmt.Sprintf("%s: no payload byte accounting; cannot derive events/byte", packetRef))
	}
	if h.FluidBytes <= 0 {
		findings = append(findings, fmt.Sprintf("%s: moved no fluid bytes; the hybrid engine did not engage", hybrid))
	}
	if len(findings) > 0 || minFactor <= 0 {
		return findings
	}
	eventsPerByte := float64(ref.Events) / ref.PayloadBytes
	extrapolated := (h.FluidBytes + h.PayloadBytes) * eventsPerByte
	if extrapolated < minFactor*float64(h.Events) {
		findings = append(findings, fmt.Sprintf(
			"%s: %.0f events for %.0f bytes is only %.2fx cheaper than %s's extrapolated %.0f events (gate: >= %.2fx)",
			hybrid, float64(h.Events), h.FluidBytes+h.PayloadBytes,
			extrapolated/float64(h.Events), packetRef, extrapolated, minFactor))
	}
	return findings
}

// Compare diffs current against baseline scenario-by-scenario and returns
// one human-readable finding per regression (empty = gate passes). Scenarios
// present on only one side are reported as findings too: a silently dropped
// benchmark must not pass the gate.
//
// When both reports carry a calibration score, the baseline's events/sec is
// rescaled by the machine-speed ratio before the tolerance applies, so a
// baseline committed from a developer machine gates correctly on a CI runner
// of different speed. Without scores (older reports), raw values compare.
func Compare(baseline, current *Report, tol Tolerances) ([]string, error) {
	if baseline.Schema != current.Schema {
		return nil, fmt.Errorf("benchkit: schema mismatch: baseline %q vs current %q", baseline.Schema, current.Schema)
	}
	speedRatio := 1.0
	if baseline.CalibOps > 0 && current.CalibOps > 0 {
		speedRatio = current.CalibOps / baseline.CalibOps
	}
	base := make(map[string]Measurement, len(baseline.Scenarios))
	for _, m := range baseline.Scenarios {
		base[m.Name] = m
	}
	var findings []string
	seen := make(map[string]bool, len(current.Scenarios))
	for _, cur := range current.Scenarios {
		seen[cur.Name] = true
		b, ok := base[cur.Name]
		if !ok {
			findings = append(findings, fmt.Sprintf("%s: not in baseline (refresh the committed BENCH file)", cur.Name))
			continue
		}
		if b.EventsPerSec > 0 {
			expected := b.EventsPerSec * speedRatio
			floor := expected * (1 - tol.MaxThroughputDrop)
			if cur.EventsPerSec < floor {
				findings = append(findings, fmt.Sprintf(
					"%s: events/sec regressed %.0f -> %.0f (%.1f%% below the machine-normalized baseline %.0f, tolerance %.0f%%)",
					cur.Name, b.EventsPerSec, cur.EventsPerSec,
					100*(1-cur.EventsPerSec/expected), expected, 100*tol.MaxThroughputDrop))
			}
		}
		if cur.AllocsPerEvent > b.AllocsPerEvent+tol.MaxAllocGrowth {
			findings = append(findings, fmt.Sprintf(
				"%s: allocs/event grew %.3f -> %.3f (max growth %.3f)",
				cur.Name, b.AllocsPerEvent, cur.AllocsPerEvent, tol.MaxAllocGrowth))
		}
	}
	for _, b := range baseline.Scenarios {
		if !seen[b.Name] {
			findings = append(findings, fmt.Sprintf("%s: in baseline but not measured", b.Name))
		}
	}
	return findings, nil
}
