// Package rng provides a small, fast, deterministic random number generator
// for the simulator. Every component that needs randomness derives a child
// stream from a single run seed, so identical configurations always replay
// the same packet-level schedule regardless of map iteration order or the
// number of components created.
//
// The core generator is xoshiro256**, seeded via splitmix64, following the
// reference implementations by Blackman and Vigna (public domain).
package rng

import "math"

// Source is a deterministic random stream.
type Source struct {
	s [4]uint64
}

// SplitMix64 advances x by the golden-ratio gamma and applies the
// splitmix64 finalizer — the stateless mixer shared by everything that
// needs a pure hash of a seed (stream seeding here, ECMP flow hashing in
// netsim, fleet response sizes in flow). One implementation, so a tweak
// cannot drift between call sites.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// New creates a Source from a 64-bit seed.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = SplitMix64(sm)
		sm += 0x9e3779b97f4a7c15
	}
	return &src
}

// Child derives an independent stream labelled by id. Deriving the same id
// twice yields identical streams; distinct ids yield (statistically)
// independent streams.
func (r *Source) Child(id uint64) *Source {
	// Mix the parent's seed state with the label through splitmix64 steps.
	base := r.s[0] ^ rotl(r.s[1], 17) ^ (id * 0x9e3779b97f4a7c15)
	return New(base)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float in [0,1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0,n). It panics if n <= 0.
func (r *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0,n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes a slice of length n using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// ExpFloat64 returns an exponentially distributed float with mean 1.
func (r *Source) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *Source) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		u2 := r.Float64()
		if u1 <= 0 {
			continue
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}
