package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/100 identical outputs across seeds", same)
	}
}

func TestChildDeterminism(t *testing.T) {
	p1, p2 := New(7), New(7)
	c1, c2 := p1.Child(3), p2.Child(3)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("child streams diverged at step %d", i)
		}
	}
}

func TestChildrenIndependent(t *testing.T) {
	p := New(7)
	c1, c2 := p.Child(1), p.Child(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/100 identical outputs across child ids", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %g, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	for _, n := range []int{1, 2, 7, 100} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		n := 20
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(23)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Errorf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(29)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 = %g < 0", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("exp mean = %g, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(31)
	var sum, sumSq float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

func TestInt63nBounds(t *testing.T) {
	r := New(37)
	for i := 0; i < 1000; i++ {
		v := r.Int63n(1 << 40)
		if v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}
