// Package netsim implements the packet-level network fabric: hosts with a
// protocol stack attachment, switches with per-destination forwarding and
// per-egress-port queue disciplines, and links with serialization and
// propagation delay. Together with internal/sim it stands in for NS-2 in the
// paper's methodology.
package netsim

import (
	"fmt"
	"sort"

	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/units"
)

// Observer receives fabric-level events for metrics collection. All methods
// may be called at very high rate; implementations must be cheap.
type Observer interface {
	// PacketEnqueued reports an Enqueue verdict at a port's qdisc.
	PacketEnqueued(now units.Time, port *Port, p *packet.Packet, v qdisc.Verdict)
	// PacketDelivered reports final delivery of a packet to its
	// destination host (after the last hop).
	PacketDelivered(now units.Time, p *packet.Packet)
}

// NopObserver ignores every event.
type NopObserver struct{}

// PacketEnqueued implements Observer.
func (NopObserver) PacketEnqueued(units.Time, *Port, *packet.Packet, qdisc.Verdict) {}

// PacketDelivered implements Observer.
func (NopObserver) PacketDelivered(units.Time, *packet.Packet) {}

// Node is anything packets can be handed to: hosts and switches.
type Node interface {
	ID() packet.NodeID
	// Receive accepts a packet that has finished propagating over a link.
	Receive(p *packet.Packet)
}

// Shard is one fabric partition's execution domain: its own engine, packet
// free list, propagation-cell free list, packet-ID namespace and observer.
// A serial network is exactly one shard; nothing in the hot path branches on
// the shard count beyond a same-shard pointer comparison per hop.
type Shard struct {
	id       int
	eng      *sim.Engine
	net      *Network
	observer Observer
	pool     packet.Pool
	propFree []*propCell
	nextPkt  uint64
}

// ID returns the shard index.
func (sh *Shard) ID() int { return sh.id }

// Eng returns the shard's engine.
func (sh *Shard) Eng() *sim.Engine { return sh.eng }

// allocPacket returns a zeroed packet with an ID from the shard's strided
// namespace: shard i mints i+1, i+1+S, i+1+2S, … so IDs stay unique across
// shards and, with one shard, identical to the historical sequence 1, 2, 3…
func (sh *Shard) allocPacket() *packet.Packet {
	p := sh.pool.Get()
	p.ID = sh.nextPkt*uint64(len(sh.net.shards)) + uint64(sh.id) + 1
	sh.nextPkt++
	return p
}

// laneEntry is one cross-shard packet handoff: an arrival scheduled on the
// destination shard at the next barrier, backdated to the sender's lineage
// at send time so it sorts exactly where the serial engine would have
// placed it.
type laneEntry struct {
	at   units.Time
	lin  sim.Lineage
	tok  sim.Token
	peer Node
	pkt  *packet.Packet
}

// pktToken derives the residual-tie ordering token of a propagation event
// from the packet's flow identity and header. Two in-flight packets can
// carry time-identical causal histories at any bounded lineage depth
// (phase-locked lockstep transfers), and the serial engine's order between
// them is then an accident of scheduling order that a sharded run cannot
// reproduce; the token gives both engines the same content-derived
// resolution. Same-flow packets that collide in every field below differ in
// send time and hence in lineage, so the truncations are safe in practice —
// and a full collision merely falls through to the engine-local seq, the
// pre-token status quo.
func pktToken(pkt *packet.Packet) sim.Token {
	return sim.Token{
		uint64(uint32(pkt.Src.Node))<<32 | uint64(uint32(pkt.Dst.Node)),
		uint64(pkt.Src.Port)<<48 | uint64(pkt.Dst.Port)<<32 |
			(pkt.Seq&0xffffff)<<8 | uint64(pkt.Flags)&0xff,
	}
}

// Network owns the set of nodes, allocates packet IDs and fans out observer
// events. It also owns the run's packet free lists: every packet the
// transports send comes from AllocPacket and returns to a shard pool at its
// drop or delivery site, so the steady-state fabric allocates nothing.
type Network struct {
	Engine *sim.Engine // shard 0's engine; THE engine of a serial network
	nodes  map[packet.NodeID]Node
	nextID packet.NodeID

	// hashSeed salts the ECMP flow hash. It is derived from the run seed
	// (never from global state), so multipath path selection is
	// deterministic in (configuration, seed) regardless of how many runner
	// workers execute simulations concurrently.
	hashSeed uint64

	shards []*Shard
	// lanes[dst*S+src] buffers cross-shard handoffs. Each lane has exactly
	// one writer per window (the source shard's worker, or the coordinator
	// during serial phases) and is drained by the coordinator at barriers,
	// so no lane is ever accessed from two goroutines without a barrier
	// between them.
	lanes    [][]laneEntry
	drainBuf []laneEntry

	// OnCrossShardArrival, if non-nil, observes every drained handoff with
	// the destination clock at drain time (test hook for the lookahead
	// safety property: at >= dstNow always, or the horizon math is wrong).
	OnCrossShardArrival func(dst int, at, dstNow units.Time)
}

// New creates an empty serial (single-shard) network on the given engine.
func New(eng *sim.Engine) *Network {
	return NewSharded([]*sim.Engine{eng})
}

// NewSharded creates an empty network partitioned over the given engines,
// one shard per engine. Network.Engine aliases shard 0's engine.
func NewSharded(engines []*sim.Engine) *Network {
	if len(engines) == 0 {
		panic("netsim: NewSharded with no engines")
	}
	n := &Network{
		Engine: engines[0],
		nodes:  make(map[packet.NodeID]Node),
	}
	n.shards = make([]*Shard, len(engines))
	for i, eng := range engines {
		n.shards[i] = &Shard{id: i, eng: eng, net: n, observer: NopObserver{}}
	}
	if len(engines) > 1 {
		n.lanes = make([][]laneEntry, len(engines)*len(engines))
	}
	return n
}

// ShardCount returns the number of fabric partitions.
func (n *Network) ShardCount() int { return len(n.shards) }

// Shard returns the i'th partition.
func (n *Network) Shard(i int) *Shard { return n.shards[i] }

// SetObserver installs the metrics observer on every shard (nil restores
// the no-op). Sharded runs that need per-shard observers use
// SetShardObserver instead.
func (n *Network) SetObserver(o Observer) {
	for _, sh := range n.shards {
		sh.observer = normalizeObserver(o)
	}
}

// SetShardObserver installs an observer on a single shard.
func (n *Network) SetShardObserver(i int, o Observer) {
	n.shards[i].observer = normalizeObserver(o)
}

func normalizeObserver(o Observer) Observer {
	if o == nil {
		return NopObserver{}
	}
	return o
}

// Observer returns shard 0's observer.
func (n *Network) Observer() Observer { return n.shards[0].observer }

// DrainCrossShard schedules every buffered cross-shard handoff onto its
// destination engine, in deterministic (arrival time, send time, source
// shard, emission order) order, with the schedAt key backdated to the send
// time. The caller is the group coordinator, at a barrier: every shard
// worker is parked, so the single-writer lane discipline holds.
func (n *Network) DrainCrossShard() {
	s := len(n.shards)
	if s == 1 {
		return
	}
	for dst := 0; dst < s; dst++ {
		buf := n.drainBuf[:0]
		for src := 0; src < s; src++ {
			lane := n.lanes[dst*s+src]
			if len(lane) == 0 {
				continue
			}
			buf = append(buf, lane...)
			for i := range lane {
				lane[i] = laneEntry{}
			}
			n.lanes[dst*s+src] = lane[:0]
		}
		if len(buf) == 0 {
			n.drainBuf = buf
			continue
		}
		// Stable sort on (at, lineage, token): appended src-major, so ties
		// keep (source shard, emission order) — the deterministic drain
		// order.
		sort.SliceStable(buf, func(i, j int) bool {
			if buf[i].at != buf[j].at {
				return buf[i].at < buf[j].at
			}
			if buf[i].lin != buf[j].lin {
				return buf[i].lin.Less(buf[j].lin)
			}
			return buf[i].tok.Less(buf[j].tok)
		})
		sh := n.shards[dst]
		dstNow := sh.eng.Now()
		for i := range buf {
			e := &buf[i]
			if e.at < dstNow {
				panic(fmt.Sprintf("netsim: lookahead violation: cross-shard arrival at %v drained after shard %d reached %v", e.at, dst, dstNow))
			}
			if n.OnCrossShardArrival != nil {
				n.OnCrossShardArrival(dst, e.at, dstNow)
			}
			sh.eng.ScheduleArgKey(e.at, e.lin, e.tok, propArrive, sh.newPropCell(e.peer, e.pkt))
			*e = laneEntry{}
		}
		n.drainBuf = buf[:0]
	}
}

// PendingCrossShard reports whether any handoff lane holds undrained
// entries (for tests).
func (n *Network) PendingCrossShard() bool {
	for _, lane := range n.lanes {
		if len(lane) > 0 {
			return true
		}
	}
	return false
}

// SetFlowHashSeed salts the ECMP flow hash for this run. Call it once at
// build time; changing the seed mid-run would migrate live flows between
// paths.
func (n *Network) SetFlowHashSeed(seed uint64) { n.hashSeed = seed }

// FlowHashSeed returns the run's ECMP hash salt.
func (n *Network) FlowHashSeed() uint64 { return n.hashSeed }

// NewPacketID allocates a unique packet ID from shard 0's namespace.
func (n *Network) NewPacketID() uint64 {
	sh := n.shards[0]
	id := sh.nextPkt*uint64(len(n.shards)) + 1
	sh.nextPkt++
	return id
}

// AllocPacket returns a zeroed packet with a fresh ID, recycled from shard
// 0's pool when possible. Sharded callers allocate through their Host
// instead, which routes to the host's own shard. Packets obtained here are
// released back automatically when the fabric drops or delivers them; the
// sender must not retain them past the hand-off to Host.Send.
func (n *Network) AllocPacket() *packet.Packet {
	return n.shards[0].allocPacket()
}

// ReleasePacket returns a packet to shard 0's pool. Packets not created by
// AllocPacket (e.g. hand-built in tests) are ignored.
func (n *Network) ReleasePacket(p *packet.Packet) { n.shards[0].pool.Put(p) }

// PoolStats reports (fresh allocations, free-list reuses) summed over every
// shard's packet pool.
func (n *Network) PoolStats() (news, reuses uint64) {
	for _, sh := range n.shards {
		a, b := sh.pool.Stats()
		news += a
		reuses += b
	}
	return news, reuses
}

// Node returns the node with the given ID, or nil.
func (n *Network) Node(id packet.NodeID) Node { return n.nodes[id] }

func (n *Network) register(node Node) packet.NodeID {
	id := n.nextID
	n.nextID++
	n.nodes[id] = node
	return id
}

// LinkParams describes one direction of a link.
type LinkParams struct {
	Rate  units.Bandwidth
	Delay units.Duration // propagation
}

// Validate reports a parameter error, or nil.
func (l LinkParams) Validate() error {
	if l.Rate <= 0 {
		return fmt.Errorf("netsim: link rate %v must be positive", l.Rate)
	}
	if l.Delay < 0 {
		return fmt.Errorf("netsim: link delay %v must be non-negative", l.Delay)
	}
	return nil
}

// Port is a unidirectional egress interface: it serializes packets from its
// queue discipline onto a link toward a fixed peer node. A bidirectional
// cable is modelled as two Ports, one on each end.
type Port struct {
	net    *Network
	owner  Node
	peer   Node
	sh     *Shard // owner's shard: all port events run here
	peerSh *Shard // peer's shard: != sh marks a cross-shard link
	link   LinkParams
	queue  qdisc.Qdisc
	busy   bool
	txPkt  *packet.Packet // packet currently serializing (busy only)

	// Label identifies the port in reports, e.g. "sw0->host3".
	Label string

	// OnSent, if non-nil, runs when a packet finishes serializing onto the
	// link. Host uplinks use it to deliver TSQ-style backpressure to the
	// transport.
	OnSent func(p *packet.Packet)

	// Counters.
	sentPackets uint64
	sentBytes   units.ByteSize

	// Congestion-notification state (notify.go). hotUntil/hotGen and gate are
	// written only in control context and read by the owning shard between
	// barriers — the same synchronization discipline as the fluid
	// controller's port state. rerouted is written only by the owning shard.
	hotUntil units.Time      // reselection steers flows off this port until then
	hotGen   uint64          // re-salt generation, advanced per hot episode
	gate     units.Bandwidth // injection throttle (0 = line rate)
	noti     *notifyPort     // notifier registration, nil if untracked
	rerouted uint64          // packets steered away while this port was hot
}

// hotAt reports whether the port is inside a reselection hot window. The
// zero hotUntil doubles as "never marked", so the cold fast path is a single
// field compare.
func (p *Port) hotAt(now units.Time) bool { return p.hotUntil != 0 && now < p.hotUntil }

// MarkHot opens a reselection hot window on the port until the given time,
// advancing the re-salt generation if the port was cold. Exported for the
// route-reselection property tests; simulation code marks ports through a
// Notifier, in control context only.
func (p *Port) MarkHot(until units.Time) {
	if !p.hotAt(p.sh.eng.Now()) {
		p.hotGen++
	}
	p.hotUntil = until
}

// NewPort wires an egress port from owner to peer with the given link
// parameters and queue discipline.
func (n *Network) NewPort(owner, peer Node, link LinkParams, q qdisc.Qdisc) *Port {
	if err := link.Validate(); err != nil {
		panic(err)
	}
	if q == nil {
		panic("netsim: port requires a qdisc")
	}
	p := &Port{
		net:    n,
		owner:  owner,
		peer:   peer,
		sh:     n.shardOf(owner),
		peerSh: n.shardOf(peer),
		link:   link,
		queue:  q,
		Label:  fmt.Sprintf("n%d->n%d", owner.ID(), peer.ID()),
	}
	// Surface dequeue-time drops (CoDel) to the observer; they would
	// otherwise be invisible, since the observer only sees enqueue
	// verdicts.
	if hd, ok := q.(qdisc.HeadDropper); ok {
		hd.SetHeadDropCallback(func(pkt *packet.Packet) {
			p.sh.observer.PacketEnqueued(p.sh.eng.Now(), p, pkt, qdisc.DroppedEarly)
			p.sh.pool.Put(pkt)
		})
	}
	return p
}

// shardOf resolves a node's shard. Nodes not built by this network's
// constructors (test doubles implementing Node directly) land on shard 0.
func (n *Network) shardOf(node Node) *Shard {
	switch v := node.(type) {
	case *Host:
		return v.sh
	case *Switch:
		return v.sh
	}
	return n.shards[0]
}

// Queue exposes the port's queue discipline (for snapshots and tests).
func (p *Port) Queue() qdisc.Qdisc { return p.queue }

// Link returns the link parameters.
func (p *Port) Link() LinkParams { return p.link }

// SetLinkRate re-parameterizes the link's serialization rate in place —
// the fabric-level hook behind link derating. The new rate applies from the
// next packet that starts serializing; a packet already on the wire finishes
// at the old rate.
func (p *Port) SetLinkRate(r units.Bandwidth) {
	l := p.link
	l.Rate = r
	if err := l.Validate(); err != nil {
		panic(err)
	}
	p.link = l
}

// Peer returns the node at the far end.
func (p *Port) Peer() Node { return p.peer }

// Owner returns the node that owns this egress.
func (p *Port) Owner() Node { return p.owner }

// Sent returns the packets and bytes fully serialized onto the link.
func (p *Port) Sent() (uint64, units.ByteSize) { return p.sentPackets, p.sentBytes }

// Send offers a packet to the egress queue and starts the transmitter if it
// is idle. Dropped packets are reported to the observer and released back to
// the packet pool.
func (p *Port) Send(pkt *packet.Packet) {
	now := p.sh.eng.Now()
	v := p.queue.Enqueue(now, pkt)
	p.sh.observer.PacketEnqueued(now, p, pkt, v)
	if v.Dropped() {
		p.sh.pool.Put(pkt)
		return
	}
	if !p.busy {
		p.transmitNext()
	}
}

// propCell carries one in-flight propagation (peer, packet) across the
// link-delay event. Cells are pooled per shard so the per-hop events
// allocate nothing; the pair of predeclared trampolines below replaces the
// two closures a transmission used to capture.
type propCell struct {
	sh   *Shard
	peer Node
	pkt  *packet.Packet
}

// newPropCell takes a cell from the shard's free list or mints one.
func (sh *Shard) newPropCell(peer Node, pkt *packet.Packet) *propCell {
	if k := len(sh.propFree); k > 0 {
		c := sh.propFree[k-1]
		sh.propFree[k-1] = nil
		sh.propFree = sh.propFree[:k-1]
		c.peer, c.pkt = peer, pkt
		return c
	}
	return &propCell{sh: sh, peer: peer, pkt: pkt}
}

// propArrive fires when a packet finishes propagating: recycle the cell,
// then hand the packet to the far end.
func propArrive(arg any) {
	c := arg.(*propCell)
	sh, peer, pkt := c.sh, c.peer, c.pkt
	c.peer, c.pkt = nil, nil
	sh.propFree = append(sh.propFree, c)
	pkt.Hops++
	peer.Receive(pkt)
}

// portTxDone fires as the last bit of the current packet leaves the port.
func portTxDone(arg any) {
	p := arg.(*Port)
	pkt := p.txPkt
	p.txPkt = nil
	p.sentPackets++
	p.sentBytes += pkt.Size()
	if p.OnSent != nil {
		p.OnSent(pkt)
	}
	// Transmitter becomes free as the last bit leaves.
	p.transmitNext()
}

// transmitNext pulls the head packet and schedules its serialization and
// propagation. Invariant: called only when the transmitter is idle.
//
// On a cross-shard link the arrival cannot be scheduled directly — the peer's
// heap belongs to another goroutine — so it becomes a lane entry drained at
// the next barrier. Its arrival lag (tx + propagation delay) is at least the
// group's lookahead by construction of the shard cut, which is exactly why
// one barrier per window suffices.
func (p *Port) transmitNext() {
	eng := p.sh.eng
	now := eng.Now()
	pkt := p.queue.Dequeue(now)
	if pkt == nil {
		p.busy = false
		return
	}
	p.busy = true
	p.txPkt = pkt
	rate := p.link.Rate
	if p.gate != 0 && p.gate < rate {
		// Injection throttle: a one-MTU-deep token bucket refilled at the
		// gate rate — equivalently, serialization paced down to the gate.
		rate = p.gate
	}
	tx := rate.TransmitTime(pkt.Size())
	eng.AfterArg(tx, portTxDone, p)
	if p.peerSh == p.sh {
		eng.AfterArgToken(tx+p.link.Delay, pktToken(pkt), propArrive, p.sh.newPropCell(p.peer, pkt))
		return
	}
	n := p.net
	s := len(n.shards)
	lane := p.peerSh.id*s + p.sh.id
	n.lanes[lane] = append(n.lanes[lane], laneEntry{
		at:   now.Add(tx + p.link.Delay),
		lin:  eng.ChildLineage(),
		tok:  pktToken(pkt),
		peer: p.peer,
		pkt:  pkt,
	})
}

// Protocol is the stack a Host delivers packets to (implemented by
// internal/tcp's Stack).
type Protocol interface {
	Deliver(p *packet.Packet)
}

// Host is an end system with a single uplink port and an attached protocol
// stack.
type Host struct {
	id     packet.NodeID
	net    *Network
	sh     *Shard
	uplink *Port
	proto  Protocol

	// Name is a human label, e.g. "node07".
	Name string
}

// NewHost registers a new host on shard 0.
func (n *Network) NewHost(name string) *Host {
	return n.NewHostOn(0, name)
}

// NewHostOn registers a new host on the given shard.
func (n *Network) NewHostOn(shard int, name string) *Host {
	h := &Host{net: n, sh: n.shards[shard], Name: name}
	h.id = n.register(h)
	return h
}

// ID implements Node.
func (h *Host) ID() packet.NodeID { return h.id }

// Network returns the owning network.
func (h *Host) Network() *Network { return h.net }

// Shard returns the host's fabric partition.
func (h *Host) Shard() *Shard { return h.sh }

// Engine returns the engine the host's events run on — the shard engine.
// Protocol stacks must schedule their timers here, never on a cached global
// engine.
func (h *Host) Engine() *sim.Engine { return h.sh.eng }

// AllocPacket allocates from the host's shard (see Network.AllocPacket).
func (h *Host) AllocPacket() *packet.Packet { return h.sh.allocPacket() }

// AttachUplink installs the host's egress port.
func (h *Host) AttachUplink(p *Port) { h.uplink = p }

// Uplink returns the host's egress port.
func (h *Host) Uplink() *Port { return h.uplink }

// AttachProtocol installs the protocol stack that receives delivered
// packets.
func (h *Host) AttachProtocol(p Protocol) { h.proto = p }

// Send transmits a packet from this host into the fabric. It stamps SentAt.
func (h *Host) Send(pkt *packet.Packet) {
	if h.uplink == nil {
		panic(fmt.Sprintf("netsim: host %s has no uplink", h.Name))
	}
	pkt.SentAt = h.sh.eng.Now()
	h.uplink.Send(pkt)
}

// Receive implements Node: a packet has arrived addressed to this host. The
// packet is released back to the pool once the protocol stack returns —
// stacks consume packets synchronously and must not retain them.
func (h *Host) Receive(pkt *packet.Packet) {
	if pkt.Dst.Node != h.id {
		panic(fmt.Sprintf("netsim: host n%d received packet for n%d (misrouted)", h.id, pkt.Dst.Node))
	}
	h.sh.observer.PacketDelivered(h.sh.eng.Now(), pkt)
	if h.proto != nil {
		h.proto.Deliver(pkt)
	}
	h.sh.pool.Put(pkt)
}

// routeEntry is one destination's route group. The single-next-hop case —
// every port of a star or two-tier fabric — keeps `one` set and forwards
// without hashing, so the pre-multipath hot path is unchanged. With two or
// more candidates `one` is nil and the egress is picked by flow hash over
// `many`.
type routeEntry struct {
	one  *Port
	many []*Port
}

// FlowHash maps a (seed, 5-tuple) to a 64-bit value used for ECMP egress
// selection. The simulated protocol field is always TCP, so the tuple
// reduces to the two addresses. The mix is a splitmix64 finalizer: cheap,
// allocation-free, and deterministic in the seed — reseeding per run keeps
// results bit-identical across Runner worker counts while still decorrelating
// path assignment between seeds.
func FlowHash(seed uint64, src, dst packet.Addr) uint64 {
	x := seed
	x ^= uint64(uint32(src.Node)) | uint64(uint32(dst.Node))<<32
	x ^= (uint64(src.Port) | uint64(dst.Port)<<16) << 13
	return rng.SplitMix64(x)
}

// Switch forwards packets to an egress port registered for the packet's
// destination node. A destination may have a group of candidate egresses
// (ECMP); members of a group are resolved per flow by FlowHash, so one TCP
// connection always takes one path (no intra-flow reordering).
type Switch struct {
	id     packet.NodeID
	net    *Network
	sh     *Shard
	routes map[packet.NodeID]routeEntry
	ports  []*Port

	// Name is a human label, e.g. "tor0".
	Name string
}

// NewSwitch registers a new switch on shard 0.
func (n *Network) NewSwitch(name string) *Switch {
	return n.NewSwitchOn(0, name)
}

// NewSwitchOn registers a new switch on the given shard.
func (n *Network) NewSwitchOn(shard int, name string) *Switch {
	s := &Switch{net: n, sh: n.shards[shard], routes: make(map[packet.NodeID]routeEntry), Name: name}
	s.id = n.register(s)
	return s
}

// ID implements Node.
func (s *Switch) ID() packet.NodeID { return s.id }

// Shard returns the switch's fabric partition.
func (s *Switch) Shard() *Shard { return s.sh }

// AddPort registers an egress port on the switch.
func (s *Switch) AddPort(p *Port) { s.ports = append(s.ports, p) }

// Ports returns the switch's egress ports.
func (s *Switch) Ports() []*Port { return s.ports }

// SetRoute directs traffic for dst out of the single port p, replacing any
// previous route or route group.
func (s *Switch) SetRoute(dst packet.NodeID, p *Port) {
	if p == nil {
		panic(fmt.Sprintf("netsim: switch %s: nil route to n%d", s.Name, dst))
	}
	s.routes[dst] = routeEntry{one: p}
}

// SetRoutes installs a route group for dst: one or more candidate egress
// ports resolved per flow by FlowHash. A 1-entry group is stored as a plain
// single route (the fast path). Candidate order matters — it is part of the
// deterministic hash-to-port mapping — so callers must present candidates in
// a stable order.
func (s *Switch) SetRoutes(dst packet.NodeID, ports ...*Port) {
	switch len(ports) {
	case 0:
		panic(fmt.Sprintf("netsim: switch %s: empty route group to n%d", s.Name, dst))
	case 1:
		s.SetRoute(dst, ports[0])
	default:
		for _, p := range ports {
			if p == nil {
				panic(fmt.Sprintf("netsim: switch %s: nil candidate in route group to n%d", s.Name, dst))
			}
		}
		s.routes[dst] = routeEntry{many: append([]*Port(nil), ports...)}
	}
}

// ClearRoute removes any route or route group for dst.
func (s *Switch) ClearRoute(dst packet.NodeID) { delete(s.routes, dst) }

// RouteFor returns the egress port for dst — the first candidate of a
// multipath group — or nil.
func (s *Switch) RouteFor(dst packet.NodeID) *Port {
	e := s.routes[dst]
	if e.one != nil {
		return e.one
	}
	if len(e.many) > 0 {
		return e.many[0]
	}
	return nil
}

// RoutesFor returns every candidate egress port for dst (nil if unrouted).
// The returned slice is the switch's own; callers must not mutate it.
func (s *Switch) RoutesFor(dst packet.NodeID) []*Port {
	e := s.routes[dst]
	if e.one != nil {
		return []*Port{e.one}
	}
	return e.many
}

// Receive implements Node: forward toward the destination, hashing the flow
// over the candidate group when the destination is multipath.
func (s *Switch) Receive(pkt *packet.Packet) {
	e, ok := s.routes[pkt.Dst.Node]
	if !ok {
		panic(fmt.Sprintf("netsim: switch %s has no route to n%d", s.Name, pkt.Dst.Node))
	}
	if e.one != nil {
		e.one.Send(pkt)
		return
	}
	p, primary := selectEgress(s.net.hashSeed, e.many, pkt.Src, pkt.Dst, s.sh.eng.Now())
	if p != primary {
		primary.rerouted++
	}
	p.Send(pkt)
}

// selectEgress resolves the ECMP pick for (src, dst) over a multipath group
// at time now: the flow-hashed primary, or — when the primary is inside a
// hot window — a cold candidate chosen by re-salting the hash with the hot
// port's episode generation. The generation is fixed per episode, so one
// flow keeps one alternate path for the whole affinity window (no flapping),
// and candidates only ever come from the group itself, which the route
// rebuild keeps free of failed links. With every candidate hot the primary
// stands. Returns (pick, primary); a never-marked group costs one field
// compare over the pre-notification hot path.
func selectEgress(seed uint64, many []*Port, src, dst packet.Addr, now units.Time) (pick, primary *Port) {
	primary = many[FlowHash(seed, src, dst)%uint64(len(many))]
	if !primary.hotAt(now) {
		return primary, primary
	}
	cold := 0
	for _, q := range many {
		if !q.hotAt(now) {
			cold++
		}
	}
	if cold == 0 {
		return primary, primary
	}
	k := FlowHash(seed^primary.hotGen*0x9e37_79b9_7f4a_7c15, src, dst) % uint64(cold)
	for _, q := range many {
		if q.hotAt(now) {
			continue
		}
		if k == 0 {
			return q, primary
		}
		k--
	}
	return primary, primary
}

// PathPorts resolves the deterministic egress-port path a flow from src to
// dst traverses, mirroring Switch.Receive's forwarding decision at every hop
// — including the ECMP hash pick on multipath route groups, so a flow-level
// model and the packet engine agree on which ports a given flow loads. It
// returns nil when either endpoint is not a host or the path is unroutable.
func (n *Network) PathPorts(src, dst packet.Addr) []*Port {
	srcHost, ok := n.Node(src.Node).(*Host)
	if !ok || srcHost.uplink == nil {
		return nil
	}
	path := []*Port{srcHost.uplink}
	cur := srcHost.uplink.peer
	// A leaf-spine fabric is at most host->leaf->spine->leaf->host; the hop
	// bound only guards against accidental routing loops.
	for hop := 0; hop < 8; hop++ {
		sw, ok := cur.(*Switch)
		if !ok {
			if h, isHost := cur.(*Host); isHost && h.id == dst.Node {
				return path
			}
			return nil
		}
		e, routed := sw.routes[dst.Node]
		if !routed {
			return nil
		}
		p := e.one
		if p == nil {
			// Mirror the congestion-aware reselection at the switch's own
			// clock, so a flow-level model resolves the same egress the
			// packet engine would forward on right now.
			p, _ = selectEgress(n.hashSeed, e.many, src, dst, sw.sh.eng.Now())
		}
		path = append(path, p)
		cur = p.peer
	}
	return nil
}
