// Package netsim implements the packet-level network fabric: hosts with a
// protocol stack attachment, switches with per-destination forwarding and
// per-egress-port queue disciplines, and links with serialization and
// propagation delay. Together with internal/sim it stands in for NS-2 in the
// paper's methodology.
package netsim

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/units"
)

// Observer receives fabric-level events for metrics collection. All methods
// may be called at very high rate; implementations must be cheap.
type Observer interface {
	// PacketEnqueued reports an Enqueue verdict at a port's qdisc.
	PacketEnqueued(now units.Time, port *Port, p *packet.Packet, v qdisc.Verdict)
	// PacketDelivered reports final delivery of a packet to its
	// destination host (after the last hop).
	PacketDelivered(now units.Time, p *packet.Packet)
}

// NopObserver ignores every event.
type NopObserver struct{}

// PacketEnqueued implements Observer.
func (NopObserver) PacketEnqueued(units.Time, *Port, *packet.Packet, qdisc.Verdict) {}

// PacketDelivered implements Observer.
func (NopObserver) PacketDelivered(units.Time, *packet.Packet) {}

// Node is anything packets can be handed to: hosts and switches.
type Node interface {
	ID() packet.NodeID
	// Receive accepts a packet that has finished propagating over a link.
	Receive(p *packet.Packet)
}

// Network owns the set of nodes, allocates packet IDs and fans out observer
// events. It also owns the run's packet free list: every packet the
// transports send comes from AllocPacket and returns to the pool at its
// drop or delivery site, so the steady-state fabric allocates nothing.
type Network struct {
	Engine   *sim.Engine
	nodes    map[packet.NodeID]Node
	nextID   packet.NodeID
	nextPkt  uint64
	observer Observer

	// hashSeed salts the ECMP flow hash. It is derived from the run seed
	// (never from global state), so multipath path selection is
	// deterministic in (configuration, seed) regardless of how many runner
	// workers execute simulations concurrently.
	hashSeed uint64

	pool     packet.Pool
	propFree []*propCell
}

// New creates an empty network on the given engine.
func New(eng *sim.Engine) *Network {
	return &Network{
		Engine:   eng,
		nodes:    make(map[packet.NodeID]Node),
		observer: NopObserver{},
	}
}

// SetObserver installs the metrics observer (nil restores the no-op).
func (n *Network) SetObserver(o Observer) {
	if o == nil {
		o = NopObserver{}
	}
	n.observer = o
}

// Observer returns the current observer.
func (n *Network) Observer() Observer { return n.observer }

// SetFlowHashSeed salts the ECMP flow hash for this run. Call it once at
// build time; changing the seed mid-run would migrate live flows between
// paths.
func (n *Network) SetFlowHashSeed(seed uint64) { n.hashSeed = seed }

// FlowHashSeed returns the run's ECMP hash salt.
func (n *Network) FlowHashSeed() uint64 { return n.hashSeed }

// NewPacketID allocates a unique packet ID.
func (n *Network) NewPacketID() uint64 {
	n.nextPkt++
	return n.nextPkt
}

// AllocPacket returns a zeroed packet with a fresh ID, recycled from the
// network's pool when possible. Packets obtained here are released back
// automatically when the fabric drops or delivers them; the sender must not
// retain them past the hand-off to Host.Send.
func (n *Network) AllocPacket() *packet.Packet {
	p := n.pool.Get()
	n.nextPkt++
	p.ID = n.nextPkt
	return p
}

// ReleasePacket returns a packet to the pool. Packets not created by
// AllocPacket (e.g. hand-built in tests) are ignored.
func (n *Network) ReleasePacket(p *packet.Packet) { n.pool.Put(p) }

// PoolStats reports (fresh allocations, free-list reuses) of the packet pool.
func (n *Network) PoolStats() (news, reuses uint64) { return n.pool.Stats() }

// Node returns the node with the given ID, or nil.
func (n *Network) Node(id packet.NodeID) Node { return n.nodes[id] }

func (n *Network) register(node Node) packet.NodeID {
	id := n.nextID
	n.nextID++
	n.nodes[id] = node
	return id
}

// LinkParams describes one direction of a link.
type LinkParams struct {
	Rate  units.Bandwidth
	Delay units.Duration // propagation
}

// Validate reports a parameter error, or nil.
func (l LinkParams) Validate() error {
	if l.Rate <= 0 {
		return fmt.Errorf("netsim: link rate %v must be positive", l.Rate)
	}
	if l.Delay < 0 {
		return fmt.Errorf("netsim: link delay %v must be non-negative", l.Delay)
	}
	return nil
}

// Port is a unidirectional egress interface: it serializes packets from its
// queue discipline onto a link toward a fixed peer node. A bidirectional
// cable is modelled as two Ports, one on each end.
type Port struct {
	net   *Network
	owner Node
	peer  Node
	link  LinkParams
	queue qdisc.Qdisc
	busy  bool
	txPkt *packet.Packet // packet currently serializing (busy only)

	// Label identifies the port in reports, e.g. "sw0->host3".
	Label string

	// OnSent, if non-nil, runs when a packet finishes serializing onto the
	// link. Host uplinks use it to deliver TSQ-style backpressure to the
	// transport.
	OnSent func(p *packet.Packet)

	// Counters.
	sentPackets uint64
	sentBytes   units.ByteSize
}

// NewPort wires an egress port from owner to peer with the given link
// parameters and queue discipline.
func (n *Network) NewPort(owner, peer Node, link LinkParams, q qdisc.Qdisc) *Port {
	if err := link.Validate(); err != nil {
		panic(err)
	}
	if q == nil {
		panic("netsim: port requires a qdisc")
	}
	p := &Port{
		net:   n,
		owner: owner,
		peer:  peer,
		link:  link,
		queue: q,
		Label: fmt.Sprintf("n%d->n%d", owner.ID(), peer.ID()),
	}
	// Surface dequeue-time drops (CoDel) to the observer; they would
	// otherwise be invisible, since the observer only sees enqueue
	// verdicts.
	if hd, ok := q.(qdisc.HeadDropper); ok {
		hd.SetHeadDropCallback(func(pkt *packet.Packet) {
			n.observer.PacketEnqueued(n.Engine.Now(), p, pkt, qdisc.DroppedEarly)
			n.ReleasePacket(pkt)
		})
	}
	return p
}

// Queue exposes the port's queue discipline (for snapshots and tests).
func (p *Port) Queue() qdisc.Qdisc { return p.queue }

// Link returns the link parameters.
func (p *Port) Link() LinkParams { return p.link }

// SetLinkRate re-parameterizes the link's serialization rate in place —
// the fabric-level hook behind link derating. The new rate applies from the
// next packet that starts serializing; a packet already on the wire finishes
// at the old rate.
func (p *Port) SetLinkRate(r units.Bandwidth) {
	l := p.link
	l.Rate = r
	if err := l.Validate(); err != nil {
		panic(err)
	}
	p.link = l
}

// Peer returns the node at the far end.
func (p *Port) Peer() Node { return p.peer }

// Owner returns the node that owns this egress.
func (p *Port) Owner() Node { return p.owner }

// Sent returns the packets and bytes fully serialized onto the link.
func (p *Port) Sent() (uint64, units.ByteSize) { return p.sentPackets, p.sentBytes }

// Send offers a packet to the egress queue and starts the transmitter if it
// is idle. Dropped packets are reported to the observer and released back to
// the packet pool.
func (p *Port) Send(pkt *packet.Packet) {
	now := p.net.Engine.Now()
	v := p.queue.Enqueue(now, pkt)
	p.net.observer.PacketEnqueued(now, p, pkt, v)
	if v.Dropped() {
		p.net.ReleasePacket(pkt)
		return
	}
	if !p.busy {
		p.transmitNext()
	}
}

// propCell carries one in-flight propagation (peer, packet) across the
// link-delay event. Cells are pooled on the Network so the per-hop events
// allocate nothing; the pair of predeclared trampolines below replaces the
// two closures a transmission used to capture.
type propCell struct {
	net  *Network
	peer Node
	pkt  *packet.Packet
}

// newPropCell takes a cell from the free list or mints one.
func (n *Network) newPropCell(peer Node, pkt *packet.Packet) *propCell {
	if k := len(n.propFree); k > 0 {
		c := n.propFree[k-1]
		n.propFree[k-1] = nil
		n.propFree = n.propFree[:k-1]
		c.peer, c.pkt = peer, pkt
		return c
	}
	return &propCell{net: n, peer: peer, pkt: pkt}
}

// propArrive fires when a packet finishes propagating: recycle the cell,
// then hand the packet to the far end.
func propArrive(arg any) {
	c := arg.(*propCell)
	net, peer, pkt := c.net, c.peer, c.pkt
	c.peer, c.pkt = nil, nil
	net.propFree = append(net.propFree, c)
	pkt.Hops++
	peer.Receive(pkt)
}

// portTxDone fires as the last bit of the current packet leaves the port.
func portTxDone(arg any) {
	p := arg.(*Port)
	pkt := p.txPkt
	p.txPkt = nil
	p.sentPackets++
	p.sentBytes += pkt.Size()
	if p.OnSent != nil {
		p.OnSent(pkt)
	}
	// Transmitter becomes free as the last bit leaves.
	p.transmitNext()
}

// transmitNext pulls the head packet and schedules its serialization and
// propagation. Invariant: called only when the transmitter is idle.
func (p *Port) transmitNext() {
	now := p.net.Engine.Now()
	pkt := p.queue.Dequeue(now)
	if pkt == nil {
		p.busy = false
		return
	}
	p.busy = true
	p.txPkt = pkt
	tx := p.link.Rate.TransmitTime(pkt.Size())
	eng := p.net.Engine
	eng.AfterArg(tx, portTxDone, p)
	eng.AfterArg(tx+p.link.Delay, propArrive, p.net.newPropCell(p.peer, pkt))
}

// Protocol is the stack a Host delivers packets to (implemented by
// internal/tcp's Stack).
type Protocol interface {
	Deliver(p *packet.Packet)
}

// Host is an end system with a single uplink port and an attached protocol
// stack.
type Host struct {
	id     packet.NodeID
	net    *Network
	uplink *Port
	proto  Protocol

	// Name is a human label, e.g. "node07".
	Name string
}

// NewHost registers a new host.
func (n *Network) NewHost(name string) *Host {
	h := &Host{net: n, Name: name}
	h.id = n.register(h)
	return h
}

// ID implements Node.
func (h *Host) ID() packet.NodeID { return h.id }

// Network returns the owning network.
func (h *Host) Network() *Network { return h.net }

// AttachUplink installs the host's egress port.
func (h *Host) AttachUplink(p *Port) { h.uplink = p }

// Uplink returns the host's egress port.
func (h *Host) Uplink() *Port { return h.uplink }

// AttachProtocol installs the protocol stack that receives delivered
// packets.
func (h *Host) AttachProtocol(p Protocol) { h.proto = p }

// Send transmits a packet from this host into the fabric. It stamps SentAt.
func (h *Host) Send(pkt *packet.Packet) {
	if h.uplink == nil {
		panic(fmt.Sprintf("netsim: host %s has no uplink", h.Name))
	}
	pkt.SentAt = h.net.Engine.Now()
	h.uplink.Send(pkt)
}

// Receive implements Node: a packet has arrived addressed to this host. The
// packet is released back to the pool once the protocol stack returns —
// stacks consume packets synchronously and must not retain them.
func (h *Host) Receive(pkt *packet.Packet) {
	if pkt.Dst.Node != h.id {
		panic(fmt.Sprintf("netsim: host n%d received packet for n%d (misrouted)", h.id, pkt.Dst.Node))
	}
	h.net.observer.PacketDelivered(h.net.Engine.Now(), pkt)
	if h.proto != nil {
		h.proto.Deliver(pkt)
	}
	h.net.ReleasePacket(pkt)
}

// routeEntry is one destination's route group. The single-next-hop case —
// every port of a star or two-tier fabric — keeps `one` set and forwards
// without hashing, so the pre-multipath hot path is unchanged. With two or
// more candidates `one` is nil and the egress is picked by flow hash over
// `many`.
type routeEntry struct {
	one  *Port
	many []*Port
}

// FlowHash maps a (seed, 5-tuple) to a 64-bit value used for ECMP egress
// selection. The simulated protocol field is always TCP, so the tuple
// reduces to the two addresses. The mix is a splitmix64 finalizer: cheap,
// allocation-free, and deterministic in the seed — reseeding per run keeps
// results bit-identical across Runner worker counts while still decorrelating
// path assignment between seeds.
func FlowHash(seed uint64, src, dst packet.Addr) uint64 {
	x := seed
	x ^= uint64(uint32(src.Node)) | uint64(uint32(dst.Node))<<32
	x ^= (uint64(src.Port) | uint64(dst.Port)<<16) << 13
	return rng.SplitMix64(x)
}

// Switch forwards packets to an egress port registered for the packet's
// destination node. A destination may have a group of candidate egresses
// (ECMP); members of a group are resolved per flow by FlowHash, so one TCP
// connection always takes one path (no intra-flow reordering).
type Switch struct {
	id     packet.NodeID
	net    *Network
	routes map[packet.NodeID]routeEntry
	ports  []*Port

	// Name is a human label, e.g. "tor0".
	Name string
}

// NewSwitch registers a new switch.
func (n *Network) NewSwitch(name string) *Switch {
	s := &Switch{net: n, routes: make(map[packet.NodeID]routeEntry), Name: name}
	s.id = n.register(s)
	return s
}

// ID implements Node.
func (s *Switch) ID() packet.NodeID { return s.id }

// AddPort registers an egress port on the switch.
func (s *Switch) AddPort(p *Port) { s.ports = append(s.ports, p) }

// Ports returns the switch's egress ports.
func (s *Switch) Ports() []*Port { return s.ports }

// SetRoute directs traffic for dst out of the single port p, replacing any
// previous route or route group.
func (s *Switch) SetRoute(dst packet.NodeID, p *Port) {
	if p == nil {
		panic(fmt.Sprintf("netsim: switch %s: nil route to n%d", s.Name, dst))
	}
	s.routes[dst] = routeEntry{one: p}
}

// SetRoutes installs a route group for dst: one or more candidate egress
// ports resolved per flow by FlowHash. A 1-entry group is stored as a plain
// single route (the fast path). Candidate order matters — it is part of the
// deterministic hash-to-port mapping — so callers must present candidates in
// a stable order.
func (s *Switch) SetRoutes(dst packet.NodeID, ports ...*Port) {
	switch len(ports) {
	case 0:
		panic(fmt.Sprintf("netsim: switch %s: empty route group to n%d", s.Name, dst))
	case 1:
		s.SetRoute(dst, ports[0])
	default:
		for _, p := range ports {
			if p == nil {
				panic(fmt.Sprintf("netsim: switch %s: nil candidate in route group to n%d", s.Name, dst))
			}
		}
		s.routes[dst] = routeEntry{many: append([]*Port(nil), ports...)}
	}
}

// ClearRoute removes any route or route group for dst.
func (s *Switch) ClearRoute(dst packet.NodeID) { delete(s.routes, dst) }

// RouteFor returns the egress port for dst — the first candidate of a
// multipath group — or nil.
func (s *Switch) RouteFor(dst packet.NodeID) *Port {
	e := s.routes[dst]
	if e.one != nil {
		return e.one
	}
	if len(e.many) > 0 {
		return e.many[0]
	}
	return nil
}

// RoutesFor returns every candidate egress port for dst (nil if unrouted).
// The returned slice is the switch's own; callers must not mutate it.
func (s *Switch) RoutesFor(dst packet.NodeID) []*Port {
	e := s.routes[dst]
	if e.one != nil {
		return []*Port{e.one}
	}
	return e.many
}

// Receive implements Node: forward toward the destination, hashing the flow
// over the candidate group when the destination is multipath.
func (s *Switch) Receive(pkt *packet.Packet) {
	e, ok := s.routes[pkt.Dst.Node]
	if !ok {
		panic(fmt.Sprintf("netsim: switch %s has no route to n%d", s.Name, pkt.Dst.Node))
	}
	if e.one != nil {
		e.one.Send(pkt)
		return
	}
	h := FlowHash(s.net.hashSeed, pkt.Src, pkt.Dst)
	e.many[h%uint64(len(e.many))].Send(pkt)
}
