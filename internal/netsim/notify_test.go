package netsim

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

// TestThrottleAlwaysRecovers is the no-permanent-starvation property: over 1k
// seeded configurations — random line rates, quiet periods and notification
// hit trains — a throttled host always returns to line rate (gate lifted,
// decay timer disarmed) within log2(minGateDiv)+1 quiet periods of its last
// hit, and the gate never drops below line/minGateDiv in between.
func TestThrottleAlwaysRecovers(t *testing.T) {
	const seeds = 1000
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		line := units.Bandwidth(1+rng.Int63n(100_000)) * units.Mbps
		quiet := units.Duration(1+rng.Int63n(2000)) * units.Microsecond
		cfg := NotifyConfig{
			Threshold: 1 + rng.Intn(256),
			Throttle:  true,
			Affinity:  units.Duration(1+rng.Int63n(2000)) * units.Microsecond,
			Quiet:     quiet,
		}
		eng := sim.New()
		g := sim.NewGroup([]*sim.Engine{eng}, 0)
		n := NewNotifier(g, nil, cfg)
		th := &throttleHost{up: &Port{}, line: line}

		// A train of 1..20 hits at seeded instants, overlapping decay
		// schedules in every phase relationship.
		hits := 1 + rng.Intn(20)
		var lastHit units.Time
		floor := line / minGateDiv
		for i := 0; i < hits; i++ {
			at := units.Time(rng.Int63n(int64(20 * quiet)))
			if at > lastHit {
				lastHit = at
			}
			eng.Schedule(at, func() {
				n.throttleHit(th, eng.Now())
				if th.gate < floor {
					t.Errorf("seed %d: gate %v below floor %v", seed, th.gate, floor)
				}
			})
		}
		eng.Run()

		if th.gate != 0 || th.up.gate != 0 || th.armed {
			t.Errorf("seed %d: host starved after drain: gate=%v up.gate=%v armed=%v",
				seed, th.gate, th.up.gate, th.armed)
		}
		if n.stats.Recoveries < 1 {
			t.Errorf("seed %d: no recovery recorded over %d hits", seed, hits)
		}
		// The last event the engine ran is the recovering decay; the ladder
		// from the floor is bounded by log2(minGateDiv)+1 quiet periods.
		if bound := lastHit.Add(5 * cfg.Quiet); eng.Now() > bound {
			t.Errorf("seed %d: recovery at %v, later than last hit %v + 5 quiet periods (%v)",
				seed, eng.Now(), lastHit, bound)
		}
	}
}
