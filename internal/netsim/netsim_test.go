package netsim

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/units"
)

// sinkProto records delivered packets.
type sinkProto struct{ got []*packet.Packet }

func (s *sinkProto) Deliver(p *packet.Packet) { s.got = append(s.got, p) }

// recorder counts observer callbacks.
type recorder struct {
	enq     []qdisc.Verdict
	deliver []*packet.Packet
	times   []units.Time
}

func (r *recorder) PacketEnqueued(_ units.Time, _ *Port, _ *packet.Packet, v qdisc.Verdict) {
	r.enq = append(r.enq, v)
}
func (r *recorder) PacketDelivered(now units.Time, p *packet.Packet) {
	r.deliver = append(r.deliver, p)
	r.times = append(r.times, now)
}

// twoHosts wires A -> B directly with the given link and queue.
func twoHosts(eng *sim.Engine, link LinkParams, q qdisc.Qdisc) (*Network, *Host, *Host, *sinkProto) {
	n := New(eng)
	a := n.NewHost("a")
	b := n.NewHost("b")
	a.AttachUplink(n.NewPort(a, b, link, q))
	sink := &sinkProto{}
	b.AttachProtocol(sink)
	return n, a, b, sink
}

func mkPkt(n *Network, src, dst *Host, payload int) *packet.Packet {
	return &packet.Packet{
		ID:      n.NewPacketID(),
		Src:     packet.Addr{Node: src.ID(), Port: 1},
		Dst:     packet.Addr{Node: dst.ID(), Port: 2},
		Payload: payload,
		Flags:   packet.FlagACK,
	}
}

func TestSerializationPlusPropagationDelay(t *testing.T) {
	eng := sim.New()
	link := LinkParams{Rate: 1 * units.Gbps, Delay: 10 * units.Microsecond}
	n, a, b, sink := twoHosts(eng, link, qdisc.NewDropTail(10))
	p := mkPkt(n, a, b, 1460) // 1500 bytes on the wire = 12 µs at 1 Gbps
	a.Send(p)
	eng.Run()
	if len(sink.got) != 1 {
		t.Fatalf("delivered %d packets", len(sink.got))
	}
	want := units.Time(22 * units.Microsecond) // 12 tx + 10 prop
	if eng.Now() != want {
		t.Errorf("delivery at %v, want %v", eng.Now(), want)
	}
}

func TestBackToBackSerialization(t *testing.T) {
	// Two packets share one transmitter: the second is delayed by one
	// serialization time, not propagated in parallel.
	eng := sim.New()
	link := LinkParams{Rate: 1 * units.Gbps, Delay: 0}
	n, a, b, _ := twoHosts(eng, link, qdisc.NewDropTail(10))
	rec := &recorder{}
	n.SetObserver(rec)
	a.Send(mkPkt(n, a, b, 1460))
	a.Send(mkPkt(n, a, b, 1460))
	eng.Run()
	if len(rec.times) != 2 {
		t.Fatalf("delivered %d", len(rec.times))
	}
	if rec.times[1]-rec.times[0] != units.Time(12*units.Microsecond) {
		t.Errorf("spacing = %v, want 12µs serialization", rec.times[1]-rec.times[0])
	}
}

func TestHopStamping(t *testing.T) {
	eng := sim.New()
	n := New(eng)
	a := n.NewHost("a")
	sw := n.NewSwitch("sw")
	b := n.NewHost("b")
	link := LinkParams{Rate: 1 * units.Gbps, Delay: 0}
	a.AttachUplink(n.NewPort(a, sw, link, qdisc.NewDropTail(10)))
	down := n.NewPort(sw, b, link, qdisc.NewDropTail(10))
	sw.AddPort(down)
	sw.SetRoute(b.ID(), down)
	sink := &sinkProto{}
	b.AttachProtocol(sink)

	p := mkPkt(n, a, b, 100)
	a.Send(p)
	eng.Run()
	if len(sink.got) != 1 {
		t.Fatal("not delivered")
	}
	if sink.got[0].Hops != 2 {
		t.Errorf("hops = %d, want 2 (host->switch->host)", sink.got[0].Hops)
	}
}

func TestSwitchRoutesByDestination(t *testing.T) {
	eng := sim.New()
	n := New(eng)
	sw := n.NewSwitch("sw")
	hosts := make([]*Host, 3)
	sinks := make([]*sinkProto, 3)
	link := LinkParams{Rate: 1 * units.Gbps, Delay: 0}
	for i := range hosts {
		hosts[i] = n.NewHost("h")
		hosts[i].AttachUplink(n.NewPort(hosts[i], sw, link, qdisc.NewDropTail(10)))
		down := n.NewPort(sw, hosts[i], link, qdisc.NewDropTail(10))
		sw.AddPort(down)
		sw.SetRoute(hosts[i].ID(), down)
		sinks[i] = &sinkProto{}
		hosts[i].AttachProtocol(sinks[i])
	}
	hosts[0].Send(mkPkt(n, hosts[0], hosts[1], 10))
	hosts[0].Send(mkPkt(n, hosts[0], hosts[2], 10))
	hosts[1].Send(mkPkt(n, hosts[1], hosts[2], 10))
	eng.Run()
	if len(sinks[0].got) != 0 || len(sinks[1].got) != 1 || len(sinks[2].got) != 2 {
		t.Errorf("deliveries = %d/%d/%d, want 0/1/2",
			len(sinks[0].got), len(sinks[1].got), len(sinks[2].got))
	}
}

func TestMisroutedPacketPanics(t *testing.T) {
	eng := sim.New()
	n := New(eng)
	a := n.NewHost("a")
	b := n.NewHost("b")
	link := LinkParams{Rate: 1 * units.Gbps, Delay: 0}
	// Wire a's uplink to b but address the packet to a third node id.
	a.AttachUplink(n.NewPort(a, b, link, qdisc.NewDropTail(10)))
	p := mkPkt(n, a, b, 10)
	p.Dst.Node = 99
	a.Send(p)
	defer func() {
		if recover() == nil {
			t.Error("misrouted delivery must panic")
		}
	}()
	eng.Run()
}

func TestSwitchWithoutRoutePanics(t *testing.T) {
	eng := sim.New()
	n := New(eng)
	a := n.NewHost("a")
	sw := n.NewSwitch("sw")
	link := LinkParams{Rate: 1 * units.Gbps, Delay: 0}
	a.AttachUplink(n.NewPort(a, sw, link, qdisc.NewDropTail(10)))
	p := mkPkt(n, a, a, 10)
	p.Dst.Node = 42
	a.Send(p)
	defer func() {
		if recover() == nil {
			t.Error("unrouted switch delivery must panic")
		}
	}()
	eng.Run()
}

func TestObserverSeesDropsAndDeliveries(t *testing.T) {
	eng := sim.New()
	link := LinkParams{Rate: 1 * units.Gbps, Delay: 0}
	n, a, b, _ := twoHosts(eng, link, qdisc.NewDropTail(1))
	rec := &recorder{}
	n.SetObserver(rec)
	// Burst of 5: queue holds 1 + 1 in flight; expect drops.
	for i := 0; i < 5; i++ {
		a.Send(mkPkt(n, a, b, 1460))
	}
	eng.Run()
	drops := 0
	for _, v := range rec.enq {
		if v.Dropped() {
			drops++
		}
	}
	if drops == 0 {
		t.Error("no drops observed with 1-packet queue")
	}
	if len(rec.deliver)+drops != 5 {
		t.Errorf("delivered %d + dropped %d != 5", len(rec.deliver), drops)
	}
}

func TestPortCounters(t *testing.T) {
	eng := sim.New()
	link := LinkParams{Rate: 1 * units.Gbps, Delay: 0}
	n, a, b, _ := twoHosts(eng, link, qdisc.NewDropTail(10))
	a.Send(mkPkt(n, a, b, 1460))
	a.Send(mkPkt(n, a, b, 460))
	eng.Run()
	pkts, bytes := a.Uplink().Sent()
	if pkts != 2 {
		t.Errorf("sent packets = %d", pkts)
	}
	if bytes != 1500+500 {
		t.Errorf("sent bytes = %d, want 2000", bytes)
	}
}

func TestSentAtStamped(t *testing.T) {
	eng := sim.New()
	link := LinkParams{Rate: 1 * units.Gbps, Delay: 0}
	n, a, b, sink := twoHosts(eng, link, qdisc.NewDropTail(10))
	eng.Schedule(units.Time(5*units.Microsecond), func() {
		a.Send(mkPkt(n, a, b, 100))
	})
	eng.Run()
	if len(sink.got) != 1 || sink.got[0].SentAt != units.Time(5*units.Microsecond) {
		t.Error("SentAt not stamped at host send time")
	}
}

func TestLinkValidation(t *testing.T) {
	if (LinkParams{Rate: 0, Delay: 0}).Validate() == nil {
		t.Error("zero rate validated")
	}
	if (LinkParams{Rate: 1, Delay: -1}).Validate() == nil {
		t.Error("negative delay validated")
	}
	if (LinkParams{Rate: 1 * units.Gbps, Delay: 0}).Validate() != nil {
		t.Error("valid link rejected")
	}
}

func TestPacketIDsUnique(t *testing.T) {
	eng := sim.New()
	n := New(eng)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := n.NewPacketID()
		if seen[id] {
			t.Fatalf("duplicate packet id %d", id)
		}
		seen[id] = true
	}
}

func TestNilObserverRestoresNop(t *testing.T) {
	eng := sim.New()
	n := New(eng)
	n.SetObserver(nil)
	if n.Observer() == nil {
		t.Fatal("observer nil after SetObserver(nil)")
	}
}

func TestOnSentHookFires(t *testing.T) {
	eng := sim.New()
	link := LinkParams{Rate: 1 * units.Gbps, Delay: 0}
	n, a, b, _ := twoHosts(eng, link, qdisc.NewDropTail(10))
	var sent []uint64
	a.Uplink().OnSent = func(p *packet.Packet) { sent = append(sent, p.ID) }
	p1 := mkPkt(n, a, b, 100)
	p2 := mkPkt(n, a, b, 100)
	a.Send(p1)
	a.Send(p2)
	eng.Run()
	if len(sent) != 2 || sent[0] != p1.ID || sent[1] != p2.ID {
		t.Errorf("OnSent saw %v, want [%d %d] in order", sent, p1.ID, p2.ID)
	}
}

func TestHeadDropperSurfacedToObserver(t *testing.T) {
	// A port wrapping a CoDel queue must report dequeue-time drops to the
	// network observer as early drops.
	eng := sim.New()
	net := New(eng)
	a := net.NewHost("a")
	bHost := net.NewHost("b")
	cfg := qdisc.DefaultCoDelConfig(1000, 10*units.Microsecond)
	cfg.ECN = true // non-ECT packets get dropped in the dropping state
	q := qdisc.NewCoDel(cfg)
	port := net.NewPort(a, bHost, LinkParams{Rate: 1 * units.Mbps, Delay: 0}, q)
	a.AttachUplink(port)
	bHost.AttachProtocol(&sinkProto{})
	rec := &recorder{}
	net.SetObserver(rec)

	// Flood with ACKs at a rate far beyond the 1 Mbps drain: sojourn grows
	// well past target and CoDel starts dropping at the head.
	for i := 0; i < 400; i++ {
		p := mkPkt(net, a, bHost, 0)
		p.Wire = 40
		a.Send(p)
	}
	eng.Run()
	early := 0
	for _, v := range rec.enq {
		if v == qdisc.DroppedEarly {
			early++
		}
	}
	if early == 0 {
		t.Error("CoDel head drops never reached the observer")
	}
}

// ecmpPair builds src -> switch with two parallel links to dst: the smallest
// fabric with a genuine route group.
func ecmpPair(eng *sim.Engine, seed uint64) (*Network, *Host, *Host, *Switch, []*Port) {
	n := New(eng)
	n.SetFlowHashSeed(seed)
	src := n.NewHost("src")
	dst := n.NewHost("dst")
	sw := n.NewSwitch("sw")
	link := LinkParams{Rate: 10 * units.Gbps, Delay: units.Microsecond}
	src.AttachUplink(n.NewPort(src, sw, link, qdisc.NewDropTail(100)))
	p0 := n.NewPort(sw, dst, link, qdisc.NewDropTail(100))
	p1 := n.NewPort(sw, dst, link, qdisc.NewDropTail(100))
	sw.AddPort(p0)
	sw.AddPort(p1)
	sw.SetRoutes(dst.ID(), p0, p1)
	dst.AttachProtocol(&sinkProto{})
	return n, src, dst, sw, []*Port{p0, p1}
}

func TestECMPFlowStickiness(t *testing.T) {
	// Every packet of one flow must take the same candidate: ECMP must not
	// reorder within a connection.
	eng := sim.New()
	n, src, dst, _, ports := ecmpPair(eng, 42)
	for i := 0; i < 50; i++ {
		p := mkPkt(n, src, dst, 1460)
		p.Src.Port, p.Dst.Port = 1000, 2000
		src.Send(p)
	}
	eng.Run()
	s0, _ := ports[0].Sent()
	s1, _ := ports[1].Sent()
	if s0+s1 != 50 {
		t.Fatalf("sent %d+%d packets, want 50", s0, s1)
	}
	if s0 != 0 && s1 != 0 {
		t.Errorf("one flow split across candidates: %d vs %d", s0, s1)
	}
}

func TestECMPSpreadsFlows(t *testing.T) {
	// Many distinct flows must land on both candidates.
	eng := sim.New()
	n, src, dst, _, ports := ecmpPair(eng, 42)
	for f := 0; f < 64; f++ {
		p := mkPkt(n, src, dst, 100)
		p.Src.Port = uint16(1000 + f)
		src.Send(p)
	}
	eng.Run()
	s0, _ := ports[0].Sent()
	s1, _ := ports[1].Sent()
	if s0 == 0 || s1 == 0 {
		t.Errorf("64 flows all hashed onto one candidate: %d vs %d", s0, s1)
	}
}

func TestFlowHashDeterministicAndSeedSensitive(t *testing.T) {
	a := packet.Addr{Node: 3, Port: 1234}
	b := packet.Addr{Node: 9, Port: 80}
	if FlowHash(7, a, b) != FlowHash(7, a, b) {
		t.Error("FlowHash not deterministic")
	}
	diff := 0
	for s := uint64(0); s < 32; s++ {
		if FlowHash(s, a, b)%2 != FlowHash(s+1, a, b)%2 {
			diff++
		}
	}
	if diff == 0 {
		t.Error("flow-to-path assignment never changes with the seed")
	}
}

func TestSingleRouteFastPathAndAccessors(t *testing.T) {
	eng := sim.New()
	n := New(eng)
	h := n.NewHost("h")
	sw := n.NewSwitch("sw")
	link := LinkParams{Rate: units.Gbps, Delay: 0}
	p0 := n.NewPort(sw, h, link, qdisc.NewDropTail(10))
	sw.AddPort(p0)
	sw.SetRoutes(h.ID(), p0) // 1-entry group collapses to the single route
	if sw.RouteFor(h.ID()) != p0 {
		t.Error("RouteFor lost the single candidate")
	}
	if got := sw.RoutesFor(h.ID()); len(got) != 1 || got[0] != p0 {
		t.Errorf("RoutesFor = %v", got)
	}
	sw.ClearRoute(h.ID())
	if sw.RouteFor(h.ID()) != nil || sw.RoutesFor(h.ID()) != nil {
		t.Error("ClearRoute left a route behind")
	}
}
