package netsim

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/units"
)

// sinkProto records delivered packets.
type sinkProto struct{ got []*packet.Packet }

func (s *sinkProto) Deliver(p *packet.Packet) { s.got = append(s.got, p) }

// recorder counts observer callbacks.
type recorder struct {
	enq     []qdisc.Verdict
	deliver []*packet.Packet
	times   []units.Time
}

func (r *recorder) PacketEnqueued(_ units.Time, _ *Port, _ *packet.Packet, v qdisc.Verdict) {
	r.enq = append(r.enq, v)
}
func (r *recorder) PacketDelivered(now units.Time, p *packet.Packet) {
	r.deliver = append(r.deliver, p)
	r.times = append(r.times, now)
}

// twoHosts wires A -> B directly with the given link and queue.
func twoHosts(eng *sim.Engine, link LinkParams, q qdisc.Qdisc) (*Network, *Host, *Host, *sinkProto) {
	n := New(eng)
	a := n.NewHost("a")
	b := n.NewHost("b")
	a.AttachUplink(n.NewPort(a, b, link, q))
	sink := &sinkProto{}
	b.AttachProtocol(sink)
	return n, a, b, sink
}

func mkPkt(n *Network, src, dst *Host, payload int) *packet.Packet {
	return &packet.Packet{
		ID:      n.NewPacketID(),
		Src:     packet.Addr{Node: src.ID(), Port: 1},
		Dst:     packet.Addr{Node: dst.ID(), Port: 2},
		Payload: payload,
		Flags:   packet.FlagACK,
	}
}

func TestSerializationPlusPropagationDelay(t *testing.T) {
	eng := sim.New()
	link := LinkParams{Rate: 1 * units.Gbps, Delay: 10 * units.Microsecond}
	n, a, b, sink := twoHosts(eng, link, qdisc.NewDropTail(10))
	p := mkPkt(n, a, b, 1460) // 1500 bytes on the wire = 12 µs at 1 Gbps
	a.Send(p)
	eng.Run()
	if len(sink.got) != 1 {
		t.Fatalf("delivered %d packets", len(sink.got))
	}
	want := units.Time(22 * units.Microsecond) // 12 tx + 10 prop
	if eng.Now() != want {
		t.Errorf("delivery at %v, want %v", eng.Now(), want)
	}
}

func TestBackToBackSerialization(t *testing.T) {
	// Two packets share one transmitter: the second is delayed by one
	// serialization time, not propagated in parallel.
	eng := sim.New()
	link := LinkParams{Rate: 1 * units.Gbps, Delay: 0}
	n, a, b, _ := twoHosts(eng, link, qdisc.NewDropTail(10))
	rec := &recorder{}
	n.SetObserver(rec)
	a.Send(mkPkt(n, a, b, 1460))
	a.Send(mkPkt(n, a, b, 1460))
	eng.Run()
	if len(rec.times) != 2 {
		t.Fatalf("delivered %d", len(rec.times))
	}
	if rec.times[1]-rec.times[0] != units.Time(12*units.Microsecond) {
		t.Errorf("spacing = %v, want 12µs serialization", rec.times[1]-rec.times[0])
	}
}

func TestHopStamping(t *testing.T) {
	eng := sim.New()
	n := New(eng)
	a := n.NewHost("a")
	sw := n.NewSwitch("sw")
	b := n.NewHost("b")
	link := LinkParams{Rate: 1 * units.Gbps, Delay: 0}
	a.AttachUplink(n.NewPort(a, sw, link, qdisc.NewDropTail(10)))
	down := n.NewPort(sw, b, link, qdisc.NewDropTail(10))
	sw.AddPort(down)
	sw.SetRoute(b.ID(), down)
	sink := &sinkProto{}
	b.AttachProtocol(sink)

	p := mkPkt(n, a, b, 100)
	a.Send(p)
	eng.Run()
	if len(sink.got) != 1 {
		t.Fatal("not delivered")
	}
	if sink.got[0].Hops != 2 {
		t.Errorf("hops = %d, want 2 (host->switch->host)", sink.got[0].Hops)
	}
}

func TestSwitchRoutesByDestination(t *testing.T) {
	eng := sim.New()
	n := New(eng)
	sw := n.NewSwitch("sw")
	hosts := make([]*Host, 3)
	sinks := make([]*sinkProto, 3)
	link := LinkParams{Rate: 1 * units.Gbps, Delay: 0}
	for i := range hosts {
		hosts[i] = n.NewHost("h")
		hosts[i].AttachUplink(n.NewPort(hosts[i], sw, link, qdisc.NewDropTail(10)))
		down := n.NewPort(sw, hosts[i], link, qdisc.NewDropTail(10))
		sw.AddPort(down)
		sw.SetRoute(hosts[i].ID(), down)
		sinks[i] = &sinkProto{}
		hosts[i].AttachProtocol(sinks[i])
	}
	hosts[0].Send(mkPkt(n, hosts[0], hosts[1], 10))
	hosts[0].Send(mkPkt(n, hosts[0], hosts[2], 10))
	hosts[1].Send(mkPkt(n, hosts[1], hosts[2], 10))
	eng.Run()
	if len(sinks[0].got) != 0 || len(sinks[1].got) != 1 || len(sinks[2].got) != 2 {
		t.Errorf("deliveries = %d/%d/%d, want 0/1/2",
			len(sinks[0].got), len(sinks[1].got), len(sinks[2].got))
	}
}

func TestMisroutedPacketPanics(t *testing.T) {
	eng := sim.New()
	n := New(eng)
	a := n.NewHost("a")
	b := n.NewHost("b")
	link := LinkParams{Rate: 1 * units.Gbps, Delay: 0}
	// Wire a's uplink to b but address the packet to a third node id.
	a.AttachUplink(n.NewPort(a, b, link, qdisc.NewDropTail(10)))
	p := mkPkt(n, a, b, 10)
	p.Dst.Node = 99
	a.Send(p)
	defer func() {
		if recover() == nil {
			t.Error("misrouted delivery must panic")
		}
	}()
	eng.Run()
}

func TestSwitchWithoutRoutePanics(t *testing.T) {
	eng := sim.New()
	n := New(eng)
	a := n.NewHost("a")
	sw := n.NewSwitch("sw")
	link := LinkParams{Rate: 1 * units.Gbps, Delay: 0}
	a.AttachUplink(n.NewPort(a, sw, link, qdisc.NewDropTail(10)))
	p := mkPkt(n, a, a, 10)
	p.Dst.Node = 42
	a.Send(p)
	defer func() {
		if recover() == nil {
			t.Error("unrouted switch delivery must panic")
		}
	}()
	eng.Run()
}

func TestObserverSeesDropsAndDeliveries(t *testing.T) {
	eng := sim.New()
	link := LinkParams{Rate: 1 * units.Gbps, Delay: 0}
	n, a, b, _ := twoHosts(eng, link, qdisc.NewDropTail(1))
	rec := &recorder{}
	n.SetObserver(rec)
	// Burst of 5: queue holds 1 + 1 in flight; expect drops.
	for i := 0; i < 5; i++ {
		a.Send(mkPkt(n, a, b, 1460))
	}
	eng.Run()
	drops := 0
	for _, v := range rec.enq {
		if v.Dropped() {
			drops++
		}
	}
	if drops == 0 {
		t.Error("no drops observed with 1-packet queue")
	}
	if len(rec.deliver)+drops != 5 {
		t.Errorf("delivered %d + dropped %d != 5", len(rec.deliver), drops)
	}
}

func TestPortCounters(t *testing.T) {
	eng := sim.New()
	link := LinkParams{Rate: 1 * units.Gbps, Delay: 0}
	n, a, b, _ := twoHosts(eng, link, qdisc.NewDropTail(10))
	a.Send(mkPkt(n, a, b, 1460))
	a.Send(mkPkt(n, a, b, 460))
	eng.Run()
	pkts, bytes := a.Uplink().Sent()
	if pkts != 2 {
		t.Errorf("sent packets = %d", pkts)
	}
	if bytes != 1500+500 {
		t.Errorf("sent bytes = %d, want 2000", bytes)
	}
}

func TestSentAtStamped(t *testing.T) {
	eng := sim.New()
	link := LinkParams{Rate: 1 * units.Gbps, Delay: 0}
	n, a, b, sink := twoHosts(eng, link, qdisc.NewDropTail(10))
	eng.Schedule(units.Time(5*units.Microsecond), func() {
		a.Send(mkPkt(n, a, b, 100))
	})
	eng.Run()
	if len(sink.got) != 1 || sink.got[0].SentAt != units.Time(5*units.Microsecond) {
		t.Error("SentAt not stamped at host send time")
	}
}

func TestLinkValidation(t *testing.T) {
	if (LinkParams{Rate: 0, Delay: 0}).Validate() == nil {
		t.Error("zero rate validated")
	}
	if (LinkParams{Rate: 1, Delay: -1}).Validate() == nil {
		t.Error("negative delay validated")
	}
	if (LinkParams{Rate: 1 * units.Gbps, Delay: 0}).Validate() != nil {
		t.Error("valid link rejected")
	}
}

func TestPacketIDsUnique(t *testing.T) {
	eng := sim.New()
	n := New(eng)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := n.NewPacketID()
		if seen[id] {
			t.Fatalf("duplicate packet id %d", id)
		}
		seen[id] = true
	}
}

func TestNilObserverRestoresNop(t *testing.T) {
	eng := sim.New()
	n := New(eng)
	n.SetObserver(nil)
	if n.Observer() == nil {
		t.Fatal("observer nil after SetObserver(nil)")
	}
}

func TestOnSentHookFires(t *testing.T) {
	eng := sim.New()
	link := LinkParams{Rate: 1 * units.Gbps, Delay: 0}
	n, a, b, _ := twoHosts(eng, link, qdisc.NewDropTail(10))
	var sent []uint64
	a.Uplink().OnSent = func(p *packet.Packet) { sent = append(sent, p.ID) }
	p1 := mkPkt(n, a, b, 100)
	p2 := mkPkt(n, a, b, 100)
	a.Send(p1)
	a.Send(p2)
	eng.Run()
	if len(sent) != 2 || sent[0] != p1.ID || sent[1] != p2.ID {
		t.Errorf("OnSent saw %v, want [%d %d] in order", sent, p1.ID, p2.ID)
	}
}

func TestHeadDropperSurfacedToObserver(t *testing.T) {
	// A port wrapping a CoDel queue must report dequeue-time drops to the
	// network observer as early drops.
	eng := sim.New()
	net := New(eng)
	a := net.NewHost("a")
	bHost := net.NewHost("b")
	cfg := qdisc.DefaultCoDelConfig(1000, 10*units.Microsecond)
	cfg.ECN = true // non-ECT packets get dropped in the dropping state
	q := qdisc.NewCoDel(cfg)
	port := net.NewPort(a, bHost, LinkParams{Rate: 1 * units.Mbps, Delay: 0}, q)
	a.AttachUplink(port)
	bHost.AttachProtocol(&sinkProto{})
	rec := &recorder{}
	net.SetObserver(rec)

	// Flood with ACKs at a rate far beyond the 1 Mbps drain: sojourn grows
	// well past target and CoDel starts dropping at the head.
	for i := 0; i < 400; i++ {
		p := mkPkt(net, a, bHost, 0)
		p.Wire = 40
		a.Send(p)
	}
	eng.Run()
	early := 0
	for _, v := range rec.enq {
		if v == qdisc.DroppedEarly {
			early++
		}
	}
	if early == 0 {
		t.Error("CoDel head drops never reached the observer")
	}
}
