// notify.go implements switch-originated congestion notifications
// (DESIGN.md §2.8). When a tracked port's queue occupancy crosses a
// configured threshold, the switch emits one notification per episode: a
// control event delayed by the fabric's wire-delay constant that (a) marks
// the hot port — and the upstream egresses feeding its owner — so ECMP
// reselection steers new flows onto cold candidates for an affinity window,
// and (b) gates the injection rate of every source host observed crossing
// the hot queue, via a token-bucket throttle that decays back to line rate
// after a quiet period. All notifier state mutates exclusively in control
// context (globally-serialized events with every shard worker parked), so
// results are bit-identical at any shard or worker count.
package netsim

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// NotifyConfig parameterizes the congestion notifier.
type NotifyConfig struct {
	// Threshold is the queue occupancy, in packets, at which a tracked port
	// emits a notification. Must be >= 1.
	Threshold int
	// Reroute enables congestion-aware ECMP reselection: flows hashed onto a
	// hot port re-salt onto a cold candidate of the same route group.
	Reroute bool
	// Throttle enables source injection gating: hosts whose packets cross a
	// hot queue have their uplink paced down, decaying back to line rate
	// after Quiet without further notifications.
	Throttle bool
	// Affinity is how long a hot marking lasts. Within one episode the
	// re-salt generation is fixed, so a given flow keeps one alternate path
	// — reselection cannot flap a flow between candidates packet by packet.
	Affinity units.Duration
	// Quiet is the throttle decay clock: a gated host doubles its rate every
	// Quiet after its last notification until it is back at line rate.
	Quiet units.Duration
	// Lag delays the notification control event by a fixed fabric constant
	// (the minimum core-link propagation delay — at least the shard group's
	// lookahead). An occupancy crossing observed inside a parallel window can
	// only become a control event at the next barrier, after shards raced up
	// to one lookahead past it; firing the notification at crossing+Lag makes
	// serial runs incur the identical delay, so results stay bit-identical at
	// any shard count. It doubles as the wire delay a real notification frame
	// would incur switch-to-source. Not a tuning knob: it is derived from the
	// fabric, not configured.
	Lag units.Duration
}

// Validate reports a parameter error, or nil.
func (c NotifyConfig) Validate() error {
	switch {
	case c.Threshold < 1:
		return fmt.Errorf("netsim: notify threshold %d must be >= 1 packet", c.Threshold)
	case !c.Reroute && !c.Throttle:
		return fmt.Errorf("netsim: notifier needs at least one mechanism (Reroute or Throttle)")
	case c.Affinity <= 0:
		return fmt.Errorf("netsim: notify affinity window %v must be positive", c.Affinity)
	case c.Quiet <= 0:
		return fmt.Errorf("netsim: notify quiet period %v must be positive", c.Quiet)
	case c.Lag < 0:
		return fmt.Errorf("netsim: notify lag must be non-negative, got %v", c.Lag)
	}
	return nil
}

// NotifyStats counts the notifier's lifecycle transitions. Every counter is
// mutated in control context except Rerouted, which is summed from per-port
// shard-owned counters when read.
type NotifyStats struct {
	Notifications uint64 // notification control events fired
	HotEpisodes   uint64 // cold -> hot port transitions
	Rerouted      uint64 // packets steered off a hot primary egress
	Throttles     uint64 // host gate halvings
	Recoveries    uint64 // hosts restored to line rate
}

// notifyPort is the notifier's view of one tracked egress port.
type notifyPort struct {
	port  *Port
	shard int
	// feeders are tracked switch egresses whose peer is this port's owner:
	// the upstream hops whose ECMP choice decides whether traffic reaches
	// this port at all. A hot spine->leaf down-port is invisible to the
	// remote leaves that loaded it, so the notification marks the feeders
	// too — steering new flows off the congested switch entirely.
	feeders []*Port

	// Episode state written by the owning shard during parallel windows (the
	// observer tee) and read/reset in control context. The barrier protocol
	// parks every worker before a control event runs, so these cross the
	// goroutine boundary only through that synchronization.
	armed bool
	srcs  []packet.NodeID // senders seen crossing the hot queue, append order

	// nextArm rate-limits re-notification: written in control context, read
	// by the owning shard during windows (workers park before control runs).
	nextArm units.Time
}

// throttleHost is one gated source host. All fields mutate in control
// context; the live gate mirror lives on the host's uplink Port, read by the
// owning shard's transmitter between barriers.
type throttleHost struct {
	up   *Port
	line units.Bandwidth
	gate units.Bandwidth // 0 = line rate (no gate installed)
	// lastHit is the time of the latest notification that throttled this
	// host; the decay timer restarts its quiet clock from here.
	lastHit units.Time
	armed   bool // a decay timer is pending (invariant: armed iff gate != 0)
}

// minGateDiv bounds the throttle floor: the gate never drops below
// line rate / minGateDiv, so a persistently notified host keeps draining
// and the decay ladder back to line rate stays short (at most
// log2(minGateDiv) quiet periods).
const minGateDiv = 16

// Notifier implements switch-originated congestion notifications over a
// shard group. Build one per cluster with NewNotifier, Track every switch
// egress that can congest, RegisterHost every throttleable source, and
// install a shard observer tee that forwards enqueue verdicts to
// NoteEnqueue.
type Notifier struct {
	g   *sim.Group
	net *Network
	cfg NotifyConfig

	tracked []*notifyPort
	hosts   map[packet.NodeID]*throttleHost

	stats NotifyStats
}

// NewNotifier builds a notifier over the group's control engine.
func NewNotifier(g *sim.Group, net *Network, cfg NotifyConfig) *Notifier {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Notifier{g: g, net: net, cfg: cfg, hosts: make(map[packet.NodeID]*throttleHost)}
}

// Config returns the notifier's configuration.
func (n *Notifier) Config() NotifyConfig { return n.cfg }

// Stats returns a snapshot of the lifecycle counters. Call between runs or
// in control context; the per-port reroute counters are summed in tracked
// order, so the snapshot is deterministic.
func (n *Notifier) Stats() NotifyStats {
	s := n.stats
	for _, np := range n.tracked {
		s.Rerouted += np.port.rerouted
	}
	return s
}

// Track registers a switch egress with the notifier. Tracking wires the
// feeder relation in both directions against every previously tracked port,
// so registration order only affects internal slice order, never behaviour.
func (n *Notifier) Track(p *Port) {
	if p == nil || p.noti != nil {
		return
	}
	np := &notifyPort{port: p, shard: p.sh.id}
	p.noti = np
	for _, o := range n.tracked {
		if _, ok := o.port.owner.(*Switch); ok && o.port.peer == p.owner {
			np.feeders = append(np.feeders, o.port)
		}
		if _, ok := p.owner.(*Switch); ok && p.peer == o.port.owner {
			o.feeders = append(o.feeders, p)
		}
	}
	n.tracked = append(n.tracked, np)
}

// RegisterHost makes a host throttleable: notifications naming it as a
// source gate its uplink. The line rate is captured at registration.
func (n *Notifier) RegisterHost(h *Host) {
	if h == nil || h.uplink == nil {
		return
	}
	n.hosts[h.id] = &throttleHost{up: h.uplink, line: h.uplink.link.Rate}
}

// NoteEnqueue observes one enqueue verdict on the owning shard (the observer
// tee). If the port is tracked and its queue sits at or above the threshold,
// the packet's source is recorded for throttling and — unless a notification
// is already in flight or the episode is rate-limited — one notification
// control event is routed at now+Lag, ordered exactly where a serial engine
// would place it.
func (n *Notifier) NoteEnqueue(shard int, now units.Time, port *Port, pkt *packet.Packet) {
	np := port.noti
	if np == nil || port.queue.Len() < n.cfg.Threshold {
		return
	}
	if n.cfg.Throttle {
		src := pkt.Src.Node
		known := false
		for _, s := range np.srcs {
			if s == src {
				known = true
				break
			}
		}
		if !known {
			np.srcs = append(np.srcs, src)
		}
	}
	if np.armed || now < np.nextArm {
		return
	}
	np.armed = true
	eng := n.g.Shards()[shard]
	n.g.ScheduleControl(shard, now.Add(n.cfg.Lag), eng.ChildLineage(), func() { n.fire(np) })
}

// fire is the notification control event: mark the hot port (and its
// feeders) for reselection, gate the recorded sources, and open the
// re-notification rate limit window.
func (n *Notifier) fire(np *notifyPort) {
	now := n.g.Ctrl().Now()
	np.armed = false
	// Rate-limit the next notification to half a quiet period out: fast
	// enough to extend a standing episode's affinity window, slow enough
	// that a saturated queue does not fire per packet.
	np.nextArm = now.Add(n.cfg.Quiet / 2)
	n.stats.Notifications++
	if n.cfg.Reroute {
		n.markHot(np.port, now)
		for _, f := range np.feeders {
			n.markHot(f, now)
		}
	}
	if n.cfg.Throttle {
		for _, src := range np.srcs {
			if th := n.hosts[src]; th != nil {
				n.throttleHit(th, now)
			}
		}
	}
	np.srcs = np.srcs[:0]
}

// markHot opens (or extends) a port's hot window. A cold port starting a new
// episode advances the re-salt generation; extensions keep it, so flows
// rerouted during the episode stay on their alternate path.
func (n *Notifier) markHot(p *Port, now units.Time) {
	if !p.hotAt(now) {
		p.hotGen++
		n.stats.HotEpisodes++
	}
	p.hotUntil = now.Add(n.cfg.Affinity)
}

// throttleHit halves a host's injection gate (floored at line/minGateDiv)
// and (re)starts its decay clock. Control context.
func (n *Notifier) throttleHit(th *throttleHost, now units.Time) {
	g := th.gate
	if g == 0 {
		g = th.line / 2
	} else {
		g /= 2
	}
	if floor := th.line / minGateDiv; g < floor {
		g = floor
	}
	th.gate = g
	th.up.gate = g
	th.lastHit = now
	n.stats.Throttles++
	if !th.armed {
		th.armed = true
		n.g.Ctrl().Schedule(now.Add(n.cfg.Quiet), func() { n.decay(th) })
	}
}

// decay is the throttle recovery event: after a full quiet period without a
// new hit the gate doubles, and once it reaches line rate the gate lifts.
// The timer stays armed exactly while a gate is installed, so a throttled
// host always returns to line rate in at most log2(minGateDiv)+1 quiet
// periods after its last notification.
func (n *Notifier) decay(th *throttleHost) {
	now := n.g.Ctrl().Now()
	if quietAt := th.lastHit.Add(n.cfg.Quiet); now < quietAt {
		// Hit again since this timer was armed: wait out the rest of the
		// new quiet window.
		n.g.Ctrl().Schedule(quietAt, func() { n.decay(th) })
		return
	}
	g := th.gate * 2
	if g >= th.line {
		th.gate = 0
		th.up.gate = 0
		th.armed = false
		n.stats.Recoveries++
		return
	}
	th.gate = g
	th.up.gate = g
	n.g.Ctrl().Schedule(now.Add(n.cfg.Quiet), func() { n.decay(th) })
}
