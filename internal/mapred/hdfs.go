package mapred

import (
	"repro/internal/packet"
	"repro/internal/tcp"
	"repro/internal/units"
)

// HDFS write-pipeline model. When a reduce task commits its output with
// replication factor > 1, the bytes stream over the network through a
// pipeline of replica nodes, exactly as HDFS DataNodes chain writes:
// writer -> replica1 -> replica2. Each hop is a real simulated TCP
// connection with cut-through forwarding (bytes are relayed downstream as
// they arrive), so output commits add genuine post-shuffle network pressure
// — the "production from the batch workload" the paper's introduction says
// low-latency services will read.
//
// Terasort is conventionally run with output replication 1 (no pipeline);
// JobConfig's default preserves that. Set ReplicationFactor to 3 for
// HDFS-default behaviour.

// ReplicaPort is the well-known port of the DataNode write service.
const ReplicaPort uint16 = 50010

// replicaFlowSpec describes one expected inbound replica stream at a node.
type replicaFlowSpec struct {
	size   units.ByteSize
	chain  []int  // worker indices still downstream of the receiving node
	onDone func() // runs when this hop has received the full stream
}

// replicaTargets returns the pipeline nodes for a writer, chosen like
// HDFS's default placement: the next nodes in index order (a deterministic
// stand-in for rack-aware placement on our flat topologies).
func replicaTargets(writer, nodes, replicas int) []int {
	var out []int
	for i := 1; i < replicas && len(out) < nodes-1; i++ {
		out = append(out, (writer+i)%nodes)
	}
	return out
}

// installReplicaServer registers the DataNode write sink on a worker.
func (j *Job) installReplicaServer(w *Worker) {
	w.Stack.Listen(ReplicaPort, func(c *tcp.Conn) {
		spec, ok := j.replicaFlows[c.RemoteAddr()]
		if !ok {
			c.Close()
			return
		}
		delete(j.replicaFlows, c.RemoteAddr())
		var next *tcp.Conn
		if len(spec.chain) > 0 {
			next = j.dialReplica(w, spec.size, spec.chain, spec.onDone)
		}
		var got units.ByteSize
		finished := false
		c.OnDeliver = func(n int) {
			got += units.ByteSize(n)
			if next != nil {
				next.Send(n) // cut-through forwarding downstream
			}
			if !finished && got >= spec.size {
				finished = true
				if next != nil {
					next.Close()
				}
				spec.onDone()
			}
		}
	})
}

// dialReplica opens the next pipeline hop from worker w toward chain[0],
// registering the inbound-flow spec the far server will look up.
func (j *Job) dialReplica(w *Worker, size units.ByteSize, chain []int, onDone func()) *tcp.Conn {
	dst := packet.Addr{Node: j.workers[chain[0]].Stack.Host().ID(), Port: ReplicaPort}
	c := w.Stack.Dial(dst)
	j.replicaFlows[c.LocalAddr()] = &replicaFlowSpec{size: size, chain: chain[1:], onDone: onDone}
	return c
}

// startOutputCommit begins the replicated write of a reduce task's output.
// done fires once every replica holds the full stream. With replication <= 1
// it fires immediately (the local write is already in the reduce time).
func (j *Job) startOutputCommit(r *ReduceTask, done func()) {
	targets := replicaTargets(r.Node, len(j.workers), j.Cfg.ReplicationFactor)
	if len(targets) == 0 {
		done()
		return
	}
	size := r.Received // Terasort: output bytes = input bytes
	if size <= 0 {
		done()
		return
	}
	remaining := len(targets)
	hopDone := func() {
		remaining--
		if remaining == 0 {
			done()
		}
	}
	w := j.workers[r.Node]
	c := j.dialReplica(w, size, targets, hopDone)
	c.Send(int(size))
	c.Close()
}
