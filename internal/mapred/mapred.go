// Package mapred implements the MapReduce cluster simulator that drives the
// network experiments, playing the role MRPerf played in the paper's
// methodology. It models a Hadoop-style job: block-based input placement,
// map slots with compute/disk phases, the all-to-all shuffle in which every
// reducer fetches a partition from every map output over a real simulated
// TCP connection, and a final reduce (merge + write) phase.
//
// The shuffle is the point of contact with the paper: each fetch is a TCP
// flow through the shared fabric, so the switch egress queues see exactly
// the data-plus-ACK mix whose mistreatment by ECN-enabled AQMs the paper
// analyses.
package mapred

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// ShufflePort is the well-known port map-output servers listen on.
const ShufflePort uint16 = 13562

// NodeSpec describes the compute capabilities of one worker.
type NodeSpec struct {
	MapSlots    int
	ReduceSlots int
	// DiskRead/DiskWrite bound the streaming disk bandwidth.
	DiskRead, DiskWrite units.Bandwidth
	// MapCPURate and ReduceCPURate are the record-processing rates of the
	// map and reduce functions (bytes/second through the CPU).
	MapCPURate, ReduceCPURate units.Bandwidth
}

// DefaultNodeSpec returns a Hadoop-era worker: 2+2 slots, a small RAID of
// spinning disks (~250 MB/s streaming), CPU fast enough that Terasort is
// I/O- and network-bound.
func DefaultNodeSpec() NodeSpec {
	return NodeSpec{
		MapSlots:      2,
		ReduceSlots:   2,
		DiskRead:      2 * units.Gbps,
		DiskWrite:     2 * units.Gbps,
		MapCPURate:    8 * units.Gbps,
		ReduceCPURate: 8 * units.Gbps,
	}
}

// Validate reports a spec error, or nil.
func (s *NodeSpec) Validate() error {
	switch {
	case s.MapSlots <= 0 || s.ReduceSlots <= 0:
		return fmt.Errorf("mapred: slots must be positive")
	case s.DiskRead <= 0 || s.DiskWrite <= 0:
		return fmt.Errorf("mapred: disk rates must be positive")
	case s.MapCPURate <= 0 || s.ReduceCPURate <= 0:
		return fmt.Errorf("mapred: CPU rates must be positive")
	}
	return nil
}

// mapTaskTime returns the duration of one map task over block bytes with
// output ratio r: read + process + write intermediate output.
func (s *NodeSpec) mapTaskTime(block units.ByteSize, r float64) units.Duration {
	read := s.DiskRead.TransmitTime(block * 8 / 8) // streaming read
	cpu := s.MapCPURate.TransmitTime(block)
	out := units.ByteSize(float64(block) * r)
	write := s.DiskWrite.TransmitTime(out)
	return read + cpu + write
}

// reduceTaskTime returns the post-shuffle merge/sort/write duration over the
// reducer's total input bytes.
func (s *NodeSpec) reduceTaskTime(input units.ByteSize) units.Duration {
	cpu := s.ReduceCPURate.TransmitTime(input)
	write := s.DiskWrite.TransmitTime(input)
	return cpu + write
}

// JobConfig describes one MapReduce job.
type JobConfig struct {
	Name string
	// InputSize is the total job input.
	InputSize units.ByteSize
	// BlockSize is the HDFS block size; the job runs one map per block.
	BlockSize units.ByteSize
	// Reducers is the number of reduce tasks.
	Reducers int
	// OutputRatio is map-output bytes per input byte (Terasort: 1.0).
	OutputRatio float64
	// ParallelFetches bounds concurrent shuffle fetches per reducer
	// (Hadoop's mapreduce.reduce.shuffle.parallelcopies, default 5).
	ParallelFetches int
	// SlowStartAfterMaps delays reducer launch until this fraction of maps
	// finished (Hadoop's slowstart, default 0.05 — reducers start early and
	// fetch as map outputs appear).
	SlowStartAfterMaps float64
	// ReplicationFactor is the HDFS replication of the job's output.
	// 0 or 1 means a local write only (Terasort's convention); 3 streams
	// the output through a two-hop DataNode write pipeline over the
	// network (HDFS default).
	ReplicationFactor int
	// ShufflePort overrides the port this job's map-output servers listen
	// on (0 = the well-known ShufflePort). The multi-job Scheduler hands
	// each concurrent job a distinct port so their shuffle servers coexist
	// on one stack.
	ShufflePort uint16
}

// shufflePort resolves the job's map-output server port.
func (c *JobConfig) shufflePort() uint16 {
	if c.ShufflePort != 0 {
		return c.ShufflePort
	}
	return ShufflePort
}

// TerasortConfig returns a Terasort-shaped job over the given input size:
// output ratio 1.0, identity-ish CPU cost.
func TerasortConfig(input units.ByteSize, reducers int) JobConfig {
	return JobConfig{
		Name:               "terasort",
		InputSize:          input,
		BlockSize:          64 * units.MiB,
		Reducers:           reducers,
		OutputRatio:        1.0,
		ParallelFetches:    5,
		SlowStartAfterMaps: 0.05,
	}
}

// WordCountConfig returns a WordCount-shaped job: aggregation shrinks map
// output (ratio 0.2), so the shuffle carries far less than the input. The
// paper claims its findings extend to "other types of workloads that present
// the characteristics described"; this config is the harness for checking
// that on a lighter-shuffle job.
func WordCountConfig(input units.ByteSize, reducers int) JobConfig {
	cfg := TerasortConfig(input, reducers)
	cfg.Name = "wordcount"
	cfg.OutputRatio = 0.2
	return cfg
}

// ShuffleOnlyConfig returns a degenerate job whose maps are nearly free, so
// runtime is dominated by the all-to-all transfer — a pure network
// microworkload for qdisc studies.
func ShuffleOnlyConfig(input units.ByteSize, reducers int) JobConfig {
	cfg := TerasortConfig(input, reducers)
	cfg.Name = "shuffle-only"
	cfg.SlowStartAfterMaps = 0
	return cfg
}

// Validate reports a config error, or nil.
func (c *JobConfig) Validate() error {
	switch {
	case c.InputSize <= 0:
		return fmt.Errorf("mapred: input size must be positive")
	case c.BlockSize <= 0:
		return fmt.Errorf("mapred: block size must be positive")
	case c.Reducers <= 0:
		return fmt.Errorf("mapred: reducers must be positive")
	case c.OutputRatio <= 0:
		return fmt.Errorf("mapred: output ratio must be positive")
	case c.ParallelFetches <= 0:
		return fmt.Errorf("mapred: parallel fetches must be positive")
	case c.SlowStartAfterMaps < 0 || c.SlowStartAfterMaps > 1:
		return fmt.Errorf("mapred: slowstart fraction out of [0,1]")
	case c.ReplicationFactor < 0:
		return fmt.Errorf("mapred: replication factor must be non-negative")
	}
	return nil
}

// NumMaps returns the number of map tasks the config induces.
func (c *JobConfig) NumMaps() int {
	n := int((c.InputSize + c.BlockSize - 1) / c.BlockSize)
	if n < 1 {
		n = 1
	}
	return n
}

// TaskState tracks one task's lifecycle.
type TaskState uint8

// Task states.
const (
	TaskPending TaskState = iota
	TaskRunning
	TaskShuffling // reduce only
	TaskDone
)

// MapTask is one map task instance.
type MapTask struct {
	ID    int
	Node  int // worker index
	Block units.ByteSize
	State TaskState
	Start units.Time
	End   units.Time
}

// OutputPerReducer returns the partition size this map produces for each
// reducer.
func (m *MapTask) OutputPerReducer(cfg *JobConfig) units.ByteSize {
	out := units.ByteSize(float64(m.Block) * cfg.OutputRatio)
	per := out / units.ByteSize(cfg.Reducers)
	if per < 1 {
		per = 1
	}
	return per
}

// ReduceTask is one reduce task instance.
type ReduceTask struct {
	ID    int
	Node  int
	State TaskState
	// Fetched counts completed fetches; Received counts payload bytes.
	Fetched      int
	Received     units.ByteSize
	Start        units.Time // slot acquired
	ShuffleStart units.Time // first fetch issued
	ShuffleEnd   units.Time // last fetch completed
	End          units.Time // reduce function finished

	pendingFetch []int // map IDs whose output is ready to fetch
	activeFetch  int
	queuedFetch  map[int]bool // map IDs already queued or fetched
}

// Worker is the per-node runtime: slots plus the map-output server.
type Worker struct {
	Index int
	Spec  NodeSpec
	Stack *tcp.Stack

	mapFree    int
	reduceFree int
	mapQueue   []*MapTask
}

// ControlPlane routes a job event with zero-lag global effects (the reduce
// completion timer, fired from a shard-local shuffle context) onto the
// globally-serialized control engine of a sharded run. at is the absolute
// firing time; worker is the scheduling worker's index, which tells the
// router whose shard context (clock, causal lineage — the ordering key a
// serial engine would have stamped) the registration carries.
type ControlPlane interface {
	ScheduleControl(worker int, at units.Time, fn func())
}

// Job orchestrates one MapReduce execution over a set of workers.
//
// In a sharded run the job's engine is the group's control engine: Start,
// map completions and reduce completions — the events whose effects span
// workers — execute there, globally serialized, with every shard clock
// aligned. Shuffle fetches live entirely on the issuing reducer's shard and
// use that worker's stack engine. With one shard both engines are the same
// object and the distinction compiles away.
type Job struct {
	Cfg      JobConfig
	eng      *sim.Engine
	workers  []*Worker
	ctrl     ControlPlane   // nil: schedule control events on eng directly
	fluid    FluidStarter   // nil: every shuffle fetch runs at packet level
	fluidLag units.Duration // feedback delay for control-context hops
	fluidSeq uint32         // distinguishes fluid flows' ECMP hash inputs

	Maps    []*MapTask
	Reduces []*ReduceTask

	mapsDone     int
	reducesDone  int
	reducersLive bool

	// Fetch metadata registry: (reducer conn local addr) -> size, consumed
	// by the shuffle servers. Written from the reducer's shard, read from
	// the mapper's — the one genuinely shared map of the shuffle — so every
	// access holds fetchMu. Uncontended in serial runs, and fetch setup is
	// far off the per-packet hot path in sharded ones.
	fetchSize map[packet.Addr]units.ByteSize
	fetchMu   sync.Mutex
	// Replica-stream registry for the HDFS write pipeline, keyed by the
	// dialing end's address.
	replicaFlows map[packet.Addr]*replicaFlowSpec

	Started  units.Time
	Finished units.Time
	done     bool
	OnDone   func(*Job)

	// FetchRetries counts shuffle fetches that failed (connection error)
	// and were re-queued. Incremented under fetchMu (error callbacks run on
	// reducer shards); read after the run.
	FetchRetries int

	// Multi-job scheduling state. sched is nil when the job is the sole
	// tenant (the original single-job path, which owns the worker slot
	// counters directly); under a Scheduler the job keeps its own
	// per-worker map queues and every slot acquisition is arbitrated.
	sched  *Scheduler
	schedQ [][]*MapTask // per-worker pending maps (scheduled mode only)
	// runningMaps / runningReduces are the scheduler's fair-share
	// accounting: tasks of this job currently holding a slot.
	runningMaps    int
	runningReduces int
}

// NewJob builds a job over the workers. Workers must already have stacks
// attached; NewJob installs the shuffle server on each.
func NewJob(eng *sim.Engine, cfg JobConfig, workers []*Worker) *Job {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(workers) == 0 {
		panic("mapred: no workers")
	}
	for _, w := range workers {
		if err := w.Spec.Validate(); err != nil {
			panic(err)
		}
	}
	j := &Job{
		Cfg:          cfg,
		eng:          eng,
		workers:      workers,
		fetchSize:    make(map[packet.Addr]units.ByteSize),
		replicaFlows: make(map[packet.Addr]*replicaFlowSpec),
	}
	j.placeTasks()
	for _, w := range workers {
		j.installShuffleServer(w)
		if cfg.ReplicationFactor > 1 {
			j.installReplicaServer(w)
		}
	}
	return j
}

// SetControlPlane installs the sharded run's control router. Must be called
// before Start; nil (the default) schedules control events on the job
// engine directly, which is the serial path.
func (j *Job) SetControlPlane(cp ControlPlane) { j.ctrl = cp }

// FluidStarter is the hybrid engine's admission interface (implemented by
// flow.Fluid): offer a transfer to the fluid model, with false meaning the
// transfer must run at packet level. Declared here so mapred stays decoupled
// from the controller package.
type FluidStarter interface {
	StartFlow(src, dst packet.Addr, size units.ByteSize, demand units.Bandwidth,
		onComplete func(), onPromote func(remaining units.ByteSize)) bool
}

// SetFluid installs the hybrid engine's fluid controller: every shuffle
// fetch is offered to the fluid model first, falling back to a packet-level
// connection when refused — or mid-flight, when a path port promotes. Must
// be called before Start, together with a control plane. lag is the fabric's
// feedback delay (cluster.ControlLag): shard-context completions re-enter
// control context that much later, identically at every shard count.
func (j *Job) SetFluid(f FluidStarter, lag units.Duration) {
	j.fluid = f
	j.fluidLag = lag
}

// onCtrl runs fn in control context under the hybrid engine; on the pure
// packet path it calls fn inline, preserving the historical event order bit
// for bit. The hybrid engine needs fetch bookkeeping (and hence the next
// fetch's fluid admission) in control context because admission mutates
// controller state shared across shards; the fluidLag delay keeps the hop
// deterministic (see cluster.ControlLag).
func (j *Job) onCtrl(worker int, fn func()) {
	if j.fluid == nil || j.ctrl == nil {
		fn()
		return
	}
	j.ctrl.ScheduleControl(worker, j.engOf(worker).Now().Add(j.fluidLag), fn)
}

// engOf returns the engine a worker's shard events run on. With one shard
// it is the job engine.
func (j *Job) engOf(worker int) *sim.Engine {
	return j.workers[worker].Stack.Engine()
}

// placeTasks distributes map blocks and reducers round-robin, which matches
// HDFS default placement well enough for a network study: every node holds
// an equal share of blocks and runs its maps data-locally.
func (j *Job) placeTasks() {
	n := len(j.workers)
	m := j.Cfg.NumMaps()
	remaining := j.Cfg.InputSize
	for i := 0; i < m; i++ {
		block := j.Cfg.BlockSize
		if remaining < block {
			block = remaining
		}
		remaining -= block
		j.Maps = append(j.Maps, &MapTask{ID: i, Node: i % n, Block: block})
	}
	for r := 0; r < j.Cfg.Reducers; r++ {
		j.Reduces = append(j.Reduces, &ReduceTask{
			ID:          r,
			Node:        r % n,
			queuedFetch: make(map[int]bool),
		})
	}
}

// FetchRequestBytes models the HTTP GET a reducer sends on each shuffle
// connection. Being payload, it is ECT-capable under ECN — which is why real
// shuffles survive handshake-ACK drops: the request itself completes the
// handshake at the server.
const FetchRequestBytes = 120

// installShuffleServer registers the map-output server on a worker: when a
// reducer's connection delivers its fetch request, look up how many bytes
// that fetch moves and stream them, then close.
func (j *Job) installShuffleServer(w *Worker) {
	w.Stack.Listen(j.Cfg.shufflePort(), func(c *tcp.Conn) {
		var got int
		served := false
		c.OnDeliver = func(n int) {
			got += n
			if served || got < FetchRequestBytes {
				return
			}
			served = true
			j.fetchMu.Lock()
			size, ok := j.fetchSize[c.RemoteAddr()]
			j.fetchMu.Unlock()
			if !ok {
				// Unknown fetch: a stale retry; close immediately.
				c.Close()
				return
			}
			c.Send(int(size))
			c.Close()
		}
	})
}

// Start launches the job at the current simulated time. Sole-tenant jobs
// reset and own the workers' slot counters; scheduled jobs queue their maps
// per worker and let the Scheduler arbitrate every slot.
func (j *Job) Start() {
	j.Started = j.eng.Now()
	if j.sched != nil {
		j.schedQ = make([][]*MapTask, len(j.workers))
		for _, m := range j.Maps {
			j.schedQ[m.Node] = append(j.schedQ[m.Node], m)
		}
		for _, w := range j.workers {
			j.sched.pumpMaps(w)
		}
		// With slowstart 0, reducers launch immediately.
		j.maybeStartReducers()
		return
	}
	for _, w := range j.workers {
		w.mapFree = w.Spec.MapSlots
		w.reduceFree = w.Spec.ReduceSlots
		w.mapQueue = w.mapQueue[:0]
	}
	for _, m := range j.Maps {
		j.workers[m.Node].mapQueue = append(j.workers[m.Node].mapQueue, m)
	}
	for _, w := range j.workers {
		j.scheduleMaps(w)
	}
	// With slowstart 0, reducers launch immediately.
	j.maybeStartReducers()
}

// Done reports whether the job has finished.
func (j *Job) Done() bool { return j.done }

// Runtime returns the job's completion time (valid once Done).
func (j *Job) Runtime() units.Duration { return j.Finished.Sub(j.Started) }

// ShuffleWindow returns the earliest fetch start and latest fetch end across
// reducers — the interval the throughput metric is computed over.
func (j *Job) ShuffleWindow() (units.Time, units.Time) {
	var lo, hi units.Time
	first := true
	for _, r := range j.Reduces {
		if r.ShuffleStart == 0 {
			continue
		}
		if first || r.ShuffleStart < lo {
			lo = r.ShuffleStart
			first = false
		}
		if r.ShuffleEnd > hi {
			hi = r.ShuffleEnd
		}
	}
	return lo, hi
}

// ShuffledBytes returns total payload moved by the shuffle.
func (j *Job) ShuffledBytes() units.ByteSize {
	var total units.ByteSize
	for _, r := range j.Reduces {
		total += r.Received
	}
	return total
}

// ----------------------------------------------------------------------
// Map phase

func (j *Job) scheduleMaps(w *Worker) {
	for w.mapFree > 0 && len(w.mapQueue) > 0 {
		task := w.mapQueue[0]
		w.mapQueue = w.mapQueue[1:]
		w.mapFree--
		j.startMapTask(w, task)
	}
}

// startMapTask launches one placed map task on a worker whose slot has
// already been acquired (by scheduleMaps or by the Scheduler).
func (j *Job) startMapTask(w *Worker, task *MapTask) {
	task.State = TaskRunning
	task.Start = j.eng.Now()
	dur := w.Spec.mapTaskTime(task.Block, j.Cfg.OutputRatio)
	j.eng.After(dur, func() { j.mapFinished(w, task) })
}

func (j *Job) mapFinished(w *Worker, task *MapTask) {
	task.State = TaskDone
	task.End = j.eng.Now()
	j.mapsDone++
	if j.sched != nil {
		j.sched.mapSlotFreed(j, w)
	} else {
		w.mapFree++
		j.scheduleMaps(w)
	}
	j.maybeStartReducers()
	// Publish this map's output to all live reducers.
	for _, r := range j.Reduces {
		if r.State == TaskShuffling && !r.queuedFetch[task.ID] {
			r.queuedFetch[task.ID] = true
			r.pendingFetch = append(r.pendingFetch, task.ID)
		}
	}
	j.pumpFetchers()
}

// ----------------------------------------------------------------------
// Shuffle phase

func (j *Job) maybeStartReducers() {
	if j.reducersLive {
		return
	}
	need := int(j.Cfg.SlowStartAfterMaps * float64(len(j.Maps)))
	if j.mapsDone < need {
		return
	}
	j.reducersLive = true
	if j.sched != nil {
		// The shared reduce slots are granted by policy, not grabbed.
		j.sched.pumpAllReduces()
		return
	}
	// Sort reducers by node for deterministic slot assignment.
	byNode := make([]*ReduceTask, len(j.Reduces))
	copy(byNode, j.Reduces)
	sort.SliceStable(byNode, func(a, b int) bool { return byNode[a].ID < byNode[b].ID })
	for _, r := range byNode {
		w := j.workers[r.Node]
		if w.reduceFree <= 0 {
			continue // reduce waves beyond slots start when a slot frees
		}
		w.reduceFree--
		j.activateReducer(r)
	}
}

func (j *Job) activateReducer(r *ReduceTask) {
	r.State = TaskShuffling
	r.Start = j.eng.Now()
	// Queue every already-finished map output.
	for _, m := range j.Maps {
		if m.State == TaskDone && !r.queuedFetch[m.ID] {
			r.queuedFetch[m.ID] = true
			r.pendingFetch = append(r.pendingFetch, m.ID)
		}
	}
	j.pumpFetcher(r)
}

func (j *Job) pumpFetchers() {
	for _, r := range j.Reduces {
		if r.State == TaskShuffling {
			j.pumpFetcher(r)
		}
	}
}

// pumpFetcher issues fetches for reducer r up to the parallelism bound.
func (j *Job) pumpFetcher(r *ReduceTask) {
	for r.activeFetch < j.Cfg.ParallelFetches && len(r.pendingFetch) > 0 {
		mapID := r.pendingFetch[0]
		r.pendingFetch = r.pendingFetch[1:]
		r.activeFetch++
		if r.ShuffleStart == 0 {
			// Read the reducer's own shard clock: pumpFetcher runs either in
			// control context (all clocks aligned) or on the reducer's shard.
			r.ShuffleStart = j.engOf(r.Node).Now()
		}
		j.startFetch(r, mapID)
	}
}

// startFetch issues one shuffle fetch. On the pure packet path it opens the
// connection directly in the caller's context, exactly as it always has.
// Under the hybrid engine every fetch decision runs in control context
// (packet-fetch completions hop through onCtrl), so the fluid admission
// below mutates controller state with all shard workers parked.
func (j *Job) startFetch(r *ReduceTask, mapID int) {
	m := j.Maps[mapID]
	size := m.OutputPerReducer(&j.Cfg)
	if j.fluid == nil {
		j.packetFetch(r, mapID, size)
		return
	}
	mapper := j.workers[m.Node].Stack.Host()
	reducer := j.workers[r.Node].Stack.Host()
	j.fluidSeq++
	// The address pair only feeds the ECMP path hash; the sequence counter in
	// the reducer-side port spreads concurrent fetches over the spines the
	// way distinct ephemeral ports would.
	src := packet.Addr{Node: mapper.ID(), Port: j.Cfg.shufflePort()}
	dst := packet.Addr{Node: reducer.ID(), Port: uint16(0x8000 + j.fluidSeq&0x7fff)}
	// An app-limited stream: the fetcher's design concurrency shares the
	// mapper's uplink.
	demand := mapper.Uplink().Link().Rate / units.Bandwidth(j.Cfg.ParallelFetches)
	admitted := j.fluid.StartFlow(src, dst, size, demand,
		func() {
			r.Received += size
			r.Fetched++
			r.activeFetch--
			j.fetchDone(r)
		},
		func(remaining units.ByteSize) {
			r.Received += size - remaining
			j.packetFetch(r, mapID, remaining)
		})
	if !admitted {
		j.packetFetch(r, mapID, size)
	}
}

// packetFetch opens one packet-level shuffle connection: the reducer dials
// the mapper's shuffle server, which streams size bytes and closes.
func (j *Job) packetFetch(r *ReduceTask, mapID int, size units.ByteSize) {
	m := j.Maps[mapID]
	src := j.workers[r.Node].Stack
	dst := packet.Addr{Node: j.workers[m.Node].Stack.Host().ID(), Port: j.Cfg.shufflePort()}

	c := src.Dial(dst)
	j.fetchMu.Lock()
	j.fetchSize[c.LocalAddr()] = size
	j.fetchMu.Unlock()
	c.Send(FetchRequestBytes) // the "HTTP GET"; flows once established
	c.OnDeliver = func(n int) { r.Received += units.ByteSize(n) }
	c.OnEOF = func() {
		j.fetchMu.Lock()
		delete(j.fetchSize, c.LocalAddr())
		j.fetchMu.Unlock()
		j.onCtrl(r.Node, func() {
			r.Fetched++
			r.activeFetch--
			j.fetchDone(r)
		})
	}
	c.OnError = func(err error) {
		// Connection setup failed (SYN retries exhausted under extreme
		// congestion): re-queue the fetch, as Hadoop's fetcher does.
		j.fetchMu.Lock()
		delete(j.fetchSize, c.LocalAddr())
		j.FetchRetries++
		j.fetchMu.Unlock()
		j.onCtrl(r.Node, func() {
			r.activeFetch--
			r.pendingFetch = append(r.pendingFetch, mapID)
			j.pumpFetcher(r)
		})
	}
}

func (j *Job) fetchDone(r *ReduceTask) {
	if r.Fetched == len(j.Maps) {
		r.ShuffleEnd = j.engOf(r.Node).Now()
		j.startReduceCompute(r)
		return
	}
	j.pumpFetcher(r)
}

// ----------------------------------------------------------------------
// Reduce phase

func (j *Job) startReduceCompute(r *ReduceTask) {
	r.State = TaskRunning
	w := j.workers[r.Node]
	dur := w.Spec.reduceTaskTime(r.Received)
	finish := func() {
		// Commit the output through the HDFS write pipeline (a no-op at
		// replication <= 1), then finish the task.
		j.startOutputCommit(r, func() { j.reduceFinished(w, r) })
	}
	if j.ctrl != nil {
		// Sharded run: the reduce completion mutates global job state, so it
		// must run on the control engine, stamped with the reducer shard's
		// scheduling context so it sorts exactly where the serial engine
		// would have placed it.
		eng := j.engOf(r.Node)
		j.ctrl.ScheduleControl(r.Node, eng.Now().Add(dur), finish)
		return
	}
	j.eng.After(dur, finish)
}

func (j *Job) reduceFinished(w *Worker, r *ReduceTask) {
	r.State = TaskDone
	r.End = j.eng.Now()
	j.reducesDone++
	if j.sched != nil {
		j.sched.reduceSlotFreed(j, w)
	} else {
		w.reduceFree++
		// Launch a waiting reducer wave if any.
		for _, nxt := range j.Reduces {
			if nxt.State == TaskPending && nxt.Node == r.Node && w.reduceFree > 0 {
				w.reduceFree--
				j.activateReducer(nxt)
			}
		}
	}
	if j.reducesDone == len(j.Reduces) {
		j.done = true
		j.Finished = j.eng.Now()
		if j.sched != nil {
			j.sched.jobDone(j)
		}
		if j.OnDone != nil {
			j.OnDone(j)
		}
	}
}
