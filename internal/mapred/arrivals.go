package mapred

// Job-arrival machinery for the multi-tenant workload engine: a seeded
// open-loop arrival process (the tenants keep submitting whether or not the
// cluster keeps up) and a weighted job-mix table it draws job shapes from.
// Both are deterministic in their seed, so a multi-job run replays
// bit-identically regardless of how the surrounding experiment is scheduled.

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/units"
)

// ArrivalKind selects the inter-arrival distribution of the job stream.
type ArrivalKind uint8

// Arrival kinds.
const (
	// ArrivalFixed submits jobs at exact Mean intervals (a cron-like tenant).
	ArrivalFixed ArrivalKind = iota
	// ArrivalPoisson draws exponential inter-arrival times with the given
	// mean — the memoryless stream workload-consolidation studies assume.
	ArrivalPoisson
)

// String names the kind as the CLIs spell it.
func (k ArrivalKind) String() string {
	if k == ArrivalPoisson {
		return "poisson"
	}
	return "fixed"
}

// ArrivalProcess generates deterministic job inter-arrival times.
type ArrivalProcess struct {
	kind ArrivalKind
	mean units.Duration
	src  *rng.Source
}

// NewArrivalProcess returns a seeded arrival process with the given mean
// inter-arrival time. It panics on a non-positive mean or unknown kind.
func NewArrivalProcess(kind ArrivalKind, mean units.Duration, seed uint64) *ArrivalProcess {
	if mean <= 0 {
		panic(fmt.Sprintf("mapred: arrival mean %v must be positive", mean))
	}
	if kind > ArrivalPoisson {
		panic(fmt.Sprintf("mapred: unknown arrival kind %d", kind))
	}
	return &ArrivalProcess{kind: kind, mean: mean, src: rng.New(seed)}
}

// Next returns the time until the next job arrival. Fixed processes return
// the mean exactly; Poisson processes draw from Exp(mean).
func (a *ArrivalProcess) Next() units.Duration {
	if a.kind == ArrivalFixed {
		return a.mean
	}
	d := units.Duration(float64(a.mean) * a.src.ExpFloat64())
	if d < 0 {
		d = 0
	}
	return d
}

// MixEntry is one row of a job-mix table: a job shape and its relative
// weight in the arrival stream.
type MixEntry struct {
	// Weight is the entry's integer selection weight (>= 1). Integer weights
	// keep the weighted pick exact and archive-stable.
	Weight int `json:"weight"`
	// Cfg is the job submitted when this entry is drawn.
	Cfg JobConfig `json:"cfg"`
}

// JobMix draws job shapes from a weighted table with a seeded stream.
type JobMix struct {
	entries []MixEntry
	total   int
	src     *rng.Source
}

// NewJobMix validates the table and returns a seeded mix. Entries must have
// positive weights and valid job configs; overlapping jobs share one fabric,
// so replicated output (ReplicationFactor > 1) is rejected — every job would
// need the well-known DataNode port.
func NewJobMix(entries []MixEntry, seed uint64) (*JobMix, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("mapred: empty job mix")
	}
	m := &JobMix{entries: entries, src: rng.New(seed)}
	for i := range entries {
		e := &entries[i]
		if e.Weight <= 0 {
			return nil, fmt.Errorf("mapred: mix entry %d (%s): weight %d must be positive", i, e.Cfg.Name, e.Weight)
		}
		if err := e.Cfg.Validate(); err != nil {
			return nil, fmt.Errorf("mapred: mix entry %d (%s): %w", i, e.Cfg.Name, err)
		}
		if e.Cfg.ReplicationFactor > 1 {
			return nil, fmt.Errorf("mapred: mix entry %d (%s): replicated output is not supported for overlapping jobs", i, e.Cfg.Name)
		}
		m.total += e.Weight
	}
	return m, nil
}

// Pick draws the next job shape from the mix.
func (m *JobMix) Pick() JobConfig {
	n := m.src.Intn(m.total)
	for i := range m.entries {
		n -= m.entries[i].Weight
		if n < 0 {
			return m.entries[i].Cfg
		}
	}
	return m.entries[len(m.entries)-1].Cfg // unreachable
}

// Entries returns the mix table (shared backing array; treat as read-only).
func (m *JobMix) Entries() []MixEntry { return m.entries }

// DefaultMix returns a small consolidation-study mix shaped from a base
// input size: frequent small Terasorts, occasional larger ones, and a
// lighter-shuffle WordCount. Blocks are cut to 1/16 of each entry's input
// (floor 1 MiB) so every job runs multiple map waves — overlapping jobs
// then genuinely contend for slots, and fair-share vs FIFO scheduling
// visibly diverges.
func DefaultMix(input units.ByteSize, reducers int) []MixEntry {
	if input <= 0 {
		panic("mapred: DefaultMix input must be positive")
	}
	if reducers < 1 {
		reducers = 1
	}
	shape := func(cfg JobConfig, name string, in units.ByteSize, red int) JobConfig {
		if in < 1 {
			in = 1
		}
		if red < 1 {
			red = 1
		}
		cfg.Name = name
		cfg.InputSize = in
		cfg.Reducers = red
		cfg.BlockSize = in / 16
		if min := units.ByteSize(1 * units.MiB); cfg.BlockSize < min {
			cfg.BlockSize = min
		}
		if cfg.BlockSize > in {
			cfg.BlockSize = in
		}
		return cfg
	}
	// Reducer counts are deliberately generous (the large job alone wants
	// every reduce slot of the default 2-slot workers): reducers hold their
	// slot for the whole shuffle, so overlapping jobs contend there — the
	// contention point where FIFO and fair-share actually part ways.
	return []MixEntry{
		{Weight: 2, Cfg: shape(TerasortConfig(input, reducers), "terasort-small", input/4, reducers)},
		{Weight: 1, Cfg: shape(TerasortConfig(input, reducers), "terasort-large", input/2, 2*reducers)},
		{Weight: 1, Cfg: shape(WordCountConfig(input, reducers), "wordcount", input/2, reducers)},
	}
}
