package mapred_test

import (
	"testing"

	"repro/internal/mapred"
	"repro/internal/units"
)

// TestArrivalDeterminism pins the seeded generators: identical seeds replay
// identical inter-arrival sequences, distinct seeds do not.
func TestArrivalDeterminism(t *testing.T) {
	draw := func(seed uint64) []units.Duration {
		p := mapred.NewArrivalProcess(mapred.ArrivalPoisson, 100*units.Millisecond, seed)
		out := make([]units.Duration, 1000)
		for i := range out {
			out[i] = p.Next()
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed draw %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
	c := draw(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestArrivalFixed(t *testing.T) {
	p := mapred.NewArrivalProcess(mapred.ArrivalFixed, 250*units.Millisecond, 7)
	for i := 0; i < 10; i++ {
		if got := p.Next(); got != 250*units.Millisecond {
			t.Fatalf("fixed arrival %d = %v, want 250ms", i, got)
		}
	}
}

// TestArrivalPoissonMean checks the exponential draws actually average to
// the configured mean (law of large numbers tolerance).
func TestArrivalPoissonMean(t *testing.T) {
	mean := 10 * units.Millisecond
	p := mapred.NewArrivalProcess(mapred.ArrivalPoisson, mean, 1)
	const n = 50000
	var sum units.Duration
	for i := 0; i < n; i++ {
		d := p.Next()
		if d < 0 {
			t.Fatalf("negative inter-arrival %v", d)
		}
		sum += d
	}
	got := float64(sum) / n
	if got < 0.95*float64(mean) || got > 1.05*float64(mean) {
		t.Fatalf("empirical mean %v, want ~%v", units.Duration(got), mean)
	}
}

func TestArrivalProcessPanics(t *testing.T) {
	assertPanics(t, "zero mean", func() {
		mapred.NewArrivalProcess(mapred.ArrivalPoisson, 0, 1)
	})
	assertPanics(t, "bad kind", func() {
		mapred.NewArrivalProcess(mapred.ArrivalKind(9), units.Second, 1)
	})
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestJobMixValidation(t *testing.T) {
	good := mapred.TerasortConfig(16*units.MiB, 2)
	cases := []struct {
		name    string
		entries []mapred.MixEntry
	}{
		{"empty", nil},
		{"zero weight", []mapred.MixEntry{{Weight: 0, Cfg: good}}},
		{"invalid cfg", []mapred.MixEntry{{Weight: 1, Cfg: mapred.JobConfig{}}}},
		{"replicated output", func() []mapred.MixEntry {
			cfg := good
			cfg.ReplicationFactor = 3
			return []mapred.MixEntry{{Weight: 1, Cfg: cfg}}
		}()},
	}
	for _, c := range cases {
		if _, err := mapred.NewJobMix(c.entries, 1); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := mapred.NewJobMix([]mapred.MixEntry{{Weight: 1, Cfg: good}}, 1); err != nil {
		t.Errorf("valid mix rejected: %v", err)
	}
}

// TestJobMixPick pins the weighted draw: deterministic in the seed, and
// distributed roughly by weight.
func TestJobMixPick(t *testing.T) {
	entries := []mapred.MixEntry{
		{Weight: 3, Cfg: mapred.TerasortConfig(16*units.MiB, 2)},
		{Weight: 1, Cfg: mapred.WordCountConfig(16*units.MiB, 2)},
	}
	mixA, err := mapred.NewJobMix(entries, 5)
	if err != nil {
		t.Fatal(err)
	}
	mixB, _ := mapred.NewJobMix(entries, 5)
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		a, b := mixA.Pick(), mixB.Pick()
		if a.Name != b.Name {
			t.Fatalf("same-seed picks diverged at %d: %s vs %s", i, a.Name, b.Name)
		}
		counts[a.Name]++
	}
	share := float64(counts["terasort"]) / n
	if share < 0.72 || share > 0.78 {
		t.Fatalf("terasort share %.3f, want ~0.75 (weights 3:1)", share)
	}
}

// TestDefaultMixShapes checks every default entry is a valid, multi-wave
// job: blocks are input/16 (floor 1 MiB), so overlapping jobs contend for
// map slots.
func TestDefaultMixShapes(t *testing.T) {
	entries := mapred.DefaultMix(128*units.MiB, 8)
	if len(entries) != 3 {
		t.Fatalf("default mix has %d entries, want 3", len(entries))
	}
	for _, e := range entries {
		if err := e.Cfg.Validate(); err != nil {
			t.Errorf("%s: %v", e.Cfg.Name, err)
		}
		if e.Cfg.NumMaps() < 16 {
			t.Errorf("%s: %d maps — too few to contend for slots", e.Cfg.Name, e.Cfg.NumMaps())
		}
		if e.Cfg.ReplicationFactor > 1 {
			t.Errorf("%s: replicated output in the default mix", e.Cfg.Name)
		}
	}
	// Tiny inputs still validate (block floors at the input size).
	for _, e := range mapred.DefaultMix(2*units.MiB, 1) {
		if err := e.Cfg.Validate(); err != nil {
			t.Errorf("tiny %s: %v", e.Cfg.Name, err)
		}
	}
}
