package mapred

// Multi-job slot scheduler: the arbitration layer that lets several
// MapReduce jobs overlap on one cluster's map/reduce slots, as a shared
// Hadoop cluster does. The paper's motivating scenario is exactly this —
// latency-sensitive services colocated with a *stream* of batch jobs — so
// the multi-tenant experiments submit jobs through a Scheduler instead of
// running one job to completion at a time.
//
// The Scheduler owns the workers' slot counters. Jobs submitted through it
// keep their own per-worker map queues (Job.schedQ) and never touch a slot
// directly: every grant flows through pumpMaps/pumpReduces, which apply the
// configured policy when more than one job wants the same freed slot.
// Everything iterates jobs in admission order and workers in index order,
// so scheduling is deterministic.

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/units"
)

// SchedPolicy selects how shared slots are granted across jobs.
type SchedPolicy uint8

// Scheduling policies.
const (
	// SchedFIFO grants every free slot to the earliest-admitted job with a
	// runnable task — Hadoop's original JobQueueTaskScheduler behaviour:
	// small jobs starve behind large ones.
	SchedFIFO SchedPolicy = iota
	// SchedFair grants each free slot to the job currently running the
	// fewest tasks of that type (ties to the earliest admitted) — the
	// Fair Scheduler's equal-share steady state.
	SchedFair
)

// String names the policy as the CLIs spell it.
func (p SchedPolicy) String() string {
	if p == SchedFair {
		return "fair"
	}
	return "fifo"
}

// Scheduler arbitrates a fixed worker set's map/reduce slots across
// concurrently running jobs.
type Scheduler struct {
	eng     *sim.Engine
	workers []*Worker
	policy  SchedPolicy

	jobs   []*Job // admission order
	active int    // submitted jobs not yet done

	// OnJobDone, if non-nil, fires when a submitted job completes.
	OnJobDone func(*Job)
}

// NewScheduler builds a scheduler over the workers and takes ownership of
// their slot counters (resetting them to the specs' capacities).
func NewScheduler(eng *sim.Engine, workers []*Worker, policy SchedPolicy) *Scheduler {
	if len(workers) == 0 {
		panic("mapred: scheduler needs workers")
	}
	if policy > SchedFair {
		panic(fmt.Sprintf("mapred: unknown scheduling policy %d", policy))
	}
	for _, w := range workers {
		if err := w.Spec.Validate(); err != nil {
			panic(err)
		}
		w.mapFree = w.Spec.MapSlots
		w.reduceFree = w.Spec.ReduceSlots
		w.mapQueue = nil
	}
	return &Scheduler{eng: eng, workers: workers, policy: policy}
}

// Submit admits a job at the current simulated time and starts it under the
// scheduler's slot arbitration. If the config does not name a shuffle port,
// the job is assigned a distinct one (ShufflePort + admission index) so
// concurrent shuffle servers coexist on each stack. Replicated output is
// rejected — overlapping jobs would contend for the well-known DataNode
// port.
func (s *Scheduler) Submit(cfg JobConfig) *Job {
	if cfg.ReplicationFactor > 1 {
		panic(fmt.Sprintf("mapred: job %s: replicated output is not supported under the multi-job scheduler", cfg.Name))
	}
	if cfg.ShufflePort == 0 {
		cfg.ShufflePort = ShufflePort + uint16(len(s.jobs))
	}
	j := NewJob(s.eng, cfg, s.workers)
	j.sched = s
	s.jobs = append(s.jobs, j)
	s.active++
	j.Start()
	return j
}

// Active returns the number of submitted jobs that have not completed.
func (s *Scheduler) Active() int { return s.active }

// Jobs returns every submitted job in admission order (shared slice; treat
// as read-only).
func (s *Scheduler) Jobs() []*Job { return s.jobs }

// Policy returns the configured scheduling policy.
func (s *Scheduler) Policy() SchedPolicy { return s.policy }

// RunningTasks returns the jobs' currently running map and reduce task
// totals — the fair-share accounting, exposed for invariant tests.
func (s *Scheduler) RunningTasks(j *Job) (maps, reduces int) {
	return j.runningMaps, j.runningReduces
}

// pickMapJob returns the job the next free map slot on w should go to, or
// nil when no job has a map placed there.
func (s *Scheduler) pickMapJob(w *Worker) *Job {
	var best *Job
	for _, j := range s.jobs {
		if j.done || len(j.schedQ[w.Index]) == 0 {
			continue
		}
		if s.policy == SchedFIFO {
			return j
		}
		if best == nil || j.runningMaps < best.runningMaps {
			best = j
		}
	}
	return best
}

// pumpMaps grants w's free map slots until the slots or the placed work run
// out.
func (s *Scheduler) pumpMaps(w *Worker) {
	for w.mapFree > 0 {
		j := s.pickMapJob(w)
		if j == nil {
			return
		}
		q := j.schedQ[w.Index]
		task := q[0]
		j.schedQ[w.Index] = q[1:]
		w.mapFree--
		j.runningMaps++
		j.startMapTask(w, task)
	}
}

// mapSlotFreed returns j's slot on w to the pool and re-arbitrates it.
func (s *Scheduler) mapSlotFreed(j *Job, w *Worker) {
	j.runningMaps--
	w.mapFree++
	s.pumpMaps(w)
}

// nextPendingReduce returns j's first pending reducer placed on worker
// node, or nil.
func (j *Job) nextPendingReduce(node int) *ReduceTask {
	if !j.reducersLive {
		return nil
	}
	for _, r := range j.Reduces {
		if r.State == TaskPending && r.Node == node {
			return r
		}
	}
	return nil
}

// pickReduceJob returns the job the next free reduce slot on w should go
// to, or nil.
func (s *Scheduler) pickReduceJob(w *Worker) *Job {
	var best *Job
	for _, j := range s.jobs {
		if j.done || j.nextPendingReduce(w.Index) == nil {
			continue
		}
		if s.policy == SchedFIFO {
			return j
		}
		if best == nil || j.runningReduces < best.runningReduces {
			best = j
		}
	}
	return best
}

// pumpReduces grants w's free reduce slots by policy.
func (s *Scheduler) pumpReduces(w *Worker) {
	for w.reduceFree > 0 {
		j := s.pickReduceJob(w)
		if j == nil {
			return
		}
		r := j.nextPendingReduce(w.Index)
		w.reduceFree--
		j.runningReduces++
		j.activateReducer(r)
	}
}

// pumpAllReduces re-arbitrates reduce slots on every worker (called when a
// job's reducers first become eligible).
func (s *Scheduler) pumpAllReduces() {
	for _, w := range s.workers {
		s.pumpReduces(w)
	}
}

// reduceSlotFreed returns j's reduce slot on w to the pool and
// re-arbitrates it.
func (s *Scheduler) reduceSlotFreed(j *Job, w *Worker) {
	j.runningReduces--
	w.reduceFree++
	s.pumpReduces(w)
}

// jobDone records a completion (reduceFinished calls it before the job's
// own OnDone, so callbacks observe a consistent Active count).
func (s *Scheduler) jobDone(j *Job) {
	s.active--
	if s.OnJobDone != nil {
		s.OnJobDone(j)
	}
}

// CompletedRuntimes returns the runtimes of completed jobs in admission
// order.
func (s *Scheduler) CompletedRuntimes() []units.Duration {
	var out []units.Duration
	for _, j := range s.jobs {
		if j.done {
			out = append(out, j.Runtime())
		}
	}
	return out
}
