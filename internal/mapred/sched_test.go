package mapred_test

import (
	"testing"

	"repro/internal/mapred"
	"repro/internal/sim"
	"repro/internal/units"
)

// schedRig submits a large job at t=1ms and a small job at t=5ms on a
// 2-node cluster under the given policy, drives the engine until both
// complete, and returns the jobs. The large job's 8 reducers need two full
// waves of the cluster's 4 reduce slots, so the small job's reducers must
// be granted by the policy, not by luck.
func schedRig(t *testing.T, policy mapred.SchedPolicy) (large, small *mapred.Job, sched *mapred.Scheduler, eng *sim.Engine) {
	t.Helper()
	eng, workers := rig(t, 2)
	sched = mapred.NewScheduler(eng, workers, policy)

	largeCfg := mapred.TerasortConfig(32*units.MiB, 8)
	largeCfg.BlockSize = 2 * units.MiB
	largeCfg.Name = "large"
	smallCfg := mapred.TerasortConfig(4*units.MiB, 2)
	smallCfg.BlockSize = 1 * units.MiB
	smallCfg.Name = "small"

	eng.Schedule(units.Time(1*units.Millisecond), func() { large = sched.Submit(largeCfg) })
	eng.Schedule(units.Time(5*units.Millisecond), func() { small = sched.Submit(smallCfg) })

	// Invariant sampler: the jobs' running totals never exceed the shared
	// slot capacity (2 nodes x 2 slots of each kind) and never go negative.
	var sample func()
	sample = func() {
		var maps, reduces int
		for _, j := range sched.Jobs() {
			m, r := sched.RunningTasks(j)
			if m < 0 || r < 0 {
				t.Fatalf("negative running-task count: maps=%d reduces=%d", m, r)
			}
			maps += m
			reduces += r
		}
		if maps > 4 || reduces > 4 {
			t.Fatalf("slots oversubscribed: %d running maps, %d running reduces (4 of each)", maps, reduces)
		}
		if sched.Active() > 0 {
			eng.After(units.Duration(2*units.Millisecond), sample)
		}
	}
	eng.Schedule(units.Time(2*units.Millisecond), sample)

	deadline := units.Time(120 * units.Second)
	for sched.Active() > 0 || large == nil || small == nil {
		if !eng.Step() {
			t.Fatal("scheduler deadlocked")
		}
		if eng.Now() > deadline {
			t.Fatal("scheduler run exceeded deadline")
		}
	}
	return large, small, sched, eng
}

// TestSchedulerFairVsFIFO pins the policies' defining difference: under
// FIFO the earliest-admitted (large) job monopolizes freed reduce slots and
// the small job waits out its waves; under fair-share the small job is
// granted slots as they free and finishes strictly earlier.
func TestSchedulerFairVsFIFO(t *testing.T) {
	_, smallFIFO, _, _ := schedRig(t, mapred.SchedFIFO)
	_, smallFair, _, _ := schedRig(t, mapred.SchedFair)
	if !smallFIFO.Done() || !smallFair.Done() {
		t.Fatal("small job did not complete")
	}
	if smallFair.Runtime() >= smallFIFO.Runtime() {
		t.Errorf("fair-share small-job runtime %v not better than FIFO %v",
			smallFair.Runtime(), smallFIFO.Runtime())
	}
}

// TestSchedulerDeterminism runs the same submission schedule twice and
// expects identical completion times.
func TestSchedulerDeterminism(t *testing.T) {
	l1, s1, _, _ := schedRig(t, mapred.SchedFair)
	l2, s2, _, _ := schedRig(t, mapred.SchedFair)
	if l1.Finished != l2.Finished || s1.Finished != s2.Finished {
		t.Fatalf("replayed run diverged: large %v vs %v, small %v vs %v",
			l1.Finished, l2.Finished, s1.Finished, s2.Finished)
	}
}

// TestSchedulerAccounting checks completion bookkeeping: all jobs done,
// zero running tasks, distinct auto-assigned shuffle ports, and runtimes
// reported for every completed job.
func TestSchedulerAccounting(t *testing.T) {
	large, small, sched, _ := schedRig(t, mapred.SchedFIFO)
	if sched.Active() != 0 {
		t.Errorf("Active = %d after completion", sched.Active())
	}
	for _, j := range sched.Jobs() {
		if m, r := sched.RunningTasks(j); m != 0 || r != 0 {
			t.Errorf("%s: running tasks after completion: maps=%d reduces=%d", j.Cfg.Name, m, r)
		}
	}
	if large.Cfg.ShufflePort == small.Cfg.ShufflePort {
		t.Errorf("concurrent jobs share shuffle port %d", large.Cfg.ShufflePort)
	}
	if got := sched.CompletedRuntimes(); len(got) != 2 {
		t.Errorf("CompletedRuntimes = %d entries, want 2", len(got))
	}
	if sched.Policy() != mapred.SchedFIFO {
		t.Errorf("Policy = %v, want fifo", sched.Policy())
	}
	// Both jobs moved their full input through the shuffle.
	if large.ShuffledBytes() == 0 || small.ShuffledBytes() == 0 {
		t.Errorf("shuffled bytes: large=%v small=%v", large.ShuffledBytes(), small.ShuffledBytes())
	}
}

// TestSchedulerRejectsReplication pins the port-clash guard: overlapping
// jobs cannot stream replicated output through the shared DataNode port.
func TestSchedulerRejectsReplication(t *testing.T) {
	eng, workers := rig(t, 2)
	sched := mapred.NewScheduler(eng, workers, mapred.SchedFIFO)
	cfg := mapred.TerasortConfig(4*units.MiB, 2)
	cfg.ReplicationFactor = 3
	assertPanics(t, "replicated submit", func() { sched.Submit(cfg) })
}
