package mapred_test

import (
	"testing"

	"repro/internal/mapred"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/units"
)

// rig wires an n-node cluster with workers, returning engine and workers.
func rig(t testing.TB, n int) (*sim.Engine, []*mapred.Worker) {
	t.Helper()
	eng := sim.New()
	cl := topo.Build(eng, topo.Config{
		Nodes:     n,
		LinkRate:  10 * units.Gbps,
		LinkDelay: 5 * units.Microsecond,
		SwitchQueue: func(label string, rate units.Bandwidth) qdisc.Qdisc {
			return qdisc.NewDropTail(1000)
		},
	})
	stats := &tcp.Stats{}
	var workers []*mapred.Worker
	for i, h := range cl.Hosts {
		workers = append(workers, &mapred.Worker{
			Index: i,
			Spec:  mapred.DefaultNodeSpec(),
			Stack: tcp.NewStack(h, tcp.DefaultConfig(tcp.Reno), stats),
		})
	}
	return eng, workers
}

func runJob(t testing.TB, eng *sim.Engine, job *mapred.Job) {
	t.Helper()
	eng.Schedule(units.Time(units.Millisecond), job.Start)
	eng.SetDeadline(units.Time(120 * units.Second))
	for !job.Done() {
		if !eng.Step() {
			t.Fatal("job deadlocked")
		}
	}
}

func TestTerasortConfigShape(t *testing.T) {
	cfg := mapred.TerasortConfig(1*units.GiB, 32)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.OutputRatio != 1.0 {
		t.Errorf("Terasort output ratio = %g", cfg.OutputRatio)
	}
	if cfg.NumMaps() != 16 {
		t.Errorf("NumMaps = %d, want 16 (1GiB / 64MiB)", cfg.NumMaps())
	}
}

func TestNumMapsRoundsUp(t *testing.T) {
	cfg := mapred.TerasortConfig(100*units.MiB, 4) // 64MiB blocks
	if got := cfg.NumMaps(); got != 2 {
		t.Errorf("NumMaps = %d, want 2", got)
	}
	tiny := mapred.TerasortConfig(1*units.KiB, 1)
	if got := tiny.NumMaps(); got != 1 {
		t.Errorf("NumMaps = %d, want 1", got)
	}
}

func TestConfigValidation(t *testing.T) {
	base := mapred.TerasortConfig(64*units.MiB, 4)
	mut := []func(*mapred.JobConfig){
		func(c *mapred.JobConfig) { c.InputSize = 0 },
		func(c *mapred.JobConfig) { c.BlockSize = 0 },
		func(c *mapred.JobConfig) { c.Reducers = 0 },
		func(c *mapred.JobConfig) { c.OutputRatio = 0 },
		func(c *mapred.JobConfig) { c.ParallelFetches = 0 },
		func(c *mapred.JobConfig) { c.SlowStartAfterMaps = 2 },
	}
	for i, m := range mut {
		cfg := base
		m(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestNodeSpecValidation(t *testing.T) {
	good := mapred.DefaultNodeSpec()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.MapSlots = 0
	if bad.Validate() == nil {
		t.Error("zero map slots validated")
	}
	bad2 := good
	bad2.DiskRead = 0
	if bad2.Validate() == nil {
		t.Error("zero disk validated")
	}
}

func TestJobCompletesAndMovesAllBytes(t *testing.T) {
	eng, workers := rig(t, 4)
	cfg := mapred.TerasortConfig(64*units.MiB, 8)
	cfg.BlockSize = 16 * units.MiB // 4 maps
	job := mapred.NewJob(eng, cfg, workers)
	runJob(t, eng, job)

	if !job.Done() {
		t.Fatal("job not done")
	}
	if job.Runtime() <= 0 {
		t.Error("non-positive runtime")
	}
	// Every reducer fetched from every map; total shuffled = input x ratio.
	want := units.ByteSize(0)
	for _, m := range job.Maps {
		want += m.OutputPerReducer(&cfg) * units.ByteSize(cfg.Reducers)
	}
	if got := job.ShuffledBytes(); got != want {
		t.Errorf("shuffled %d, want %d", got, want)
	}
	for _, r := range job.Reduces {
		if r.Fetched != len(job.Maps) {
			t.Errorf("reducer %d fetched %d/%d", r.ID, r.Fetched, len(job.Maps))
		}
		if r.State != mapred.TaskDone {
			t.Errorf("reducer %d state %v", r.ID, r.State)
		}
	}
}

func TestPlacementRoundRobin(t *testing.T) {
	eng, workers := rig(t, 4)
	cfg := mapred.TerasortConfig(128*units.MiB, 8)
	cfg.BlockSize = 16 * units.MiB // 8 maps over 4 nodes
	job := mapred.NewJob(eng, cfg, workers)
	counts := make(map[int]int)
	for _, m := range job.Maps {
		counts[m.Node]++
	}
	for n := 0; n < 4; n++ {
		if counts[n] != 2 {
			t.Errorf("node %d has %d maps, want 2", n, counts[n])
		}
	}
	rcounts := make(map[int]int)
	for _, r := range job.Reduces {
		rcounts[r.Node]++
	}
	for n := 0; n < 4; n++ {
		if rcounts[n] != 2 {
			t.Errorf("node %d has %d reducers, want 2", n, rcounts[n])
		}
	}
}

func TestMapWavesRespectSlots(t *testing.T) {
	// 8 maps on 2 nodes with 2 slots each: two waves; last map cannot
	// start before the first finishes.
	eng, workers := rig(t, 2)
	cfg := mapred.TerasortConfig(128*units.MiB, 2)
	cfg.BlockSize = 16 * units.MiB // 8 maps
	job := mapred.NewJob(eng, cfg, workers)
	runJob(t, eng, job)

	var firstEnd, lastStart units.Time
	for _, m := range job.Maps {
		if firstEnd == 0 || m.End < firstEnd {
			firstEnd = m.End
		}
		if m.Start > lastStart {
			lastStart = m.Start
		}
	}
	if lastStart < firstEnd {
		t.Errorf("last map started %v before any finished (%v): slot limit ignored", lastStart, firstEnd)
	}
}

func TestReduceWavesBeyondSlots(t *testing.T) {
	// 8 reducers on 2 nodes x 2 slots: the second wave must wait.
	eng, workers := rig(t, 2)
	cfg := mapred.TerasortConfig(32*units.MiB, 8)
	cfg.BlockSize = 16 * units.MiB
	job := mapred.NewJob(eng, cfg, workers)
	runJob(t, eng, job)

	done := 0
	for _, r := range job.Reduces {
		if r.State == mapred.TaskDone {
			done++
		}
	}
	if done != 8 {
		t.Fatalf("%d/8 reducers finished", done)
	}
	// At least one reducer's shuffle must start after another's reduce
	// completed (wave 2).
	var earliestEnd units.Time = 1 << 62
	for _, r := range job.Reduces {
		if r.End < earliestEnd {
			earliestEnd = r.End
		}
	}
	second := false
	for _, r := range job.Reduces {
		if r.Start >= earliestEnd {
			second = true
		}
	}
	if !second {
		t.Error("no second reduce wave despite reducers > slots")
	}
}

func TestShuffleWindowOrdering(t *testing.T) {
	eng, workers := rig(t, 4)
	cfg := mapred.TerasortConfig(64*units.MiB, 4)
	cfg.BlockSize = 16 * units.MiB
	job := mapred.NewJob(eng, cfg, workers)
	runJob(t, eng, job)
	lo, hi := job.ShuffleWindow()
	if lo <= 0 || hi <= lo {
		t.Errorf("shuffle window [%v, %v] malformed", lo, hi)
	}
	if hi > job.Finished {
		t.Error("shuffle ended after job finish")
	}
}

func TestMapTaskTimingMonotonicInBlock(t *testing.T) {
	eng, workers := rig(t, 2)
	small := mapred.TerasortConfig(16*units.MiB, 2)
	small.BlockSize = 16 * units.MiB
	j1 := mapred.NewJob(eng, small, workers)
	// Compare durations through the public task fields after a run.
	runJob(t, eng, j1)
	d1 := j1.Maps[0].End.Sub(j1.Maps[0].Start)

	eng2, workers2 := rig(t, 2)
	big := mapred.TerasortConfig(64*units.MiB, 2)
	big.BlockSize = 64 * units.MiB
	j2 := mapred.NewJob(eng2, big, workers2)
	runJob(t, eng2, j2)
	d2 := j2.Maps[0].End.Sub(j2.Maps[0].Start)

	if d2 <= d1 {
		t.Errorf("64MiB map (%v) not slower than 16MiB map (%v)", d2, d1)
	}
}

func TestParallelFetchKnobRespected(t *testing.T) {
	// The parallelism knob changes the traffic pattern (and hence timing)
	// but never the bytes moved. Note: more parallelism is NOT always
	// faster — concurrent fetches incast the receiver, which is exactly
	// the congestion the paper studies.
	run := func(par int) (units.Duration, units.ByteSize) {
		eng, workers := rig(t, 4)
		cfg := mapred.TerasortConfig(64*units.MiB, 4)
		cfg.BlockSize = 8 * units.MiB
		cfg.ParallelFetches = par
		job := mapred.NewJob(eng, cfg, workers)
		runJob(t, eng, job)
		return job.Runtime(), job.ShuffledBytes()
	}
	serialT, serialB := run(1)
	parT, parB := run(5)
	if serialB != parB {
		t.Errorf("bytes differ across parallelism: %v vs %v", serialB, parB)
	}
	if serialT == parT {
		t.Error("parallelism knob had no effect on timing at all")
	}
}

func TestOutputPerReducerMinimumOneByte(t *testing.T) {
	m := mapred.MapTask{Block: 10}
	cfg := mapred.TerasortConfig(10, 100)
	cfg.Reducers = 100
	if got := m.OutputPerReducer(&cfg); got < 1 {
		t.Errorf("OutputPerReducer = %d", got)
	}
}

func TestJobPanicsOnBadInputs(t *testing.T) {
	eng, workers := rig(t, 2)
	for i, f := range []func(){
		func() {
			bad := mapred.TerasortConfig(64*units.MiB, 4)
			bad.Reducers = 0
			mapred.NewJob(eng, bad, workers)
		},
		func() { mapred.NewJob(eng, mapred.TerasortConfig(64*units.MiB, 4), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDeterministicRuntime(t *testing.T) {
	run := func() units.Duration {
		eng, workers := rig(t, 4)
		cfg := mapred.TerasortConfig(64*units.MiB, 8)
		cfg.BlockSize = 16 * units.MiB
		job := mapred.NewJob(eng, cfg, workers)
		runJob(t, eng, job)
		return job.Runtime()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical configs produced different runtimes: %v vs %v", a, b)
	}
}

func TestReplicationPipelineMovesOutputOverNetwork(t *testing.T) {
	run := func(replicas int) (units.Duration, units.ByteSize) {
		eng, workers := rig(t, 4)
		cfg := mapred.TerasortConfig(64*units.MiB, 4)
		cfg.BlockSize = 16 * units.MiB
		cfg.ReplicationFactor = replicas
		job := mapred.NewJob(eng, cfg, workers)
		runJob(t, eng, job)
		return job.Runtime(), job.ShuffledBytes()
	}
	noRep, bytes1 := run(1)
	rep3, bytes3 := run(3)
	if bytes1 != bytes3 {
		t.Errorf("replication changed shuffle bytes: %v vs %v", bytes1, bytes3)
	}
	if rep3 <= noRep {
		t.Errorf("replication-3 runtime %v not above replication-1 %v (pipeline not exercised)", rep3, noRep)
	}
}

func TestReplicationPipelineTwoNodeCluster(t *testing.T) {
	// Replication beyond the cluster size clamps: a 2-node cluster can
	// hold at most 1 remote replica.
	eng, workers := rig(t, 2)
	cfg := mapred.TerasortConfig(32*units.MiB, 2)
	cfg.BlockSize = 16 * units.MiB
	cfg.ReplicationFactor = 3
	job := mapred.NewJob(eng, cfg, workers)
	runJob(t, eng, job)
	if !job.Done() {
		t.Fatal("job with clamped replication incomplete")
	}
}

func TestReplicationDisabledByDefaultForTerasort(t *testing.T) {
	cfg := mapred.TerasortConfig(64*units.MiB, 4)
	if cfg.ReplicationFactor > 1 {
		t.Error("Terasort default should not replicate output")
	}
}

func TestWordCountShuffleSmallerThanTerasort(t *testing.T) {
	runBytes := func(cfg mapred.JobConfig) units.ByteSize {
		eng, workers := rig(t, 4)
		job := mapred.NewJob(eng, cfg, workers)
		runJob(t, eng, job)
		return job.ShuffledBytes()
	}
	tera := mapred.TerasortConfig(64*units.MiB, 8)
	tera.BlockSize = 16 * units.MiB
	wc := mapred.WordCountConfig(64*units.MiB, 8)
	wc.BlockSize = 16 * units.MiB

	tb, wb := runBytes(tera), runBytes(wc)
	if wb >= tb {
		t.Errorf("wordcount shuffled %v, not below terasort %v", wb, tb)
	}
	ratio := float64(wb) / float64(tb)
	if ratio < 0.15 || ratio > 0.25 {
		t.Errorf("wordcount shuffle ratio %.2f, want ~0.2", ratio)
	}
}

func TestShuffleOnlyConfigShape(t *testing.T) {
	cfg := mapred.ShuffleOnlyConfig(64*units.MiB, 8)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.SlowStartAfterMaps != 0 {
		t.Error("shuffle-only must start reducers immediately")
	}
	eng, workers := rig(t, 4)
	cfg.BlockSize = 16 * units.MiB
	job := mapred.NewJob(eng, cfg, workers)
	runJob(t, eng, job)
	if job.ShuffledBytes() != 64*units.MiB {
		t.Errorf("shuffled %v", job.ShuffledBytes())
	}
}
