package simnet_test

// Stream-exactness property: across seeded configurations that stress every
// loss and marking path — DropTail tail drops, RED/ECN marking, derated
// inter-switch links — the bytes a tenant reads through a façade conn are
// exactly the bytes its peer wrote. No reorder, no duplication, no
// truncation at the stream layer, whatever the packet layer drops or marks
// underneath. The stress recipe mirrors the pooled-packet aliasing test
// (drop-heavy AQM, incast-shaped contention); the assertion here is one
// layer up, on the delivered byte stream.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/simnet"
	"repro/internal/tcp"
)

// propRNG is the splitmix64 generator used to derive payloads and chunk
// sizes from the config seed, so every byte each side expects is computable
// independently on both ends.
type propRNG struct{ s uint64 }

func (r *propRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *propRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// payload derives a deterministic byte string from a stream seed.
func payload(seed uint64, size int) []byte {
	rng := propRNG{s: seed}
	b := make([]byte, size)
	for i := 0; i < size; i += 8 {
		v := rng.next()
		for j := 0; j < 8 && i+j < size; j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
	return b
}

// propConfig is one stressed fabric shape; seeds vary within each.
type propConfig struct {
	name  string
	pairs [][2]int // (client node, server node)
	spec  func(seed uint64) cluster.Spec
}

func propConfigs() []propConfig {
	star := func(queue cluster.QueueKind, variant tcp.Variant) func(uint64) cluster.Spec {
		return func(seed uint64) cluster.Spec {
			spec := cluster.DefaultSpec()
			spec.Nodes = 4
			spec.Queue = queue
			spec.Transport = variant
			spec.TargetDelay = 100 * time.Microsecond
			spec.Facade = true
			spec.Seed = seed
			return spec
		}
	}
	leafspine := func(derate float64, queue cluster.QueueKind, variant tcp.Variant) func(uint64) cluster.Spec {
		return func(seed uint64) cluster.Spec {
			spec := cluster.DefaultSpec()
			spec.Nodes = 8
			spec.Racks = 4
			spec.Spines = 2
			spec.Queue = queue
			spec.Transport = variant
			spec.TargetDelay = 100 * time.Microsecond
			spec.Degrade = []cluster.LinkDegrade{{From: "leaf0", To: "spine0", Factor: derate}}
			spec.Facade = true
			spec.Seed = seed
			return spec
		}
	}
	crossRack := [][2]int{{0, 5}, {2, 7}, {4, 1}}
	return []propConfig{
		// Shallow DropTail: pure tail loss under incast-shaped contention.
		{"droptail-shallow", [][2]int{{0, 3}, {1, 3}, {2, 3}}, star(cluster.QueueDropTail, tcp.Reno)},
		// RED with ECN marking: the paper's marking path end to end.
		{"red-ecn", [][2]int{{0, 3}, {1, 3}, {2, 3}}, star(cluster.QueueRED, tcp.RenoECN)},
		// A leaf uplink at 25%: sustained cross-rack loss and retransmission.
		{"derated-droptail", crossRack, leafspine(0.25, cluster.QueueDropTail, tcp.Reno)},
		// Derated fabric under DCTCP marking: loss and marking together.
		{"derated-dctcp", crossRack, leafspine(0.25, cluster.QueueRED, tcp.DCTCP)},
	}
}

// TestStreamExactness runs the property over 4 configs x 16 seeds = 64
// seeded runs. Each run pushes three concurrent transfers (one per conn
// pair, sizes and chunking derived from the seed), closes the write side,
// and verifies the peer read exactly the written bytes before echoing a
// reply block the client verifies the same way.
func TestStreamExactness(t *testing.T) {
	for _, cfg := range propConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 16; seed++ {
				spec := cfg.spec(seed)
				if err := spec.Validate(); err != nil {
					t.Fatal(err)
				}
				c := cluster.New(spec)
				h := &harness{c: c, n: c.Net}
				h.run(t, func(n *simnet.Net) {
					done := make(chan error, len(cfg.pairs))
					for pi, p := range cfg.pairs {
						pi, p := pi, p
						n.Go(func() { done <- runPair(n, seed, pi, p[0], p[1]) })
					}
					for range cfg.pairs {
						if err := <-done; err != nil {
							t.Errorf("seed %d: %v", seed, err)
						}
					}
				})
			}
		})
	}
}

// runPair drives one client/server transfer: the client streams a seeded
// payload in seeded chunks; the server (which derives the same expectation
// from the seed) verifies the exact bytes and echoes a seeded reply; the
// client verifies the reply, sees the server's FIN as EOF, and closes. Both
// directions cross the stressed fabric.
func runPair(n *simnet.Net, seed uint64, idx, cnode, snode int) error {
	port := 8000 + idx
	addr := fmt.Sprintf("host%d:%d", snode, port)
	streamSeed := seed*1000 + uint64(idx)
	rng := propRNG{s: streamSeed}
	size := 32<<10 + rng.intn(64<<10)
	sent := payload(streamSeed, size)
	replySize := 8<<10 + rng.intn(16<<10)
	reply := payload(streamSeed+1, replySize)

	l, err := n.Listen("sim", addr)
	if err != nil {
		return err
	}
	defer l.Close()

	srvErr := make(chan error, 1)
	n.Go(func() {
		srvErr <- func() error {
			conn, err := l.Accept()
			if err != nil {
				return fmt.Errorf("accept: %w", err)
			}
			got := make([]byte, len(sent))
			if _, err := io.ReadFull(conn, got); err != nil {
				return fmt.Errorf("server read: %w", err)
			}
			if !bytes.Equal(got, sent) {
				return fmt.Errorf("server bytes diverged from the %d written", len(sent))
			}
			if _, err := conn.Write(reply); err != nil {
				return fmt.Errorf("server reply: %w", err)
			}
			return conn.Close()
		}()
	})

	conn, err := n.DialContext(simnet.WithSource(context.Background(), cnode), "sim", addr)
	if err != nil {
		return fmt.Errorf("dial %s: %w", addr, err)
	}
	defer conn.Close()
	for off := 0; off < len(sent); {
		chunk := 1 + rng.intn(8<<10)
		if off+chunk > len(sent) {
			chunk = len(sent) - off
		}
		if _, err := conn.Write(sent[off : off+chunk]); err != nil {
			return fmt.Errorf("client write at %d: %w", off, err)
		}
		off += chunk
	}
	got := make([]byte, len(reply))
	if _, err := io.ReadFull(conn, got); err != nil {
		return fmt.Errorf("client reply read: %w", err)
	}
	if !bytes.Equal(got, reply) {
		return fmt.Errorf("reply bytes diverged")
	}
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		return fmt.Errorf("after server FIN, read = %v, want EOF", err)
	}
	if err := <-srvErr; err != nil {
		return err
	}
	return nil
}
