package simnet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// Epoch anchors the virtual clock to wall-clock types: virtual time v
// corresponds to Epoch.Add(v). Unmodified code that computes deadlines from
// time.Now() lands decades past any simulated instant, which the deadline
// horizon turns into "no deadline" — uniformly and deterministically.
var Epoch = time.Unix(0, 0).UTC()

// Addr is a simulated endpoint address, "host<N>:<port>" over the fabric's
// host indices. It implements net.Addr.
type Addr struct {
	Node int
	Port uint16
}

// Network implements net.Addr.
func (a Addr) Network() string { return "sim" }

// String implements net.Addr.
func (a Addr) String() string { return "host" + strconv.Itoa(a.Node) + ":" + strconv.Itoa(int(a.Port)) }

// ParseAddr parses "host<N>:<port>" into an Addr.
func ParseAddr(s string) (Addr, error) {
	host, port, ok := strings.Cut(s, ":")
	if !ok {
		return Addr{}, fmt.Errorf("simnet: address %q is not host:port", s)
	}
	num, ok := strings.CutPrefix(host, "host")
	if !ok {
		return Addr{}, fmt.Errorf("simnet: address %q: host must be host<N>", s)
	}
	node, err := strconv.Atoi(num)
	if err != nil || node < 0 {
		return Addr{}, fmt.Errorf("simnet: address %q: bad host index", s)
	}
	p, err := strconv.ParseUint(port, 10, 16)
	if err != nil || p == 0 {
		return Addr{}, fmt.Errorf("simnet: address %q: bad port", s)
	}
	return Addr{Node: node, Port: uint16(p)}, nil
}

// Config wires a Net to the cluster that owns the stacks.
type Config struct {
	// Stacks are the per-host TCP stacks, indexed by host.
	Stacks []*tcp.Stack
	// Group is the engine group driving the run; control events execute on
	// Group.Ctrl().
	Group *sim.Group
	// Schedule registers fn as a globally-serialized control event at
	// absolute time at, on behalf of host node. The cluster lowers this to
	// its ScheduleControl seam (shard-safe control registration).
	Schedule func(node int, at units.Time, fn func())
	// Lag is the delay between a shard-context observation and the control
	// event that folds it in — the cluster's ControlLag, so façade hops obey
	// the same discipline as hybrid promotion and congestion notifications.
	Lag units.Duration
}

// Net exposes the simulated fabric behind stdlib-shaped Dial/Listen. One Net
// serves every host in the cluster: Listen picks its host from the address,
// DialContext from WithSource on the request context (host 0 by default).
type Net struct {
	stacks []*tcp.Stack
	group  *sim.Group
	ctrl   *sim.Engine
	sched  func(node int, at units.Time, fn func())
	lag    units.Duration
	gate   *gate

	// Control-context state.
	nextID    uint64
	conns     []*Conn
	listeners []*Listener
	pending   map[packet.Addr]*Conn // dialing conns by ephemeral local addr
	sleepers  map[*op]bool
	nodeOf    map[packet.NodeID]int
}

// New builds a Net over the cluster's stacks. The zero instant is the
// control engine's current time.
func New(cfg Config) *Net {
	n := &Net{
		stacks:   cfg.Stacks,
		group:    cfg.Group,
		ctrl:     cfg.Group.Ctrl(),
		sched:    cfg.Schedule,
		lag:      cfg.Lag,
		gate:     newGate(),
		pending:  make(map[packet.Addr]*Conn),
		sleepers: make(map[*op]bool),
		nodeOf:   make(map[packet.NodeID]int),
	}
	for i, st := range cfg.Stacks {
		n.nodeOf[st.Host().ID()] = i
	}
	return n
}

type srcCtxKey struct{}

// WithSource selects the dialing host for DialContext calls carrying the
// returned context. net/http propagates the request context into its
// transport's DialContext, so an unmodified http.Client dials from the host
// its request context names.
func WithSource(ctx context.Context, node int) context.Context {
	return context.WithValue(ctx, srcCtxKey{}, node)
}

// DialContext opens a simulated TCP connection to address ("host<N>:<port>")
// from the host named by WithSource on ctx (host 0 otherwise). It blocks in
// virtual time until the handshake completes and is shaped to drop into
// http.Transport.DialContext. Cancellation is honored only before the dial
// is published; a parked dial completes or fails in virtual time.
func (n *Net) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	if !strings.HasPrefix(network, "tcp") && network != "sim" {
		return nil, fmt.Errorf("simnet: unsupported network %q", network)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	node := 0
	if v := ctx.Value(srcCtxKey{}); v != nil {
		node = v.(int)
	}
	o := &op{kind: opDial, node: node, dst: address}
	n.gate.do(o)
	if o.err != nil {
		return nil, o.err
	}
	return o.newConn, nil
}

// Listen opens a listener on address ("host<N>:<port>"; the host index picks
// the node). Like every blocking façade call it is a tenant rendezvous —
// call it from a tenant goroutine (Net.Go), not from a raw control event.
func (n *Net) Listen(network, address string) (net.Listener, error) {
	if !strings.HasPrefix(network, "tcp") && network != "sim" {
		return nil, fmt.Errorf("simnet: unsupported network %q", network)
	}
	o := &op{kind: opListen, dst: address}
	n.gate.do(o)
	if o.err != nil {
		return nil, o.err
	}
	return o.newLis, nil
}

// Go runs fn on a tenant goroutine. It is the sanctioned way to start tenant
// code: the gate accounts for the spawn, so a settle in progress restarts
// and the new goroutine gets its scheduler turns before the engine advances.
func (n *Net) Go(fn func()) { n.gate.spawn(fn) }

// Sleep parks the calling tenant goroutine for d of virtual time. It returns
// early with net.ErrClosed inside the error-free façade only after Shutdown.
func (n *Net) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	o := &op{kind: opSleep, at: units.Time(d)}
	n.gate.do(o)
}

// Now is the tenant-visible clock: Epoch plus the virtual time of the last
// control pump. Tenant goroutines only run while the engine is parked inside
// a pump, so the value is stable — and deterministic — whenever tenant code
// can observe it.
func (n *Net) Now() time.Time {
	return Epoch.Add(time.Duration(n.gate.vnow.Load()))
}

// Settle drains and processes pending tenant operations. Control context
// only: call it at the end of any setup event that spawned tenant goroutines
// (Net.Go) so their first operations are processed before the event returns.
func (n *Net) Settle() { n.pump() }

// Run drives the group's event loop like Group.RunLoop, rescuing the one
// gap the façade's event-driven pumps leave: a tenant that published an
// operation after the last control event settled. Harnesses should use it
// in place of RunLoop whenever a Net is wired in.
func (n *Net) Run(done func() bool, deadline units.Time) sim.RunOutcome {
	for {
		out := n.group.RunLoop(done, deadline)
		if out != sim.RunDeadlock || !n.gate.parked() {
			return out
		}
		n.ctrl.Schedule(n.ctrl.Now(), func() { n.pump() })
	}
}

// Shutdown closes the gate after a run: every parked or future tenant
// operation fails with net.ErrClosed, so tenant goroutines (including
// net/http internals blocked on façade reads) unwind promptly. Call it once
// the run loop has returned; it must not race an active run.
func (n *Net) Shutdown() {
	n.gate.shutdown()
	for _, o := range n.gate.drain() {
		o.err = net.ErrClosed
		n.gate.wake(o)
	}
	for _, l := range n.listeners {
		for _, o := range l.accepts {
			o.err = net.ErrClosed
			n.gate.wake(o)
		}
		l.accepts = nil
		l.closed = true
	}
	for _, c := range n.conns {
		c.closed = true
		n.failParked(c, net.ErrClosed)
	}
	for o := range n.sleepers {
		delete(n.sleepers, o)
		o.err = net.ErrClosed
		n.gate.wake(o)
	}
}

// ---- Control-side machinery ----

// pump is the rendezvous driver: wait for the tenant world to settle, drain
// the published operations in canonical order, process them, and repeat
// until a settle finds nothing new. Control context only.
func (n *Net) pump() {
	n.gate.vnow.Store(int64(n.ctrl.Now()))
	for {
		n.gate.quiesce()
		reqs := n.gate.drain()
		if len(reqs) == 0 {
			return
		}
		for _, o := range reqs {
			n.process(o)
		}
	}
}

// hop folds a conn's shard-context observations into its control-side
// stream state, completes whatever parked operations became serviceable,
// and pumps. It runs as a control event at observation time plus Lag.
func (n *Net) hop(c *Conn) {
	c.hopPending = false
	if c.sConnected && !c.established {
		c.established = true
		if !c.active && c.peer == nil {
			n.pairAccepted(c)
		}
	}
	if c.in != nil && c.sDelivered > c.in.delivered {
		c.in.delivered = c.sDelivered
	}
	if c.sEOF && c.in != nil {
		c.in.eof = true
	}
	if c.sErr != nil && c.failed == nil && !c.closed {
		c.failed = c.sErr
	}
	n.advance(c)
	if p := c.peer; p != nil {
		n.advance(p)
	}
	n.pump()
}

// pairAccepted wires a passively-opened conn to its dialing peer: shared
// streams, addresses, canonical id, and the listener's accept queue. Control
// context, at the passive side's establishment hop.
func (n *Net) pairAccepted(c *Conn) {
	peer := n.pending[c.tc.RemoteAddr()]
	if peer == nil || c.lis == nil {
		// The dialer vanished (shutdown) — nothing to pair with.
		return
	}
	delete(n.pending, c.tc.RemoteAddr())
	n.nextID++
	c.id = n.nextID
	c.in, c.out = peer.out, peer.in
	c.peer, peer.peer = peer, c
	c.laddr = n.addrOf(c.tc.LocalAddr())
	c.raddr = n.addrOf(c.tc.RemoteAddr())
	n.conns = append(n.conns, c)

	l := c.lis
	if l.closed {
		c.closed = true
		c.tc.Close()
		return
	}
	if len(l.accepts) > 0 {
		o := l.accepts[0]
		l.accepts = l.accepts[1:]
		o.newConn = c
		n.gate.wake(o)
		return
	}
	l.queue = append(l.queue, c)
}

// advance completes a conn's parked operations against its current stream
// state: the dialer once established, the reader once bytes or EOF arrived,
// the writer once the peer's deliveries reopened the window.
func (n *Net) advance(c *Conn) {
	if c.failed != nil {
		n.failParked(c, c.failed)
		return
	}
	if d := c.dialer; d != nil && c.established {
		c.dialer = nil
		d.newConn = c
		n.gate.wake(d)
	}
	if r := c.reader; r != nil && c.in != nil {
		if c.in.readable() > 0 {
			r.n = n.consume(c, r.buf)
			c.reader = nil
			n.gate.wake(r)
		} else if c.in.eof {
			c.reader = nil
			r.err = io.EOF
			n.gate.wake(r)
		}
	}
	if w := c.writer; w != nil {
		n.pushWrite(c, w)
	}
}

// failParked fails every parked operation on c with err.
func (n *Net) failParked(c *Conn, err error) {
	for _, slot := range []**op{&c.dialer, &c.reader, &c.writer} {
		if o := *slot; o != nil {
			*slot = nil
			o.err = err // partial writes surface their progress in o.n
			n.gate.wake(o)
		}
	}
}

// consume moves readable bytes from c.in to buf, returning the count.
func (n *Net) consume(c *Conn, buf []byte) int {
	s := c.in
	nc := int(s.readable())
	if nc > len(buf) {
		nc = len(buf)
	}
	copy(buf, s.buf[:nc])
	s.buf = s.buf[nc:]
	s.consumed += int64(nc)
	if len(s.buf) == 0 {
		s.buf = nil
	}
	return nc
}

// pushWrite moves as many of o's remaining bytes as the window allows into
// c.out and the TCP sender, completing o when every byte is accepted.
func (n *Net) pushWrite(c *Conn, o *op) {
	s := c.out
	take := int(winCap - (s.written - s.delivered))
	if rem := len(o.buf) - o.n; take > rem {
		take = rem
	}
	if take > 0 {
		s.buf = append(s.buf, o.buf[o.n:o.n+take]...)
		s.written += int64(take)
		c.tc.Send(take)
		o.n += take
	}
	if o.n == len(o.buf) {
		c.writer = nil
		n.gate.wake(o)
	} else {
		c.writer = o
	}
}

// process applies one drained tenant operation. Control context only.
func (n *Net) process(o *op) {
	switch o.kind {
	case opListen:
		n.processListen(o)
	case opAccept:
		n.processAccept(o)
	case opDial:
		n.processDial(o)
	case opRead:
		n.processRead(o)
	case opWrite:
		n.processWrite(o)
	case opClose:
		n.processClose(o)
	case opDeadline:
		n.processDeadline(o)
	case opSleep:
		n.processSleep(o)
	}
}

func (n *Net) processListen(o *op) {
	a, err := ParseAddr(o.dst)
	if err != nil {
		o.err = err
		n.gate.wake(o)
		return
	}
	if a.Node >= len(n.stacks) {
		o.err = fmt.Errorf("simnet: listen %v: no such host", a)
		n.gate.wake(o)
		return
	}
	l := &Listener{n: n, node: a.Node, addr: a}
	n.nextID++
	l.id = n.nextID
	l.tl = n.stacks[a.Node].Listen(a.Port, func(tc *tcp.Conn) {
		// Shard context, at SYN arrival: build the passive shell and let its
		// establishment hop pair and queue it in control context.
		c := &Conn{n: n, node: l.node, tc: tc, lis: l}
		c.install()
	})
	n.listeners = append(n.listeners, l)
	o.newLis = l
	n.gate.wake(o)
}

func (n *Net) processAccept(o *op) {
	l := o.lis
	if l.closed {
		o.err = net.ErrClosed
		n.gate.wake(o)
		return
	}
	if len(l.queue) > 0 {
		c := l.queue[0]
		l.queue = l.queue[1:]
		o.newConn = c
		n.gate.wake(o)
		return
	}
	l.accepts = append(l.accepts, o)
}

func (n *Net) processDial(o *op) {
	a, err := ParseAddr(o.dst)
	if err != nil {
		o.err = err
		n.gate.wake(o)
		return
	}
	if o.node < 0 || o.node >= len(n.stacks) || a.Node >= len(n.stacks) {
		o.err = fmt.Errorf("simnet: dial %s from host%d: no such host", o.dst, o.node)
		n.gate.wake(o)
		return
	}
	st := n.stacks[o.node]
	tc := st.Dial(packet.Addr{Node: n.stacks[a.Node].Host().ID(), Port: a.Port})
	n.nextID++
	c := &Conn{
		id:     n.nextID,
		n:      n,
		node:   o.node,
		active: true,
		tc:     tc,
		in:     &stream{},
		out:    &stream{},
	}
	c.laddr = n.addrOf(tc.LocalAddr())
	c.raddr = a
	c.install()
	c.dialer = o
	n.pending[tc.LocalAddr()] = c
	n.conns = append(n.conns, c)
}

func (n *Net) processRead(o *op) {
	c := o.conn
	switch {
	case c.closed:
		o.err = net.ErrClosed
	case c.failed != nil:
		o.err = c.failed
	case c.rdDeadline != 0 && c.rdDeadline <= n.ctrl.Now():
		o.err = os.ErrDeadlineExceeded
	case c.in.readable() > 0:
		o.n = n.consume(c, o.buf)
	case c.in.eof:
		o.err = io.EOF
	case c.reader != nil:
		o.err = errors.New("simnet: concurrent Read on one Conn")
	default:
		c.reader = o
		return
	}
	n.gate.wake(o)
}

func (n *Net) processWrite(o *op) {
	c := o.conn
	switch {
	case c.closed:
		o.err = net.ErrClosed
	case c.failed != nil:
		o.err = c.failed
	case c.wrDeadline != 0 && c.wrDeadline <= n.ctrl.Now():
		o.err = os.ErrDeadlineExceeded
	case c.writer != nil:
		o.err = errors.New("simnet: concurrent Write on one Conn")
	default:
		n.pushWrite(c, o)
		return
	}
	n.gate.wake(o)
}

func (n *Net) processClose(o *op) {
	if l := o.lis; l != nil {
		if l.closed {
			o.err = net.ErrClosed
		} else {
			l.closed = true
			n.stacks[l.node].CloseListener(l.tl)
			for _, a := range l.accepts {
				a.err = net.ErrClosed
				n.gate.wake(a)
			}
			l.accepts = nil
			for _, c := range l.queue {
				c.closed = true
				c.tc.Close()
			}
			l.queue = nil
		}
		n.gate.wake(o)
		return
	}
	c := o.conn
	if c.closed {
		o.err = net.ErrClosed
		n.gate.wake(o)
		return
	}
	c.closed = true
	n.clearTimer(&c.rdTimer, &c.rdTimerSet)
	n.clearTimer(&c.wrTimer, &c.wrTimerSet)
	if c.failed == nil {
		c.tc.Close()
	}
	n.failParked(c, net.ErrClosed)
	n.gate.wake(o)
}

func (n *Net) processDeadline(o *op) {
	c := o.conn
	if c.closed {
		o.err = net.ErrClosed
		n.gate.wake(o)
		return
	}
	now := n.ctrl.Now()
	if o.dmap&deadlineRead != 0 {
		c.rdDeadline = n.armDeadline(c, o, now, &c.rdTimer, &c.rdTimerSet, deadlineRead)
		if r := c.reader; r != nil && c.rdDeadline != 0 && c.rdDeadline <= now {
			c.reader = nil
			r.err = os.ErrDeadlineExceeded
			n.gate.wake(r)
		}
	}
	if o.dmap&deadlineWrite != 0 {
		c.wrDeadline = n.armDeadline(c, o, now, &c.wrTimer, &c.wrTimerSet, deadlineWrite)
		if w := c.writer; w != nil && c.wrDeadline != 0 && c.wrDeadline <= now {
			c.writer = nil
			w.err = os.ErrDeadlineExceeded
			n.gate.wake(w)
		}
	}
	n.gate.wake(o)
}

// armDeadline cancels the old timer and installs the new deadline, arming a
// control-engine timer event only for instants inside the horizon: a
// wall-derived deadline (decades out) is uniformly inert, a past deadline
// fails operations immediately without a timer.
func (n *Net) armDeadline(c *Conn, o *op, now units.Time, timer *sim.Event, set *bool, which deadlineTarget) units.Time {
	n.clearTimer(timer, set)
	if !o.set {
		return 0
	}
	at := o.at
	if at > now+deadlineHorizon {
		return 0
	}
	if at > now {
		*timer = n.ctrl.Schedule(at, func() {
			*set = false
			n.expireDeadline(c, at, which)
		})
		*set = true
	}
	return at
}

// expireDeadline is the deadline timer event: if the deadline is still the
// one the timer was armed for, fail the parked operation it governs.
func (n *Net) expireDeadline(c *Conn, at units.Time, which deadlineTarget) {
	if c.closed {
		return
	}
	woke := false
	if which == deadlineRead && c.rdDeadline == at {
		if r := c.reader; r != nil {
			c.reader = nil
			r.err = os.ErrDeadlineExceeded
			n.gate.wake(r)
			woke = true
		}
	}
	if which == deadlineWrite && c.wrDeadline == at {
		if w := c.writer; w != nil {
			c.writer = nil
			w.err = os.ErrDeadlineExceeded
			n.gate.wake(w)
			woke = true
		}
	}
	if woke {
		n.pump()
	}
}

func (n *Net) clearTimer(timer *sim.Event, set *bool) {
	if *set {
		n.ctrl.Cancel(*timer)
		*set = false
	}
}

func (n *Net) processSleep(o *op) {
	wakeAt := n.ctrl.Now() + o.at
	n.sleepers[o] = true
	n.ctrl.Schedule(wakeAt, func() {
		if !n.sleepers[o] {
			return
		}
		delete(n.sleepers, o)
		n.gate.wake(o)
		n.pump()
	})
}

// addrOf renders a fabric address as the façade's host<N>:<port> form.
func (n *Net) addrOf(pa packet.Addr) Addr {
	return Addr{Node: n.nodeOf[pa.Node], Port: pa.Port}
}
