package simnet_test

// The headline contract: an unmodified net/http server and http.Client
// exchange requests entirely over the simulated fabric. Everything here is
// stock stdlib — http.Server, http.Transport, http.Client — wired to the
// façade only through Listener and DialContext.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"testing"

	"repro/internal/simnet"
)

func TestHTTPOverFacade(t *testing.T) {
	h := newHarness(t)
	h.run(t, func(n *simnet.Net) {
		l, err := n.Listen("sim", "host1:80")
		if err != nil {
			t.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/echo", func(w http.ResponseWriter, r *http.Request) {
			w.Header()["Date"] = nil // keep the wall clock off the wire
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.Write(body)
		})
		srv := &http.Server{Handler: mux}
		n.Go(func() { srv.Serve(l) })

		client := &http.Client{Transport: &http.Transport{
			DialContext:       n.DialContext,
			DisableKeepAlives: true,
		}}
		for i := 0; i < 3; i++ {
			payload := bytes.Repeat([]byte{byte('a' + i)}, 1000*(i+1))
			req, err := http.NewRequestWithContext(
				simnet.WithSource(context.Background(), 0), http.MethodPost, "http://host1:80/echo", bytes.NewReader(payload))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
			got, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("request %d body: %v", i, err)
			}
			if resp.StatusCode != http.StatusOK || !bytes.Equal(got, payload) {
				t.Fatalf("request %d: status %d, %d bytes echoed, want %d",
					i, resp.StatusCode, len(got), len(payload))
			}
		}
	})
}

// TestHTTPFanout: a frontend handler that itself fans out over the fabric —
// real nested HTTP, three hosts deep.
func TestHTTPFanout(t *testing.T) {
	h := newHarness(t)
	h.run(t, func(n *simnet.Net) {
		// Backends on hosts 2 and 3 serve fixed blocks.
		for _, node := range []int{2, 3} {
			l, err := n.Listen("sim", fmt.Sprintf("host%d:81", node))
			if err != nil {
				t.Fatal(err)
			}
			mux := http.NewServeMux()
			mux.HandleFunc("/block", func(w http.ResponseWriter, r *http.Request) {
				w.Header()["Date"] = nil
				w.Write(bytes.Repeat([]byte("b"), 2048))
			})
			srv := &http.Server{Handler: mux}
			n.Go(func() { srv.Serve(l) })
		}

		// Frontend on host 1 aggregates both backends per request.
		backendClient := &http.Client{Transport: &http.Transport{
			DialContext:       n.DialContext,
			DisableKeepAlives: true,
		}}
		fl, err := n.Listen("sim", "host1:80")
		if err != nil {
			t.Fatal(err)
		}
		fmux := http.NewServeMux()
		fmux.HandleFunc("/fanout", func(w http.ResponseWriter, r *http.Request) {
			w.Header()["Date"] = nil
			total := 0
			for _, node := range []int{2, 3} {
				req, err := http.NewRequestWithContext(
					simnet.WithSource(context.Background(), 1), http.MethodGet,
					fmt.Sprintf("http://host%d:81/block", node), nil)
				if err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
					return
				}
				resp, err := backendClient.Do(req)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadGateway)
					return
				}
				b, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadGateway)
					return
				}
				total += len(b)
			}
			fmt.Fprintf(w, "%d", total)
		})
		fsrv := &http.Server{Handler: fmux}
		n.Go(func() { fsrv.Serve(fl) })

		client := &http.Client{Transport: &http.Transport{
			DialContext:       n.DialContext,
			DisableKeepAlives: true,
		}}
		req, err := http.NewRequestWithContext(
			simnet.WithSource(context.Background(), 0), http.MethodGet, "http://host1:80/fanout", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "4096" {
			t.Fatalf("fanout total = %q, want 4096", got)
		}
	})
}
