package simnet_test

// The net.Conn conformance suite: every stream, deadline, and close behavior
// the façade promises, driven as real tenant goroutines over a simulated
// star fabric. The tests are stdlib-only and nettest-shaped: each case gets
// a freshly dialed client/server conn pair and asserts one slice of the
// net.Conn contract. All cases must stay green under -race — the gate, not
// luck, is what keeps tenant goroutines and the engine apart.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/simnet"
	"repro/internal/units"
)

// harness runs tenant code over a façade-enabled cluster. Tenants start from
// a scheduled setup event; the run loop drives virtual time until the tenant
// body signals completion.
type harness struct {
	c *cluster.Cluster
	n *simnet.Net
}

func newHarness(t *testing.T, mutate ...func(*cluster.Spec)) *harness {
	t.Helper()
	spec := cluster.DefaultSpec()
	spec.Nodes = 4
	spec.Facade = true
	for _, m := range mutate {
		m(&spec)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	c := cluster.New(spec)
	return &harness{c: c, n: c.Net}
}

// run schedules body as a tenant goroutine at 1ms of virtual time and drives
// the loop until it returns. Body failures surface through t.
func (h *harness) run(t *testing.T, body func(n *simnet.Net)) {
	t.Helper()
	var done atomic.Bool
	h.c.Engine.Schedule(units.Time(units.Millisecond), func() {
		h.n.Go(func() {
			defer done.Store(true)
			body(h.n)
		})
		h.n.Settle()
	})
	out := h.n.Run(done.Load, 0)
	h.n.Shutdown()
	if !done.Load() {
		t.Fatalf("tenant body did not complete (run outcome %v)", out)
	}
}

// pair dials host0 -> host1 and returns both ends. Tenant context.
func pair(t *testing.T, n *simnet.Net) (client, server net.Conn) {
	t.Helper()
	l, err := n.Listen("sim", "host1:80")
	if err != nil {
		t.Fatal(err)
	}
	type acc struct {
		c   net.Conn
		err error
	}
	ch := make(chan acc, 1)
	n.Go(func() {
		c, err := l.Accept()
		ch <- acc{c, err}
	})
	client, err = n.DialContext(context.Background(), "sim", "host1:80")
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return client, a.c
}

// TestConnConformance is the table: one slice of the net.Conn contract per
// case, each over a fresh conn pair.
func TestConnConformance(t *testing.T) {
	cases := []struct {
		name string
		body func(t *testing.T, n *simnet.Net, client, server net.Conn)
	}{
		{"RoundTrip", func(t *testing.T, n *simnet.Net, client, server net.Conn) {
			msg := []byte("hello over the simulated fabric")
			if _, err := client.Write(msg); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(msg))
			if _, err := io.ReadFull(server, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("server read %q, want %q", got, msg)
			}
		}},

		{"PartialRead", func(t *testing.T, n *simnet.Net, client, server net.Conn) {
			// One 10-byte write surfaces through two smaller reads.
			if _, err := client.Write([]byte("0123456789")); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 4)
			nr, err := server.Read(buf)
			if err != nil || nr != 4 || string(buf[:nr]) != "0123" {
				t.Fatalf("first read = %d %q %v", nr, buf[:nr], err)
			}
			rest := make([]byte, 16)
			nr, err = server.Read(rest)
			if err != nil || string(rest[:nr]) != "456789" {
				t.Fatalf("second read = %d %q %v", nr, rest[:nr], err)
			}
		}},

		{"PartialWriteBackpressure", func(t *testing.T, n *simnet.Net, client, server net.Conn) {
			// A write far beyond the stream window completes only as the
			// reader drains — full-write semantics with real backpressure.
			big := make([]byte, 512<<10)
			for i := range big {
				big[i] = byte(i)
			}
			var wrote atomic.Int64
			n.Go(func() {
				nw, err := client.Write(big)
				if err != nil {
					t.Errorf("big write: %v", err)
				}
				wrote.Store(int64(nw))
			})
			got := make([]byte, 0, len(big))
			buf := make([]byte, 8192)
			for len(got) < len(big) {
				nr, err := server.Read(buf)
				if err != nil {
					t.Fatalf("read after %d bytes: %v", len(got), err)
				}
				got = append(got, buf[:nr]...)
			}
			if !bytes.Equal(got, big) {
				t.Fatal("byte stream corrupted across backpressured write")
			}
		}},

		{"DeadlineExpiryWhileBlocked", func(t *testing.T, n *simnet.Net, client, server net.Conn) {
			start := n.Now()
			if err := server.SetReadDeadline(start.Add(3 * time.Millisecond)); err != nil {
				t.Fatal(err)
			}
			_, err := server.Read(make([]byte, 1))
			if !errors.Is(err, os.ErrDeadlineExceeded) {
				t.Fatalf("blocked read ended with %v, want ErrDeadlineExceeded", err)
			}
			if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
				t.Fatalf("deadline error %v is not a net.Error timeout", err)
			}
			if waited := n.Now().Sub(start); waited < 3*time.Millisecond {
				t.Fatalf("deadline fired after %v of virtual time, want >= 3ms", waited)
			}
			// A fresh deadline refreshes the conn: data still flows.
			if err := server.SetReadDeadline(time.Time{}); err != nil {
				t.Fatal(err)
			}
			if _, err := client.Write([]byte("x")); err != nil {
				t.Fatal(err)
			}
			if _, err := server.Read(make([]byte, 1)); err != nil {
				t.Fatalf("read after deadline refresh: %v", err)
			}
		}},

		{"DeadlineInPastFailsImmediately", func(t *testing.T, n *simnet.Net, client, server net.Conn) {
			if err := server.SetReadDeadline(n.Now().Add(-time.Second)); err != nil {
				t.Fatal(err)
			}
			before := n.Now()
			_, err := server.Read(make([]byte, 1))
			if !errors.Is(err, os.ErrDeadlineExceeded) {
				t.Fatalf("read = %v, want ErrDeadlineExceeded", err)
			}
			if waited := n.Now().Sub(before); waited != 0 {
				t.Fatalf("past deadline blocked for %v of virtual time", waited)
			}
			// Write deadlines fail the same way.
			if err := client.SetWriteDeadline(n.Now().Add(-time.Second)); err != nil {
				t.Fatal(err)
			}
			if _, err := client.Write([]byte("x")); !errors.Is(err, os.ErrDeadlineExceeded) {
				t.Fatalf("write = %v, want ErrDeadlineExceeded", err)
			}
		}},

		{"WallClockDeadlineInert", func(t *testing.T, n *simnet.Net, client, server net.Conn) {
			// Unmodified code sets deadlines derived from time.Now() — decades
			// past the virtual epoch. Those must neither fire nor fail I/O.
			if err := server.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
				t.Fatal(err)
			}
			if _, err := client.Write([]byte("y")); err != nil {
				t.Fatal(err)
			}
			if _, err := server.Read(make([]byte, 1)); err != nil {
				t.Fatalf("read under wall-derived deadline: %v", err)
			}
		}},

		{"CloseWhileReaderBlocked", func(t *testing.T, n *simnet.Net, client, server net.Conn) {
			var readErr atomic.Value
			started := make(chan struct{})
			finished := make(chan struct{})
			n.Go(func() {
				close(started)
				_, err := server.Read(make([]byte, 1))
				readErr.Store(err)
				close(finished)
			})
			<-started
			n.Sleep(time.Millisecond) // let the reader park in virtual time
			if err := server.Close(); err != nil {
				t.Fatal(err)
			}
			<-finished
			if err := readErr.Load().(error); !errors.Is(err, net.ErrClosed) {
				t.Fatalf("blocked read ended with %v, want net.ErrClosed", err)
			}
		}},

		{"DoubleClose", func(t *testing.T, n *simnet.Net, client, server net.Conn) {
			if err := client.Close(); err != nil {
				t.Fatalf("first close: %v", err)
			}
			if err := client.Close(); !errors.Is(err, net.ErrClosed) {
				t.Fatalf("second close = %v, want net.ErrClosed", err)
			}
			if _, err := client.Write([]byte("x")); !errors.Is(err, net.ErrClosed) {
				t.Fatalf("write after close = %v, want net.ErrClosed", err)
			}
			if _, err := client.Read(make([]byte, 1)); !errors.Is(err, net.ErrClosed) {
				t.Fatalf("read after close = %v, want net.ErrClosed", err)
			}
		}},

		{"EOFAfterFIN", func(t *testing.T, n *simnet.Net, client, server net.Conn) {
			// Data written before Close must drain completely before EOF —
			// never reordered past it, never truncated by it.
			msg := []byte("last words before the FIN")
			if _, err := client.Write(msg); err != nil {
				t.Fatal(err)
			}
			if err := client.Close(); err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(server)
			if err != nil {
				t.Fatalf("ReadAll to EOF: %v", err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("drained %q, want %q", got, msg)
			}
			// EOF is sticky.
			if _, err := server.Read(make([]byte, 1)); err != io.EOF {
				t.Fatalf("read past EOF = %v, want io.EOF", err)
			}
		}},

		{"ConcurrentReadWrite", func(t *testing.T, n *simnet.Net, client, server net.Conn) {
			// Full-duplex: one goroutine reads while another writes on the
			// same conn, echoed by the peer. 64 KiB each direction.
			payload := make([]byte, 64<<10)
			for i := range payload {
				payload[i] = byte(i * 7)
			}
			n.Go(func() {
				// Echo until the client closes; errors here are expected
				// only at teardown, after the client has all its bytes.
				io.Copy(server, server)
			})
			writeDone := make(chan struct{})
			n.Go(func() {
				defer close(writeDone)
				if _, err := client.Write(payload); err != nil {
					t.Errorf("concurrent write: %v", err)
				}
			})
			got := make([]byte, len(payload))
			if _, err := io.ReadFull(client, got); err != nil {
				t.Fatalf("concurrent read: %v", err)
			}
			<-writeDone
			if !bytes.Equal(got, payload) {
				t.Fatal("echoed bytes diverged from written bytes")
			}
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHarness(t)
			h.run(t, func(n *simnet.Net) {
				client, server := pair(t, n)
				defer client.Close()
				defer server.Close()
				tc.body(t, n, client, server)
			})
		})
	}
}

// TestListenerClose pins the accept-queue half of the contract: a parked
// Accept fails with net.ErrClosed, and double Close reports the same.
func TestListenerClose(t *testing.T) {
	h := newHarness(t)
	h.run(t, func(n *simnet.Net) {
		l, err := n.Listen("sim", "host2:9000")
		if err != nil {
			t.Fatal(err)
		}
		acceptErr := make(chan error, 1)
		n.Go(func() {
			_, err := l.Accept()
			acceptErr <- err
		})
		n.Sleep(time.Millisecond)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if err := <-acceptErr; !errors.Is(err, net.ErrClosed) {
			t.Errorf("parked Accept ended with %v, want net.ErrClosed", err)
		}
		if err := l.Close(); !errors.Is(err, net.ErrClosed) {
			t.Errorf("double listener Close = %v, want net.ErrClosed", err)
		}
	})
}

// TestDialNoListener: a dial to a port nobody listens on fails in virtual
// time instead of hanging the tenant.
func TestDialNoListener(t *testing.T) {
	h := newHarness(t)
	h.run(t, func(n *simnet.Net) {
		if _, err := n.DialContext(context.Background(), "sim", "host3:4444"); err == nil {
			t.Error("dial to silent port succeeded")
		}
	})
}
