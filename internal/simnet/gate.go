// Package simnet is the drop-in net façade: it exposes the simulator's TCP
// stacks behind net.Conn and net.Listener so unmodified Go network code — a
// real net/http server, a real http.Client — runs as a tenant over the
// simulated fabric, deterministically.
//
// The determinism problem is that tenant code runs on ordinary goroutines
// the Go scheduler interleaves freely, while the simulation's bit-identical
// contract (DESIGN.md §4) requires every state change to happen as a
// control-engine event in a reproducible order. The façade resolves it with
// a cooperative virtual-time gate: tenant goroutines may touch simulation
// state only through blocking Conn/Listener operations, and each such
// operation is a rendezvous with the control engine — the tenant publishes a
// request and parks; a control event drains the parked requests in a
// canonical order, applies them to the stream state, and wakes the tenants
// whose operations completed. Between control events every tenant goroutine
// is parked (in a façade operation, or on a channel that only a façade wake
// can unblock), so the Go scheduler's interleaving of tenant code can never
// reach engine state. Simulated time is the only clock tenants observe
// (Net.Now, deadlines as control-engine timer events), mirroring the
// control-context discipline of the hybrid engine (DESIGN.md §2.7): shard
// observations feeding the gate re-enter control at observation time plus
// the cluster's control lag, identically at every shard count.
package simnet

import (
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/units"
)

// quiesceRounds is how many consecutive scheduler yields the gate requires
// without a version change before it considers the tenant world settled. The
// gate cannot watch tenant goroutines directly — net/http parks its workers
// on internal channels the gate never sees — so the settle condition is
// behavioral: no unacknowledged wake, and no gate activity (publish, wake
// acknowledgement, spawn) across this many yields. The count is deliberately
// generous: a settle happens at most once per wake batch, so its cost is
// noise next to the packet events it interleaves with.
const quiesceRounds = 256

// opKind orders parked requests within one settle batch. The order is part
// of the determinism contract: requests drained together raced in wall time,
// so the gate processes them in a canonical (kind, endpoint, tie-break)
// order instead of arrival order.
type opKind uint8

const (
	opListen opKind = iota
	opAccept
	opDial
	opRead
	opWrite
	opClose
	opDeadline
	opSleep
)

// op is one parked tenant request: the rendezvous record a blocking façade
// call publishes before parking. Fields under "request" are written by the
// tenant before it parks and read by the control engine; fields under
// "result" are written by the control engine before the wake and read by the
// tenant after it. The park/wake handoff orders both directions.
type op struct {
	kind opKind

	// request
	conn *Conn
	lis  *Listener
	node int            // dialing node (opDial)
	dst  string         // dial/listen target, canonical sort tie-break
	buf  []byte         // tenant buffer (opRead/opWrite); safe to touch only while the tenant is parked
	at   units.Time     // absolute deadline (opDeadline with set=true); duration to sleep (opSleep)
	set  bool           // opDeadline: set vs clear
	dmap deadlineTarget // opDeadline: which deadlines the call sets

	// result
	n       int
	err     error
	newConn *Conn
	newLis  *Listener

	seq  uint64 // arrival order, last-resort tie-break only
	done chan struct{}
}

// deadlineTarget selects which of a conn's deadlines a SetDeadline call
// touches.
type deadlineTarget uint8

const (
	deadlineRead deadlineTarget = 1 << iota
	deadlineWrite
)

// gate is the virtual-time rendezvous between tenant goroutines and the
// control engine. All fields are guarded by mu except vnow (atomic, the
// tenant-visible virtual clock) and the request fields of individual ops
// (ordered by the park/wake handoff).
type gate struct {
	mu   sync.Mutex
	cond *sync.Cond

	reqs []*op // published, not yet drained by the control engine

	// seq is the gate's version: it bumps on every publish, every wake
	// acknowledgement, and every spawn or spawned-goroutine exit. The settle
	// probe declares the world quiet only after it stays unchanged across
	// quiesceRounds scheduler yields.
	seq uint64

	// wakes counts delivered-but-unacknowledged wakes: the control engine
	// incremented it before signalling a parked op, and the woken tenant
	// decrements it as its first action. Nonzero means a woken goroutine has
	// not yet been scheduled, so the world is definitely not settled; this is
	// the gate's one hard wait.
	wakes int

	shut bool

	vnow atomic.Int64 // units.Time; see Net.Now
}

func newGate() *gate {
	g := &gate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// bump records gate activity, resetting any in-progress settle probe.
func (g *gate) bump() {
	g.mu.Lock()
	g.seq++
	g.cond.Broadcast()
	g.mu.Unlock()
}

// spawn launches fn on a tenant goroutine. It is the façade's one sanctioned
// goroutine entry point (see the poolonly analyzer): both the spawn and the
// goroutine's exit bump the gate version, so a settle probe that raced the
// new goroutine restarts and gives it its scheduler turns.
func (g *gate) spawn(fn func()) {
	g.bump()
	go func() {
		defer g.bump()
		fn()
	}()
}

// do publishes o and parks until the control engine completes it. Called
// from tenant goroutines only.
func (g *gate) do(o *op) {
	o.done = make(chan struct{})
	g.mu.Lock()
	if g.shut {
		g.mu.Unlock()
		o.err = net.ErrClosed
		return
	}
	g.seq++
	o.seq = g.seq
	g.reqs = append(g.reqs, o)
	g.cond.Broadcast()
	g.mu.Unlock()

	<-o.done

	g.mu.Lock()
	g.wakes--
	g.seq++
	g.cond.Broadcast()
	g.mu.Unlock()
}

// wake completes o: records an outstanding wake and signals the parked
// tenant. Control context only; the result fields must be final.
func (g *gate) wake(o *op) {
	g.mu.Lock()
	g.wakes++
	g.mu.Unlock()
	close(o.done)
}

// quiesce blocks the control engine until the tenant world is settled: no
// unacknowledged wake, and the gate version stable across quiesceRounds
// scheduler yields — long enough for every runnable tenant goroutine
// (including net/http internals the gate cannot track) to reach its next
// façade operation or park for good.
func (g *gate) quiesce() {
	for {
		g.mu.Lock()
		for g.wakes > 0 {
			g.cond.Wait()
		}
		seq := g.seq
		g.mu.Unlock()

		settled := true
		for stable := 0; stable < quiesceRounds; {
			runtime.Gosched()
			g.mu.Lock()
			if g.wakes > 0 {
				g.mu.Unlock()
				settled = false
				break
			}
			if g.seq != seq {
				seq = g.seq
				stable = 0
			} else {
				stable++
			}
			g.mu.Unlock()
		}
		if settled {
			return
		}
	}
}

// drain removes and returns the published requests in canonical order.
// Control context only, with the world quiesced.
func (g *gate) drain() []*op {
	g.mu.Lock()
	reqs := g.reqs
	g.reqs = nil
	g.mu.Unlock()
	sort.SliceStable(reqs, func(i, j int) bool {
		a, b := reqs[i], reqs[j]
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if ai, bi := a.endpointID(), b.endpointID(); ai != bi {
			return ai < bi
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		if a.at != b.at {
			return a.at < b.at
		}
		return a.seq < b.seq
	})
	return reqs
}

// endpointID is the canonical per-endpoint sort key: the conn or listener
// id the request addresses, or the dialing node. Ids are assigned in control
// context, so they are identical across runs; the racy arrival seq decides
// only between same-kind requests on one endpoint with identical targets,
// which the façade's usage discipline (one reader and one writer per conn,
// staggered dial instants) keeps symmetric when it occurs at all.
func (o *op) endpointID() uint64 {
	switch {
	case o.conn != nil:
		return o.conn.id
	case o.lis != nil:
		return o.lis.id
	default:
		return uint64(o.node)
	}
}

// parked reports whether any request is published but not yet drained.
func (g *gate) parked() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.reqs) > 0
}

// shutdown marks the gate closed: every future do returns net.ErrClosed
// immediately without parking. The caller (Net.Shutdown) separately fails
// the operations already parked.
func (g *gate) shutdown() {
	g.mu.Lock()
	g.shut = true
	g.mu.Unlock()
}
