package simnet_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/simnet"
	"repro/internal/units"
)

// ExampleNet_DialContext is the façade in one screen: a stock http.Server
// listens on a simulated host, a stock http.Client dials it through
// Net.DialContext, and the exchange runs entirely in virtual time. The body
// executes as a tenant goroutine (Net.Go); the engine advances only while
// every tenant is parked, which is what makes the output reproducible.
func ExampleNet_DialContext() {
	spec := cluster.DefaultSpec()
	spec.Nodes = 4
	spec.Facade = true
	c := cluster.New(spec)
	n := c.Net

	var done atomic.Bool
	c.Engine.Schedule(units.Time(units.Millisecond), func() {
		n.Go(func() {
			defer done.Store(true)
			l, err := n.Listen("sim", "host1:80")
			if err != nil {
				fmt.Println(err)
				return
			}
			mux := http.NewServeMux()
			mux.HandleFunc("/echo", func(w http.ResponseWriter, r *http.Request) {
				w.Header()["Date"] = nil // keep the wall clock off the wire
				io.Copy(w, r.Body)
			})
			srv := &http.Server{Handler: mux}
			n.Go(func() { srv.Serve(l) })

			client := &http.Client{Transport: &http.Transport{
				DialContext:       n.DialContext,
				DisableKeepAlives: true,
			}}
			req, err := http.NewRequestWithContext(
				simnet.WithSource(context.Background(), 0),
				http.MethodPost, "http://host1:80/echo", strings.NewReader("hello fabric"))
			if err != nil {
				fmt.Println(err)
				return
			}
			resp, err := client.Do(req)
			if err != nil {
				fmt.Println(err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				fmt.Println(err)
				return
			}
			fmt.Printf("%s %s\n", resp.Status, body)
		})
		n.Settle()
	})
	n.Run(done.Load, 0)
	n.Shutdown()
	// Output: 200 OK hello fabric
}
