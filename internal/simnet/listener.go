package simnet

import (
	"net"

	"repro/internal/tcp"
)

// Listener is a simulated accept queue implementing net.Listener. Passive
// opens the TCP stack accepts are paired with their dialing conn and queued
// in control context; Accept is a gate rendezvous like every blocking façade
// operation.
type Listener struct {
	id   uint64
	n    *Net
	node int
	addr Addr
	tl   *tcp.Listener

	// Control-context state.
	queue   []*Conn // established, not yet accepted
	accepts []*op   // parked Accept calls, completed in canonical order
	closed  bool
}

// Accept implements net.Listener: it blocks in virtual time until a
// connection is established on the listening port, or fails with
// net.ErrClosed once the listener is closed.
func (l *Listener) Accept() (net.Conn, error) {
	o := &op{kind: opAccept, lis: l}
	l.n.gate.do(o)
	if o.err != nil {
		return nil, o.err
	}
	return o.newConn, nil
}

// Close implements net.Listener: it stops accepting, fails parked Accept
// calls with net.ErrClosed, and closes queued connections that were never
// accepted. A second Close returns net.ErrClosed.
func (l *Listener) Close() error {
	o := &op{kind: opClose, lis: l}
	l.n.gate.do(o)
	return o.err
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.addr }
