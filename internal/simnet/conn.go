package simnet

import (
	"net"
	"time"

	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// winCap bounds the bytes a façade writer may run ahead of the peer's
// in-order delivery. It is a stream-layer backpressure window on top of the
// TCP model's own congestion control — without it a tenant writing a large
// buffer would queue the whole thing into the sender in one control event,
// which is legal but hides the pacing real applications experience.
const winCap = 64 << 10

// deadlineHorizon caps how far ahead of virtual now a deadline is honored as
// a timer event. Unmodified code derives deadlines from the wall clock
// (time.Now().Add(d)), which lands decades past the virtual epoch; treating
// everything beyond the horizon as "no deadline" makes those uniformly inert
// — and deterministic — while virtual-time-aware deadlines (Net.Now().Add(d))
// stay exact. One simulated hour is orders of magnitude past any simulated
// run while staying unreachable from a wall-derived time.
const deadlineHorizon = units.Time(time.Hour)

// stream is one direction of a façade connection: the writer's bytes in
// flight between the two endpoints. Offsets are cumulative from the start of
// the connection; buf holds written-but-not-yet-consumed bytes, so buf[0] is
// byte number consumed. All fields are control-context state: they change
// only inside control events.
type stream struct {
	buf       []byte
	written   int64 // appended by the writing endpoint (tcp.Send issued)
	delivered int64 // in-order bytes the TCP model delivered to the reader
	consumed  int64 // bytes the reading tenant has taken
	eof       bool  // writer's FIN delivered in order after all data
}

func (s *stream) readable() int64 { return s.delivered - s.consumed }

// Conn is a simulated TCP connection implementing net.Conn. Tenant
// goroutines use it exactly like a *net.TCPConn; every blocking method is a
// gate rendezvous, so the Go scheduler's interleaving of tenant code never
// reaches engine state. Control-context fields (everything but the sXxx
// accumulators) change only inside control events.
type Conn struct {
	id     uint64 // canonical identity, assigned in control context
	n      *Net
	node   int // host index owning the local endpoint
	active bool
	laddr  Addr
	raddr  Addr
	tc     *tcp.Conn
	lis    *Listener // passive side: the listener that accepted us

	// in carries the peer's writes toward our reads; out carries our writes
	// toward the peer. They are the same *stream objects as the peer's out
	// and in, so one side's delivery advances the other's write window.
	in, out *stream
	peer    *Conn

	established bool
	failed      error
	closed      bool

	// Parked tenant operations, at most one of each: the façade serializes
	// one reader and one writer per conn (net.Conn's ownership discipline).
	dialer, reader, writer *op

	rdDeadline, wrDeadline units.Time // 0 = none
	rdTimer, wrTimer       sim.Event
	rdTimerSet, wrTimerSet bool

	// Shard-context accumulators: the TCP model's callbacks run on the
	// owning shard engine and may only record observations here, coalesced
	// into a single control hop at observation time plus the control lag.
	// The shard/control barrier orders these against the hop that folds
	// them into the stream state.
	sDelivered int64
	sConnected bool
	sEOF       bool
	sErr       error
	hopPending bool
}

// install wires the TCP model's callbacks to the shard-side accumulators.
// Callbacks run in shard context; they record the observation and coalesce a
// control hop (DESIGN.md §2.7): at most one pending hop per conn, scheduled
// at observation time plus the control lag so the fold happens at the same
// virtual instant at every shard count.
func (c *Conn) install() {
	c.tc.OnConnected = func() { c.sConnected = true; c.scheduleHop() }
	c.tc.OnDeliver = func(nb int) { c.sDelivered += int64(nb); c.scheduleHop() }
	c.tc.OnEOF = func() { c.sEOF = true; c.scheduleHop() }
	c.tc.OnError = func(err error) { c.sErr = err; c.scheduleHop() }
}

// scheduleHop coalesces pending observations into one control hop. Shard
// context; hopPending is cleared by the hop itself (control context), which
// the group barrier orders against the next shard window.
func (c *Conn) scheduleHop() {
	if c.hopPending {
		return
	}
	c.hopPending = true
	at := c.n.stacks[c.node].Engine().Now() + units.Time(c.n.lag)
	c.n.sched(c.node, at, func() { c.n.hop(c) })
}

// Read implements net.Conn: it blocks in virtual time until at least one
// byte is available, the peer's FIN is delivered (io.EOF), the read deadline
// expires (os.ErrDeadlineExceeded), or the conn is closed (net.ErrClosed).
func (c *Conn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	o := &op{kind: opRead, conn: c, buf: p}
	c.n.gate.do(o)
	return o.n, o.err
}

// Write implements net.Conn: it blocks in virtual time until every byte is
// accepted by the stream (partial counts are returned only with an error —
// deadline expiry, close, or a connection failure).
func (c *Conn) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	o := &op{kind: opWrite, conn: c, buf: p}
	c.n.gate.do(o)
	return o.n, o.err
}

// Close implements net.Conn: it queues a FIN after any written data, fails
// the conn's parked reader and writer with net.ErrClosed, and makes every
// future operation fail the same way. A second Close returns net.ErrClosed.
func (c *Conn) Close() error {
	o := &op{kind: opClose, conn: c}
	c.n.gate.do(o)
	return o.err
}

// LocalAddr implements net.Conn. Addresses are immutable once the conn is
// visible to tenants, so this needs no rendezvous.
func (c *Conn) LocalAddr() net.Addr { return c.laddr }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.raddr }

// SetDeadline implements net.Conn. Deadlines are virtual-time instants
// (interpreted against simnet.Epoch) lowered to control-engine timer events;
// see Net.Now for the mapping and deadlineHorizon for how wall-derived
// deadlines from unmodified code stay inert.
func (c *Conn) SetDeadline(t time.Time) error {
	return c.setDeadline(t, deadlineRead|deadlineWrite)
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	return c.setDeadline(t, deadlineRead)
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	return c.setDeadline(t, deadlineWrite)
}

func (c *Conn) setDeadline(t time.Time, which deadlineTarget) error {
	o := &op{kind: opDeadline, conn: c, dmap: which}
	if !t.IsZero() {
		o.set = true
		o.at = units.Time(t.Sub(Epoch))
	}
	c.n.gate.do(o)
	return o.err
}
