package report_test

import (
	"strings"
	"testing"

	"repro/ecnsim"
	"repro/internal/report"
)

func TestTableMarkdown(t *testing.T) {
	tbl := report.Table{
		Title:   "T",
		Columns: []string{"setup", "runtime"},
		Rows:    [][]string{{"`droptail`", "1.42s"}, {"`ecn-default`", "5.90s"}},
		Note:    "read carefully",
	}
	got := tbl.Markdown()
	want := "**T**\n\n" +
		"| setup | runtime |\n" +
		"|---|---:|\n" +
		"| `droptail` | 1.42s |\n" +
		"| `ecn-default` | 5.90s |\n" +
		"\n_read carefully_\n"
	if got != want {
		t.Fatalf("Markdown:\n%s\nwant:\n%s", got, want)
	}
}

func TestCampaignTable(t *testing.T) {
	camp := ecnsim.Campaign{
		Name: "x", Title: "X", Scenario: "terasort",
		Columns: []ecnsim.Column{
			{Header: "runtime", Key: "runtime_s", Format: ecnsim.FormatSeconds},
			{Header: "vs row 1", Key: "runtime_s", Norm: true},
			{Header: "absent", Key: "nope", Format: ecnsim.FormatCount},
		},
	}
	cr := &ecnsim.CampaignResult{
		Campaign: camp,
		Rows: []ecnsim.Result{
			{Label: "droptail", Values: map[string]float64{"runtime_s": 2.0}},
			{Label: "ecn-default", Values: map[string]float64{"runtime_s": 7.0}},
		},
	}
	tbl := report.CampaignTable(cr)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	if got := tbl.Rows[1]; got[0] != "`ecn-default`" || got[1] != "7.00s" || got[2] != "3.50×" || got[3] != "—" {
		t.Fatalf("row 1 = %v", got)
	}
	if got := tbl.Rows[0][2]; got != "1.00×" {
		t.Fatalf("baseline norm cell = %q, want 1.00×", got)
	}
}

// TestScenarioTableCoversRegistry pins the reserved "scenarios" block to the
// registry: every registered scenario renders with its description.
func TestScenarioTableCoversRegistry(t *testing.T) {
	tbl := report.ScenarioTable()
	md := tbl.Markdown()
	for _, name := range ecnsim.Scenarios() {
		if !strings.Contains(md, "`"+name+"`") {
			t.Errorf("scenario table missing %q", name)
		}
		if d := ecnsim.Describe(name); !strings.Contains(md, d) {
			t.Errorf("scenario table missing description of %q", name)
		}
	}
}

func TestParseAndSplice(t *testing.T) {
	doc := "intro\n" +
		"<!-- report:alpha -->\nold A\n<!-- /report:alpha -->\n" +
		"middle\n" +
		"<!-- report:beta -->\nold B\n<!-- /report:beta -->\n" +
		"outro\n"
	blocks, err := report.Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 || blocks[0].Name != "alpha" || blocks[1].Name != "beta" {
		t.Fatalf("blocks = %+v", blocks)
	}
	if got := doc[blocks[0].Start:blocks[0].End]; got != "old A\n" {
		t.Fatalf("alpha content = %q", got)
	}
	out, err := report.Splice(doc, map[string]string{"alpha": "new A\n"})
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Replace(doc, "old A\n", "new A\n", 1)
	if out != want {
		t.Fatalf("Splice:\n%q\nwant:\n%q", out, want)
	}
	// Splicing identical content is a fixed point — the property -check
	// relies on.
	again, err := report.Splice(out, map[string]string{"alpha": "new A\n", "beta": "old B\n"})
	if err != nil {
		t.Fatal(err)
	}
	if again != out {
		t.Fatal("Splice with identical content changed the document")
	}
}

func TestParseRejectsMalformedMarkers(t *testing.T) {
	for name, doc := range map[string]string{
		"unclosed":   "<!-- report:a -->\n",
		"unopened":   "<!-- /report:a -->\n",
		"nested":     "<!-- report:a -->\n<!-- report:b -->\n<!-- /report:b -->\n<!-- /report:a -->\n",
		"mismatched": "<!-- report:a -->\n<!-- /report:b -->\n",
		"duplicate":  "<!-- report:a -->\n<!-- /report:a -->\n<!-- report:a -->\n<!-- /report:a -->\n",
	} {
		if _, err := report.Parse(doc); err == nil {
			t.Errorf("%s: Parse accepted %q", name, doc)
		}
	}
}

func TestDiff(t *testing.T) {
	if d := report.Diff("a\nb\n", "a\nb\n"); d != "" {
		t.Fatalf("equal docs diffed: %q", d)
	}
	d := report.Diff("a\nold\nz\n", "a\nnew\nz\n")
	for _, want := range []string{"- old", "+ new"} {
		if !strings.Contains(d, want) {
			t.Errorf("diff %q missing %q", d, want)
		}
	}
	if strings.Contains(d, "- a") || strings.Contains(d, "+ z") {
		t.Errorf("diff %q includes unchanged context as changes", d)
	}
}
