// Package report renders executed ecnsim campaigns as markdown tables and
// splices them into documentation files between report markers, so every
// quoted number in EXPERIMENTS.md/README.md is a build artifact rather than
// a hand transcription. cmd/report is the CLI; its -check mode is the CI
// drift gate.
//
// # Marker protocol
//
// A generated block is delimited by a matched pair of HTML comments on their
// own lines:
//
//	<!-- report:NAME -->
//	...generated content, never edited by hand...
//	<!-- /report:NAME -->
//
// NAME is a registered campaign name (or the reserved "scenarios" registry
// table). Markers cannot nest, every open marker needs its close, and a name
// may appear at most once per file — Parse rejects anything else, and
// scripts/checklinks.sh enforces balance repo-wide.
package report

import (
	"fmt"
	"regexp"
	"strings"

	"repro/ecnsim"
)

// Table is a rendered campaign: a title, column headings, pre-formatted
// cells, and an optional reading note.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Note    string
	// Prose leaves every column left-aligned (for text tables like the
	// scenario registry); the default right-aligns the value columns.
	Prose bool
}

// Markdown renders the table as a GitHub-flavored markdown block: bold
// title, the table (first column left-aligned, the rest right-aligned
// unless Prose), and the note in italics.
func (t Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|---")
	for range t.Columns[1:] {
		if t.Prose {
			b.WriteString("|---")
		} else {
			b.WriteString("|---:")
		}
	}
	b.WriteString("|\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "\n_%s_\n", t.Note)
	}
	return b.String()
}

// CampaignTable lowers an executed campaign onto a renderable table: one
// line per result row, cells formatted by the campaign's column
// declarations, normalizations taken against the first row.
func CampaignTable(cr *ecnsim.CampaignResult) Table {
	camp := cr.Campaign
	t := Table{
		Title:   camp.Title,
		Columns: append([]string{"setup"}, headers(camp)...),
		Note:    camp.Note,
	}
	if len(cr.Rows) == 0 {
		return t
	}
	base := cr.Rows[0]
	for _, r := range cr.Rows {
		row := make([]string, 0, len(camp.Columns)+1)
		row = append(row, "`"+r.Label+"`")
		for _, col := range camp.Columns {
			row = append(row, col.Cell(r, base))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func headers(camp ecnsim.Campaign) []string {
	hs := make([]string, len(camp.Columns))
	for i, c := range camp.Columns {
		hs[i] = c.Header
	}
	return hs
}

// ScenarioTable renders the scenario registry (names and descriptions) —
// the reserved "scenarios" block, which keeps README's scenario listing true
// to ecnsim.Scenarios() by construction.
func ScenarioTable() Table {
	t := Table{Columns: []string{"Scenario", "What it measures"}, Prose: true}
	for _, name := range ecnsim.Scenarios() {
		t.Rows = append(t.Rows, []string{"`" + name + "`", ecnsim.Describe(name)})
	}
	return t
}

// Block is one marker-delimited span of a document.
type Block struct {
	// Name is the marker name.
	Name string
	// Start and End delimit the content between the markers (excluding the
	// marker lines themselves) as byte offsets into the document.
	Start, End int
}

var markerRE = regexp.MustCompile(`^[ \t]*<!-- (/?)report:([a-z0-9][a-z0-9-]*) -->[ \t]*$`)

// Parse finds every report block in doc, in order. It errors on an
// unmatched open or close, a nested block, or a name repeated within the
// document — the failure modes that would make splicing silently wrong.
func Parse(doc string) ([]Block, error) {
	var (
		blocks []Block
		open   string
		start  int
		seen   = make(map[string]bool)
	)
	offset := 0
	for _, line := range strings.SplitAfter(doc, "\n") {
		m := markerRE.FindStringSubmatch(strings.TrimSuffix(line, "\n"))
		if m != nil {
			closing, name := m[1] == "/", m[2]
			switch {
			case !closing && open != "":
				return nil, fmt.Errorf("report: marker %q opens inside open block %q", name, open)
			case !closing && seen[name]:
				return nil, fmt.Errorf("report: marker %q appears twice", name)
			case !closing:
				open, start = name, offset+len(line)
				seen[name] = true
			case open == "":
				return nil, fmt.Errorf("report: close marker %q without an open block", name)
			case name != open:
				return nil, fmt.Errorf("report: close marker %q inside block %q", name, open)
			default:
				blocks = append(blocks, Block{Name: open, Start: start, End: offset})
				open = ""
			}
		}
		offset += len(line)
	}
	if open != "" {
		return nil, fmt.Errorf("report: block %q never closes", open)
	}
	return blocks, nil
}

// Splice returns doc with each named block's content replaced. Content for
// blocks not present in doc is ignored; blocks present in doc but absent
// from content are left untouched.
func Splice(doc string, content map[string]string) (string, error) {
	blocks, err := Parse(doc)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	prev := 0
	for _, blk := range blocks {
		c, ok := content[blk.Name]
		if !ok {
			continue
		}
		b.WriteString(doc[prev:blk.Start])
		b.WriteString(c)
		prev = blk.End
	}
	b.WriteString(doc[prev:])
	return b.String(), nil
}

// BlockContent wraps a rendered table for embedding: a blank line on each
// side so the markers stay on their own lines, and a provenance comment so
// a reader editing the file knows where the bytes come from.
func BlockContent(t Table, quick bool) string {
	cmd := "go run ./cmd/report"
	scale := "full"
	if quick {
		cmd += " -quick"
		scale = "quick"
	}
	return fmt.Sprintf("<!-- generated at %s scale: %s — do not edit by hand -->\n\n%s",
		scale, cmd, t.Markdown())
}

// Diff returns a compact line diff of want vs got (empty when equal):
// context around the first divergence, "-" lines from want, "+" lines from
// got. It is a drift report, not a patch — enough to see which cells moved.
func Diff(want, got string) string {
	if want == got {
		return ""
	}
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	// Trim the common prefix and suffix; what remains is the drifted core.
	p := 0
	for p < len(w) && p < len(g) && w[p] == g[p] {
		p++
	}
	sw, sg := len(w), len(g)
	for sw > p && sg > p && w[sw-1] == g[sg-1] {
		sw, sg = sw-1, sg-1
	}
	var b strings.Builder
	const maxLines = 20
	if p > 0 {
		fmt.Fprintf(&b, "  %s\n", w[p-1])
	}
	for i := p; i < sw && i < p+maxLines; i++ {
		fmt.Fprintf(&b, "- %s\n", w[i])
	}
	if sw > p+maxLines {
		fmt.Fprintf(&b, "- … %d more\n", sw-p-maxLines)
	}
	for i := p; i < sg && i < p+maxLines; i++ {
		fmt.Fprintf(&b, "+ %s\n", g[i])
	}
	if sg > p+maxLines {
		fmt.Fprintf(&b, "+ … %d more\n", sg-p-maxLines)
	}
	return b.String()
}
