package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty summary not zero")
	}
	for _, v := range []float64{3, 1, 4, 1, 5} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 2.8 {
		t.Errorf("Mean = %g, want 2.8", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %g/%g", s.Min(), s.Max())
	}
	if s.Sum() != 14 {
		t.Errorf("Sum = %g", s.Sum())
	}
	wantVar := (9.0+1+16+1+25)/5.0 - 2.8*2.8
	if math.Abs(s.Variance()-wantVar) > 1e-9 {
		t.Errorf("Variance = %g, want %g", s.Variance(), wantVar)
	}
}

func TestSummaryMerge(t *testing.T) {
	var a, b, all Summary
	for i := 0; i < 10; i++ {
		a.Add(float64(i))
		all.Add(float64(i))
	}
	for i := 10; i < 25; i++ {
		b.Add(float64(i))
		all.Add(float64(i))
	}
	a.Merge(&b)
	if a.N() != all.N() || a.Mean() != all.Mean() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Errorf("merge mismatch: %v vs %v", a.String(), all.String())
	}
	var empty Summary
	a.Merge(&empty) // no-op
	if a.N() != all.N() {
		t.Error("merging empty changed N")
	}
}

func TestSampleQuantilesExact(t *testing.T) {
	s := NewSample()
	for _, v := range []float64{9, 1, 8, 2, 7, 3, 6, 4, 5} {
		s.Add(v)
	}
	tests := []struct{ q, want float64 }{
		{0, 1}, {0.5, 5}, {1, 9}, {0.25, 3},
	}
	for _, tt := range tests {
		if got := s.Quantile(tt.q); got != tt.want {
			t.Errorf("Quantile(%g) = %g, want %g", tt.q, got, tt.want)
		}
	}
	if got := s.Percentile(50); got != 5 {
		t.Errorf("Percentile(50) = %g", got)
	}
}

func TestSampleQuantileInterpolates(t *testing.T) {
	s := NewSample()
	s.Add(0)
	s.Add(10)
	if got := s.Quantile(0.5); got != 5 {
		t.Errorf("interpolated median = %g, want 5", got)
	}
}

func TestSampleQuantileClampsRange(t *testing.T) {
	s := NewSample()
	s.Add(3)
	if s.Quantile(-1) != 3 || s.Quantile(2) != 3 {
		t.Error("quantile out-of-range not clamped")
	}
	var empty Sample
	if empty.Quantile(0.5) != 0 {
		t.Error("empty quantile != 0")
	}
}

func TestReservoirBoundsMemoryKeepsExactMean(t *testing.T) {
	r := NewReservoir(100, 42)
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		r.Add(float64(i))
		sum += float64(i)
	}
	if r.N() != n {
		t.Errorf("N = %d", r.N())
	}
	if len(r.values) != 100 {
		t.Errorf("stored %d values, want 100", len(r.values))
	}
	if r.Mean() != sum/n {
		t.Errorf("Mean = %g, want exact %g", r.Mean(), sum/n)
	}
	if r.Min() != 0 || r.Max() != n-1 {
		t.Error("exact min/max lost")
	}
	// The reservoir median should approximate the true median.
	med := r.Quantile(0.5)
	if med < n/4 || med > 3*n/4 {
		t.Errorf("reservoir median %g implausible", med)
	}
}

func TestReservoirInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewReservoir(0, 1)
}

func TestQuantileMatchesSortReference(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		s := NewSample()
		for _, v := range vals {
			s.Add(v)
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		return s.Quantile(0) == sorted[0] && s.Quantile(1) == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 100} {
		h.Add(v)
	}
	under, over := h.Outliers()
	if under != 1 {
		t.Errorf("underflow = %d, want 1", under)
	}
	if over != 2 {
		t.Errorf("overflow = %d, want 2", over)
	}
	bins := h.Bins()
	want := []uint64{2, 1, 1, 0, 1} // [0,2):0,1.9 [2,4):2 [4,6):5 [8,10):9.99
	for i := range want {
		if bins[i] != want[i] {
			t.Errorf("bin %d = %d, want %d (bins=%v)", i, bins[i], want[i], bins)
		}
	}
	if h.N() != 8 {
		t.Errorf("N = %d", h.N())
	}
	lo, hi := h.BinBounds(1)
	if lo != 2 || hi != 4 {
		t.Errorf("BinBounds(1) = [%g,%g)", lo, hi)
	}
}

func TestHistogramInvalidShapePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(10, 10, 5) },
		func() { NewHistogram(10, 0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTimeWeightedMean(t *testing.T) {
	var w TimeWeighted
	w.Observe(0, 10) // value 10 during [0,2)
	w.Observe(2, 0)  // value 0 during [2,4)
	if got := w.MeanAt(4); got != 5 {
		t.Errorf("MeanAt(4) = %g, want 5", got)
	}
	if w.Max() != 10 {
		t.Errorf("Max = %g", w.Max())
	}
}

func TestTimeWeightedHoldsLastValue(t *testing.T) {
	var w TimeWeighted
	w.Observe(0, 4)
	// Value holds at 4 through [0, 10).
	if got := w.MeanAt(10); got != 4 {
		t.Errorf("MeanAt = %g, want 4", got)
	}
}

func TestTimeWeightedEmptyAndEarly(t *testing.T) {
	var w TimeWeighted
	if w.MeanAt(5) != 0 {
		t.Error("empty mean != 0")
	}
	w.Observe(3, 7)
	if w.MeanAt(2) != 0 {
		t.Error("mean before first observation != 0")
	}
}

func TestSummaryNonNegativeVarianceProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var s Summary
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				continue
			}
			s.Add(v)
		}
		return s.Variance() >= 0 && s.Min() <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
