// Package stats provides the small statistics toolkit used by the metrics
// pipeline and the figure generators: streaming summaries, percentile
// estimation over stored samples, fixed-bin histograms and time-weighted
// averages.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of float64 observations.
type Summary struct {
	n          uint64
	sum, sumSq float64
	min, max   float64
}

// Add folds in one observation.
func (s *Summary) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
}

// N returns the observation count.
func (s *Summary) N() uint64 { return s.n }

// Mean returns the arithmetic mean (0 when empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Sum returns the running total.
func (s *Summary) Sum() float64 { return s.sum }

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Variance returns the population variance.
func (s *Summary) Variance() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 {
		v = 0 // numerical noise
	}
	return v
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Merge folds another summary into s.
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n += o.n
	s.sum += o.sum
	s.sumSq += o.sumSq
}

// String formats the summary compactly.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g min=%.4g max=%.4g sd=%.4g",
		s.n, s.Mean(), s.Min(), s.Max(), s.StdDev())
}

// Sample stores observations for exact quantiles. To bound memory on very
// long runs it can be constructed with reservoir sampling.
type Sample struct {
	values  []float64
	sorted  bool
	cap     int // reservoir capacity; 0 = unbounded
	seen    uint64
	rng     uint64 // xorshift state for the reservoir
	summary Summary
}

// NewSample returns an unbounded sample store.
func NewSample() *Sample { return &Sample{} }

// NewReservoir returns a sample that keeps at most capacity observations,
// uniformly chosen (Vitter's algorithm R).
func NewReservoir(capacity int, seed uint64) *Sample {
	if capacity <= 0 {
		panic("stats: reservoir capacity must be positive")
	}
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	// Pre-size the reservoir: Add never reallocates, even during fill.
	return &Sample{cap: capacity, rng: seed, values: make([]float64, 0, capacity)}
}

func (s *Sample) nextRand() uint64 {
	x := s.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng = x
	return x
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.summary.Add(v)
	s.seen++
	s.sorted = false
	if s.cap == 0 || len(s.values) < s.cap {
		s.values = append(s.values, v)
		return
	}
	// Reservoir replacement.
	j := s.nextRand() % s.seen
	if j < uint64(s.cap) {
		s.values[j] = v
	}
}

// N returns the total number of observations seen.
func (s *Sample) N() uint64 { return s.seen }

// Mean returns the exact mean over all observations seen.
func (s *Sample) Mean() float64 { return s.summary.Mean() }

// Max returns the exact maximum over all observations seen.
func (s *Sample) Max() float64 { return s.summary.Max() }

// Min returns the exact minimum over all observations seen.
func (s *Sample) Min() float64 { return s.summary.Min() }

// Summary returns the exact streaming summary.
func (s *Sample) Summary() *Summary { return &s.summary }

// Quantile returns the q-quantile (0<=q<=1) over the stored values using
// linear interpolation. Returns 0 on an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	pos := q * float64(len(s.values)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.values[lo]
	}
	frac := pos - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Percentile is Quantile with p in [0,100].
func (s *Sample) Percentile(p float64) float64 { return s.Quantile(p / 100) }

// Histogram is a fixed-bin linear histogram with overflow/underflow bins.
type Histogram struct {
	lo, hi float64
	bins   []uint64
	under  uint64
	over   uint64
	n      uint64
}

// NewHistogram builds a histogram of nbins over [lo,hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]uint64, nbins)}
}

// Add records an observation.
func (h *Histogram) Add(v float64) {
	h.n++
	switch {
	case v < h.lo:
		h.under++
	case v >= h.hi:
		h.over++
	default:
		i := int((v - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
		if i == len(h.bins) {
			i--
		}
		h.bins[i]++
	}
}

// N returns the number of observations.
func (h *Histogram) N() uint64 { return h.n }

// Bins returns the bin counts (excluding under/overflow).
func (h *Histogram) Bins() []uint64 { return h.bins }

// Outliers returns (underflow, overflow) counts.
func (h *Histogram) Outliers() (uint64, uint64) { return h.under, h.over }

// BinBounds returns the [lo,hi) range of bin i.
func (h *Histogram) BinBounds(i int) (float64, float64) {
	w := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + float64(i)*w, h.lo + float64(i+1)*w
}

// Windowed partitions timestamped observations into fixed-width time
// windows and reports per-window statistics — the steady-state view the
// multi-tenant experiments need (P50/P99 latency per measurement window)
// instead of one whole-run aggregate.
//
// Window i covers [start + i*width, start + (i+1)*width). Observations
// before start are discarded; when a window limit is set, observations at
// or beyond the last window are discarded too. Windows materialize lazily
// in Add, so a quiet tail costs nothing.
type Windowed struct {
	start, width float64
	limit        int     // max windows (0 = unbounded)
	cutoff       float64 // drop observations at/after this time (0 = none)
	reservoir    int     // per-window sample bound (0 = keep all)
	seed         uint64
	wins         []*Sample
}

// NewWindowed returns a windowed accumulator over [start, start+limit*width)
// (limit 0 = unbounded). width must be positive.
func NewWindowed(start, width float64, limit int) *Windowed {
	if width <= 0 {
		panic("stats: window width must be positive")
	}
	if limit < 0 {
		panic("stats: window limit must be non-negative")
	}
	return &Windowed{start: start, width: width, limit: limit}
}

// NewWindowedReservoir is NewWindowed with each window's sample store bounded
// by reservoir sampling (means and counts remain exact).
func NewWindowedReservoir(start, width float64, limit, capacity int, seed uint64) *Windowed {
	w := NewWindowed(start, width, limit)
	if capacity <= 0 {
		panic("stats: windowed reservoir capacity must be positive")
	}
	w.reservoir = capacity
	w.seed = seed
	return w
}

// SetCutoff drops observations at or after t (seconds) even when they fall
// inside the last window — for measurement phases that end mid-window, so
// the final window cannot absorb post-phase samples.
func (w *Windowed) SetCutoff(t float64) { w.cutoff = t }

// Add records observation v at time t (seconds). Observations outside the
// covered range (or at/after the cutoff) are dropped.
func (w *Windowed) Add(t, v float64) {
	if t < w.start {
		return
	}
	if w.cutoff != 0 && t >= w.cutoff {
		return
	}
	i := int((t - w.start) / w.width)
	if w.limit > 0 && i >= w.limit {
		return
	}
	for len(w.wins) <= i {
		w.wins = append(w.wins, nil)
	}
	if w.wins[i] == nil {
		if w.reservoir > 0 {
			// Distinct seeds per window keep the reservoirs independent.
			w.wins[i] = NewReservoir(w.reservoir, w.seed+uint64(i)*0x9e3779b97f4a7c15+1)
		} else {
			w.wins[i] = NewSample()
		}
	}
	w.wins[i].Add(v)
}

// Windows returns the number of materialized windows (the highest window
// index observed plus one; trailing quiet windows are not counted).
func (w *Windowed) Windows() int { return len(w.wins) }

// WindowStart returns the start time of window i in seconds.
func (w *Windowed) WindowStart(i int) float64 { return w.start + float64(i)*w.width }

// Width returns the window width in seconds.
func (w *Windowed) Width() float64 { return w.width }

// Count returns the number of observations in window i (0 if the window was
// never materialized or is out of range).
func (w *Windowed) Count(i int) uint64 {
	if i < 0 || i >= len(w.wins) || w.wins[i] == nil {
		return 0
	}
	return w.wins[i].N()
}

// Quantile returns the q-quantile of window i (0 when the window is empty).
func (w *Windowed) Quantile(i int, q float64) float64 {
	if i < 0 || i >= len(w.wins) || w.wins[i] == nil {
		return 0
	}
	return w.wins[i].Quantile(q)
}

// Mean returns the exact mean of window i (0 when empty).
func (w *Windowed) Mean(i int) float64 {
	if i < 0 || i >= len(w.wins) || w.wins[i] == nil {
		return 0
	}
	return w.wins[i].Mean()
}

// TimeWeighted tracks the time-average of a step function, e.g. queue
// occupancy sampled at transition instants.
type TimeWeighted struct {
	lastT   float64
	lastV   float64
	area    float64
	started bool
	startT  float64
	maxV    float64
}

// Observe records that the value changed to v at time t (seconds). Values
// between observations are held constant (left-continuous step function).
func (w *TimeWeighted) Observe(t, v float64) {
	if !w.started {
		w.started = true
		w.startT = t
	} else if t > w.lastT {
		w.area += w.lastV * (t - w.lastT)
	}
	w.lastT = t
	w.lastV = v
	if v > w.maxV {
		w.maxV = v
	}
}

// MeanAt returns the time-average over [start, t].
func (w *TimeWeighted) MeanAt(t float64) float64 {
	if !w.started || t <= w.startT {
		return 0
	}
	area := w.area
	if t > w.lastT {
		area += w.lastV * (t - w.lastT)
	}
	return area / (t - w.startT)
}

// Max returns the largest observed value.
func (w *TimeWeighted) Max() float64 { return w.maxV }
