package stats_test

import (
	"testing"

	"repro/internal/stats"
)

// TestWindowedPartitioning is the windowed-percentile regression test:
// observations land in the window their timestamp selects, quantiles are
// computed per window, and out-of-range observations are dropped.
func TestWindowedPartitioning(t *testing.T) {
	w := stats.NewWindowed(10.0, 1.0, 3) // [10,11) [11,12) [12,13)
	// Window 0: 1..100. Window 2: constant 5. Window 1: empty.
	for i := 1; i <= 100; i++ {
		w.Add(10.0+float64(i)/101/10, float64(i))
	}
	for i := 0; i < 10; i++ {
		w.Add(12.5, 5)
	}
	w.Add(9.9, 1e9)  // before start: dropped
	w.Add(13.0, 1e9) // beyond the limit: dropped
	w.Add(42.0, 1e9) // far beyond: dropped

	if got := w.Windows(); got != 3 {
		t.Fatalf("Windows = %d, want 3", got)
	}
	if got := w.Count(0); got != 100 {
		t.Errorf("window 0 count = %d, want 100", got)
	}
	if got := w.Quantile(0, 0.5); got != 50.5 {
		t.Errorf("window 0 median = %g, want 50.5", got)
	}
	if got := w.Quantile(0, 0.99); got < 99 || got > 100 {
		t.Errorf("window 0 p99 = %g, want in [99,100]", got)
	}
	if got := w.Count(1); got != 0 {
		t.Errorf("empty window count = %d", got)
	}
	if got := w.Quantile(1, 0.99); got != 0 {
		t.Errorf("empty window p99 = %g, want 0", got)
	}
	if got := w.Quantile(2, 0.99); got != 5 {
		t.Errorf("window 2 p99 = %g, want 5", got)
	}
	if got := w.Mean(2); got != 5 {
		t.Errorf("window 2 mean = %g, want 5", got)
	}
	if got := w.WindowStart(2); got != 12.0 {
		t.Errorf("WindowStart(2) = %g, want 12", got)
	}
	if got := w.Width(); got != 1.0 {
		t.Errorf("Width = %g, want 1", got)
	}
	// Out-of-range reads are zero, not panics.
	if w.Count(-1) != 0 || w.Count(99) != 0 || w.Quantile(99, 0.5) != 0 {
		t.Error("out-of-range window reads not zero")
	}
}

// TestWindowedCutoff pins the mid-window phase boundary: when the covered
// span outruns the phase (limit*width > measure), observations at or after
// the cutoff must not leak into the last window.
func TestWindowedCutoff(t *testing.T) {
	w := stats.NewWindowed(0, 0.3, 4) // covers [0, 1.2) but the phase ends at 1.0
	w.SetCutoff(1.0)
	w.Add(0.95, 1) // inside window 3 and the phase: kept
	w.Add(1.0, 99) // at the cutoff: dropped
	w.Add(1.1, 99) // inside window 3 but after the phase: dropped
	if got := w.Count(3); got != 1 {
		t.Fatalf("last window count = %d, want 1 (post-cutoff samples leaked)", got)
	}
	if got := w.Quantile(3, 0.99); got != 1 {
		t.Errorf("last window p99 = %g, want 1", got)
	}
}

// TestWindowedUnbounded grows windows on demand when no limit is set.
func TestWindowedUnbounded(t *testing.T) {
	w := stats.NewWindowed(0, 1.0, 0)
	w.Add(7.5, 1)
	if got := w.Windows(); got != 8 {
		t.Fatalf("Windows = %d, want 8 (lazily materialized through index 7)", got)
	}
	if w.Count(7) != 1 || w.Count(3) != 0 {
		t.Error("observation landed in the wrong window")
	}
}

// TestWindowedReservoir keeps exact counts and means while bounding stored
// samples, deterministically in the seed.
func TestWindowedReservoir(t *testing.T) {
	run := func(seed uint64) *stats.Windowed {
		w := stats.NewWindowedReservoir(0, 1.0, 2, 64, seed)
		for i := 0; i < 10000; i++ {
			w.Add(0.5, float64(i))
		}
		return w
	}
	a, b := run(9), run(9)
	if a.Count(0) != 10000 {
		t.Fatalf("reservoir count = %d, want exact 10000", a.Count(0))
	}
	if got, want := a.Mean(0), 4999.5; got != want {
		t.Errorf("reservoir mean = %g, want exact %g", got, want)
	}
	if a.Quantile(0, 0.5) != b.Quantile(0, 0.5) {
		t.Error("same-seed reservoirs disagree on the median")
	}
	if m := a.Quantile(0, 0.5); m < 2000 || m > 8000 {
		t.Errorf("reservoir median %g implausible for uniform 0..9999", m)
	}
}

func TestWindowedPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero width":     func() { stats.NewWindowed(0, 0, 1) },
		"negative limit": func() { stats.NewWindowed(0, 1, -1) },
		"zero reservoir": func() { stats.NewWindowedReservoir(0, 1, 1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
