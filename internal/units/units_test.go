package units

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(1000)
	if got := t0.Add(500 * Nanosecond); got != 1500 {
		t.Errorf("Add = %d, want 1500", got)
	}
	if got := Time(2500).Sub(t0); got != 1500*Nanosecond {
		t.Errorf("Sub = %v, want 1.5µs", got)
	}
	if !t0.Before(1001) || t0.Before(999) {
		t.Error("Before misordered")
	}
	if !Time(1001).After(t0) || t0.After(1001) {
		t.Error("After misordered")
	}
}

func TestTimeSeconds(t *testing.T) {
	if got := Time(1500 * time.Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds = %g, want 1.5", got)
	}
	if got := Time(0).Seconds(); got != 0 {
		t.Errorf("Seconds(0) = %g", got)
	}
}

func TestByteSizeString(t *testing.T) {
	tests := []struct {
		in   ByteSize
		want string
	}{
		{512, "512B"},
		{KiB, "1KiB"},
		{1536, "1.5KiB"},
		{MiB, "1MiB"},
		{10 * MiB, "10MiB"},
		{GiB, "1GiB"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("ByteSize(%d).String() = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestBandwidthString(t *testing.T) {
	tests := []struct {
		in   Bandwidth
		want string
	}{
		{500, "500bps"},
		{Kbps, "1Kbps"},
		{10 * Gbps, "10Gbps"},
		{2500 * Mbps, "2.5Gbps"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("Bandwidth(%d).String() = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestTransmitTime(t *testing.T) {
	// 1500 bytes at 10 Gbps = 1.2 µs.
	got := (10 * Gbps).TransmitTime(1500)
	if got != 1200*Nanosecond {
		t.Errorf("TransmitTime = %v, want 1.2µs", got)
	}
	// 1 byte at 8 bps = 1 s.
	if got := Bandwidth(8).TransmitTime(1); got != Second {
		t.Errorf("TransmitTime = %v, want 1s", got)
	}
}

func TestTransmitTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Bandwidth(0).TransmitTime(1500)
}

func TestBytesInAndBDP(t *testing.T) {
	// 10 Gbps for 1 ms = 1.25 MB.
	if got := (10 * Gbps).BytesIn(time.Millisecond); got != 1250000 {
		t.Errorf("BytesIn = %d, want 1250000", got)
	}
	if got := (1 * Gbps).BDP(100 * Microsecond); got != 12500 {
		t.Errorf("BDP = %d, want 12500", got)
	}
}

func TestParseBandwidth(t *testing.T) {
	tests := []struct {
		in      string
		want    Bandwidth
		wantErr bool
	}{
		{"10Gbps", 10 * Gbps, false},
		{"1.5gbps", Bandwidth(1.5 * float64(Gbps)), false},
		{" 100Mbps ", 100 * Mbps, false},
		{"9600bps", 9600, false},
		{"64Kbps", 64 * Kbps, false},
		{"fast", 0, true},
		{"-1Gbps", 0, true},
		{"", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseBandwidth(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseBandwidth(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("ParseBandwidth(%q) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestParseByteSize(t *testing.T) {
	tests := []struct {
		in      string
		want    ByteSize
		wantErr bool
	}{
		{"64MiB", 64 * MiB, false},
		{"1GiB", GiB, false},
		{"1500B", 1500, false},
		{"1kb", Kilobyte, false},
		{"2.5KiB", 2560, false},
		{"64MB", 64 * Megabyte, false},
		{"", 0, true},
		{"xMiB", 0, true},
		{"-5B", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseByteSize(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseByteSize(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("ParseByteSize(%q) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestTransmitTimeMonotonicInSize(t *testing.T) {
	// Property: more bytes never transmit faster.
	f := func(a, b uint16) bool {
		lo, hi := ByteSize(a), ByteSize(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		r := 1 * Gbps
		return r.TransmitTime(lo) <= r.TransmitTime(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesInInvertsTransmitTime(t *testing.T) {
	// Property: transmitting s bytes takes d; the link carries >= s bytes
	// in d (up to rounding).
	f := func(s uint16) bool {
		size := ByteSize(s) + 1
		r := 10 * Gbps
		d := r.TransmitTime(size)
		got := r.BytesIn(d)
		diff := got - size
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
