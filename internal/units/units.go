// Package units provides the physical units used throughout the simulator:
// simulated time, data sizes and link bandwidths, together with parsing and
// formatting helpers.
//
// Simulated time is an int64 count of nanoseconds since the start of the
// simulation. It is deliberately a distinct type from time.Duration so that
// wall-clock time and simulated time cannot be confused, although conversions
// are provided.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Time is a point in simulated time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration = time.Duration

// Common durations re-exported for convenience.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the time as a floating point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string { return Duration(t).String() }

// ByteSize is a size in bytes.
type ByteSize int64

// Size units.
const (
	Byte     ByteSize = 1
	Kilobyte          = 1000 * Byte
	Megabyte          = 1000 * Kilobyte
	Gigabyte          = 1000 * Megabyte
	KiB               = 1024 * Byte
	MiB               = 1024 * KiB
	GiB               = 1024 * MiB
)

// Bytes returns the size as an int64 byte count.
func (s ByteSize) Bytes() int64 { return int64(s) }

// String formats a byte size using binary units.
func (s ByteSize) String() string {
	v := float64(s)
	switch {
	case s >= GiB:
		return trimFloat(v/float64(GiB)) + "GiB"
	case s >= MiB:
		return trimFloat(v/float64(MiB)) + "MiB"
	case s >= KiB:
		return trimFloat(v/float64(KiB)) + "KiB"
	default:
		return strconv.FormatInt(int64(s), 10) + "B"
	}
}

// Bandwidth is a link or application rate in bits per second.
type Bandwidth int64

// Bandwidth units.
const (
	BitPerSecond Bandwidth = 1
	Kbps                   = 1000 * BitPerSecond
	Mbps                   = 1000 * Kbps
	Gbps                   = 1000 * Mbps
)

// BitsPerSecond returns the bandwidth as an int64 bit rate.
func (b Bandwidth) BitsPerSecond() int64 { return int64(b) }

// String formats the bandwidth with an adaptive unit.
func (b Bandwidth) String() string {
	v := float64(b)
	switch {
	case b >= Gbps:
		return trimFloat(v/float64(Gbps)) + "Gbps"
	case b >= Mbps:
		return trimFloat(v/float64(Mbps)) + "Mbps"
	case b >= Kbps:
		return trimFloat(v/float64(Kbps)) + "Kbps"
	default:
		return strconv.FormatInt(int64(b), 10) + "bps"
	}
}

// TransmitTime returns the serialization delay of size bytes at bandwidth b.
// It panics if b is not positive.
func (b Bandwidth) TransmitTime(size ByteSize) Duration {
	if b <= 0 {
		panic("units: TransmitTime on non-positive bandwidth")
	}
	bits := float64(size) * 8
	sec := bits / float64(b)
	return Duration(math.Round(sec * float64(Second)))
}

// BytesIn returns how many whole bytes bandwidth b carries in duration d.
func (b Bandwidth) BytesIn(d Duration) ByteSize {
	bits := float64(b) * d.Seconds()
	return ByteSize(bits / 8)
}

// BDP returns the bandwidth-delay product for round-trip time rtt.
func (b Bandwidth) BDP(rtt Duration) ByteSize { return b.BytesIn(rtt) }

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 2, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	return s
}

// ParseBandwidth parses strings like "10Gbps", "100Mbps", "1500bps".
func ParseBandwidth(s string) (Bandwidth, error) {
	orig := s
	s = strings.TrimSpace(s)
	lower := strings.ToLower(s)
	var mult Bandwidth
	var numPart string
	switch {
	case strings.HasSuffix(lower, "gbps"):
		mult, numPart = Gbps, s[:len(s)-4]
	case strings.HasSuffix(lower, "mbps"):
		mult, numPart = Mbps, s[:len(s)-4]
	case strings.HasSuffix(lower, "kbps"):
		mult, numPart = Kbps, s[:len(s)-4]
	case strings.HasSuffix(lower, "bps"):
		mult, numPart = BitPerSecond, s[:len(s)-3]
	default:
		return 0, fmt.Errorf("units: unknown bandwidth %q", orig)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(numPart), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("units: bad bandwidth %q", orig)
	}
	return Bandwidth(v * float64(mult)), nil
}

// ParseByteSize parses strings like "64MB", "1GiB", "1500B".
func ParseByteSize(s string) (ByteSize, error) {
	orig := s
	s = strings.TrimSpace(s)
	lower := strings.ToLower(s)
	type unit struct {
		suffix string
		mult   ByteSize
	}
	units := []unit{
		{"gib", GiB}, {"mib", MiB}, {"kib", KiB},
		{"gb", Gigabyte}, {"mb", Megabyte}, {"kb", Kilobyte},
		{"b", Byte},
	}
	for _, u := range units {
		if strings.HasSuffix(lower, u.suffix) {
			numPart := strings.TrimSpace(s[:len(s)-len(u.suffix)])
			v, err := strconv.ParseFloat(numPart, 64)
			if err != nil || v < 0 {
				return 0, fmt.Errorf("units: bad size %q", orig)
			}
			return ByteSize(v * float64(u.mult)), nil
		}
	}
	return 0, fmt.Errorf("units: unknown size %q", orig)
}
