// Package flow provides the application-level traffic sources used by the
// experiments: finite bulk transfers (the shuffle's building block), sinks,
// and a request/response RPC probe that measures application-visible latency
// for the mixed-cluster scenarios.
package flow

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// BulkResult summarizes a finished bulk transfer.
type BulkResult struct {
	Bytes     units.ByteSize
	Start     units.Time // when Dial was issued
	Connected units.Time // when the handshake completed
	Done      units.Time // when the receiver saw all bytes (or EOF)
	Failed    bool
	Err       error
}

// Duration returns the flow completion time (connection setup included).
func (r *BulkResult) Duration() units.Duration { return r.Done.Sub(r.Start) }

// Goodput returns delivered application throughput over the whole flow.
func (r *BulkResult) Goodput() units.Bandwidth {
	d := r.Duration()
	if d <= 0 {
		return 0
	}
	return units.Bandwidth(float64(r.Bytes*8) / d.Seconds())
}

// Bulk is a one-shot sender: dial, push N bytes, close.
type Bulk struct {
	eng    *sim.Engine
	result BulkResult
	conn   *tcp.Conn
	onDone func(*BulkResult)
}

// StartBulk launches a bulk transfer of size bytes from the stack src to the
// destination address dst (which must have a BulkSink listening). onDone
// fires exactly once, on receiver-side completion or on failure.
//
// Receiver-side completion requires the sink to have been registered with
// RegisterBulkSink on the destination stack.
func StartBulk(src *tcp.Stack, dst packet.Addr, size units.ByteSize, onDone func(*BulkResult)) *Bulk {
	if size <= 0 {
		panic("flow: bulk size must be positive")
	}
	eng := src.Host().Engine()
	b := &Bulk{eng: eng, onDone: onDone}
	b.result.Bytes = size
	b.result.Start = eng.Now()
	c := src.Dial(dst)
	b.conn = c
	c.OnConnected = func() { b.result.Connected = eng.Now() }
	c.OnError = func(err error) {
		b.result.Failed = true
		b.result.Err = err
		b.result.Done = eng.Now()
		if b.onDone != nil {
			b.onDone(&b.result)
		}
	}
	// The receiver signals completion via EOF-acked FIN; the sender's view
	// of completion is its FIN being acknowledged, which bounds the
	// receiver having everything.
	c.OnClosed = func() {
		b.result.Done = eng.Now()
		if b.onDone != nil {
			b.onDone(&b.result)
		}
	}
	c.Send(int(size))
	c.Close()
	return b
}

// Conn exposes the underlying connection (diagnostics).
func (b *Bulk) Conn() *tcp.Conn { return b.conn }

// Result returns the current result snapshot.
func (b *Bulk) Result() BulkResult { return b.result }

// RegisterBulkSink listens on port and absorbs any number of inbound bulk
// flows. The optional onFlow callback fires per accepted connection with the
// connection once it delivers EOF.
func RegisterBulkSink(st *tcp.Stack, port uint16, onFlow func(c *tcp.Conn)) {
	st.Listen(port, func(c *tcp.Conn) {
		c.OnEOF = func() {
			if onFlow != nil {
				onFlow(c)
			}
		}
	})
}

// RPCResult is one request/response latency sample.
type RPCResult struct {
	Issued   units.Time
	Finished units.Time
	Failed   bool
}

// Latency returns the application-observed round trip.
func (r *RPCResult) Latency() units.Duration { return r.Finished.Sub(r.Issued) }

// RPCClient issues fixed-size request/response exchanges on a persistent
// connection at a configurable interval, modelling the latency-sensitive
// services the paper wants to co-locate with Hadoop.
type RPCClient struct {
	eng      *sim.Engine
	conn     *tcp.Conn
	reqSize  int
	respSize int
	interval units.Duration
	inFlight bool
	issued   units.Time
	expected units.ByteSize
	Results  []RPCResult
	stopped  bool
}

// RPCConfig parameterizes an RPC probe.
type RPCConfig struct {
	ReqSize  int            // request payload bytes
	RespSize int            // response payload bytes
	Interval units.Duration // think time between exchanges
}

// DefaultRPCConfig returns a small-message probe: 128-byte request,
// 4 KiB response, 5 ms apart.
func DefaultRPCConfig() RPCConfig {
	return RPCConfig{ReqSize: 128, RespSize: 4096, Interval: 5 * units.Millisecond}
}

// StartRPCClient dials the echo server at dst and begins issuing exchanges.
func StartRPCClient(src *tcp.Stack, dst packet.Addr, cfg RPCConfig) *RPCClient {
	if cfg.ReqSize <= 0 || cfg.RespSize <= 0 || cfg.Interval <= 0 {
		panic(fmt.Sprintf("flow: invalid RPC config %+v", cfg))
	}
	eng := src.Host().Engine()
	r := &RPCClient{
		eng: eng, reqSize: cfg.ReqSize, respSize: cfg.RespSize, interval: cfg.Interval,
	}
	c := src.Dial(dst)
	r.conn = c
	c.OnConnected = func() { r.issueNext() }
	c.OnError = func(err error) {
		r.Results = append(r.Results, RPCResult{Issued: r.issued, Finished: eng.Now(), Failed: true})
	}
	c.OnDeliver = func(n int) {
		if !r.inFlight {
			return
		}
		if r.conn.BytesDelivered() >= r.expected {
			r.inFlight = false
			r.Results = append(r.Results, RPCResult{Issued: r.issued, Finished: eng.Now()})
			if !r.stopped {
				eng.After(r.interval, r.issueNext)
			}
		}
	}
	return r
}

func (r *RPCClient) issueNext() {
	if r.stopped || r.inFlight {
		return
	}
	r.inFlight = true
	r.issued = r.eng.Now()
	r.expected = r.conn.BytesDelivered() + units.ByteSize(r.respSize)
	r.conn.Send(r.reqSize)
}

// Stop ends the probe after the in-flight exchange (if any).
func (r *RPCClient) Stop() { r.stopped = true }

// Latencies returns the successful exchange latencies.
func (r *RPCClient) Latencies() []units.Duration {
	out := make([]units.Duration, 0, len(r.Results))
	for i := range r.Results {
		if !r.Results[i].Failed {
			out = append(out, r.Results[i].Latency())
		}
	}
	return out
}

// RegisterRPCServer installs an echo-style responder: for every respTrigger
// bytes of request received it sends respSize bytes back.
func RegisterRPCServer(st *tcp.Stack, port uint16, reqSize, respSize int) {
	st.Listen(port, func(c *tcp.Conn) {
		var pending int
		c.OnDeliver = func(n int) {
			pending += n
			for pending >= reqSize {
				pending -= reqSize
				c.Send(respSize)
			}
		}
	})
}
