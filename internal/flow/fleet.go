package flow

// Open-loop RPC client fleets: N client/server pairs spread across the
// cluster, each issuing requests on a fixed clock regardless of whether
// earlier responses have returned — the service model behind steady-state
// SLO measurement. The single closed-loop RPCClient probe measures "how
// slow is one cautious client"; a fleet measures "what latency does a
// service under its own offered load observe while the batch tier churns".
//
// Response sizes may be heavy-tailed. Client and server must agree on every
// exchange's response size without a side channel, so size k is a pure
// seeded function of (pair seed, k) — both ends evaluate it independently
// and deterministically.

import (
	"fmt"
	"math"

	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// FleetConfig parameterizes an open-loop RPC client fleet.
type FleetConfig struct {
	// Clients is the number of client/server pairs.
	Clients int
	// ReqSize is the request payload in bytes.
	ReqSize int
	// RespSize is the response payload in bytes (the mean, under HeavyTail).
	RespSize int
	// HeavyTail draws per-exchange response sizes from a bounded Pareto
	// (alpha 1.5, scaled to mean RespSize, capped at 64x) instead of the
	// fixed RespSize — SQL-on-Hadoop result sets, not echo packets.
	HeavyTail bool
	// Interval is each client's open-loop issue period.
	Interval units.Duration
	// BasePort is the first server port; pair i listens on BasePort+i.
	BasePort uint16
	// Seed drives the per-pair start stagger and response-size streams.
	Seed uint64
}

// Validate reports a config error, or nil.
func (c *FleetConfig) Validate() error {
	switch {
	case c.Clients <= 0:
		return fmt.Errorf("flow: fleet needs at least 1 client, got %d", c.Clients)
	case c.Clients > 1024:
		return fmt.Errorf("flow: fleet of %d clients exceeds the 1024 port budget", c.Clients)
	case c.ReqSize <= 0 || c.RespSize <= 0:
		return fmt.Errorf("flow: fleet request/response sizes must be positive")
	case c.Interval <= 0:
		return fmt.Errorf("flow: fleet interval must be positive")
	case c.BasePort == 0:
		return fmt.Errorf("flow: fleet needs a base port")
	}
	return nil
}

// respSize returns exchange k's response size for a pair seed: fixed, or a
// bounded Pareto draw with mean ~= base. The draw is a pure function of
// (pair seed, k) via the stateless rng.SplitMix64 mixer, so client and
// server evaluate it independently and always agree.
func respSize(cfg *FleetConfig, pairSeed uint64, k uint64) int {
	if !cfg.HeavyTail {
		return cfg.RespSize
	}
	u := float64(rng.SplitMix64(pairSeed^k*0x9e3779b97f4a7c15)>>11) / (1 << 53)
	// Pareto(alpha=1.5) has mean 3*xm; scale xm so the uncapped mean is the
	// configured RespSize, and cap the tail at 64x to bound one exchange.
	const alpha = 1.5
	xm := float64(cfg.RespSize) / 3
	size := xm / math.Pow(1-u, 1/alpha)
	if max := float64(cfg.RespSize) * 64; size > max {
		size = max
	}
	if size < 1 {
		size = 1
	}
	return int(size)
}

// OpenRPCClient issues fixed-period requests on one persistent connection
// without waiting for responses. Completed exchanges append to Results with
// their issue and finish times, so callers can window them.
type OpenRPCClient struct {
	eng      *sim.Engine
	cfg      *FleetConfig
	fleet    *Fleet // aggregate outstanding accounting
	pairSeed uint64
	conn     *tcp.Conn

	issued   uint64 // exchanges issued
	answered uint64 // exchanges completed
	// outstanding holds, per in-flight exchange, the cumulative delivered
	// byte count that completes it and the issue time.
	outstanding []pendingRPC
	Results     []RPCResult
	stopped     bool
	failed      bool
}

type pendingRPC struct {
	doneAt units.ByteSize
	issued units.Time
}

// Fleet is a running set of open-loop RPC pairs.
type Fleet struct {
	Clients []*OpenRPCClient
	// outstanding counts issued-but-unanswered exchanges fleet-wide,
	// maintained at issue/complete/fail sites so Outstanding is O(1) —
	// drain loops poll it before every engine step.
	outstanding int
}

// StartFleet installs cfg.Clients echo servers and dials one open-loop
// client at each pair, beginning at sim time `at` (staggered across the
// first interval so the fleet doesn't fire in phase). Pair i's client runs
// on stack i mod N and its server on the opposite side of the cluster
// ((i + N/2) mod N, bumped by one if that lands on the client's own node).
func StartFleet(stacks []*tcp.Stack, cfg FleetConfig, at units.Time) *Fleet {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(stacks) < 2 {
		panic("flow: fleet needs at least 2 stacks")
	}
	eng := stacks[0].Host().Engine()
	f := &Fleet{}
	n := len(stacks)
	for i := 0; i < cfg.Clients; i++ {
		i := i
		clientNode := i % n
		serverNode := (i + n/2) % n
		if serverNode == clientNode {
			serverNode = (serverNode + 1) % n
		}
		port := cfg.BasePort + uint16(i)
		pairSeed := rng.SplitMix64(cfg.Seed ^ uint64(i)*0x2545f4914f6cdd1d)
		installOpenRPCServer(stacks[serverNode], port, &cfg, pairSeed)
		c := &OpenRPCClient{eng: eng, cfg: &cfg, fleet: f, pairSeed: pairSeed}
		f.Clients = append(f.Clients, c)
		// Deterministic stagger: spread starts uniformly over one interval.
		stagger := units.Duration(uint64(cfg.Interval) * uint64(i) / uint64(cfg.Clients))
		dst := packet.Addr{Node: stacks[serverNode].Host().ID(), Port: port}
		src := stacks[clientNode]
		eng.Schedule(at.Add(stagger), func() { c.start(src, dst) })
	}
	return f
}

// start dials the pair's server and begins the issue clock.
func (c *OpenRPCClient) start(src *tcp.Stack, dst packet.Addr) {
	conn := src.Dial(dst)
	c.conn = conn
	conn.OnDeliver = func(int) { c.drain() }
	conn.OnError = func(err error) {
		// The pair is dead: fail everything outstanding, once.
		if c.failed {
			return
		}
		c.failed = true
		now := c.eng.Now()
		for _, p := range c.outstanding {
			c.Results = append(c.Results, RPCResult{Issued: p.issued, Finished: now, Failed: true})
		}
		c.fleet.outstanding -= len(c.outstanding)
		c.outstanding = c.outstanding[:0]
	}
	c.issue()
}

// issue sends one request and re-arms the open-loop clock.
func (c *OpenRPCClient) issue() {
	if c.stopped || c.failed {
		return
	}
	k := c.issued
	c.issued++
	var last units.ByteSize
	if len(c.outstanding) > 0 {
		last = c.outstanding[len(c.outstanding)-1].doneAt
	} else {
		last = c.conn.BytesDelivered()
	}
	c.outstanding = append(c.outstanding, pendingRPC{
		doneAt: last + units.ByteSize(respSize(c.cfg, c.pairSeed, k)),
		issued: c.eng.Now(),
	})
	c.fleet.outstanding++
	c.conn.Send(c.cfg.ReqSize)
	c.eng.After(c.cfg.Interval, c.issue)
}

// drain records every outstanding exchange the delivered byte count now
// covers.
func (c *OpenRPCClient) drain() {
	got := c.conn.BytesDelivered()
	for len(c.outstanding) > 0 && got >= c.outstanding[0].doneAt {
		p := c.outstanding[0]
		c.outstanding = c.outstanding[1:]
		c.answered++
		c.fleet.outstanding--
		c.Results = append(c.Results, RPCResult{Issued: p.issued, Finished: c.eng.Now()})
	}
}

// Stop ends the issue clock after the next tick; outstanding exchanges keep
// completing as their responses arrive.
func (c *OpenRPCClient) Stop() { c.stopped = true }

// Outstanding returns the number of issued-but-unanswered exchanges.
func (c *OpenRPCClient) Outstanding() int { return len(c.outstanding) }

// OutstandingIssued returns the issue times of unanswered exchanges, in
// issue order — so a harness cut off by a drain deadline can account for
// the exchanges that never completed instead of silently dropping them.
func (c *OpenRPCClient) OutstandingIssued() []units.Time {
	out := make([]units.Time, len(c.outstanding))
	for i := range c.outstanding {
		out[i] = c.outstanding[i].issued
	}
	return out
}

// Stop stops every client's issue clock.
func (f *Fleet) Stop() {
	for _, c := range f.Clients {
		c.Stop()
	}
}

// Outstanding returns the fleet-wide number of issued-but-unanswered
// exchanges (failed pairs hold none — their outstanding set is flushed to
// failed results). Drain loops wait on this so the slowest tail exchanges
// are measured, not dropped; the count is maintained incrementally, so the
// per-step poll is O(1).
func (f *Fleet) Outstanding() int { return f.outstanding }

// installOpenRPCServer registers the fleet's per-pair responder: for every
// full request received it sends the pure-function response size for that
// exchange index, matching what the client expects.
func installOpenRPCServer(st *tcp.Stack, port uint16, cfg *FleetConfig, pairSeed uint64) {
	reqSize := cfg.ReqSize
	st.Listen(port, func(c *tcp.Conn) {
		var pending int
		var served uint64
		c.OnDeliver = func(n int) {
			pending += n
			for pending >= reqSize {
				pending -= reqSize
				c.Send(respSize(cfg, pairSeed, served))
				served++
			}
		}
	})
}
