// fluid.go is the flow-level half of the hybrid fluid/packet engine
// (DESIGN.md §2.7). Transfers admitted into the fluid model never emit
// packets: each one is a rate on the ports of its resolved path, its
// completion a single control-engine event computed from max-min
// share-of-bottleneck math. Ports stay fluid only while uncontended — a port
// whose allocated fluid load crosses the utilization threshold, or that
// observes an AQM mark or drop, promotes every fluid flow traversing it to
// packet level and refuses fluid admissions until a hysteresis window of
// quiet has passed. All controller state mutates exclusively in control
// context (globally-serialized events with every shard worker parked), so
// results are bit-identical at any shard or worker count.
package flow

import (
	"fmt"
	"math"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// FluidConfig parameterizes the hybrid controller.
type FluidConfig struct {
	// Threshold is the fluid utilization threshold u in [0, 1]: a port whose
	// allocated fluid load reaches u x link rate is congested and promotes.
	// 0 disables the fluid model entirely (every transfer runs at packet
	// level — the exactness mode).
	Threshold float64
	// Hysteresis is the quiet window: a promoted port demotes back to fluid
	// only after this much time without an AQM mark or drop, and a port with
	// an AQM event within the window refuses fluid admissions.
	Hysteresis units.Duration
	// Lag delays the AQM-promotion control event by a fixed fabric constant
	// (the minimum core-link propagation delay — at least the shard group's
	// lookahead). A mark observed inside a parallel window can only become a
	// control event at the next barrier, after shards raced up to one
	// lookahead past it; firing the promotion at mark+Lag makes serial runs
	// incur the identical delay, so results stay bit-identical at any shard
	// count. Not a tuning knob: it is derived from the fabric, not configured.
	Lag units.Duration
}

// Validate reports a parameter error, or nil.
func (c FluidConfig) Validate() error {
	if c.Threshold < 0 || c.Threshold > 1 {
		return fmt.Errorf("flow: fluid threshold %g out of range [0, 1]", c.Threshold)
	}
	if c.Threshold > 0 && c.Hysteresis <= 0 {
		return fmt.Errorf("flow: fluid model needs a positive promote hysteresis, got %v", c.Hysteresis)
	}
	if c.Lag < 0 {
		return fmt.Errorf("flow: fluid promotion lag must be non-negative, got %v", c.Lag)
	}
	return nil
}

// FluidStats counts the controller's lifecycle transitions.
type FluidStats struct {
	FluidStarted   uint64         // transfers admitted into the fluid model
	FluidCompleted uint64         // transfers completed fluidly end to end
	FluidBytes     units.ByteSize // bytes carried fluidly (incl. settled portion of promoted flows)
	PacketRefused  uint64         // admissions refused to the packet path
	Promotions     uint64         // port fluid -> packet transitions
	Demotions      uint64         // port packet -> fluid transitions
	PromotedFlows  uint64         // fluid flows converted to packet mid-flight
}

// TraceKind labels one controller transition for the OnTrace hook.
type TraceKind uint8

// Trace kinds.
const (
	TraceAdmit       TraceKind = iota // a transfer entered the fluid model
	TraceComplete                     // a fluid transfer completed
	TraceAQM                          // an AQM mark/drop was observed on a tracked port
	TracePromote                      // a port entered packet mode
	TracePromoteFlow                  // a fluid flow was converted to packet level
	TraceDemote                       // a port returned to fluid mode
)

// TraceEvent is one OnTrace observation. Path is the flow's port path for
// admit/complete/promote-flow events; Port is the port for AQM/promote/demote
// events.
type TraceEvent struct {
	Kind TraceKind
	At   units.Time
	Port *netsim.Port
	Path []*netsim.Port
}

// fluidFlow is one transfer inside the fluid model.
type fluidFlow struct {
	src, dst   packet.Addr
	size       units.ByteSize
	demand     float64 // bits/sec the application would drive at most
	remaining  float64 // bytes left at lastUpdate
	rate       float64 // bits/sec currently allocated
	lastUpdate units.Time
	path       []*fluidPort
	onComplete func()
	onPromote  func(remaining units.ByteSize)
	ev         sim.Event
	done       bool
	fixed      bool // solver scratch
}

// fluidPort is the controller's view of one tracked egress port.
type fluidPort struct {
	port    *netsim.Port
	shard   int
	capBits float64 // full link rate, bits/sec

	// Control-context state: mutated only inside globally-serialized events.
	flows         []*fluidFlow
	packetMode    bool
	promotedAt    units.Time
	demotePending bool

	// Episode state written by the owning shard during parallel windows (the
	// observer tee) and read/reset in control context. The barrier protocol
	// parks every worker before a control event runs, so these cross the
	// goroutine boundary only through that synchronization.
	aqmSeen  bool
	aqmLast  units.Time
	reported bool // a promotion control event is already in flight

	// hasFluid mirrors len(flows) > 0 for the shard-side tee: written only in
	// control context, read by the owning shard during windows.
	hasFluid bool

	// Solver scratch.
	inSolve  bool
	residual float64
	nActive  int
	alloc    float64
}

// Fluid is the hybrid fluid/packet controller. Build one per cluster with
// NewFluid, Track every port the fluid model may load, and offer transfers
// through StartFlow; refused transfers run on the packet engine unchanged.
type Fluid struct {
	g   *sim.Group
	net *netsim.Network
	cfg FluidConfig

	ports  map[*netsim.Port]*fluidPort
	flows  []*fluidFlow
	active []*fluidPort // solver scratch

	// OnDelivered, if set, credits fluid-delivered payload bytes — the
	// cluster wires the metrics collector here so throughput accounting sees
	// fluid bytes next to packet deliveries.
	OnDelivered func(dst packet.NodeID, bytes units.ByteSize)

	// OnTrace, if set, observes controller transitions. TraceAQM fires in
	// shard context; install a trace only on serial (Shards(1)) runs.
	OnTrace func(ev TraceEvent)

	stats FluidStats
}

// NewFluid builds a controller over the group's control engine. A zero
// threshold yields an always-packet controller: StartFlow refuses every
// transfer and no port tracking is needed.
func NewFluid(g *sim.Group, net *netsim.Network, cfg FluidConfig) *Fluid {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Fluid{g: g, net: net, cfg: cfg, ports: make(map[*netsim.Port]*fluidPort)}
}

// Active reports whether the fluid model can ever admit a transfer.
func (f *Fluid) Active() bool { return f != nil && f.cfg.Threshold > 0 }

// Config returns the controller's configuration.
func (f *Fluid) Config() FluidConfig { return f.cfg }

// Stats returns a snapshot of the lifecycle counters (control context).
func (f *Fluid) Stats() FluidStats { return f.stats }

// ActiveFlows returns the number of transfers currently in the fluid model
// (control context).
func (f *Fluid) ActiveFlows() int { return len(f.flows) }

// Track registers a port with the fluid model. Untracked ports on a
// transfer's path force the transfer to packet level, so clusters track
// every port a flow can traverse.
func (f *Fluid) Track(p *netsim.Port) {
	if !f.Active() || p == nil {
		return
	}
	if _, ok := f.ports[p]; ok {
		return
	}
	shard := 0
	switch o := p.Owner().(type) {
	case *netsim.Host:
		shard = o.Shard().ID()
	case *netsim.Switch:
		shard = o.Shard().ID()
	}
	f.ports[p] = &fluidPort{port: p, shard: shard, capBits: float64(p.Link().Rate)}
}

// StartFlow offers a transfer of size bytes from src to dst to the fluid
// model, with demand the most the application would drive through it. It
// returns false when the transfer must run at packet level instead: the
// controller is nil or disabled, the path is unresolvable or partly
// untracked, a path port is promoted or inside an AQM episode, or admitting
// the transfer would push a path port over the utilization threshold.
//
// On fluid admission, onComplete fires as a single control event at the
// transfer's computed completion time. If a path port promotes first,
// onPromote fires instead (control context) with the bytes still outstanding;
// the caller restarts those at packet level. Must be called in control
// context.
func (f *Fluid) StartFlow(src, dst packet.Addr, size units.ByteSize, demand units.Bandwidth,
	onComplete func(), onPromote func(remaining units.ByteSize)) bool {
	if !f.Active() {
		return false
	}
	if size <= 0 || demand <= 0 {
		panic(fmt.Sprintf("flow: fluid transfer needs positive size and demand, got %v / %v", size, demand))
	}
	if onComplete == nil || onPromote == nil {
		panic("flow: fluid transfer needs onComplete and onPromote callbacks")
	}
	now := f.g.Ctrl().Now()
	ports := f.net.PathPorts(src, dst)
	if ports == nil {
		f.stats.PacketRefused++
		return false
	}
	path := make([]*fluidPort, len(ports))
	for i, p := range ports {
		fp := f.ports[p]
		if fp == nil || fp.packetMode || f.episodeActive(fp, now) {
			f.stats.PacketRefused++
			return false
		}
		path[i] = fp
	}
	f.settle(now)
	fl := &fluidFlow{
		src: src, dst: dst, size: size,
		demand: float64(demand), remaining: float64(size), lastUpdate: now,
		path: path, onComplete: onComplete, onPromote: onPromote,
	}
	f.attach(fl)
	f.solveRates()
	if f.overThreshold(path) {
		// The newcomer would congest its own path: withdraw it to the packet
		// engine. Standing flows re-solve to exactly their previous rates
		// (the flow set is restored), so their completion events stand.
		f.detach(fl)
		f.solveRates()
		f.reschedule(now)
		f.stats.PacketRefused++
		return false
	}
	f.stats.FluidStarted++
	f.reschedule(now)
	f.trace(TraceEvent{Kind: TraceAdmit, At: now, Path: ports})
	return true
}

// NoteAQM records an AQM mark or drop on a tracked port. Called from the
// owning shard's observer tee (shard context): it updates the port's episode
// clock and, if fluid flows currently traverse the port, routes exactly one
// promotion control event at the mark's own timestamp — heap-ordered before
// any later fluid completion, so no fluid flow outlives the episode's start.
func (f *Fluid) NoteAQM(shard int, now units.Time, port *netsim.Port) {
	fp := f.ports[port]
	if fp == nil {
		return
	}
	fp.aqmSeen = true
	fp.aqmLast = now
	f.trace(TraceEvent{Kind: TraceAQM, At: now, Port: port})
	if fp.reported || !fp.hasFluid {
		return
	}
	fp.reported = true
	eng := f.g.Shards()[shard]
	f.g.ScheduleControl(shard, now.Add(f.cfg.Lag), eng.ChildLineage(), func() { f.aqmPromote(fp) })
}

// episodeActive reports whether the port saw an AQM event within the
// hysteresis window (control context; the shard-written clock is stable
// because every worker is parked).
func (f *Fluid) episodeActive(fp *fluidPort, now units.Time) bool {
	return fp.aqmSeen && now.Sub(fp.aqmLast) < f.cfg.Hysteresis
}

// aqmPromote is the control event a NoteAQM routes.
func (f *Fluid) aqmPromote(fp *fluidPort) {
	fp.reported = false
	now := f.g.Ctrl().Now()
	f.settle(now)
	f.enterPacket(fp, now)
	f.rebalance(now)
}

// settle advances every fluid flow's remaining bytes to now at its current
// rate. Every mutation of the flow set must settle first so rate changes
// apply only forward in time.
func (f *Fluid) settle(now units.Time) {
	for _, fl := range f.flows {
		if dt := now.Sub(fl.lastUpdate); dt > 0 {
			fl.remaining -= fl.rate / 8 * dt.Seconds()
			if fl.remaining < 0 {
				fl.remaining = 0
			}
			fl.lastUpdate = now
		}
	}
}

// attach registers a flow on its path.
func (f *Fluid) attach(fl *fluidFlow) {
	f.flows = append(f.flows, fl)
	for _, fp := range fl.path {
		fp.flows = append(fp.flows, fl)
		fp.hasFluid = true
	}
}

// detach removes a flow from the controller, preserving slice order so the
// solver's float accumulation sequence stays deterministic.
func (f *Fluid) detach(fl *fluidFlow) {
	for i, x := range f.flows {
		if x == fl {
			f.flows = append(f.flows[:i], f.flows[i+1:]...)
			break
		}
	}
	for _, fp := range fl.path {
		for i, x := range fp.flows {
			if x == fl {
				fp.flows = append(fp.flows[:i], fp.flows[i+1:]...)
				break
			}
		}
		fp.hasFluid = len(fp.flows) > 0
	}
}

// solveRates runs progressive filling (max-min fairness with per-flow demand
// caps) over the active flows: repeatedly compute the global bottleneck fair
// share, fix every demand-limited flow below it, otherwise saturate the
// bottleneck ports at that share. Iteration order is slice order throughout,
// so allocations are bit-deterministic in the flow history.
func (f *Fluid) solveRates() {
	f.active = f.active[:0]
	unfixed := 0
	for _, fl := range f.flows {
		fl.fixed = false
		unfixed++
		for _, fp := range fl.path {
			if !fp.inSolve {
				fp.inSolve = true
				fp.residual = fp.capBits
				fp.nActive = 0
				fp.alloc = 0
				f.active = append(f.active, fp)
			}
			fp.nActive++
		}
	}
	for unfixed > 0 {
		share := math.Inf(1)
		for _, fp := range f.active {
			if fp.nActive > 0 {
				if s := fp.residual / float64(fp.nActive); s < share {
					share = s
				}
			}
		}
		fixedAny := false
		for _, fl := range f.flows {
			if fl.fixed || fl.demand > share {
				continue
			}
			f.fixFlow(fl, fl.demand)
			unfixed--
			fixedAny = true
		}
		if fixedAny {
			continue
		}
		for _, fl := range f.flows {
			if fl.fixed {
				continue
			}
			bottlenecked := false
			for _, fp := range fl.path {
				if fp.nActive > 0 && fp.residual/float64(fp.nActive) <= share {
					bottlenecked = true
					break
				}
			}
			if bottlenecked {
				f.fixFlow(fl, share)
				unfixed--
			}
		}
	}
	for _, fp := range f.active {
		fp.inSolve = false
	}
}

// fixFlow finalizes one flow's allocation for this solve.
func (f *Fluid) fixFlow(fl *fluidFlow, rate float64) {
	fl.fixed = true
	fl.rate = rate
	for _, fp := range fl.path {
		fp.residual -= rate
		if fp.residual < 0 {
			fp.residual = 0
		}
		fp.nActive--
		fp.alloc += rate
	}
}

// overThreshold reports whether any port of the path is at or above the
// utilization threshold under the current solve.
func (f *Fluid) overThreshold(path []*fluidPort) bool {
	for _, fp := range path {
		if fp.alloc >= f.cfg.Threshold*fp.capBits {
			return true
		}
	}
	return false
}

// reschedule re-times every flow's completion event after a rate change.
// Unchanged completion times keep their scheduled event, so a solve that
// reproduces the previous allocation is free of heap churn.
func (f *Fluid) reschedule(now units.Time) {
	ctrl := f.g.Ctrl()
	for _, fl := range f.flows {
		secs := fl.remaining * 8 / fl.rate
		at := now.Add(units.Duration(secs * float64(units.Second)))
		if at < now {
			at = now
		}
		if fl.ev.Pending() && fl.ev.At() == at {
			continue
		}
		ctrl.Cancel(fl.ev)
		target := fl
		fl.ev = ctrl.Schedule(at, func() { f.complete(target) })
	}
}

// complete finishes one fluid transfer: credit its bytes, rebalance the
// survivors (promoting any port the freed capacity pushes over threshold),
// then hand the completion to the application.
func (f *Fluid) complete(fl *fluidFlow) {
	if fl.done {
		return
	}
	now := f.g.Ctrl().Now()
	f.settle(now)
	fl.done = true
	f.detach(fl)
	f.stats.FluidCompleted++
	f.stats.FluidBytes += fl.size
	if f.OnDelivered != nil {
		f.OnDelivered(fl.dst.Node, fl.size)
	}
	f.tracePath(TraceComplete, now, fl)
	f.rebalance(now)
	fl.onComplete()
}

// rebalance re-solves after a membership change and promotes every port the
// new allocation pushes over the threshold, iterating to a fixpoint (a
// promotion removes flows, which can redirect capacity onto further ports).
// Callers settle first.
func (f *Fluid) rebalance(now units.Time) {
	for {
		f.solveRates()
		var over []*fluidPort
		for _, fp := range f.active {
			if fp.alloc >= f.cfg.Threshold*fp.capBits {
				over = append(over, fp)
			}
		}
		if len(over) == 0 {
			break
		}
		for _, fp := range over {
			f.enterPacket(fp, now)
		}
	}
	f.reschedule(now)
}

// enterPacket puts a port in packet mode and converts every fluid flow
// traversing it. Callers settle first and rebalance after.
func (f *Fluid) enterPacket(fp *fluidPort, now units.Time) {
	if !fp.packetMode {
		fp.packetMode = true
		f.stats.Promotions++
		f.trace(TraceEvent{Kind: TracePromote, At: now, Port: fp.port})
	}
	fp.promotedAt = now
	for len(fp.flows) > 0 {
		f.promoteFlow(fp.flows[len(fp.flows)-1], now)
	}
	f.armDemote(fp, now)
}

// promoteFlow converts one fluid flow to packet level: settle its fluid
// progress, then hand the outstanding bytes to the application's onPromote.
// A flow with less than a byte outstanding completes instead.
func (f *Fluid) promoteFlow(fl *fluidFlow, now units.Time) {
	fl.done = true
	f.g.Ctrl().Cancel(fl.ev)
	f.detach(fl)
	outstanding := units.ByteSize(math.Ceil(fl.remaining))
	if outstanding < 1 {
		f.stats.FluidCompleted++
		f.stats.FluidBytes += fl.size
		if f.OnDelivered != nil {
			f.OnDelivered(fl.dst.Node, fl.size)
		}
		f.tracePath(TraceComplete, now, fl)
		fl.onComplete()
		return
	}
	carried := fl.size - outstanding
	if carried > 0 {
		f.stats.FluidBytes += carried
		if f.OnDelivered != nil {
			f.OnDelivered(fl.dst.Node, carried)
		}
	}
	f.stats.PromotedFlows++
	f.tracePath(TracePromoteFlow, now, fl)
	fl.onPromote(outstanding)
}

// armDemote schedules the port's demotion check one hysteresis past now.
func (f *Fluid) armDemote(fp *fluidPort, now units.Time) {
	if fp.demotePending {
		return
	}
	fp.demotePending = true
	f.g.Ctrl().Schedule(now.Add(f.cfg.Hysteresis), func() { f.tryDemote(fp) })
}

// tryDemote returns the port to fluid mode once a full hysteresis window has
// passed without AQM activity, re-arming itself otherwise.
func (f *Fluid) tryDemote(fp *fluidPort) {
	fp.demotePending = false
	if !fp.packetMode {
		return
	}
	now := f.g.Ctrl().Now()
	quiet := fp.promotedAt
	if fp.aqmSeen && fp.aqmLast > quiet {
		quiet = fp.aqmLast
	}
	if now.Sub(quiet) >= f.cfg.Hysteresis {
		fp.packetMode = false
		f.stats.Demotions++
		f.trace(TraceEvent{Kind: TraceDemote, At: now, Port: fp.port})
		return
	}
	fp.demotePending = true
	f.g.Ctrl().Schedule(quiet.Add(f.cfg.Hysteresis), func() { f.tryDemote(fp) })
}

// trace emits one OnTrace observation.
func (f *Fluid) trace(ev TraceEvent) {
	if f.OnTrace != nil {
		f.OnTrace(ev)
	}
}

// tracePath emits a flow-scoped observation carrying the flow's port path.
func (f *Fluid) tracePath(kind TraceKind, now units.Time, fl *fluidFlow) {
	if f.OnTrace == nil {
		return
	}
	ports := make([]*netsim.Port, len(fl.path))
	for i, fp := range fl.path {
		ports[i] = fp.port
	}
	f.OnTrace(TraceEvent{Kind: kind, At: now, Path: ports})
}
