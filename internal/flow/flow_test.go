package flow_test

import (
	"testing"

	"repro/internal/flow"
	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/units"
)

type harness struct {
	eng     *sim.Engine
	cluster *topo.Cluster
	stacks  []*tcp.Stack
}

func build(t testing.TB, n int) *harness {
	t.Helper()
	eng := sim.New()
	cl := topo.Build(eng, topo.Config{
		Nodes:     n,
		LinkRate:  1 * units.Gbps,
		LinkDelay: 5 * units.Microsecond,
		SwitchQueue: func(label string, rate units.Bandwidth) qdisc.Qdisc {
			return qdisc.NewDropTail(500)
		},
	})
	h := &harness{eng: eng, cluster: cl}
	stats := &tcp.Stats{}
	for _, host := range cl.Hosts {
		h.stacks = append(h.stacks, tcp.NewStack(host, tcp.DefaultConfig(tcp.Reno), stats))
	}
	return h
}

func (h *harness) addr(i int, port uint16) packet.Addr {
	return packet.Addr{Node: h.cluster.Hosts[i].ID(), Port: port}
}

func TestBulkDeliversAndCompletes(t *testing.T) {
	h := build(t, 2)
	flow.RegisterBulkSink(h.stacks[1], 9000, nil)
	var res *flow.BulkResult
	flow.StartBulk(h.stacks[0], h.addr(1, 9000), 1*units.MiB, func(r *flow.BulkResult) { res = r })
	h.eng.Run()
	if res == nil {
		t.Fatal("onDone never fired")
	}
	if res.Failed {
		t.Fatalf("flow failed: %v", res.Err)
	}
	if res.Bytes != 1*units.MiB {
		t.Errorf("Bytes = %v", res.Bytes)
	}
	if res.Connected <= res.Start {
		t.Error("Connected not after Start")
	}
	if res.Done <= res.Connected {
		t.Error("Done not after Connected")
	}
}

func TestBulkGoodputPlausible(t *testing.T) {
	h := build(t, 2)
	flow.RegisterBulkSink(h.stacks[1], 9000, nil)
	var res *flow.BulkResult
	flow.StartBulk(h.stacks[0], h.addr(1, 9000), 8*units.MiB, func(r *flow.BulkResult) { res = r })
	h.eng.Run()
	if res == nil || res.Failed {
		t.Fatal("flow did not complete")
	}
	g := res.Goodput()
	if g < 800*units.Mbps || g > 1*units.Gbps {
		t.Errorf("goodput = %v, want between 0.8 and 1 Gbps", g)
	}
	if res.Duration() <= 0 {
		t.Error("non-positive duration")
	}
}

func TestBulkSinkCallbackPerFlow(t *testing.T) {
	h := build(t, 3)
	done := 0
	flow.RegisterBulkSink(h.stacks[2], 9000, func(c *tcp.Conn) { done++ })
	flow.StartBulk(h.stacks[0], h.addr(2, 9000), 64*units.KiB, nil)
	flow.StartBulk(h.stacks[1], h.addr(2, 9000), 64*units.KiB, nil)
	h.eng.Run()
	if done != 2 {
		t.Errorf("sink callback fired %d times, want 2", done)
	}
}

func TestBulkFailurePath(t *testing.T) {
	h := build(t, 2)
	// No sink listening: dial must exhaust retries and report failure.
	var res *flow.BulkResult
	flow.StartBulk(h.stacks[0], h.addr(1, 9000), 1*units.KiB, func(r *flow.BulkResult) { res = r })
	h.eng.Run()
	if res == nil {
		t.Fatal("onDone never fired")
	}
	if !res.Failed || res.Err == nil {
		t.Error("expected failure against missing listener")
	}
}

func TestBulkInvalidSizePanics(t *testing.T) {
	h := build(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	flow.StartBulk(h.stacks[0], h.addr(1, 9000), 0, nil)
}

func TestRPCPingPong(t *testing.T) {
	h := build(t, 2)
	flow.RegisterRPCServer(h.stacks[1], 7000, 128, 4096)
	cli := flow.StartRPCClient(h.stacks[0], h.addr(1, 7000), flow.RPCConfig{
		ReqSize: 128, RespSize: 4096, Interval: 1 * units.Millisecond,
	})
	h.eng.RunUntil(units.Time(50 * units.Millisecond))
	cli.Stop()
	h.eng.Run()

	lats := cli.Latencies()
	if len(lats) < 20 {
		t.Fatalf("only %d exchanges in 50ms at 1ms interval", len(lats))
	}
	for i, l := range lats {
		if l <= 0 {
			t.Fatalf("exchange %d latency %v", i, l)
		}
		if l > 10*units.Millisecond {
			t.Errorf("exchange %d latency %v implausibly high on idle fabric", i, l)
		}
	}
}

func TestRPCLatencyReflectsCongestion(t *testing.T) {
	// RPC through a congested port must see higher latency than idle.
	idle := rpcMeanLatency(t, false)
	busy := rpcMeanLatency(t, true)
	if busy <= idle {
		t.Errorf("busy latency %v <= idle %v", busy, idle)
	}
}

func rpcMeanLatency(t *testing.T, congest bool) units.Duration {
	t.Helper()
	h := build(t, 3)
	flow.RegisterRPCServer(h.stacks[1], 7000, 128, 1024)
	if congest {
		flow.RegisterBulkSink(h.stacks[1], 9000, nil)
		flow.StartBulk(h.stacks[2], h.addr(1, 9000), 64*units.MiB, nil)
	}
	cli := flow.StartRPCClient(h.stacks[0], h.addr(1, 7000), flow.RPCConfig{
		ReqSize: 128, RespSize: 1024, Interval: 1 * units.Millisecond,
	})
	h.eng.RunUntil(units.Time(100 * units.Millisecond))
	cli.Stop()
	lats := cli.Latencies()
	if len(lats) == 0 {
		t.Fatal("no RPC samples")
	}
	var sum units.Duration
	for _, l := range lats {
		sum += l
	}
	return sum / units.Duration(len(lats))
}

func TestRPCInvalidConfigPanics(t *testing.T) {
	h := build(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	flow.StartRPCClient(h.stacks[0], h.addr(1, 7000), flow.RPCConfig{})
}

func TestDefaultRPCConfigSane(t *testing.T) {
	cfg := flow.DefaultRPCConfig()
	if cfg.ReqSize <= 0 || cfg.RespSize <= 0 || cfg.Interval <= 0 {
		t.Errorf("default config invalid: %+v", cfg)
	}
}
