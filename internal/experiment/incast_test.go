package experiment_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/units"
)

func incastCfg(setup experiment.QueueSetup, buf cluster.BufferDepth) experiment.Config {
	return experiment.Config{
		Setup:       setup,
		Buffer:      buf,
		TargetDelay: 100 * units.Microsecond,
		Seed:        1,
	}
}

func TestIncastAllFlowsComplete(t *testing.T) {
	for _, setup := range []experiment.QueueSetup{
		experiment.SetupDropTail,
		experiment.SetupECNAckSyn,
		experiment.SetupECNSimpleMark,
	} {
		r := experiment.RunIncast(incastCfg(setup, cluster.Shallow), 8, 2*units.MiB)
		if r.Completed != 8 {
			t.Errorf("%s: %d/8 flows completed", setup.Label, r.Completed)
		}
		if r.AggGoodput <= 0 || r.Last <= 0 {
			t.Errorf("%s: degenerate result %+v", setup.Label, r)
		}
	}
}

// TestIncastMarkingBeatsDropTail pins the burst story: under synchronized
// incast, the marking scheme avoids the loss-and-RTO collapse DropTail
// suffers on shallow buffers.
func TestIncastMarkingBeatsDropTail(t *testing.T) {
	dt := experiment.RunIncast(incastCfg(experiment.SetupDropTail, cluster.Shallow), 8, 4*units.MiB)
	sm := experiment.RunIncast(incastCfg(experiment.SetupDCTCPSimpleMark, cluster.Shallow), 8, 4*units.MiB)
	if dt.OverflowDrops == 0 {
		t.Skip("droptail incast produced no drops at this scale")
	}
	if sm.OverflowDrops+sm.EarlyDrops >= dt.OverflowDrops {
		t.Errorf("marking drops (%d) not below droptail (%d)",
			sm.OverflowDrops+sm.EarlyDrops, dt.OverflowDrops)
	}
	if sm.AggGoodput <= dt.AggGoodput {
		t.Errorf("marking goodput %v not above droptail %v", sm.AggGoodput, dt.AggGoodput)
	}
}

// TestIncastDeepBufferAbsorbsBursts pins the Cisco-study premise the paper
// cites: deep buffers absorb synchronized bursts that overflow shallow
// ones. The claim holds in the regime where the aggregate burst fits the
// deep buffer (12 x 512 KiB = 6 MiB: above the 1 MB shallow port, below the
// 10 MB deep port); beyond that, deeper buffers just defer a bigger loss.
func TestIncastDeepBufferAbsorbsBursts(t *testing.T) {
	shallow := experiment.RunIncast(incastCfg(experiment.SetupDropTail, cluster.Shallow), 12, 512*units.KiB)
	deep := experiment.RunIncast(incastCfg(experiment.SetupDropTail, cluster.Deep), 12, 512*units.KiB)
	if shallow.OverflowDrops == 0 {
		t.Skip("shallow incast produced no drops at this scale")
	}
	if deep.OverflowDrops >= shallow.OverflowDrops {
		t.Errorf("deep drops %d not below shallow %d", deep.OverflowDrops, shallow.OverflowDrops)
	}
	if deep.MeanLatency <= shallow.MeanLatency {
		t.Errorf("deep latency %v not above shallow %v (absorption has a latency price)",
			deep.MeanLatency, shallow.MeanLatency)
	}
}

// TestIncastDeeperIsNotAlwaysBetter pins the complementary observation
// (the Bufferbloat citation): once the synchronized burst exceeds even the
// deep buffer, extra depth defers a bigger loss instead of avoiding it.
func TestIncastDeeperIsNotAlwaysBetter(t *testing.T) {
	shallow := experiment.RunIncast(incastCfg(experiment.SetupDropTail, cluster.Shallow), 12, 4*units.MiB)
	deep := experiment.RunIncast(incastCfg(experiment.SetupDropTail, cluster.Deep), 12, 4*units.MiB)
	if deep.MeanLatency <= shallow.MeanLatency {
		t.Errorf("deep latency %v not above shallow %v", deep.MeanLatency, shallow.MeanLatency)
	}
	// Both must still complete every flow.
	if shallow.Completed != 12 || deep.Completed != 12 {
		t.Errorf("completions %d/%d of 12", shallow.Completed, deep.Completed)
	}
}

func TestIncastDeterministic(t *testing.T) {
	a := experiment.RunIncast(incastCfg(experiment.SetupECNDefault, cluster.Shallow), 6, 1*units.MiB)
	b := experiment.RunIncast(incastCfg(experiment.SetupECNDefault, cluster.Shallow), 6, 1*units.MiB)
	if a.Last != b.Last || a.Retransmits != b.Retransmits {
		t.Error("incast runs diverged across identical configs")
	}
}
