package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// ResultsVersion names the current generation of simulated behavior. It is a
// component of every result-cache key, so cached rows produced by an older
// generation can never satisfy a newer one. Bump it in any PR that
// intentionally changes simulation output (new event orderings, retuned
// defaults, metric definition changes); speed-only work that keeps results
// bit-identical — the bench gate's event-count check is the arbiter — must
// leave it alone, so warm caches survive performance PRs.
const ResultsVersion = "ecnsim-results/v2"

// CacheKey derives a content address from an ordered list of identity parts
// (version, scenario name, canonicalized configuration, ...). Parts are
// length-framed before hashing, so no two distinct part lists collide by
// concatenation.
func CacheKey(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Cache is a content-addressed result store on the local filesystem: one
// JSON file per key, written atomically, safe for concurrent use within a
// process. It never invalidates by time — keys embed everything that
// determines the value (ResultsVersion, scenario, canonical configuration,
// seed), so an entry is either exactly right or never looked up again.
type Cache struct {
	dir string

	mu     sync.Mutex
	hits   int
	misses int
}

// OpenCache creates (if needed) and opens a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("experiment: OpenCache with empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiment: opening cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// DefaultCacheDir returns the conventional per-user cache location
// (<user cache dir>/ecnsim, falling back to the system temp directory when
// the platform reports no user cache dir).
func DefaultCacheDir() string {
	if base, err := os.UserCacheDir(); err == nil {
		return filepath.Join(base, "ecnsim")
	}
	return filepath.Join(os.TempDir(), "ecnsim-cache")
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// path validates a key (must be a CacheKey-shaped hex digest; anything else
// could escape the cache directory) and returns its file path.
func (c *Cache) path(key string) (string, error) {
	if len(key) != sha256.Size*2 {
		return "", fmt.Errorf("experiment: cache key %q is not a %d-char digest", key, sha256.Size*2)
	}
	if _, err := hex.DecodeString(key); err != nil {
		return "", fmt.Errorf("experiment: cache key %q is not hex", key)
	}
	return filepath.Join(c.dir, key+".json"), nil
}

// Get loads the value stored under key into v. The second return reports
// whether the key was present; a corrupt entry is treated as an error, not a
// miss, so a truncated write surfaces instead of silently re-simulating.
func (c *Cache) Get(key string, v any) (bool, error) {
	path, err := c.path(key)
	if err != nil {
		return false, err
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		c.count(false)
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("experiment: cache read: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false, fmt.Errorf("experiment: cache entry %s is corrupt: %w", key[:12], err)
	}
	c.count(true)
	return true, nil
}

// Put stores v under key. The write is atomic (temp file + rename), so a
// concurrent reader sees either the complete entry or none.
func (c *Cache) Put(key string, v any) error {
	path, err := c.path(key)
	if err != nil {
		return err
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("experiment: cache encode: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return fmt.Errorf("experiment: cache write: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("experiment: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("experiment: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("experiment: cache write: %w", err)
	}
	return nil
}

func (c *Cache) count(hit bool) {
	c.mu.Lock()
	if hit {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
}

// Stats reports how many Gets hit and missed since the cache was opened.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
