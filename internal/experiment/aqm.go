package experiment

import (
	"context"

	"repro/internal/cluster"
	"repro/internal/qdisc"
	"repro/internal/tcp"
	"repro/internal/units"
)

// AQM-comparison setups: do the paper's protection modes generalize beyond
// RED? The authors' earlier LCN 2016 study asked "do we need AQM?" over
// CoDel-style queues; these series answer whether CoDel and PIE inherit the
// same non-ECT bias and whether ACK+SYN protection repairs them the same
// way.
var (
	SetupCoDelDefault = QueueSetup{Label: "codel-default", Queue: cluster.QueueCoDel, Protect: qdisc.ProtectNone, Transport: tcp.RenoECN}
	SetupCoDelAckSyn  = QueueSetup{Label: "codel-ack+syn", Queue: cluster.QueueCoDel, Protect: qdisc.ProtectACKSYN, Transport: tcp.RenoECN}
	SetupPIEDefault   = QueueSetup{Label: "pie-default", Queue: cluster.QueuePIE, Protect: qdisc.ProtectNone, Transport: tcp.RenoECN}
	SetupPIEAckSyn    = QueueSetup{Label: "pie-ack+syn", Queue: cluster.QueuePIE, Protect: qdisc.ProtectACKSYN, Transport: tcp.RenoECN}
)

// AQMSetups returns the cross-AQM comparison series (RED, CoDel, PIE — each
// in default and ACK+SYN-protected mode) plus the marking reference.
func AQMSetups() []QueueSetup {
	return []QueueSetup{
		SetupECNDefault, SetupECNAckSyn,
		SetupCoDelDefault, SetupCoDelAckSyn,
		SetupPIEDefault, SetupPIEAckSyn,
		SetupECNSimpleMark,
	}
}

// AQMComparison holds one row per AQM setup at a fixed target delay.
type AQMComparison struct {
	TargetDelay units.Duration
	Baseline    Result // DropTail shallow
	Rows        []Result
}

// CompareAQMs runs the cross-AQM grid at one target delay on shallow
// buffers. It answers the generalization question quantitatively.
func CompareAQMs(scale Scale, target units.Duration, seed uint64) AQMComparison {
	cmp, _ := CompareAQMsConfig(context.Background(), Config{
		Buffer:      cluster.Shallow,
		TargetDelay: target,
		Scale:       scale,
		Seed:        seed,
	})
	return cmp
}

// CompareAQMsConfig runs the cross-AQM grid over the given base config
// (its Setup is replaced row by row; buffer depth, target delay, scale,
// seed and ablations apply to every row). Cancelling ctx between runs
// aborts the grid with ctx.Err().
func CompareAQMsConfig(ctx context.Context, base Config) (AQMComparison, error) {
	cmp := AQMComparison{TargetDelay: base.TargetDelay}
	run := func(setup QueueSetup) (Result, error) {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		cfg := base
		cfg.Setup = setup
		return Run(cfg), nil
	}
	var err error
	if cmp.Baseline, err = run(SetupDropTail); err != nil {
		return cmp, err
	}
	for _, setup := range AQMSetups() {
		r, err := run(setup)
		if err != nil {
			return cmp, err
		}
		cmp.Rows = append(cmp.Rows, r)
	}
	return cmp, nil
}
