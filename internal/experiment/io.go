package experiment

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/units"
)

// Serialized sweep format. Sweeps are expensive (minutes at paper scale);
// WriteJSON/ReadJSON let commands archive a grid and let figure rendering
// re-run without re-simulating.

// sweepJSON is the stable on-disk layout.
type sweepJSON struct {
	FormatVersion int                            `json:"format_version"`
	Scale         Scale                          `json:"scale"`
	TargetDelays  []int64                        `json:"target_delays_ns"`
	Seed          uint64                         `json:"seed"`
	Repeats       int                            `json:"repeats"`
	Degrade       []cluster.LinkDegrade          `json:"degrade,omitempty"`
	Workload      *WorkloadConfig                `json:"workload,omitempty"`
	DropTail      map[string]Result              `json:"droptail"`
	Series        map[string]map[string][]Result `json:"series"`
}

const sweepFormatVersion = 1

func bufKey(b cluster.BufferDepth) string { return b.String() }

func parseBufKey(s string) (cluster.BufferDepth, error) {
	switch s {
	case "shallow":
		return cluster.Shallow, nil
	case "deep":
		return cluster.Deep, nil
	}
	return 0, fmt.Errorf("experiment: unknown buffer depth %q", s)
}

// WriteJSON serializes an executed sweep.
func (s *Sweep) WriteJSON(w io.Writer) error {
	out := sweepJSON{
		FormatVersion: sweepFormatVersion,
		Scale:         s.Scale,
		Seed:          s.Seed,
		Repeats:       s.Repeats,
		Degrade:       s.Degrade,
		Workload:      s.Workload,
		DropTail:      make(map[string]Result),
		Series:        make(map[string]map[string][]Result),
	}
	for _, d := range s.TargetDelays {
		out.TargetDelays = append(out.TargetDelays, int64(d))
	}
	for buf, r := range s.DropTail {
		out.DropTail[bufKey(buf)] = r
	}
	for buf, bySetup := range s.Series {
		m := make(map[string][]Result, len(bySetup))
		for label, series := range bySetup {
			m[label] = series
		}
		out.Series[bufKey(buf)] = m
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON deserializes a sweep previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Sweep, error) {
	var in sweepJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("experiment: decoding sweep: %w", err)
	}
	if in.FormatVersion != sweepFormatVersion {
		return nil, fmt.Errorf("experiment: sweep format %d unsupported (want %d)",
			in.FormatVersion, sweepFormatVersion)
	}
	s := NewSweep(in.Scale, in.Seed)
	s.Repeats = in.Repeats
	s.Degrade = in.Degrade
	s.Workload = in.Workload
	s.TargetDelays = s.TargetDelays[:0]
	for _, ns := range in.TargetDelays {
		s.TargetDelays = append(s.TargetDelays, units.Duration(ns))
	}
	for k, r := range in.DropTail {
		buf, err := parseBufKey(k)
		if err != nil {
			return nil, err
		}
		//ecnlint:allow maporder parseBufKey is a bijective decode of the range key, so each iteration writes a distinct slot
		s.DropTail[buf] = r
	}
	for k, bySetup := range in.Series {
		buf, err := parseBufKey(k)
		if err != nil {
			return nil, err
		}
		m := make(map[string][]Result, len(bySetup))
		for label, series := range bySetup {
			if len(series) != len(s.TargetDelays) {
				return nil, fmt.Errorf("experiment: series %s/%s has %d points, want %d",
					k, label, len(series), len(s.TargetDelays))
			}
			m[label] = series
		}
		s.Series[buf] = m
	}
	return s, nil
}
