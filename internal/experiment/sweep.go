package experiment

import (
	"context"
	"sync"

	"repro/internal/cluster"
	"repro/internal/pool"
	"repro/internal/units"
)

// DefaultTargetDelays is the RED/SimpleMark target-delay sweep of the
// paper's x-axes, from aggressive to loose.
func DefaultTargetDelays() []units.Duration {
	return []units.Duration{
		50 * units.Microsecond,
		100 * units.Microsecond,
		200 * units.Microsecond,
		500 * units.Microsecond,
		1000 * units.Microsecond,
		2000 * units.Microsecond,
		4000 * units.Microsecond,
	}
}

// Repeat runs cfg once per seed and returns the metric-averaged result
// (counters are averaged too, rounding down).
func Repeat(cfg Config, seeds []uint64) Result {
	if len(seeds) == 0 {
		seeds = []uint64{cfg.Seed}
	}
	var acc Result
	for i, s := range seeds {
		cfg.Seed = s
		r := Run(cfg)
		if i == 0 {
			acc = r
			continue
		}
		acc.Runtime += r.Runtime
		acc.ThroughputPerNode += r.ThroughputPerNode
		acc.MeanLatency += r.MeanLatency
		acc.P99Latency += r.P99Latency
		acc.ShuffledBytes += r.ShuffledBytes
		acc.EarlyDrops += r.EarlyDrops
		acc.OverflowDrops += r.OverflowDrops
		acc.AckDropShare += r.AckDropShare
		acc.Marks += r.Marks
		acc.Retransmits += r.Retransmits
		acc.RTOEvents += r.RTOEvents
		acc.SynRetries += r.SynRetries
		acc.FetchRetries += r.FetchRetries
		acc.Events += r.Events
		acc.SimTime += r.SimTime
		for t := range acc.TierOccupancy {
			acc.TierOccupancy[t] += r.TierOccupancy[t]
		}
	}
	n := len(seeds)
	acc.Runtime /= units.Duration(n)
	acc.ThroughputPerNode /= units.Bandwidth(n)
	acc.MeanLatency /= units.Duration(n)
	acc.P99Latency /= units.Duration(n)
	acc.ShuffledBytes /= units.ByteSize(n)
	acc.EarlyDrops /= uint64(n)
	acc.OverflowDrops /= uint64(n)
	acc.AckDropShare /= float64(n)
	acc.Marks /= uint64(n)
	acc.Retransmits /= uint64(n)
	acc.RTOEvents /= uint64(n)
	acc.SynRetries /= uint64(n)
	acc.FetchRetries /= n
	acc.Events /= uint64(n)
	acc.SimTime /= units.Duration(n)
	for t := range acc.TierOccupancy {
		acc.TierOccupancy[t] /= float64(n)
	}
	acc.Config.Seed = seeds[0]
	return acc
}

// Sweep is the full grid behind Figures 2-4 plus the DropTail baselines and
// the SimpleMark headline series.
type Sweep struct {
	Scale        Scale
	TargetDelays []units.Duration
	Seed         uint64
	// Degrade lists inter-switch link degradations applied to every grid
	// cell's fabric (see cluster.LinkDegrade).
	Degrade []cluster.LinkDegrade
	// Workload, when non-nil, runs every grid cell under the multi-tenant
	// workload engine instead of a single Terasort (see RunTenants); the
	// knobs are archived with the grid.
	Workload *WorkloadConfig
	// Repeats averages each grid point over this many consecutive seeds
	// starting at Seed (0 or 1 = single run).
	Repeats int
	// Workers bounds concurrent runs. Each simulation is single-threaded
	// and fully independent, so the grid parallelizes perfectly; results
	// are identical to serial execution. 0 means GOMAXPROCS; 1 forces
	// serial.
	Workers int

	// Baselines, keyed by buffer depth.
	DropTail map[cluster.BufferDepth]Result
	// Series: per buffer depth, per setup label, results indexed like
	// TargetDelays.
	Series map[cluster.BufferDepth]map[string][]Result

	// Progress, if non-nil, is called before each run.
	Progress func(done, total int, cfg Config) `json:"-"`
}

// NewSweep prepares an empty sweep at the given scale.
func NewSweep(scale Scale, seed uint64) *Sweep {
	return &Sweep{
		Scale:        scale,
		TargetDelays: DefaultTargetDelays(),
		Seed:         seed,
		DropTail:     make(map[cluster.BufferDepth]Result),
		Series:       make(map[cluster.BufferDepth]map[string][]Result),
	}
}

// TotalRuns returns how many simulations Execute will perform.
func (s *Sweep) TotalRuns() int {
	setups := len(REDSetups()) + len(MarkingSetups())
	return 2 + 2*setups*len(s.TargetDelays)
}

// gridJob locates one run's slot in the sweep output.
type gridJob struct {
	cfg      Config
	baseline bool // DropTail baseline for cfg.Buffer
	label    string
	index    int // position in the series
}

// Execute runs the whole grid, spreading independent simulations over
// Workers goroutines. Results are deterministic in (Scale, Seed, Repeats)
// and independent of Workers.
func (s *Sweep) Execute() {
	_ = s.ExecuteContext(context.Background())
}

// ExecuteContext is Execute with cancellation: if ctx is cancelled the grid
// stops dispatching new runs (leaving unvisited slots zero) and ctx.Err() is
// returned.
func (s *Sweep) ExecuteContext(ctx context.Context) error {
	seeds := []uint64{s.Seed}
	for i := 1; i < s.Repeats; i++ {
		seeds = append(seeds, s.Seed+uint64(i))
	}

	// Lay out the grid.
	var jobs []gridJob
	buffers := []cluster.BufferDepth{cluster.Shallow, cluster.Deep}
	for _, buf := range buffers {
		jobs = append(jobs, gridJob{
			cfg: Config{
				Setup:       SetupDropTail,
				Buffer:      buf,
				TargetDelay: 500 * units.Microsecond, // ignored by DropTail
				Scale:       s.Scale,
				Seed:        s.Seed,
				Degrade:     s.Degrade,
				Workload:    s.Workload,
			},
			baseline: true,
		})
		bySetup := make(map[string][]Result)
		s.Series[buf] = bySetup
		all := append(REDSetups(), MarkingSetups()...)
		for _, setup := range all {
			bySetup[setup.Label] = make([]Result, len(s.TargetDelays))
			for i, d := range s.TargetDelays {
				jobs = append(jobs, gridJob{
					cfg: Config{
						Setup:       setup,
						Buffer:      buf,
						TargetDelay: d,
						Scale:       s.Scale,
						Seed:        s.Seed,
						Degrade:     s.Degrade,
						Workload:    s.Workload,
					},
					label: setup.Label,
					index: i,
				})
			}
		}
	}

	p := &pool.Pool{Workers: s.Workers}
	if s.Progress != nil {
		p.OnStart = func(i, done int) { s.Progress(done, len(jobs), jobs[i].cfg) }
	}
	var mu sync.Mutex
	return p.Run(ctx, len(jobs), func(i int) {
		j := jobs[i]
		res := Repeat(j.cfg, seeds)
		mu.Lock()
		defer mu.Unlock()
		if j.baseline {
			s.DropTail[j.cfg.Buffer] = res
		} else {
			s.Series[j.cfg.Buffer][j.label][j.index] = res
		}
	})
}

// NormalizedRuntime returns runtime relative to DropTail-shallow (the
// paper's Figure 2 normalization; <1 is faster).
func (s *Sweep) NormalizedRuntime(r Result) float64 {
	base := s.DropTail[cluster.Shallow].Runtime
	if base <= 0 {
		return 0
	}
	return float64(r.Runtime) / float64(base)
}

// NormalizedThroughput returns shuffle throughput relative to
// DropTail-shallow (Figure 3; >1 is better).
func (s *Sweep) NormalizedThroughput(r Result) float64 {
	base := s.DropTail[cluster.Shallow].ThroughputPerNode
	if base <= 0 {
		return 0
	}
	return float64(r.ThroughputPerNode) / float64(base)
}

// NormalizedLatency returns mean packet latency relative to DropTail with
// the same buffer depth (Figure 4; <1 is better).
func (s *Sweep) NormalizedLatency(r Result) float64 {
	base := s.DropTail[r.Config.Buffer].MeanLatency
	if base <= 0 {
		return 0
	}
	return float64(r.MeanLatency) / float64(base)
}
