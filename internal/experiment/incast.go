package experiment

import (
	"repro/internal/cluster"
	"repro/internal/flow"
	"repro/internal/packet"
	"repro/internal/units"
)

// Incast is the microbenchmark beneath the shuffle's worst case, and the
// scenario behind the paper's burst-absorption discussion (the Cisco
// deep-buffer study it cites): N synchronized senders, one receiver, one
// switch. IncastResult reports completion and loss for one configuration.
type IncastResult struct {
	Config  Config
	Senders int
	Flow    units.ByteSize

	Completed     int
	Last          units.Duration // completion time of the slowest flow
	AggGoodput    units.Bandwidth
	EarlyDrops    uint64
	OverflowDrops uint64
	Retransmits   uint64
	RTOEvents     uint64
	MeanLatency   units.Duration

	// Substrate accounting (see Result.Events / Result.SimTime).
	Events  uint64
	SimTime units.Duration
}

// RunIncast executes senders->1 bulk transfers of flowSize each through the
// configured queue discipline. Scale.Nodes is ignored; the fabric has
// senders+1 hosts.
func RunIncast(cfg Config, senders int, flowSize units.ByteSize) IncastResult {
	spec := cluster.DefaultSpec()
	spec.Nodes = senders + 1
	spec.Queue = cfg.Setup.Queue
	spec.Buffer = cfg.Buffer
	spec.TargetDelay = cfg.TargetDelay
	spec.Protect = cfg.Setup.Protect
	spec.Transport = cfg.Setup.Transport
	spec.Seed = cfg.Seed
	spec.TCPOverride = tcpOverride(cfg, spec.Transport)

	c := cluster.New(spec)
	flow.RegisterBulkSink(c.Stacks[senders], 9000, nil)
	dst := packet.Addr{Node: c.Topo.Hosts[senders].ID(), Port: 9000}

	res := IncastResult{Config: cfg, Senders: senders, Flow: flowSize}
	var last units.Time
	for i := 0; i < senders; i++ {
		flow.StartBulk(c.Stacks[i], dst, flowSize, func(r *flow.BulkResult) {
			if r.Failed {
				return
			}
			res.Completed++
			if r.Done > last {
				last = r.Done
			}
		})
	}
	c.Engine.SetDeadline(units.Time(300 * units.Second))
	c.Engine.Run()

	res.Last = units.Duration(last)
	if last > 0 {
		res.AggGoodput = units.Bandwidth(float64(units.ByteSize(senders)*flowSize*8) / last.Seconds())
	}
	res.EarlyDrops, res.OverflowDrops = c.Metrics.Drops()
	res.Retransmits = c.TCP.Retransmits()
	res.RTOEvents = c.TCP.RTOEvents
	res.MeanLatency = c.Metrics.MeanLatency()
	res.Events = c.Engine.Executed()
	res.SimTime = units.Duration(c.Engine.Now())
	return res
}
