package experiment_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiment"
)

// TestCacheKeyFraming pins that the key is sensitive to part boundaries,
// part order and part content — the properties that make it safe to build
// from (version, scenario, canonical config) without a delimiter convention.
func TestCacheKeyFraming(t *testing.T) {
	keys := []string{
		experiment.CacheKey("ab", "c"),
		experiment.CacheKey("a", "bc"),
		experiment.CacheKey("abc"),
		experiment.CacheKey("c", "ab"),
		experiment.CacheKey("ab", "c", ""),
	}
	seen := make(map[string]int)
	for i, k := range keys {
		if len(k) != 64 {
			t.Fatalf("key %d: length %d, want 64 hex chars", i, len(k))
		}
		if j, dup := seen[k]; dup {
			t.Fatalf("part lists %d and %d collide: %s", i, j, k)
		}
		seen[k] = i
	}
	if a, b := experiment.CacheKey("x", "y"), experiment.CacheKey("x", "y"); a != b {
		t.Fatalf("identical parts produced different keys: %s vs %s", a, b)
	}
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := experiment.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	type row struct {
		Label string             `json:"label"`
		Vals  map[string]float64 `json:"vals"`
	}
	key := experiment.CacheKey(experiment.ResultsVersion, "test", "cfg")
	var missed []row
	if ok, err := c.Get(key, &missed); err != nil || ok {
		t.Fatalf("Get on empty cache = (%v, %v), want miss", ok, err)
	}
	want := []row{{Label: "droptail", Vals: map[string]float64{"runtime_s": 1.5}}}
	if err := c.Put(key, want); err != nil {
		t.Fatal(err)
	}
	var got []row
	if ok, err := c.Get(key, &got); err != nil || !ok {
		t.Fatalf("Get after Put = (%v, %v), want hit", ok, err)
	}
	if len(got) != 1 || got[0].Label != "droptail" || got[0].Vals["runtime_s"] != 1.5 {
		t.Fatalf("round trip mangled the value: %+v", got)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("Stats = (%d, %d), want (1, 1)", hits, misses)
	}
}

// TestCacheRejectsUnsafeKeys pins that only digest-shaped keys reach the
// filesystem: a relative-path "key" must never resolve outside the cache.
func TestCacheRejectsUnsafeKeys(t *testing.T) {
	c, err := experiment.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"",
		"short",
		"../../etc/passwd",
		strings.Repeat("g", 64), // right length, not hex
	} {
		if err := c.Put(key, 1); err == nil {
			t.Errorf("Put(%q) accepted a non-digest key", key)
		}
		var v int
		if _, err := c.Get(key, &v); err == nil {
			t.Errorf("Get(%q) accepted a non-digest key", key)
		}
	}
}

// TestCacheCorruptEntryIsAnError pins that a damaged entry surfaces loudly
// instead of masquerading as a miss and silently re-simulating forever.
func TestCacheCorruptEntryIsAnError(t *testing.T) {
	dir := t.TempDir()
	c, err := experiment.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := experiment.CacheKey("v", "corrupt")
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	var v map[string]int
	if _, err := c.Get(key, &v); err == nil {
		t.Fatal("Get on a corrupt entry returned no error")
	}
}
