package experiment_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/units"
)

// tinyScale keeps unit-test runs under a second each.
func tinyScale() experiment.Scale {
	return experiment.Scale{
		Nodes:     4,
		InputSize: 64 * units.MiB,
		BlockSize: 16 * units.MiB,
		Reducers:  8,
	}
}

func tinyRun(setup experiment.QueueSetup, buf cluster.BufferDepth, d units.Duration) experiment.Result {
	return experiment.Run(experiment.Config{
		Setup:       setup,
		Buffer:      buf,
		TargetDelay: d,
		Scale:       tinyScale(),
		Seed:        1,
	})
}

func TestRunProducesSaneMetrics(t *testing.T) {
	r := tinyRun(experiment.SetupDropTail, cluster.Shallow, 500*units.Microsecond)
	if r.Runtime <= 0 {
		t.Error("runtime <= 0")
	}
	if r.ThroughputPerNode <= 0 {
		t.Error("throughput <= 0")
	}
	if r.MeanLatency <= 0 || r.P99Latency < r.MeanLatency {
		t.Errorf("latency stats malformed: mean=%v p99=%v", r.MeanLatency, r.P99Latency)
	}
	if r.ShuffledBytes != 64*units.MiB {
		t.Errorf("shuffled %v, want 64MiB (ratio 1.0)", r.ShuffledBytes)
	}
	if r.EarlyDrops != 0 {
		t.Error("DropTail produced early drops")
	}
	if r.Marks != 0 {
		t.Error("DropTail produced CE marks")
	}
}

func TestDeterministicResults(t *testing.T) {
	a := tinyRun(experiment.SetupECNAckSyn, cluster.Shallow, 100*units.Microsecond)
	b := tinyRun(experiment.SetupECNAckSyn, cluster.Shallow, 100*units.Microsecond)
	if a.Runtime != b.Runtime || a.Marks != b.Marks || a.Retransmits != b.Retransmits {
		t.Error("identical configs diverged")
	}
}

// TestAckDropBiasInDefaultMode pins the paper's central observation: with an
// ECN-enabled AQM in default mode under tight thresholds, essentially every
// dropped packet is a non-ECT packet (ACKs/SYNs), because data is marked
// instead of dropped.
func TestAckDropBiasInDefaultMode(t *testing.T) {
	r := tinyRun(experiment.SetupECNDefault, cluster.Shallow, 100*units.Microsecond)
	if r.EarlyDrops == 0 {
		t.Fatal("no early drops; cannot assess bias")
	}
	if r.AckDropShare < 0.9 {
		t.Errorf("ACK share of drops = %.2f, want >= 0.9 (disproportionate ACK dropping)", r.AckDropShare)
	}
	if r.Marks == 0 {
		t.Error("no CE marks despite ECN")
	}
}

// TestProtectionEliminatesAckDrops pins the proposed fix: ACK+SYN protection
// must eliminate (essentially all) early ACK drops.
func TestProtectionEliminatesAckDrops(t *testing.T) {
	def := tinyRun(experiment.SetupECNDefault, cluster.Shallow, 100*units.Microsecond)
	prot := tinyRun(experiment.SetupECNAckSyn, cluster.Shallow, 100*units.Microsecond)
	if prot.EarlyDrops >= def.EarlyDrops {
		t.Errorf("protection did not reduce early drops: %d vs %d", prot.EarlyDrops, def.EarlyDrops)
	}
	if prot.AckDropShare > 0.5 && prot.EarlyDrops > 10 {
		t.Errorf("ACK+SYN mode still early-drops ACKs (share %.2f of %d)", prot.AckDropShare, prot.EarlyDrops)
	}
}

// pressureScale generates sustained shuffle congestion; the comparative
// shape assertions need it (a tiny shuffle doesn't stress the AQM).
func pressureScale() experiment.Scale {
	return experiment.Scale{
		Nodes:     8,
		InputSize: 256 * units.MiB,
		BlockSize: 32 * units.MiB,
		Reducers:  16,
	}
}

func pressureRun(setup experiment.QueueSetup, buf cluster.BufferDepth, d units.Duration) experiment.Result {
	return experiment.Run(experiment.Config{
		Setup:       setup,
		Buffer:      buf,
		TargetDelay: d,
		Scale:       pressureScale(),
		Seed:        1,
	})
}

// TestProtectedModesOutperformDefault pins the paper's Figure 2/3 ordering
// at an aggressive threshold: ACK+SYN protection beats the default mode on
// runtime and throughput.
func TestProtectedModesOutperformDefault(t *testing.T) {
	def := pressureRun(experiment.SetupECNDefault, cluster.Shallow, 100*units.Microsecond)
	prot := pressureRun(experiment.SetupECNAckSyn, cluster.Shallow, 100*units.Microsecond)
	if prot.Runtime >= def.Runtime {
		t.Errorf("ack+syn runtime %v not better than default %v", prot.Runtime, def.Runtime)
	}
	if prot.ThroughputPerNode <= def.ThroughputPerNode {
		t.Errorf("ack+syn throughput %v not better than default %v",
			prot.ThroughputPerNode, def.ThroughputPerNode)
	}
}

// TestSimpleMarkNoEarlyDropsFullThroughput pins the second proposal: the
// true marking scheme never early-drops and sustains DropTail-or-better
// throughput with far lower latency.
func TestSimpleMarkNoEarlyDropsFullThroughput(t *testing.T) {
	dt := tinyRun(experiment.SetupDropTail, cluster.Shallow, 500*units.Microsecond)
	sm := tinyRun(experiment.SetupECNSimpleMark, cluster.Shallow, 100*units.Microsecond)
	if sm.EarlyDrops != 0 {
		t.Errorf("simple marking early-dropped %d packets", sm.EarlyDrops)
	}
	if sm.ThroughputPerNode < dt.ThroughputPerNode {
		t.Errorf("simplemark throughput %v below droptail %v", sm.ThroughputPerNode, dt.ThroughputPerNode)
	}
	if sm.MeanLatency >= dt.MeanLatency {
		t.Errorf("simplemark latency %v not below droptail %v", sm.MeanLatency, dt.MeanLatency)
	}
}

// TestDeepBuffersBufferbloat pins the Figure 4 normalization premise: deep
// DropTail buffers trade latency for throughput.
func TestDeepBuffersBufferbloat(t *testing.T) {
	shallow := tinyRun(experiment.SetupDropTail, cluster.Shallow, 500*units.Microsecond)
	deep := tinyRun(experiment.SetupDropTail, cluster.Deep, 500*units.Microsecond)
	if deep.MeanLatency <= shallow.MeanLatency {
		t.Errorf("deep latency %v not above shallow %v (no bufferbloat)", deep.MeanLatency, shallow.MeanLatency)
	}
	if deep.Runtime > shallow.Runtime {
		t.Errorf("deep runtime %v worse than shallow %v", deep.Runtime, shallow.Runtime)
	}
}

func TestRepeatAverages(t *testing.T) {
	cfg := experiment.Config{
		Setup:       experiment.SetupDropTail,
		Buffer:      cluster.Shallow,
		TargetDelay: 500 * units.Microsecond,
		Scale:       tinyScale(),
	}
	avg := experiment.Repeat(cfg, []uint64{1, 2})
	cfg.Seed = 1
	r1 := experiment.Run(cfg)
	cfg.Seed = 2
	r2 := experiment.Run(cfg)
	want := (r1.Runtime + r2.Runtime) / 2
	if avg.Runtime != want {
		t.Errorf("averaged runtime %v, want %v", avg.Runtime, want)
	}
}

func TestSweepStructure(t *testing.T) {
	s := experiment.NewSweep(tinyScale(), 1)
	s.TargetDelays = []units.Duration{100 * units.Microsecond, 2 * units.Millisecond}
	var calls int
	s.Progress = func(done, total int, cfg experiment.Config) { calls++ }
	s.Execute()

	wantRuns := 2 + 2*8*2 // 2 droptail + 2 buffers x 8 setups x 2 delays
	if calls != wantRuns {
		t.Errorf("progress calls = %d, want %d", calls, wantRuns)
	}
	for _, buf := range []cluster.BufferDepth{cluster.Shallow, cluster.Deep} {
		if _, ok := s.DropTail[buf]; !ok {
			t.Fatalf("missing droptail baseline for %v", buf)
		}
		for _, setup := range append(experiment.REDSetups(), experiment.MarkingSetups()...) {
			series := s.Series[buf][setup.Label]
			if len(series) != 2 {
				t.Fatalf("series %q/%v has %d points, want 2", setup.Label, buf, len(series))
			}
		}
	}
	// Normalizations: droptail shallow normalizes to exactly 1.0.
	if got := s.NormalizedRuntime(s.DropTail[cluster.Shallow]); got != 1.0 {
		t.Errorf("droptail/shallow normalized runtime = %g", got)
	}
	if got := s.NormalizedThroughput(s.DropTail[cluster.Shallow]); got != 1.0 {
		t.Errorf("droptail/shallow normalized throughput = %g", got)
	}
	if got := s.NormalizedLatency(s.DropTail[cluster.Deep]); got != 1.0 {
		t.Errorf("droptail/deep normalized latency (vs itself) = %g", got)
	}
}

func TestConfigString(t *testing.T) {
	cfg := experiment.Config{
		Setup:       experiment.SetupECNECE,
		Buffer:      cluster.Deep,
		TargetDelay: 500 * units.Microsecond,
	}
	if got := cfg.String(); got != "ecn-ece-bit/deep/d=500µs" {
		t.Errorf("String = %q", got)
	}
}

func TestSetupLabelsStable(t *testing.T) {
	// Figure rendering keys on these labels; lock them.
	want := map[string]experiment.QueueSetup{
		"droptail":         experiment.SetupDropTail,
		"ecn-default":      experiment.SetupECNDefault,
		"ecn-ece-bit":      experiment.SetupECNECE,
		"ecn-ack+syn":      experiment.SetupECNAckSyn,
		"dctcp-default":    experiment.SetupDCTCPDefault,
		"dctcp-ece-bit":    experiment.SetupDCTCPECE,
		"dctcp-ack+syn":    experiment.SetupDCTCPAckSyn,
		"ecn-simplemark":   experiment.SetupECNSimpleMark,
		"dctcp-simplemark": experiment.SetupDCTCPSimpleMark,
	}
	for label, setup := range want {
		if setup.Label != label {
			t.Errorf("setup label %q != %q", setup.Label, label)
		}
	}
}

func TestMinRTOOverride(t *testing.T) {
	// Datacenter-tuned 10ms min RTO must change outcomes under loss
	// (ablation 4 in DESIGN.md).
	base := experiment.Config{
		Setup:       experiment.SetupDropTail,
		Buffer:      cluster.Shallow,
		TargetDelay: 500 * units.Microsecond,
		Scale:       tinyScale(),
		Seed:        1,
	}
	slow := experiment.Run(base)
	base.MinRTO = 10 * units.Millisecond
	fast := experiment.Run(base)
	if slow.RTOEvents > 0 && fast.Runtime >= slow.Runtime {
		t.Errorf("10ms minRTO (%v) not faster than 200ms (%v) despite %d RTOs",
			fast.Runtime, slow.Runtime, slow.RTOEvents)
	}
}

func TestParallelSweepMatchesSerial(t *testing.T) {
	mk := func(workers int) *experiment.Sweep {
		s := experiment.NewSweep(tinyScale(), 1)
		s.TargetDelays = []units.Duration{100 * units.Microsecond}
		s.Workers = workers
		s.Execute()
		return s
	}
	serial := mk(1)
	parallel := mk(8)
	for _, buf := range []cluster.BufferDepth{cluster.Shallow, cluster.Deep} {
		if serial.DropTail[buf].Runtime != parallel.DropTail[buf].Runtime {
			t.Errorf("droptail/%v differs across worker counts", buf)
		}
		for label, ss := range serial.Series[buf] {
			ps := parallel.Series[buf][label]
			for i := range ss {
				if ss[i].Runtime != ps[i].Runtime || ss[i].Marks != ps[i].Marks {
					t.Errorf("%s/%v[%d] differs across worker counts", label, buf, i)
				}
			}
		}
	}
}

// TestTwoTierFabricPreservesOrdering checks the paper's generalization: the
// protection-mode benefit is not an artifact of the single-switch star. On
// an oversubscribed two-tier fabric the ACK+SYN mode must still beat the
// default mode at an aggressive threshold.
func TestTwoTierFabricPreservesOrdering(t *testing.T) {
	scale := pressureScale()
	scale.Racks = 2
	run := func(setup experiment.QueueSetup) experiment.Result {
		return experiment.Run(experiment.Config{
			Setup:       setup,
			Buffer:      cluster.Shallow,
			TargetDelay: 100 * units.Microsecond,
			Scale:       scale,
			Seed:        1,
		})
	}
	def := run(experiment.SetupECNDefault)
	prot := run(experiment.SetupECNAckSyn)
	if def.EarlyDrops == 0 {
		t.Skip("no early drops on two-tier at this scale")
	}
	if prot.Runtime >= def.Runtime {
		t.Errorf("two-tier: ack+syn runtime %v not better than default %v", prot.Runtime, def.Runtime)
	}
	if def.AckDropShare < 0.9 {
		t.Errorf("two-tier default-mode ACK drop share %.2f, want >= 0.9", def.AckDropShare)
	}
}
