package experiment

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/mapred"
	"repro/internal/units"
)

// tenantTestConfig is a CI-sized multi-tenant run: 4 nodes, a 32 MiB base
// mix, one second of measurement in 250 ms windows.
func tenantTestConfig() (Config, WorkloadConfig) {
	cfg := Config{
		Setup:       SetupECNAckSyn,
		TargetDelay: 500 * units.Microsecond,
		Scale:       Scale{Nodes: 4, InputSize: 32 * units.MiB, BlockSize: 8 * units.MiB, Reducers: 4},
		Seed:        1,
	}
	w := DefaultWorkload()
	w.Warmup = 100 * units.Millisecond
	w.Measure = 1 * units.Second
	w.Window = 250 * units.Millisecond
	return cfg, w
}

func TestRunTenantsSmoke(t *testing.T) {
	cfg, w := tenantTestConfig()
	r := RunTenants(cfg, w)
	if r.JobsSubmitted == 0 {
		t.Fatal("no jobs submitted")
	}
	if !r.Drained || r.JobsCompleted != r.JobsSubmitted {
		t.Fatalf("drain incomplete: %d/%d jobs, drained=%v", r.JobsCompleted, r.JobsSubmitted, r.Drained)
	}
	if r.JobMean <= 0 || r.JobP99 < r.JobP50 {
		t.Errorf("job stats implausible: mean=%v p50=%v p99=%v", r.JobMean, r.JobP50, r.JobP99)
	}
	if r.RPCCount == 0 {
		t.Fatal("no RPC exchanges measured")
	}
	if want := w.Windows(); len(r.RPCWindows) != want || len(r.NetWindows) != want {
		t.Fatalf("window series lengths %d/%d, want %d", len(r.RPCWindows), len(r.NetWindows), want)
	}
	var rpcTotal uint64
	for i, win := range r.RPCWindows {
		rpcTotal += win.Count
		if wantStart := units.Duration(i) * w.Window; win.Start != wantStart {
			t.Errorf("window %d start = %v, want %v", i, win.Start, wantStart)
		}
	}
	if rpcTotal != r.RPCCount {
		t.Errorf("window counts sum to %d, aggregate is %d", rpcTotal, r.RPCCount)
	}
	if r.ThroughputPerNode <= 0 {
		t.Error("no steady-state throughput measured")
	}
	if r.Events == 0 || r.SimTime <= 0 {
		t.Error("substrate accounting missing")
	}
}

// TestRunTenantsDeterministic replays the identical configuration and
// expects a bit-identical result structure.
func TestRunTenantsDeterministic(t *testing.T) {
	cfg, w := tenantTestConfig()
	a, b := RunTenants(cfg, w), RunTenants(cfg, w)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replayed tenant run diverged:\n%+v\n%+v", a, b)
	}
}

// TestRunRoutesWorkload pins the Config.Workload routing: Run() with a
// workload equals RunTenants' embedded figure result.
func TestRunRoutesWorkload(t *testing.T) {
	cfg, w := tenantTestConfig()
	cfg.Workload = &w
	got := Run(cfg)
	want := RunTenants(cfg, w).Result
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Run(workload) != RunTenants().Result:\n%+v\n%+v", got, want)
	}
}

// TestTenantPoliciesDiffer exercises the policy knob end to end: under
// sustained overlap, fair-share changes the job-latency distribution
// relative to FIFO (the scheduler genuinely arbitrates).
func TestTenantPoliciesDiffer(t *testing.T) {
	cfg, w := tenantTestConfig()
	w.RPCClients = 0 // batch only: isolate the scheduler
	// Dense fixed arrivals over a contention-heavy mix: the large job's 16
	// reducers need two full waves of the 4-node cluster's 8 reduce slots,
	// so overlapping small jobs only run early if the policy grants them
	// freed slots.
	w.Arrival = mapred.ArrivalFixed
	w.MeanInterarrival = 20 * units.Millisecond
	large := mapred.TerasortConfig(16*units.MiB, 16)
	large.BlockSize = 1 * units.MiB
	large.Name = "large"
	small := mapred.TerasortConfig(4*units.MiB, 2)
	small.BlockSize = 1 * units.MiB
	small.Name = "small"
	w.Mix = []mapred.MixEntry{{Weight: 1, Cfg: large}, {Weight: 2, Cfg: small}}
	w.Policy = mapred.SchedFIFO
	fifo := RunTenants(cfg, w)
	w.Policy = mapred.SchedFair
	fair := RunTenants(cfg, w)
	if fifo.JobsSubmitted != fair.JobsSubmitted {
		t.Fatalf("policies saw different arrival streams: %d vs %d jobs",
			fifo.JobsSubmitted, fair.JobsSubmitted)
	}
	if fifo.JobMean == fair.JobMean && fifo.JobP50 == fair.JobP50 && fifo.Makespan == fair.Makespan {
		t.Error("FIFO and fair-share produced identical job statistics — the policy is not arbitrating")
	}
}

func TestWorkloadValidate(t *testing.T) {
	mutations := map[string]func(*WorkloadConfig){
		"zero mean":       func(w *WorkloadConfig) { w.MeanInterarrival = 0 },
		"bad arrival":     func(w *WorkloadConfig) { w.Arrival = 9 },
		"bad policy":      func(w *WorkloadConfig) { w.Policy = 9 },
		"negative jobs":   func(w *WorkloadConfig) { w.MaxJobs = -1 },
		"negative fleet":  func(w *WorkloadConfig) { w.RPCClients = -1 },
		"zero measure":    func(w *WorkloadConfig) { w.Measure = 0 },
		"negative warmup": func(w *WorkloadConfig) { w.Warmup = -1 },
		"window>measure":  func(w *WorkloadConfig) { w.Window = w.Measure + 1 },
		"zero req size":   func(w *WorkloadConfig) { w.RPCReqSize = 0 },
		"bad mix":         func(w *WorkloadConfig) { w.Mix = []mapred.MixEntry{{Weight: 1}} },
		"zero-weight mix": func(w *WorkloadConfig) {
			w.Mix = []mapred.MixEntry{{Weight: 0, Cfg: mapred.TerasortConfig(16*units.MiB, 2)}}
		},
		"replicated mix": func(w *WorkloadConfig) {
			cfg := mapred.TerasortConfig(16*units.MiB, 2)
			cfg.ReplicationFactor = 3
			w.Mix = []mapred.MixEntry{{Weight: 1, Cfg: cfg}}
		},
	}
	for name, mutate := range mutations {
		w := DefaultWorkload()
		mutate(&w)
		if err := w.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
	w := DefaultWorkload()
	if err := w.Validate(); err != nil {
		t.Errorf("default workload rejected: %v", err)
	}
	if got := w.Windows(); got != 4 {
		t.Errorf("default Windows = %d, want 4 (2s / 500ms)", got)
	}
}

// TestSweepArchivesWorkload pins the archive round trip: a sweep's workload
// knobs survive WriteJSON/ReadJSON, so an archived multi-tenant grid can be
// re-rendered (and its companion runs re-matched) exactly.
func TestSweepArchivesWorkload(t *testing.T) {
	_, w := tenantTestConfig()
	s := NewSweep(TestScale(), 7)
	s.Workload = &w

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Workload == nil {
		t.Fatal("workload lost in the archive round trip")
	}
	if !reflect.DeepEqual(*back.Workload, w) {
		t.Fatalf("workload round trip diverged:\n%+v\n%+v", *back.Workload, w)
	}

	// Without a workload the field stays absent.
	s2 := NewSweep(TestScale(), 7)
	buf.Reset()
	if err := s2.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("workload")) {
		t.Error("empty workload serialized into the archive")
	}
}
