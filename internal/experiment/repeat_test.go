package experiment_test

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/units"
)

// TestRepeatAveragesEveryField is the audit regression for Repeat: two runs
// with known seeds, and every accumulated field — including the ratio
// AckDropShare and the percentile P99Latency — must equal the field-wise
// mean of the individual runs (integer fields rounding down, as documented).
func TestRepeatAveragesEveryField(t *testing.T) {
	cfg := experiment.Config{
		// An early-dropping setup so ratio fields (AckDropShare) and drop
		// counters are non-zero and an averaging bug cannot hide behind 0.
		Setup:       experiment.SetupECNDefault,
		Buffer:      cluster.Shallow,
		TargetDelay: 100 * units.Microsecond,
		Scale: experiment.Scale{
			Nodes: 4, InputSize: 64 * units.MiB, BlockSize: 16 * units.MiB, Reducers: 8,
		},
	}
	seeds := []uint64{3, 4}
	avg := experiment.Repeat(cfg, seeds)

	cfg.Seed = seeds[0]
	r1 := experiment.Run(cfg)
	cfg.Seed = seeds[1]
	r2 := experiment.Run(cfg)

	if r1.EarlyDrops == 0 || r2.EarlyDrops == 0 {
		t.Fatal("runs produced no early drops; pick a tighter target delay")
	}
	if r1.Runtime == r2.Runtime {
		t.Log("warning: both seeds produced identical runtimes; averaging check is weak")
	}

	if want := (r1.Runtime + r2.Runtime) / 2; avg.Runtime != want {
		t.Errorf("Runtime = %v, want %v", avg.Runtime, want)
	}
	if want := (r1.ThroughputPerNode + r2.ThroughputPerNode) / 2; avg.ThroughputPerNode != want {
		t.Errorf("ThroughputPerNode = %v, want %v", avg.ThroughputPerNode, want)
	}
	if want := (r1.MeanLatency + r2.MeanLatency) / 2; avg.MeanLatency != want {
		t.Errorf("MeanLatency = %v, want %v", avg.MeanLatency, want)
	}
	if want := (r1.P99Latency + r2.P99Latency) / 2; avg.P99Latency != want {
		t.Errorf("P99Latency = %v, want %v", avg.P99Latency, want)
	}
	if want := (r1.ShuffledBytes + r2.ShuffledBytes) / 2; avg.ShuffledBytes != want {
		t.Errorf("ShuffledBytes = %v, want %v", avg.ShuffledBytes, want)
	}
	if want := (r1.EarlyDrops + r2.EarlyDrops) / 2; avg.EarlyDrops != want {
		t.Errorf("EarlyDrops = %d, want %d", avg.EarlyDrops, want)
	}
	if want := (r1.OverflowDrops + r2.OverflowDrops) / 2; avg.OverflowDrops != want {
		t.Errorf("OverflowDrops = %d, want %d", avg.OverflowDrops, want)
	}
	if want := (r1.AckDropShare + r2.AckDropShare) / 2; avg.AckDropShare != want {
		t.Errorf("AckDropShare = %g, want %g", avg.AckDropShare, want)
	}
	if want := (r1.Marks + r2.Marks) / 2; avg.Marks != want {
		t.Errorf("Marks = %d, want %d", avg.Marks, want)
	}
	if want := (r1.Retransmits + r2.Retransmits) / 2; avg.Retransmits != want {
		t.Errorf("Retransmits = %d, want %d", avg.Retransmits, want)
	}
	if want := (r1.RTOEvents + r2.RTOEvents) / 2; avg.RTOEvents != want {
		t.Errorf("RTOEvents = %d, want %d", avg.RTOEvents, want)
	}
	if want := (r1.SynRetries + r2.SynRetries) / 2; avg.SynRetries != want {
		t.Errorf("SynRetries = %d, want %d", avg.SynRetries, want)
	}
	if want := (r1.FetchRetries + r2.FetchRetries) / 2; avg.FetchRetries != want {
		t.Errorf("FetchRetries = %d, want %d", avg.FetchRetries, want)
	}
	if want := (r1.Events + r2.Events) / 2; avg.Events != want {
		t.Errorf("Events = %d, want %d", avg.Events, want)
	}
	if want := (r1.SimTime + r2.SimTime) / 2; avg.SimTime != want {
		t.Errorf("SimTime = %v, want %v", avg.SimTime, want)
	}
	if avg.Config.Seed != seeds[0] {
		t.Errorf("averaged result keeps seed %d, want base seed %d", avg.Config.Seed, seeds[0])
	}
}

// TestRepeatSingleSeedIsRun pins the degenerate cases: an empty seed list
// falls back to the config's own seed, and one seed means no averaging.
func TestRepeatSingleSeedIsRun(t *testing.T) {
	cfg := experiment.Config{
		Setup:       experiment.SetupDropTail,
		Buffer:      cluster.Shallow,
		TargetDelay: 500 * units.Microsecond,
		Scale: experiment.Scale{
			Nodes: 4, InputSize: 32 * units.MiB, BlockSize: 8 * units.MiB, Reducers: 4,
		},
		Seed: 9,
	}
	direct := experiment.Run(cfg)
	if got := experiment.Repeat(cfg, nil); !reflect.DeepEqual(got, direct) {
		t.Error("Repeat(cfg, nil) differs from Run(cfg)")
	}
	if got := experiment.Repeat(cfg, []uint64{9}); !reflect.DeepEqual(got, direct) {
		t.Error("Repeat(cfg, [9]) differs from Run(cfg)")
	}
}
