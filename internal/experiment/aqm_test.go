package experiment_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/units"
)

func TestAQMSetupsLabels(t *testing.T) {
	labels := map[string]bool{}
	for _, s := range experiment.AQMSetups() {
		if labels[s.Label] {
			t.Errorf("duplicate label %q", s.Label)
		}
		labels[s.Label] = true
	}
	for _, want := range []string{
		"ecn-default", "ecn-ack+syn",
		"codel-default", "codel-ack+syn",
		"pie-default", "pie-ack+syn",
		"ecn-simplemark",
	} {
		if !labels[want] {
			t.Errorf("missing AQM setup %q", want)
		}
	}
}

func TestCompareAQMsStructure(t *testing.T) {
	cmp := experiment.CompareAQMs(tinyScale(), 100*units.Microsecond, 1)
	if cmp.Baseline.Runtime <= 0 {
		t.Fatal("baseline missing")
	}
	if len(cmp.Rows) != len(experiment.AQMSetups()) {
		t.Fatalf("rows = %d, want %d", len(cmp.Rows), len(experiment.AQMSetups()))
	}
	for _, r := range cmp.Rows {
		if r.Runtime <= 0 {
			t.Errorf("row %s has no runtime", r.Config.Setup.Label)
		}
	}
}

// TestProtectionGeneralizesToCoDel pins the extension result: CoDel in
// default mode inherits RED's non-ECT bias on the shuffle, and ACK+SYN
// protection repairs it.
func TestProtectionGeneralizesToCoDel(t *testing.T) {
	def := experiment.Run(experiment.Config{
		Setup:       experiment.SetupCoDelDefault,
		Buffer:      cluster.Shallow,
		TargetDelay: 100 * units.Microsecond,
		Scale:       pressureScale(),
		Seed:        1,
	})
	prot := experiment.Run(experiment.Config{
		Setup:       experiment.SetupCoDelAckSyn,
		Buffer:      cluster.Shallow,
		TargetDelay: 100 * units.Microsecond,
		Scale:       pressureScale(),
		Seed:        1,
	})
	if def.EarlyDrops == 0 {
		t.Fatal("CoDel default mode never early-dropped; bias unobservable")
	}
	if prot.EarlyDrops != 0 {
		t.Errorf("CoDel ack+syn still early-dropped %d packets", prot.EarlyDrops)
	}
	if prot.Runtime >= def.Runtime {
		t.Errorf("protection did not speed up CoDel: %v vs %v", prot.Runtime, def.Runtime)
	}
}

// TestPIEControllerEngagesAtScale verifies PIE's scaled gains actually move
// the controller at datacenter targets (the RFC's reference gains are tuned
// for 15 ms internet targets and would never engage).
func TestPIEControllerEngagesAtScale(t *testing.T) {
	r := experiment.Run(experiment.Config{
		Setup:       experiment.SetupPIEDefault,
		Buffer:      cluster.Shallow,
		TargetDelay: 100 * units.Microsecond,
		Scale:       pressureScale(),
		Seed:        1,
	})
	if r.Marks == 0 {
		t.Error("PIE never marked: controller failed to engage")
	}
	if r.MeanLatency <= 0 {
		t.Error("no latency measured")
	}
}
