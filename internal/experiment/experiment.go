// Package experiment defines and executes the paper's experiments: a single
// Terasort run over a configured fabric/queue/transport combination,
// returning the three metrics every figure reports (runtime, mean throughput
// per node, mean per-packet latency), plus the sweep grids behind Figures
// 2-4 and the headline comparisons.
package experiment

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/tcp"
	"repro/internal/units"
)

// QueueSetup names one of the queue configurations under study.
type QueueSetup struct {
	// Label is the series name used in figures ("droptail", "ecn-default",
	// "dctcp-ack+syn", "ecn-simplemark", ...).
	Label string
	// Queue is the discipline kind.
	Queue cluster.QueueKind
	// Protect applies to RED.
	Protect qdisc.ProtectMode
	// Transport is the TCP variant all nodes run.
	Transport tcp.Variant
}

// Canonical queue setups.
var (
	SetupDropTail = QueueSetup{Label: "droptail", Queue: cluster.QueueDropTail, Transport: tcp.Reno}

	SetupECNDefault = QueueSetup{Label: "ecn-default", Queue: cluster.QueueRED, Protect: qdisc.ProtectNone, Transport: tcp.RenoECN}
	SetupECNECE     = QueueSetup{Label: "ecn-ece-bit", Queue: cluster.QueueRED, Protect: qdisc.ProtectECE, Transport: tcp.RenoECN}
	SetupECNAckSyn  = QueueSetup{Label: "ecn-ack+syn", Queue: cluster.QueueRED, Protect: qdisc.ProtectACKSYN, Transport: tcp.RenoECN}

	SetupDCTCPDefault = QueueSetup{Label: "dctcp-default", Queue: cluster.QueueRED, Protect: qdisc.ProtectNone, Transport: tcp.DCTCP}
	SetupDCTCPECE     = QueueSetup{Label: "dctcp-ece-bit", Queue: cluster.QueueRED, Protect: qdisc.ProtectECE, Transport: tcp.DCTCP}
	SetupDCTCPAckSyn  = QueueSetup{Label: "dctcp-ack+syn", Queue: cluster.QueueRED, Protect: qdisc.ProtectACKSYN, Transport: tcp.DCTCP}

	SetupECNSimpleMark   = QueueSetup{Label: "ecn-simplemark", Queue: cluster.QueueSimpleMark, Transport: tcp.RenoECN}
	SetupDCTCPSimpleMark = QueueSetup{Label: "dctcp-simplemark", Queue: cluster.QueueSimpleMark, Transport: tcp.DCTCP}
)

// REDSetups are the six series of the paper's Figures 2-4.
func REDSetups() []QueueSetup {
	return []QueueSetup{
		SetupECNDefault, SetupECNECE, SetupECNAckSyn,
		SetupDCTCPDefault, SetupDCTCPECE, SetupDCTCPAckSyn,
	}
}

// MarkingSetups are the true-simple-marking series (Section IV headline).
func MarkingSetups() []QueueSetup {
	return []QueueSetup{SetupECNSimpleMark, SetupDCTCPSimpleMark}
}

// Scale selects how much data the Terasort moves; the paper's shapes emerge
// at every scale, smaller scales just run faster.
type Scale struct {
	Nodes int
	// Racks > 1 arranges nodes under top-of-rack switches joined by a 2:1
	// oversubscribed aggregation switch (0/1 = single-switch star).
	Racks int
	// Spines > 0 (with Racks >= 2) upgrades the fabric to three-tier
	// leaf-spine: every leaf connects to every spine and cross-rack traffic
	// is ECMP-hashed across them.
	Spines int
	// Oversub is the rack oversubscription factor shaping the default core
	// rate on multi-rack fabrics (0 = the default of 2).
	Oversub   float64
	InputSize units.ByteSize
	BlockSize units.ByteSize
	Reducers  int
	// Shards partitions the event loop by fabric slice for intra-run
	// parallelism: 0/1 = serial, cluster.ShardAuto (-1) = GOMAXPROCS-aware
	// on leaf-spine fabrics, n > 1 = explicit. Results are bit-identical at
	// every shard count, so Shards changes wall time, never metrics.
	Shards int
}

// TestScale is small enough for unit tests (seconds of wall time per grid).
func TestScale() Scale {
	return Scale{Nodes: 8, InputSize: 128 * units.MiB, BlockSize: 16 * units.MiB, Reducers: 8}
}

// PaperScale approximates the paper's testbed pressure: 16 nodes, one map
// wave, 1 GiB through the shuffle.
func PaperScale() Scale {
	return Scale{Nodes: 16, InputSize: 1 * units.GiB, BlockSize: 64 * units.MiB, Reducers: 32}
}

// Config fully describes one run.
type Config struct {
	Setup       QueueSetup
	Buffer      cluster.BufferDepth
	TargetDelay units.Duration
	Scale       Scale
	Seed        uint64
	// AckWireSize overrides the pure-ACK wire size (0 = default 40 B).
	AckWireSize units.ByteSize
	// ByteMode switches the AQM to per-byte thresholds (ablation).
	ByteMode bool
	// Instantaneous switches RED to instantaneous queue length (ablation;
	// Wu et al. recommendation).
	Instantaneous bool
	// MinRTO overrides TCP's minimum RTO (0 = default 200 ms).
	MinRTO units.Duration
	// DisableSACK turns selective acknowledgements off (ablation).
	DisableSACK bool
	// DisableDelAck turns delayed ACKs off (ablation: doubles the ACK rate
	// and with it the exposure to per-packet AQM drops).
	DisableDelAck bool
	// Degrade lists inter-switch link degradations applied after the fabric
	// is built (fail or derate; see cluster.LinkDegrade).
	Degrade []cluster.LinkDegrade
	// WatchTiers enables per-tier queue-occupancy aggregation; the means
	// land in Result.TierOccupancy.
	WatchTiers bool
	// Workload, when non-nil, replaces the single run-to-completion
	// Terasort with the open-loop multi-tenant workload engine: a stream
	// of jobs through a shared-slot scheduler plus an optional RPC client
	// fleet, measured in steady state (see RunTenants). Run then reports
	// the figure metrics over the measurement window.
	Workload *WorkloadConfig `json:"workload,omitempty"`
	// Hybrid enables the fluid/packet hybrid engine: uncontended transfers
	// run as fluid rates, ports crossing FluidThreshold utilization or
	// seeing AQM activity promote their flows to packet level. Off is
	// literally the pure packet engine.
	Hybrid bool `json:"hybrid,omitempty"`
	// FluidThreshold is the hybrid utilization threshold u in [0, 1]; 0
	// with Hybrid set keeps every transfer at packet level (exactness mode).
	FluidThreshold float64 `json:"fluid_threshold,omitempty"`
	// PromoteHysteresis is the quiet window before a promoted port demotes
	// back to fluid (0 = the cluster default of 1ms).
	PromoteHysteresis units.Duration `json:"promote_hysteresis_ns,omitempty"`
	// Macro, when non-nil, replaces the drive workload with the
	// macro-scale open-loop transfer mix (see RunMacro) — the 10k-node
	// regime the hybrid engine exists for.
	Macro *MacroWorkload `json:"macro,omitempty"`
	// Notify enables switch-originated congestion notifications: ports
	// crossing NotifyThreshold occupancy emit a wire-delayed notification
	// that reroutes flows off the hot path and/or throttles the offending
	// sources. Off is literally the pre-notification engine.
	Notify bool `json:"notify,omitempty"`
	// NotifyThreshold is the occupancy, in packets, that triggers a
	// notification (0 with Notify set = the cluster default of 64).
	NotifyThreshold int `json:"notify_threshold,omitempty"`
	// NotifyReroute / NotifyThrottle select the notification mechanisms;
	// with Notify set and neither selected, both engage.
	NotifyReroute  bool `json:"notify_reroute,omitempty"`
	NotifyThrottle bool `json:"notify_throttle,omitempty"`
	// Facade enables the drop-in net façade: the cluster carries a
	// simnet.Net so unmodified net/http tenants run over the simulated
	// fabric. Off is literally the pre-façade engine.
	Facade bool `json:"facade,omitempty"`
}

// String identifies the run compactly.
func (c *Config) String() string {
	return fmt.Sprintf("%s/%s/d=%v", c.Setup.Label, c.Buffer, c.TargetDelay)
}

// Result carries everything the figures consume from one run.
type Result struct {
	Config Config

	Runtime           units.Duration
	ThroughputPerNode units.Bandwidth
	MeanLatency       units.Duration
	P99Latency        units.Duration

	ShuffledBytes units.ByteSize
	EarlyDrops    uint64
	OverflowDrops uint64
	AckDropShare  float64 // fraction of drops that hit pure ACKs
	Marks         uint64
	Retransmits   uint64
	RTOEvents     uint64
	SynRetries    uint64
	FetchRetries  int

	// Substrate accounting: how many discrete events the engine executed and
	// how far the simulated clock ran. The benchmark harness divides wall
	// time by these to report events/sec and ns per simulated second.
	Events  uint64
	SimTime units.Duration

	// TierOccupancy is the time-weighted queued packets per fabric tier
	// (the sum of the tier's per-port mean queue lengths), indexed by
	// metrics.Tier. Populated only when Config.WatchTiers is set.
	TierOccupancy [metrics.TierCount]float64

	// Congestion-notification lifecycle counters (zero unless Config.Notify).
	Notifications      uint64
	HotEpisodes        uint64
	Rerouted           uint64
	Throttles          uint64
	ThrottleRecoveries uint64
}

// notifyStats copies the cluster's congestion-notification counters into the
// result when the notifier ran.
func notifyStats(c *cluster.Cluster, res *Result) {
	if c.Notify == nil {
		return
	}
	s := c.Notify.Stats()
	res.Notifications = s.Notifications
	res.HotEpisodes = s.HotEpisodes
	res.Rerouted = s.Rerouted
	res.Throttles = s.Throttles
	res.ThrottleRecoveries = s.Recoveries
}

// Run executes one Terasort under the configuration and returns its result.
// When cfg.Workload is set, the multi-tenant engine runs instead and the
// figure metrics are reported over its measurement window. Runs are
// deterministic in (Config, Seed).
func Run(cfg Config) Result {
	if cfg.Workload != nil {
		return RunTenants(cfg, *cfg.Workload).Result
	}
	r, _ := RunJob(cfg)
	return r
}

// clusterSpec lowers cfg onto the cluster spec (fabric, queues, transport,
// ablation overrides) — the one lowering shared by the single-job harness
// and the multi-tenant harness, so a new Config knob cannot silently apply
// to one but not the other.
func clusterSpec(cfg Config) cluster.Spec {
	spec := cluster.DefaultSpec()
	spec.Nodes = cfg.Scale.Nodes
	spec.Racks = cfg.Scale.Racks
	spec.Spines = cfg.Scale.Spines
	spec.Oversub = cfg.Scale.Oversub
	spec.Degrade = cfg.Degrade
	spec.Queue = cfg.Setup.Queue
	spec.Buffer = cfg.Buffer
	spec.TargetDelay = cfg.TargetDelay
	spec.Protect = cfg.Setup.Protect
	spec.Transport = cfg.Setup.Transport
	spec.Seed = cfg.Seed
	spec.ByteMode = cfg.ByteMode
	spec.Instantaneous = cfg.Instantaneous
	spec.Shards = cfg.Scale.Shards
	spec.Hybrid = cfg.Hybrid
	spec.FluidThreshold = cfg.FluidThreshold
	spec.PromoteHysteresis = cfg.PromoteHysteresis
	spec.Notify = cfg.Notify
	spec.NotifyThreshold = cfg.NotifyThreshold
	spec.NotifyReroute = cfg.NotifyReroute
	spec.NotifyThrottle = cfg.NotifyThrottle
	spec.Facade = cfg.Facade

	spec.TCPOverride = tcpOverride(cfg, spec.Transport)
	return spec
}

// tcpOverride resolves the transport config with cfg's TCP-level overrides
// applied. Every harness that builds a cluster by hand (incast, mixed) must
// install it, not just clusterSpec — a knob like MinRTO that rides in the
// canonical configuration but never reaches the wire poisons every cached
// result keyed on it.
func tcpOverride(cfg Config, transport tcp.Variant) *tcp.Config {
	tcpCfg := tcp.DefaultConfig(transport)
	if cfg.AckWireSize > 0 {
		tcpCfg.AckWireSize = cfg.AckWireSize
	}
	if cfg.MinRTO > 0 {
		tcpCfg.MinRTO = cfg.MinRTO
	}
	if cfg.DisableSACK {
		tcpCfg.SACK = false
	}
	if cfg.DisableDelAck {
		tcpCfg.DelayedAck = false
	}
	return &tcpCfg
}

// RunJob is Run exposing the finished MapReduce job as well, for callers
// that report per-phase breakdowns (map waves, shuffle windows) beyond the
// figure metrics.
func RunJob(cfg Config) (Result, *mapred.Job) {
	spec := clusterSpec(cfg)
	c := cluster.New(spec)
	if cfg.WatchTiers {
		c.WatchTierOccupancy()
	}
	jobCfg := mapred.TerasortConfig(cfg.Scale.InputSize, cfg.Scale.Reducers)
	jobCfg.BlockSize = cfg.Scale.BlockSize
	job := c.RunJob(jobCfg)

	lo, hi := job.ShuffleWindow()
	res := Result{
		Config:            cfg,
		Runtime:           job.Runtime(),
		ThroughputPerNode: c.Metrics.MeanThroughputPerNode(spec.Nodes, lo, hi),
		MeanLatency:       c.Metrics.MeanLatency(),
		P99Latency:        c.Metrics.P99Latency(),
		ShuffledBytes:     job.ShuffledBytes(),
		AckDropShare:      c.Metrics.AckDropShare(),
		Marks:             c.Metrics.Marked.Total(),
		Retransmits:       c.TCP.Retransmits(),
		RTOEvents:         c.TCP.RTOEvents,
		SynRetries:        c.TCP.SynRetries,
		FetchRetries:      job.FetchRetries,
		Events:            c.Events(),
		SimTime:           units.Duration(c.Now()),
	}
	res.EarlyDrops, res.OverflowDrops = c.Metrics.Drops()
	notifyStats(c, &res)
	if cfg.WatchTiers {
		at := c.Now().Seconds()
		for t := metrics.Tier(0); t < metrics.TierCount; t++ {
			res.TierOccupancy[t] = c.Metrics.TierOccupancyAt(t, at)
		}
	}
	_ = packet.HeaderSize
	return res, job
}
