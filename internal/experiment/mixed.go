package experiment

import (
	"repro/internal/cluster"
	"repro/internal/flow"
	"repro/internal/mapred"
	"repro/internal/packet"
	"repro/internal/stats"
	"repro/internal/units"
)

// MixedResult reports the paper's motivating scenario quantitatively: a
// latency-sensitive RPC service sharing the fabric with a Hadoop job. The
// paper's introduction cites IoT/SQL-on-Hadoop services with millisecond
// requirements; MixedResult says what they would actually observe.
type MixedResult struct {
	Config Config

	JobRuntime units.Duration

	// RPC latency distribution over the job's lifetime.
	RPCCount  uint64
	RPCMean   units.Duration
	RPCP50    units.Duration
	RPCP99    units.Duration
	RPCMax    units.Duration
	RPCFailed int

	// Substrate accounting (see Result.Events / Result.SimTime).
	Events  uint64
	SimTime units.Duration
}

// RunMixed executes a Terasort with an RPC probe (128 B request / 4 KiB
// response every 2 ms) between the first two nodes, returning both the job
// and service views.
func RunMixed(cfg Config) MixedResult {
	return RunMixedInterval(cfg, 2*units.Millisecond)
}

// RunMixedInterval is RunMixed with a configurable probe period.
func RunMixedInterval(cfg Config, interval units.Duration) MixedResult {
	spec := cluster.DefaultSpec()
	spec.Nodes = cfg.Scale.Nodes
	spec.Racks = cfg.Scale.Racks
	spec.Spines = cfg.Scale.Spines
	spec.Oversub = cfg.Scale.Oversub
	spec.Degrade = cfg.Degrade
	spec.Queue = cfg.Setup.Queue
	spec.Buffer = cfg.Buffer
	spec.TargetDelay = cfg.TargetDelay
	spec.Protect = cfg.Setup.Protect
	spec.Transport = cfg.Setup.Transport
	spec.Seed = cfg.Seed
	spec.TCPOverride = tcpOverride(cfg, spec.Transport)

	c := cluster.New(spec)
	flow.RegisterRPCServer(c.Stacks[1], 7000, 128, 4096)
	probe := flow.StartRPCClient(c.Stacks[0],
		packet.Addr{Node: c.Topo.Hosts[1].ID(), Port: 7000},
		flow.RPCConfig{ReqSize: 128, RespSize: 4096, Interval: interval})

	jobCfg := mapred.TerasortConfig(cfg.Scale.InputSize, cfg.Scale.Reducers)
	jobCfg.BlockSize = cfg.Scale.BlockSize
	job := c.RunJob(jobCfg)
	probe.Stop()

	sample := stats.NewSample()
	failed := 0
	for i := range probe.Results {
		if probe.Results[i].Failed {
			failed++
			continue
		}
		sample.Add(probe.Results[i].Latency().Seconds())
	}
	toDur := func(sec float64) units.Duration {
		return units.Duration(sec * float64(units.Second))
	}
	return MixedResult{
		Config:     cfg,
		JobRuntime: job.Runtime(),
		RPCCount:   sample.N(),
		RPCMean:    toDur(sample.Mean()),
		RPCP50:     toDur(sample.Quantile(0.5)),
		RPCP99:     toDur(sample.Quantile(0.99)),
		RPCMax:     toDur(sample.Max()),
		RPCFailed:  failed,
		Events:     c.Engine.Executed(),
		SimTime:    units.Duration(c.Engine.Now()),
	}
}
