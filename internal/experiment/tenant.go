package experiment

// The multi-tenant steady-state harness. The paper's motivating scenario is
// a *shared* Hadoop cluster — latency-sensitive services colocated with a
// continuous stream of batch jobs — and single-job lifetime statistics
// cannot express what such a service observes. RunTenants drives an
// open-loop job-arrival process through a shared-slot scheduler alongside
// an RPC client fleet, and measures in phases:
//
//   - warmup:  arrivals and clients run, nothing is recorded — the cluster
//     reaches its congested steady state first;
//   - measure: RPC latencies and per-packet latencies are windowed
//     (P50/P99 per window) and throughput is taken over the window's
//     delivered-byte delta;
//   - drain:   arrivals and clients stop, submitted jobs run out (bounded
//     by a generous deadline; an overloaded open-loop run may legitimately
//     keep a backlog, which is reported, not panicked over).
//
// Everything is deterministic in (Config, WorkloadConfig): arrivals, the
// job mix and the fleet all derive their streams from the run seed.

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/flow"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/units"
)

// FleetBasePort is the first port the tenant RPC fleet's servers listen on.
const FleetBasePort uint16 = 7000

// WorkloadConfig describes the sustained multi-tenant load: the batch-job
// arrival stream, the slot-scheduling policy, the RPC client fleet, and the
// warmup/measure phase layout.
type WorkloadConfig struct {
	// Arrival selects the inter-arrival distribution; MeanInterarrival its
	// mean. MaxJobs caps total submissions (0 = unlimited while the
	// submission phase is open, i.e. until the measurement phase ends).
	Arrival          mapred.ArrivalKind `json:"arrival"`
	MeanInterarrival units.Duration     `json:"mean_interarrival_ns"`
	MaxJobs          int                `json:"max_jobs"`
	// Policy selects how jobs share the workers' map/reduce slots.
	Policy mapred.SchedPolicy `json:"policy"`
	// Mix is the weighted job-shape table arrivals draw from (empty = the
	// default mix derived from the configured scale).
	Mix []mapred.MixEntry `json:"mix,omitempty"`

	// RPCClients sizes the open-loop service fleet (0 = batch only).
	RPCClients int `json:"rpc_clients"`
	// RPCReqSize / RPCRespSize are the exchange payloads in bytes;
	// RPCHeavyTail switches responses to a bounded Pareto with that mean.
	RPCReqSize   int  `json:"rpc_req_size"`
	RPCRespSize  int  `json:"rpc_resp_size"`
	RPCHeavyTail bool `json:"rpc_heavy_tail,omitempty"`
	// RPCInterval is each client's open-loop issue period.
	RPCInterval units.Duration `json:"rpc_interval_ns"`

	// Warmup precedes measurement; Measure is the measurement phase length,
	// split into Window-wide percentile windows.
	Warmup  units.Duration `json:"warmup_ns"`
	Measure units.Duration `json:"measure_ns"`
	Window  units.Duration `json:"window_ns"`
}

// DefaultWorkload returns a small sustained-load shape: open Poisson
// arrivals every 150 ms (no job cap — the stream runs until the
// measurement phase closes), FIFO slots, a 4-client fleet of 128 B / 4 KiB
// exchanges every 2 ms, 250 ms of warmup and a 2 s measurement phase in
// 500 ms windows.
func DefaultWorkload() WorkloadConfig {
	return WorkloadConfig{
		Arrival:          mapred.ArrivalPoisson,
		MeanInterarrival: 150 * units.Millisecond,
		Policy:           mapred.SchedFIFO,
		RPCClients:       4,
		RPCReqSize:       128,
		RPCRespSize:      4096,
		RPCInterval:      2 * units.Millisecond,
		Warmup:           250 * units.Millisecond,
		Measure:          2 * units.Second,
		Window:           500 * units.Millisecond,
	}
}

// Validate reports a workload error, or nil.
func (w *WorkloadConfig) Validate() error {
	switch {
	case w.MeanInterarrival <= 0:
		return fmt.Errorf("experiment: workload mean inter-arrival must be positive")
	case w.Arrival > mapred.ArrivalPoisson:
		return fmt.Errorf("experiment: unknown arrival kind %d", w.Arrival)
	case w.Policy > mapred.SchedFair:
		return fmt.Errorf("experiment: unknown scheduling policy %d", w.Policy)
	case w.MaxJobs < 0:
		return fmt.Errorf("experiment: workload max jobs must be non-negative")
	case w.RPCClients < 0:
		return fmt.Errorf("experiment: workload RPC clients must be non-negative")
	case w.Measure <= 0:
		return fmt.Errorf("experiment: workload measure phase must be positive")
	case w.Warmup < 0:
		return fmt.Errorf("experiment: workload warmup must be non-negative")
	case w.Window <= 0 || w.Window > w.Measure:
		return fmt.Errorf("experiment: workload window must be in (0, measure]")
	}
	if w.RPCClients > 0 {
		fc := w.fleetConfig(0)
		if err := fc.Validate(); err != nil {
			return err
		}
	}
	if len(w.Mix) > 0 {
		// NewJobMix is the authority on mix validity (weights, job configs,
		// the replicated-output ban); run it here so a bad mix surfaces at
		// validation time instead of panicking mid-run.
		if _, err := mapred.NewJobMix(w.Mix, 0); err != nil {
			return err
		}
	}
	return nil
}

// Windows returns the number of measurement windows the phase layout
// induces.
func (w *WorkloadConfig) Windows() int {
	return int(math.Ceil(float64(w.Measure) / float64(w.Window)))
}

func (w *WorkloadConfig) fleetConfig(seed uint64) flow.FleetConfig {
	return flow.FleetConfig{
		Clients:   w.RPCClients,
		ReqSize:   w.RPCReqSize,
		RespSize:  w.RPCRespSize,
		HeavyTail: w.RPCHeavyTail,
		Interval:  w.RPCInterval,
		BasePort:  FleetBasePort,
		Seed:      seed,
	}
}

// ServiceFleet is the service-tier seam: the RPC fleet a harness drives can
// be the packet-modeled flow fleet (RunTenants) or the façade's pool of real
// http.Clients (RunHTTPLoad). Stop and Outstanding feed the phase machinery;
// Exchanges feeds the shared SLO aggregation.
type ServiceFleet interface {
	// Stop closes the issue loop; exchanges already in flight still finish.
	Stop()
	// Outstanding returns the number of issued-but-unanswered exchanges —
	// the drain predicate polls it between engine steps.
	Outstanding() int
	// Exchanges returns every completed exchange plus the issue times of
	// exchanges still unanswered at drain cutoff, both in deterministic
	// (client, issue) order.
	Exchanges() ([]flow.RPCResult, []units.Time)
}

// modeledFleet adapts the packet-modeled open-loop fleet to the seam.
type modeledFleet struct{ f *flow.Fleet }

func (m modeledFleet) Stop()            { m.f.Stop() }
func (m modeledFleet) Outstanding() int { return m.f.Outstanding() }

func (m modeledFleet) Exchanges() ([]flow.RPCResult, []units.Time) {
	var results []flow.RPCResult
	var cut []units.Time
	for _, cl := range m.f.Clients {
		results = append(results, cl.Results...)
		cut = append(cut, cl.OutstandingIssued()...)
	}
	return results, cut
}

// aggregateRPC windows every exchange issued inside the measurement phase
// into the whole-run sample and the windowed series, and returns the failure
// count: exchanges that failed outright plus exchanges the drain deadline
// cut off — the slowest tail must not vanish from the SLO accounting.
func aggregateRPC(results []flow.RPCResult, cutOff []units.Time,
	measureStart, measureEnd units.Time, all *stats.Sample, win *stats.Windowed) int {
	failed := 0
	for i := range results {
		r := &results[i]
		if r.Issued < measureStart || r.Issued >= measureEnd {
			continue
		}
		if r.Failed {
			failed++
			continue
		}
		lat := r.Latency().Seconds()
		all.Add(lat)
		win.Add(r.Issued.Seconds(), lat)
	}
	for _, issued := range cutOff {
		if issued >= measureStart && issued < measureEnd {
			failed++
		}
	}
	return failed
}

// WindowStat is one measurement window's latency summary.
type WindowStat struct {
	// Start is the window's offset from the start of the measurement phase.
	Start units.Duration
	// Count is the number of samples the window holds.
	Count uint64
	// P50/P99 are the window's latency percentiles.
	P50, P99 units.Duration
}

// TenantResult reports one multi-tenant run: the standard figure metrics
// (throughput over the measurement window, whole-run latency/drop
// accounting) plus the tenant views — job completion statistics and the
// windowed RPC/network latency series.
type TenantResult struct {
	Result
	Workload WorkloadConfig

	// Batch tier.
	JobsSubmitted int
	JobsCompleted int
	// JobMean/P50/P99 summarize completed-job runtimes (submission to
	// completion, queueing included).
	JobMean, JobP50, JobP99 units.Duration
	// Makespan is first submission to last completion (or the drain cutoff
	// when the backlog outlived it).
	Makespan units.Duration
	// Drained reports whether every submitted job completed before the
	// drain deadline.
	Drained bool

	// Service tier (measurement phase only).
	RPCCount uint64
	// RPCFailed counts exchanges that failed outright plus exchanges still
	// unanswered when the drain deadline cut the run off — an SLO view
	// must not let the slowest tail vanish from the books.
	RPCFailed int
	RPCMean   units.Duration
	RPCP50    units.Duration
	RPCP99    units.Duration
	// RPCWindows is the per-window RPC latency series — the SLO view.
	RPCWindows []WindowStat
	// NetWindows is the per-window per-packet network latency series.
	NetWindows []WindowStat
}

// RunTenants executes the multi-tenant workload under the configuration.
// It panics on an invalid workload (the ecnsim layer validates at
// NewCluster time, like every other config error).
func RunTenants(cfg Config, w WorkloadConfig) TenantResult {
	if err := w.Validate(); err != nil {
		panic(err)
	}
	spec := clusterSpec(cfg)
	// The tenant harness drives the cluster through RunUntil/Drain and the
	// shared slot scheduler — the serial drive path — so the shard request is
	// overridden rather than panicking deep inside the run.
	spec.Shards = 1
	c := cluster.New(spec)
	if cfg.WatchTiers {
		c.WatchTierOccupancy()
	}

	// Phase layout. Like RunJob, everything starts slightly after t=0 so
	// TSVal==0 never collides with the "no timestamp" sentinel.
	start := units.Time(1 * units.Millisecond)
	measureStart := start.Add(w.Warmup)
	measureEnd := measureStart.Add(w.Measure)
	nw := w.Windows()

	c.Metrics.WatchLatencyWindows(measureStart.Seconds(), w.Window.Seconds(), nw,
		spec.LatencyReservoir, spec.Seed)
	// When Measure is not an exact multiple of Window the last window would
	// extend past the measurement phase and absorb drain-phase latencies;
	// cut it off at measureEnd so the steady-state series stays honest.
	c.Metrics.LatencyWindows().SetCutoff(measureEnd.Seconds())

	// Batch tier: seeded arrivals drawing from the job mix into the
	// shared-slot scheduler.
	sched := c.NewScheduler(w.Policy)
	entries := w.Mix
	if len(entries) == 0 {
		entries = mapred.DefaultMix(cfg.Scale.InputSize, cfg.Scale.Reducers)
	}
	mix, err := mapred.NewJobMix(entries, spec.Seed^0x6a09e667f3bcc908)
	if err != nil {
		panic(err)
	}
	arrivals := mapred.NewArrivalProcess(w.Arrival, w.MeanInterarrival, spec.Seed^0xbb67ae8584caa73b)
	submitted := 0
	var firstSubmit units.Time
	var submitNext func()
	submitNext = func() {
		if c.Engine.Now() >= measureEnd {
			return // the submission phase closes with the measurement phase
		}
		if w.MaxJobs > 0 && submitted >= w.MaxJobs {
			return
		}
		if submitted == 0 {
			firstSubmit = c.Engine.Now()
		}
		sched.Submit(mix.Pick())
		submitted++
		c.Engine.After(arrivals.Next(), submitNext)
	}
	c.Engine.Schedule(start, submitNext)

	// Service tier: the open-loop RPC fleet (the modeled side of the seam).
	var fleet ServiceFleet
	if w.RPCClients > 0 {
		fleet = modeledFleet{flow.StartFleet(c.Stacks, w.fleetConfig(spec.Seed^0x3c6ef372fe94f82b), start)}
	}

	// Steady-state throughput comes from the delivered-byte delta across
	// the measurement window, not whole-run totals.
	var payloadAtStart, payloadAtEnd units.ByteSize
	c.Engine.Schedule(measureStart, func() { payloadAtStart = c.Metrics.TotalDeliveredPayload() })
	c.Engine.Schedule(measureEnd, func() {
		payloadAtEnd = c.Metrics.TotalDeliveredPayload()
		if fleet != nil {
			fleet.Stop()
		}
	})

	c.RunUntil(measureEnd)
	drainEnd := measureEnd.Add(6 * units.Second * units.Duration(1+spec.Nodes))
	// Quiet means both tiers are done: the batch backlog has run out AND no
	// RPC exchange is still in flight — otherwise exactly the slowest tail
	// exchanges would be dropped from the windows they exist to expose.
	drained := c.Drain(drainEnd, func() bool {
		if sched.Active() > 0 {
			return false
		}
		return fleet == nil || fleet.Outstanding() == 0
	})

	// ------------------------------------------------------------------
	// Aggregate.
	res := TenantResult{Workload: w, Drained: drained, JobsSubmitted: submitted}
	res.Config = cfg

	// Batch tier.
	jobSample := stats.NewSample()
	var lastDone units.Time
	for _, j := range sched.Jobs() {
		if !j.Done() {
			continue
		}
		res.JobsCompleted++
		jobSample.Add(j.Runtime().Seconds())
		if j.Finished > lastDone {
			lastDone = j.Finished
		}
		res.FetchRetries += j.FetchRetries
	}
	toDur := func(sec float64) units.Duration {
		return units.Duration(sec * float64(units.Second))
	}
	res.JobMean = toDur(jobSample.Mean())
	res.JobP50 = toDur(jobSample.Quantile(0.5))
	res.JobP99 = toDur(jobSample.Quantile(0.99))
	if submitted > 0 {
		end := lastDone
		if !drained || end == 0 {
			end = c.Engine.Now()
		}
		res.Makespan = end.Sub(firstSubmit)
	}

	// Service tier: window every exchange issued inside the measurement
	// phase, clients in fleet order so the aggregation is deterministic.
	rpcAll := stats.NewSample()
	rpcWin := stats.NewWindowed(measureStart.Seconds(), w.Window.Seconds(), nw)
	if fleet != nil {
		results, cut := fleet.Exchanges()
		res.RPCFailed = aggregateRPC(results, cut, measureStart, measureEnd, rpcAll, rpcWin)
	}
	res.RPCCount = rpcAll.N()
	res.RPCMean = toDur(rpcAll.Mean())
	res.RPCP50 = toDur(rpcAll.Quantile(0.5))
	res.RPCP99 = toDur(rpcAll.Quantile(0.99))
	res.RPCWindows = windowStats(rpcWin, nw, w.Window)
	res.NetWindows = windowStats(c.Metrics.LatencyWindows(), nw, w.Window)

	// Figure metrics: throughput over the measurement window, latency and
	// drop accounting over the whole run (as every harness reports them).
	res.Runtime = c.Engine.Now().Sub(start)
	if sec := w.Measure.Seconds(); sec > 0 && spec.Nodes > 0 {
		res.ThroughputPerNode = units.Bandwidth(
			float64((payloadAtEnd-payloadAtStart)*8) / sec / float64(spec.Nodes))
	}
	res.MeanLatency = c.Metrics.MeanLatency()
	res.P99Latency = c.Metrics.P99Latency()
	res.ShuffledBytes = payloadAtEnd - payloadAtStart
	res.AckDropShare = c.Metrics.AckDropShare()
	res.Marks = c.Metrics.Marked.Total()
	res.Retransmits = c.TCP.Retransmits()
	res.RTOEvents = c.TCP.RTOEvents
	res.SynRetries = c.TCP.SynRetries
	res.EarlyDrops, res.OverflowDrops = c.Metrics.Drops()
	res.Events = c.Engine.Executed()
	res.SimTime = units.Duration(c.Engine.Now())
	notifyStats(c, &res.Result)
	if cfg.WatchTiers {
		at := c.Engine.Now().Seconds()
		for t := metrics.Tier(0); t < metrics.TierCount; t++ {
			res.TierOccupancy[t] = c.Metrics.TierOccupancyAt(t, at)
		}
	}
	return res
}

// windowStats flattens a windowed accumulator into exactly n WindowStats
// (quiet windows report zero counts). Offsets are exact multiples of the
// window width, not float reconstructions.
func windowStats(win *stats.Windowed, n int, width units.Duration) []WindowStat {
	out := make([]WindowStat, n)
	for i := 0; i < n; i++ {
		out[i] = WindowStat{
			Start: units.Duration(i) * width,
			Count: win.Count(i),
			P50:   units.Duration(win.Quantile(i, 0.5) * float64(units.Second)),
			P99:   units.Duration(win.Quantile(i, 0.99) * float64(units.Second)),
		}
	}
	return out
}
