// macro.go is the macro-scale open-loop harness: the 10k-node regime the
// hybrid fluid/packet engine exists for. It drives a tenantmix-style
// transfer workload — a stream of background fan-out jobs, periodic incast
// hot spots, and a latency-probing RPC fleet — directly over the fabric,
// without per-transfer MapReduce bookkeeping. Every arrival, placement and
// completion decision runs as a control-engine event, so results are
// bit-identical at any shard or worker count; only the congested minority of
// transfers ever touches the packet engine.
package experiment

import (
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/flow"
	"repro/internal/packet"
	"repro/internal/units"
)

// MacroPort is the well-known bulk sink port of the macro harness.
const MacroPort uint16 = 9100

// MacroWorkload shapes the macro-scale transfer mix. All fields are
// fingerprinted through Config.Macro, so every knob distinguishes cached
// results.
type MacroWorkload struct {
	// Warmup, Measure and Drain split the run: arrivals start at t=1ms,
	// jobs started inside the measurement window are scored, and the run
	// stops Drain after the window closes (an open-loop cutoff — transfers
	// still in flight are abandoned, as in any steady-state measurement).
	Warmup  units.Duration `json:"warmup_ns"`
	Measure units.Duration `json:"measure_ns"`
	Drain   units.Duration `json:"drain_ns"`

	// JobMeanArrival is the mean of the exponential job inter-arrival time.
	JobMeanArrival units.Duration `json:"job_mean_arrival_ns"`
	// JobFanout is the number of transfers a background job fans out to
	// distinct random destinations; JobBytes is the size of each transfer.
	JobFanout int            `json:"job_fanout"`
	JobBytes  units.ByteSize `json:"job_bytes"`

	// HotspotEvery makes every n-th job an incast hot spot instead:
	// HotspotFanIn senders converge full-rate on one victim host, forcing
	// real packet-level congestion (and AQM activity) at its edge port.
	// 0 disables hot spots.
	HotspotEvery int `json:"hotspot_every,omitempty"`
	HotspotFanIn int `json:"hotspot_fanin,omitempty"`

	// RPCClients latency probes each send RPCBytes to a random host every
	// RPCInterval; their FCTs are the workload's tail-latency figure.
	RPCClients  int            `json:"rpc_clients,omitempty"`
	RPCInterval units.Duration `json:"rpc_interval_ns,omitempty"`
	RPCBytes    units.ByteSize `json:"rpc_bytes,omitempty"`
}

// DefaultMacroWorkload returns the macroscale scenario's mix: light fan-out
// background load with periodic incast hot spots and an RPC probe fleet.
func DefaultMacroWorkload() MacroWorkload {
	return MacroWorkload{
		Warmup:         50 * units.Millisecond,
		Measure:        300 * units.Millisecond,
		Drain:          100 * units.Millisecond,
		JobMeanArrival: 200 * units.Microsecond,
		JobFanout:      8,
		JobBytes:       4 * units.MiB,
		HotspotEvery:   40,
		HotspotFanIn:   16,
		RPCClients:     64,
		RPCInterval:    2 * units.Millisecond,
		RPCBytes:       4 * units.KiB,
	}
}

// MacroResult carries the macro harness's figures.
type MacroResult struct {
	Config Config

	// JobsStarted/JobsCompleted count jobs whose arrival fell inside the
	// measurement window; completion percentiles are over those jobs' FCTs
	// in seconds.
	JobsStarted   int
	JobsCompleted int
	JobP50        float64
	JobP99        float64

	// RPC probe FCT percentiles in seconds, over measurement-window probes.
	RPCCount int
	RPCP50   float64
	RPCP99   float64

	// Fluid is the hybrid controller's lifecycle counters (zero when the
	// run is pure packet).
	Fluid flow.FluidStats
	// PacketPayload is the payload carried by real packets (wire view).
	PacketPayload units.ByteSize

	Events  uint64
	SimTime units.Duration
}

// macroRNG is a splitmix64 stream; all randomness the macro harness consumes
// is drawn here, inside control events, so the workload trace is a pure
// function of the seed.
type macroRNG struct{ s uint64 }

func (r *macroRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *macroRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// expDur draws an exponential duration with the given mean.
func (r *macroRNG) expDur(mean units.Duration) units.Duration {
	u := (float64(r.next()>>11) + 1) / float64(1<<53) // (0, 1]
	d := units.Duration(-math.Log(u) * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}

// macroRun is the per-run driver state, mutated only in control context.
type macroRun struct {
	c      *cluster.Cluster
	w      MacroWorkload
	rng    macroRNG
	seq    uint32 // ephemeral-port counter for fluid ECMP diversity
	jobNum int

	measureFrom units.Time
	measureTo   units.Time
	stopped     bool

	jobsStarted int
	jobFCTs     []float64
	rpcFCTs     []float64
}

// RunMacro executes the macro-scale workload under the configuration and
// returns its result. Requires a leaf-spine Scale; runs on the hybrid or the
// pure packet engine according to cfg.Hybrid (the latter only at scales the
// packet engine can hold).
func RunMacro(cfg Config, w MacroWorkload) MacroResult {
	return runMacro(cfg, w, nil)
}

// runMacro is RunMacro with a pre-run observation seam: observe (if non-nil)
// sees the built cluster before the first event, which is how the
// promotion/demotion property test installs its fluid trace.
func runMacro(cfg Config, w MacroWorkload, observe func(*cluster.Cluster)) MacroResult {
	spec := clusterSpec(cfg)
	c := cluster.New(spec)
	for _, st := range c.Stacks {
		flow.RegisterBulkSink(st, MacroPort, nil)
	}
	if observe != nil {
		observe(c)
	}

	start := units.Time(1 * units.Millisecond)
	m := &macroRun{
		c:           c,
		w:           w,
		rng:         macroRNG{s: cfg.Seed ^ 0xa076_1d64_78bd_642f},
		measureFrom: start.Add(w.Warmup),
		measureTo:   start.Add(w.Warmup + w.Measure),
	}
	eng := c.Engine
	eng.Schedule(start, m.nextJob)
	for i := 0; i < w.RPCClients; i++ {
		client := i
		eng.Schedule(start.Add(units.Duration(i+1)*w.RPCInterval/units.Duration(w.RPCClients+1)),
			func() { m.nextRPC(client) })
	}
	stopAt := m.measureTo.Add(w.Drain)
	eng.Schedule(stopAt, func() { m.stopped = true })

	c.Group.RunLoop(func() bool { return m.stopped }, 0)

	res := MacroResult{
		Config:        cfg,
		JobsStarted:   m.jobsStarted,
		JobsCompleted: len(m.jobFCTs),
		RPCCount:      len(m.rpcFCTs),
		PacketPayload: c.Metrics.TotalDeliveredPayload(),
		Events:        c.Events(),
		SimTime:       units.Duration(c.Now()),
	}
	res.JobP50, res.JobP99 = pct(m.jobFCTs)
	res.RPCP50, res.RPCP99 = pct(m.rpcFCTs)
	if c.Fluid != nil {
		res.Fluid = c.Fluid.Stats()
	}
	return res
}

// pct returns the (p50, p99) of the samples.
func pct(xs []float64) (p50, p99 float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := func(p float64) float64 { return s[int(p*float64(len(s)-1)+0.5)] }
	return idx(0.50), idx(0.99)
}

// nextJob launches one job and schedules the next arrival (control context).
func (m *macroRun) nextJob() {
	now := m.c.Engine.Now()
	if now >= m.measureTo {
		return // arrivals stop when the measurement window closes
	}
	m.jobNum++
	scored := now >= m.measureFrom
	if scored {
		m.jobsStarted++
	}
	if m.w.HotspotEvery > 0 && m.jobNum%m.w.HotspotEvery == 0 {
		m.startHotspot(now, scored)
	} else {
		m.startFanout(now, scored)
	}
	m.c.Engine.Schedule(now.Add(m.rng.expDur(m.w.JobMeanArrival)), m.nextJob)
}

// startFanout launches one background job: JobFanout transfers from one
// source to distinct random destinations, each app-limited to a slice of the
// link rate so uncontended paths stay fluid.
func (m *macroRun) startFanout(now units.Time, scored bool) {
	n := len(m.c.Stacks)
	src := m.rng.intn(n)
	outstanding := m.w.JobFanout
	onJobDone := func(at units.Time) {
		outstanding--
		if outstanding == 0 && scored {
			m.jobFCTs = append(m.jobFCTs, at.Sub(now).Seconds())
		}
	}
	demand := m.c.Spec.LinkRate / 16
	for i := 0; i < m.w.JobFanout; i++ {
		dst := m.rng.intn(n)
		for dst == src {
			dst = m.rng.intn(n)
		}
		m.transfer(src, dst, m.w.JobBytes, demand, onJobDone)
	}
}

// startHotspot launches one incast hot spot: HotspotFanIn full-rate senders
// converge on a single victim, deliberately exceeding the fluid threshold so
// the transfers run as real TCP into the victim's edge queue.
func (m *macroRun) startHotspot(now units.Time, scored bool) {
	n := len(m.c.Stacks)
	victim := m.rng.intn(n)
	outstanding := m.w.HotspotFanIn
	onJobDone := func(at units.Time) {
		outstanding--
		if outstanding == 0 && scored {
			m.jobFCTs = append(m.jobFCTs, at.Sub(now).Seconds())
		}
	}
	for i := 0; i < m.w.HotspotFanIn; i++ {
		src := m.rng.intn(n)
		for src == victim {
			src = m.rng.intn(n)
		}
		m.transfer(src, victim, m.w.JobBytes, m.c.Spec.LinkRate, onJobDone)
	}
}

// nextRPC sends one latency probe and schedules the client's next one.
func (m *macroRun) nextRPC(client int) {
	now := m.c.Engine.Now()
	if now >= m.measureTo {
		return
	}
	n := len(m.c.Stacks)
	src := client % n
	dst := m.rng.intn(n)
	for dst == src {
		dst = m.rng.intn(n)
	}
	scored := now >= m.measureFrom
	m.transfer(src, dst, m.w.RPCBytes, m.c.Spec.LinkRate/100, func(at units.Time) {
		if scored {
			m.rpcFCTs = append(m.rpcFCTs, at.Sub(now).Seconds())
		}
	})
	m.c.Engine.Schedule(now.Add(m.w.RPCInterval), func() { m.nextRPC(client) })
}

// transfer moves size bytes from host src to host dst, fluid when the path
// is uncontended, as a packet-level TCP flow otherwise. done fires in
// control context with the completion time.
func (m *macroRun) transfer(src, dst int, size units.ByteSize, demand units.Bandwidth, done func(at units.Time)) {
	c := m.c
	srcHost := c.Stacks[src].Host()
	dstHost := c.Stacks[dst].Host()
	if c.Fluid.Active() {
		m.seq++
		from := packet.Addr{Node: srcHost.ID(), Port: uint16(0x8000 + m.seq&0x7fff)}
		to := packet.Addr{Node: dstHost.ID(), Port: MacroPort}
		ok := c.Fluid.StartFlow(from, to, size, demand,
			func() { done(c.Engine.Now()) },
			func(remaining units.ByteSize) { m.packetTransfer(src, dst, remaining, done) })
		if ok {
			return
		}
	}
	m.packetTransfer(src, dst, size, done)
}

// packetTransfer runs one transfer as a real TCP flow; the sender-side
// completion (shard context) hops back to control through the cluster's
// control plane before scoring.
func (m *macroRun) packetTransfer(src, dst int, size units.ByteSize, done func(at units.Time)) {
	c := m.c
	to := packet.Addr{Node: c.Stacks[dst].Host().ID(), Port: MacroPort}
	flow.StartBulk(c.Stacks[src], to, size, func(r *flow.BulkResult) {
		at := c.Stacks[src].Engine().Now()
		c.ScheduleControl(src, at, func() { done(at) })
	})
}
