package experiment_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/units"
)

func TestSweepJSONRoundTrip(t *testing.T) {
	s := experiment.NewSweep(tinyScale(), 3)
	s.TargetDelays = []units.Duration{100 * units.Microsecond}
	s.Execute()

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := experiment.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if got.Seed != s.Seed || got.Scale != s.Scale {
		t.Error("header fields lost")
	}
	if len(got.TargetDelays) != 1 || got.TargetDelays[0] != s.TargetDelays[0] {
		t.Error("target delays lost")
	}
	for _, b := range []cluster.BufferDepth{cluster.Shallow, cluster.Deep} {
		if got.DropTail[b].Runtime != s.DropTail[b].Runtime {
			t.Errorf("droptail/%v runtime lost", b)
		}
		for label, series := range s.Series[b] {
			gs := got.Series[b][label]
			if len(gs) != len(series) {
				t.Fatalf("series %s/%v length mismatch", label, b)
			}
			for i := range series {
				if gs[i].Runtime != series[i].Runtime || gs[i].Marks != series[i].Marks {
					t.Errorf("series %s/%v[%d] field lost", label, b, i)
				}
			}
		}
	}
	// Normalizations must work identically on the loaded sweep.
	want := s.NormalizedRuntime(s.Series[cluster.Shallow]["ecn-simplemark"][0])
	if g := got.NormalizedRuntime(got.Series[cluster.Shallow]["ecn-simplemark"][0]); g != want {
		t.Errorf("normalized runtime differs after round trip: %g vs %g", g, want)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := experiment.ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := experiment.ReadJSON(strings.NewReader(`{"format_version":99}`)); err == nil {
		t.Error("future format accepted")
	}
	if _, err := experiment.ReadJSON(strings.NewReader(`{"format_version":1,"droptail":{"bogus":{}}}`)); err == nil {
		t.Error("bad buffer key accepted")
	}
}
