package experiment

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/flow"
	"repro/internal/netsim"
	"repro/internal/units"
)

// smallMacroConfig is a macro workload small enough for unit tests.
func smallMacroConfig(hybrid bool, shards int) (Config, MacroWorkload) {
	cfg := Config{
		Setup:       SetupECNDefault,
		TargetDelay: 500 * units.Microsecond,
		Scale: Scale{
			Nodes: 64, Racks: 8, Spines: 4,
			InputSize: 1, BlockSize: 1, Reducers: 1, // unused by the macro harness
			Shards: shards,
		},
		Seed: 7,
	}
	if hybrid {
		cfg.Hybrid = true
		cfg.FluidThreshold = 0.9
	}
	w := MacroWorkload{
		Warmup:         5 * units.Millisecond,
		Measure:        40 * units.Millisecond,
		Drain:          20 * units.Millisecond,
		JobMeanArrival: 400 * units.Microsecond,
		JobFanout:      4,
		JobBytes:       512 * units.KiB,
		HotspotEvery:   10,
		HotspotFanIn:   8,
		RPCClients:     8,
		RPCInterval:    2 * units.Millisecond,
		RPCBytes:       4 * units.KiB,
	}
	return cfg, w
}

// macroKey flattens a MacroResult into a comparable trace string.
func macroKey(r MacroResult) string {
	return fmt.Sprintf("jobs=%d/%d jp50=%.9f jp99=%.9f rpc=%d rp50=%.9f rp99=%.9f fluid=%+v pkt=%d",
		r.JobsStarted, r.JobsCompleted, r.JobP50, r.JobP99,
		r.RPCCount, r.RPCP50, r.RPCP99, r.Fluid, r.PacketPayload)
}

// TestMacroHybridRuns exercises the hybrid macro harness end to end: fluid
// transfers must dominate, hot spots must force promotions, and both fluid
// and packet bytes must move.
func TestMacroHybridRuns(t *testing.T) {
	cfg, w := smallMacroConfig(true, 1)
	r := RunMacro(cfg, w)
	if r.JobsCompleted == 0 {
		t.Fatalf("no jobs completed: %s", macroKey(r))
	}
	if r.Fluid.FluidCompleted == 0 {
		t.Fatalf("hybrid run completed no fluid transfers: %+v", r.Fluid)
	}
	if r.Fluid.FluidBytes == 0 {
		t.Fatalf("hybrid run carried no fluid bytes: %+v", r.Fluid)
	}
	if r.PacketPayload == 0 {
		t.Fatalf("hot spots should force packet-level transfers, packet payload is zero")
	}
	if r.RPCCount == 0 {
		t.Fatalf("no RPC probes scored")
	}
}

// TestMacroHybridShardWorkerDeterminism is the determinism matrix at unit
// scale: the same macro workload at 1 and 4 shards must produce identical
// figures (the full-size matrix runs in the ecnsim scenario tests).
func TestMacroHybridShardWorkerDeterminism(t *testing.T) {
	cfg1, w := smallMacroConfig(true, 1)
	cfg4, _ := smallMacroConfig(true, 4)
	r1 := RunMacro(cfg1, w)
	r4 := RunMacro(cfg4, w)
	k1, k4 := macroKey(r1), macroKey(r4)
	if k1 != k4 {
		t.Fatalf("macro results diverge across shard counts:\n 1 shard: %s\n4 shards: %s", k1, k4)
	}
}

// TestFluidNeverOnMarkedPort is the promotion/demotion property test: no
// fluid flow may traverse a port during an AQM marking episode. An episode is
// what the controller's admission gate sees — a port in packet mode, or one
// whose last AQM observation lies within the hysteresis window. Concretely,
// over the full fluid trace of a serial hybrid run:
//
//  1. no admission path may include a port in packet mode or within the
//     hysteresis window of an AQM mark, and
//  2. at any instant strictly after a port's promotion, the port's live
//     fluid-flow count must be zero — the promotion cascade converts every
//     resident flow at the promotion instant itself.
func TestFluidNeverOnMarkedPort(t *testing.T) {
	cfg, w := smallMacroConfig(true, 1)
	// Pin the hysteresis the checker mirrors (1 ms is also the resolved
	// default the cluster would apply).
	const hyst = 1 * units.Millisecond
	cfg.PromoteHysteresis = hyst

	type portState struct {
		live      int // fluid flows currently traversing the port
		aqmSeen   bool
		aqmLast   units.Time
		promoted  bool
		promoteAt units.Time
	}
	states := make(map[*netsim.Port]*portState)
	st := func(p *netsim.Port) *portState {
		s := states[p]
		if s == nil {
			s = &portState{}
			states[p] = s
		}
		return s
	}
	var admits, promotes int
	runMacro(cfg, w, func(c *cluster.Cluster) {
		c.Fluid.OnTrace = func(ev flow.TraceEvent) {
			switch ev.Kind {
			case flow.TraceAdmit:
				admits++
				for _, p := range ev.Path {
					s := st(p)
					if s.promoted {
						t.Errorf("fluid admission at %v crosses a packet-mode port", ev.At)
					}
					if s.aqmSeen && ev.At.Sub(s.aqmLast) < hyst {
						t.Errorf("fluid admission at %v crosses a port marked at %v, inside the %v episode window", ev.At, s.aqmLast, hyst)
					}
					s.live++
				}
			case flow.TraceComplete, flow.TracePromoteFlow:
				for _, p := range ev.Path {
					st(p).live--
				}
			case flow.TraceAQM:
				s := st(ev.Port)
				s.aqmSeen, s.aqmLast = true, ev.At
			case flow.TracePromote:
				promotes++
				s := st(ev.Port)
				s.promoted, s.promoteAt = true, ev.At
			case flow.TraceDemote:
				s := st(ev.Port)
				if s.live != 0 {
					t.Errorf("port demotes at %v while %d fluid flows traverse it", ev.At, s.live)
				}
				s.promoted = false
			}
			// Invariant 2: past its promotion instant, a promoted port
			// carries nothing fluidly.
			for p, s := range states {
				if s.promoted && ev.At > s.promoteAt && s.live > 0 {
					t.Fatalf("port %p still carries %d fluid flows at %v, promoted at %v",
						p, s.live, ev.At, s.promoteAt)
				}
			}
		}
	})
	// The property must not hold vacuously: this workload admits fluid flows
	// and its hot spots force promotions.
	if admits == 0 || promotes == 0 {
		t.Fatalf("trace saw %d admissions and %d promotions; the property test needs both", admits, promotes)
	}
}

// TestMacroPacketOnly checks the harness also runs on the pure packet engine
// (the extrapolation reference for the hybrid gate) with zero fluid state.
func TestMacroPacketOnly(t *testing.T) {
	cfg, w := smallMacroConfig(false, 1)
	w.Measure = 10 * units.Millisecond
	r := RunMacro(cfg, w)
	if r.Fluid != (MacroResult{}).Fluid {
		t.Fatalf("packet-only run has fluid stats: %+v", r.Fluid)
	}
	if r.JobsCompleted == 0 {
		t.Fatalf("no jobs completed on the packet engine")
	}
}
