package experiment_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/units"
)

func mixedRun(setup experiment.QueueSetup, buf cluster.BufferDepth) experiment.MixedResult {
	return experiment.RunMixed(experiment.Config{
		Setup:       setup,
		Buffer:      buf,
		TargetDelay: 100 * units.Microsecond,
		Scale:       tinyScale(),
		Seed:        1,
	})
}

func TestMixedProducesRPCSamples(t *testing.T) {
	r := mixedRun(experiment.SetupDropTail, cluster.Shallow)
	if r.RPCCount < 20 {
		t.Fatalf("only %d RPC samples over the job", r.RPCCount)
	}
	if r.RPCMean <= 0 || r.RPCP99 < r.RPCP50 || r.RPCMax < r.RPCP99 {
		t.Errorf("RPC stats malformed: mean=%v p50=%v p99=%v max=%v",
			r.RPCMean, r.RPCP50, r.RPCP99, r.RPCMax)
	}
	if r.JobRuntime <= 0 {
		t.Error("job runtime missing")
	}
}

// TestMixedMarkingProtectsServiceLatency pins the paper's motivation: with
// the marking scheme, the co-located service's tail latency is far below
// the deep-buffer DropTail bufferbloat case.
func TestMixedMarkingProtectsServiceLatency(t *testing.T) {
	bloat := mixedRun(experiment.SetupDropTail, cluster.Deep)
	marked := mixedRun(experiment.SetupDCTCPSimpleMark, cluster.Shallow)
	if marked.RPCP99 >= bloat.RPCP99 {
		t.Errorf("marking p99 %v not below deep-droptail p99 %v", marked.RPCP99, bloat.RPCP99)
	}
	if marked.JobRuntime > bloat.JobRuntime*2 {
		t.Errorf("marking sacrificed the job: %v vs %v", marked.JobRuntime, bloat.JobRuntime)
	}
}

func TestMixedDeterministic(t *testing.T) {
	a := mixedRun(experiment.SetupECNAckSyn, cluster.Shallow)
	b := mixedRun(experiment.SetupECNAckSyn, cluster.Shallow)
	if a.RPCMean != b.RPCMean || a.JobRuntime != b.JobRuntime || a.RPCCount != b.RPCCount {
		t.Error("mixed runs diverged across identical configs")
	}
}
