package experiment

import (
	"reflect"
	"testing"

	"repro/internal/units"
)

// httpLoadTestConfig is a CI-sized façade run: 4 nodes, a 4-client
// echo/fan-out service, 300 ms of measurement in 100 ms windows.
func httpLoadTestConfig() (Config, WorkloadConfig) {
	cfg := Config{
		Setup:       SetupECNAckSyn,
		TargetDelay: 500 * units.Microsecond,
		Scale:       Scale{Nodes: 4, InputSize: 32 * units.MiB, BlockSize: 8 * units.MiB, Reducers: 4},
		Seed:        1,
	}
	w := DefaultWorkload()
	w.Warmup = 50 * units.Millisecond
	w.Measure = 300 * units.Millisecond
	w.Window = 100 * units.Millisecond
	return cfg, w
}

func TestRunHTTPLoadSmoke(t *testing.T) {
	cfg, w := httpLoadTestConfig()
	r := RunHTTPLoad(cfg, w)
	if r.RPCCount == 0 {
		t.Fatal("no HTTP exchanges measured")
	}
	if r.RPCFailed != 0 {
		t.Fatalf("%d exchanges failed", r.RPCFailed)
	}
	if !r.Drained {
		t.Error("fleet did not drain")
	}
	if r.RPCMean <= 0 || r.RPCP99 < r.RPCP50 {
		t.Errorf("latency stats implausible: mean=%v p50=%v p99=%v", r.RPCMean, r.RPCP50, r.RPCP99)
	}
	if want := w.Windows(); len(r.RPCWindows) != want || len(r.NetWindows) != want {
		t.Fatalf("window series lengths %d/%d, want %d", len(r.RPCWindows), len(r.NetWindows), want)
	}
	var rpcTotal uint64
	for _, win := range r.RPCWindows {
		rpcTotal += win.Count
	}
	if rpcTotal != r.RPCCount {
		t.Errorf("window counts sum to %d, aggregate is %d", rpcTotal, r.RPCCount)
	}
	if r.ThroughputPerNode <= 0 {
		t.Error("no steady-state throughput measured")
	}
	if r.Events == 0 || r.SimTime <= 0 {
		t.Error("substrate accounting missing")
	}
}

// TestRunHTTPLoadDeterministic pins the byte-identity contract at the
// harness level: the same configuration reproduces the identical result,
// real net/http goroutine scheduling notwithstanding.
func TestRunHTTPLoadDeterministic(t *testing.T) {
	cfg, w := httpLoadTestConfig()
	a := RunHTTPLoad(cfg, w)
	b := RunHTTPLoad(cfg, w)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config diverged:\n%+v\n%+v", a, b)
	}
}
