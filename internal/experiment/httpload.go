// httpload.go is the façade-side service harness: the workload-fleet seam's
// real half. Where RunTenants drives the packet-modeled open-loop fleet,
// RunHTTPLoad runs an actual net/http echo/fan-out service — stock
// http.Server, stock http.Client — as tenants over the simulated fabric
// through the simnet façade (DESIGN.md §2.9). The pairing, ports, phase
// layout and SLO aggregation are shared with the modeled fleet, so the two
// halves of the seam report through the same TenantResult shape and the same
// ServiceFleet aggregation path; results are bit-identical at any shard or
// worker count.
package experiment

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/flow"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/units"
)

// HTTPFanEvery makes every n-th exchange of each client a fan-out request:
// the pair's server answers it only after fetching a block from each of its
// neighbor pairs' servers, so the measured latency includes real nested HTTP
// over the fabric (the modeled fleet has no analogue — this is the façade
// exercising what only real tenant code can express).
const HTTPFanEvery = 4

// httpFleet is the real half of the ServiceFleet seam: per pair, one
// unmodified http.Server on the server node and one paced http.Client on the
// client node, wired to the fabric only through the façade's Listener and
// DialContext. Unlike the modeled fleet the clients are closed-loop — a real
// http.Client blocks in Do — but paced on the modeled fleet's absolute issue
// schedule, so an exchange that overruns its interval delays its successors
// (a queueing signature the SLO windows are meant to expose, not hide).
//
// The mutex guards the counters tenant goroutines update against the control
// engine's reads (the drain predicate polls Outstanding between events, the
// aggregation reads Exchanges after the run). Tenant code never runs while a
// control event does, but the race detector wants the edge explicit.
type httpFleet struct {
	mu          sync.Mutex
	stopped     bool
	outstanding int
	clients     []*httpFleetClient
}

// httpFleetClient is one pair's record: completed exchanges in issue order,
// plus the issue times of exchanges still unanswered at drain cutoff.
type httpFleetClient struct {
	results []flow.RPCResult
	pending []units.Time
}

// Stop closes every client's issue loop; exchanges in flight still finish.
func (f *httpFleet) Stop() {
	f.mu.Lock()
	f.stopped = true
	f.mu.Unlock()
}

// Outstanding returns the number of issued-but-unanswered exchanges.
func (f *httpFleet) Outstanding() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.outstanding
}

// Exchanges flattens the per-client records in pair order — the same
// deterministic order the modeled fleet reports in.
func (f *httpFleet) Exchanges() ([]flow.RPCResult, []units.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var results []flow.RPCResult
	var cut []units.Time
	for _, cl := range f.clients {
		results = append(results, cl.results...)
		cut = append(cut, cl.pending...)
	}
	return results, cut
}

// startHTTPFleet installs the echo/fan-out service and its clients. Pairing
// mirrors flow.StartFleet exactly: pair i's client runs on host i mod N, its
// server on the opposite side of the cluster, its port is FleetBasePort+i,
// and client starts are staggered uniformly over one interval. Control
// context (inside the start event); the caller settles the net afterwards.
func startHTTPFleet(c *cluster.Cluster, w WorkloadConfig, at units.Time) *httpFleet {
	n := c.Net
	nhosts := len(c.Stacks)
	f := &httpFleet{clients: make([]*httpFleetClient, w.RPCClients)}

	type pair struct {
		clientNode, serverNode int
		port                   uint16
	}
	pairs := make([]pair, w.RPCClients)
	for i := range pairs {
		clientNode := i % nhosts
		serverNode := (i + nhosts/2) % nhosts
		if serverNode == clientNode {
			serverNode = (serverNode + 1) % nhosts
		}
		pairs[i] = pair{clientNode, serverNode, FleetBasePort + uint16(i)}
		f.clients[i] = &httpFleetClient{}
	}
	echoURL := func(i int) string {
		return fmt.Sprintf("http://host%d:%d/echo", pairs[i].serverNode, pairs[i].port)
	}

	respBody := bytes.Repeat([]byte("r"), w.RPCRespSize)
	reqBody := bytes.Repeat([]byte("q"), w.RPCReqSize)

	for i := range pairs {
		i := i
		p := pairs[i]

		// The pair's fan-out backends: its neighbor pairs' echo endpoints.
		// Every (frontend node, backend address) combination across the fleet
		// is distinct, so concurrent fan-out dials never race for conn
		// identity (DESIGN.md §2.9's dial-distinctness discipline).
		var backends []string
		for _, j := range []int{(i + 1) % w.RPCClients, (i + w.RPCClients - 1) % w.RPCClients} {
			if j != i && !(len(backends) == 1 && backends[0] == echoURL(j)) {
				backends = append(backends, echoURL(j))
			}
		}

		// Server tenant: a stock http.Server on the pair's listener. Serve
		// returns when Shutdown fails its Accept after the run.
		n.Go(func() {
			l, err := n.Listen("sim", fmt.Sprintf("host%d:%d", p.serverNode, p.port))
			if err != nil {
				return
			}
			backendClient := &http.Client{Transport: &http.Transport{
				DialContext:       n.DialContext,
				DisableKeepAlives: true,
			}}
			mux := http.NewServeMux()
			mux.HandleFunc("/echo", func(rw http.ResponseWriter, r *http.Request) {
				rw.Header()["Date"] = nil // keep the wall clock off the wire
				io.Copy(io.Discard, r.Body)
				rw.Write(respBody)
			})
			mux.HandleFunc("/fanout", func(rw http.ResponseWriter, r *http.Request) {
				rw.Header()["Date"] = nil
				io.Copy(io.Discard, r.Body)
				for _, url := range backends {
					req, err := http.NewRequestWithContext(
						simnet.WithSource(context.Background(), p.serverNode),
						http.MethodPost, url, bytes.NewReader(reqBody))
					if err != nil {
						http.Error(rw, err.Error(), http.StatusInternalServerError)
						return
					}
					resp, err := backendClient.Do(req)
					if err != nil {
						http.Error(rw, err.Error(), http.StatusBadGateway)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				rw.Write(respBody)
			})
			srv := &http.Server{Handler: mux}
			srv.Serve(l)
		})

		// Client tenant: paced exchanges on the modeled fleet's schedule.
		stagger := units.Duration(uint64(w.RPCInterval) * uint64(i) / uint64(w.RPCClients))
		first := at.Add(stagger)
		n.Go(func() {
			f.runClient(n, f.clients[i], p.clientNode, echoURL(i), echoURL(i)[:len(echoURL(i))-len("/echo")]+"/fanout",
				reqBody, first, w.RPCInterval, len(backends) > 0)
		})
	}
	return f
}

// runClient is one pair's client loop (tenant goroutine): issue an exchange
// at each tick of the absolute schedule first + k*interval, blocking through
// a stock http.Client, until the fleet stops.
func (f *httpFleet) runClient(n *simnet.Net, cl *httpFleetClient, node int,
	echoURL, fanURL string, reqBody []byte, first units.Time, interval units.Duration, fanout bool) {
	vnow := func() units.Time { return units.Time(n.Now().Sub(simnet.Epoch)) }
	if d := first.Sub(vnow()); d > 0 {
		n.Sleep(time.Duration(d))
	}
	client := &http.Client{Transport: &http.Transport{
		DialContext:       n.DialContext,
		DisableKeepAlives: true,
	}}
	ctx := simnet.WithSource(context.Background(), node)
	for k := 0; ; k++ {
		f.mu.Lock()
		if f.stopped {
			f.mu.Unlock()
			return
		}
		issued := vnow()
		f.outstanding++
		cl.pending = append(cl.pending, issued)
		f.mu.Unlock()

		url := echoURL
		if fanout && (k+1)%HTTPFanEvery == 0 {
			url = fanURL
		}
		failed := false
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(reqBody))
		if err != nil {
			failed = true
		} else {
			resp, err := client.Do(req)
			if err != nil {
				failed = true
			} else {
				_, err := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				failed = err != nil || resp.StatusCode != http.StatusOK
			}
		}

		f.mu.Lock()
		cl.pending = cl.pending[:len(cl.pending)-1]
		f.outstanding--
		cl.results = append(cl.results, flow.RPCResult{Issued: issued, Finished: vnow(), Failed: failed})
		stopped := f.stopped
		f.mu.Unlock()
		if stopped {
			return
		}
		if d := first.Add(units.Duration(k+1) * interval).Sub(vnow()); d > 0 {
			n.Sleep(time.Duration(d))
		}
	}
}

// RunHTTPLoad executes the façade service workload under the configuration:
// the echo/fan-out service and its client fleet, measured through the same
// phase layout and SLO aggregation as RunTenants' service tier (no batch
// tier — the harness isolates what real tenant code observes). The façade is
// forced on; shard counts are honored, and results are bit-identical across
// them. Panics on an invalid workload, like every harness.
func RunHTTPLoad(cfg Config, w WorkloadConfig) TenantResult {
	if err := w.Validate(); err != nil {
		panic(err)
	}
	if w.RPCClients <= 0 {
		panic("experiment: httpload needs RPCClients > 0")
	}
	cfg.Facade = true
	spec := clusterSpec(cfg)
	c := cluster.New(spec)
	n := c.Net
	if cfg.WatchTiers {
		c.WatchTierOccupancy()
	}

	start := units.Time(1 * units.Millisecond)
	measureStart := start.Add(w.Warmup)
	measureEnd := measureStart.Add(w.Measure)
	nw := w.Windows()

	c.Metrics.WatchLatencyWindows(measureStart.Seconds(), w.Window.Seconds(), nw,
		spec.LatencyReservoir, spec.Seed)
	c.Metrics.LatencyWindows().SetCutoff(measureEnd.Seconds())

	var fl *httpFleet
	c.Engine.Schedule(start, func() {
		fl = startHTTPFleet(c, w, start)
		n.Settle()
	})

	var payloadAtStart, payloadAtEnd units.ByteSize
	c.Engine.Schedule(measureStart, func() { payloadAtStart = c.Metrics.TotalDeliveredPayload() })
	c.Engine.Schedule(measureEnd, func() {
		payloadAtEnd = c.Metrics.TotalDeliveredPayload()
		fl.Stop()
	})

	// The drain deadline bounds the tail: exchanges in flight at measureEnd
	// finish (they are the slowest tail), but a wedged run cannot hang.
	drainEnd := measureEnd.Add(6 * units.Second * units.Duration(1+spec.Nodes))
	n.Run(func() bool { return c.Now() >= measureEnd && fl.Outstanding() == 0 }, drainEnd)
	drained := fl.Outstanding() == 0
	n.Shutdown()
	// Fold per-shard counters into the run-wide views; without this every
	// fabric counter below reads zero in sharded runs.
	c.MergeShardState()

	res := TenantResult{Workload: w, Drained: drained}
	res.Config = cfg

	rpcAll := stats.NewSample()
	rpcWin := stats.NewWindowed(measureStart.Seconds(), w.Window.Seconds(), nw)
	results, cut := fl.Exchanges()
	res.RPCFailed = aggregateRPC(results, cut, measureStart, measureEnd, rpcAll, rpcWin)
	toDur := func(sec float64) units.Duration {
		return units.Duration(sec * float64(units.Second))
	}
	res.RPCCount = rpcAll.N()
	res.RPCMean = toDur(rpcAll.Mean())
	res.RPCP50 = toDur(rpcAll.Quantile(0.5))
	res.RPCP99 = toDur(rpcAll.Quantile(0.99))
	res.RPCWindows = windowStats(rpcWin, nw, w.Window)
	res.NetWindows = windowStats(c.Metrics.LatencyWindows(), nw, w.Window)

	res.Runtime = c.Now().Sub(start)
	if sec := w.Measure.Seconds(); sec > 0 && spec.Nodes > 0 {
		res.ThroughputPerNode = units.Bandwidth(
			float64((payloadAtEnd-payloadAtStart)*8) / sec / float64(spec.Nodes))
	}
	res.MeanLatency = c.Metrics.MeanLatency()
	res.P99Latency = c.Metrics.P99Latency()
	res.ShuffledBytes = payloadAtEnd - payloadAtStart
	res.AckDropShare = c.Metrics.AckDropShare()
	res.Marks = c.Metrics.Marked.Total()
	res.Retransmits = c.TCP.Retransmits()
	res.RTOEvents = c.TCP.RTOEvents
	res.SynRetries = c.TCP.SynRetries
	res.EarlyDrops, res.OverflowDrops = c.Metrics.Drops()
	res.Events = c.Events()
	res.SimTime = units.Duration(c.Now())
	notifyStats(c, &res.Result)
	return res
}
