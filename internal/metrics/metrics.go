// Package metrics implements the run-wide measurement pipeline. A Collector
// observes the netsim fabric and produces the three quantities every figure
// in the paper reports — job/flow runtime, per-node throughput, and average
// per-packet end-to-end network latency — plus the drop/mark breakdowns by
// packet kind that explain *why* (the paper's Figure 1 story).
package metrics

import (
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/stats"
	"repro/internal/units"
)

// KindCounts indexes counters by packet.Kind.
type KindCounts [6]uint64

// Add increments the counter for kind k.
func (kc *KindCounts) Add(k packet.Kind) { kc[int(k)]++ }

// Get returns the counter for kind k.
func (kc *KindCounts) Get(k packet.Kind) uint64 { return kc[int(k)] }

// Total sums all kinds.
func (kc *KindCounts) Total() uint64 {
	var t uint64
	for _, v := range kc {
		t += v
	}
	return t
}

// Tier classifies a port by its place in the fabric, for per-tier occupancy
// aggregation on multi-tier topologies.
type Tier uint8

// Port tiers, bottom-up.
const (
	// TierHostUp is a host NIC uplink (host -> switch).
	TierHostUp Tier = iota
	// TierEdge is a switch -> host downlink (the paper's bottleneck queues).
	TierEdge
	// TierCoreUp is leaf->spine (or ToR->aggregation) — where cross-rack
	// shuffle traffic funnels into the oversubscribed core.
	TierCoreUp
	// TierCoreDown is spine->leaf (or aggregation->ToR).
	TierCoreDown
	// TierCount bounds the enum.
	TierCount
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierHostUp:
		return "hostup"
	case TierEdge:
		return "edge"
	case TierCoreUp:
		return "coreup"
	case TierCoreDown:
		return "coredown"
	}
	return "tier?"
}

// Collector implements netsim.Observer and aggregates everything the
// experiments report. Construct with New, install via Network.SetObserver.
type Collector struct {
	// Latency is the per-packet end-to-end latency distribution in seconds,
	// from first transmission at the source host to final delivery.
	Latency *stats.Sample
	// DataLatency restricts the latency distribution to payload packets.
	DataLatency *stats.Sample

	// Enqueued / Marked / EarlyDropped / OverflowDropped count Enqueue
	// verdicts by packet kind across all observed ports.
	Enqueued        KindCounts
	Marked          KindCounts
	EarlyDropped    KindCounts
	OverflowDropped KindCounts

	// DeliveredPackets counts final deliveries.
	DeliveredPackets uint64

	// FluidPayload accumulates payload bytes carried by the hybrid engine's
	// fluid model (AddFluidPayload). Always zero on the pure packet path.
	FluidPayload units.ByteSize

	// deliveredPayload accumulates payload bytes delivered per destination
	// node (wire view; includes retransmitted duplicates). Node IDs are
	// dense (the fabric hands them out sequentially), so a grow-on-demand
	// slice replaces the map a hash per delivered packet used to cost.
	deliveredPayload []units.ByteSize

	// occupancy tracks the time-weighted queue length of each watched port.
	// Keyed by port pointer: the per-enqueue lookup hashes a word instead
	// of a label string; QueueOccupancy exposes the label view.
	occupancy   map[*netsim.Port]*stats.TimeWeighted
	watchQueues bool

	// Per-tier occupancy aggregation: every port registered with
	// SetPortTier gets its own time-weighted tracker, observed at that
	// port's enqueue instants; TierOccupancyAt sums the per-port means in
	// registration order. Summing at read time (rather than funnelling a
	// tier's ports through one shared tracker) keeps a congested port's
	// standing queue visible next to frequently-enqueuing idle siblings,
	// and the fixed order keeps the float sum deterministic. Off by
	// default — the hot path pays only a bool test unless WatchTiers is
	// enabled.
	tierPortOcc map[*netsim.Port]*stats.TimeWeighted
	tierPorts   [TierCount][]*stats.TimeWeighted
	watchTiers  bool

	// latWindows, when non-nil, accumulates per-packet latency into fixed
	// time windows for steady-state percentile series (P50/P99 per window).
	// Off by default — the hot path pays only a nil test.
	latWindows *stats.Windowed
}

// New creates an empty collector. If reservoir is > 0, per-packet latency
// samples are reservoir-sampled to that capacity (means remain exact).
func New(reservoir int, seed uint64) *Collector {
	newSample := func(tag uint64) *stats.Sample {
		if reservoir > 0 {
			return stats.NewReservoir(reservoir, seed^tag)
		}
		return stats.NewSample()
	}
	return &Collector{
		Latency:     newSample(0xa11),
		DataLatency: newSample(0xda7a),
		occupancy:   make(map[*netsim.Port]*stats.TimeWeighted),
	}
}

// WatchQueues enables per-port occupancy tracking (small overhead).
func (c *Collector) WatchQueues() { c.watchQueues = true }

// WatchTiers enables per-tier occupancy tracking over the ports registered
// with SetPortTier (small overhead; off by default so the benchmark-gated
// hot path pays only a bool test).
func (c *Collector) WatchTiers() {
	c.watchTiers = true
	if c.tierPortOcc == nil {
		c.tierPortOcc = make(map[*netsim.Port]*stats.TimeWeighted)
	}
}

// WatchLatencyWindows enables time-windowed per-packet latency tracking:
// windows of the given width starting at start (seconds), at most limit
// windows (observations beyond are dropped). Each window's sample store is
// reservoir-bounded to the collector's usual capacity so a long window
// cannot grow without bound. Read back via LatencyWindows.
func (c *Collector) WatchLatencyWindows(start, width float64, limit, reservoir int, seed uint64) {
	if reservoir > 0 {
		c.latWindows = stats.NewWindowedReservoir(start, width, limit, reservoir, seed^0x71a7)
	} else {
		c.latWindows = stats.NewWindowed(start, width, limit)
	}
}

// LatencyWindows returns the windowed latency accumulator (nil unless
// WatchLatencyWindows was enabled).
func (c *Collector) LatencyWindows() *stats.Windowed { return c.latWindows }

// SetPortTier registers a port's fabric tier for per-tier aggregation.
// Re-registering a port is a no-op (a port has one place in the fabric).
func (c *Collector) SetPortTier(p *netsim.Port, t Tier) {
	if c.tierPortOcc == nil {
		c.tierPortOcc = make(map[*netsim.Port]*stats.TimeWeighted)
	}
	if _, ok := c.tierPortOcc[p]; ok {
		return
	}
	w := &stats.TimeWeighted{}
	c.tierPortOcc[p] = w
	c.tierPorts[t] = append(c.tierPorts[t], w)
}

// TierOccupancyAt returns the tier's time-weighted queued packets over
// [start, atSeconds]: the sum of each registered port's time-weighted mean
// queue length, each sampled at that port's own enqueue instants. Zero
// unless WatchTiers was enabled and ports were registered for the tier.
func (c *Collector) TierOccupancyAt(t Tier, atSeconds float64) float64 {
	var sum float64
	for _, w := range c.tierPorts[t] {
		sum += w.MeanAt(atSeconds)
	}
	return sum
}

// PacketEnqueued implements netsim.Observer.
func (c *Collector) PacketEnqueued(now units.Time, port *netsim.Port, p *packet.Packet, v qdisc.Verdict) {
	k := p.Kind()
	switch v {
	case qdisc.Enqueued:
		c.Enqueued.Add(k)
	case qdisc.EnqueuedMarked:
		c.Enqueued.Add(k)
		c.Marked.Add(k)
	case qdisc.DroppedEarly:
		c.EarlyDropped.Add(k)
	case qdisc.DroppedOverflow:
		c.OverflowDropped.Add(k)
	}
	if c.watchQueues {
		w := c.occupancy[port]
		if w == nil {
			w = &stats.TimeWeighted{}
			c.occupancy[port] = w
		}
		w.Observe(now.Seconds(), float64(port.Queue().Len()))
	}
	if c.watchTiers {
		if w, ok := c.tierPortOcc[port]; ok {
			w.Observe(now.Seconds(), float64(port.Queue().Len()))
		}
	}
}

// PacketDelivered implements netsim.Observer.
func (c *Collector) PacketDelivered(now units.Time, p *packet.Packet) {
	c.deliverAt(now, p.SentAt, p.Payload, p.Dst.Node)
}

// deliverAt is the delivery accounting shared by the serial observer path
// and the sharded replay: the reservoir RNG draw and the float accumulation
// order depend only on the sequence of these calls, so replaying buffered
// deliveries in the serial engine's order reproduces the serial statistics
// bit for bit.
func (c *Collector) deliverAt(now, sentAt units.Time, payload int, dst packet.NodeID) {
	c.DeliveredPackets++
	lat := now.Sub(sentAt).Seconds()
	c.Latency.Add(lat)
	if c.latWindows != nil {
		c.latWindows.Add(now.Seconds(), lat)
	}
	if payload > 0 {
		c.DataLatency.Add(lat)
		node := int(dst)
		if node >= len(c.deliveredPayload) {
			grown := make([]units.ByteSize, node+1)
			copy(grown, c.deliveredPayload)
			c.deliveredPayload = grown
		}
		c.deliveredPayload[node] += units.ByteSize(payload)
	}
}

// AddFluidPayload credits payload bytes carried by the hybrid engine's fluid
// model. Fluid transfers emit no packets, so these bytes are accounted apart
// from packet deliveries: they contribute no latency samples and do not
// enter DeliveredPayload. Called only from control context (workers parked).
func (c *Collector) AddFluidPayload(dst packet.NodeID, payload units.ByteSize) {
	_ = dst
	c.FluidPayload += payload
}

// DeliveredPayload returns payload bytes delivered to one node.
func (c *Collector) DeliveredPayload(node packet.NodeID) units.ByteSize {
	if int(node) >= len(c.deliveredPayload) || node < 0 {
		return 0
	}
	return c.deliveredPayload[node]
}

// TotalDeliveredPayload sums delivered payload across all nodes.
func (c *Collector) TotalDeliveredPayload() units.ByteSize {
	var total units.ByteSize
	for _, b := range c.deliveredPayload {
		total += b
	}
	return total
}

// QueueOccupancy returns the watched ports' time-weighted occupancy
// trackers keyed by port label (empty unless WatchQueues was enabled).
func (c *Collector) QueueOccupancy() map[string]*stats.TimeWeighted {
	out := make(map[string]*stats.TimeWeighted, len(c.occupancy))
	for port, w := range c.occupancy {
		out[port.Label] = w
	}
	return out
}

// MeanLatency returns the average end-to-end per-packet latency.
func (c *Collector) MeanLatency() units.Duration {
	return units.Duration(c.Latency.Mean() * float64(units.Second))
}

// P99Latency returns the 99th percentile end-to-end latency.
func (c *Collector) P99Latency() units.Duration {
	return units.Duration(c.Latency.Percentile(99) * float64(units.Second))
}

// Drops returns total early and overflow drops.
func (c *Collector) Drops() (early, overflow uint64) {
	return c.EarlyDropped.Total(), c.OverflowDropped.Total()
}

// AckDropShare returns the fraction of all dropped packets that were pure
// ACKs — the paper's "disproportionate number of ACK drops" diagnostic.
func (c *Collector) AckDropShare() float64 {
	dropped := c.EarlyDropped.Total() + c.OverflowDropped.Total()
	if dropped == 0 {
		return 0
	}
	acks := c.EarlyDropped.Get(packet.KindPureACK) + c.OverflowDropped.Get(packet.KindPureACK)
	return float64(acks) / float64(dropped)
}

// MeanThroughputPerNode returns average received goodput per node over the
// interval [start, end] for the given node count.
func (c *Collector) MeanThroughputPerNode(nodes int, start, end units.Time) units.Bandwidth {
	if nodes <= 0 || end <= start {
		return 0
	}
	total := c.TotalDeliveredPayload()
	sec := end.Sub(start).Seconds()
	return units.Bandwidth(float64(total*8) / sec / float64(nodes))
}
