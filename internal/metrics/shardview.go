package metrics

import (
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
)

// delivery is one buffered PacketDelivered observation. The (at, lineage)
// pair is the delivering event's ordering key on its shard engine, which is
// what lets the replay merge observations from all shards back into the
// order a single serial engine would have produced them in.
type delivery struct {
	at      units.Time
	lin     sim.Lineage
	tok     sim.Token
	sentAt  units.Time
	payload int
	dst     packet.NodeID
}

// ShardView is the per-shard face of a Collector in a sharded run. Counter
// updates and queue-occupancy observations are order-free (integer-additive,
// or confined to one port and therefore one shard), so the view applies them
// locally without synchronization. Delivery observations are NOT order-free
// — they feed reservoir sampling and float accumulation on the shared
// collector — so the view only buffers them; the group coordinator replays
// all shards' buffers at each barrier via Collector.ReplayDeliveries.
//
// With one shard the Collector itself is the observer and none of this
// machinery exists on the hot path.
type ShardView struct {
	c   *Collector
	eng *sim.Engine

	// Shard-local verdict counters, folded into the collector by MergeShard
	// after the run.
	Enqueued        KindCounts
	Marked          KindCounts
	EarlyDropped    KindCounts
	OverflowDropped KindCounts

	// Shard-local per-port occupancy trackers (WatchQueues). Ports are
	// partitioned across shards, so the per-shard maps have disjoint key
	// sets and merge losslessly.
	occupancy map[*netsim.Port]*stats.TimeWeighted

	deliveries []delivery
}

// ShardView creates the observer for one shard, whose events run on eng.
func (c *Collector) ShardView(eng *sim.Engine) *ShardView {
	v := &ShardView{c: c, eng: eng}
	if c.watchQueues {
		v.occupancy = make(map[*netsim.Port]*stats.TimeWeighted)
	}
	return v
}

// PacketEnqueued implements netsim.Observer on the shard.
func (v *ShardView) PacketEnqueued(now units.Time, port *netsim.Port, p *packet.Packet, verdict qdisc.Verdict) {
	k := p.Kind()
	switch verdict {
	case qdisc.Enqueued:
		v.Enqueued.Add(k)
	case qdisc.EnqueuedMarked:
		v.Enqueued.Add(k)
		v.Marked.Add(k)
	case qdisc.DroppedEarly:
		v.EarlyDropped.Add(k)
	case qdisc.DroppedOverflow:
		v.OverflowDropped.Add(k)
	}
	if v.c.watchQueues {
		w := v.occupancy[port]
		if w == nil {
			w = &stats.TimeWeighted{}
			v.occupancy[port] = w
		}
		w.Observe(now.Seconds(), float64(port.Queue().Len()))
	}
	if v.c.watchTiers {
		// tierPortOcc is registered before the run and read-only during it;
		// each tracker belongs to one port and hence one shard, so the
		// concurrent map reads and single-shard tracker writes are safe.
		if w, ok := v.c.tierPortOcc[port]; ok {
			w.Observe(now.Seconds(), float64(port.Queue().Len()))
		}
	}
}

// PacketDelivered implements netsim.Observer on the shard: buffer only.
func (v *ShardView) PacketDelivered(now units.Time, p *packet.Packet) {
	v.deliveries = append(v.deliveries, delivery{
		at:      now,
		lin:     v.eng.CurrentLineage(),
		tok:     v.eng.CurrentToken(),
		sentAt:  p.SentAt,
		payload: p.Payload,
		dst:     p.Dst.Node,
	})
}

// ReplayDeliveries merges every view's buffered deliveries into the
// collector in (at, lineage, shard) order — each shard's buffer is already
// sorted because its engine executes in key order — and resets the buffers.
// Called by the group coordinator at barriers, with all shard workers
// parked.
func (c *Collector) ReplayDeliveries(views []*ShardView) {
	idx := make([]int, len(views))
	for {
		best := -1
		for i, v := range views {
			if idx[i] >= len(v.deliveries) {
				continue
			}
			d := &v.deliveries[idx[i]]
			if best < 0 {
				best = i
				continue
			}
			b := &views[best].deliveries[idx[best]]
			if d.at < b.at || (d.at == b.at && (d.lin != b.lin && d.lin.Less(b.lin) ||
				d.lin == b.lin && d.tok.Less(b.tok))) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		d := &views[best].deliveries[idx[best]]
		c.deliverAt(d.at, d.sentAt, d.payload, d.dst)
		idx[best]++
	}
	for _, v := range views {
		v.deliveries = v.deliveries[:0]
	}
}

// MergeShard folds a view's order-free aggregates into the collector and
// zeroes the view's counters, so merging after every drive call is safe.
func (c *Collector) MergeShard(v *ShardView) {
	for i := range v.Enqueued {
		c.Enqueued[i] += v.Enqueued[i]
		c.Marked[i] += v.Marked[i]
		c.EarlyDropped[i] += v.EarlyDropped[i]
		c.OverflowDropped[i] += v.OverflowDropped[i]
	}
	v.Enqueued, v.Marked, v.EarlyDropped, v.OverflowDropped = KindCounts{}, KindCounts{}, KindCounts{}, KindCounts{}
	for port, w := range v.occupancy {
		c.occupancy[port] = w
	}
}
