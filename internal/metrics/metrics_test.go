package metrics

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/units"
)

func data(dst packet.NodeID, payload int) *packet.Packet {
	return &packet.Packet{Flags: packet.FlagACK, Payload: payload, ECN: packet.ECT0,
		Dst: packet.Addr{Node: dst, Port: 1}}
}

func ack() *packet.Packet {
	return &packet.Packet{Flags: packet.FlagACK, Wire: 40}
}

func syn() *packet.Packet {
	return &packet.Packet{Flags: packet.FlagSYN, Wire: 40}
}

// port builds a throwaway port for observer calls.
func port(t *testing.T) *netsim.Port {
	t.Helper()
	eng := sim.New()
	n := netsim.New(eng)
	a := n.NewHost("a")
	b := n.NewHost("b")
	return n.NewPort(a, b, netsim.LinkParams{Rate: units.Gbps, Delay: 0}, qdisc.NewDropTail(8))
}

func TestVerdictCounting(t *testing.T) {
	c := New(0, 1)
	p := port(t)
	c.PacketEnqueued(0, p, data(1, 100), qdisc.Enqueued)
	c.PacketEnqueued(0, p, data(1, 100), qdisc.EnqueuedMarked)
	c.PacketEnqueued(0, p, ack(), qdisc.DroppedEarly)
	c.PacketEnqueued(0, p, ack(), qdisc.DroppedEarly)
	c.PacketEnqueued(0, p, syn(), qdisc.DroppedEarly)
	c.PacketEnqueued(0, p, data(1, 100), qdisc.DroppedOverflow)

	if got := c.Enqueued.Get(packet.KindData); got != 2 {
		t.Errorf("enqueued data = %d, want 2", got)
	}
	if got := c.Marked.Get(packet.KindData); got != 1 {
		t.Errorf("marked = %d, want 1", got)
	}
	if got := c.EarlyDropped.Get(packet.KindPureACK); got != 2 {
		t.Errorf("early-dropped ACKs = %d, want 2", got)
	}
	if got := c.EarlyDropped.Get(packet.KindSYN); got != 1 {
		t.Errorf("early-dropped SYNs = %d, want 1", got)
	}
	early, ovf := c.Drops()
	if early != 3 || ovf != 1 {
		t.Errorf("Drops = %d/%d, want 3/1", early, ovf)
	}
}

func TestAckDropShare(t *testing.T) {
	c := New(0, 1)
	p := port(t)
	if c.AckDropShare() != 0 {
		t.Error("share non-zero with no drops")
	}
	c.PacketEnqueued(0, p, ack(), qdisc.DroppedEarly)
	c.PacketEnqueued(0, p, ack(), qdisc.DroppedEarly)
	c.PacketEnqueued(0, p, ack(), qdisc.DroppedOverflow)
	c.PacketEnqueued(0, p, data(1, 100), qdisc.DroppedOverflow)
	if got := c.AckDropShare(); got != 0.75 {
		t.Errorf("AckDropShare = %g, want 0.75", got)
	}
}

func TestLatencyAccounting(t *testing.T) {
	c := New(0, 1)
	d := data(1, 100)
	d.SentAt = units.Time(100 * units.Microsecond)
	c.PacketDelivered(units.Time(300*units.Microsecond), d)

	a := ack()
	a.SentAt = units.Time(100 * units.Microsecond)
	c.PacketDelivered(units.Time(200*units.Microsecond), a)

	if c.DeliveredPackets != 2 {
		t.Errorf("delivered = %d", c.DeliveredPackets)
	}
	// Mean of 200µs and 100µs = 150µs.
	if got := c.MeanLatency(); got != 150*units.Microsecond {
		t.Errorf("MeanLatency = %v, want 150µs", got)
	}
	// Data-only latency excludes the ACK.
	if got := c.DataLatency.Mean(); got != 200e-6 {
		t.Errorf("data latency mean = %g, want 200e-6", got)
	}
}

func TestDeliveredPayloadPerNode(t *testing.T) {
	c := New(0, 1)
	c.PacketDelivered(0, data(1, 1000))
	c.PacketDelivered(0, data(1, 500))
	c.PacketDelivered(0, data(2, 100))
	c.PacketDelivered(0, ack()) // no payload
	if got := c.DeliveredPayload(1); got != 1500 {
		t.Errorf("node 1 payload = %d", got)
	}
	if got := c.DeliveredPayload(2); got != 100 {
		t.Errorf("node 2 payload = %d", got)
	}
	if got := c.DeliveredPayload(99); got != 0 {
		t.Errorf("untouched node payload = %d, want 0", got)
	}
	if got := c.TotalDeliveredPayload(); got != 1600 {
		t.Errorf("total payload = %d, want 1600", got)
	}
}

func TestMeanThroughputPerNode(t *testing.T) {
	c := New(0, 1)
	c.PacketDelivered(0, data(1, 125000)) // 1 Mbit
	c.PacketDelivered(0, data(2, 125000)) // 1 Mbit
	// 2 Mbit over 1 second over 2 nodes = 1 Mbps per node.
	got := c.MeanThroughputPerNode(2, 0, units.Time(units.Second))
	if got != 1*units.Mbps {
		t.Errorf("throughput = %v, want 1Mbps", got)
	}
	if c.MeanThroughputPerNode(0, 0, 1) != 0 {
		t.Error("zero nodes should yield 0")
	}
	if c.MeanThroughputPerNode(2, 5, 5) != 0 {
		t.Error("empty window should yield 0")
	}
}

func TestP99Latency(t *testing.T) {
	c := New(0, 1)
	for i := 1; i <= 100; i++ {
		d := data(1, 10)
		d.SentAt = 0
		c.PacketDelivered(units.Time(i)*units.Time(units.Microsecond), d)
	}
	p99 := c.P99Latency()
	if p99 < 98*units.Microsecond || p99 > 100*units.Microsecond {
		t.Errorf("P99 = %v, want ~99µs", p99)
	}
}

func TestQueueOccupancyWatch(t *testing.T) {
	c := New(0, 1)
	c.WatchQueues()
	p := port(t)
	c.PacketEnqueued(0, p, data(1, 100), qdisc.Enqueued)
	occ := c.QueueOccupancy()
	if len(occ) != 1 {
		t.Fatalf("occupancy map size = %d", len(occ))
	}
	if _, ok := occ[p.Label]; !ok {
		t.Error("occupancy not keyed by port label")
	}
}

func TestReservoirModeBoundsSamples(t *testing.T) {
	c := New(64, 9)
	for i := 0; i < 10000; i++ {
		d := data(1, 10)
		d.SentAt = 0
		c.PacketDelivered(units.Time(i+1), d)
	}
	if c.Latency.N() != 10000 {
		t.Errorf("N = %d, want 10000", c.Latency.N())
	}
}

func TestKindCountsTotal(t *testing.T) {
	var kc KindCounts
	kc.Add(packet.KindData)
	kc.Add(packet.KindData)
	kc.Add(packet.KindPureACK)
	if kc.Total() != 3 {
		t.Errorf("Total = %d", kc.Total())
	}
	if kc.Get(packet.KindData) != 2 {
		t.Errorf("Get(data) = %d", kc.Get(packet.KindData))
	}
}

// TestTierOccupancySumsPorts pins the per-tier aggregation semantics: each
// registered port gets its own time-weighted tracker and the tier value is
// the sum of per-port means — a congested port's standing queue must not be
// erased by an idle sibling that enqueues (and observes ~0) frequently.
func TestTierOccupancySumsPorts(t *testing.T) {
	c := New(0, 1)
	sick, idle := port(t), port(t)
	c.SetPortTier(sick, TierCoreUp)
	c.SetPortTier(idle, TierCoreUp)
	c.WatchTiers()

	// The sick port holds 4 queued packets from t=0 on.
	for i := 0; i < 4; i++ {
		sick.Queue().Enqueue(0, data(1, 100))
	}
	c.PacketEnqueued(0, sick, data(1, 100), qdisc.Enqueued)

	// The idle port enqueues often, each time with an empty queue behind it.
	for i := 1; i <= 9; i++ {
		c.PacketEnqueued(units.Time(i)*units.Time(units.Second), idle, data(1, 100), qdisc.Enqueued)
	}

	got := c.TierOccupancyAt(TierCoreUp, 10)
	if got != 4 {
		t.Errorf("TierOccupancyAt = %g, want 4 (sick port's standing queue + idle port's 0)", got)
	}
	if c.TierOccupancyAt(TierEdge, 10) != 0 {
		t.Errorf("unregistered tier reported %g", c.TierOccupancyAt(TierEdge, 10))
	}

	// Re-registering a port must not double-count it.
	c.SetPortTier(sick, TierCoreUp)
	if got := c.TierOccupancyAt(TierCoreUp, 10); got != 4 {
		t.Errorf("after re-registration TierOccupancyAt = %g, want 4", got)
	}
}
