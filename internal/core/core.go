// Package core is the high-level entry point to the reproduction: a small
// options-style API that builds a simulated Hadoop cluster, applies one of
// the queue configurations the paper studies — DropTail, ECN-enabled RED in
// its default or protected modes, or the true simple marking scheme — runs a
// Terasort, and reports the paper's three metrics.
//
// The heavy lifting lives in the substrate packages (sim, netsim, qdisc,
// tcp, mapred, cluster, experiment); core exists so that a user can get from
// zero to a result in a few lines:
//
//	res := core.RunTerasort(1*units.GiB, 32,
//	    core.WithQueue(core.SimpleMark, 100*units.Microsecond),
//	    core.WithTransport(core.DCTCP))
//	fmt.Println(res.Runtime, res.MeanLatency)
package core

import (
	"repro/internal/cluster"
	"repro/internal/mapred"
	"repro/internal/qdisc"
	"repro/internal/tcp"
	"repro/internal/units"
)

// Queue names the queue disciplines under study.
type Queue = cluster.QueueKind

// Queue disciplines.
const (
	DropTail   = cluster.QueueDropTail
	RED        = cluster.QueueRED
	SimpleMark = cluster.QueueSimpleMark
	CoDel      = cluster.QueueCoDel
	PIE        = cluster.QueuePIE
)

// Transport names the TCP variants.
type Transport = tcp.Variant

// Transports.
const (
	TCP      = tcp.Reno
	TCPECN   = tcp.RenoECN
	DCTCP    = tcp.DCTCP
	Cubic    = tcp.Cubic
	CubicECN = tcp.CubicECN
)

// Protection re-exports the paper's AQM protection modes.
type Protection = qdisc.ProtectMode

// Protection modes (Section II-B of the paper).
const (
	ProtectNone   = qdisc.ProtectNone
	ProtectECE    = qdisc.ProtectECE
	ProtectACKSYN = qdisc.ProtectACKSYN
)

// Option customizes the simulated cluster.
type Option func(*cluster.Spec)

// WithNodes sets the cluster size (default 16).
func WithNodes(n int) Option { return func(s *cluster.Spec) { s.Nodes = n } }

// WithRacks arranges nodes in racks under a two-tier fabric (default: one
// big switch).
func WithRacks(r int) Option { return func(s *cluster.Spec) { s.Racks = r } }

// WithLinkRate sets the edge link speed (default 10 Gbps).
func WithLinkRate(b units.Bandwidth) Option { return func(s *cluster.Spec) { s.LinkRate = b } }

// WithQueue installs a queue discipline with its target delay on every port.
func WithQueue(q Queue, target units.Duration) Option {
	return func(s *cluster.Spec) {
		s.Queue = q
		s.TargetDelay = target
	}
}

// WithProtection selects RED's protection mode (implies nothing for other
// queues).
func WithProtection(p Protection) Option { return func(s *cluster.Spec) { s.Protect = p } }

// WithTransport selects the TCP variant on every node.
func WithTransport(v Transport) Option { return func(s *cluster.Spec) { s.Transport = v } }

// WithDeepBuffers switches ports from 1 MB to 10 MB of buffering.
func WithDeepBuffers() Option { return func(s *cluster.Spec) { s.Buffer = cluster.Deep } }

// WithSeed sets the simulation seed (default 1).
func WithSeed(seed uint64) Option { return func(s *cluster.Spec) { s.Seed = seed } }

// Result is what a Terasort run reports.
type Result struct {
	// Runtime is the job completion time — the paper's Figure 2 metric.
	Runtime units.Duration
	// ThroughputPerNode is the mean received goodput per node during the
	// shuffle — the paper's Figure 3 metric.
	ThroughputPerNode units.Bandwidth
	// MeanLatency is the average per-packet end-to-end latency — the
	// paper's Figure 4 metric.
	MeanLatency units.Duration
	// P99Latency is the tail of the same distribution.
	P99Latency units.Duration

	// Diagnostics explaining the above.
	EarlyDrops    uint64
	OverflowDrops uint64
	AckDropShare  float64
	Marks         uint64
	Retransmits   uint64
	RTOEvents     uint64
}

// RunTerasort simulates one Terasort of the given input size and reducer
// count and returns its metrics. Runs are deterministic in (inputs, seed).
func RunTerasort(input units.ByteSize, reducers int, opts ...Option) Result {
	spec := cluster.DefaultSpec()
	for _, o := range opts {
		o(&spec)
	}
	c := cluster.New(spec)
	job := c.RunJob(mapred.TerasortConfig(input, reducers))
	lo, hi := job.ShuffleWindow()
	res := Result{
		Runtime:           job.Runtime(),
		ThroughputPerNode: c.Metrics.MeanThroughputPerNode(spec.Nodes, lo, hi),
		MeanLatency:       c.Metrics.MeanLatency(),
		P99Latency:        c.Metrics.P99Latency(),
		AckDropShare:      c.Metrics.AckDropShare(),
		Marks:             c.Metrics.Marked.Total(),
		Retransmits:       c.TCP.Retransmits(),
		RTOEvents:         c.TCP.RTOEvents,
	}
	res.EarlyDrops, res.OverflowDrops = c.Metrics.Drops()
	return res
}

// Compare runs the same Terasort under several labelled option sets,
// returning results in the given order. It is the shape of every example and
// figure in this repository.
func Compare(input units.ByteSize, reducers int, configs map[string][]Option, order []string) map[string]Result {
	out := make(map[string]Result, len(configs))
	for _, label := range order {
		opts, ok := configs[label]
		if !ok {
			continue
		}
		out[label] = RunTerasort(input, reducers, opts...)
	}
	return out
}
