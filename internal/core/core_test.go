package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/units"
)

func TestRunTerasortDefaults(t *testing.T) {
	res := core.RunTerasort(64*units.MiB, 8, core.WithNodes(4))
	if res.Runtime <= 0 {
		t.Error("runtime <= 0")
	}
	if res.ThroughputPerNode <= 0 {
		t.Error("throughput <= 0")
	}
	if res.MeanLatency <= 0 || res.P99Latency < res.MeanLatency {
		t.Error("latency stats malformed")
	}
	if res.Marks != 0 {
		t.Error("DropTail default produced marks")
	}
}

func TestOptionsApply(t *testing.T) {
	dt := core.RunTerasort(64*units.MiB, 8, core.WithNodes(4))
	sm := core.RunTerasort(64*units.MiB, 8,
		core.WithNodes(4),
		core.WithQueue(core.SimpleMark, 100*units.Microsecond),
		core.WithTransport(core.DCTCP),
	)
	if sm.Marks == 0 {
		t.Error("marking queue produced no marks")
	}
	if sm.EarlyDrops != 0 {
		t.Error("simple marking early-dropped")
	}
	if sm.MeanLatency >= dt.MeanLatency {
		t.Errorf("marking latency %v not below droptail %v", sm.MeanLatency, dt.MeanLatency)
	}
}

func TestDeterministicAcrossCalls(t *testing.T) {
	opts := []core.Option{core.WithNodes(4), core.WithSeed(7)}
	a := core.RunTerasort(64*units.MiB, 8, opts...)
	b := core.RunTerasort(64*units.MiB, 8, opts...)
	if a != b {
		t.Error("identical runs diverged")
	}
}

func TestDeepBuffersOption(t *testing.T) {
	shallow := core.RunTerasort(128*units.MiB, 8, core.WithNodes(4))
	deep := core.RunTerasort(128*units.MiB, 8, core.WithNodes(4), core.WithDeepBuffers())
	if deep.MeanLatency <= shallow.MeanLatency {
		t.Errorf("deep buffers latency %v not above shallow %v (bufferbloat missing)",
			deep.MeanLatency, shallow.MeanLatency)
	}
}

func TestCompareRunsAllLabels(t *testing.T) {
	configs := map[string][]core.Option{
		"droptail": {core.WithNodes(4)},
		"marking":  {core.WithNodes(4), core.WithQueue(core.SimpleMark, 100*units.Microsecond), core.WithTransport(core.TCPECN)},
	}
	out := core.Compare(64*units.MiB, 8, configs, []string{"droptail", "marking", "missing"})
	if len(out) != 2 {
		t.Fatalf("Compare returned %d results", len(out))
	}
	if out["marking"].Marks == 0 {
		t.Error("marking config did not mark")
	}
}

func TestTwoTierOption(t *testing.T) {
	res := core.RunTerasort(64*units.MiB, 8, core.WithNodes(4), core.WithRacks(2))
	if res.Runtime <= 0 {
		t.Error("two-tier run failed")
	}
}

func TestProtectionOption(t *testing.T) {
	def := core.RunTerasort(128*units.MiB, 8,
		core.WithNodes(4),
		core.WithQueue(core.RED, 100*units.Microsecond),
		core.WithTransport(core.TCPECN))
	prot := core.RunTerasort(128*units.MiB, 8,
		core.WithNodes(4),
		core.WithQueue(core.RED, 100*units.Microsecond),
		core.WithTransport(core.TCPECN),
		core.WithProtection(core.ProtectACKSYN))
	if def.EarlyDrops == 0 {
		t.Skip("no congestion at this scale; bias unobservable")
	}
	if prot.AckDropShare >= def.AckDropShare && def.AckDropShare > 0 {
		t.Errorf("protection did not reduce ACK drop share: %.2f vs %.2f",
			prot.AckDropShare, def.AckDropShare)
	}
}
