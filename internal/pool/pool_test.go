package pool_test

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/pool"
)

func TestRunAllJobs(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 100} {
		var ran atomic.Int64
		out := make([]int, 64)
		p := &pool.Pool{Workers: workers}
		if err := p.Run(context.Background(), len(out), func(i int) {
			out[i] = i + 1
			ran.Add(1)
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ran.Load() != 64 {
			t.Fatalf("workers=%d: ran %d jobs, want 64", workers, ran.Load())
		}
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("workers=%d: slot %d = %d", workers, i, v)
			}
		}
	}
}

func TestOnStartSeesEveryJobOnce(t *testing.T) {
	seen := make([]int, 32)
	p := &pool.Pool{
		Workers: 4,
		OnStart: func(i, done int) {
			seen[i]++ // under the pool lock
			if done < 0 || done >= 32 {
				t.Errorf("done = %d out of range", done)
			}
		},
	}
	if err := p.Run(context.Background(), len(seen), func(i int) {}); err != nil {
		t.Fatal(err)
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("job %d dispatched %d times", i, n)
		}
	}
}

func TestCancelledContextStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	p := &pool.Pool{Workers: 2}
	err := p.Run(ctx, 100, func(i int) { ran.Add(1) })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-cancelled context still ran %d jobs", ran.Load())
	}
}

func TestCancelAfterFullDispatchKeepsResults(t *testing.T) {
	// A cancellation that can no longer skip anything must not discard the
	// completed work: Run returns nil.
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	p := &pool.Pool{Workers: 2}
	err := p.Run(ctx, 8, func(i int) {
		if ran.Add(1) == 8 {
			cancel() // every job dispatched; cancel during the last one
		}
	})
	if err != nil {
		t.Fatalf("err = %v, want nil (no job was skipped)", err)
	}
	if ran.Load() != 8 {
		t.Fatalf("ran %d jobs, want 8", ran.Load())
	}
}

func TestZeroJobs(t *testing.T) {
	p := &pool.Pool{}
	if err := p.Run(context.Background(), 0, func(i int) { t.Fatal("ran") }); err != nil {
		t.Fatal(err)
	}
}
