// Package pool provides the bounded worker pool that every parallel grid in
// the simulator runs on: independent, CPU-bound simulation jobs fanned over a
// fixed number of goroutines, with context cancellation and an in-order
// dispatch hook for progress reporting.
//
// Jobs are dispatched in index order. Because each simulation is
// deterministic and results are written to caller-owned, index-addressed
// slots, outputs are identical for any worker count.
package pool

import (
	"context"
	"runtime"
	"sync"
)

// Pool runs indexed jobs over a bounded set of goroutines.
type Pool struct {
	// Workers bounds concurrency. 0 or negative means GOMAXPROCS; 1 forces
	// serial execution.
	Workers int
	// OnStart, if non-nil, is called under the pool's dispatch lock just
	// before job i runs, with the number of jobs already completed. Callers
	// use it for progress reporting; it must not block.
	OnStart func(i, done int)
}

// Run executes fn(0..n-1), at most p.Workers jobs at a time, and blocks until
// every dispatched job has returned. If ctx is cancelled while jobs remain
// undispatched, those jobs are skipped (in-flight jobs run to completion) and
// ctx.Err() is returned. A cancellation that arrives after every job has been
// dispatched skips nothing, so Run returns nil and the caller keeps the
// complete result set.
func (p *Pool) Run(ctx context.Context, n int, fn func(i int)) error {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var (
		mu      sync.Mutex
		next    int
		done    int
		skipped bool
		wg      sync.WaitGroup
	)
	worker := func() {
		defer wg.Done()
		for {
			mu.Lock()
			if next >= n {
				mu.Unlock()
				return
			}
			if ctx.Err() != nil {
				skipped = true
				mu.Unlock()
				return
			}
			i := next
			next++
			if p.OnStart != nil {
				p.OnStart(i, done)
			}
			mu.Unlock()

			fn(i)

			mu.Lock()
			done++
			mu.Unlock()
		}
	}
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go worker()
	}
	wg.Wait()
	if skipped {
		return ctx.Err()
	}
	return nil
}
