package pool

import (
	"runtime"
	"sync/atomic"
)

// ShardSet is the persistent worker crew behind the sharded event loop: one
// pinned goroutine per shard, released in lockstep rounds by a coordinator.
// The conservative-lookahead loop runs one round per time window, and windows
// are microseconds of simulated time — hundreds of thousands of rounds per
// run — so the release/join cycle must cost well under a mutex+condvar
// handoff. Workers therefore spin on an atomic epoch (yielding to the Go
// scheduler each iteration, so oversubscribed hosts and the race detector
// stay healthy) instead of parking on a sync primitive.
//
// All cross-worker data handoff rides on the epoch/join atomics: writes made
// by the coordinator before Round happen-before the workers' fn, and writes
// made inside fn happen-before Round's return.
type ShardSet struct {
	n       int
	fn      func(shard int)
	epoch   atomic.Uint64
	joined  atomic.Int64
	closing atomic.Bool
}

// NewShardSet starts n worker goroutines that each run fn(shard) once per
// Round. fn must confine itself to shard-owned state plus the single-writer
// handoff lanes the coordinator drains between rounds.
func NewShardSet(n int, fn func(shard int)) *ShardSet {
	s := &ShardSet{n: n, fn: fn}
	for i := 0; i < n; i++ {
		go s.worker(i)
	}
	return s
}

// worker spins for the next epoch, runs the shard body, and reports in.
func (s *ShardSet) worker(shard int) {
	seen := uint64(0)
	for {
		e := s.epoch.Load()
		if e == seen {
			if s.closing.Load() {
				return
			}
			runtime.Gosched()
			continue
		}
		seen = e
		s.fn(shard)
		s.joined.Add(1)
	}
}

// Round releases every worker for one execution of fn and blocks until all
// have finished. It must only be called from the single coordinator
// goroutine.
func (s *ShardSet) Round() {
	s.joined.Store(0)
	s.epoch.Add(1)
	for s.joined.Load() != int64(s.n) {
		runtime.Gosched()
	}
}

// Close terminates the workers. No Round may be issued afterwards.
func (s *ShardSet) Close() { s.closing.Store(true) }
