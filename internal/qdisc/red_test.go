package qdisc

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/units"
)

// testREDConfig returns an instantaneous-mode RED so tests control the
// averaged queue directly through the actual occupancy.
func testREDConfig(capacity int, min, max float64) REDConfig {
	return REDConfig{
		CapacityPackets: capacity,
		MinTh:           min,
		MaxTh:           max,
		MaxP:            0.1,
		Wq:              0.002,
		Instantaneous:   true,
		Gentle:          true,
		ECN:             true,
		DrainRate:       10 * units.Gbps,
		Seed:            1,
	}
}

// fillTo raises the instantaneous queue to n packets with ECT data.
func fillTo(t *testing.T, q *RED, n int) {
	t.Helper()
	id := uint64(1 << 20)
	for q.Len() < n {
		id++
		p := mkData(id)
		if v := q.Enqueue(0, p); v.Dropped() {
			t.Fatalf("could not prefill queue to %d (at %d): %v", n, q.Len(), v)
		}
	}
}

func TestREDBelowMinNeverActs(t *testing.T) {
	q := NewRED(testREDConfig(100, 10, 30))
	for i := 0; i < 9; i++ {
		if v := q.Enqueue(0, mkData(uint64(i))); v != Enqueued {
			t.Fatalf("verdict below min = %v", v)
		}
	}
	for i := 0; i < 9; i++ {
		if v := q.Enqueue(0, mkAck(uint64(100+i))); v != Enqueued {
			t.Fatalf("ACK verdict below min = %v", v)
		}
	}
	marks, early, _ := q.Counters()
	if marks != 0 || early != 0 {
		t.Errorf("marks=%d early=%d below min threshold", marks, early)
	}
}

func TestREDForcedRegionMarksECT(t *testing.T) {
	// Gentle region ends at 2*max: beyond it every ECT packet is marked.
	q := NewRED(testREDConfig(200, 10, 30))
	fillToForced(t, q, 61) // > 2*30
	p := mkData(9999)
	if v := q.Enqueue(0, p); v != EnqueuedMarked {
		t.Fatalf("forced-region ECT verdict = %v, want EnqueuedMarked", v)
	}
	if p.ECN != packet.CE {
		t.Error("marked packet does not carry CE")
	}
}

// fillToForced fills the queue ignoring marks (ECT data is never dropped).
func fillToForced(t *testing.T, q *RED, n int) {
	t.Helper()
	id := uint64(1 << 21)
	for q.Len() < n {
		id++
		if v := q.Enqueue(0, mkData(id)); v.Dropped() {
			t.Fatalf("ECT data dropped while filling: %v", v)
		}
	}
}

func TestREDForcedRegionDropsNonECT_DefaultMode(t *testing.T) {
	// This is the paper's problem: in the forced region the default AQM
	// drops every non-ECT packet — ACKs, ECE-ACKs, SYNs alike.
	q := NewRED(testREDConfig(200, 10, 30))
	fillToForced(t, q, 61)
	if v := q.Enqueue(0, mkAck(1)); v != DroppedEarly {
		t.Errorf("plain ACK verdict = %v, want DroppedEarly", v)
	}
	if v := q.Enqueue(0, mkEceAck(2)); v != DroppedEarly {
		t.Errorf("ECE ACK verdict = %v, want DroppedEarly (default mode)", v)
	}
	if v := q.Enqueue(0, mkSyn(3)); v != DroppedEarly {
		t.Errorf("SYN verdict = %v, want DroppedEarly (default mode)", v)
	}
}

func TestREDProtectECEMode(t *testing.T) {
	// The paper's first proposal: packets whose TCP header carries ECE —
	// congestion echoes, SYNs, SYN-ACKs — survive the early drop.
	cfg := testREDConfig(200, 10, 30)
	cfg.Protect = ProtectECE
	q := NewRED(cfg)
	fillToForced(t, q, 61)
	if v := q.Enqueue(0, mkEceAck(1)); v != Enqueued {
		t.Errorf("ECE ACK verdict = %v, want Enqueued (protected)", v)
	}
	if v := q.Enqueue(0, mkSyn(2)); v != Enqueued {
		t.Errorf("SYN verdict = %v, want Enqueued (protected)", v)
	}
	// Plain ACKs are still dropped in this mode.
	if v := q.Enqueue(0, mkAck(3)); v != DroppedEarly {
		t.Errorf("plain ACK verdict = %v, want DroppedEarly (unprotected)", v)
	}
}

func TestREDProtectACKSYNMode(t *testing.T) {
	// The paper's second mode: every pure ACK and SYN survives.
	cfg := testREDConfig(200, 10, 30)
	cfg.Protect = ProtectACKSYN
	q := NewRED(cfg)
	fillToForced(t, q, 61)
	for i, p := range []*packet.Packet{mkAck(1), mkEceAck(2), mkSyn(3)} {
		if v := q.Enqueue(0, p); v != Enqueued {
			t.Errorf("packet %d verdict = %v, want Enqueued", i, v)
		}
	}
	// Non-ECT data (plain TCP through an ECN queue) is NOT protected.
	if v := q.Enqueue(0, mkPlainData(4)); v != DroppedEarly {
		t.Errorf("non-ECT data verdict = %v, want DroppedEarly", v)
	}
}

func TestREDProtectedPacketsStillTailDrop(t *testing.T) {
	// Protection never overrides the physical buffer: a full queue drops
	// everything.
	cfg := testREDConfig(50, 10, 30)
	cfg.Protect = ProtectACKSYN
	q := NewRED(cfg)
	fillToForced(t, q, 50)
	if v := q.Enqueue(0, mkAck(1)); v != DroppedOverflow {
		t.Errorf("verdict at full buffer = %v, want DroppedOverflow", v)
	}
}

func TestREDWithoutECNDropsECTToo(t *testing.T) {
	cfg := testREDConfig(200, 10, 30)
	cfg.ECN = false
	q := NewRED(cfg)
	// Fill to the forced region; without ECN the fill itself sheds packets,
	// so count verdicts instead.
	dropped := false
	for i := 0; i < 100; i++ {
		if q.Enqueue(0, mkData(uint64(i))).Dropped() {
			dropped = true
		}
	}
	if !dropped {
		t.Error("RED without ECN never dropped ECT data under pressure")
	}
	marks, _, _ := q.Counters()
	if marks != 0 {
		t.Errorf("RED without ECN marked %d packets", marks)
	}
}

func TestREDProbabilisticRegionMarksSomeNotAll(t *testing.T) {
	// Hold the queue between min and max: ECT packets should be marked at
	// a rate strictly between 0 and 100%.
	q := NewRED(testREDConfig(400, 10, 300))
	fillTo(t, q, 100)
	marked, total := 0, 2000
	for i := 0; i < total; i++ {
		p := mkData(uint64(1e6 + float64(i)))
		v := q.Enqueue(0, p)
		if v == EnqueuedMarked {
			marked++
		}
		q.Dequeue(0) // hold occupancy constant
	}
	if marked == 0 {
		t.Error("no marks in probabilistic region")
	}
	if marked == total {
		t.Error("every packet marked in probabilistic region")
	}
}

func TestREDMarkingRateGrowsWithOccupancy(t *testing.T) {
	rate := func(depth int) float64 {
		q := NewRED(testREDConfig(1000, 10, 600))
		fillTo(t, q, depth)
		marked := 0
		const total = 3000
		for i := 0; i < total; i++ {
			if q.Enqueue(0, mkData(uint64(1e6+float64(i)))) == EnqueuedMarked {
				marked++
			}
			q.Dequeue(0)
		}
		return float64(marked) / total
	}
	low, high := rate(50), rate(400)
	if low >= high {
		t.Errorf("marking rate not increasing: %.3f at depth 50 vs %.3f at depth 400", low, high)
	}
}

func TestREDEWMASmoothsBursts(t *testing.T) {
	// In averaged mode a short burst must not immediately trigger marking,
	// even though the instantaneous queue crosses min.
	cfg := testREDConfig(500, 10, 50)
	cfg.Instantaneous = false
	cfg.Wq = 0.002
	q := NewRED(cfg)
	for i := 0; i < 40; i++ {
		if v := q.Enqueue(0, mkData(uint64(i))); v != Enqueued {
			t.Fatalf("burst packet %d got %v; EWMA should lag the burst", i, v)
		}
	}
	if q.AvgQueue() >= 10 {
		t.Errorf("avg = %.2f after 40-packet burst, want < min threshold 10", q.AvgQueue())
	}
}

func TestREDIdleDecay(t *testing.T) {
	cfg := testREDConfig(500, 10, 50)
	cfg.Instantaneous = false
	cfg.Wq = 0.5 // fast EWMA so the test converges quickly
	q := NewRED(cfg)
	for i := 0; i < 100; i++ {
		q.Enqueue(0, mkData(uint64(i)))
	}
	avgBefore := q.AvgQueue()
	// Drain completely, then wait a long idle period.
	for q.Dequeue(1000) != nil {
	}
	q.Enqueue(units.Time(10*units.Millisecond), mkData(1000))
	if q.AvgQueue() >= avgBefore/2 {
		t.Errorf("avg did not decay across idle: before=%.1f after=%.1f", avgBefore, q.AvgQueue())
	}
}

func TestREDForTargetDelayDerivesThresholds(t *testing.T) {
	cfg := REDForTargetDelay(699, 10*units.Gbps, 500*units.Microsecond)
	// 500µs/2 at 10 Gbps is ~206 full packets.
	if cfg.MinTh < 190 || cfg.MinTh > 220 {
		t.Errorf("MinTh = %.1f, want ~206", cfg.MinTh)
	}
	if cfg.MaxTh != 3*cfg.MinTh && cfg.MaxTh != float64(699) {
		t.Errorf("MaxTh = %.1f, want 3*min capped at capacity", cfg.MaxTh)
	}
	// A huge target delay saturates at the buffer size.
	cfg2 := REDForTargetDelay(699, 10*units.Gbps, 100*units.Millisecond)
	if cfg2.MaxTh > 699 {
		t.Errorf("MaxTh = %.1f exceeds capacity", cfg2.MaxTh)
	}
	if cfg2.MinTh > cfg2.MaxTh {
		t.Errorf("MinTh %.1f > MaxTh %.1f", cfg2.MinTh, cfg2.MaxTh)
	}
}

func TestREDByteMode(t *testing.T) {
	// Per-byte thresholds: forty 1500-byte packets trip a 30KB threshold,
	// but hundreds of 40-byte ACKs do not. This is the ablation for the
	// paper's per-packet-threshold observation.
	cfg := testREDConfig(10000, 30000, 90000)
	cfg.ByteMode = true
	q := NewRED(cfg)
	for i := 0; i < 700; i++ {
		if v := q.Enqueue(0, mkAck(uint64(i))); v != Enqueued {
			t.Fatalf("ACK %d dropped at %d queued bytes in byte mode", i, q.BytesQueued())
		}
	}
	// 700 ACKs = 28KB < 30KB: no action. Now data fills bytes fast.
	sawMark := false
	for i := 0; i < 100; i++ {
		if q.Enqueue(0, mkData(uint64(1000+i))) == EnqueuedMarked {
			sawMark = true
		}
	}
	if !sawMark {
		t.Error("byte-mode RED never marked despite byte pressure")
	}
}

func TestREDValidation(t *testing.T) {
	bad := []REDConfig{
		{},
		{CapacityPackets: 10, MinTh: 0, MaxTh: 5, MaxP: 0.1, Wq: 0.002, DrainRate: 1},
		{CapacityPackets: 10, MinTh: 6, MaxTh: 5, MaxP: 0.1, Wq: 0.002, DrainRate: 1},
		{CapacityPackets: 10, MinTh: 1, MaxTh: 5, MaxP: 0, Wq: 0.002, DrainRate: 1},
		{CapacityPackets: 10, MinTh: 1, MaxTh: 5, MaxP: 0.1, Wq: 0, DrainRate: 1},
		{CapacityPackets: 10, MinTh: 1, MaxTh: 5, MaxP: 0.1, Wq: 0.002, DrainRate: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated but is invalid", i)
		}
	}
	good := DefaultREDConfig(100, 10*units.Gbps)
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestREDName(t *testing.T) {
	tests := []struct {
		mode ProtectMode
		want string
	}{
		{ProtectNone, "red"},
		{ProtectECE, "red+ece-bit"},
		{ProtectACKSYN, "red+ack+syn"},
	}
	for _, tt := range tests {
		cfg := testREDConfig(100, 10, 30)
		cfg.Protect = tt.mode
		if got := NewRED(cfg).Name(); got != tt.want {
			t.Errorf("Name with %v = %q, want %q", tt.mode, got, tt.want)
		}
	}
}

func TestProtectModeString(t *testing.T) {
	if ProtectNone.String() != "default" || ProtectECE.String() != "ece-bit" || ProtectACKSYN.String() != "ack+syn" {
		t.Error("ProtectMode names drifted from the paper's labels")
	}
}

func TestREDDeterministicGivenSeed(t *testing.T) {
	run := func() []Verdict {
		q := NewRED(testREDConfig(100, 5, 20))
		var out []Verdict
		for i := 0; i < 500; i++ {
			out = append(out, q.Enqueue(0, mkAck(uint64(i))))
			if i%3 == 0 {
				q.Dequeue(0)
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs across identical runs", i)
		}
	}
}

func TestREDSnapshotExposesQueue(t *testing.T) {
	q := NewRED(testREDConfig(100, 50, 90))
	q.Enqueue(0, mkData(1))
	q.Enqueue(0, mkAck(2))
	snap := q.Snapshot()
	if len(snap) != 2 || snap[0].ID != 1 || snap[1].ID != 2 {
		t.Errorf("snapshot = %v", snap)
	}
}
