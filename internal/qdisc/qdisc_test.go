package qdisc

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/units"
)

// mkData returns an ECT-capable data packet (as an ECN sender emits).
func mkData(id uint64) *packet.Packet {
	return &packet.Packet{ID: id, Flags: packet.FlagACK, Payload: 1460, ECN: packet.ECT0}
}

// mkPlainData returns a non-ECT data packet (plain TCP).
func mkPlainData(id uint64) *packet.Packet {
	return &packet.Packet{ID: id, Flags: packet.FlagACK, Payload: 1460}
}

// mkAck returns a pure ACK (never ECT).
func mkAck(id uint64) *packet.Packet {
	return &packet.Packet{ID: id, Flags: packet.FlagACK, Wire: 40}
}

// mkEceAck returns a pure ACK carrying the ECN-Echo flag.
func mkEceAck(id uint64) *packet.Packet {
	return &packet.Packet{ID: id, Flags: packet.FlagACK | packet.FlagECE, Wire: 40}
}

// mkSyn returns an ECN-setup SYN (ECE|CWR on the TCP header, Non-ECT IP).
func mkSyn(id uint64) *packet.Packet {
	return &packet.Packet{ID: id, Flags: packet.FlagSYN | packet.FlagECE | packet.FlagCWR, Wire: 40}
}

func TestFIFOOrdering(t *testing.T) {
	f := newFIFO(4)
	for i := 0; i < 100; i++ {
		f.push(mkData(uint64(i)))
	}
	for i := 0; i < 100; i++ {
		p := f.pop()
		if p == nil || p.ID != uint64(i) {
			t.Fatalf("pop %d: got %v", i, p)
		}
	}
	if f.pop() != nil {
		t.Error("pop on empty returned a packet")
	}
}

func TestFIFOInterleavedGrowth(t *testing.T) {
	f := newFIFO(2)
	next, expect := uint64(0), uint64(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			f.push(mkData(next))
			next++
		}
		for i := 0; i < 2; i++ {
			p := f.pop()
			if p.ID != expect {
				t.Fatalf("expected %d, got %d", expect, p.ID)
			}
			expect++
		}
	}
	if f.bytes != units.ByteSize(f.count)*1500 {
		t.Errorf("byte accounting drifted: %d bytes for %d packets", f.bytes, f.count)
	}
}

func TestFIFOSnapshot(t *testing.T) {
	f := newFIFO(2)
	for i := 0; i < 5; i++ {
		f.push(mkData(uint64(i)))
	}
	f.pop()
	snap := f.snapshot(nil)
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	for i, p := range snap {
		if p.ID != uint64(i+1) {
			t.Errorf("snapshot[%d].ID = %d, want %d", i, p.ID, i+1)
		}
	}
}

func TestVerdictPredicates(t *testing.T) {
	if Enqueued.Dropped() || EnqueuedMarked.Dropped() {
		t.Error("accept verdicts report Dropped")
	}
	if !DroppedEarly.Dropped() || !DroppedOverflow.Dropped() {
		t.Error("drop verdicts do not report Dropped")
	}
	names := map[Verdict]string{
		Enqueued: "enqueued", EnqueuedMarked: "enqueued+marked",
		DroppedEarly: "dropped-early", DroppedOverflow: "dropped-overflow",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("Verdict(%d).String() = %q, want %q", v, v.String(), want)
		}
	}
}

// Conservation property: every packet offered to a queue is either dropped
// at enqueue or eventually dequeued, exactly once.
func TestConservationProperty(t *testing.T) {
	disciplines := map[string]func() Qdisc{
		"droptail": func() Qdisc { return NewDropTail(16) },
		"red": func() Qdisc {
			cfg := DefaultREDConfig(16, 10*units.Gbps)
			cfg.Seed = 42
			return NewRED(cfg)
		},
		"simplemark": func() Qdisc { return NewSimpleMark(16, 4) },
	}
	for name, mk := range disciplines {
		t.Run(name, func(t *testing.T) {
			f := func(ops []bool, seed uint64) bool {
				q := mk()
				var id, enq, drop, deq uint64
				now := units.Time(0)
				for _, isEnq := range ops {
					now = now.Add(100 * units.Nanosecond)
					if isEnq {
						id++
						v := q.Enqueue(now, mkData(id))
						if v.Dropped() {
							drop++
						} else {
							enq++
						}
					} else if q.Dequeue(now) != nil {
						deq++
					}
				}
				for q.Dequeue(now) != nil {
					deq++
				}
				return enq == deq && q.Len() == 0
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestQueueByteAccounting(t *testing.T) {
	for _, q := range []Qdisc{
		NewDropTail(100),
		NewRED(func() REDConfig { c := DefaultREDConfig(100, 10*units.Gbps); return c }()),
		NewSimpleMark(100, 50),
	} {
		t.Run(q.Name(), func(t *testing.T) {
			now := units.Time(1000)
			q.Enqueue(now, mkData(1))
			q.Enqueue(now, mkAck(2))
			wantBytes := units.ByteSize(1500 + 40)
			if q.BytesQueued() != wantBytes {
				t.Errorf("BytesQueued = %d, want %d", q.BytesQueued(), wantBytes)
			}
			if q.Len() != 2 {
				t.Errorf("Len = %d, want 2", q.Len())
			}
			q.Dequeue(now)
			if q.BytesQueued() != 40 {
				t.Errorf("BytesQueued after dequeue = %d, want 40", q.BytesQueued())
			}
		})
	}
}

// TestConservationWithHeadDrops extends the conservation property to
// disciplines that drop at dequeue time (CoDel): enqueued = dequeued +
// head-dropped.
func TestConservationWithHeadDrops(t *testing.T) {
	mk := func() (Qdisc, *int) {
		cfg := DefaultCoDelConfig(64, 50*units.Microsecond)
		q := NewCoDel(cfg)
		headDrops := 0
		q.SetHeadDropCallback(func(p *packet.Packet) { headDrops++ })
		return q, &headDrops
	}
	f := func(ops []bool) bool {
		q, headDrops := mk()
		var enq, tail, deq int
		now := units.Time(0)
		id := uint64(0)
		for _, isEnq := range ops {
			now = now.Add(200 * units.Microsecond)
			if isEnq {
				id++
				// Alternate ECT data and ACKs so head drops can happen.
				var p *packet.Packet
				if id%2 == 0 {
					p = mkData(id)
				} else {
					p = mkAck(id)
				}
				if q.Enqueue(now, p).Dropped() {
					tail++
				} else {
					enq++
				}
			} else if q.Dequeue(now) != nil {
				deq++
			}
		}
		for q.Dequeue(now) != nil {
			deq++
		}
		return enq == deq+*headDrops && q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPIEConservationProperty is the same property for PIE (enqueue drops
// only).
func TestPIEConservationProperty(t *testing.T) {
	f := func(ops []bool, seed uint64) bool {
		cfg := DefaultPIEConfig(64, 10*units.Gbps, 50*units.Microsecond)
		cfg.Seed = seed
		q := NewPIE(cfg)
		var enq, deq int
		now := units.Time(0)
		id := uint64(0)
		for _, isEnq := range ops {
			now = now.Add(100 * units.Microsecond)
			if isEnq {
				id++
				if !q.Enqueue(now, mkData(id)).Dropped() {
					enq++
				}
			} else if q.Dequeue(now) != nil {
				deq++
			}
		}
		for q.Dequeue(now) != nil {
			deq++
		}
		return enq == deq && q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
