package qdisc

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/units"
)

func TestDropTailAcceptsUntilFull(t *testing.T) {
	q := NewDropTail(3)
	now := units.Time(0)
	for i := 0; i < 3; i++ {
		if v := q.Enqueue(now, mkData(uint64(i))); v != Enqueued {
			t.Fatalf("enqueue %d: verdict %v", i, v)
		}
	}
	if v := q.Enqueue(now, mkData(4)); v != DroppedOverflow {
		t.Errorf("overflow verdict = %v, want DroppedOverflow", v)
	}
	if q.Len() != 3 {
		t.Errorf("Len = %d, want 3", q.Len())
	}
}

func TestDropTailNeverMarks(t *testing.T) {
	q := NewDropTail(100)
	now := units.Time(0)
	for i := 0; i < 100; i++ {
		p := mkData(uint64(i))
		if v := q.Enqueue(now, p); v == EnqueuedMarked {
			t.Fatal("DropTail marked a packet")
		}
		if p.ECN != packet.ECT0 {
			t.Fatal("DropTail modified the ECN field")
		}
	}
}

func TestDropTailFreesSpaceOnDequeue(t *testing.T) {
	q := NewDropTail(2)
	now := units.Time(0)
	q.Enqueue(now, mkData(1))
	q.Enqueue(now, mkData(2))
	if v := q.Enqueue(now, mkData(3)); v != DroppedOverflow {
		t.Fatal("expected overflow")
	}
	q.Dequeue(now)
	if v := q.Enqueue(now, mkData(4)); v != Enqueued {
		t.Errorf("after dequeue, verdict = %v, want Enqueued", v)
	}
}

func TestDropTailPeek(t *testing.T) {
	q := NewDropTail(10)
	if q.Peek() != nil {
		t.Error("Peek on empty != nil")
	}
	q.Enqueue(0, mkData(7))
	if q.Peek() == nil || q.Peek().ID != 7 {
		t.Error("Peek did not return head")
	}
	if q.Len() != 1 {
		t.Error("Peek consumed the packet")
	}
}

func TestDropTailStampsEnqueuedAt(t *testing.T) {
	q := NewDropTail(10)
	p := mkData(1)
	q.Enqueue(12345, p)
	if p.EnqueuedAt != 12345 {
		t.Errorf("EnqueuedAt = %v, want 12345", p.EnqueuedAt)
	}
}

func TestDropTailInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDropTail(0)
}

func TestDropTailMetadata(t *testing.T) {
	q := NewDropTail(42)
	if q.Name() != "droptail" {
		t.Errorf("Name = %q", q.Name())
	}
	if q.CapacityPackets() != 42 {
		t.Errorf("CapacityPackets = %d", q.CapacityPackets())
	}
}
