package qdisc

import (
	"repro/internal/packet"
	"repro/internal/units"
)

// DropTail is the classic FIFO queue that accepts every packet until the
// physical buffer is full, then drops arrivals. It is the baseline every
// result in the paper is normalized against.
type DropTail struct {
	q        *fifo
	capacity int // packets
}

// NewDropTail builds a DropTail queue holding at most capacity packets.
func NewDropTail(capacity int) *DropTail {
	if capacity <= 0 {
		panic("qdisc: DropTail capacity must be positive")
	}
	return &DropTail{q: newFIFO(capacity), capacity: capacity}
}

// Enqueue implements Qdisc.
func (d *DropTail) Enqueue(now units.Time, p *packet.Packet) Verdict {
	if d.q.count >= d.capacity {
		return DroppedOverflow
	}
	p.EnqueuedAt = now
	d.q.push(p)
	return Enqueued
}

// Dequeue implements Qdisc.
func (d *DropTail) Dequeue(now units.Time) *packet.Packet { return d.q.pop() }

// Peek implements Qdisc.
func (d *DropTail) Peek() *packet.Packet { return d.q.peek() }

// Len implements Qdisc.
func (d *DropTail) Len() int { return d.q.count }

// BytesQueued implements Qdisc.
func (d *DropTail) BytesQueued() units.ByteSize { return d.q.bytes }

// CapacityPackets implements Qdisc.
func (d *DropTail) CapacityPackets() int { return d.capacity }

// Name implements Qdisc.
func (d *DropTail) Name() string { return "droptail" }

// Snapshot implements Snapshotter.
func (d *DropTail) Snapshot() []*packet.Packet { return d.q.snapshot(nil) }
