package qdisc

import (
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/units"
)

// PIEConfig parameterizes a PIE queue (Proportional Integral controller
// Enhanced, RFC 8033). PIE estimates queueing delay from the queue length
// and drain rate and adjusts a drop probability with a PI controller so the
// delay converges to a target. With ECN, ECT packets under the probability
// are marked instead of dropped; non-ECT packets are dropped — the same
// asymmetry as RED, so the paper's protection modes apply.
type PIEConfig struct {
	// CapacityPackets is the physical buffer.
	CapacityPackets int
	// Target is the queueing-delay setpoint (RFC suggests 15 ms for the
	// internet; datacenters run far lower).
	Target units.Duration
	// TUpdate is the control-law update period (RFC: 15 ms).
	TUpdate units.Duration
	// Alpha and Beta are the PI gains in units of probability per second of
	// delay error (RFC 8033 section 4.2: 0.125 and 1.25).
	Alpha, Beta float64
	// DrainRate estimates the egress rate for the delay computation.
	DrainRate units.Bandwidth
	// ECN marks ECT packets instead of dropping them.
	ECN bool
	// Protect shields the paper's packet classes.
	Protect ProtectMode
	// Seed drives the probabilistic drop decisions.
	Seed uint64
}

// DefaultPIEConfig returns datacenter-flavoured parameters. The RFC's gains
// (0.125, 1.25) are calibrated for its 15 ms reference target; a controller
// chasing a microsecond-scale target sees delay errors three orders of
// magnitude smaller, so the gains scale up inversely with the target to keep
// the loop dynamics equivalent.
func DefaultPIEConfig(capacity int, rate units.Bandwidth, target units.Duration) PIEConfig {
	const refTarget = 15 * units.Millisecond
	scale := float64(refTarget) / float64(target)
	if scale < 1 {
		scale = 1
	}
	return PIEConfig{
		CapacityPackets: capacity,
		Target:          target,
		TUpdate:         4 * target,
		Alpha:           0.125 * scale,
		Beta:            1.25 * scale,
		DrainRate:       rate,
		ECN:             true,
	}
}

// Validate reports a configuration error, or nil.
func (c *PIEConfig) Validate() error {
	switch {
	case c.CapacityPackets <= 0:
		return errCapacity("PIE", c.CapacityPackets)
	case c.Target <= 0 || c.TUpdate <= 0:
		return errParam("PIE", "target/tupdate must be positive")
	case c.Alpha <= 0 || c.Beta <= 0:
		return errParam("PIE", "gains must be positive")
	case c.DrainRate <= 0:
		return errParam("PIE", "drain rate must be positive")
	}
	return nil
}

// PIE is the RFC 8033 AQM with ECN and protection modes. The controller
// updates lazily on enqueue when TUpdate has elapsed, which in a
// discrete-event simulation is equivalent to a timer at much lower cost.
type PIE struct {
	cfg  PIEConfig
	q    *fifo
	rand *rng.Source

	prob       float64
	lastUpdate units.Time
	lastDelay  units.Duration

	marks, earlyDrops, overflowDrops uint64
}

// NewPIE builds a PIE queue; it panics on invalid configuration.
func NewPIE(cfg PIEConfig) *PIE {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &PIE{cfg: cfg, q: newFIFO(cfg.CapacityPackets), rand: rng.New(cfg.Seed ^ 0x50e1)}
}

// Config returns the configuration.
func (p *PIE) Config() PIEConfig { return p.cfg }

// queueDelay estimates current queueing delay from backlog and drain rate.
func (p *PIE) queueDelay() units.Duration {
	return p.cfg.DrainRate.TransmitTime(p.q.bytes)
}

// update advances the PI controller if a period elapsed.
func (p *PIE) update(now units.Time) {
	if p.lastUpdate != 0 && now.Sub(p.lastUpdate) < p.cfg.TUpdate {
		return
	}
	delay := p.queueDelay()
	dErr := (delay - p.cfg.Target).Seconds()
	dTrend := (delay - p.lastDelay).Seconds()
	// RFC 8033: scale gains down while the probability is small, so the
	// controller is gentle near zero.
	scale := 1.0
	switch {
	case p.prob < 0.000001:
		scale = 1.0 / 2048
	case p.prob < 0.00001:
		scale = 1.0 / 512
	case p.prob < 0.0001:
		scale = 1.0 / 128
	case p.prob < 0.001:
		scale = 1.0 / 32
	case p.prob < 0.01:
		scale = 1.0 / 8
	case p.prob < 0.1:
		scale = 1.0 / 2
	}
	p.prob += scale * (p.cfg.Alpha*dErr + p.cfg.Beta*dTrend)
	if p.prob < 0 {
		p.prob = 0
	}
	if p.prob > 1 {
		p.prob = 1
	}
	// Decay when idle.
	if delay == 0 && p.lastDelay == 0 {
		p.prob *= 0.98
	}
	p.lastDelay = delay
	p.lastUpdate = now
}

// Enqueue implements Qdisc.
func (p *PIE) Enqueue(now units.Time, pkt *packet.Packet) Verdict {
	if p.q.count >= p.cfg.CapacityPackets {
		p.overflowDrops++
		return DroppedOverflow
	}
	p.update(now)
	// Safeguards from the RFC: never act when the queue is nearly empty.
	act := p.prob > 0 && p.queueDelay() > p.cfg.Target/2 && p.q.count > 2
	if act && p.rand.Float64() < p.prob {
		switch {
		case p.cfg.ECN && pkt.ECN.ECTCapable() && p.prob < 0.1:
			// RFC 8033 section 5.1: mark ECT packets while the
			// probability is moderate; beyond 10% even ECT is dropped.
			pkt.Mark()
			p.marks++
			pkt.EnqueuedAt = now
			p.q.push(pkt)
			return EnqueuedMarked
		case p.cfg.ECN && p.cfg.Protect.protects(pkt):
			pkt.EnqueuedAt = now
			p.q.push(pkt)
			return Enqueued
		case p.cfg.ECN && pkt.ECN.ECTCapable():
			// High-probability regime: drop even ECT.
			p.earlyDrops++
			return DroppedEarly
		default:
			p.earlyDrops++
			return DroppedEarly
		}
	}
	pkt.EnqueuedAt = now
	p.q.push(pkt)
	return Enqueued
}

// Dequeue implements Qdisc.
func (p *PIE) Dequeue(now units.Time) *packet.Packet { return p.q.pop() }

// Peek implements Qdisc.
func (p *PIE) Peek() *packet.Packet { return p.q.peek() }

// Len implements Qdisc.
func (p *PIE) Len() int { return p.q.count }

// BytesQueued implements Qdisc.
func (p *PIE) BytesQueued() units.ByteSize { return p.q.bytes }

// CapacityPackets implements Qdisc.
func (p *PIE) CapacityPackets() int { return p.cfg.CapacityPackets }

// Name implements Qdisc.
func (p *PIE) Name() string {
	if p.cfg.Protect == ProtectNone {
		return "pie"
	}
	return "pie+" + p.cfg.Protect.String()
}

// Prob returns the current drop/mark probability (diagnostics).
func (p *PIE) Prob() float64 { return p.prob }

// Counters returns (marks, earlyDrops, overflowDrops).
func (p *PIE) Counters() (marks, early, overflow uint64) {
	return p.marks, p.earlyDrops, p.overflowDrops
}

// Snapshot implements Snapshotter.
func (p *PIE) Snapshot() []*packet.Packet { return p.q.snapshot(nil) }
