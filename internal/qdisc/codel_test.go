package qdisc

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/units"
)

func testCoDel(protect ProtectMode) *CoDel {
	cfg := DefaultCoDelConfig(1000, 100*units.Microsecond)
	cfg.Protect = protect
	return NewCoDel(cfg)
}

// drainAt dequeues every packet with the given per-packet service time,
// returning survivors.
func drainAt(q Qdisc, start units.Time, perPkt units.Duration) []*packet.Packet {
	var out []*packet.Packet
	now := start
	for {
		p := q.Dequeue(now)
		if p == nil && q.Len() == 0 {
			return out
		}
		if p != nil {
			out = append(out, p)
		}
		now = now.Add(perPkt)
	}
}

func TestCoDelNoActionBelowTarget(t *testing.T) {
	q := testCoDel(ProtectNone)
	for i := 0; i < 20; i++ {
		q.Enqueue(units.Time(i), mkData(uint64(i)))
	}
	// Dequeue immediately: sojourn ~0, no marks or drops.
	got := drainAt(q, units.Time(25), 1*units.Microsecond)
	if len(got) != 20 {
		t.Fatalf("delivered %d/20", len(got))
	}
	marks, early, _ := q.Counters()
	if marks != 0 || early != 0 {
		t.Errorf("acted below target: marks=%d drops=%d", marks, early)
	}
}

func TestCoDelMarksECTUnderStandingQueue(t *testing.T) {
	q := testCoDel(ProtectNone)
	// Enqueue at t=0, dequeue starting 50ms later: sojourn huge, and the
	// slow drain keeps it above target past the interval.
	for i := 0; i < 200; i++ {
		q.Enqueue(0, mkData(uint64(i)))
	}
	start := units.Time(50 * units.Millisecond)
	_ = drainAt(q, start, 100*units.Microsecond)
	marks, early, _ := q.Counters()
	if marks == 0 {
		t.Error("CoDel never marked under a standing queue")
	}
	if early != 0 {
		t.Errorf("CoDel dropped %d ECT packets with ECN on", early)
	}
}

func TestCoDelDropsNonECTUnderStandingQueue(t *testing.T) {
	q := testCoDel(ProtectNone)
	for i := 0; i < 200; i++ {
		q.Enqueue(0, mkAck(uint64(i)))
	}
	start := units.Time(50 * units.Millisecond)
	survivors := drainAt(q, start, 100*units.Microsecond)
	_, early, _ := q.Counters()
	if early == 0 {
		t.Error("CoDel never dropped non-ECT packets under a standing queue")
	}
	if len(survivors)+int(early) != 200 {
		t.Errorf("conservation broken: %d out + %d dropped != 200", len(survivors), early)
	}
}

func TestCoDelProtectionShieldsClasses(t *testing.T) {
	tests := []struct {
		name    string
		protect ProtectMode
		mk      func(uint64) *packet.Packet
		saved   bool
	}{
		{"ece mode saves ece-acks", ProtectECE, mkEceAck, true},
		{"ece mode saves syns", ProtectECE, mkSyn, true},
		{"ece mode abandons plain acks", ProtectECE, mkAck, false},
		{"ack+syn saves plain acks", ProtectACKSYN, mkAck, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			q := testCoDel(tt.protect)
			for i := 0; i < 200; i++ {
				q.Enqueue(0, tt.mk(uint64(i)))
			}
			drainAt(q, units.Time(50*units.Millisecond), 100*units.Microsecond)
			_, early, _ := q.Counters()
			if tt.saved && early != 0 {
				t.Errorf("%d protected packets dropped", early)
			}
			if !tt.saved && early == 0 {
				t.Error("unprotected packets were never dropped")
			}
		})
	}
}

func TestCoDelOverflowStillTailDrops(t *testing.T) {
	cfg := DefaultCoDelConfig(10, 100*units.Microsecond)
	q := NewCoDel(cfg)
	for i := 0; i < 10; i++ {
		if v := q.Enqueue(0, mkData(uint64(i))); v.Dropped() {
			t.Fatal("dropped before full")
		}
	}
	if v := q.Enqueue(0, mkData(99)); v != DroppedOverflow {
		t.Errorf("verdict = %v, want overflow", v)
	}
}

func TestCoDelRecoversAfterQueueEmpties(t *testing.T) {
	q := testCoDel(ProtectNone)
	for i := 0; i < 100; i++ {
		q.Enqueue(0, mkData(uint64(i)))
	}
	drainAt(q, units.Time(50*units.Millisecond), 100*units.Microsecond)
	marksBefore, _, _ := q.Counters()
	// New, uncongested traffic must pass unmarked.
	now := units.Time(200 * units.Millisecond)
	q.Enqueue(now, mkData(1000))
	p := q.Dequeue(now.Add(1 * units.Microsecond))
	if p == nil {
		t.Fatal("packet lost")
	}
	if p.ECN == packet.CE {
		t.Error("packet marked after congestion cleared")
	}
	marksAfter, _, _ := q.Counters()
	if marksAfter != marksBefore {
		t.Error("mark counter moved for uncongested traffic")
	}
}

func TestCoDelValidation(t *testing.T) {
	bad := []CoDelConfig{
		{},
		{CapacityPackets: 10, Target: 0, Interval: 1},
		{CapacityPackets: 10, Target: 1, Interval: 0},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("config %d validated", i)
		}
	}
	good := DefaultCoDelConfig(100, time100us())
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
}

func time100us() units.Duration { return 100 * units.Microsecond }

func TestCoDelName(t *testing.T) {
	if testCoDel(ProtectNone).Name() != "codel" {
		t.Error("name drifted")
	}
	if testCoDel(ProtectACKSYN).Name() != "codel+ack+syn" {
		t.Error("protected name drifted")
	}
}
