package qdisc

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/units"
)

// SimpleMark is the "true simple marking scheme" the paper proposes as its
// second solution (and the scheme the original DCTCP paper assumed): a
// single threshold K on the *instantaneous* queue length. An arriving
// ECT-capable packet is CE-marked if the queue holds at least K packets.
// Nothing is ever dropped early — drops happen only when the physical buffer
// overflows, exactly as in DropTail.
type SimpleMark struct {
	q              *fifo
	capacity       int
	threshold      int // K, in packets
	byteMode       bool
	thresholdBytes units.ByteSize

	marks, overflowDrops uint64
}

// NewSimpleMark builds a marking queue with physical capacity packets and
// marking threshold k packets.
func NewSimpleMark(capacity, k int) *SimpleMark {
	if capacity <= 0 {
		panic("qdisc: SimpleMark capacity must be positive")
	}
	if k <= 0 || k > capacity {
		panic(fmt.Sprintf("qdisc: SimpleMark threshold %d out of (0,%d]", k, capacity))
	}
	return &SimpleMark{q: newFIFO(capacity), capacity: capacity, threshold: k}
}

// NewSimpleMarkBytes builds a marking queue whose threshold is expressed in
// bytes (per-byte accounting ablation).
func NewSimpleMarkBytes(capacity int, k units.ByteSize) *SimpleMark {
	if capacity <= 0 {
		panic("qdisc: SimpleMark capacity must be positive")
	}
	if k <= 0 {
		panic("qdisc: SimpleMark byte threshold must be positive")
	}
	return &SimpleMark{q: newFIFO(capacity), capacity: capacity, byteMode: true, thresholdBytes: k, threshold: 1}
}

// SimpleMarkForTargetDelay derives the threshold K from a target queueing
// delay at the given drain rate: K = packets drained in target time.
func SimpleMarkForTargetDelay(capacity int, rate units.Bandwidth, target units.Duration) *SimpleMark {
	pktTime := rate.TransmitTime(packet.HeaderSize + packet.DefaultMSS)
	k := int(float64(target) / float64(pktTime))
	if k < 1 {
		k = 1
	}
	if k > capacity {
		k = capacity
	}
	return NewSimpleMark(capacity, k)
}

// Threshold returns K in packets (0 if byte mode).
func (s *SimpleMark) Threshold() int {
	if s.byteMode {
		return 0
	}
	return s.threshold
}

// Enqueue implements Qdisc.
func (s *SimpleMark) Enqueue(now units.Time, p *packet.Packet) Verdict {
	if s.q.count >= s.capacity {
		s.overflowDrops++
		return DroppedOverflow
	}
	over := false
	if s.byteMode {
		over = s.q.bytes >= s.thresholdBytes
	} else {
		over = s.q.count >= s.threshold
	}
	verdict := Enqueued
	if over && p.ECN.ECTCapable() {
		p.Mark()
		s.marks++
		verdict = EnqueuedMarked
	}
	p.EnqueuedAt = now
	s.q.push(p)
	return verdict
}

// Dequeue implements Qdisc.
func (s *SimpleMark) Dequeue(now units.Time) *packet.Packet { return s.q.pop() }

// Peek implements Qdisc.
func (s *SimpleMark) Peek() *packet.Packet { return s.q.peek() }

// Len implements Qdisc.
func (s *SimpleMark) Len() int { return s.q.count }

// BytesQueued implements Qdisc.
func (s *SimpleMark) BytesQueued() units.ByteSize { return s.q.bytes }

// CapacityPackets implements Qdisc.
func (s *SimpleMark) CapacityPackets() int { return s.capacity }

// Name implements Qdisc.
func (s *SimpleMark) Name() string { return "simplemark" }

// Counters returns (marks, overflowDrops).
func (s *SimpleMark) Counters() (marks, overflow uint64) { return s.marks, s.overflowDrops }

// Snapshot implements Snapshotter.
func (s *SimpleMark) Snapshot() []*packet.Packet { return s.q.snapshot(nil) }
