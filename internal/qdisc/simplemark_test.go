package qdisc

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/units"
)

func TestSimpleMarkBelowThresholdNoMarks(t *testing.T) {
	q := NewSimpleMark(100, 10)
	for i := 0; i < 10; i++ {
		if v := q.Enqueue(0, mkData(uint64(i))); v != Enqueued {
			t.Fatalf("verdict %v below threshold", v)
		}
	}
	marks, _ := q.Counters()
	if marks != 0 {
		t.Errorf("marks = %d below threshold", marks)
	}
}

func TestSimpleMarkAtThresholdMarksECT(t *testing.T) {
	q := NewSimpleMark(100, 10)
	for i := 0; i < 10; i++ {
		q.Enqueue(0, mkData(uint64(i)))
	}
	p := mkData(100)
	if v := q.Enqueue(0, p); v != EnqueuedMarked {
		t.Fatalf("verdict at threshold = %v, want EnqueuedMarked", v)
	}
	if p.ECN != packet.CE {
		t.Error("packet not CE after marking")
	}
}

// TestSimpleMarkNeverEarlyDrops pins the defining property of the paper's
// "true simple marking scheme": nothing is dropped before the buffer is
// physically full — not ACKs, not SYNs, not non-ECT data.
func TestSimpleMarkNeverEarlyDrops(t *testing.T) {
	q := NewSimpleMark(200, 5)
	mk := []func(uint64) *packet.Packet{mkData, mkPlainData, mkAck, mkEceAck, mkSyn}
	for i := 0; i < 200; i++ {
		p := mk[i%len(mk)](uint64(i))
		v := q.Enqueue(0, p)
		if v.Dropped() {
			t.Fatalf("packet %d (%v) dropped with %d/%d queued", i, p.Kind(), q.Len(), 200)
		}
	}
	// Now the buffer is full: overflow is the only legal drop.
	if v := q.Enqueue(0, mkAck(999)); v != DroppedOverflow {
		t.Errorf("verdict at full buffer = %v, want DroppedOverflow", v)
	}
	_, overflow := q.Counters()
	if overflow != 1 {
		t.Errorf("overflow counter = %d, want 1", overflow)
	}
}

func TestSimpleMarkNonECTAboveThresholdEnqueuedUnmarked(t *testing.T) {
	q := NewSimpleMark(100, 5)
	for i := 0; i < 20; i++ {
		q.Enqueue(0, mkData(uint64(i)))
	}
	p := mkAck(100)
	if v := q.Enqueue(0, p); v != Enqueued {
		t.Fatalf("ACK verdict above threshold = %v, want Enqueued", v)
	}
	if p.ECN != packet.NotECT {
		t.Error("non-ECT packet's ECN field was modified")
	}
}

func TestSimpleMarkInstantaneous(t *testing.T) {
	// Marking must track the instantaneous queue: drain below K and marks
	// must stop immediately (no EWMA memory).
	q := NewSimpleMark(100, 10)
	for i := 0; i < 50; i++ {
		q.Enqueue(0, mkData(uint64(i)))
	}
	for q.Len() > 5 {
		q.Dequeue(0)
	}
	if v := q.Enqueue(0, mkData(999)); v != Enqueued {
		t.Errorf("verdict after drain = %v, want Enqueued (no memory)", v)
	}
}

func TestSimpleMarkForTargetDelay(t *testing.T) {
	q := SimpleMarkForTargetDelay(699, 10*units.Gbps, 100*units.Microsecond)
	// 100µs at 10Gbps = ~83 full packets.
	if k := q.Threshold(); k < 75 || k > 90 {
		t.Errorf("K = %d, want ~83", k)
	}
	// Tiny delays clamp to at least 1; huge delays clamp to capacity.
	if k := SimpleMarkForTargetDelay(699, 10*units.Gbps, 1*units.Nanosecond).Threshold(); k != 1 {
		t.Errorf("tiny delay K = %d, want 1", k)
	}
	if k := SimpleMarkForTargetDelay(699, 10*units.Gbps, 10*units.Second).Threshold(); k != 699 {
		t.Errorf("huge delay K = %d, want capacity", k)
	}
}

func TestSimpleMarkByteMode(t *testing.T) {
	q := NewSimpleMarkBytes(1000, 10*1500)
	// 400 ACKs (16KB) stay under the 15KB... just over: 400*40=16000 > 15000.
	// Use 300 ACKs = 12KB, under threshold.
	for i := 0; i < 300; i++ {
		if v := q.Enqueue(0, mkAck(uint64(i))); v != Enqueued {
			t.Fatalf("ACK dropped in byte mode: %v", v)
		}
	}
	// Data pushes bytes over the threshold; ECT data gets marked.
	sawMark := false
	for i := 0; i < 20; i++ {
		if q.Enqueue(0, mkData(uint64(1000+i))) == EnqueuedMarked {
			sawMark = true
		}
	}
	if !sawMark {
		t.Error("byte-mode SimpleMark never marked")
	}
}

func TestSimpleMarkValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewSimpleMark(0, 1) },
		func() { NewSimpleMark(10, 0) },
		func() { NewSimpleMark(10, 11) },
		func() { NewSimpleMarkBytes(0, 100) },
		func() { NewSimpleMarkBytes(10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid construction")
				}
			}()
			f()
		}()
	}
}

func TestSimpleMarkMetadata(t *testing.T) {
	q := NewSimpleMark(50, 10)
	if q.Name() != "simplemark" {
		t.Errorf("Name = %q", q.Name())
	}
	if q.CapacityPackets() != 50 {
		t.Errorf("CapacityPackets = %d", q.CapacityPackets())
	}
	if q.Peek() != nil {
		t.Error("Peek on empty")
	}
	q.Enqueue(0, mkData(3))
	if q.Peek().ID != 3 {
		t.Error("Peek head mismatch")
	}
	snap := q.Snapshot()
	if len(snap) != 1 || snap[0].ID != 3 {
		t.Error("Snapshot mismatch")
	}
}

func TestSimpleMarkCEPassthrough(t *testing.T) {
	// A packet already marked CE upstream stays CE and still counts as a
	// mark opportunity without panicking.
	q := NewSimpleMark(100, 1)
	q.Enqueue(0, mkData(1))
	p := mkData(2)
	p.ECN = packet.CE
	if v := q.Enqueue(0, p); v != EnqueuedMarked {
		t.Errorf("verdict for pre-marked packet = %v", v)
	}
	if p.ECN != packet.CE {
		t.Error("CE lost")
	}
}
