package qdisc

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/units"
)

func testPIE(protect ProtectMode) *PIE {
	cfg := DefaultPIEConfig(1000, 10*units.Gbps, 100*units.Microsecond)
	cfg.Protect = protect
	cfg.Seed = 7
	return NewPIE(cfg)
}

// pressurePIE drives sustained over-target load through the queue and
// returns it mid-congestion.
func pressurePIE(q *PIE, mk func(uint64) *packet.Packet) (enq, dropped int) {
	now := units.Time(0)
	id := uint64(0)
	// Arrivals at 2x the drain rate for a while: delay stays over target.
	for step := 0; step < 40000; step++ {
		now = now.Add(600 * units.Nanosecond) // ~2x 10G packet time
		id++
		v := q.Enqueue(now, mk(id))
		if v.Dropped() {
			dropped++
		} else {
			enq++
		}
		if step%2 == 0 {
			q.Dequeue(now)
		}
	}
	return enq, dropped
}

func TestPIEIdleQueuePassesEverything(t *testing.T) {
	q := testPIE(ProtectNone)
	now := units.Time(0)
	for i := 0; i < 1000; i++ {
		now = now.Add(10 * units.Microsecond)
		if v := q.Enqueue(now, mkData(uint64(i))); v != Enqueued {
			t.Fatalf("uncongested enqueue verdict %v", v)
		}
		q.Dequeue(now)
	}
	if q.Prob() > 0.001 {
		t.Errorf("drop probability %g grew without congestion", q.Prob())
	}
}

func TestPIEControllerRaisesProbabilityUnderLoad(t *testing.T) {
	q := testPIE(ProtectNone)
	pressurePIE(q, mkData)
	if q.Prob() <= 0 {
		t.Error("probability never rose under sustained overload")
	}
	marks, _, _ := q.Counters()
	if marks == 0 {
		t.Error("no ECT marks under sustained overload")
	}
}

func TestPIEDropsNonECTUnderLoad(t *testing.T) {
	q := testPIE(ProtectNone)
	_, dropped := pressurePIE(q, mkAck)
	if dropped == 0 {
		t.Error("no non-ECT drops under sustained overload")
	}
}

func TestPIEProtectsACKSYN(t *testing.T) {
	q := testPIE(ProtectACKSYN)
	_, _ = pressurePIE(q, mkAck)
	_, early, _ := q.Counters()
	if early != 0 {
		t.Errorf("protected ACKs early-dropped %d times", early)
	}
}

func TestPIEProbabilityDecaysAfterCongestion(t *testing.T) {
	q := testPIE(ProtectNone)
	pressurePIE(q, mkData)
	peak := q.Prob()
	if peak <= 0 {
		t.Skip("controller never engaged")
	}
	// Drain fully, then trickle packets: the controller must relax.
	now := units.Time(1 * units.Second)
	for q.Dequeue(now) != nil {
	}
	for i := 0; i < 2000; i++ {
		now = now.Add(1 * units.Millisecond)
		q.Enqueue(now, mkData(uint64(1e6+float64(i))))
		q.Dequeue(now)
	}
	if q.Prob() >= peak {
		t.Errorf("probability %g did not decay from peak %g", q.Prob(), peak)
	}
}

func TestPIEConservation(t *testing.T) {
	q := testPIE(ProtectNone)
	enq, dropped := pressurePIE(q, mkData)
	drainedTail := 0
	for q.Dequeue(units.Time(2*units.Second)) != nil {
		drainedTail++
	}
	// All enqueued packets either came out during pressure or at the end.
	total := enq + dropped
	if total != 40000 {
		t.Fatalf("accounting lost packets: %d", total)
	}
	if q.Len() != 0 {
		t.Error("queue not empty after drain")
	}
}

func TestPIEValidation(t *testing.T) {
	bad := []PIEConfig{
		{},
		{CapacityPackets: 10, Target: 1, TUpdate: 1, Alpha: 0, Beta: 1, DrainRate: 1},
		{CapacityPackets: 10, Target: 1, TUpdate: 1, Alpha: 1, Beta: 1, DrainRate: 0},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("config %d validated", i)
		}
	}
	if err := func() (err error) {
		cfg := DefaultPIEConfig(100, 10*units.Gbps, 100*units.Microsecond)
		return cfg.Validate()
	}(); err != nil {
		t.Error(err)
	}
}

func TestPIEOverflow(t *testing.T) {
	cfg := DefaultPIEConfig(5, 10*units.Gbps, 100*units.Microsecond)
	q := NewPIE(cfg)
	for i := 0; i < 5; i++ {
		q.Enqueue(0, mkData(uint64(i)))
	}
	if v := q.Enqueue(0, mkData(9)); v != DroppedOverflow {
		t.Errorf("verdict = %v", v)
	}
}

func TestPIEName(t *testing.T) {
	if testPIE(ProtectNone).Name() != "pie" {
		t.Error("name drifted")
	}
	if testPIE(ProtectECE).Name() != "pie+ece-bit" {
		t.Error("protected name drifted")
	}
}

func TestPIEDeterministicGivenSeed(t *testing.T) {
	run := func() (int, int) {
		q := testPIE(ProtectNone)
		return pressurePIE(q, mkAck)
	}
	e1, d1 := run()
	e2, d2 := run()
	if e1 != e2 || d1 != d2 {
		t.Error("identical PIE runs diverged")
	}
}
