package qdisc

import (
	"math"

	"repro/internal/packet"
	"repro/internal/units"
)

// CoDelConfig parameterizes a CoDel queue (Nichols & Jacobson, CACM 2012).
// CoDel watches the *sojourn time* of dequeued packets: once every packet
// has spent more than Target in the queue for an Interval, it enters a
// dropping state whose drop rate increases with the square root of the drop
// count. With ECN enabled, ECT packets are marked instead of dropped —
// leaving non-ECT packets (ACKs, SYNs) exposed to the same bias the paper
// identifies in RED, which is why the protection modes apply here too.
type CoDelConfig struct {
	// CapacityPackets is the physical buffer.
	CapacityPackets int
	// Target is the acceptable standing queue delay (classic 5 ms;
	// datacenter deployments use far less).
	Target units.Duration
	// Interval is the sliding window in which the standing delay must be
	// observed (classic 100 ms).
	Interval units.Duration
	// ECN marks ECT packets instead of dropping them.
	ECN bool
	// Protect shields the paper's packet classes from CoDel's drops.
	Protect ProtectMode
}

// DefaultCoDelConfig returns datacenter-flavoured parameters for the given
// buffer size and target delay.
func DefaultCoDelConfig(capacity int, target units.Duration) CoDelConfig {
	return CoDelConfig{
		CapacityPackets: capacity,
		Target:          target,
		Interval:        16 * target, // keep the classic 5ms:100ms ratio
		ECN:             true,
	}
}

// Validate reports a configuration error, or nil.
func (c *CoDelConfig) Validate() error {
	switch {
	case c.CapacityPackets <= 0:
		return errCapacity("CoDel", c.CapacityPackets)
	case c.Target <= 0 || c.Interval <= 0:
		return errParam("CoDel", "target/interval must be positive")
	}
	return nil
}

// CoDel is the Controlled Delay AQM with ECN support and the paper's
// protection modes. Marking/dropping happens at dequeue time (sojourn
// based), per the reference algorithm.
type CoDel struct {
	cfg CoDelConfig
	q   *fifo

	dropping       bool
	dropNext       units.Time
	dropCount      int
	lastCount      int
	firstAboveTime units.Time

	onHeadDrop func(p *packet.Packet)

	marks, earlyDrops, overflowDrops uint64
}

// SetHeadDropCallback implements HeadDropper.
func (c *CoDel) SetHeadDropCallback(fn func(p *packet.Packet)) { c.onHeadDrop = fn }

// NewCoDel builds a CoDel queue; it panics on invalid configuration.
func NewCoDel(cfg CoDelConfig) *CoDel {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &CoDel{cfg: cfg, q: newFIFO(cfg.CapacityPackets)}
}

// Config returns the configuration.
func (c *CoDel) Config() CoDelConfig { return c.cfg }

// Enqueue implements Qdisc: tail-drop only; CoDel acts at dequeue.
func (c *CoDel) Enqueue(now units.Time, p *packet.Packet) Verdict {
	if c.q.count >= c.cfg.CapacityPackets {
		c.overflowDrops++
		return DroppedOverflow
	}
	p.EnqueuedAt = now
	c.q.push(p)
	return Enqueued
}

// sojournOK reports whether p's sojourn time is below target, updating the
// first-above tracking.
func (c *CoDel) sojournOK(now units.Time, p *packet.Packet) bool {
	sojourn := now.Sub(p.EnqueuedAt)
	if sojourn < c.cfg.Target || c.q.bytes <= packet.HeaderSize+packet.DefaultMSS {
		c.firstAboveTime = 0
		return true
	}
	if c.firstAboveTime == 0 {
		c.firstAboveTime = now.Add(c.cfg.Interval)
		return true
	}
	return now < c.firstAboveTime
}

// controlLaw computes the next drop time.
func (c *CoDel) controlLaw(t units.Time) units.Time {
	return t.Add(units.Duration(float64(c.cfg.Interval) / math.Sqrt(float64(c.dropCount))))
}

// act applies CoDel's congestion action to a packet about to be dequeued:
// mark (ECT), protect, or drop. It reports whether the packet survived.
func (c *CoDel) act(p *packet.Packet) bool {
	switch {
	case c.cfg.ECN && p.ECN.ECTCapable():
		if p.ECN != packet.CE {
			p.Mark()
			c.marks++
		}
		return true
	case c.cfg.ECN && c.cfg.Protect.protects(p):
		return true
	default:
		c.earlyDrops++
		if c.onHeadDrop != nil {
			c.onHeadDrop(p)
		}
		return false
	}
}

// Dequeue implements Qdisc with the CoDel state machine.
func (c *CoDel) Dequeue(now units.Time) *packet.Packet {
	p := c.q.pop()
	if p == nil {
		c.dropping = false
		return nil
	}
	okToSend := c.sojournOK(now, p)
	if c.dropping {
		if okToSend {
			c.dropping = false
			return p
		}
		for !okToSend && c.dropping && now >= c.dropNext {
			if !c.act(p) {
				p = c.q.pop()
				if p == nil {
					c.dropping = false
					return nil
				}
				okToSend = c.sojournOK(now, p)
			} else {
				// Marked or protected: the action "took"; schedule the
				// next one and send this packet.
				c.dropCount++
				c.dropNext = c.controlLaw(c.dropNext)
				return p
			}
			c.dropCount++
			c.dropNext = c.controlLaw(c.dropNext)
		}
		return p
	}
	if !okToSend {
		// Enter dropping state.
		if !c.act(p) {
			p = c.q.pop()
		}
		c.dropping = true
		// Start from a count related to the last episode (reference
		// algorithm's hysteresis).
		if c.dropCount > 2 && c.dropCount-c.lastCount > 1 {
			c.dropCount = c.dropCount - c.lastCount
		} else {
			c.dropCount = 1
		}
		c.lastCount = c.dropCount
		c.dropNext = c.controlLaw(now)
	}
	return p
}

// Peek implements Qdisc.
func (c *CoDel) Peek() *packet.Packet { return c.q.peek() }

// Len implements Qdisc.
func (c *CoDel) Len() int { return c.q.count }

// BytesQueued implements Qdisc.
func (c *CoDel) BytesQueued() units.ByteSize { return c.q.bytes }

// CapacityPackets implements Qdisc.
func (c *CoDel) CapacityPackets() int { return c.cfg.CapacityPackets }

// Name implements Qdisc.
func (c *CoDel) Name() string {
	if c.cfg.Protect == ProtectNone {
		return "codel"
	}
	return "codel+" + c.cfg.Protect.String()
}

// Counters returns (marks, earlyDrops, overflowDrops).
func (c *CoDel) Counters() (marks, early, overflow uint64) {
	return c.marks, c.earlyDrops, c.overflowDrops
}

// Snapshot implements Snapshotter.
func (c *CoDel) Snapshot() []*packet.Packet { return c.q.snapshot(nil) }
