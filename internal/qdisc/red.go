package qdisc

import (
	"fmt"
	"math"

	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/units"
)

// ProtectMode selects which non-ECT packets a RED/ECN queue shields from
// early drops. These are the operational modes proposed in Section II-B of
// the paper.
type ProtectMode uint8

// Protection modes.
const (
	// ProtectNone is the default behaviour of current AQM implementations:
	// only ECT-capable packets escape the early drop (by being CE-marked);
	// every non-ECT packet — including every pure ACK, SYN and SYN-ACK — is
	// subject to early dropping.
	ProtectNone ProtectMode = iota
	// ProtectECE additionally shields any packet whose TCP header carries
	// the ECE bit: congestion-echo ACKs, SYNs and SYN-ACKs (which carry ECE
	// during ECN negotiation).
	ProtectECE
	// ProtectACKSYN additionally shields every pure ACK and every SYN or
	// SYN-ACK, whether or not ECE is set.
	ProtectACKSYN
)

// String names the mode using the paper's labels.
func (m ProtectMode) String() string {
	switch m {
	case ProtectNone:
		return "default"
	case ProtectECE:
		return "ece-bit"
	case ProtectACKSYN:
		return "ack+syn"
	}
	return fmt.Sprintf("protect(%d)", uint8(m))
}

// protects reports whether mode m shields packet p from an early drop.
func (m ProtectMode) protects(p *packet.Packet) bool {
	switch m {
	case ProtectECE:
		return p.HasECE() || p.IsSYN()
	case ProtectACKSYN:
		return p.HasECE() || p.IsSYN() || p.IsPureACK()
	}
	return false
}

// REDConfig parameterizes a RED queue. The zero value is not valid; use
// DefaultREDConfig or derive one from a target delay via REDForTargetDelay.
type REDConfig struct {
	// CapacityPackets is the physical buffer in packets. Arrivals beyond it
	// are tail-dropped regardless of any other setting.
	CapacityPackets int
	// MinTh and MaxTh are the RED thresholds. Interpreted in packets unless
	// ByteMode is set, in which case they are in bytes.
	MinTh, MaxTh float64
	// MaxP is the marking/dropping probability at MaxTh (classic 0.1).
	MaxP float64
	// Wq is the EWMA weight for the average queue estimate (classic 0.002).
	// Ignored when Instantaneous is set.
	Wq float64
	// Instantaneous uses the current queue length instead of the EWMA
	// average, as recommended by Wu et al. for data centers.
	Instantaneous bool
	// Gentle enables gentle-RED: between MaxTh and 2*MaxTh the probability
	// ramps from MaxP to 1 instead of jumping to 1 at MaxTh.
	Gentle bool
	// ECN enables marking ECT packets instead of dropping them.
	ECN bool
	// Protect selects the paper's protection mode for non-ECT packets.
	Protect ProtectMode
	// ByteMode accounts the queue and thresholds in bytes rather than
	// packets. The paper observes switches implement per-packet thresholds,
	// which is what biases drops against small ACKs; ByteMode exists for the
	// ablation.
	ByteMode bool
	// MeanPacketSize is used in byte mode for the idle-decay estimate and to
	// scale the count-based probability correction. Defaults to a full-size
	// segment.
	MeanPacketSize units.ByteSize
	// DrainRate is the egress link rate; used to decay the average while the
	// queue is idle. Required (positive).
	DrainRate units.Bandwidth
	// Seed seeds the discipline's private random stream.
	Seed uint64
}

// DefaultREDConfig returns the classic configuration for the given buffer
// size and drain rate, with ECN enabled and no protection.
func DefaultREDConfig(capacity int, rate units.Bandwidth) REDConfig {
	return REDConfig{
		CapacityPackets: capacity,
		MinTh:           float64(capacity) / 12,
		MaxTh:           float64(capacity) / 4,
		MaxP:            0.1,
		Wq:              0.002,
		Gentle:          true,
		ECN:             true,
		DrainRate:       rate,
		MeanPacketSize:  packet.HeaderSize + packet.DefaultMSS,
	}
}

// REDForTargetDelay derives RED thresholds from a target queueing delay, the
// configuration knob the paper sweeps. The minimum threshold is set to the
// number of full-size packets the link drains in targetDelay/2 and the
// maximum to three times that, mirroring the methodology of the authors'
// earlier LCN 2016 study.
func REDForTargetDelay(capacity int, rate units.Bandwidth, target units.Duration) REDConfig {
	cfg := DefaultREDConfig(capacity, rate)
	pktTime := rate.TransmitTime(packet.HeaderSize + packet.DefaultMSS)
	minPkts := float64(target) / 2 / float64(pktTime)
	if minPkts < 1 {
		minPkts = 1
	}
	maxPkts := 3 * minPkts
	if maxPkts > float64(capacity) {
		maxPkts = float64(capacity)
	}
	if minPkts > maxPkts {
		minPkts = maxPkts
	}
	cfg.MinTh = minPkts
	cfg.MaxTh = maxPkts
	return cfg
}

// Validate reports a configuration error, or nil.
func (c *REDConfig) Validate() error {
	switch {
	case c.CapacityPackets <= 0:
		return fmt.Errorf("qdisc: RED capacity %d must be positive", c.CapacityPackets)
	case c.MinTh <= 0 || c.MaxTh < c.MinTh:
		return fmt.Errorf("qdisc: RED thresholds min=%g max=%g invalid", c.MinTh, c.MaxTh)
	case c.MaxP <= 0 || c.MaxP > 1:
		return fmt.Errorf("qdisc: RED maxP %g out of (0,1]", c.MaxP)
	case !c.Instantaneous && (c.Wq <= 0 || c.Wq > 1):
		return fmt.Errorf("qdisc: RED wq %g out of (0,1]", c.Wq)
	case c.DrainRate <= 0:
		return fmt.Errorf("qdisc: RED drain rate must be positive")
	}
	return nil
}

// RED is a Random Early Detection queue with ECN and the paper's protection
// modes. The implementation follows Floyd & Jacobson (1993) with the gentle
// extension, per-packet (or per-byte) accounting, and idle-time decay of the
// average.
type RED struct {
	cfg  REDConfig
	q    *fifo
	rand *rng.Source

	avg       float64 // EWMA of queue length (packets or bytes per ByteMode)
	count     int     // packets since last mark/drop while in [min,max)
	idleSince units.Time
	idle      bool

	// Diagnostics.
	marks, earlyDrops, overflowDrops uint64
}

// NewRED builds a RED queue. It panics on invalid configuration: queue
// construction happens at experiment setup where configuration errors are
// programming errors.
func NewRED(cfg REDConfig) *RED {
	if cfg.MeanPacketSize <= 0 {
		cfg.MeanPacketSize = packet.HeaderSize + packet.DefaultMSS
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &RED{
		cfg:  cfg,
		q:    newFIFO(cfg.CapacityPackets),
		rand: rng.New(cfg.Seed ^ 0x9d5c_e5a1_b1e2_c3d4),
		idle: true,
	}
}

// Config returns the configuration the queue was built with.
func (r *RED) Config() REDConfig { return r.cfg }

// occupancy returns the instantaneous queue length in threshold units.
func (r *RED) occupancy() float64 {
	if r.cfg.ByteMode {
		return float64(r.q.bytes)
	}
	return float64(r.q.count)
}

// updateAvg refreshes the EWMA average at an arrival at time now.
func (r *RED) updateAvg(now units.Time) float64 {
	if r.cfg.Instantaneous {
		r.avg = r.occupancy()
		return r.avg
	}
	if r.idle {
		// Decay the average across the idle period: pretend m small packets
		// departed, m = idle_time / typical packet transmit time.
		pktTime := r.cfg.DrainRate.TransmitTime(r.cfg.MeanPacketSize)
		if pktTime > 0 {
			m := float64(now.Sub(r.idleSince)) / float64(pktTime)
			if m > 0 {
				r.avg *= math.Pow(1-r.cfg.Wq, m)
			}
		}
		r.idle = false
	}
	r.avg = (1-r.cfg.Wq)*r.avg + r.cfg.Wq*r.occupancy()
	return r.avg
}

// markProbability returns RED's marking probability at average queue avg.
// Returns (p, forced) where forced means the packet must be marked/dropped
// deterministically (avg beyond the hard region).
func (r *RED) markProbability(avg float64) (p float64, forced bool) {
	min, max := r.cfg.MinTh, r.cfg.MaxTh
	switch {
	case avg < min:
		return 0, false
	case avg < max:
		return r.cfg.MaxP * (avg - min) / (max - min), false
	case r.cfg.Gentle && avg < 2*max:
		return r.cfg.MaxP + (1-r.cfg.MaxP)*(avg-max)/max, false
	default:
		return 1, true
	}
}

// Enqueue implements Qdisc.
func (r *RED) Enqueue(now units.Time, p *packet.Packet) Verdict {
	if r.q.count >= r.cfg.CapacityPackets {
		r.overflowDrops++
		return DroppedOverflow
	}
	avg := r.updateAvg(now)
	prob, forced := r.markProbability(avg)

	hit := forced
	if !forced && prob > 0 {
		// Uniformized inter-mark spacing: p_a = p_b / (1 - count*p_b).
		pa := prob
		if denom := 1 - float64(r.count)*prob; denom > 0 {
			pa = prob / denom
		} else {
			pa = 1
		}
		if r.rand.Float64() < pa {
			hit = true
		} else {
			r.count++
		}
	}
	if prob == 0 {
		r.count = 0
	}

	if hit {
		r.count = 0
		switch {
		case r.cfg.ECN && p.ECN.ECTCapable():
			p.Mark()
			r.marks++
			p.EnqueuedAt = now
			r.q.push(p)
			return EnqueuedMarked
		case r.cfg.ECN && r.cfg.Protect.protects(p):
			// The paper's modification: the packet cannot carry a mark, but
			// it is too important to lose — keep it.
			p.EnqueuedAt = now
			r.q.push(p)
			return Enqueued
		default:
			r.earlyDrops++
			return DroppedEarly
		}
	}

	p.EnqueuedAt = now
	r.q.push(p)
	return Enqueued
}

// Dequeue implements Qdisc.
func (r *RED) Dequeue(now units.Time) *packet.Packet {
	p := r.q.pop()
	if p != nil && r.q.count == 0 {
		r.idle = true
		r.idleSince = now
	}
	return p
}

// Peek implements Qdisc.
func (r *RED) Peek() *packet.Packet { return r.q.peek() }

// Len implements Qdisc.
func (r *RED) Len() int { return r.q.count }

// BytesQueued implements Qdisc.
func (r *RED) BytesQueued() units.ByteSize { return r.q.bytes }

// CapacityPackets implements Qdisc.
func (r *RED) CapacityPackets() int { return r.cfg.CapacityPackets }

// Name implements Qdisc.
func (r *RED) Name() string {
	if r.cfg.Protect == ProtectNone {
		return "red"
	}
	return "red+" + r.cfg.Protect.String()
}

// AvgQueue returns the current average queue estimate (threshold units).
func (r *RED) AvgQueue() float64 { return r.avg }

// Counters returns (marks, earlyDrops, overflowDrops) for diagnostics.
func (r *RED) Counters() (marks, early, overflow uint64) {
	return r.marks, r.earlyDrops, r.overflowDrops
}

// Snapshot implements Snapshotter.
func (r *RED) Snapshot() []*packet.Packet { return r.q.snapshot(nil) }
