// Package qdisc implements the switch egress queue disciplines studied in
// the paper:
//
//   - DropTail: the baseline all results are normalized against.
//   - RED: Random Early Detection with ECN support, per-packet or per-byte
//     thresholds, EWMA-averaged or instantaneous queue length, and the two
//     protection modes the paper proposes (protect ECE-bit packets; protect
//     all pure ACKs and SYN/SYN-ACKs).
//   - SimpleMark: the "true simple marking scheme" of the DCTCP paper — a
//     single instantaneous threshold at which ECT packets are marked, with
//     no early drops at all; the only losses are physical tail drops.
//
// All disciplines implement the Qdisc interface consumed by internal/netsim.
package qdisc

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/units"
)

// errCapacity and errParam build consistent construction errors.
func errCapacity(kind string, got int) error {
	return fmt.Errorf("qdisc: %s capacity %d must be positive", kind, got)
}

func errParam(kind, msg string) error {
	return fmt.Errorf("qdisc: %s %s", kind, msg)
}

// Verdict is the outcome of an Enqueue call.
type Verdict uint8

// Enqueue outcomes.
const (
	Enqueued        Verdict = iota // accepted unchanged
	EnqueuedMarked                 // accepted and CE-marked (ECN)
	DroppedEarly                   // AQM early drop (RED)
	DroppedOverflow                // physical buffer overflow (tail drop)
)

// Dropped reports whether the verdict lost the packet.
func (v Verdict) Dropped() bool { return v == DroppedEarly || v == DroppedOverflow }

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Enqueued:
		return "enqueued"
	case EnqueuedMarked:
		return "enqueued+marked"
	case DroppedEarly:
		return "dropped-early"
	case DroppedOverflow:
		return "dropped-overflow"
	}
	return "verdict(?)"
}

// Qdisc is an egress queue discipline. Implementations are not safe for
// concurrent use; the single-threaded engine never requires it.
type Qdisc interface {
	// Enqueue offers a packet at simulated time now. On a Dropped verdict
	// the packet is not retained.
	Enqueue(now units.Time, p *packet.Packet) Verdict
	// Dequeue removes and returns the head packet, or nil if empty.
	Dequeue(now units.Time) *packet.Packet
	// Peek returns the head packet without removing it, or nil.
	Peek() *packet.Packet
	// Len returns the instantaneous queue length in packets.
	Len() int
	// BytesQueued returns the instantaneous queue length in bytes.
	BytesQueued() units.ByteSize
	// CapacityPackets returns the physical buffer size in packets.
	CapacityPackets() int
	// Name returns a short identifier for reports ("droptail", "red", ...).
	Name() string
}

// fifo is the packet buffer shared by all disciplines: a growable ring.
type fifo struct {
	buf   []*packet.Packet
	head  int
	count int
	bytes units.ByteSize
}

func newFIFO(capacityHint int) *fifo {
	if capacityHint < 8 {
		capacityHint = 8
	}
	return &fifo{buf: make([]*packet.Packet, capacityHint)}
}

func (f *fifo) push(p *packet.Packet) {
	if f.count == len(f.buf) {
		f.grow()
	}
	f.buf[(f.head+f.count)%len(f.buf)] = p
	f.count++
	f.bytes += p.Size()
}

func (f *fifo) pop() *packet.Packet {
	if f.count == 0 {
		return nil
	}
	p := f.buf[f.head]
	f.buf[f.head] = nil
	f.head = (f.head + 1) % len(f.buf)
	f.count--
	f.bytes -= p.Size()
	return p
}

func (f *fifo) peek() *packet.Packet {
	if f.count == 0 {
		return nil
	}
	return f.buf[f.head]
}

func (f *fifo) grow() {
	nb := make([]*packet.Packet, 2*len(f.buf))
	for i := 0; i < f.count; i++ {
		nb[i] = f.buf[(f.head+i)%len(f.buf)]
	}
	f.buf = nb
	f.head = 0
}

// snapshot appends the queued packets head-first to dst and returns it.
func (f *fifo) snapshot(dst []*packet.Packet) []*packet.Packet {
	for i := 0; i < f.count; i++ {
		dst = append(dst, f.buf[(f.head+i)%len(f.buf)])
	}
	return dst
}

// Snapshotter is implemented by disciplines that can expose their queued
// packets for inspection (used by the Figure 1 queue-composition tool).
type Snapshotter interface {
	Snapshot() []*packet.Packet
}

// HeadDropper is implemented by disciplines that can drop packets at
// dequeue time (CoDel's sojourn-based drops). The fabric registers a
// callback so such drops reach the metrics observer, which otherwise only
// sees enqueue verdicts.
type HeadDropper interface {
	SetHeadDropCallback(func(p *packet.Packet))
}
