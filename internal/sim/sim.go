// Package sim implements the discrete-event simulation engine that drives
// every other component in this repository. It plays the role NS-2's
// scheduler played in the paper's methodology: components schedule callbacks
// at absolute simulated times and the engine executes them in time order.
//
// The engine is single-threaded and fully deterministic: events scheduled for
// the same instant execute in scheduling order (FIFO), which makes runs
// reproducible bit-for-bit given the same seed and configuration.
//
// The hot path is allocation-free in steady state. Pending events live in a
// slab of reusable slots ordered by an index-based 4-ary heap (better cache
// behavior than a binary heap: ~half the levels, and the four children of a
// node share a cache line). Schedule hands out generation-counted Event
// handles — plain values, never heap-allocated — so Cancel on a stale handle
// is detected instead of corrupting a recycled slot.
package sim

import (
	"fmt"

	"repro/internal/units"
)

// Time is re-exported from units for convenience.
type Time = units.Time

// Duration is re-exported from units for convenience.
type Duration = units.Duration

// slotState tracks what became of a slot's current scheduling.
type slotState uint8

const (
	slotFree      slotState = iota // never scheduled (fresh slab slot)
	slotPending                    // in the heap, waiting to fire
	slotFired                      // callback executed
	slotCancelled                  // removed by Cancel before firing
)

// slot is one slab entry. A slot is recycled (through the free list) only
// after its event fired or was cancelled; gen increments on every reuse so
// stale handles can tell.
type slot struct {
	at    Time
	seq   uint64
	fn    func()
	argFn func(any)
	arg   any
	gen   uint32
	state slotState
	pos   int32 // heap position; -1 when not queued
}

// Event is a generation-counted handle to a scheduled callback. It is a
// plain value (copy freely; the zero value is an inert non-event). State
// queries are exact until the engine recycles the underlying slot for a new
// event, which can only happen after this event has fired or been cancelled;
// a handle whose slot was recycled reports false for Pending, Fired and
// Cancelled alike.
type Event struct {
	eng  *Engine
	slot int32 // slot index + 1; 0 marks the zero handle
	gen  uint32
	at   Time
}

// At returns the simulated time the event fires (or fired) at. It is stored
// in the handle, so it remains valid forever.
func (e Event) At() Time { return e.at }

// state resolves the handle against its slot; ok is false for the zero
// handle and for handles whose slot has been recycled.
func (e Event) state() (slotState, bool) {
	if e.slot == 0 {
		return slotFree, false
	}
	s := &e.eng.slots[e.slot-1]
	if s.gen != e.gen {
		return slotFree, false
	}
	return s.state, true
}

// Pending reports whether the event is still scheduled to fire.
func (e Event) Pending() bool {
	st, ok := e.state()
	return ok && st == slotPending
}

// Fired reports whether the event's callback executed. It is false for a
// cancelled event — firing and cancellation are distinct outcomes.
func (e Event) Fired() bool {
	st, ok := e.state()
	return ok && st == slotFired
}

// Cancelled reports whether the event was cancelled before firing. An event
// that already executed is NOT cancelled — use Fired for that.
func (e Event) Cancelled() bool {
	st, ok := e.state()
	return ok && st == slotCancelled
}

// Engine is a discrete-event scheduler.
type Engine struct {
	now      Time
	seq      uint64
	slots    []slot
	heap     []int32 // slot indices ordered as a 4-ary min-heap on (at, seq)
	free     []int32 // recycled slot indices
	executed uint64
	stopped  bool
	maxTime  Time // 0 means unbounded
}

// New returns an empty engine at time zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

// alloc claims a slot for an event at the given time and returns its index.
func (e *Engine) alloc(at Time) int32 {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, slot{})
		idx = int32(len(e.slots) - 1)
	}
	s := &e.slots[idx]
	s.gen++
	s.at = at
	s.seq = e.seq
	s.state = slotPending
	e.seq++
	e.heapPush(idx)
	return idx
}

// Schedule runs fn at absolute time at. Scheduling in the past panics: it is
// always a logic error in a discrete-event model.
func (e *Engine) Schedule(at Time, fn func()) Event {
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	idx := e.alloc(at)
	e.slots[idx].fn = fn
	return Event{eng: e, slot: idx + 1, gen: e.slots[idx].gen, at: at}
}

// ScheduleArg runs fn(arg) at absolute time at. Unlike Schedule with a
// closure over arg, this allocates nothing when fn is a predeclared function
// value and arg is a pointer — the hot-path form used by the packet fabric.
func (e *Engine) ScheduleArg(at Time, fn func(any), arg any) Event {
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	idx := e.alloc(at)
	s := &e.slots[idx]
	s.argFn = fn
	s.arg = arg
	return Event{eng: e, slot: idx + 1, gen: s.gen, at: at}
}

// After runs fn d after the current time.
func (e *Engine) After(d Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now.Add(d), fn)
}

// AfterArg runs fn(arg) d after the current time (see ScheduleArg).
func (e *Engine) AfterArg(d Duration, fn func(any), arg any) Event {
	if d < 0 {
		d = 0
	}
	return e.ScheduleArg(e.now.Add(d), fn, arg)
}

// Cancel removes a scheduled event. Cancelling the zero Event, an event that
// already fired or was already cancelled, or a stale handle whose slot was
// recycled is a no-op.
func (e *Engine) Cancel(ev Event) {
	if ev.slot == 0 || ev.eng != e {
		return
	}
	idx := ev.slot - 1
	s := &e.slots[idx]
	if s.gen != ev.gen || s.state != slotPending {
		return
	}
	e.heapRemove(s.pos)
	e.release(idx, slotCancelled)
}

// release clears a slot's callback and returns it to the free list.
func (e *Engine) release(idx int32, outcome slotState) {
	s := &e.slots[idx]
	s.state = outcome
	s.fn = nil
	s.argFn = nil
	s.arg = nil
	e.free = append(e.free, idx)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// SetDeadline makes Run refuse to execute events past t (0 disables).
func (e *Engine) SetDeadline(t Time) { e.maxTime = t }

// Step executes the single earliest pending event. It reports whether an
// event was executed.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	idx := e.heap[0]
	s := &e.slots[idx]
	if e.maxTime != 0 && s.at > e.maxTime {
		return false // out of time budget; leave it queued
	}
	e.heapPopRoot()
	e.now = s.at
	fn, argFn, arg := s.fn, s.argFn, s.arg
	e.executed++
	// Mark fired before invoking: a callback cancelling its own handle must
	// be a no-op (Cancel's guard sees non-pending), not a heap corruption.
	// The slot is recycled only after the callback returns, so the firing
	// event's own handle stays accurate inside its callback.
	s.state = slotFired
	if fn != nil {
		fn()
	} else {
		argFn(arg)
	}
	e.release(idx, slotFired)
	return true
}

// Run executes events until none remain, Stop is called, or the deadline is
// reached. It returns the final simulated time.
func (e *Engine) Run() Time {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= t and then advances the clock
// to exactly t (if it is in the future). It returns the final time, t.
func (e *Engine) RunUntil(t Time) Time {
	e.stopped = false
	for !e.stopped {
		if len(e.heap) == 0 || e.slots[e.heap[0]].at > t {
			break
		}
		if !e.Step() {
			break
		}
	}
	if e.now < t {
		e.now = t
	}
	return e.now
}

// ----------------------------------------------------------------------
// 4-ary index heap over the slot slab, ordered by (at, seq).

// heapLess orders slots by firing time, FIFO within the same instant.
func (e *Engine) heapLess(a, b int32) bool {
	sa, sb := &e.slots[a], &e.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

// heapSet writes a slot index at a heap position, maintaining the back-link.
func (e *Engine) heapSet(pos int, idx int32) {
	e.heap[pos] = idx
	e.slots[idx].pos = int32(pos)
}

// heapPush appends a slot and restores the heap property.
func (e *Engine) heapPush(idx int32) {
	e.heap = append(e.heap, idx)
	e.slots[idx].pos = int32(len(e.heap) - 1)
	e.siftUp(len(e.heap) - 1)
}

// heapPopRoot removes the minimum element.
func (e *Engine) heapPopRoot() {
	last := len(e.heap) - 1
	root := e.heap[0]
	e.slots[root].pos = -1
	if last == 0 {
		e.heap = e.heap[:0]
		return
	}
	e.heapSet(0, e.heap[last])
	e.heap = e.heap[:last]
	e.siftDown(0)
}

// heapRemove deletes the element at an arbitrary heap position.
func (e *Engine) heapRemove(pos int32) {
	p := int(pos)
	last := len(e.heap) - 1
	e.slots[e.heap[p]].pos = -1
	if p == last {
		e.heap = e.heap[:last]
		return
	}
	moved := e.heap[last]
	e.heap = e.heap[:last]
	e.heapSet(p, moved)
	e.siftUp(p)
	e.siftDown(p)
}

func (e *Engine) siftUp(i int) {
	idx := e.heap[i]
	for i > 0 {
		parent := (i - 1) >> 2
		if !e.heapLess(idx, e.heap[parent]) {
			break
		}
		e.heapSet(i, e.heap[parent])
		i = parent
	}
	e.heapSet(i, idx)
}

func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	idx := e.heap[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if e.heapLess(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		if !e.heapLess(e.heap[best], idx) {
			break
		}
		e.heapSet(i, e.heap[best])
		i = best
	}
	e.heapSet(i, idx)
}

// ----------------------------------------------------------------------
// Timer

// Timer is a restartable one-shot timer bound to an engine, in the style of
// time.Timer but in simulated time. It is the building block for TCP's RTO
// and delayed-ACK timers. The wrapper callback is created once, so Reset
// allocates nothing.
type Timer struct {
	eng  *Engine
	ev   Event
	fn   func()
	wrap func()
}

// NewTimer returns a stopped timer that will run fn when it fires.
func NewTimer(eng *Engine, fn func()) *Timer {
	if fn == nil {
		panic("sim: NewTimer with nil callback")
	}
	t := &Timer{eng: eng, fn: fn}
	t.wrap = func() {
		t.ev = Event{} // disarm before the callback so it may Reset
		t.fn()
	}
	return t
}

// Reset (re)arms the timer to fire d from now, cancelling any pending firing.
func (t *Timer) Reset(d Duration) {
	t.Stop()
	t.ev = t.eng.After(d, t.wrap)
}

// Stop disarms the timer if it is pending.
func (t *Timer) Stop() {
	if t.ev.slot != 0 {
		t.eng.Cancel(t.ev)
		t.ev = Event{}
	}
}

// Armed reports whether the timer is pending.
func (t *Timer) Armed() bool { return t.ev.slot != 0 }

// Deadline returns the pending firing time; valid only if Armed.
func (t *Timer) Deadline() Time {
	if t.ev.slot == 0 {
		return 0
	}
	return t.ev.At()
}
