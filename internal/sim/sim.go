// Package sim implements the discrete-event simulation engine that drives
// every other component in this repository. It plays the role NS-2's
// scheduler played in the paper's methodology: components schedule callbacks
// at absolute simulated times and the engine executes them in time order.
//
// The engine is single-threaded and fully deterministic: events scheduled for
// the same instant execute in scheduling order (FIFO), which makes runs
// reproducible bit-for-bit given the same seed and configuration.
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/units"
)

// Time is re-exported from units for convenience.
type Time = units.Time

// Duration is re-exported from units for convenience.
type Duration = units.Duration

// Event is a scheduled callback. A non-nil Event may be cancelled before it
// fires; cancellation after firing is a harmless no-op.
type Event struct {
	at    Time
	seq   uint64
	fn    func()
	index int // heap index, -1 once removed
}

// At returns the simulated time the event fires (or fired) at.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether the event was cancelled or already executed.
func (e *Event) Cancelled() bool { return e.fn == nil }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event scheduler.
type Engine struct {
	now      Time
	seq      uint64
	events   eventHeap
	executed uint64
	stopped  bool
	maxTime  Time // 0 means unbounded
}

// New returns an empty engine at time zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn at absolute time at. Scheduling in the past panics: it is
// always a logic error in a discrete-event model.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After runs fn d after the current time.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now.Add(d), fn)
}

// Cancel removes a scheduled event. Cancelling nil or an already-fired event
// is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.fn == nil {
		return
	}
	ev.fn = nil
	if ev.index >= 0 {
		heap.Remove(&e.events, ev.index)
	}
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// SetDeadline makes Run refuse to execute events past t (0 disables).
func (e *Engine) SetDeadline(t Time) { e.maxTime = t }

// Step executes the single earliest pending event. It reports whether an
// event was executed.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.fn == nil {
			continue // cancelled
		}
		if e.maxTime != 0 && ev.at > e.maxTime {
			// Out of time budget; push back and refuse.
			heap.Push(&e.events, ev)
			return false
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.executed++
		fn()
		return true
	}
	return false
}

// Run executes events until none remain, Stop is called, or the deadline is
// reached. It returns the final simulated time.
func (e *Engine) Run() Time {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= t and then advances the clock
// to exactly t (if it is in the future). It returns the final time, t.
func (e *Engine) RunUntil(t Time) Time {
	e.stopped = false
	for !e.stopped {
		if len(e.events) == 0 {
			break
		}
		next := e.peek()
		if next == nil {
			break
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
	return e.now
}

func (e *Engine) peek() *Event {
	for len(e.events) > 0 {
		if e.events[0].fn == nil {
			heap.Pop(&e.events)
			continue
		}
		return e.events[0]
	}
	return nil
}

// Timer is a restartable one-shot timer bound to an engine, in the style of
// time.Timer but in simulated time. It is the building block for TCP's RTO
// and delayed-ACK timers.
type Timer struct {
	eng *Engine
	ev  *Event
	fn  func()
}

// NewTimer returns a stopped timer that will run fn when it fires.
func NewTimer(eng *Engine, fn func()) *Timer {
	if fn == nil {
		panic("sim: NewTimer with nil callback")
	}
	return &Timer{eng: eng, fn: fn}
}

// Reset (re)arms the timer to fire d from now, cancelling any pending firing.
func (t *Timer) Reset(d Duration) {
	t.Stop()
	t.ev = t.eng.After(d, func() {
		t.ev = nil
		t.fn()
	})
}

// Stop disarms the timer if it is pending.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.eng.Cancel(t.ev)
		t.ev = nil
	}
}

// Armed reports whether the timer is pending.
func (t *Timer) Armed() bool { return t.ev != nil }

// Deadline returns the pending firing time; valid only if Armed.
func (t *Timer) Deadline() Time {
	if t.ev == nil {
		return 0
	}
	return t.ev.At()
}
