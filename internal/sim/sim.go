// Package sim implements the discrete-event simulation engine that drives
// every other component in this repository. It plays the role NS-2's
// scheduler played in the paper's methodology: components schedule callbacks
// at absolute simulated times and the engine executes them in time order.
//
// The engine is single-threaded and fully deterministic: events scheduled for
// the same instant execute in scheduling order (FIFO), which makes runs
// reproducible bit-for-bit given the same seed and configuration.
//
// The hot path is allocation-free in steady state. Pending events live in a
// slab of reusable slots ordered by an index-based 4-ary heap (better cache
// behavior than a binary heap: ~half the levels, and the four children of a
// node share a cache line). Schedule hands out generation-counted Event
// handles — plain values, never heap-allocated — so Cancel on a stale handle
// is detected instead of corrupting a recycled slot.
package sim

import (
	"fmt"

	"repro/internal/units"
)

// Time is re-exported from units for convenience.
type Time = units.Time

// Duration is re-exported from units for convenience.
type Duration = units.Duration

// slotState tracks what became of a slot's current scheduling.
type slotState uint8

const (
	slotFree      slotState = iota // never scheduled (fresh slab slot)
	slotPending                    // in the heap, waiting to fire
	slotFired                      // callback executed
	slotCancelled                  // removed by Cancel before firing
)

// LineageDepth is the causal-history depth of an event's ordering key: the
// event's own schedule time plus the schedule times of its LineageDepth-1
// nearest ancestors (the ancestor chain of "event that scheduled the event").
// Deeper history resolves more cross-shard timestamp ties; see Lineage.
const LineageDepth = 32

// Lineage is the causal-history component of an event's ordering key:
// Lineage[0] is the engine time the event was scheduled at (the classic
// FIFO-within-instant key), Lineage[i] the schedule time of its i-th
// ancestor. Events compare by (at, Lineage, seq).
//
// Why history and not just the schedule time: two events on different shards
// can carry the same (at, schedule time) — lockstep transfers over
// identical links produce exact timestamp collisions — and a single serial
// engine breaks that tie by seq, i.e. by the execution order of the events'
// parents, recursively. The ancestor schedule times materialize a bounded
// prefix of exactly that recursion, so the sharded run can reproduce the
// serial order without a global counter. Ties that survive LineageDepth
// levels fall back to the engine-local seq.
type Lineage [LineageDepth]Time

// Less reports lexicographic order.
func (l Lineage) Less(m Lineage) bool {
	for i := range l {
		if l[i] != m[i] {
			return l[i] < m[i]
		}
	}
	return false
}

// Token is the content-derived tie-break of an event's ordering key,
// compared after the lineage and before the engine-local seq. It exists for
// the ties lineage cannot resolve: two phase-locked periodic event chains
// (self-clocked transfers in lockstep) can agree on (at, Lineage) at ANY
// bounded history depth, because the serial engine's order between them was
// fixed thousands of events ago and is carried forward only by scheduling
// order. A token derived from the event's payload (for packet arrivals: the
// flow endpoints and header fields) is layout-independent, so serial and
// sharded engines resolve the residual tie identically. The zero Token is
// "no token": events without one sort before tokened events at a full
// lineage tie, which is itself deterministic.
type Token [2]uint64

// Less reports lexicographic order.
func (t Token) Less(u Token) bool {
	if t[0] != u[0] {
		return t[0] < u[0]
	}
	return t[1] < u[1]
}

// slot is one slab entry. A slot is recycled (through the free list) only
// after its event fired or was cancelled; gen increments on every reuse so
// stale handles can tell.
type slot struct {
	at    Time
	lin   Lineage // causal-history ordering key (see Lineage)
	tok   Token   // content-derived residual tie-break (see Token)
	seq   uint64
	fn    func()
	argFn func(any)
	arg   any
	gen   uint32
	state slotState
	pos   int32 // heap position; -1 when not queued
}

// Event is a generation-counted handle to a scheduled callback. It is a
// plain value (copy freely; the zero value is an inert non-event). State
// queries are exact until the engine recycles the underlying slot for a new
// event, which can only happen after this event has fired or been cancelled;
// a handle whose slot was recycled reports false for Pending, Fired and
// Cancelled alike.
type Event struct {
	eng  *Engine
	slot int32 // slot index + 1; 0 marks the zero handle
	gen  uint32
	at   Time
}

// At returns the simulated time the event fires (or fired) at. It is stored
// in the handle, so it remains valid forever.
func (e Event) At() Time { return e.at }

// state resolves the handle against its slot; ok is false for the zero
// handle and for handles whose slot has been recycled.
func (e Event) state() (slotState, bool) {
	if e.slot == 0 {
		return slotFree, false
	}
	s := &e.eng.slots[e.slot-1]
	if s.gen != e.gen {
		return slotFree, false
	}
	return s.state, true
}

// Pending reports whether the event is still scheduled to fire.
func (e Event) Pending() bool {
	st, ok := e.state()
	return ok && st == slotPending
}

// Fired reports whether the event's callback executed. It is false for a
// cancelled event — firing and cancellation are distinct outcomes.
func (e Event) Fired() bool {
	st, ok := e.state()
	return ok && st == slotFired
}

// Cancelled reports whether the event was cancelled before firing. An event
// that already executed is NOT cancelled — use Fired for that.
func (e Event) Cancelled() bool {
	st, ok := e.state()
	return ok && st == slotCancelled
}

// Engine is a discrete-event scheduler.
type Engine struct {
	now      Time
	seq      uint64
	slots    []slot
	heap     []int32 // slot indices ordered as a 4-ary min-heap on (at, lin, seq)
	free     []int32 // recycled slot indices
	executed uint64
	stopped  bool
	maxTime  Time    // 0 means unbounded
	curLin   Lineage // lineage of the event currently executing (see CurrentLineage)
	curTok   Token   // token of the event currently executing (see CurrentToken)
}

// New returns an empty engine at time zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

// ChildLineage returns the lineage a child scheduled right now inherits:
// the current time, then the executing event's own lineage shifted one
// generation down. This is also the key a cross-engine handoff must carry to
// re-enter the order a direct schedule would have produced.
func (e *Engine) ChildLineage() Lineage {
	var l Lineage
	l[0] = e.now
	copy(l[1:], e.curLin[:LineageDepth-1])
	return l
}

// alloc claims a slot for an event at the given time and returns its index.
func (e *Engine) alloc(at Time) int32 {
	return e.allocKey(at, e.ChildLineage(), Token{})
}

// allocKey is alloc with an explicit (lineage, token) key. The lineage may
// lie in the past (a cross-engine handoff backdating an arrival to its send
// time); at may not.
func (e *Engine) allocKey(at Time, lin Lineage, tok Token) int32 {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, slot{})
		idx = int32(len(e.slots) - 1)
	}
	s := &e.slots[idx]
	s.gen++
	s.at = at
	s.lin = lin
	s.tok = tok
	s.seq = e.seq
	s.state = slotPending
	e.seq++
	e.heapPush(idx)
	return idx
}

// Schedule runs fn at absolute time at. Scheduling in the past panics: it is
// always a logic error in a discrete-event model.
func (e *Engine) Schedule(at Time, fn func()) Event {
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	idx := e.alloc(at)
	e.slots[idx].fn = fn
	return Event{eng: e, slot: idx + 1, gen: e.slots[idx].gen, at: at}
}

// ScheduleArg runs fn(arg) at absolute time at. Unlike Schedule with a
// closure over arg, this allocates nothing when fn is a predeclared function
// value and arg is a pointer — the hot-path form used by the packet fabric.
func (e *Engine) ScheduleArg(at Time, fn func(any), arg any) Event {
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	idx := e.alloc(at)
	s := &e.slots[idx]
	s.argFn = fn
	s.arg = arg
	return Event{eng: e, slot: idx + 1, gen: s.gen, at: at}
}

// ScheduleLineage runs fn at absolute time at, ordered among same-instant
// events by the given backdated lineage. It is the cross-engine handoff
// primitive of the sharded loop: a barrier drain re-schedules an arrival on
// the destination shard after the fact, and the sender-captured lineage
// (its ChildLineage at send time) restores the position the event would
// have held had the sender scheduled it directly.
func (e *Engine) ScheduleLineage(at Time, lin Lineage, fn func()) Event {
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	idx := e.allocKey(at, lin, Token{})
	e.slots[idx].fn = fn
	return Event{eng: e, slot: idx + 1, gen: e.slots[idx].gen, at: at}
}

// ScheduleArgLineage is ScheduleLineage in the allocation-free arg form
// (see ScheduleArg).
func (e *Engine) ScheduleArgLineage(at Time, lin Lineage, fn func(any), arg any) Event {
	return e.ScheduleArgKey(at, lin, Token{}, fn, arg)
}

// ScheduleArgKey is ScheduleArgLineage with an explicit residual-tie token
// (see Token). The packet fabric passes a content-derived token for every
// propagation event, local or cross-shard, so both paths order residual
// lineage ties the same way.
func (e *Engine) ScheduleArgKey(at Time, lin Lineage, tok Token, fn func(any), arg any) Event {
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	idx := e.allocKey(at, lin, tok)
	s := &e.slots[idx]
	s.argFn = fn
	s.arg = arg
	return Event{eng: e, slot: idx + 1, gen: s.gen, at: at}
}

// After runs fn d after the current time.
func (e *Engine) After(d Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now.Add(d), fn)
}

// AfterArg runs fn(arg) d after the current time (see ScheduleArg).
func (e *Engine) AfterArg(d Duration, fn func(any), arg any) Event {
	if d < 0 {
		d = 0
	}
	return e.ScheduleArg(e.now.Add(d), fn, arg)
}

// AfterArgToken is AfterArg with a residual-tie token (see Token): the
// child inherits the usual ChildLineage but carries a content-derived final
// tie-break. It is the local-scheduling twin of the cross-shard
// ScheduleArgKey path.
func (e *Engine) AfterArgToken(d Duration, tok Token, fn func(any), arg any) Event {
	if d < 0 {
		d = 0
	}
	return e.ScheduleArgKey(e.now.Add(d), e.ChildLineage(), tok, fn, arg)
}

// Cancel removes a scheduled event. Cancelling the zero Event, an event that
// already fired or was already cancelled, or a stale handle whose slot was
// recycled is a no-op.
func (e *Engine) Cancel(ev Event) {
	if ev.slot == 0 || ev.eng != e {
		return
	}
	idx := ev.slot - 1
	s := &e.slots[idx]
	if s.gen != ev.gen || s.state != slotPending {
		return
	}
	e.heapRemove(s.pos)
	e.release(idx, slotCancelled)
}

// release clears a slot's callback and returns it to the free list.
func (e *Engine) release(idx int32, outcome slotState) {
	s := &e.slots[idx]
	s.state = outcome
	s.fn = nil
	s.argFn = nil
	s.arg = nil
	e.free = append(e.free, idx)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// SetDeadline makes Run refuse to execute events past t (0 disables).
func (e *Engine) SetDeadline(t Time) { e.maxTime = t }

// Step executes the single earliest pending event. It reports whether an
// event was executed.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	idx := e.heap[0]
	s := &e.slots[idx]
	if e.maxTime != 0 && s.at > e.maxTime {
		return false // out of time budget; leave it queued
	}
	e.heapPopRoot()
	e.now = s.at
	e.curLin = s.lin
	e.curTok = s.tok
	fn, argFn, arg := s.fn, s.argFn, s.arg
	e.executed++
	// Mark fired before invoking: a callback cancelling its own handle must
	// be a no-op (Cancel's guard sees non-pending), not a heap corruption.
	// The slot is recycled only after the callback returns, so the firing
	// event's own handle stays accurate inside its callback.
	s.state = slotFired
	if fn != nil {
		fn()
	} else {
		argFn(arg)
	}
	e.release(idx, slotFired)
	return true
}

// Run executes events until none remain, Stop is called, or the deadline is
// reached. It returns the final simulated time.
func (e *Engine) Run() Time {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= t and then advances the clock
// to exactly t (if it is in the future). It returns the final time, t.
func (e *Engine) RunUntil(t Time) Time {
	e.stopped = false
	for !e.stopped {
		if len(e.heap) == 0 || e.slots[e.heap[0]].at > t {
			break
		}
		if !e.Step() {
			break
		}
	}
	if e.now < t {
		e.now = t
	}
	return e.now
}

// CurrentLineage returns the lineage of the event currently (or most
// recently) executing. The sharded observer replay uses it to merge
// per-shard observations back into the serial engine's order.
func (e *Engine) CurrentLineage() Lineage { return e.curLin }

// CurrentToken returns the token of the event currently (or most recently)
// executing, the residual-tie companion of CurrentLineage.
func (e *Engine) CurrentToken() Token { return e.curTok }

// PeekKey returns the ordering key (at, lineage, token) of the earliest
// pending event. ok is false when nothing is pending.
func (e *Engine) PeekKey() (at Time, lin Lineage, tok Token, ok bool) {
	if len(e.heap) == 0 {
		return 0, Lineage{}, Token{}, false
	}
	s := &e.slots[e.heap[0]]
	return s.at, s.lin, s.tok, true
}

// SetContext primes the scheduling context (current lineage and token)
// without executing an event. The shard group aligns every shard engine on
// the control event about to execute, so anything that event schedules on a
// shard engine derives the same child lineage a single serial engine would
// have produced (where the control event IS the last event executed).
func (e *Engine) SetContext(lin Lineage, tok Token) {
	e.curLin = lin
	e.curTok = tok
}

// SetNow advances the clock to t without executing anything. It is used by
// the shard group to align every engine on a globally-serialized event's
// timestamp before executing it. Moving the clock backwards, or past the
// earliest pending event, panics.
func (e *Engine) SetNow(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: SetNow(%v) before now %v", t, e.now))
	}
	if len(e.heap) > 0 {
		if head := e.slots[e.heap[0]].at; head < t {
			panic(fmt.Sprintf("sim: SetNow(%v) past pending event at %v", t, head))
		}
	}
	e.now = t
}

// RunWindow executes every pending event with timestamp strictly below
// horizon and returns the number executed. The clock is left at the last
// executed event (it does NOT advance to horizon: the next window recomputes
// its own start from the global minimum). This is the per-shard body of one
// conservative-lookahead round; events scheduled during the window with
// timestamps below horizon execute in the same call.
func (e *Engine) RunWindow(horizon Time) int {
	n := 0
	for len(e.heap) > 0 && e.slots[e.heap[0]].at < horizon {
		if !e.Step() {
			break
		}
		n++
	}
	return n
}

// ----------------------------------------------------------------------
// 4-ary index heap over the slot slab, ordered by (at, lineage, token, seq).

// heapLess orders slots by firing time, then by causal lineage, then by
// content token, then FIFO.
//
// In a single-engine run (at, lineage, seq) orders identically to the
// historical (at, seq), so serial runs are bit-for-bit unchanged. Proof
// sketch, by induction over execution: among events sharing at, lineage[0]
// (the schedule time) is non-decreasing in seq because the clock is
// monotone; among events also sharing lineage[0] — all scheduled at that
// same instant — the parents executed at that instant in (at, lineage, seq)
// order, their lineages were therefore lexicographically non-decreasing,
// and each child's lineage tail is its parent's lineage truncated, which
// preserves non-strict order. Siblings of one parent share the whole
// lineage and keep their emission (seq) order. So lineage never contradicts
// seq serially; it only refines ties for cross-shard handoffs, which use a
// sender-captured lineage to re-enter the order they would have held under
// a single engine.
//
// The token CAN contradict seq — deliberately. It only compares when the
// full lineage ties, i.e. between event chains whose causal histories are
// time-identical for LineageDepth generations (phase-locked periodic
// traffic). For those the pre-token serial order was an accident of
// scheduling order anyway; the token replaces it with a content-derived
// order that serial and sharded runs compute identically.
func (e *Engine) heapLess(a, b int32) bool {
	sa, sb := &e.slots[a], &e.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	for i := range sa.lin {
		if sa.lin[i] != sb.lin[i] {
			return sa.lin[i] < sb.lin[i]
		}
	}
	if sa.tok != sb.tok {
		return sa.tok.Less(sb.tok)
	}
	return sa.seq < sb.seq
}

// heapSet writes a slot index at a heap position, maintaining the back-link.
func (e *Engine) heapSet(pos int, idx int32) {
	e.heap[pos] = idx
	e.slots[idx].pos = int32(pos)
}

// heapPush appends a slot and restores the heap property.
func (e *Engine) heapPush(idx int32) {
	e.heap = append(e.heap, idx)
	e.slots[idx].pos = int32(len(e.heap) - 1)
	e.siftUp(len(e.heap) - 1)
}

// heapPopRoot removes the minimum element.
func (e *Engine) heapPopRoot() {
	last := len(e.heap) - 1
	root := e.heap[0]
	e.slots[root].pos = -1
	if last == 0 {
		e.heap = e.heap[:0]
		return
	}
	e.heapSet(0, e.heap[last])
	e.heap = e.heap[:last]
	e.siftDown(0)
}

// heapRemove deletes the element at an arbitrary heap position.
func (e *Engine) heapRemove(pos int32) {
	p := int(pos)
	last := len(e.heap) - 1
	e.slots[e.heap[p]].pos = -1
	if p == last {
		e.heap = e.heap[:last]
		return
	}
	moved := e.heap[last]
	e.heap = e.heap[:last]
	e.heapSet(p, moved)
	e.siftUp(p)
	e.siftDown(p)
}

func (e *Engine) siftUp(i int) {
	idx := e.heap[i]
	for i > 0 {
		parent := (i - 1) >> 2
		if !e.heapLess(idx, e.heap[parent]) {
			break
		}
		e.heapSet(i, e.heap[parent])
		i = parent
	}
	e.heapSet(i, idx)
}

func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	idx := e.heap[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if e.heapLess(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		if !e.heapLess(e.heap[best], idx) {
			break
		}
		e.heapSet(i, e.heap[best])
		i = best
	}
	e.heapSet(i, idx)
}

// ----------------------------------------------------------------------
// Timer

// Timer is a restartable one-shot timer bound to an engine, in the style of
// time.Timer but in simulated time. It is the building block for TCP's RTO
// and delayed-ACK timers. The wrapper callback is created once, so Reset
// allocates nothing.
type Timer struct {
	eng  *Engine
	ev   Event
	fn   func()
	wrap func()
}

// NewTimer returns a stopped timer that will run fn when it fires.
func NewTimer(eng *Engine, fn func()) *Timer {
	if fn == nil {
		panic("sim: NewTimer with nil callback")
	}
	t := &Timer{eng: eng, fn: fn}
	t.wrap = func() {
		t.ev = Event{} // disarm before the callback so it may Reset
		t.fn()
	}
	return t
}

// Reset (re)arms the timer to fire d from now, cancelling any pending firing.
func (t *Timer) Reset(d Duration) {
	t.Stop()
	t.ev = t.eng.After(d, t.wrap)
}

// Stop disarms the timer if it is pending.
func (t *Timer) Stop() {
	if t.ev.slot != 0 {
		t.eng.Cancel(t.ev)
		t.ev = Event{}
	}
}

// Armed reports whether the timer is pending.
func (t *Timer) Armed() bool { return t.ev.slot != 0 }

// Deadline returns the pending firing time; valid only if Armed.
func (t *Timer) Deadline() Time {
	if t.ev.slot == 0 {
		return 0
	}
	return t.ev.At()
}
