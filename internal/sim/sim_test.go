package sim

import (
	"testing"

	"repro/internal/units"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(300, func() { order = append(order, 3) })
	e.Schedule(100, func() { order = append(order, 1) })
	e.Schedule(200, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != 300 {
		t.Errorf("final time = %v, want 300", e.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(50, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of scheduling order: %v", order)
		}
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := New()
	var hits []Time
	e.Schedule(10, func() {
		hits = append(hits, e.Now())
		e.After(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Errorf("hits = %v, want [10 15]", hits)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.Schedule(50, func() {})
	})
	e.Run()
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New().Schedule(1, nil)
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("event not marked cancelled")
	}
	if ev.Fired() {
		t.Error("cancelled event reports Fired")
	}
	// Double cancel and zero-handle cancel are no-ops.
	e.Cancel(ev)
	e.Cancel(Event{})
}

func TestCancelOneOfMany(t *testing.T) {
	e := New()
	var got []int
	var evs []Event
	for i := 0; i < 5; i++ {
		i := i
		evs = append(evs, e.Schedule(Time(10+i), func() { got = append(got, i) }))
	}
	e.Cancel(evs[2])
	e.Run()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Errorf("executed %d events after Stop, want 3", count)
	}
	if e.Pending() != 7 {
		t.Errorf("pending = %d, want 7", e.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20", fired)
	}
	if e.Now() != 25 {
		t.Errorf("now = %v, want 25 (clock advanced to target)", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Errorf("fired %v after second RunUntil", fired)
	}
}

func TestDeadline(t *testing.T) {
	e := New()
	ran := 0
	e.Schedule(10, func() { ran++ })
	e.Schedule(1000, func() { ran++ })
	e.SetDeadline(100)
	e.Run()
	if ran != 1 {
		t.Errorf("ran %d events, want 1 (deadline blocks the second)", ran)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
}

func TestExecutedCounter(t *testing.T) {
	e := New()
	for i := 1; i <= 5; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Executed() != 5 {
		t.Errorf("Executed = %d, want 5", e.Executed())
	}
}

func TestAfterClampsNegative(t *testing.T) {
	e := New()
	fired := false
	e.Schedule(10, func() {
		e.After(-5*units.Nanosecond, func() { fired = true })
	})
	e.Run()
	if !fired {
		t.Error("After with negative delay never fired")
	}
}

func TestTimerFiresOnce(t *testing.T) {
	e := New()
	count := 0
	tm := NewTimer(e, func() { count++ })
	tm.Reset(10)
	e.Run()
	if count != 1 {
		t.Errorf("timer fired %d times, want 1", count)
	}
	if tm.Armed() {
		t.Error("timer still armed after firing")
	}
}

func TestTimerReset(t *testing.T) {
	e := New()
	var at Time
	tm := NewTimer(e, func() { at = e.Now() })
	tm.Reset(10)
	e.Schedule(5, func() { tm.Reset(20) }) // re-arm to fire at 25
	e.Run()
	if at != 25 {
		t.Errorf("timer fired at %v, want 25 (reset postpones)", at)
	}
}

func TestTimerStop(t *testing.T) {
	e := New()
	fired := false
	tm := NewTimer(e, func() { fired = true })
	tm.Reset(10)
	tm.Stop()
	e.Run()
	if fired {
		t.Error("stopped timer fired")
	}
	tm.Stop() // double stop is a no-op
}

func TestTimerDeadline(t *testing.T) {
	e := New()
	tm := NewTimer(e, func() {})
	tm.Reset(42)
	if !tm.Armed() {
		t.Fatal("timer not armed")
	}
	if tm.Deadline() != 42 {
		t.Errorf("deadline = %v, want 42", tm.Deadline())
	}
	tm.Stop()
	if tm.Deadline() != 0 {
		t.Errorf("deadline after stop = %v, want 0", tm.Deadline())
	}
}

// TestFiredIsNotCancelled is the regression for the old API, where a single
// state ("callback cleared") conflated "cancelled before firing" with
// "already executed". The two must be distinguishable.
func TestFiredIsNotCancelled(t *testing.T) {
	e := New()
	fired := e.Schedule(10, func() {})
	cancelled := e.Schedule(20, func() {})
	pending := e.Schedule(99999, func() {})
	e.Cancel(cancelled)
	e.RunUntil(100)

	if !fired.Fired() {
		t.Error("executed event: Fired() = false")
	}
	if fired.Cancelled() {
		t.Error("executed event reports Cancelled — the states are conflated again")
	}
	if fired.Pending() {
		t.Error("executed event still Pending")
	}

	if !cancelled.Cancelled() || cancelled.Fired() || cancelled.Pending() {
		t.Errorf("cancelled event states: Cancelled=%v Fired=%v Pending=%v, want true/false/false",
			cancelled.Cancelled(), cancelled.Fired(), cancelled.Pending())
	}

	if !pending.Pending() || pending.Fired() || pending.Cancelled() {
		t.Error("pending event must be exactly Pending")
	}

	// The zero handle is inert in every state query.
	var zero Event
	if zero.Pending() || zero.Fired() || zero.Cancelled() {
		t.Error("zero Event reports a state")
	}
}

// TestCancelSelfDuringCallback pins cancel-after-pop safety: a callback
// cancelling its own (currently firing) handle is a documented no-op, not a
// heap corruption.
func TestCancelSelfDuringCallback(t *testing.T) {
	e := New()
	var ev Event
	ran := false
	ev = e.Schedule(5, func() {
		ran = true
		e.Cancel(ev) // already off the heap; must be ignored
	})
	e.Schedule(10, func() {})
	e.Run()
	if !ran {
		t.Fatal("callback never ran")
	}
	if !ev.Fired() || ev.Cancelled() {
		t.Errorf("self-cancelled firing event: Fired=%v Cancelled=%v, want true/false",
			ev.Fired(), ev.Cancelled())
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d after drain", e.Pending())
	}
}

// TestRescheduleAfterFire pins the reschedule-after-fire behavior: firing an
// event must not poison later schedulings, whether through the engine
// directly or through a Timer re-armed from its own callback.
func TestRescheduleAfterFire(t *testing.T) {
	e := New()
	count := 0
	e.Schedule(10, func() { count++ })
	e.Run()

	again := e.Schedule(20, func() { count++ })
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2 (second scheduling after fire must run)", count)
	}
	if !again.Fired() {
		t.Error("second event not marked fired")
	}

	// A timer re-armed from inside its own callback keeps firing.
	fires := 0
	var tm *Timer
	tm = NewTimer(e, func() {
		fires++
		if fires < 3 {
			tm.Reset(5)
		}
	})
	tm.Reset(5)
	e.Run()
	if fires != 3 {
		t.Errorf("self-rearming timer fired %d times, want 3", fires)
	}
	if tm.Armed() {
		t.Error("timer armed after its final firing")
	}
}

func TestManyEventsStress(t *testing.T) {
	e := New()
	const n = 100000
	count := 0
	// Insert in a scattered order via a simple LCG.
	seed := uint64(12345)
	for i := 0; i < n; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		at := Time(seed % 1000000)
		e.Schedule(at, func() { count++ })
	}
	var last Time
	e.Schedule(1000001, func() { last = e.Now() })
	e.Run()
	if count != n {
		t.Errorf("executed %d, want %d", count, n)
	}
	if last != 1000001 {
		t.Errorf("last event at %v", last)
	}
}
