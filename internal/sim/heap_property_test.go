package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refEvent / refHeap is the pre-slab engine's data structure: per-event
// pointer allocations ordered by container/heap. It serves as the reference
// model the slab-backed 4-ary heap must match operation for operation.
type refEvent struct {
	at    Time
	seq   uint64
	id    int
	dead  bool
	index int
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *refHeap) Push(x any) {
	e := x.(*refEvent)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// refEngine is the minimal reference scheduler.
type refEngine struct {
	now    Time
	seq    uint64
	events refHeap
	order  []int
}

func (r *refEngine) schedule(at Time, id int) *refEvent {
	e := &refEvent{at: at, seq: r.seq, id: id}
	r.seq++
	heap.Push(&r.events, e)
	return e
}

func (r *refEngine) cancel(e *refEvent) {
	if e.dead || e.index < 0 {
		return
	}
	e.dead = true
	heap.Remove(&r.events, e.index)
}

func (r *refEngine) step() bool {
	if len(r.events) == 0 {
		return false
	}
	e := heap.Pop(&r.events).(*refEvent)
	r.now = e.at
	r.order = append(r.order, e.id)
	return true
}

// TestHeapMatchesReferenceOrder drives the slab engine and the reference
// scheduler through an identical random stream of schedule / cancel /
// reschedule / step operations and requires every event to fire in the same
// order on both. This pins the 4-ary index heap to container/heap semantics,
// including FIFO tie-breaking and cancellation of arbitrary heap positions.
func TestHeapMatchesReferenceOrder(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		rng := rand.New(rand.NewSource(seed))

		eng := New()
		ref := &refEngine{}
		var engOrder []int

		type livePair struct {
			ev  Event
			ref *refEvent
		}
		var live []livePair
		nextID := 0

		schedule := func() {
			at := eng.Now() + Time(rng.Intn(50)) // frequent ties on purpose
			id := nextID
			nextID++
			ev := eng.Schedule(at, func() { engOrder = append(engOrder, id) })
			live = append(live, livePair{ev: ev, ref: ref.schedule(at, id)})
		}

		cancelRandom := func() {
			if len(live) == 0 {
				return
			}
			i := rng.Intn(len(live))
			eng.Cancel(live[i].ev)
			ref.cancel(live[i].ref)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}

		for op := 0; op < 6000; op++ {
			switch r := rng.Intn(10); {
			case r < 5:
				schedule()
			case r < 7:
				cancelRandom()
			case r < 8:
				// Reschedule: cancel one pending event and schedule a
				// replacement at a fresh time.
				cancelRandom()
				schedule()
			default:
				// Execute a few events on both sides.
				for i := rng.Intn(3); i >= 0; i-- {
					if eng.Step() != ref.step() {
						t.Fatalf("seed %d: engines disagree on whether events remain", seed)
					}
				}
			}
			if eng.Pending() != ref.events.Len() {
				t.Fatalf("seed %d op %d: pending %d vs reference %d",
					seed, op, eng.Pending(), ref.events.Len())
			}
		}
		// Drain both.
		for eng.Step() {
		}
		for ref.step() {
		}

		if len(engOrder) != len(ref.order) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(engOrder), len(ref.order))
		}
		for i := range engOrder {
			if engOrder[i] != ref.order[i] {
				t.Fatalf("seed %d: divergence at position %d: got event %d, reference %d",
					seed, i, engOrder[i], ref.order[i])
			}
		}
		if eng.Now() != ref.now {
			t.Errorf("seed %d: final time %v vs reference %v", seed, eng.Now(), ref.now)
		}
	}
}

// TestHeapSlabRecycling checks that the slab actually recycles slots instead
// of growing without bound through a schedule/fire churn.
func TestHeapSlabRecycling(t *testing.T) {
	e := New()
	for i := 0; i < 10000; i++ {
		e.Schedule(e.Now()+1, func() {})
		e.Run()
	}
	if got := len(e.slots); got > 8 {
		t.Errorf("slab grew to %d slots under churn with <=1 pending event", got)
	}
}
