package sim

import (
	"fmt"
	"sort"

	"repro/internal/pool"
)

// This file implements the sharded event loop: several Engines — one per
// fabric partition plus one control engine for globally-serialized events —
// advancing in lockstep under conservative lookahead.
//
// The contract (DESIGN.md §2.6):
//
//   - Shard engines own disjoint state and may only interact through
//     timestamped handoffs whose delivery lag is at least the group's
//     Lookahead (in the fabric: the minimum cross-shard link propagation
//     delay).
//   - The group repeatedly opens a window [T, H) with T = the earliest
//     pending shard event and H = min(T+Lookahead, next control event). All
//     shards execute their local events below H concurrently; any handoff
//     they emit has an arrival timestamp ≥ T+Lookahead ≥ H, so one round per
//     window is sufficient — no shard can receive work it should already
//     have executed.
//   - At each barrier the coordinator drains the handoff lanes into the
//     destination engines in a deterministic order, backdating each entry's
//     schedAt key to its send time so it sorts exactly where a single serial
//     engine would have placed it.
//   - Control events (job bookkeeping with zero-lag global effects) run on
//     the coordinator with every engine's clock aligned, which is safe
//     because no shard holds an earlier pending event at that point.
//
// With one shard the control engine IS the shard engine and RunLoop is the
// classic serial step loop — Shards(1) is the serial engine, not a
// lookalike.

// RunOutcome reports how a group run ended.
type RunOutcome int

// Run outcomes.
const (
	// RunDone: the done predicate returned true.
	RunDone RunOutcome = iota
	// RunDeadlock: no events remain anywhere but done() is still false.
	RunDeadlock
	// RunTimeout: the next event lies past the deadline.
	RunTimeout
)

// ctrlEntry is a control-event registration emitted by a shard during a
// parallel window, held until the next barrier.
type ctrlEntry struct {
	at  Time
	lin Lineage
	fn  func()
}

// Group coordinates one control engine and N shard engines.
type Group struct {
	shards    []*Engine
	ctrl      *Engine
	lookahead Duration

	// OnBarrier, if set, runs on the coordinator at every synchronization
	// point (barrier exits, and before serial execution). The fabric drains
	// its cross-shard packet lanes and replays buffered observations here.
	OnBarrier func()

	set      *pool.ShardSet
	horizon  Time
	parallel bool
	ctrlBox  [][]ctrlEntry
	flushBuf []ctrlEntry
}

// NewGroup builds a group over n shard engines. With n == 1 the control
// engine is the shard engine itself and the run loop degenerates to the
// serial engine. lookahead is the conservative horizon; it must be positive
// when n > 1.
func NewGroup(shards []*Engine, lookahead Duration) *Group {
	if len(shards) == 0 {
		panic("sim: NewGroup with no shards")
	}
	g := &Group{shards: shards, lookahead: lookahead}
	if len(shards) == 1 {
		g.ctrl = shards[0]
	} else {
		if lookahead <= 0 {
			panic(fmt.Sprintf("sim: NewGroup with %d shards needs positive lookahead, got %v", len(shards), lookahead))
		}
		g.ctrl = New()
		g.ctrlBox = make([][]ctrlEntry, len(shards))
	}
	return g
}

// Shards returns the shard engines (index = shard id).
func (g *Group) Shards() []*Engine { return g.shards }

// Ctrl returns the control engine. With one shard it is the shard engine.
func (g *Group) Ctrl() *Engine { return g.ctrl }

// Serial reports whether the group is the one-shard degenerate case.
func (g *Group) Serial() bool { return len(g.shards) == 1 }

// Lookahead returns the conservative horizon.
func (g *Group) Lookahead() Duration { return g.lookahead }

// Executed sums executed events over every engine in the group.
func (g *Group) Executed() uint64 {
	n := uint64(0)
	for _, sh := range g.shards {
		n += sh.Executed()
	}
	if !g.Serial() {
		n += g.ctrl.Executed()
	}
	return n
}

// Now returns the control engine's clock — the time of the last
// globally-serialized event, which is what a serial run's Now() reports
// after RunLoop returns.
func (g *Group) Now() Time { return g.ctrl.Now() }

// InParallelWindow reports whether shard workers are currently executing a
// window. Callers on shard goroutines use it to decide between direct
// scheduling and barrier-deferred handoff.
func (g *Group) InParallelWindow() bool { return g.parallel }

// ScheduleControl registers fn as a globally-serialized event at time at,
// ordered by the sender-captured lineage, from the context of the given
// shard. During a parallel window the registration is buffered shard-locally
// and flushed at the next barrier; in serial contexts it lands on the
// control engine immediately. Either way the control heap orders it by
// (at, lineage), exactly where a serial engine would have put it.
func (g *Group) ScheduleControl(shard int, at Time, lin Lineage, fn func()) {
	if g.parallel {
		g.ctrlBox[shard] = append(g.ctrlBox[shard], ctrlEntry{at: at, lin: lin, fn: fn})
		return
	}
	g.ctrl.ScheduleLineage(at, lin, fn)
}

// flushCtrl moves buffered control registrations onto the control engine in
// deterministic (at, lineage, shard, arrival) order.
func (g *Group) flushCtrl() {
	buf := g.flushBuf[:0]
	for _, box := range g.ctrlBox {
		buf = append(buf, box...)
	}
	if len(buf) == 0 {
		g.flushBuf = buf
		return
	}
	for i := range g.ctrlBox {
		g.ctrlBox[i] = g.ctrlBox[i][:0]
	}
	sort.SliceStable(buf, func(i, j int) bool {
		if buf[i].at != buf[j].at {
			return buf[i].at < buf[j].at
		}
		return buf[i].lin.Less(buf[j].lin)
	})
	for i := range buf {
		g.ctrl.ScheduleLineage(buf[i].at, buf[i].lin, buf[i].fn)
		buf[i].fn = nil
	}
	g.flushBuf = buf[:0]
}

// keyLess orders two (lineage, token) key tails lexicographically.
func keyLess(l1 Lineage, t1 Token, l2 Lineage, t2 Token) bool {
	if l1 != l2 {
		return l1.Less(l2)
	}
	return t1.Less(t2)
}

// minShard returns the earliest pending shard event key and its shard.
func (g *Group) minShard() (at Time, lin Lineage, tok Token, shard int, ok bool) {
	for i, sh := range g.shards {
		a, l, t, has := sh.PeekKey()
		if !has {
			continue
		}
		if !ok || a < at || (a == at && keyLess(l, t, lin, tok)) {
			at, lin, tok, shard, ok = a, l, t, i, true
		}
	}
	return at, lin, tok, shard, ok
}

// barrier runs the coordinator-side drain hook.
func (g *Group) barrier() {
	if g.OnBarrier != nil {
		g.OnBarrier()
	}
}

// RunLoop drives the group until done() reports true, no events remain
// (RunDeadlock), or the next event lies past deadline (RunTimeout; 0 means
// unbounded). done is evaluated on the coordinator after every
// globally-serialized event, matching the serial loop's per-step check —
// shard-local events cannot change it.
func (g *Group) RunLoop(done func() bool, deadline Time) RunOutcome {
	if g.Serial() {
		// The classic serial loop, verbatim: Shards(1) is not a simulation
		// of the old engine, it is the old engine.
		e := g.ctrl
		for !done() {
			if !e.Step() {
				return RunDeadlock
			}
			if deadline != 0 && e.Now() > deadline {
				return RunTimeout
			}
		}
		return RunDone
	}

	g.set = pool.NewShardSet(len(g.shards), g.runShard)
	defer func() {
		g.set.Close()
		g.set = nil
	}()
	// Final drain, LIFO-ordered before the worker shutdown above: a tie-step
	// or the last control event can buffer handoffs and observations after
	// the last in-loop barrier, and a serial run would have counted them.
	// Workers are parked between rounds, so the drain is race-free.
	defer func() {
		g.flushCtrl()
		g.barrier()
	}()

	for !done() {
		g.flushCtrl()
		g.barrier()

		gAt, gLin, gTok, gOK := g.ctrl.PeekKey()
		mAt, mLin, mTok, mi, mOK := g.minShard()
		if !gOK && !mOK {
			return RunDeadlock
		}
		next := gAt
		if mOK && (!gOK || mAt < gAt) {
			next = mAt
		}
		if deadline != 0 && next > deadline {
			return RunTimeout
		}

		if mOK {
			h := mAt.Add(g.lookahead)
			if gOK && gAt < h {
				h = gAt
			}
			if h > mAt {
				// Parallel window [mAt, h): every shard runs its local
				// events below h concurrently, then the barrier at the top
				// of the loop drains what they emitted.
				g.horizon = h
				g.parallel = true
				g.set.Round()
				g.parallel = false
				continue
			}
			// h <= mAt means a control event caps the window at or before the
			// shard minimum. Only at a genuinely shared instant does the key
			// tail decide; if the control event is strictly earlier it is
			// globally next regardless of lineage (a shard event's lineage
			// starts at its *schedule* time, which can predate everything).
			if gAt == mAt && !keyLess(gLin, gTok, mLin, mTok) {
				g.shards[mi].Step()
				continue
			}
		}

		// The control event is globally next. Align every clock on its
		// timestamp — safe: no shard holds an earlier pending event — then
		// execute it serially so its zero-lag global effects (scheduling on
		// any engine, cross-shard sends) happen with all workers parked.
		for _, sh := range g.shards {
			if sh.Now() < gAt {
				sh.SetNow(gAt)
			}
			sh.SetContext(gLin, gTok)
		}
		g.ctrl.Step()
		if deadline != 0 && g.ctrl.Now() > deadline {
			return RunTimeout
		}
	}
	return RunDone
}

// runShard is the per-round worker body.
func (g *Group) runShard(i int) {
	g.shards[i].RunWindow(g.horizon)
}
