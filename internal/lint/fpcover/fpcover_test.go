package fpcover_test

import (
	"testing"

	"repro/internal/lint/fpcover"
	"repro/internal/lint/linttest"
)

func TestCoverageAndSerializability(t *testing.T) {
	linttest.Run(t, fpcover.Analyzer, "testdata/src/fp", "repro/somepkg")
}

func TestPackagesWithoutFingerprintAreSilent(t *testing.T) {
	linttest.Run(t, fpcover.Analyzer, "testdata/src/plain", "repro/somepkg")
}
