package fpcover_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint/fpcover"
	"repro/internal/lint/linttest"
)

func TestCoverageAndSerializability(t *testing.T) {
	linttest.Run(t, fpcover.Analyzer, "testdata/src/fp", "repro/somepkg")
}

// TestFixtureInSync pins the golden fixture to its generator: the on-disk
// testdata is a build artifact of fpcover.FixtureSource, never hand-edited,
// so a new builder pattern is added exactly once (in fixture.go) and cannot
// silently drift out of the linted form.
func TestFixtureInSync(t *testing.T) {
	path := filepath.Join("testdata", "src", "fp", "fp.go")
	disk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(disk), fpcover.FixtureSource(); got != want {
		t.Errorf("%s drifted from fpcover.FixtureSource; regenerate with: go run ./internal/lint/fpcover/gen", path)
	}
}

func TestPackagesWithoutFingerprintAreSilent(t *testing.T) {
	linttest.Run(t, fpcover.Analyzer, "testdata/src/plain", "repro/somepkg")
}
