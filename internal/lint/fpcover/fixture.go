package fpcover

import "strings"

// FixtureSource returns the canonical source of the golden coverage fixture
// (testdata/src/fp/fp.go). The fixture is generated, not hand-edited: every
// builder pattern the analyzer must understand — nested lowering hops,
// annotation-allowed bookkeeping, conditionally-lowered option blocks — is
// added here once, and TestFixtureInSync fails if the on-disk copy drifts.
// Regenerate with:
//
//	go run ./internal/lint/fpcover/gen
func FixtureSource() string {
	// The fixture carries struct tags; ~ stands in for the backquote so this
	// source can stay one raw literal.
	return strings.ReplaceAll(fixtureTemplate, "~", "`")
}

const fixtureTemplate = `// Golden fixture for the fingerprintcoverage analyzer: a miniature of the
// ecnsim builder. Serializability diagnostics anchor at the canonicalConfig
// field that roots the offending path; coverage diagnostics anchor at the
// unread Cluster field.
//
// Generated from internal/lint/fpcover/fixture.go — do not edit by hand;
// run: go run ./internal/lint/fpcover/gen
package fp

import "encoding/json"

type lowered struct {
	Exported int ~json:"exported"~
	hidden   int
	// Shards mirrors the run-plan lowering: the builder's shard request
	// reaches the canonical form through a nested lowering call, two hops
	// below canonicalJSON.
	Shards int ~json:"shards"~
	// Notify/NotifyThreshold mirror the conditional option blocks (hybrid,
	// notifications): resolved defaults that lower only under their enabler,
	// so the off form stays byte-identical to the engine before the option
	// existed.
	Notify          bool ~json:"notify,omitempty"~
	NotifyThreshold int  ~json:"notify_threshold,omitempty"~
}

type canonicalConfig struct {
	Config  lowered ~json:"config"~ // want "path Config.hidden is unexported"
	Skipped int     ~json:"-"~      // want "carries json:"
	Hook    func()  ~json:"hook"~   // want "cannot canonicalize"
	Depth   int     ~json:"depth"~
}

type Cluster struct {
	depth   int
	skipped int
	hook    func()
	stray   int // want "never reaches canonicalJSON"
	shards  int
	// notify/notifyThreshold are read inside lower's conditional block:
	// coverage must count a field as fingerprinted even when its read is
	// gated on the enabler.
	notify          bool
	notifyThreshold int
	// resolved only steers defaulting; the resolved value lands in Depth.
	//ecnlint:allow fingerprintcoverage golden-test fixture for resolution-only bookkeeping
	resolved bool
	// warnings mirrors the builder's demotion records: advisory output that
	// never reaches the simulation, so it stays out of the canonical form by
	// annotation (as a []error it could not marshal anyway).
	//ecnlint:allow fingerprintcoverage golden-test fixture for advisory demotion records
	warnings []error
}

// shardPlan is the second lowering hop: coverage must follow
// canonicalJSON -> lower -> shardPlan to see c.shards read.
func (c *Cluster) shardPlan() int {
	return c.shards
}

func (c *Cluster) lower() lowered {
	l := lowered{Exported: c.depth, Shards: c.shardPlan()}
	if c.notify {
		l.Notify = true
		l.NotifyThreshold = c.notifyThreshold
	}
	return l
}

func (c *Cluster) canonicalJSON() []byte {
	b, _ := json.Marshal(canonicalConfig{
		Config:  c.lower(),
		Skipped: c.skipped,
		Hook:    c.hook,
		Depth:   c.depth,
	})
	return b
}

func use(c *Cluster) (int, bool) {
	return c.stray, c.resolved
}

func warned(c *Cluster) []error {
	return c.warnings
}
`
