// Golden fixture for the fingerprintcoverage analyzer: a miniature of the
// ecnsim builder. Serializability diagnostics anchor at the canonicalConfig
// field that roots the offending path; coverage diagnostics anchor at the
// unread Cluster field.
package fp

import "encoding/json"

type lowered struct {
	Exported int `json:"exported"`
	hidden   int
}

type canonicalConfig struct {
	Config  lowered `json:"config"` // want "path Config.hidden is unexported"
	Skipped int     `json:"-"`      // want "carries json:"
	Hook    func()  `json:"hook"`   // want "cannot canonicalize"
	Depth   int     `json:"depth"`
}

type Cluster struct {
	depth   int
	skipped int
	hook    func()
	stray   int // want "never reaches canonicalJSON"
	// resolved only steers defaulting; the resolved value lands in Depth.
	//ecnlint:allow fingerprintcoverage golden-test fixture for resolution-only bookkeeping
	resolved bool
}

func (c *Cluster) lower() lowered {
	return lowered{Exported: c.depth}
}

func (c *Cluster) canonicalJSON() []byte {
	b, _ := json.Marshal(canonicalConfig{
		Config:  c.lower(),
		Skipped: c.skipped,
		Hook:    c.hook,
		Depth:   c.depth,
	})
	return b
}

func use(c *Cluster) (int, bool) {
	return c.stray, c.resolved
}
