// A package without the canonicalConfig/Cluster/canonicalJSON trio: the
// analyzer must not fire at all, whatever the code does.
package plain

type Config struct {
	hidden int
}

func Sum(c Config) int { return c.hidden }
