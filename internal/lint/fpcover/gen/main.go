// Regenerates the fingerprintcoverage golden fixture from its canonical
// source (fpcover.FixtureSource), so adding a builder pattern to the fixture
// is one edit in fixture.go instead of hand-synchronized test data:
//
//	go run ./internal/lint/fpcover/gen
package main

import (
	"log"
	"os"
	"path/filepath"

	"repro/internal/lint/fpcover"
)

func main() {
	path := filepath.Join("internal", "lint", "fpcover", "testdata", "src", "fp", "fp.go")
	if _, err := os.Stat(filepath.Dir(path)); err != nil {
		log.Fatalf("fpcover/gen: run from the module root: %v", err)
	}
	if err := os.WriteFile(path, []byte(fpcover.FixtureSource()), 0o644); err != nil {
		log.Fatalf("fpcover/gen: %v", err)
	}
	log.Printf("fpcover/gen: wrote %s", path)
}
