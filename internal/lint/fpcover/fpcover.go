// Package fpcover machine-checks the campaign cache-key invariant from PR 5
// (DESIGN.md §2.4): an option cannot reach the simulation without reaching
// the cache key. The key is a hash of Cluster.Fingerprint's canonical JSON,
// produced by marshaling a canonicalConfig built from the same lowering
// functions the scenarios run through. Two ways for a knob to silently
// escape that hash:
//
//  1. A builder field added to Cluster but never read anywhere in
//     canonicalJSON's call closure — the option changes what runs, the
//     fingerprint doesn't move, and the cache serves a stale result.
//  2. A field of a lowered config struct that encoding/json skips —
//     unexported, tagged `json:"-"`, or of an unserializable kind — so the
//     value rides into the simulation but not into the canonical form.
//
// The analyzer fires in any package that declares a struct type named
// canonicalConfig together with a Cluster type carrying a canonicalJSON
// method (in this module: package ecnsim). Pure bookkeeping fields that
// deliberately stay out of the fingerprint (they change how defaults
// resolve, not what runs) carry an `//ecnlint:allow fingerprintcoverage`
// annotation at their declaration.
package fpcover

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"

	"repro/internal/lint/analysis"
)

// Analyzer is the fingerprintcoverage pass.
var Analyzer = &analysis.Analyzer{
	Name: "fingerprintcoverage",
	Doc: "prove every Cluster builder field reaches canonicalJSON's call " +
		"closure and every lowered config field survives JSON " +
		"marshaling — the cache-key invariant of DESIGN.md §2.4",
	URL: "DESIGN.md#25-determinism-lint",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	scope := pass.Pkg.Scope()
	canonicalObj := scope.Lookup("canonicalConfig")
	clusterObj := scope.Lookup("Cluster")
	if canonicalObj == nil || clusterObj == nil {
		return nil, nil // not the fingerprint-defining package
	}
	canonical, ok := structOf(canonicalObj.Type())
	if !ok {
		return nil, nil
	}
	clusterStruct, ok := structOf(clusterObj.Type())
	if !ok {
		return nil, nil
	}
	entry := methodDecl(pass, clusterObj.Type(), "canonicalJSON")
	if entry == nil {
		return nil, nil
	}

	checkSerializable(pass, canonical)
	checkBuilderCoverage(pass, clusterStruct, entry)
	return nil, nil
}

func structOf(t types.Type) (*types.Struct, bool) {
	s, ok := t.Underlying().(*types.Struct)
	return s, ok
}

// methodDecl finds the declaration of the named method on recv (value or
// pointer receiver) among the pass's files.
func methodDecl(pass *analysis.Pass, recv types.Type, name string) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != name {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			r := obj.Type().(*types.Signature).Recv()
			if r == nil {
				continue
			}
			rt := r.Type()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			if types.Identical(rt, recv) {
				return fd
			}
		}
	}
	return nil
}

// checkSerializable walks the type graph hanging off canonicalConfig and
// reports any field encoding/json would silently skip. Diagnostics anchor at
// the canonicalConfig field that roots the offending path, so the finding is
// always in the analyzed package even when the broken field lives in a
// lowered internal struct.
func checkSerializable(pass *analysis.Pass, canonical *types.Struct) {
	for i := 0; i < canonical.NumFields(); i++ {
		root := canonical.Field(i)
		// The root fields get the same exportedness/tag checks walkJSON
		// applies to nested structs — anchored at themselves.
		if !root.Exported() {
			pass.Reportf(root.Pos(), "canonical-config path %s is unexported: encoding/json skips it, so a value stored there changes the simulation without changing Fingerprint's cache key (DESIGN.md §2.4)", root.Name())
			continue
		}
		if tag := reflect.StructTag(canonical.Tag(i)).Get("json"); tag == "-" {
			pass.Reportf(root.Pos(), "canonical-config path %s carries json:\"-\": it is excluded from the canonical form, so the option escapes the cache key (DESIGN.md §2.4)", root.Name())
			continue
		}
		walkJSON(pass, root.Type(), root.Name(), root.Pos(), make(map[*types.Named]bool))
	}
}

func walkJSON(pass *analysis.Pass, t types.Type, path string, pos token.Pos, seen map[*types.Named]bool) {
	switch tt := types.Unalias(t).(type) {
	case *types.Pointer:
		walkJSON(pass, tt.Elem(), path, pos, seen)
	case *types.Slice:
		walkJSON(pass, tt.Elem(), path+"[]", pos, seen)
	case *types.Array:
		walkJSON(pass, tt.Elem(), path+"[]", pos, seen)
	case *types.Map:
		// encoding/json sorts map keys, so the container itself is
		// deterministic; only the element type needs checking.
		walkJSON(pass, tt.Elem(), path+"[key]", pos, seen)
	case *types.Named:
		if seen[tt] {
			return
		}
		seen[tt] = true
		walkJSON(pass, tt.Underlying(), path, pos, seen)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			f := tt.Field(i)
			sub := path + "." + f.Name()
			if !f.Exported() {
				pass.Reportf(pos, "canonical-config path %s is unexported: encoding/json skips it, so a value stored there changes the simulation without changing Fingerprint's cache key (DESIGN.md §2.4)", sub)
				continue
			}
			if tag := reflect.StructTag(tt.Tag(i)).Get("json"); tag == "-" {
				pass.Reportf(pos, "canonical-config path %s carries json:\"-\": it is excluded from the canonical form, so the option escapes the cache key (DESIGN.md §2.4)", sub)
				continue
			}
			walkJSON(pass, f.Type(), sub, pos, seen)
		}
	case *types.Basic:
		// Serializable leaf.
	default:
		// Interfaces, funcs, channels: json.Marshal would either error or
		// (for nil interfaces) hide arbitrary dynamic state from the key.
		pass.Reportf(pos, "canonical-config path %s has type %s, which encoding/json cannot canonicalize: the value would reach the simulation without reaching the cache key (DESIGN.md §2.4)", path, t.String())
	}
}

// checkBuilderCoverage computes the set of Cluster fields read anywhere in
// the call closure of canonicalJSON (following static intra-package calls)
// and reports every builder field the closure never touches.
func checkBuilderCoverage(pass *analysis.Pass, cluster *types.Struct, entry *ast.FuncDecl) {
	clusterFields := make(map[*types.Var]bool)
	for i := 0; i < cluster.NumFields(); i++ {
		clusterFields[cluster.Field(i)] = true
	}

	// Index this package's function/method declarations by their object so
	// calls resolve to bodies.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}

	read := make(map[*types.Var]bool)
	visited := make(map[*ast.FuncDecl]bool)
	var visit func(fd *ast.FuncDecl)
	visit = func(fd *ast.FuncDecl) {
		if fd == nil || visited[fd] || fd.Body == nil {
			return
		}
		visited[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
					if v, ok := sel.Obj().(*types.Var); ok && clusterFields[v] {
						read[v] = true
					}
				}
			case *ast.Ident:
				if fn, ok := pass.TypesInfo.Uses[x].(*types.Func); ok {
					visit(decls[fn])
				}
			}
			return true
		})
	}
	visit(entry)

	for i := 0; i < cluster.NumFields(); i++ {
		f := cluster.Field(i)
		if read[f] {
			continue
		}
		pass.Reportf(f.Pos(), "Cluster field %q never reaches canonicalJSON's call closure: an option stored here changes what runs without moving Fingerprint, so the campaign cache would serve stale results (DESIGN.md §2.4); lower it into the canonical config, or annotate it as resolution-only bookkeeping", f.Name())
	}
}
