// Package analysis is the minimal analyzer framework the determinism lint
// suite runs on: an API-compatible subset of golang.org/x/tools/go/analysis,
// reimplemented on the standard library because this module deliberately
// carries no third-party dependencies. An Analyzer receives one fully
// type-checked package per Pass and reports Diagnostics; drivers (cmd/ecnlint
// standalone, the go vet -vettool unit checker, the linttest golden harness
// and the root regression test) share the same Analyzer values, so a pass
// behaves identically however it is invoked.
//
// Only the surface the suite needs is implemented: no facts, no modular
// result passing between analyzers, no suggested fixes. If the module ever
// gains a dependency on golang.org/x/tools, the analyzers port by changing
// one import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one determinism pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and in
	// "//ecnlint:allow <name> <reason>" suppression comments. It must be a
	// valid identifier.
	Name string
	// Doc is the one-paragraph description `ecnlint help` prints.
	Doc string
	// URL points at the contract the pass enforces (a DESIGN.md anchor).
	URL string
	// Run executes the pass over one package.
	Run func(*Pass) (any, error)
}

// Pass carries one type-checked package through an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Inspect walks every file of the pass in depth-first order, calling fn for
// each node; fn returning false prunes the subtree (ast.Inspect semantics).
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// WithStack walks every file like Inspect but also hands fn the stack of
// ancestor nodes, outermost first and excluding n itself. Returning false
// prunes the subtree.
func (p *Pass) WithStack(fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := fn(n, stack)
			if descend {
				stack = append(stack, n)
			}
			return descend
		})
	}
}
