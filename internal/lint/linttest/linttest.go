// Package linttest is the golden-test harness for the determinism
// analyzers, modeled on golang.org/x/tools/go/analysis/analysistest. A
// testdata directory holds one small package; comments of the form
//
//	// want "regexp"
//
// on a line declare that the analyzer must report a diagnostic on that line
// whose message matches the (Go-quoted) regular expression. Multiple want
// patterns on one line expect multiple diagnostics. Any reported diagnostic
// without a matching want, or want without a matching diagnostic, fails the
// test.
//
// Runs go through the real lint.Run driver, so "//ecnlint:allow"
// suppressions behave in testdata exactly as they do in the tree — a
// suppressed line simply carries no want.
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads dir as one package under the import path asPath and checks a's
// diagnostics (after suppression) against the want comments. Assigning the
// import path is what lets testdata exercise path-sensitive rules: the same
// files can play the role of a simulation package or of an exempt one.
func Run(t *testing.T, a *analysis.Analyzer, dir, asPath string) {
	t.Helper()
	pkg, err := load.Files(dir, asPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	findings, err := lint.Run([]*load.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkg)
	for _, f := range findings {
		key := lineKey{f.Pos.Filename, f.Pos.Line}
		if i := matchWant(wants[key], f.Message); i >= 0 {
			wants[key] = append(wants[key][:i], wants[key][i+1:]...)
			continue
		}
		t.Errorf("unexpected diagnostic at %s: %s: %s", f.Pos, f.Analyzer, f.Message)
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, re.String())
		}
	}
}

type lineKey struct {
	file string
	line int
}

// matchWant returns the index of the first pattern matching msg, or -1.
func matchWant(res []*regexp.Regexp, msg string) int {
	for i, re := range res {
		if re.MatchString(msg) {
			return i
		}
	}
	return -1
}

func collectWants(t *testing.T, pkg *load.Package) map[lineKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[lineKey][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					pattern, err := unescape(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					key := lineKey{pos.Filename, pos.Line}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

// unescape undoes the minimal string escaping want patterns need inside a
// quoted segment (\" and \\).
func unescape(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' {
			if i+1 >= len(s) {
				return "", fmt.Errorf("trailing backslash")
			}
			i++
			switch s[i] {
			case '"', '\\':
				b.WriteByte(s[i])
			default:
				b.WriteByte('\\')
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String(), nil
}
