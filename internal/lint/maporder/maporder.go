// Package maporder flags `range` loops over maps whose bodies are sensitive
// to iteration order. Go randomizes map iteration per run, so any
// order-sensitive effect inside such a loop — accumulating floats (rounding
// is not associative), concatenating strings, appending to a result slice,
// or last-writer-wins assignment into state that outlives the loop — makes
// the output depend on the runtime's hash salt instead of (configuration,
// seed), breaking the bit-identical contract (DESIGN.md §4).
//
// Order-insensitive bodies stay legal: integer/boolean accumulation is exact
// and commutative, writes keyed by the (unique) range key land on disjoint
// slots, and guarded min/max/selection updates pick the same winner in any
// order. The sanctioned way to do an order-sensitive pass over a map is the
// sorted-keys idiom — collect the keys, sort them, range over the slice —
// which the analyzer recognizes: an append of keys/values that are sorted
// later in the same function is not reported.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag order-sensitive bodies of range-over-map loops (float/string " +
		"accumulation, unsorted appends, last-writer-wins stores); sort the " +
		"keys first (DESIGN.md §4)",
	URL: "DESIGN.md#25-determinism-lint",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, rs, enclosingFuncBody(stack))
		return true
	})
	return nil, nil
}

// enclosingFuncBody returns the body of the innermost function declaration
// or literal on the stack (for the sorted-later idiom search).
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	rangeVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				rangeVars[obj] = true
			}
		}
	}

	var walk func(n ast.Node, ifDepth int)
	walk = func(n ast.Node, ifDepth int) {
		switch s := n.(type) {
		case nil:
			return
		case *ast.IfStmt:
			walk(s.Init, ifDepth)
			// The branch bodies are guarded; the condition itself is not a
			// store site.
			walkBlock(s.Body, ifDepth+1, walk)
			walk(s.Else, ifDepth+1)
			return
		case *ast.AssignStmt:
			checkAssign(pass, rs, s, rangeVars, ifDepth, funcBody)
		case *ast.RangeStmt:
			// A nested range over another map is analyzed by its own
			// checkMapRange call; walking into it would double-report.
			if t := pass.TypesInfo.TypeOf(s.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return
				}
			}
			descendChildren(s, ifDepth, walk)
			return
		case *ast.ForStmt, *ast.BlockStmt, *ast.SwitchStmt,
			*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.CaseClause,
			*ast.CommClause, *ast.LabeledStmt:
			// Containers: descend with the current guard depth (switch cases
			// are selections too, treat them like if-guards).
			depth := ifDepth
			switch n.(type) {
			case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				depth++
			}
			descendChildren(n, depth, walk)
			return
		}
		// Generic descent for everything else (expressions may hold FuncLits;
		// a store inside a func literal runs at call time, skip those).
		if _, isLit := n.(*ast.FuncLit); isLit {
			return
		}
		descendChildren(n, ifDepth, walk)
	}
	for _, stmt := range rs.Body.List {
		walk(stmt, 0)
	}
}

// descendChildren hands each direct child of n to walk with the given guard
// depth, without descending further itself.
func descendChildren(n ast.Node, ifDepth int, walk func(ast.Node, int)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == n {
			return true
		}
		if m != nil {
			walk(m, ifDepth)
		}
		return false
	})
}

func walkBlock(b *ast.BlockStmt, ifDepth int, walk func(ast.Node, int)) {
	if b == nil {
		return
	}
	for _, stmt := range b.List {
		walk(stmt, ifDepth)
	}
}

func checkAssign(pass *analysis.Pass, rs *ast.RangeStmt, s *ast.AssignStmt, rangeVars map[types.Object]bool, ifDepth int, funcBody *ast.BlockStmt) {
	if s.Tok == token.DEFINE {
		// New variables scoped to the loop body cannot leak order. (Their
		// later accumulation sites are checked on their own.)
		return
	}
	for i, lhs := range s.Lhs {
		root := rootIdent(lhs)
		if root == nil {
			continue
		}
		obj := pass.TypesInfo.ObjectOf(root)
		if obj == nil || !declaredOutside(obj, rs) {
			continue
		}
		lt := pass.TypesInfo.TypeOf(lhs)

		// A slot indexed by a (unique) range variable is touched at most once
		// per loop, so even float accumulation into it is order-insensitive.
		slotPerKey := indexedByRangeVar(pass, lhs, rangeVars)

		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if orderSensitiveAccum(lt) && !slotPerKey {
				pass.Reportf(s.Pos(), "%s accumulation into %q inside a range over a map: float rounding and string concatenation are order-sensitive and Go randomizes map order; iterate sorted keys instead (DESIGN.md §4)", typeClass(lt), root.Name)
			}
			continue
		case token.ASSIGN:
		default:
			continue
		}

		// Pairwise assignment picks the matching RHS; a multi-value RHS
		// (x, y = f(...)) is shared by every LHS.
		rhs := s.Rhs[0]
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		}
		// x = append(x, ...): result collection. Allowed when the collected
		// slice is sorted later in the same function (the sanctioned idiom).
		if call, ok := rhs.(*ast.CallExpr); ok && isAppend(pass, call) {
			if sortedLater(pass, obj, rs, funcBody) {
				continue
			}
			pass.Reportf(s.Pos(), "append to %q inside a range over a map without sorting afterwards: element order follows Go's randomized map order; sort %q before use, or collect+sort the keys and range over the slice (DESIGN.md §4)", root.Name, root.Name)
			continue
		}
		// x = x <op> v rewritten accumulations.
		if mentionsObject(pass, rhs, obj) && orderSensitiveAccum(lt) && !slotPerKey {
			pass.Reportf(s.Pos(), "%s accumulation into %q inside a range over a map: rounding/concatenation order follows Go's randomized map order; iterate sorted keys instead (DESIGN.md §4)", typeClass(lt), root.Name)
			continue
		}
		// Plain store of loop-derived data into state that outlives the
		// loop: last writer wins, and the last iteration is random.
		// Exemptions: stores keyed by a range variable land on disjoint
		// slots; stores under an if/switch are selection idioms
		// (min/max, key match) that pick the same winner in any order.
		if ifDepth == 0 && usesRangeVar(pass, rhs, rangeVars) && !slotPerKey {
			pass.Reportf(s.Pos(), "unconditional store of loop-derived data into %q inside a range over a map: the surviving value follows Go's randomized map order; guard the store with a selection condition or iterate sorted keys (DESIGN.md §4)", root.Name)
		}
	}
}

// rootIdent strips selectors, indexes, derefs and parens down to the base
// identifier of an assignable expression.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj's declaration lies outside the range
// statement (so writes to it survive the loop).
func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() == token.NoPos || obj.Pos() < rs.Pos() || obj.Pos() >= rs.End()
}

// orderSensitiveAccum reports whether accumulating into this type depends on
// operand order: floats and complexes round, strings concatenate. Integer and
// boolean accumulation is exact and commutative.
func orderSensitiveAccum(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex|types.IsString) != 0
}

func typeClass(t types.Type) string {
	b, _ := t.Underlying().(*types.Basic)
	switch {
	case b == nil:
		return "value"
	case b.Info()&types.IsString != 0:
		return "string"
	default:
		return "float"
	}
}

func isAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// mentionsObject reports whether e references obj.
func mentionsObject(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func usesRangeVar(pass *analysis.Pass, e ast.Expr, rangeVars map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && rangeVars[pass.TypesInfo.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// indexedByRangeVar reports whether lhs stores through an index expression
// whose index involves a range variable (distinct keys hit distinct slots,
// so order cannot matter).
func indexedByRangeVar(pass *analysis.Pass, lhs ast.Expr, rangeVars map[types.Object]bool) bool {
	for {
		switch x := lhs.(type) {
		case *ast.IndexExpr:
			if usesRangeVar(pass, x.Index, rangeVars) {
				return true
			}
			lhs = x.X
		case *ast.SelectorExpr:
			lhs = x.X
		case *ast.ParenExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		default:
			return false
		}
	}
}

// sortedLater reports whether obj is passed to a sort (sort.* or slices.Sort*
// or a .Sort method) after the range statement within the enclosing function
// body — the collect-then-sort idiom that makes collection order irrelevant.
func sortedLater(pass *analysis.Pass, obj types.Object, rs *ast.RangeStmt, funcBody *ast.BlockStmt) bool {
	if funcBody == nil {
		return false
	}
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(pass, arg, obj) {
				found = true
			}
		}
		// Method form: keys.Sort().
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && mentionsObject(pass, sel.X, obj) {
			found = true
		}
		return !found
	})
	return found
}

func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func); ok && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "sort", "slices":
			return true
		}
	}
	return sel.Sel.Name == "Sort"
}
