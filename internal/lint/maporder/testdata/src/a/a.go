// Golden fixture for the maporder analyzer: order-sensitive map-range bodies
// are flagged, the sanctioned idioms are not.
package a

import "sort"

func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "float accumulation"
	}
	return sum
}

func intAccum(m map[string]int) int {
	var sum int
	for _, v := range m {
		sum += v // exact and commutative: fine
	}
	return sum
}

func stringConcat(m map[string]string) string {
	var s string
	for _, v := range m {
		s += v // want "string accumulation"
	}
	return s
}

func rewrittenAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want "float accumulation"
	}
	return sum
}

func unsortedAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append"
	}
	return out
}

func sortedKeys(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collect-then-sort idiom: fine
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k] // range over a slice, not a map: fine
	}
	return sum
}

func lastWriter(m map[string]int) int {
	var last int
	for _, v := range m {
		last = v // want "unconditional store"
	}
	return last
}

func guardedMax(m map[string]int) int {
	best := -1
	for _, v := range m {
		if v > best {
			best = v // guarded selection: same winner in any order
		}
	}
	return best
}

func slotPerKey(m map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range m {
		out[k] += v // slot indexed by the range key: one write per slot
	}
	return out
}

func loopLocal(m map[string]float64) {
	for _, v := range m {
		x := v
		x += 1 // loop-local variable: cannot leak order
		_ = x
	}
}

func deferredWork(m map[string]float64) []func() float64 {
	var sum float64
	var fns []func() float64
	for range m {
		fns = append(fns, func() float64 { // want "append"
			sum += 1 // inside a func literal: runs at call time, not flagged
			return sum
		})
	}
	return fns
}

func suppressed(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //ecnlint:allow maporder golden-test fixture exercising the suppression protocol
	}
	return sum
}
