// Fixture for the suppression protocol: every function trips maporder, and
// the allow comments differ in well-formedness. lint_test.go asserts which
// findings survive.
package allow

func noReason(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //ecnlint:allow maporder
	}
	return sum
}

func unknownAnalyzer(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //ecnlint:allow mapodrer typo in the analyzer name
	}
	return sum
}

func sameLine(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //ecnlint:allow maporder a well-formed reason suppresses on the same line
	}
	return sum
}

func lineAbove(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		//ecnlint:allow maporder the line-above form also suppresses
		sum += v
	}
	return sum
}

func wrongAnalyzer(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //ecnlint:allow poolonly naming a different analyzer does not suppress this one
	}
	return sum
}
