// Package lint assembles the determinism analyzer suite and runs it over
// loaded packages, applying the repo's suppression protocol. It is the one
// place that knows both the full analyzer inventory and how
// "//ecnlint:allow" comments work, so the standalone multichecker, the go
// vet vettool mode and the root regression test cannot drift apart.
//
// # Suppression protocol
//
// A diagnostic is suppressed by a comment of the form
//
//	//ecnlint:allow <analyzer> <reason>
//
// placed either at the end of the flagged line or on its own line
// immediately above it. The reason is mandatory and should say why the
// contract holds anyway (or why breaking it is acceptable there); an allow
// without a reason, or naming an unknown analyzer, is itself reported as a
// finding so suppressions cannot rot silently. scripts/checklinks.sh
// enforces the non-empty reason textually as a second, go-vet-independent
// net.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/fpcover"
	"repro/internal/lint/load"
	"repro/internal/lint/maporder"
	"repro/internal/lint/poolonly"
	"repro/internal/lint/seededrng"
	"repro/internal/lint/wallclock"
)

// AllowPrefix is the suppression comment marker.
const AllowPrefix = "//ecnlint:allow"

// Analyzers returns the full determinism suite, in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		fpcover.Analyzer,
		maporder.Analyzer,
		poolonly.Analyzer,
		seededrng.Analyzer,
		wallclock.Analyzer,
	}
}

// Finding is one diagnostic after suppression filtering, resolved to a file
// position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding the way go vet renders diagnostics, with the
// analyzer name prefixed for allow-comment targeting.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// allowKey locates a suppression comment: file path and line.
type allowKey struct {
	file string
	line int
}

// Run applies the analyzers to every package, filters suppressed
// diagnostics, and returns the surviving findings sorted by position. An
// analyzer returning an error aborts the run: that is a broken pass, not a
// finding.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var findings []Finding
	for _, pkg := range pkgs {
		allows, bad := scanAllows(pkg, known)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			var diags []analysis.Diagnostic
			pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				if allows[allowKey{pos.Filename, pos.Line}][a.Name] ||
					allows[allowKey{pos.Filename, pos.Line - 1}][a.Name] {
					continue
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return dedupe(findings), nil
}

// scanAllows collects the package's suppression comments, keyed by file and
// line, and reports malformed ones (missing reason, unknown analyzer) as
// findings from the pseudo-analyzer "ecnlint".
func scanAllows(pkg *load.Package, known map[string]bool) (map[allowKey]map[string]bool, []Finding) {
	allows := make(map[allowKey]map[string]bool)
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, AllowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, AllowPrefix)
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					bad = append(bad, Finding{Analyzer: "ecnlint", Pos: pos,
						Message: "malformed suppression: want \"//ecnlint:allow <analyzer> <reason>\""})
					continue
				case !known[fields[0]]:
					bad = append(bad, Finding{Analyzer: "ecnlint", Pos: pos,
						Message: fmt.Sprintf("suppression names unknown analyzer %q (known: %s)", fields[0], strings.Join(knownNames(known), ", "))})
					continue
				case len(fields) < 2:
					bad = append(bad, Finding{Analyzer: "ecnlint", Pos: pos,
						Message: fmt.Sprintf("suppression of %q has no reason: say why the determinism contract holds anyway", fields[0])})
					continue
				}
				key := allowKey{pos.Filename, pos.Line}
				if allows[key] == nil {
					allows[key] = make(map[string]bool)
				}
				allows[key][fields[0]] = true
			}
		}
	}
	return allows, bad
}

func knownNames(known map[string]bool) []string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// dedupe drops exact-duplicate findings (same position, analyzer and
// message); findings must already be sorted.
func dedupe(findings []Finding) []Finding {
	out := findings[:0]
	for i, f := range findings {
		if i > 0 && f == findings[i-1] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Module is the one-call convenience the binaries and the regression test
// share: load every package matching patterns under dir and run the full
// suite.
func Module(dir string, patterns ...string) ([]Finding, error) {
	pkgs, err := load.Module(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return Run(pkgs, Analyzers())
}
