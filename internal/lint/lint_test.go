package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
	"repro/internal/lint/maporder"
)

// TestSuppressionProtocol runs maporder over the allow fixture, where every
// function trips the analyzer and only the well-formedness of the allow
// comment varies, and checks which findings survive: malformed suppressions
// both fail to suppress and are reported themselves.
func TestSuppressionProtocol(t *testing.T) {
	pkg, err := load.Files("testdata/src/allow", "repro/internal/somepkg")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings, err := lint.Run([]*load.Package{pkg}, []*analysis.Analyzer{maporder.Analyzer})
	if err != nil {
		t.Fatalf("running maporder: %v", err)
	}

	// In position order (the maporder diagnostic sits at the statement, the
	// protocol finding at the trailing comment): the reason-less and typo'd
	// allows each yield the unsuppressed maporder finding plus the ecnlint
	// protocol finding; the two well-formed allows suppress; the
	// wrong-analyzer allow is well-formed but does not suppress maporder.
	want := []struct{ analyzer, substr string }{
		{"maporder", "float accumulation"},
		{"ecnlint", "has no reason"},
		{"maporder", "float accumulation"},
		{"ecnlint", "unknown analyzer"},
		{"maporder", "float accumulation"},
	}
	if len(findings) != len(want) {
		for _, f := range findings {
			t.Logf("got: %s", f)
		}
		t.Fatalf("got %d findings, want %d", len(findings), len(want))
	}
	for i, w := range want {
		f := findings[i]
		if f.Analyzer != w.analyzer || !strings.Contains(f.Message, w.substr) {
			t.Errorf("finding %d = %s, want analyzer %q with message containing %q", i, f, w.analyzer, w.substr)
		}
	}
}

// TestAnalyzerInventory pins the suite's composition: the analyzer set and
// its stable order are part of the linter's interface (allow comments name
// these strings).
func TestAnalyzerInventory(t *testing.T) {
	var names []string
	for _, a := range lint.Analyzers() {
		names = append(names, a.Name)
	}
	want := "fingerprintcoverage maporder poolonly seededrng wallclock"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("Analyzers() = %q, want %q", got, want)
	}
	for _, a := range lint.Analyzers() {
		if a.Doc == "" || a.URL == "" || a.Run == nil {
			t.Errorf("analyzer %s is missing Doc, URL or Run", a.Name)
		}
	}
}
