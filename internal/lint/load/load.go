// Package load turns Go packages into the type-checked form the determinism
// analyzers consume, using only the standard library and the go command.
//
// The strategy mirrors what golang.org/x/tools/go/packages does in
// NeedExportFile mode: one `go list -deps -export -json` invocation both
// enumerates the packages under analysis and compiles export data for every
// dependency (standard library included) into the build cache. Each analyzed
// package is then parsed and type-checked from source, with imports resolved
// through that export data via the compiler importer — no network, no
// GOPATH source walking, and dependency type information stays bit-exact
// with what the real build saw.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path (for synthetic test packages, the
	// path the caller assigned).
	Path string
	// Dir is the directory holding the source files.
	Dir string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files are the parsed non-test source files, in go list order.
	Files []*ast.File
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	Dir        string
	ImportPath string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct {
		Err string
	}
}

// Module loads every package matching patterns in the module rooted at (or
// containing) dir, type-checked and ready for analysis. Test files are not
// loaded: the determinism contract governs what simulations execute, and
// tests exercise wall clocks and ad-hoc randomness legitimately.
func Module(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	exports := make(map[string]string)
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	base := newExportImporter(fset, exports)

	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := check(fset, base, lp.ImportPath, lp.Dir, lp.GoFiles, lp.ImportMap)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// Files loads the non-test .go files of a single directory as one package
// under the given import path, resolving its imports (standard library or
// already-compiled module packages) through go list export data. It is the
// entry point the linttest golden harness uses: assigning the import path
// lets testdata packages exercise path-sensitive analyzer rules ("is this a
// simulation package?") without living at those paths.
func Files(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, name)
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}

	fset := token.NewFileSet()
	asts, imports, err := parseFiles(fset, dir, files)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string)
	if len(imports) > 0 {
		listed, err := goList(dir, imports)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
		}
	}
	base := newExportImporter(fset, exports)
	return checkParsed(fset, base, importPath, dir, asts, nil)
}

// ExportFiles type-checks an explicit file list as one package, resolving
// imports through the supplied import-path -> export-data-file map (with an
// optional import-path rewrite map applied first). It is the vettool entry
// point: `go vet` hands exactly these ingredients to a unit checker.
func ExportFiles(importPath string, goFiles []string, packageFile, importMap map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	dir := ""
	asts := make([]*ast.File, 0, len(goFiles))
	for _, f := range goFiles {
		if dir == "" {
			dir = filepath.Dir(f)
		}
		a, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		asts = append(asts, a)
	}
	base := newExportImporter(fset, packageFile)
	return checkParsed(fset, base, importPath, dir, asts, importMap)
}

// goList runs `go list -deps -export -json` over args in dir and decodes the
// stream. -e keeps going on broken packages; callers decide whether a
// package-level error matters.
func goList(dir string, args []string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-deps", "-export", "-json"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var listed []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, []string, error) {
	var asts []*ast.File
	importSet := make(map[string]bool)
	for _, name := range names {
		a, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, fmt.Errorf("load: %w", err)
		}
		asts = append(asts, a)
		for _, imp := range a.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				importSet[path] = true
			}
		}
	}
	imports := make([]string, 0, len(importSet))
	for path := range importSet {
		imports = append(imports, path)
	}
	sort.Strings(imports)
	return asts, imports, nil
}

func check(fset *token.FileSet, base *exportImporter, importPath, dir string, goFiles []string, importMap map[string]string) (*Package, error) {
	asts, _, err := parseFiles(fset, dir, goFiles)
	if err != nil {
		return nil, err
	}
	return checkParsed(fset, base, importPath, dir, asts, importMap)
}

func checkParsed(fset *token.FileSet, base *exportImporter, importPath, dir string, asts []*ast.File, importMap map[string]string) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := &types.Config{
		Importer: &mappedImporter{base: base, importMap: importMap},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := cfg.Check(importPath, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  fset,
		Files: asts,
		Types: tpkg,
		Info:  info,
	}, nil
}

// exportImporter resolves import paths to *types.Package through compiler
// export data files, sharing one gc importer (and so one package identity
// cache) across every package checked against the same FileSet.
type exportImporter struct {
	gc      types.Importer
	exports map[string]string
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	im := &exportImporter{exports: exports}
	im.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := im.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return im
}

func (im *exportImporter) Import(path string) (*types.Package, error) {
	return im.gc.Import(path)
}

// mappedImporter applies one package's import-path rewrite map (go list's
// ImportMap / vet config's ImportMap) before delegating to the shared
// export importer.
type mappedImporter struct {
	base      *exportImporter
	importMap map[string]string
}

func (im *mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := im.importMap[path]; ok {
		path = mapped
	}
	return im.base.Import(path)
}
