package wallclock_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/wallclock"
)

func TestSimulationPackagesAreCovered(t *testing.T) {
	linttest.Run(t, wallclock.Analyzer, "testdata/src/sim", "repro/internal/somepkg")
}

func TestExemptPathsAreSilent(t *testing.T) {
	for _, path := range []string{
		"repro/cmd/somecmd",
		"repro/examples/basic",
		"repro/internal/benchkit",
	} {
		linttest.Run(t, wallclock.Analyzer, "testdata/src/exempt", path)
	}
}
