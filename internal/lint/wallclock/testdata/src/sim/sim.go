// Golden fixture for the wallclock analyzer, loaded under a simulation
// import path: wall-clock reads and global rand draws are flagged; types,
// constants and methods are not.
package sim

import (
	"math/rand"
	"time"
)

func clocks() time.Duration {
	t0 := time.Now()             // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
	<-time.After(time.Second)    // want "time.After reads the wall clock"
	return time.Since(t0)        // want "time.Since reads the wall clock"
}

func dice() int {
	return rand.Intn(6) // want "rand.Intn draws from the process-global random source"
}

// unitsOnly shows that time's types and constants stay legal: they are units
// of simulated time, not clock reads.
func unitsOnly(d time.Duration) float64 {
	return d.Seconds() + time.Millisecond.Seconds()
}

func suppressed() time.Time {
	return time.Now() //ecnlint:allow wallclock golden-test fixture exercising the suppression protocol
}
