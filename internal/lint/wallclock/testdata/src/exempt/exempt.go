// The same wall-clock reads as the sim fixture, with no want annotations:
// loaded under an exempt import path (cmd/, benchkit) the analyzer must stay
// silent.
package exempt

import "time"

func Stopwatch() time.Duration {
	t0 := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(t0)
}
