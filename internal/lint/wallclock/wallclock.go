// Package wallclock rejects wall-clock and global-randomness escapes from
// simulation code. Simulated time is the only clock a deterministic run may
// consult: a time.Now() in a qdisc or a global rand.Intn() in the scheduler
// makes results depend on the host machine instead of (configuration, seed),
// breaking the bit-identical contract (DESIGN.md §4) that the Runner, the
// campaign cache and the bench gate all assume.
//
// Wall time is the point of the benchmark harness and of CLI progress
// reporting, so internal/benchkit, cmd/ and examples/ are exempt.
package wallclock

import (
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the wallclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid wall-clock reads (time.Now/Since/Sleep/timers) and global " +
		"math/rand calls in simulation packages; simulated time and seeded " +
		"rng streams are the only admissible sources (DESIGN.md §4)",
	URL: "DESIGN.md#25-determinism-lint",
	Run: run,
}

// ExemptPrefixes lists import-path prefixes where wall time is legitimate:
// the benchmark harness measures it, binaries and examples report progress
// with it, and the lint driver itself is host tooling. Everything else in
// the module is simulation or simulation-adjacent code and is covered.
var ExemptPrefixes = []string{
	"repro/cmd/",
	"repro/examples/",
	"repro/internal/benchkit",
	"repro/internal/lint",
}

// forbiddenTime names the time package's wall-clock entry points. Types and
// constants (time.Duration, time.Millisecond) remain free to use: they are
// units, not clock reads.
var forbiddenTime = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

func exempt(path string) bool {
	for _, p := range ExemptPrefixes {
		if path == strings.TrimSuffix(p, "/") || strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	if exempt(pass.Pkg.Path()) {
		return nil, nil
	}
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		// Only package-level functions: methods (e.g. time.Time.Sub on two
		// simulated stamps, rng.Source.Float64) are fine.
		if fn.Type().(*types.Signature).Recv() != nil {
			continue
		}
		switch fn.Pkg().Path() {
		case "time":
			if forbiddenTime[fn.Name()] {
				pass.Reportf(id.Pos(), "time.%s reads the wall clock in simulation package %s; use the engine's simulated clock (sim.Engine.Now) — results must be bit-identical in (config, seed), see DESIGN.md §4", fn.Name(), pass.Pkg.Path())
			}
		case "math/rand", "math/rand/v2":
			if strings.HasPrefix(fn.Name(), "New") {
				continue // construction is the seededrng analyzer's finding
			}
			pass.Reportf(id.Pos(), "%s.%s draws from the process-global random source in simulation package %s; derive a seeded stream from repro/internal/rng instead (DESIGN.md §4)", pathBase(fn.Pkg().Path()), fn.Name(), pass.Pkg.Path())
		}
	}
	return nil, nil
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
