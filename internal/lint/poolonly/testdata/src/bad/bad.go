// Golden fixture for the poolonly analyzer: bare go statements are flagged
// in engine code, wherever they hide.
package bad

func fanOut(ch chan int) {
	go func() { ch <- 1 }() // want "bare go statement"
	f := func() {
		go send(ch) // want "bare go statement"
	}
	f()
}

func send(ch chan int) { ch <- 2 }

func suppressed(ch chan int) {
	//ecnlint:allow poolonly golden-test fixture exercising the suppression protocol
	go send(ch)
}
