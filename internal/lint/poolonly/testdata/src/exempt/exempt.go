// The same go statements with no want annotations: loaded under the
// internal/pool import path the analyzer must stay silent — the pool's
// workers are the sanctioned fan-out.
package exempt

func Workers(n int, work func()) {
	for i := 0; i < n; i++ {
		go work()
	}
}
