// Golden fixture for the façade allowance: played as repro/internal/simnet,
// the (*gate).spawn method is the sanctioned tenant-goroutine seam and its
// bare go passes, while a go statement anywhere else in the package — even
// a spawn method on some other receiver — still fires.
package facade

type gate struct{ seq int }

func (g *gate) bump() { g.seq++ }

func (g *gate) spawn(fn func()) {
	g.bump()
	go func() {
		defer g.bump()
		fn()
	}()
}

type pump struct{}

func (p *pump) spawn(fn func()) {
	go fn() // want "bare go statement"
}

func spawn(fn func()) {
	go fn() // want "bare go statement"
}

func (g *gate) leak(fn func()) {
	go fn() // want "bare go statement"
}
