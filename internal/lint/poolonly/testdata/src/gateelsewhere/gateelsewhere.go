// Golden fixture for the other half of the façade allowance: the exact
// (*gate).spawn shape outside repro/internal/simnet is still a bare go
// statement. The seam is one method of one package, not a naming convention.
package gateelsewhere

type gate struct{ seq int }

func (g *gate) spawn(fn func()) {
	g.seq++
	go fn() // want "bare go statement"
}
