package poolonly_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/poolonly"
)

func TestBareGoStatementsAreFlagged(t *testing.T) {
	linttest.Run(t, poolonly.Analyzer, "testdata/src/bad", "repro/internal/somepkg")
}

func TestExemptPathsAreSilent(t *testing.T) {
	for _, path := range []string{
		"repro/internal/pool",
		"repro/cmd/somecmd",
		"repro/examples/basic",
	} {
		linttest.Run(t, poolonly.Analyzer, "testdata/src/exempt", path)
	}
}
