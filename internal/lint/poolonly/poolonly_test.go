package poolonly_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/poolonly"
)

func TestBareGoStatementsAreFlagged(t *testing.T) {
	linttest.Run(t, poolonly.Analyzer, "testdata/src/bad", "repro/internal/somepkg")
}

// TestFacadeSpawnSeamIsSanctioned pins both halves of the façade allowance:
// played as the simnet package, (*gate).spawn's go passes while every other
// go in the package — including a spawn on a different receiver — fires.
func TestFacadeSpawnSeamIsSanctioned(t *testing.T) {
	linttest.Run(t, poolonly.Analyzer, "testdata/src/facade", "repro/internal/simnet")
}

// TestGateSpawnElsewhereStillFires: the identical method shape under any
// other import path is an ordinary bare go statement.
func TestGateSpawnElsewhereStillFires(t *testing.T) {
	linttest.Run(t, poolonly.Analyzer, "testdata/src/gateelsewhere", "repro/internal/gateelsewhere")
}

func TestExemptPathsAreSilent(t *testing.T) {
	for _, path := range []string{
		"repro/internal/pool",
		"repro/cmd/somecmd",
		"repro/examples/basic",
	} {
		linttest.Run(t, poolonly.Analyzer, "testdata/src/exempt", path)
	}
}
