// Package poolonly keeps goroutine creation funnelled through
// repro/internal/pool. The Runner's bit-identical-at-any-worker-count
// guarantee (DESIGN.md §4) holds because the only concurrency in the module
// is the pool's bounded fan-out over independent, index-addressed
// simulations, with results merged in a fixed order after the pool drains. A
// bare `go` statement anywhere in engine or experiment code reintroduces
// scheduling nondeterminism the pool was built to exclude — racing on engine
// state at worst, reordering float aggregation at best.
package poolonly

import (
	"go/ast"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the poolonly pass.
var Analyzer = &analysis.Analyzer{
	Name: "poolonly",
	Doc: "reject bare go statements outside repro/internal/pool; parallel " +
		"work must go through the pool's deterministic fan-out " +
		"(DESIGN.md §4)",
	URL: "DESIGN.md#25-determinism-lint",
	Run: run,
}

// facadePath is the simnet façade package, which holds the one sanctioned
// goroutine seam outside the pool: tenant goroutines running real net/http
// code are inherently goroutines, and (*gate).spawn is the single entry
// point that registers them with the virtual-time gate (DESIGN.md §2.9).
// The allowance is exactly that method — a bare go anywhere else in the
// façade bypasses the gate's settle accounting and still fires.
const facadePath = "repro/internal/simnet"

// sanctionedSpawn reports whether fd is the (*gate).spawn method.
func sanctionedSpawn(fd *ast.FuncDecl) bool {
	if fd.Name.Name != "spawn" || fd.Recv == nil || len(fd.Recv.List) != 1 {
		return false
	}
	star, ok := fd.Recv.List[0].Type.(*ast.StarExpr)
	if !ok {
		return false
	}
	id, ok := star.X.(*ast.Ident)
	return ok && id.Name == "gate"
}

// ExemptPaths lists where goroutines are legitimate: the pool itself (its
// workers are the sanctioned fan-out) and the wall-clock world of binaries
// and examples (progress meters, signal handling), which never touch a live
// engine concurrently.
var ExemptPaths = []string{
	"internal/pool",
	"internal/lint",
	"/cmd/",
	"/examples/",
}

func exempt(path string) bool {
	for _, p := range ExemptPaths {
		if strings.Contains(path+"/", strings.TrimSuffix(p, "/")+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	if exempt(pass.Pkg.Path()) {
		return nil, nil
	}
	facade := pass.Pkg.Path() == facadePath
	pass.Inspect(func(n ast.Node) bool {
		if facade {
			if fd, ok := n.(*ast.FuncDecl); ok && sanctionedSpawn(fd) {
				return false
			}
		}
		if g, ok := n.(*ast.GoStmt); ok {
			pass.Reportf(g.Pos(), "bare go statement in %s: goroutines outside internal/pool break the Runner's bit-identical-at-any-worker-count guarantee; submit the work through repro/internal/pool (DESIGN.md §4)", pass.Pkg.Path())
		}
		return true
	})
	return nil, nil
}
