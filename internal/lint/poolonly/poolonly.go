// Package poolonly keeps goroutine creation funnelled through
// repro/internal/pool. The Runner's bit-identical-at-any-worker-count
// guarantee (DESIGN.md §4) holds because the only concurrency in the module
// is the pool's bounded fan-out over independent, index-addressed
// simulations, with results merged in a fixed order after the pool drains. A
// bare `go` statement anywhere in engine or experiment code reintroduces
// scheduling nondeterminism the pool was built to exclude — racing on engine
// state at worst, reordering float aggregation at best.
package poolonly

import (
	"go/ast"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the poolonly pass.
var Analyzer = &analysis.Analyzer{
	Name: "poolonly",
	Doc: "reject bare go statements outside repro/internal/pool; parallel " +
		"work must go through the pool's deterministic fan-out " +
		"(DESIGN.md §4)",
	URL: "DESIGN.md#25-determinism-lint",
	Run: run,
}

// ExemptPaths lists where goroutines are legitimate: the pool itself (its
// workers are the sanctioned fan-out) and the wall-clock world of binaries
// and examples (progress meters, signal handling), which never touch a live
// engine concurrently.
var ExemptPaths = []string{
	"internal/pool",
	"internal/lint",
	"/cmd/",
	"/examples/",
}

func exempt(path string) bool {
	for _, p := range ExemptPaths {
		if strings.Contains(path+"/", strings.TrimSuffix(p, "/")+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	if exempt(pass.Pkg.Path()) {
		return nil, nil
	}
	pass.Inspect(func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			pass.Reportf(g.Pos(), "bare go statement in %s: goroutines outside internal/pool break the Runner's bit-identical-at-any-worker-count guarantee; submit the work through repro/internal/pool (DESIGN.md §4)", pass.Pkg.Path())
		}
		return true
	})
	return nil, nil
}
