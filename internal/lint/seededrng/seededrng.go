// Package seededrng funnels all randomness through repro/internal/rng. Every
// random decision in the simulator must derive from the run seed through a
// labelled child stream (DESIGN.md §4), so identical configurations replay
// identical packet schedules regardless of component construction order. A
// math/rand generator — even an explicitly seeded one — sits outside that
// derivation tree: its stream cannot be reproduced from (configuration,
// seed) by the rng package's Child labels, and the two generator families
// drift independently. The analyzer therefore rejects any math/rand or
// math/rand/v2 import outside internal/rng itself.
package seededrng

import (
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the seededrng pass.
var Analyzer = &analysis.Analyzer{
	Name: "seededrng",
	Doc: "reject math/rand imports outside repro/internal/rng; all " +
		"randomness must flow through the seed-derived rng streams " +
		"(DESIGN.md §4)",
	URL: "DESIGN.md#25-determinism-lint",
	Run: run,
}

// ExemptSuffixes lists import-path suffixes allowed to touch math/rand: the
// rng package itself (its tests cross-check distributions against the
// standard library).
var ExemptSuffixes = []string{"internal/rng"}

func exempt(path string) bool {
	for _, s := range ExemptSuffixes {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	if exempt(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s outside internal/rng: randomness must derive from the run seed via repro/internal/rng child streams so runs stay bit-identical in (config, seed) (DESIGN.md §4)", path)
			}
		}
	}
	return nil, nil
}
