package seededrng_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/seededrng"
)

func TestMathRandImportsAreFlagged(t *testing.T) {
	linttest.Run(t, seededrng.Analyzer, "testdata/src/bad", "repro/internal/somepkg")
}

func TestRNGPackageIsExempt(t *testing.T) {
	linttest.Run(t, seededrng.Analyzer, "testdata/src/exempt", "repro/internal/rng")
}
