// The same import with no want annotations: loaded under the internal/rng
// import path itself, the analyzer must stay silent (the rng package
// cross-checks distributions against the standard library).
package exempt

import "math/rand"

func Reference() float64 {
	return rand.New(rand.NewSource(1)).Float64()
}
