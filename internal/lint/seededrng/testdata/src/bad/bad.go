// Golden fixture for the seededrng analyzer: any math/rand import outside
// internal/rng is flagged at the import site, even an explicitly seeded use.
package bad

import (
	"math/rand"       // want "import of math/rand outside internal/rng"
	v2 "math/rand/v2" // want "import of math/rand/v2 outside internal/rng"
)

func roll() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(6) + v2.IntN(6)
}
