// Package trace records packet-level fabric events — enqueue verdicts,
// marks, drops, deliveries — into a bounded ring buffer and renders them as
// a text trace, in the spirit of NS-2's trace files. A Tracer implements
// netsim.Observer and can chain to another observer (typically the metrics
// collector), so tracing composes with measurement.
package trace

import (
	"fmt"
	"io"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/units"
)

// Op classifies a trace event.
type Op uint8

// Trace operations.
const (
	OpEnqueue Op = iota
	OpMark
	OpDropEarly
	OpDropOverflow
	OpDeliver
)

// String returns NS-2-flavoured single-character codes with a legend-friendly
// long form.
func (o Op) String() string {
	switch o {
	case OpEnqueue:
		return "+" // enqueued
	case OpMark:
		return "m" // CE-marked
	case OpDropEarly:
		return "d" // AQM drop
	case OpDropOverflow:
		return "D" // tail drop
	case OpDeliver:
		return "r" // received at destination
	}
	return "?"
}

// Event is one recorded fabric event.
type Event struct {
	At    units.Time
	Op    Op
	Port  string // empty for deliveries
	ID    uint64
	Kind  packet.Kind
	Src   packet.Addr
	Dst   packet.Addr
	Seq   uint64
	Ack   uint64
	Size  units.ByteSize
	ECN   packet.ECN
	Flags packet.TCPFlags
}

// Format renders the event as one trace line.
func (e Event) Format() string {
	port := e.Port
	if port == "" {
		port = "-"
	}
	return fmt.Sprintf("%-14s %s %-16s #%-7d %-7s %v->%v seq=%d ack=%d len=%d ecn=%v flags=%v",
		e.At, e.Op, port, e.ID, e.Kind, e.Src, e.Dst, e.Seq, e.Ack, e.Size, e.ECN, e.Flags)
}

// Tracer is a bounded-ring netsim.Observer.
type Tracer struct {
	next netsim.Observer // chained observer, may be nil

	ring  []Event
	head  int
	count int
	total uint64

	// Filter, if non-nil, keeps only events it returns true for.
	Filter func(*Event) bool
}

// New builds a tracer keeping the last capacity events, chaining to next
// (which may be nil).
func New(capacity int, next netsim.Observer) *Tracer {
	if capacity <= 0 {
		panic("trace: capacity must be positive")
	}
	return &Tracer{next: next, ring: make([]Event, capacity)}
}

// record inserts an event into the ring.
func (t *Tracer) record(e Event) {
	if t.Filter != nil && !t.Filter(&e) {
		return
	}
	t.total++
	t.ring[(t.head+t.count)%len(t.ring)] = e
	if t.count < len(t.ring) {
		t.count++
	} else {
		t.head = (t.head + 1) % len(t.ring)
	}
}

func eventOf(now units.Time, p *packet.Packet) Event {
	return Event{
		At:    now,
		ID:    p.ID,
		Kind:  p.Kind(),
		Src:   p.Src,
		Dst:   p.Dst,
		Seq:   p.Seq,
		Ack:   p.Ack,
		Size:  p.Size(),
		ECN:   p.ECN,
		Flags: p.Flags,
	}
}

// PacketEnqueued implements netsim.Observer.
func (t *Tracer) PacketEnqueued(now units.Time, port *netsim.Port, p *packet.Packet, v qdisc.Verdict) {
	e := eventOf(now, p)
	e.Port = port.Label
	switch v {
	case qdisc.Enqueued:
		e.Op = OpEnqueue
	case qdisc.EnqueuedMarked:
		e.Op = OpMark
	case qdisc.DroppedEarly:
		e.Op = OpDropEarly
	case qdisc.DroppedOverflow:
		e.Op = OpDropOverflow
	}
	t.record(e)
	if t.next != nil {
		t.next.PacketEnqueued(now, port, p, v)
	}
}

// PacketDelivered implements netsim.Observer.
func (t *Tracer) PacketDelivered(now units.Time, p *packet.Packet) {
	e := eventOf(now, p)
	e.Op = OpDeliver
	t.record(e)
	if t.next != nil {
		t.next.PacketDelivered(now, p)
	}
}

// Len returns the number of retained events.
func (t *Tracer) Len() int { return t.count }

// Total returns the number of events ever recorded (pre-eviction).
func (t *Tracer) Total() uint64 { return t.total }

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event {
	out := make([]Event, 0, t.count)
	for i := 0; i < t.count; i++ {
		out = append(out, t.ring[(t.head+i)%len(t.ring)])
	}
	return out
}

// Dump writes the retained events to w, one line each.
func (t *Tracer) Dump(w io.Writer) error {
	for _, e := range t.Events() {
		if _, err := fmt.Fprintln(w, e.Format()); err != nil {
			return err
		}
	}
	return nil
}

// DropsOnly returns a filter keeping only drop events — the usual question
// when debugging the paper's scenarios is "who died, and where".
func DropsOnly() func(*Event) bool {
	return func(e *Event) bool { return e.Op == OpDropEarly || e.Op == OpDropOverflow }
}

// KindOnly returns a filter keeping one packet kind.
func KindOnly(k packet.Kind) func(*Event) bool {
	return func(e *Event) bool { return e.Kind == k }
}
