package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/units"
)

// runTraced runs a short congested transfer with a tracer installed,
// returning the tracer and the chained collector.
func runTraced(t *testing.T, capacity int, filter func(*trace.Event) bool) (*trace.Tracer, *metrics.Collector) {
	t.Helper()
	eng := sim.New()
	cl := topo.Build(eng, topo.Config{
		Nodes:     3,
		LinkRate:  1 * units.Gbps,
		LinkDelay: 5 * units.Microsecond,
		SwitchQueue: func(label string, rate units.Bandwidth) qdisc.Qdisc {
			return qdisc.NewDropTail(32)
		},
	})
	col := metrics.New(0, 1)
	tr := trace.New(capacity, col)
	tr.Filter = filter
	cl.Net.SetObserver(tr)

	stats := &tcp.Stats{}
	var stacks []*tcp.Stack
	for _, h := range cl.Hosts {
		stacks = append(stacks, tcp.NewStack(h, tcp.DefaultConfig(tcp.Reno), stats))
	}
	stacks[2].Listen(80, func(c *tcp.Conn) {})
	for i := 0; i < 2; i++ {
		c := stacks[i].Dial(packet.Addr{Node: cl.Hosts[2].ID(), Port: 80})
		c.Send(1 << 20)
		c.Close()
	}
	eng.SetDeadline(units.Time(30 * units.Second))
	eng.Run()
	return tr, col
}

func TestTracerRecordsAndChains(t *testing.T) {
	tr, col := runTraced(t, 1<<16, nil)
	if tr.Len() == 0 {
		t.Fatal("no events recorded")
	}
	if col.DeliveredPackets == 0 {
		t.Fatal("chained collector saw nothing")
	}
	// Deliveries recorded must match the collector's count when the ring
	// did not evict.
	deliver := 0
	for _, e := range tr.Events() {
		if e.Op == trace.OpDeliver {
			deliver++
		}
	}
	if uint64(tr.Len()) == tr.Total() && uint64(deliver) != col.DeliveredPackets {
		t.Errorf("tracer deliveries %d != collector %d", deliver, col.DeliveredPackets)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr, _ := runTraced(t, 64, nil)
	if tr.Len() != 64 {
		t.Errorf("ring kept %d, want 64", tr.Len())
	}
	if tr.Total() <= 64 {
		t.Errorf("total %d too small for a congested run", tr.Total())
	}
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("events out of time order after eviction")
		}
	}
}

func TestDropsOnlyFilter(t *testing.T) {
	tr, col := runTraced(t, 1<<16, trace.DropsOnly())
	_, ovf := col.Drops()
	if ovf == 0 {
		t.Skip("no drops this run; filter untestable")
	}
	if tr.Len() == 0 {
		t.Fatal("filter recorded nothing despite drops")
	}
	for _, e := range tr.Events() {
		if e.Op != trace.OpDropEarly && e.Op != trace.OpDropOverflow {
			t.Fatalf("non-drop event leaked through filter: %v", e.Op)
		}
	}
	if uint64(tr.Total()) != uint64(ovf) {
		t.Errorf("drop events %d != collector drops %d", tr.Total(), ovf)
	}
}

func TestKindOnlyFilter(t *testing.T) {
	tr, _ := runTraced(t, 1<<16, trace.KindOnly(packet.KindSYN))
	for _, e := range tr.Events() {
		if e.Kind != packet.KindSYN {
			t.Fatalf("kind filter leaked %v", e.Kind)
		}
	}
	if tr.Len() == 0 {
		t.Error("no SYNs traced; every run dials connections")
	}
}

func TestDumpFormat(t *testing.T) {
	tr, _ := runTraced(t, 256, nil)
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != tr.Len() {
		t.Errorf("dump lines %d != events %d", len(lines), tr.Len())
	}
	if !strings.Contains(out, "seq=") || !strings.Contains(out, "ecn=") {
		t.Error("dump missing expected fields")
	}
}

func TestOpCodes(t *testing.T) {
	codes := map[trace.Op]string{
		trace.OpEnqueue: "+", trace.OpMark: "m", trace.OpDropEarly: "d",
		trace.OpDropOverflow: "D", trace.OpDeliver: "r",
	}
	for op, want := range codes {
		if op.String() != want {
			t.Errorf("Op(%d) = %q, want %q", op, op.String(), want)
		}
	}
}

func TestInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	trace.New(0, nil)
}

var _ netsim.Observer = (*trace.Tracer)(nil)
