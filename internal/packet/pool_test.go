package packet

import (
	"testing"

	"repro/internal/units"
)

func TestPoolReusesReleasedPackets(t *testing.T) {
	var pl Pool
	p1 := pl.Get()
	p1.Payload = 1460
	p1.Flags = FlagACK
	p1.ECN = CE
	p1.Hops = 3
	p1.SentAt = units.Time(42)
	p1.SACK = append(p1.SACK, SACKBlock{Start: 1, End: 2})
	pl.Put(p1)

	p2 := pl.Get()
	if p2 != p1 {
		t.Fatal("pool did not reuse the released packet")
	}
	if p2.Payload != 0 || p2.Flags != 0 || p2.ECN != NotECT || p2.Hops != 0 || p2.SentAt != 0 {
		t.Errorf("reused packet not zeroed: %+v", p2)
	}
	if len(p2.SACK) != 0 {
		t.Errorf("reused packet has %d stale SACK blocks", len(p2.SACK))
	}
	if cap(p2.SACK) == 0 {
		t.Error("reused packet lost its SACK capacity")
	}
	if news, reuses := pl.Stats(); news != 1 || reuses != 1 {
		t.Errorf("stats = (%d, %d), want (1, 1)", news, reuses)
	}
}

func TestPoolIgnoresForeignPackets(t *testing.T) {
	var pl Pool
	manual := &Packet{Payload: 99}
	pl.Put(manual)
	pl.Put(nil)
	if pl.Len() != 0 {
		t.Fatalf("free list holds %d packets after foreign/nil Put", pl.Len())
	}
	if manual.Payload != 99 {
		t.Error("foreign packet was mutated by Put")
	}
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	var pl Pool
	p := pl.Get()
	pl.Put(p)
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	pl.Put(p)
}

func TestPoolDistinctPacketsWhileLive(t *testing.T) {
	var pl Pool
	seen := map[*Packet]bool{}
	var live []*Packet
	for i := 0; i < 100; i++ {
		p := pl.Get()
		if seen[p] {
			t.Fatal("pool handed out a packet that is still live")
		}
		seen[p] = true
		live = append(live, p)
	}
	for _, p := range live {
		pl.Put(p)
	}
	if pl.Len() != 100 {
		t.Errorf("free list = %d, want 100", pl.Len())
	}
}
