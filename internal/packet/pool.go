package packet

// Pool is a free list of Packets. The simulation's steady state churns
// through one packet per segment/ACK; recycling them through a per-network
// pool removes that allocation (and the GC pressure behind it) entirely.
//
// A Pool is single-threaded by design, like everything else inside one
// simulation run: each Network owns its own pool, and separate runs on
// separate goroutines never share one.
type Pool struct {
	free []*Packet

	// Counters for diagnostics and tests.
	news   uint64 // fresh heap allocations
	reuses uint64 // Gets served from the free list
}

// Get returns a zeroed packet, reusing a released one when available. The
// returned packet keeps any SACK slice capacity from its previous life, so
// steady-state ACK construction allocates nothing.
func (pl *Pool) Get() *Packet {
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		p.inPool = false
		pl.reuses++
		return p
	}
	pl.news++
	return &Packet{pooled: true}
}

// Put releases a packet back to the free list. Packets not allocated by a
// Pool (hand-built in tests) and nil are ignored; releasing the same packet
// twice panics — it would alias one packet into two future lives.
func (pl *Pool) Put(p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	if p.inPool {
		panic("packet: double release into pool")
	}
	sack := p.SACK[:0]
	*p = Packet{pooled: true, inPool: true}
	p.SACK = sack
	pl.free = append(pl.free, p)
}

// Stats returns (fresh allocations, free-list reuses).
func (pl *Pool) Stats() (news, reuses uint64) { return pl.news, pl.reuses }

// Len returns the current free-list depth.
func (pl *Pool) Len() int { return len(pl.free) }
