// Package packet defines the simulated packet model: addresses, the IP-header
// ECN field (Table II of the paper), the TCP-header flags including the ECN
// codepoints ECE and CWR (Table I of the paper), sizes and the timestamps the
// metrics pipeline uses to compute per-packet end-to-end latency.
package packet

import (
	"fmt"

	"repro/internal/units"
)

// NodeID identifies a host or switch in the simulated network.
type NodeID int32

// Broadcast is an invalid destination used to catch routing bugs.
const Broadcast NodeID = -1

// Addr is a (node, port) transport address.
type Addr struct {
	Node NodeID
	Port uint16
}

// String formats the address as node:port.
func (a Addr) String() string { return fmt.Sprintf("n%d:%d", a.Node, a.Port) }

// ECN is the two-bit ECN field of the IP header (paper Table II).
type ECN uint8

// ECN codepoints (paper Table II).
const (
	NotECT ECN = 0b00 // Non ECN-Capable Transport
	ECT0   ECN = 0b10 // ECN Capable Transport (0)
	ECT1   ECN = 0b01 // ECN Capable Transport (1)
	CE     ECN = 0b11 // Congestion Encountered
)

// ECTCapable reports whether the codepoint marks an ECN-capable transport
// (including an already congestion-marked packet).
func (e ECN) ECTCapable() bool { return e != NotECT }

// String returns the paper's name for the codepoint.
func (e ECN) String() string {
	switch e {
	case NotECT:
		return "Non-ECT"
	case ECT0:
		return "ECT(0)"
	case ECT1:
		return "ECT(1)"
	case CE:
		return "CE"
	}
	return fmt.Sprintf("ECN(%02b)", uint8(e))
}

// TCPFlags is the flag set of the TCP header, including the two ECN
// codepoints on the TCP header (paper Table I).
type TCPFlags uint16

// TCP header flags.
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
	FlagECE // ECN-Echo (paper Table I codepoint 01)
	FlagCWR // Congestion Window Reduced (paper Table I codepoint 10)
)

// Has reports whether all flags in mask are set.
func (f TCPFlags) Has(mask TCPFlags) bool { return f&mask == mask }

// HasAny reports whether any flag in mask is set.
func (f TCPFlags) HasAny(mask TCPFlags) bool { return f&mask != 0 }

// String formats the flag set like "SYN|ACK|ECE".
func (f TCPFlags) String() string {
	names := []struct {
		bit  TCPFlags
		name string
	}{
		{FlagFIN, "FIN"}, {FlagSYN, "SYN"}, {FlagRST, "RST"},
		{FlagPSH, "PSH"}, {FlagACK, "ACK"}, {FlagURG, "URG"},
		{FlagECE, "ECE"}, {FlagCWR, "CWR"},
	}
	out := ""
	for _, n := range names {
		if f&n.bit != 0 {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	if out == "" {
		return "none"
	}
	return out
}

// Standard sizes in bytes. HeaderSize covers IP + TCP headers without
// options; the paper quotes ~150 bytes for an ACK on the wire, which is
// configurable at the experiment level via AckWireSize.
const (
	HeaderSize     = 40   // bytes: 20 IP + 20 TCP
	DefaultMSS     = 1460 // bytes of TCP payload per full segment
	DefaultAckSize = HeaderSize
)

// Kind classifies packets for statistics and for the AQM protection modes.
type Kind uint8

// Packet kinds.
const (
	KindData    Kind = iota // segment carrying payload
	KindPureACK             // ACK with no payload
	KindSYN                 // SYN (no ACK)
	KindSYNACK              // SYN+ACK
	KindFIN                 // FIN (possibly with ACK)
	KindOther
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "DATA"
	case KindPureACK:
		return "ACK"
	case KindSYN:
		return "SYN"
	case KindSYNACK:
		return "SYN-ACK"
	case KindFIN:
		return "FIN"
	}
	return "OTHER"
}

// SACKBlock is one selective-acknowledgement range [Start, End).
type SACKBlock struct {
	Start, End uint64
}

// Packet is a simulated TCP/IP packet. Packets are passed by pointer and
// never aliased between two in-flight locations, so components may stamp
// fields in place.
type Packet struct {
	ID uint64 // unique per simulation run

	Src Addr
	Dst Addr

	// TCP header. Sequence numbers are 64-bit in the simulation to avoid
	// modelling wraparound, which is irrelevant to the studied effects.
	Seq     uint64 // first payload byte (or ISN for SYN)
	Ack     uint64 // cumulative acknowledgement, valid if FlagACK
	Flags   TCPFlags
	Payload int // bytes of TCP payload

	// IP header.
	ECN ECN
	TTL int

	// Wire accounting: total size on the wire. Kept explicit so experiments
	// can model 150-byte ACKs independent of header constants.
	Wire units.ByteSize

	// SACK blocks (RFC 2018), carried natively instead of encoding option
	// bytes. At most 3 blocks per segment, as leaves room for timestamps
	// in a real 40-byte option space.
	SACK []SACKBlock

	// TCP timestamp option (RFC 7323): TSVal is stamped by the sender,
	// TSEcr echoes the peer's TSVal and is what the sender's RTT estimator
	// consumes. Carried natively instead of encoding option bytes.
	TSVal, TSEcr units.Time

	// Metrics stamps, written by the transport/fabric.
	SentAt     units.Time // when the sender handed it to its NIC
	EnqueuedAt units.Time // last qdisc enqueue time
	Hops       int        // switch traversals so far

	// Echo of congestion: set by the receiving transport when this packet's
	// delivery observed CE (used only for assertions in tests).
	SawCE bool

	// Pool bookkeeping. pooled marks packets allocated from a Pool (only
	// those may be recycled — packets built by hand in tests are left
	// alone); inPool guards against double release.
	pooled bool
	inPool bool
}

// Size returns the byte size of the packet on the wire.
func (p *Packet) Size() units.ByteSize {
	if p.Wire > 0 {
		return p.Wire
	}
	return units.ByteSize(HeaderSize + p.Payload)
}

// IsPureACK reports whether the packet is a payload-less ACK (not SYN/FIN).
func (p *Packet) IsPureACK() bool {
	return p.Flags.Has(FlagACK) && !p.Flags.HasAny(FlagSYN|FlagFIN|FlagRST) && p.Payload == 0
}

// IsSYN reports whether the packet has SYN set (SYN or SYN-ACK).
func (p *Packet) IsSYN() bool { return p.Flags.Has(FlagSYN) }

// HasECE reports whether the TCP header carries the ECN-Echo flag.
func (p *Packet) HasECE() bool { return p.Flags.Has(FlagECE) }

// Kind classifies the packet.
func (p *Packet) Kind() Kind {
	switch {
	case p.Flags.Has(FlagSYN | FlagACK):
		return KindSYNACK
	case p.Flags.Has(FlagSYN):
		return KindSYN
	case p.Flags.Has(FlagFIN):
		return KindFIN
	case p.Payload > 0:
		return KindData
	case p.Flags.Has(FlagACK):
		return KindPureACK
	}
	return KindOther
}

// Mark sets the CE codepoint. It panics if the packet is not ECT-capable:
// marking a non-ECT packet is a protocol violation the qdiscs must not
// commit.
func (p *Packet) Mark() {
	if !p.ECN.ECTCapable() {
		panic("packet: marking non-ECT packet")
	}
	p.ECN = CE
}

// String formats a compact description for traces.
func (p *Packet) String() string {
	return fmt.Sprintf("#%d %s %v->%v seq=%d ack=%d len=%d ecn=%v",
		p.ID, p.Kind(), p.Src, p.Dst, p.Seq, p.Ack, p.Payload, p.ECN)
}
