package packet

import (
	"testing"

	"repro/internal/units"
)

// TestTableII_IPHeaderCodepoints pins the paper's Table II: the four ECN
// codepoints of the IP header and their ECT-capability.
func TestTableII_IPHeaderCodepoints(t *testing.T) {
	tests := []struct {
		bits    uint8
		e       ECN
		name    string
		capable bool
	}{
		{0b00, NotECT, "Non-ECT", false},
		{0b10, ECT0, "ECT(0)", true},
		{0b01, ECT1, "ECT(1)", true},
		{0b11, CE, "CE", true},
	}
	for _, tt := range tests {
		if uint8(tt.e) != tt.bits {
			t.Errorf("%s encodes %02b, want %02b", tt.name, uint8(tt.e), tt.bits)
		}
		if tt.e.String() != tt.name {
			t.Errorf("String() = %q, want %q", tt.e.String(), tt.name)
		}
		if tt.e.ECTCapable() != tt.capable {
			t.Errorf("%s.ECTCapable() = %v, want %v", tt.name, tt.e.ECTCapable(), tt.capable)
		}
	}
}

// TestTableI_TCPHeaderCodepoints pins the paper's Table I: ECE and CWR on
// the TCP header.
func TestTableI_TCPHeaderCodepoints(t *testing.T) {
	if FlagECE == 0 || FlagCWR == 0 || FlagECE == FlagCWR {
		t.Fatal("ECE and CWR must be distinct non-zero flags")
	}
	var f TCPFlags
	f |= FlagECE
	if !f.Has(FlagECE) || f.Has(FlagCWR) {
		t.Error("flag set/test broken for ECE")
	}
	if got := (FlagECE | FlagCWR).String(); got != "ECE|CWR" {
		t.Errorf("String = %q, want ECE|CWR", got)
	}
}

func TestFlagsHasAny(t *testing.T) {
	f := FlagSYN | FlagACK
	if !f.HasAny(FlagSYN | FlagFIN) {
		t.Error("HasAny(SYN|FIN) should be true for SYN|ACK")
	}
	if f.Has(FlagSYN | FlagFIN) {
		t.Error("Has(SYN|FIN) should be false for SYN|ACK")
	}
	if TCPFlags(0).String() != "none" {
		t.Errorf("zero flags String = %q", TCPFlags(0).String())
	}
}

func TestKindClassification(t *testing.T) {
	tests := []struct {
		name string
		p    Packet
		want Kind
	}{
		{"data", Packet{Flags: FlagACK, Payload: 1460}, KindData},
		{"pure ack", Packet{Flags: FlagACK}, KindPureACK},
		{"syn", Packet{Flags: FlagSYN}, KindSYN},
		{"syn-ack", Packet{Flags: FlagSYN | FlagACK}, KindSYNACK},
		{"fin", Packet{Flags: FlagFIN | FlagACK}, KindFIN},
		{"ece ack is still ack", Packet{Flags: FlagACK | FlagECE}, KindPureACK},
		{"bare segment", Packet{}, KindOther},
	}
	for _, tt := range tests {
		if got := tt.p.Kind(); got != tt.want {
			t.Errorf("%s: Kind = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestIsPureACK(t *testing.T) {
	tests := []struct {
		name string
		p    Packet
		want bool
	}{
		{"plain ack", Packet{Flags: FlagACK}, true},
		{"ack with ece", Packet{Flags: FlagACK | FlagECE}, true},
		{"ack with payload", Packet{Flags: FlagACK, Payload: 100}, false},
		{"syn-ack", Packet{Flags: FlagSYN | FlagACK}, false},
		{"fin-ack", Packet{Flags: FlagFIN | FlagACK}, false},
		{"rst", Packet{Flags: FlagRST | FlagACK}, false},
	}
	for _, tt := range tests {
		if got := tt.p.IsPureACK(); got != tt.want {
			t.Errorf("%s: IsPureACK = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestSize(t *testing.T) {
	p := Packet{Payload: 1460}
	if got := p.Size(); got != HeaderSize+1460 {
		t.Errorf("Size = %d, want %d", got, HeaderSize+1460)
	}
	// Explicit wire size wins (the paper's 150-byte ACKs).
	p2 := Packet{Flags: FlagACK, Wire: 150}
	if got := p2.Size(); got != 150 {
		t.Errorf("Size = %d, want 150", got)
	}
	var ack Packet
	ack.Flags = FlagACK
	if got := ack.Size(); got != units.ByteSize(HeaderSize) {
		t.Errorf("pure ACK default size = %d, want %d", got, HeaderSize)
	}
}

func TestMarkSetsCE(t *testing.T) {
	p := Packet{ECN: ECT0, Payload: 100}
	p.Mark()
	if p.ECN != CE {
		t.Errorf("after Mark, ECN = %v, want CE", p.ECN)
	}
	// Marking an already-CE packet is fine (CE is ECT-capable).
	p.Mark()
	if p.ECN != CE {
		t.Error("re-mark changed codepoint")
	}
}

func TestMarkPanicsOnNonECT(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("marking a non-ECT packet must panic")
		}
	}()
	p := Packet{ECN: NotECT}
	p.Mark()
}

func TestHasECE(t *testing.T) {
	p := Packet{Flags: FlagACK | FlagECE}
	if !p.HasECE() {
		t.Error("HasECE = false for ECE ACK")
	}
	p2 := Packet{Flags: FlagACK}
	if p2.HasECE() {
		t.Error("HasECE = true without ECE")
	}
}

func TestIsSYN(t *testing.T) {
	if !(&Packet{Flags: FlagSYN}).IsSYN() {
		t.Error("SYN not recognized")
	}
	if !(&Packet{Flags: FlagSYN | FlagACK}).IsSYN() {
		t.Error("SYN-ACK not recognized as SYN")
	}
	if (&Packet{Flags: FlagACK}).IsSYN() {
		t.Error("plain ACK recognized as SYN")
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{Node: 3, Port: 8080}
	if got := a.String(); got != "n3:8080" {
		t.Errorf("Addr.String = %q", got)
	}
}

func TestPacketString(t *testing.T) {
	p := Packet{ID: 9, Flags: FlagACK, Payload: 1460, Src: Addr{1, 100}, Dst: Addr{2, 200}, ECN: ECT0}
	s := p.String()
	for _, want := range []string{"#9", "DATA", "n1:100", "n2:200", "ECT(0)"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		KindData: "DATA", KindPureACK: "ACK", KindSYN: "SYN",
		KindSYNACK: "SYN-ACK", KindFIN: "FIN", KindOther: "OTHER",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
