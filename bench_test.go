// Benchmarks regenerating the paper's tables and figures, plus ablations of
// the design choices called out in DESIGN.md and micro-benchmarks of the
// simulation substrate itself.
//
// The Figure benchmarks run the experiment grid for one sub-figure per
// iteration at a reduced scale and report the figure's headline quantities
// as custom metrics (normalized to the DropTail baselines exactly as in the
// paper). Shapes — who wins, by roughly what factor — are what to compare
// against the paper; see EXPERIMENTS.md.
package repro_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/figures"
	"repro/internal/packet"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/units"
)

// benchScale keeps one full figure row affordable per benchmark iteration.
func benchScale() experiment.Scale {
	return experiment.Scale{
		Nodes:     8,
		InputSize: 128 * units.MiB,
		BlockSize: 16 * units.MiB,
		Reducers:  8,
	}
}

// benchDelays is the reduced target-delay sweep used by figure benchmarks:
// aggressive / moderate / loose, bracketing the paper's 500 µs pivot.
func benchDelays() []units.Duration {
	return []units.Duration{
		100 * units.Microsecond,
		500 * units.Microsecond,
		2 * units.Millisecond,
	}
}

// runFigureGrid executes the sweep backing one (metric, buffer) sub-figure
// and reports per-series normalized metrics.
func runFigureGrid(b *testing.B, m figures.Metric, buf cluster.BufferDepth) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s := experiment.NewSweep(benchScale(), 1)
		s.TargetDelays = benchDelays()
		s.Execute()
		if i != b.N-1 {
			continue
		}
		b.StopTimer()
		// Report the moderate-setting (500µs) normalized value per series,
		// and the aggressive one for the marking scheme.
		for _, label := range figures.SeriesOrder {
			series, ok := s.Series[buf][label]
			if !ok {
				continue
			}
			var v float64
			switch m {
			case figures.MetricRuntime:
				v = s.NormalizedRuntime(series[1])
			case figures.MetricThroughput:
				v = s.NormalizedThroughput(series[1])
			case figures.MetricLatency:
				v = s.NormalizedLatency(series[1])
			}
			b.ReportMetric(v, label+"@500µs")
		}
		b.StartTimer()
	}
}

// BenchmarkFigure2a_RuntimeShallow regenerates Fig. 2a: Hadoop runtime vs
// RED target delay on shallow-buffered switches, normalized to
// DropTail/shallow.
func BenchmarkFigure2a_RuntimeShallow(b *testing.B) {
	runFigureGrid(b, figures.MetricRuntime, cluster.Shallow)
}

// BenchmarkFigure2b_RuntimeDeep regenerates Fig. 2b (deep buffers).
func BenchmarkFigure2b_RuntimeDeep(b *testing.B) {
	runFigureGrid(b, figures.MetricRuntime, cluster.Deep)
}

// BenchmarkFigure3a_ThroughputShallow regenerates Fig. 3a: cluster
// throughput, shallow buffers.
func BenchmarkFigure3a_ThroughputShallow(b *testing.B) {
	runFigureGrid(b, figures.MetricThroughput, cluster.Shallow)
}

// BenchmarkFigure3b_ThroughputDeep regenerates Fig. 3b (deep buffers).
func BenchmarkFigure3b_ThroughputDeep(b *testing.B) {
	runFigureGrid(b, figures.MetricThroughput, cluster.Deep)
}

// BenchmarkFigure4a_LatencyShallow regenerates Fig. 4a: network latency,
// shallow buffers, normalized to DropTail/shallow.
func BenchmarkFigure4a_LatencyShallow(b *testing.B) {
	runFigureGrid(b, figures.MetricLatency, cluster.Shallow)
}

// BenchmarkFigure4b_LatencyDeep regenerates Fig. 4b (normalized to
// DropTail/deep).
func BenchmarkFigure4b_LatencyDeep(b *testing.B) {
	runFigureGrid(b, figures.MetricLatency, cluster.Deep)
}

// BenchmarkFigure1_QueueSnapshot regenerates Fig. 1: the composition of a
// switch egress queue during the shuffle under RED's default mode, with the
// ACK drop bias as metrics.
func BenchmarkFigure1_QueueSnapshot(b *testing.B) {
	var snap figures.QueueSnapshot
	for i := 0; i < b.N; i++ {
		snap = figures.Figure1(benchScale(), 100*units.Microsecond, 200*units.Microsecond, 1)
	}
	b.ReportMetric(snap.MeanECTShare, "ect-share")
	b.ReportMetric(snap.MeanACKShare, "ack-share")
	b.ReportMetric(snap.AckDropShare, "ack-drop-share")
	b.ReportMetric(snap.MeanDepth, "mean-depth-pkts")
}

// BenchmarkHeadline_SimpleMarking regenerates the Section IV/VI headline:
// the true marking scheme's throughput boost and latency reduction.
func BenchmarkHeadline_SimpleMarking(b *testing.B) {
	var h figures.HeadlineResult
	for i := 0; i < b.N; i++ {
		s := experiment.NewSweep(benchScale(), 1)
		s.TargetDelays = benchDelays()
		s.Execute()
		h = figures.Headline(s, 0)
	}
	b.ReportMetric(h.ThroughputGain, "throughput-vs-droptail")
	b.ReportMetric(100*h.LatencyReduction, "latency-reduction-%")
	b.ReportMetric(h.ShallowReachesDeep, "shallow-vs-deep-throughput")
}

// ----------------------------------------------------------------------
// Ablations (DESIGN.md section 6)

// ablationPair runs base and variant configs and reports runtime and
// latency ratios (variant / base).
func ablationPair(b *testing.B, base, variant experiment.Config) {
	b.Helper()
	var rBase, rVar experiment.Result
	for i := 0; i < b.N; i++ {
		rBase = experiment.Run(base)
		rVar = experiment.Run(variant)
	}
	if rBase.Runtime > 0 {
		b.ReportMetric(float64(rVar.Runtime)/float64(rBase.Runtime), "runtime-ratio")
	}
	if rBase.MeanLatency > 0 {
		b.ReportMetric(float64(rVar.MeanLatency)/float64(rBase.MeanLatency), "latency-ratio")
	}
	b.ReportMetric(float64(rVar.RTOEvents), "variant-rto")
	b.ReportMetric(float64(rBase.RTOEvents), "base-rto")
}

func ablationBase() experiment.Config {
	return experiment.Config{
		Setup:       experiment.SetupECNDefault,
		Buffer:      cluster.Shallow,
		TargetDelay: 100 * units.Microsecond,
		Scale:       benchScale(),
		Seed:        1,
	}
}

// BenchmarkAblation_PerByteRED contrasts per-packet thresholds (the paper's
// culprit) with per-byte accounting, under which 40-byte ACKs consume almost
// no threshold budget.
func BenchmarkAblation_PerByteRED(b *testing.B) {
	base := ablationBase()
	variant := base
	variant.ByteMode = true
	ablationPair(b, base, variant)
}

// BenchmarkAblation_InstantaneousRED contrasts EWMA-averaged with
// instantaneous queue measurement (the Wu et al. recommendation).
func BenchmarkAblation_InstantaneousRED(b *testing.B) {
	base := ablationBase()
	variant := base
	variant.Instantaneous = true
	ablationPair(b, base, variant)
}

// BenchmarkAblation_MinRTO10ms asks how much of the default mode's damage is
// the 200 ms minimum RTO (datacenter stacks often tune it down).
func BenchmarkAblation_MinRTO10ms(b *testing.B) {
	base := ablationBase()
	variant := base
	variant.MinRTO = 10 * units.Millisecond
	ablationPair(b, base, variant)
}

// BenchmarkAblation_NoSACK removes selective acknowledgements, degrading
// recovery to classic NewReno.
func BenchmarkAblation_NoSACK(b *testing.B) {
	base := ablationBase()
	base.Setup = experiment.SetupDropTail
	variant := base
	variant.DisableSACK = true
	ablationPair(b, base, variant)
}

// BenchmarkAblation_NoDelayedAck doubles the ACK rate, doubling exposure to
// the per-packet drop bias.
func BenchmarkAblation_NoDelayedAck(b *testing.B) {
	base := ablationBase()
	variant := base
	variant.DisableDelAck = true
	ablationPair(b, base, variant)
}

// BenchmarkAblation_150ByteAcks uses the paper's quoted ACK wire size; with
// per-packet thresholds it must not change the drop bias (that is the
// point), and with per-byte it would.
func BenchmarkAblation_150ByteAcks(b *testing.B) {
	base := ablationBase()
	variant := base
	variant.AckWireSize = 150
	ablationPair(b, base, variant)
}

// ----------------------------------------------------------------------
// Substrate micro-benchmarks

// BenchmarkEngineScheduleRun measures raw event throughput of the
// discrete-event engine.
func BenchmarkEngineScheduleRun(b *testing.B) {
	eng := sim.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Schedule(eng.Now()+sim.Time(i%64), func() {})
		if i%1024 == 1023 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkREDEnqueueDequeue measures the RED fast path.
func BenchmarkREDEnqueueDequeue(b *testing.B) {
	cfg := qdisc.DefaultREDConfig(1000, 10*units.Gbps)
	cfg.Seed = 1
	q := qdisc.NewRED(cfg)
	p := &packet.Packet{Flags: packet.FlagACK, Payload: 1460, ECN: packet.ECT0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkt := *p
		if v := q.Enqueue(units.Time(i), &pkt); !v.Dropped() {
			q.Dequeue(units.Time(i))
		}
	}
}

// BenchmarkSimpleMarkEnqueueDequeue measures the marking fast path.
func BenchmarkSimpleMarkEnqueueDequeue(b *testing.B) {
	q := qdisc.NewSimpleMark(1000, 100)
	p := &packet.Packet{Flags: packet.FlagACK, Payload: 1460, ECN: packet.ECT0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkt := *p
		if v := q.Enqueue(units.Time(i), &pkt); !v.Dropped() {
			q.Dequeue(units.Time(i))
		}
	}
}

// BenchmarkTCPBulkTransfer measures end-to-end simulated TCP goodput
// (simulation cost per payload byte; b.SetBytes makes MB/s comparable).
func BenchmarkTCPBulkTransfer(b *testing.B) {
	const size = 4 << 20
	b.SetBytes(size)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.New()
		cl := topo.Build(eng, topo.Config{
			Nodes:     2,
			LinkRate:  10 * units.Gbps,
			LinkDelay: 5 * units.Microsecond,
			SwitchQueue: func(label string, rate units.Bandwidth) qdisc.Qdisc {
				return qdisc.NewDropTail(1000)
			},
		})
		stats := &tcp.Stats{}
		s0 := tcp.NewStack(cl.Hosts[0], tcp.DefaultConfig(tcp.Reno), stats)
		s1 := tcp.NewStack(cl.Hosts[1], tcp.DefaultConfig(tcp.Reno), stats)
		s1.Listen(80, func(c *tcp.Conn) {})
		c := s0.Dial(packet.Addr{Node: cl.Hosts[1].ID(), Port: 80})
		c.Send(size)
		c.Close()
		eng.Run()
	}
}

// BenchmarkTerasortSmall measures a complete small job end to end.
func BenchmarkTerasortSmall(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.Run(experiment.Config{
			Setup:       experiment.SetupDropTail,
			Buffer:      cluster.Shallow,
			TargetDelay: 500 * units.Microsecond,
			Scale: experiment.Scale{
				Nodes: 4, InputSize: 32 * units.MiB, BlockSize: 8 * units.MiB, Reducers: 4,
			},
			Seed: 1,
		})
	}
}

// BenchmarkIncastScaling runs the synchronized-incast microbenchmark that
// underlies the shuffle's worst case, for DropTail vs the marking scheme,
// and reports aggregate goodput (Gbps) and drops.
func BenchmarkIncastScaling(b *testing.B) {
	var dt, sm experiment.IncastResult
	for i := 0; i < b.N; i++ {
		dt = experiment.RunIncast(experiment.Config{
			Setup: experiment.SetupDropTail, Buffer: cluster.Shallow,
			TargetDelay: 100 * units.Microsecond, Seed: 1,
		}, 12, 2*units.MiB)
		sm = experiment.RunIncast(experiment.Config{
			Setup: experiment.SetupDCTCPSimpleMark, Buffer: cluster.Shallow,
			TargetDelay: 100 * units.Microsecond, Seed: 1,
		}, 12, 2*units.MiB)
	}
	b.ReportMetric(float64(dt.AggGoodput)/1e9, "droptail-gbps")
	b.ReportMetric(float64(sm.AggGoodput)/1e9, "simplemark-gbps")
	b.ReportMetric(float64(dt.OverflowDrops), "droptail-drops")
	b.ReportMetric(float64(sm.OverflowDrops+sm.EarlyDrops), "simplemark-drops")
}

// BenchmarkMixedCluster reports the co-located RPC service's tail latency
// during a Terasort for the bufferbloat and marking regimes.
func BenchmarkMixedCluster(b *testing.B) {
	var bloat, marked experiment.MixedResult
	for i := 0; i < b.N; i++ {
		bloat = experiment.RunMixed(experiment.Config{
			Setup: experiment.SetupDropTail, Buffer: cluster.Deep,
			TargetDelay: 100 * units.Microsecond, Scale: benchScale(), Seed: 1,
		})
		marked = experiment.RunMixed(experiment.Config{
			Setup: experiment.SetupDCTCPSimpleMark, Buffer: cluster.Shallow,
			TargetDelay: 100 * units.Microsecond, Scale: benchScale(), Seed: 1,
		})
	}
	b.ReportMetric(bloat.RPCP99.Seconds()*1e6, "droptail-deep-rpc-p99-µs")
	b.ReportMetric(marked.RPCP99.Seconds()*1e6, "simplemark-rpc-p99-µs")
}
